#include "src/runtime/device.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/runtime/supervisor.h"

namespace coyote {
namespace runtime {

namespace {

// Card memory geometry follows the part unless the caller overrode it.
memsys::CardMemory::Config CardConfigFor(const SimDevice::Config& config) {
  memsys::CardMemory::Config cfg = config.card;
  if (cfg.num_channels == 0) {
    cfg.num_channels = config.part.memory_channels;
  }
  cfg.capacity_bytes = config.part.memory_bytes;
  return cfg;
}

}  // namespace

SimDevice::SimDevice(const Config& config, net::Network* network, sim::Engine* shared_engine)
    : config_(config),
      owned_engine_(shared_engine == nullptr ? std::make_unique<sim::Engine>() : nullptr),
      engine_(shared_engine == nullptr ? owned_engine_.get() : shared_engine),
      floorplan_(fabric::Floorplan::ForPart(config.part, config.shell.num_vfpgas)),
      card_(std::make_unique<memsys::CardMemory>(engine_, CardConfigFor(config))),
      svm_(engine_, &host_, card_.get(), &gpu_, config.shell.page_bytes),
      nvme_drive_(engine_, memsys::NvmeDrive::Config{}),
      network_(network) {
  active_shell_ = config_.shell;

  svm_.set_nvme(&nvme_drive_);
  xdma_ = std::make_unique<dyn::XdmaCore>(engine_, config_.xdma);
  mover_ = std::make_unique<dyn::DataMover>(engine_, &svm_, card_.get(), &gpu_, xdma_.get(),
                                            config_.data_mover);
  mover_->SetNvme(&nvme_drive_);
  writeback_ = std::make_unique<dyn::WritebackEngine>(engine_, &host_, &xdma_->c2h());
  reconfig_ = std::make_unique<fabric::ReconfigController>(engine_,
                                                           config_.xdma.h2c_bps);
  svm_.set_hooks(mover_->MakeMigrationHooks());

  // MSI-X dispatch: the driver demultiplexes interrupt sources (§5.1).
  xdma_->SetMsixHandler([this](uint32_t vector, uint64_t value) {
    if (vector == dyn::kMsixPageFault) {
      ++page_faults_seen_;
    } else if (vector == dyn::kMsixReconfigDone) {
      ++reconfigs_seen_;
    } else if (vector >= dyn::kMsixUserBase) {
      if (user_irq_cb_) {
        user_irq_cb_(vector - dyn::kMsixUserBase, value);
      }
    }
  });

  // Application layer: one region + one MMU per vFPGA.
  vfpga::Vfpga::Config vcfg = config_.vfpga;
  if (config_.v1_compat) {
    vcfg.num_host_streams = 1;  // Coyote v1: a single host stream
    vcfg.num_card_streams = 1;
  }
  for (uint32_t i = 0; i < config_.shell.num_vfpgas; ++i) {
    vfpgas_.push_back(std::make_unique<vfpga::Vfpga>(engine_, i, vcfg));
    mmu::Mmu::Config mcfg;
    mcfg.tlb.entries = config_.shell.tlb_entries;
    mcfg.tlb.associativity = config_.shell.tlb_associativity;
    mcfg.tlb.page_bytes = config_.shell.page_bytes;
    mmus_.push_back(std::make_unique<mmu::Mmu>(engine_, &svm_.page_table(), mcfg));
    mover_->RegisterVfpga(i, mmus_.back().get());

    // Interrupt channel: user interrupts become MSI-X vectors.
    vfpga::Vfpga* region = vfpgas_.back().get();
    region->SetInterruptHandler([this, i](uint64_t value) {
      xdma_->RaiseMsix(dyn::kMsixUserBase + i, value);
    });
    // Send queues: hardware-issued DMA descriptors execute in the dynamic
    // layer without host involvement (§7.1).
    region->SetSendHandler([this, region, i](const vfpga::SendQueueEntry& e) {
      dyn::TransferRequest req{
          .vfpga_id = i, .tid = e.tid, .stream = e.stream, .vaddr = e.vaddr,
          .bytes = e.bytes, .target = e.target};
      if (e.remote && roce_) {
        if (e.is_write) {
          roce_->PostWrite(e.qpn, e.vaddr, e.vaddr, e.bytes, [region, e](bool ok) {
            region->PushCompletion({true, e.stream, e.tid, e.bytes, ok});
          });
        }
        return;
      }
      if (e.is_write) {
        mover_->Write(req, e.target == mmu::MemKind::kCard ? &region->card_out(e.stream)
                                                           : &region->host_out(e.stream),
                      [region, e](bool ok) {
                        region->PushCompletion({true, e.stream, e.tid, e.bytes, ok});
                      });
      } else {
        mover_->Read(req, e.target == mmu::MemKind::kCard ? &region->card_in(e.stream)
                                                          : &region->host_in(e.stream),
                     [region, e](bool ok) {
                       region->PushCompletion({false, e.stream, e.tid, e.bytes, ok});
                     });
      }
    });
  }

  BuildShellServices();

  // Publish live shell counters through the control BAR (read hooks, so each
  // BAR read observes the current value — like reading a status register).
  auto& bar = xdma_->bar();
  bar.SetReadHook(kStatusH2cBytes, [this](uint32_t) { return xdma_->h2c().total_bytes(); });
  bar.SetReadHook(kStatusC2hBytes, [this](uint32_t) { return xdma_->c2h().total_bytes(); });
  bar.SetReadHook(kStatusPacketsMoved, [this](uint32_t) { return mover_->packets_moved(); });
  bar.SetReadHook(kStatusPageFaults, [this](uint32_t) { return mover_->page_fault_irqs(); });
  bar.SetReadHook(kStatusWritebacks, [this](uint32_t) { return writeback_->writebacks(); });
  bar.SetReadHook(kStatusMsixRaised, [this](uint32_t) { return xdma_->msix_raised(); });
  bar.SetReadHook(kStatusMigrations, [this](uint32_t) { return svm_.migrations(); });
  for (uint32_t i = 0; i < config_.shell.num_vfpgas; ++i) {
    const uint32_t base = kStatusVfpgaBase + i * kStatusStride;
    bar.SetReadHook(base + kStatusTlbHits,
                    [this, i](uint32_t) { return mmus_[i]->tlb().hits(); });
    bar.SetReadHook(base + kStatusTlbMisses,
                    [this, i](uint32_t) { return mmus_[i]->tlb().misses(); });
    bar.SetReadHook(base + kStatusUserIrqs,
                    [this, i](uint32_t) { return vfpgas_[i]->user_interrupts(); });
    bar.SetReadHook(base + kStatusSendsPosted,
                    [this, i](uint32_t) { return vfpgas_[i]->sends_posted(); });
  }
}

SimDevice::~SimDevice() = default;

mmu::Tiering& SimDevice::EnableTiering(const mmu::Tiering::Config& tiering_config) {
  if (tiering_) {
    tiering_->Stop();
  }
  tiering_ = std::make_unique<mmu::Tiering>(engine_, &svm_, tiering_config);
  svm_.set_profiler(tiering_.get());
  for (auto& m : mmus_) {
    m->set_profiler(tiering_.get());
  }
  tiering_->Start();
  return *tiering_;
}

void SimDevice::BuildShellServices() {
  if (active_shell_.HasService(fabric::Service::kRdma) && network_ != nullptr) {
    roce_ = std::make_unique<net::RoceStack>(engine_, network_, config_.ip, &svm_);
    // A shell reconfiguration recreates the stack; keep it fault-capable.
    roce_->SetFaultInjector(injector_);
  }
  if (active_shell_.HasService(fabric::Service::kTcp) && network_ != nullptr) {
    tcp_ = std::make_unique<net::TcpStack>(engine_, network_, config_.ip, &svm_);
  }
  if (active_shell_.HasService(fabric::Service::kSniffer)) {
    sniffer_ = std::make_unique<net::TrafficSniffer>(engine_);
    if (roce_) {
      net::TrafficSniffer* sniff = sniffer_.get();
      roce_->SetTap([sniff](const axi::BufferView& frame, bool is_tx) {
        sniff->OnFrame(frame, is_tx);
      });
    }
  }
}

void SimDevice::TearDownShellServices() {
  if (roce_) {
    roce_->SetTap(nullptr);
  }
  sniffer_.reset();
  roce_.reset();
  tcp_.reset();
}

void SimDevice::RegisterKernelFactory(const std::string& name, KernelFactory factory) {
  kernel_factories_[name] = std::move(factory);
}

std::unique_ptr<vfpga::HwKernel> SimDevice::MakeKernelFor(const std::string& bitstream_name) {
  // "app:<kernel>" -> "<kernel>".
  std::string key = bitstream_name;
  if (key.rfind("app:", 0) == 0) {
    key = key.substr(4);
  }
  auto it = kernel_factories_.find(key);
  if (it == kernel_factories_.end()) {
    return nullptr;
  }
  return it->second();
}

void SimDevice::WriteBitstreamFile(const std::string& path,
                                   const fabric::PartialBitstream& bs) {
  bitstream_files_[path] = bs;
}

const fabric::PartialBitstream* SimDevice::FindBitstreamFile(const std::string& path) const {
  auto it = bitstream_files_.find(path);
  return it == bitstream_files_.end() ? nullptr : &it->second;
}

SimDevice::ReconfigResult SimDevice::StageAndProgram(const fabric::PartialBitstream& bs) {
  ReconfigResult result;
  const sim::TimePs start = engine_->Now();
  const uint32_t max_attempts = std::max(1u, config_.reconfig_max_retries);

  for (uint32_t attempt = 0; attempt < max_attempts && !result.ok; ++attempt) {
    ++result.attempts;

    // Host side: read the bitstream from disk and copy it into kernel space
    // (the Table 3 "total latency" components). An aborted program restages
    // from scratch — the driver re-validates the whole pipeline.
    const sim::TimePs disk = sim::TransferTime(bs.size_bytes, config_.disk_read_bps);
    const sim::TimePs copy = sim::TransferTime(bs.size_bytes, config_.kernel_copy_bps);
    const sim::TimePs staged_at = engine_->Now() + config_.ioctl_latency + disk + copy;

    // ...then the ICAP programs the region (the "kernel latency").
    bool done = false;
    engine_->ScheduleAt(staged_at, [this, &bs, &done, &result]() {
      reconfig_->ProgramAsync(bs.size_bytes, [this, &done, &result](bool ok) {
        if (ok) {
          xdma_->RaiseMsix(dyn::kMsixReconfigDone, 0);
          result.ok = true;
        }
        done = true;
      });
    });
    engine_->RunUntilCondition([&done]() { return done; });
  }

  result.kernel_latency = reconfig_->ProgramLatency(bs.size_bytes);
  result.total_latency = engine_->Now() - start;
  if (!result.ok) {
    result.error =
        "ICAP programming failed after " + std::to_string(result.attempts) + " attempts";
  }
  return result;
}

SimDevice::ReconfigResult SimDevice::ReconfigureShell(const std::string& bitstream_path) {
  ReconfigResult result;
  if (config_.v1_compat) {
    result.error = "Coyote v1 cannot reconfigure the service layer without a reboot";
    return result;
  }
  const fabric::PartialBitstream* bs = FindBitstreamFile(bitstream_path);
  if (bs == nullptr) {
    result.error = "no such bitstream: " + bitstream_path;
    return result;
  }
  if (!bs->IsShell()) {
    result.error = "bitstream does not target the shell (dynamic) layer";
    return result;
  }

  result = StageAndProgram(*bs);
  if (!result.ok) {
    // Programming never completed: the previous shell stays active.
    return result;
  }

  // Swap the service layer and reset the application regions: a shell
  // reconfiguration replaces both (§4).
  TearDownShellServices();
  active_shell_ = bs->shell_config;
  for (auto& region : vfpgas_) {
    region->UnloadKernel();
  }
  BuildShellServices();
  return result;
}

SimDevice::ReconfigResult SimDevice::ReconfigureApp(const std::string& bitstream_path,
                                                    uint32_t vfpga_id) {
  ReconfigResult result;
  const fabric::PartialBitstream* bs = FindBitstreamFile(bitstream_path);
  if (bs == nullptr) {
    result.error = "no such bitstream: " + bitstream_path;
    return result;
  }
  if (bs->IsShell()) {
    result.error = "bitstream targets the shell, not a vFPGA region";
    return result;
  }
  if (vfpga_id >= vfpgas_.size()) {
    result.error = "vFPGA index out of range";
    return result;
  }
  // Link-time fail-safe (§4): the app must have been linked against the
  // currently active shell configuration.
  if (bs->shell_config_id != active_shell_.ConfigId()) {
    result.error = "bitstream was linked against a different shell configuration";
    return result;
  }
  std::unique_ptr<vfpga::HwKernel> kernel = MakeKernelFor(bs->name);
  if (kernel == nullptr) {
    result.error = "no kernel registered for bitstream '" + bs->name + "'";
    return result;
  }

  result = StageAndProgram(*bs);
  if (!result.ok) {
    // The region keeps whatever it held before the failed program.
    return result;
  }
  vfpgas_[vfpga_id]->LoadKernel(std::move(kernel));
  return result;
}

void SimDevice::AttachFaultInjector(sim::FaultInjector* injector) {
  injector_ = injector;
  reconfig_->SetFaultInjector(injector);
  xdma_->SetFaultInjector(injector);
  for (auto& m : mmus_) {
    m->SetFaultInjector(injector);
  }
  for (auto& region : vfpgas_) {
    region->SetFaultInjector(injector);
  }
  if (roce_) {
    roce_->SetFaultInjector(injector);
  }
}

void SimDevice::NotifyOpDeadline(uint32_t vfpga_id) {
  if (supervisor_ != nullptr) {
    supervisor_->NoteDeadlineMiss(vfpga_id);
  }
}

}  // namespace runtime
}  // namespace coyote
