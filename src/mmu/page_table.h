// Driver-side page table.
//
// The full virtual-to-physical map lives in the host driver; the hardware
// only caches translations in its TLBs (paper §6.1's hybrid MMU). One page
// table exists per cThread address space; all vFPGA MMUs that serve that
// thread fall back here on TLB misses.

#ifndef SRC_MMU_PAGE_TABLE_H_
#define SRC_MMU_PAGE_TABLE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "src/mmu/types.h"
#include "src/sim/access_guard.h"

namespace coyote {
namespace mmu {

class PageTable {
 public:
  explicit PageTable(uint64_t page_bytes = 2ull << 20) : page_bytes_(page_bytes) {}

  uint64_t page_bytes() const { return page_bytes_; }
  uint64_t VPage(uint64_t vaddr) const { return vaddr / page_bytes_; }
  uint64_t PageBase(uint64_t vaddr) const { return VPage(vaddr) * page_bytes_; }

  // Maps the page containing `vaddr`.
  void Map(uint64_t vaddr, PhysPage phys) {
    guard_.Write();
    table_[VPage(vaddr)] = phys;
  }

  // Maps a contiguous virtual range backed by contiguous physical pages
  // starting at `phys_base` in `kind`.
  void MapRange(uint64_t vaddr, uint64_t bytes, MemKind kind, uint64_t phys_base) {
    guard_.Write();
    const uint64_t first = VPage(vaddr);
    const uint64_t last = VPage(vaddr + bytes - 1);
    for (uint64_t vp = first; vp <= last; ++vp) {
      table_[vp] = PhysPage{kind, phys_base + (vp - first) * page_bytes_};
    }
  }

  std::optional<PhysPage> Find(uint64_t vaddr) const {
    guard_.Read();
    auto it = table_.find(VPage(vaddr));
    if (it == table_.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  bool Unmap(uint64_t vaddr) {
    guard_.Write();
    return table_.erase(VPage(vaddr)) > 0;
  }

  size_t size() const { return table_.size(); }

 private:
  uint64_t page_bytes_;
  std::unordered_map<uint64_t, PhysPage> table_;
  sim::AccessGuard guard_{"mmu.page_table"};
};

}  // namespace mmu
}  // namespace coyote

#endif  // SRC_MMU_PAGE_TABLE_H_
