# Empty dependencies file for bench_fig8_aes_ecb_sharing.
# This may be replaced when dependencies are built.
