// Kernel scheduler for on-demand partial reconfiguration (paper §4, §9.6).
//
// Prior shells "trigger reconfiguration of specific applications as user
// requests arrive, based on some scheduling policy"; Coyote v2 keeps that
// ability for its vFPGA regions. This scheduler owns the application layer:
// clients submit requests naming a kernel bitstream plus the work to run;
// the scheduler places each request on a free vFPGA, reconfiguring the
// region when the resident kernel differs.
//
// Policies:
//   kFcfs     — first come, first served onto the first free region.
//   kPriority — highest priority first among queued requests.
//   kAffinity — prefer a free region that already holds the requested
//               kernel, avoiding the reconfiguration entirely (the paper's
//               daemon pattern: hot kernels stay resident).

#ifndef SRC_RUNTIME_SCHEDULER_H_
#define SRC_RUNTIME_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/runtime/device.h"
#include "src/sim/access_guard.h"

namespace coyote {
namespace runtime {

class KernelScheduler {
 public:
  enum class Policy : uint8_t {
    kFcfs,
    kPriority,
    kAffinity,
  };

  struct Request {
    std::string bitstream_path;  // kernel to run (app bitstream)
    uint32_t priority = 0;       // larger = more urgent (kPriority)
    // The work: receives the assigned vFPGA id and a completion callback the
    // work must invoke when finished (frees the region).
    std::function<void(uint32_t vfpga_id, std::function<void()> done)> run;
  };

  KernelScheduler(SimDevice* dev, Policy policy) : dev_(dev), policy_(policy) {
    region_state_.resize(dev->num_vfpgas());
    // Submit() records a host-actor write in the same epoch as the completion
    // path's scheduler-actor write when a synchronously-finishing request
    // completes inside the submit event. That pairing is deliberately ordered:
    // dispatch itself is deferred through ScheduleAfter(0), so the queue is
    // only ever drained in a fresh epoch.
    sim::AccessLedger::Global().DeclareOrdered(sim::kActorHost, sim::kActorScheduler);
  }

  // Enqueues the request; dispatch happens from the event loop (so a batch
  // of submissions is scheduled together, respecting the policy).
  void Submit(Request request) {
    queue_guard_.Write();
    queue_.push_back(std::move(request));
    ++submitted_;
    Schedule();
  }

  // True when every submitted request has completed.
  bool Idle() const { return queue_.empty() && busy_regions_ == 0; }

  // --- Quarantine (supervision hooks) ----------------------------------------
  // A quarantined region is never picked for dispatch. The supervisor
  // quarantines a region before recovery and re-admits it after probation;
  // re-admission kicks the scheduler so queued work lands on it again.
  void SetQuarantined(uint32_t vfpga_id, bool quarantined);
  bool quarantined(uint32_t vfpga_id) const {
    return region_state_[vfpga_id].quarantined;
  }
  // The region was externally reset (recovery hot-swap): reap the hung
  // request so Idle() converges, and record what is now resident (empty =
  // nothing loaded). A stale completion from the reaped request is ignored.
  void NoteRegionReset(uint32_t vfpga_id, const std::string& resident_bitstream);

  // Declares which shard's engine owns this scheduler in a sharded run. A
  // completion or Submit() arriving from another shard's callback is then a
  // reported ShardViolation — the fix is to route it through
  // ShardedEngine::Post onto the owning shard.
  void BindShard(sim::ShardId shard) { queue_guard_.BindShard(shard); }

  uint64_t submitted() const { return submitted_; }
  uint64_t completed() const { return completed_; }
  uint64_t reconfigurations() const { return reconfigurations_; }
  uint64_t affinity_hits() const { return affinity_hits_; }
  uint64_t quarantine_events() const { return quarantine_events_; }
  uint64_t reaped_requests() const { return reaped_requests_; }

 private:
  struct RegionState {
    bool busy = false;
    bool quarantined = false;
    // Bumped by NoteRegionReset; a completion whose epoch is stale belongs to
    // a reaped request and must not double-free the region.
    uint64_t epoch = 0;
    std::string resident_bitstream;  // empty: nothing loaded
  };

  void Schedule();
  void DoSchedule();
  size_t PickRequest();
  int PickRegion(const Request& request);
  void Dispatch(size_t request_index, uint32_t vfpga_id);

  SimDevice* dev_;
  Policy policy_;
  std::vector<RegionState> region_state_;
  std::deque<Request> queue_;
  uint32_t busy_regions_ = 0;
  bool schedule_pending_ = false;
  bool dispatching_ = false;
  bool rerun_needed_ = false;

  sim::AccessGuard queue_guard_{"runtime.sched_queue"};
  uint64_t submitted_ = 0;
  uint64_t completed_ = 0;
  uint64_t reconfigurations_ = 0;
  uint64_t affinity_hits_ = 0;
  uint64_t quarantine_events_ = 0;
  uint64_t reaped_requests_ = 0;
};

}  // namespace runtime
}  // namespace coyote

#endif  // SRC_RUNTIME_SCHEDULER_H_
