// Simple data-path kernels: pass-through and element-wise vector ops.
//
// Pass-through is the micro-benchmark workhorse (Figs. 7(a)/7(b), Table 3).
// Vector add/mult are the paper's running examples for why multiple parallel
// streams matter (§2.2 Requirement 3): each operand arrives on its own
// stream instead of being packed into one in software.

#ifndef SRC_SERVICES_VECTOR_KERNELS_H_
#define SRC_SERVICES_VECTOR_KERNELS_H_

#include <cstdint>
#include <vector>

#include "src/axi/stream.h"
#include "src/services/stream_kernel.h"
#include "src/sim/access_guard.h"
#include "src/synth/module_library.h"
#include "src/vfpga/kernel.h"
#include "src/vfpga/vfpga.h"

namespace coyote {
namespace services {

class PassthroughKernel : public StreamKernel {
 public:
  PassthroughKernel() : StreamKernel({.bytes_per_cycle = 64, .pipeline_depth = 4}) {}
  std::string_view name() const override { return "passthrough"; }
  fabric::ResourceVector resources() const override {
    return synth::LibraryModule("passthrough").res;
  }
};

// A pass-through over the card (HBM) streams instead of the host streams;
// used by the Fig. 7(a) HBM scaling micro-benchmark. Input card stream i is
// forwarded to output card stream i, one 512-bit beat per HBM-side cycle.
class CardPassthroughKernel : public vfpga::HwKernel {
 public:
  std::string_view name() const override { return "card_passthrough"; }
  fabric::ResourceVector resources() const override {
    return synth::LibraryModule("passthrough").res;
  }
  void Attach(vfpga::Vfpga* region) override;
  void Detach() override;
  uint64_t bytes_processed() const { return bytes_; }

 private:
  void Pump(uint32_t stream_index);
  vfpga::Vfpga* region_ = nullptr;
  uint64_t bytes_ = 0;
};

enum class VectorOp : uint8_t { kAdd, kMult };

// Element-wise int32 binary operation: in streams 0 and 1 -> out stream 0.
// Uses the host streams or the card streams depending on `use_card`.
class VectorOpKernel : public vfpga::HwKernel {
 public:
  VectorOpKernel(VectorOp op, bool use_card) : op_(op), use_card_(use_card) {}

  std::string_view name() const override {
    return op_ == VectorOp::kAdd ? "vector_add" : "vector_mult";
  }
  fabric::ResourceVector resources() const override {
    return synth::LibraryModule(op_ == VectorOp::kAdd ? "vector_add" : "vector_mult").res;
  }

  void Attach(vfpga::Vfpga* region) override;
  void Detach() override;

 private:
  void Pump();
  axi::Stream& In(uint32_t i);
  axi::Stream& Out();

  VectorOp op_;
  bool use_card_;
  vfpga::Vfpga* region_ = nullptr;
  sim::AccessGuard guard_{"svc.vector_op"};
  std::vector<uint8_t> buf_a_, buf_b_;
  uint64_t pipe_free_cycle_ = 0;
  bool last_seen_ = false;
};

}  // namespace services
}  // namespace coyote

#endif  // SRC_SERVICES_VECTOR_KERNELS_H_
