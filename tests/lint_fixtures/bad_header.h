// Fixture: wrong include-guard name and a header-scope using-namespace,
// flagged by `header-guard` and `using-ns-header`.
#ifndef WRONG_GUARD_NAME_H
#define WRONG_GUARD_NAME_H

using namespace std;

inline int Answer() { return 42; }

#endif  // WRONG_GUARD_NAME_H
