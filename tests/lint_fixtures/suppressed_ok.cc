// Fixture: each violation carries its rule's suppression comment, so the
// linter must report nothing for this file.
#include <cstdint>
#include <unordered_map>

uint64_t OrderInsensitiveSum() {
  std::unordered_map<uint64_t, uint64_t> histogram;
  uint64_t sum = 0;
  // Commutative reduction: iteration order cannot leak into the result.
  for (const auto& [k, v] : histogram) {  // lint: ordered-ok
    sum += v;
  }
  return sum;
}

int* ArenaShim() {
  // lint: raw-alloc-ok
  return new int[16];
}

long FixtureOnlyWallClock() {
  return time(nullptr);  // lint: nondet-ok
}

int FixtureOnlyShell() {
  // lint: blocking-ok
  return system("true");
}
