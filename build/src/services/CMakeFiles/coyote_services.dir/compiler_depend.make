# Empty compiler generated dependencies file for coyote_services.
# This may be replaced when dependencies are built.
