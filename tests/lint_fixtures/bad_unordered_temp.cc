// Fixture: range-for over unordered *temporaries* — a by-value factory call,
// a reference-returning getter, and an inline construction. All three iterate
// in hash order even though no unordered variable is ever named.
#include <cstdint>
#include <unordered_set>

std::unordered_set<uint64_t> MakeUnorderedSet();
const std::unordered_set<uint64_t>& BorrowUnorderedSet();

uint64_t SumFactory() {
  uint64_t sum = 0;
  for (auto& x : MakeUnorderedSet()) {
    sum += x;
  }
  return sum;
}

uint64_t SumBorrowed() {
  uint64_t sum = 0;
  for (auto& x : BorrowUnorderedSet()) {
    sum += x;
  }
  return sum;
}

uint64_t SumInline() {
  uint64_t sum = 0;
  for (uint64_t x : std::unordered_set<uint64_t>{1, 2, 3}) {
    sum += x;
  }
  return sum;
}
