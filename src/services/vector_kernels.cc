#include "src/services/vector_kernels.h"

#include <algorithm>
#include <cstring>

#include "src/sim/clock.h"

namespace coyote {
namespace services {

void CardPassthroughKernel::Attach(vfpga::Vfpga* region) {
  region_ = region;
  bytes_ = 0;
  for (uint32_t i = 0; i < region->config().num_card_streams; ++i) {
    region->card_in(i).set_on_data([this, i]() { Pump(i); });
    Pump(i);
  }
}

void CardPassthroughKernel::Detach() {
  if (region_ != nullptr) {
    for (uint32_t i = 0; i < region_->config().num_card_streams; ++i) {
      region_->card_in(i).set_on_data(nullptr);
    }
    region_ = nullptr;
  }
}

void CardPassthroughKernel::Pump(uint32_t stream_index) {
  auto& in = region_->card_in(stream_index);
  while (!in.Empty()) {
    auto pkt = in.Pop();
    bytes_ += pkt->data.size();
    // Parallel card streams each have a dedicated data path (§6.3: no
    // interleaving needed for HBM); forward combinationally with a small
    // register delay.
    vfpga::Vfpga* r = region_;
    axi::StreamPacket out = std::move(*pkt);
    region_->engine()->ScheduleAfter(sim::kSystemClock.CyclesToPs(2),
                                     [r, stream_index, out = std::move(out)]() mutable {
                                       r->card_out(stream_index).Push(std::move(out));
                                     });
  }
}

axi::Stream& VectorOpKernel::In(uint32_t i) {
  return use_card_ ? region_->card_in(i) : region_->host_in(i);
}
axi::Stream& VectorOpKernel::Out() {
  return use_card_ ? region_->card_out(0) : region_->host_out(0);
}

void VectorOpKernel::Attach(vfpga::Vfpga* region) {
  region_ = region;
  guard_.Write();
  buf_a_.clear();
  buf_b_.clear();
  pipe_free_cycle_ = 0;
  last_seen_ = false;
  In(0).set_on_data([this]() { Pump(); });
  In(1).set_on_data([this]() { Pump(); });
  Pump();
}

void VectorOpKernel::Detach() {
  if (region_ != nullptr) {
    In(0).set_on_data(nullptr);
    In(1).set_on_data(nullptr);
    region_ = nullptr;
  }
}

void VectorOpKernel::Pump() {
  guard_.Write();
  // Drain both inputs into the operand buffers.
  bool last = false;
  while (!In(0).Empty()) {
    auto p = In(0).Pop();
    buf_a_.insert(buf_a_.end(), p->data.begin(), p->data.end());
    last |= p->last;
  }
  while (!In(1).Empty()) {
    auto p = In(1).Pop();
    buf_b_.insert(buf_b_.end(), p->data.begin(), p->data.end());
    last |= p->last;
  }
  last_seen_ |= last;

  const size_t n = std::min(buf_a_.size(), buf_b_.size()) / 4 * 4;
  if (n == 0) {
    return;
  }
  std::vector<uint8_t> out_bytes(n);
  for (size_t off = 0; off < n; off += 4) {
    int32_t a = 0, b = 0;
    std::memcpy(&a, &buf_a_[off], 4);
    std::memcpy(&b, &buf_b_[off], 4);
    const int32_t r = op_ == VectorOp::kAdd ? a + b : a * b;
    std::memcpy(&out_bytes[off], &r, 4);
  }
  buf_a_.erase(buf_a_.begin(), buf_a_.begin() + static_cast<ptrdiff_t>(n));
  buf_b_.erase(buf_b_.begin(), buf_b_.begin() + static_cast<ptrdiff_t>(n));

  const sim::Clock& clk = sim::kSystemClock;
  const uint64_t now_cycle = clk.PsToCycles(region_->engine()->Now());
  const uint64_t start = std::max(now_cycle, pipe_free_cycle_);
  const uint64_t busy = (n + axi::kDataBusBytes - 1) / axi::kDataBusBytes;
  pipe_free_cycle_ = start + busy;

  axi::StreamPacket out;
  out.data = std::move(out_bytes);
  out.last = last_seen_ && buf_a_.empty() && buf_b_.empty();
  vfpga::Vfpga* r = region_;
  axi::Stream* dst = &Out();
  region_->engine()->ScheduleAt(clk.CyclesToPs(pipe_free_cycle_ + 4),
                                [dst, out = std::move(out)]() mutable {
                                  dst->Push(std::move(out));
                                });
  (void)r;
}

}  // namespace services
}  // namespace coyote
