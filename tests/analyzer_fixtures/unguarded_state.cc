// Fixture: the guard-state inventory. Three classes mutate a container
// member from callback context: FlowTable registers no sim::AccessGuard
// (finding), ScratchPad suppresses without a reason (finding: reason
// required), AuditLog suppresses with a written reason (clean).
#include <cstdint>
#include <vector>

namespace fx {

class FlowTable {
 public:
  void Record(int id) { rows_.push_back(id); }

 private:
  std::vector<int> rows_;
};

class ScratchPad {
 public:
  void Stash(int v) { scratch_.push_back(v); }

 private:
  // lint: guard-ok
  std::vector<int> scratch_;
};

class AuditLog {
 public:
  void Append(int v) { entries_.push_back(v); }

 private:
  // lint: guard-ok append-only log, replayed single-threaded after the run
  std::vector<int> entries_;
};

class Engine {
 public:
  void ScheduleAt(long when, void (*fn)());
};

void ArmTables(Engine& engine, FlowTable& flows, ScratchPad& pad, AuditLog& log) {
  engine.ScheduleAt(1, [&] {
    flows.Record(1);
    pad.Stash(2);
    log.Append(3);
  });
}

}  // namespace fx
