# Empty compiler generated dependencies file for aes_multithreading.
# This may be replaced when dependencies are built.
