// vFPGA: one application-layer region with the generic interface (paper §7).
//
// Each vFPGA owns the full unified interface of Fig. 5:
//  * control bus        — AXI4-Lite CSRs, memory-mapped into user space
//  * interrupt channel  — kernel-raised interrupts with arbitrary values
//  * parallel host streams (in/out), card streams, network streams
//  * read/write send queues — hardware-issued DMA without host involvement
//  * read/write completion queues
//
// The region is a passive container: services (the data mover, the RDMA
// stack, the device runtime) connect to its streams and queues. Kernels are
// installed/removed by partial reconfiguration.

#ifndef SRC_VFPGA_VFPGA_H_
#define SRC_VFPGA_VFPGA_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/axi/axi_lite.h"
#include "src/axi/stream.h"
#include "src/mmu/types.h"
#include "src/sim/engine.h"
#include "src/vfpga/kernel.h"

namespace coyote {
namespace sim {
class FaultInjector;
}  // namespace sim
namespace vfpga {

// One entry of the hardware read/write send queues (paper §7.1): lets user
// logic trigger local and remote transfers by specifying buffer virtual
// address, length, operation type and target stream — the interface that
// makes pointer chasing possible without CPU round trips.
struct SendQueueEntry {
  bool is_write = false;  // read SQ vs write SQ
  uint64_t vaddr = 0;
  uint64_t bytes = 0;
  uint32_t stream = 0;
  uint32_t tid = 0;
  mmu::MemKind target = mmu::MemKind::kHost;
  bool remote = false;  // RDMA operation through the network service
  uint32_t qpn = 0;     // queue pair for remote ops
};

struct CompletionEntry {
  bool is_write = false;
  uint32_t stream = 0;
  uint32_t tid = 0;
  uint64_t bytes = 0;
  bool ok = true;
};

class Vfpga {
 public:
  struct Config {
    uint32_t num_host_streams = 4;
    uint32_t num_card_streams = 4;
    uint32_t num_net_streams = 2;
  };

  using SendHandler = std::function<void(const SendQueueEntry&)>;
  using InterruptHandler = std::function<void(uint64_t value)>;

  Vfpga(sim::Engine* engine, uint32_t id, const Config& config);

  uint32_t id() const { return id_; }
  sim::Engine* engine() { return engine_; }
  const Config& config() const { return config_; }

  // --- Parallel stream interfaces (index < configured count) ---------------
  axi::Stream& host_in(uint32_t i) { return *host_in_[i]; }
  axi::Stream& host_out(uint32_t i) { return *host_out_[i]; }
  axi::Stream& card_in(uint32_t i) { return *card_in_[i]; }
  axi::Stream& card_out(uint32_t i) { return *card_out_[i]; }
  axi::Stream& net_in(uint32_t i) { return *net_in_[i]; }
  axi::Stream& net_out(uint32_t i) { return *net_out_[i]; }

  // --- Control bus ----------------------------------------------------------
  axi::AxiLiteRegisterFile& csr() { return csr_; }

  // --- Interrupt channel ----------------------------------------------------
  // Kernel side: raise an interrupt with an arbitrary value.
  void RaiseUserInterrupt(uint64_t value) {
    ++user_interrupts_;
    if (interrupt_handler_) {
      interrupt_handler_(value);
    }
  }
  // Shell side: route interrupts (the device wires this to MSI-X).
  void SetInterruptHandler(InterruptHandler handler) {
    interrupt_handler_ = std::move(handler);
  }

  // --- Send queues -----------------------------------------------------------
  // Kernel side: post a descriptor; the shell-side handler executes it.
  void PostSend(const SendQueueEntry& entry) {
    ++sends_posted_;
    if (send_handler_) {
      send_handler_(entry);
    }
  }
  void SetSendHandler(SendHandler handler) { send_handler_ = std::move(handler); }

  // --- Completion queues ------------------------------------------------------
  void PushCompletion(CompletionEntry entry) {
    completions_.push_back(entry);
    if (completion_handler_) {
      completion_handler_(completions_.back());
    }
  }
  std::deque<CompletionEntry>& completions() { return completions_; }
  void SetCompletionHandler(std::function<void(const CompletionEntry&)> handler) {
    completion_handler_ = std::move(handler);
  }

  // --- Kernel lifecycle (partial reconfiguration target) ----------------------
  void LoadKernel(std::unique_ptr<HwKernel> kernel);
  void UnloadKernel();
  HwKernel* kernel() { return kernel_.get(); }

  // --- Health / supervision ----------------------------------------------------
  // Kernels call RetireBeat as they consume input: the monotone counter is
  // the region's heartbeat. A kernel that stops retiring beats while work is
  // outstanding is what the Supervisor declares hung.
  void RetireBeat(uint64_t beats) { beats_retired_ += beats; }
  uint64_t beats_retired() const { return beats_retired_; }
  // Checkpoint restore only: a migrated region resumes with the source's
  // heartbeat count so supervisor progress deltas stay monotone.
  void RestoreBeats(uint64_t beats) { beats_retired_ = beats; }

  // Drops all queued packets on every stream (recovery flush before the
  // region is reprogrammed). Returns the number of packets discarded.
  size_t FlushStreams();

  // Optional chaos hookup: kernels consult this at invocation time to decide
  // whether to simulate a hang. Null = no fault injection.
  void SetFaultInjector(sim::FaultInjector* injector) { fault_injector_ = injector; }
  sim::FaultInjector* fault_injector() { return fault_injector_; }

  uint64_t user_interrupts() const { return user_interrupts_; }
  uint64_t sends_posted() const { return sends_posted_; }

 private:
  sim::Engine* engine_;
  uint32_t id_;
  Config config_;

  std::vector<std::unique_ptr<axi::Stream>> host_in_, host_out_;
  std::vector<std::unique_ptr<axi::Stream>> card_in_, card_out_;
  std::vector<std::unique_ptr<axi::Stream>> net_in_, net_out_;
  axi::AxiLiteRegisterFile csr_;

  InterruptHandler interrupt_handler_;
  SendHandler send_handler_;
  std::function<void(const CompletionEntry&)> completion_handler_;
  std::deque<CompletionEntry> completions_;
  std::unique_ptr<HwKernel> kernel_;
  sim::FaultInjector* fault_injector_ = nullptr;

  uint64_t user_interrupts_ = 0;
  uint64_t sends_posted_ = 0;
  uint64_t beats_retired_ = 0;
};

}  // namespace vfpga
}  // namespace coyote

#endif  // SRC_VFPGA_VFPGA_H_
