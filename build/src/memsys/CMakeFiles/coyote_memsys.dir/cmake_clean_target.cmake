file(REMOVE_RECURSE
  "libcoyote_memsys.a"
)
