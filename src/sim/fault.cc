#include "src/sim/fault.h"

namespace coyote {
namespace sim {

namespace {

// Domain tags mixed into the master seed so the four streams are independent.
constexpr uint64_t kNetDomain = 0x6E65'74'00ull;
constexpr uint64_t kReconfigDomain = 0x7263'6E'66ull;
constexpr uint64_t kXdmaDomain = 0x7864'6D'61ull;
constexpr uint64_t kMmuDomain = 0x6D6D'75'00ull;
constexpr uint64_t kKernelDomain = 0x6B72'6E'6Cull;
constexpr uint64_t kQpDomain = 0x7170'77'64ull;
constexpr uint64_t kMigrationDomain = 0x6D69'67'72ull;

}  // namespace

FaultInjector::FaultInjector(Engine* engine, const FaultPlan& plan)
    : engine_(engine),
      plan_(plan),
      net_rng_(plan.seed ^ kNetDomain),
      reconfig_rng_(plan.seed ^ kReconfigDomain),
      xdma_rng_(plan.seed ^ kXdmaDomain),
      mmu_rng_(plan.seed ^ kMmuDomain),
      kernel_rng_(plan.seed ^ kKernelDomain),
      qp_rng_(plan.seed ^ kQpDomain),
      migration_rng_(plan.seed ^ kMigrationDomain) {}

void FaultInjector::Record(std::string_view what, uint64_t detail) {
  counters_.Increment(what);
  const TimePs now = engine_->Now();
  auto mix = [this](const void* data, size_t len) {
    const auto* p = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < len; ++i) {
      fingerprint_ ^= p[i];
      fingerprint_ *= 0x100000001b3ull;
    }
  };
  mix(what.data(), what.size());
  mix(&detail, sizeof(detail));
  mix(&now, sizeof(now));
}

FaultInjector::FrameDecision FaultInjector::OnFrame(uint32_t src_ip, uint32_t dst_ip,
                                                    uint64_t frame_bytes) {
  FrameDecision d;
  ++decisions_;
  // One uniform decides the action via cumulative rates, so the draw count
  // per frame is fixed regardless of which rates are non-zero.
  const double u = net_rng_.NextDouble();
  const double p_drop = plan_.frame_drop_rate;
  const double p_corrupt = p_drop + plan_.frame_corrupt_rate;
  const double p_dup = p_corrupt + plan_.frame_duplicate_rate;
  const double p_delay = p_dup + plan_.frame_delay_rate;
  // Second draw supplies fault parameters; always consumed for schedule
  // stability.
  const uint64_t entropy = net_rng_.Next();

  const uint64_t key = (static_cast<uint64_t>(src_ip) << 32) | dst_ip;
  if (u < p_drop) {
    d.action = FrameAction::kDrop;
    Record("net.frame_drop", key ^ frame_bytes);
  } else if (u < p_corrupt) {
    d.action = FrameAction::kCorrupt;
    d.corrupt_entropy = entropy;
    Record("net.frame_corrupt", key ^ entropy);
  } else if (u < p_dup) {
    d.action = FrameAction::kDuplicate;
    Record("net.frame_duplicate", key ^ frame_bytes);
  } else if (u < p_delay) {
    d.action = FrameAction::kDelay;
    const TimePs span = plan_.frame_delay_max > plan_.frame_delay_min
                            ? plan_.frame_delay_max - plan_.frame_delay_min
                            : 0;
    d.delay = plan_.frame_delay_min + (span == 0 ? 0 : entropy % span);
    Record("net.frame_delay", d.delay);
  }
  return d;
}

bool FaultInjector::NodeDown(uint32_t ip) const {
  const TimePs now = engine_->Now();
  for (const auto& o : plan_.outages) {
    if (o.ip == ip && now >= o.start && now < o.end) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::DropForOutage(uint32_t src_ip, uint32_t dst_ip) {
  if (!NodeDown(src_ip) && !NodeDown(dst_ip)) {
    return false;
  }
  Record("net.outage_drop", (static_cast<uint64_t>(src_ip) << 32) | dst_ip);
  return true;
}

bool FaultInjector::NextReconfigFails() {
  ++decisions_;
  const uint32_t index = reconfig_programs_seen_++;
  const double u = reconfig_rng_.NextDouble();
  if (index < plan_.reconfig_fail_first_n || u < plan_.reconfig_fail_rate) {
    Record("reconfig.fail", index);
    return true;
  }
  return false;
}

double FaultInjector::NextReconfigSlowdown() {
  ++decisions_;
  if (reconfig_rng_.NextDouble() < plan_.reconfig_slowdown_rate) {
    Record("reconfig.slowdown", 0);
    return plan_.reconfig_slowdown_factor;
  }
  return 1.0;
}

TimePs FaultInjector::NextXdmaStall() {
  ++decisions_;
  if (xdma_rng_.NextDouble() < plan_.xdma_stall_rate) {
    Record("xdma.stall", plan_.xdma_stall_ps);
    return plan_.xdma_stall_ps;
  }
  return 0;
}

bool FaultInjector::NextForcedTlbMiss() {
  ++decisions_;
  if (mmu_rng_.NextDouble() < plan_.tlb_force_miss_rate) {
    Record("mmu.forced_tlb_miss", 0);
    return true;
  }
  return false;
}

bool FaultInjector::NextKernelHang() {
  ++decisions_;
  const uint32_t index = kernel_invocations_seen_++;
  const double u = kernel_rng_.NextDouble();
  if (index < plan_.kernel_hang_first_n || u < plan_.kernel_hang_rate) {
    Record("kernel.hang", index);
    return true;
  }
  return false;
}

bool FaultInjector::NextQpWedge() {
  ++decisions_;
  const uint32_t index = qp_posts_seen_++;
  const double u = qp_rng_.NextDouble();
  if (index < plan_.qp_wedge_first_n || u < plan_.qp_wedge_rate) {
    Record("qp.wedge", index);
    return true;
  }
  return false;
}

bool FaultInjector::NextMigrationChunkDrop() {
  ++decisions_;
  const uint32_t index = migration_chunks_seen_++;
  const double u = migration_rng_.NextDouble();
  if (index < plan_.migration_chunk_drop_first_n || u < plan_.migration_chunk_drop_rate) {
    Record("migration.chunk_drop", index);
    return true;
  }
  return false;
}

uint64_t FaultInjector::NextCheckpointCorrupt() {
  ++decisions_;
  // Entropy drawn unconditionally so enabling the rate never shifts the
  // chunk-drop/restore schedules sharing this stream.
  const uint64_t entropy = migration_rng_.Next();
  const double u = migration_rng_.NextDouble();
  if (u < plan_.checkpoint_corrupt_rate) {
    Record("migration.ckpt_corrupt", entropy);
    return entropy | 1ull;  // never 0: 0 means "deliver clean"
  }
  return 0;
}

bool FaultInjector::NextRestoreFail() {
  ++decisions_;
  const uint32_t index = restores_seen_++;
  const double u = migration_rng_.NextDouble();
  if (index < plan_.restore_fail_first_n || u < plan_.restore_fail_rate) {
    Record("migration.restore_fail", index);
    return true;
  }
  return false;
}

}  // namespace sim
}  // namespace coyote
