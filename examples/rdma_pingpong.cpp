// RDMA between two Coyote v2 FPGAs over a switched 100G network (paper §6.2).
//
// Two devices share an event engine and a network; each runs the RoCE v2
// service (BALBOA). The example connects a queue pair, then:
//   1. measures write latency with a ping-pong (A writes to B, B writes back),
//   2. measures one-sided RDMA WRITE throughput for growing message sizes,
//   3. demonstrates RDMA READ fetching remote data.
// All payloads are real bytes, verified at each step.

#include <cstdio>
#include <cstring>
#include <vector>

#include "src/net/network.h"
#include "src/runtime/cthread.h"
#include "src/runtime/device.h"
#include "src/sim/rng.h"

using namespace coyote;

namespace {

runtime::SimDevice::Config NodeConfig(const char* name, uint32_t ip) {
  runtime::SimDevice::Config cfg;
  cfg.shell.name = name;
  cfg.shell.services = {fabric::Service::kHostStream, fabric::Service::kCardMemory,
                        fabric::Service::kRdma};
  cfg.shell.num_vfpgas = 1;
  cfg.ip = ip;
  return cfg;
}

}  // namespace

int main() {
  sim::Engine engine;
  net::Network network(&engine, {});

  constexpr uint32_t kIpA = 0x0A000001, kIpB = 0x0A000002;
  runtime::SimDevice node_a(NodeConfig("node-a", kIpA), &network, &engine);
  runtime::SimDevice node_b(NodeConfig("node-b", kIpB), &network, &engine);

  runtime::cThread ta(&node_a, 0);
  runtime::cThread tb(&node_b, 0);

  // Exchange QP numbers (out of band, as with RDMA CM).
  const uint32_t qp_a = ta.CreateQp();
  const uint32_t qp_b = tb.CreateQp();
  ta.ConnectQp(qp_a, kIpB, qp_b);
  tb.ConnectQp(qp_b, kIpA, qp_a);

  constexpr uint64_t kBufBytes = 8 << 20;
  const uint64_t a_buf = ta.GetMem({runtime::Alloc::kHpf, kBufBytes});
  const uint64_t b_buf = tb.GetMem({runtime::Alloc::kHpf, kBufBytes});

  // --- 1. Ping-pong latency (64 B messages) --------------------------------
  {
    std::vector<uint8_t> ping(64, 0x11);
    ta.WriteBuffer(a_buf, ping.data(), 64);
    constexpr int kIters = 50;
    const sim::TimePs start = engine.Now();
    for (int i = 0; i < kIters; ++i) {
      bool pong_done = false;
      // B echoes when the write lands.
      node_b.roce()->SetWriteArrivalHandler(qp_b, [&](uint64_t, uint64_t bytes) {
        node_b.roce()->PostWrite(qp_b, b_buf, a_buf, bytes, nullptr);
      });
      node_a.roce()->SetWriteArrivalHandler(qp_a, [&](uint64_t, uint64_t) {
        pong_done = true;
      });
      node_a.roce()->PostWrite(qp_a, a_buf, b_buf, 64, nullptr);
      engine.RunUntilCondition([&]() { return pong_done; });
    }
    const double rtt_us = sim::ToMicroseconds(engine.Now() - start) / kIters;
    std::printf("ping-pong: 64 B RDMA WRITE round trip = %.2f us (half RTT %.2f us)\n",
                rtt_us, rtt_us / 2);
    node_a.roce()->SetWriteArrivalHandler(qp_a, nullptr);
    node_b.roce()->SetWriteArrivalHandler(qp_b, nullptr);
  }

  // --- 2. One-sided WRITE throughput ----------------------------------------
  std::printf("\n%-14s %20s\n", "Message [KB]", "WRITE tput [GB/s]");
  for (uint64_t kb : {4ull, 64ull, 1024ull, 8192ull}) {
    const uint64_t bytes = kb << 10;
    std::vector<uint8_t> payload(bytes);
    sim::Rng rng(kb);
    rng.FillBytes(payload.data(), bytes);
    ta.WriteBuffer(a_buf, payload.data(), bytes);

    const sim::TimePs start = engine.Now();
    runtime::SgEntry sg;
    sg.rdma = {.qpn = qp_a, .local_addr = a_buf, .remote_addr = b_buf, .len = bytes};
    ta.InvokeSync(runtime::Oper::kRemoteWrite, sg);
    const double gbps = sim::BandwidthGBps(bytes, engine.Now() - start);

    std::vector<uint8_t> received(bytes);
    tb.ReadBuffer(b_buf, received.data(), bytes);
    std::printf("%-14llu %20.2f %s\n", static_cast<unsigned long long>(kb), gbps,
                received == payload ? "" : "[DATA MISMATCH]");
  }

  // --- 3. RDMA READ -----------------------------------------------------------
  {
    std::vector<uint8_t> remote_data(1 << 20);
    sim::Rng rng(99);
    rng.FillBytes(remote_data.data(), remote_data.size());
    tb.WriteBuffer(b_buf, remote_data.data(), remote_data.size());

    runtime::SgEntry sg;
    sg.rdma = {.qpn = qp_a, .local_addr = a_buf, .remote_addr = b_buf,
               .len = remote_data.size()};
    const sim::TimePs start = engine.Now();
    ta.InvokeSync(runtime::Oper::kRemoteRead, sg);
    std::vector<uint8_t> fetched(remote_data.size());
    ta.ReadBuffer(a_buf, fetched.data(), fetched.size());
    std::printf("\nRDMA READ: fetched 1 MB in %.1f us, data %s\n",
                sim::ToMicroseconds(engine.Now() - start),
                fetched == remote_data ? "verified" : "MISMATCH");
  }

  std::printf("\nstack stats: node A sent %llu frames (%llu retransmitted), "
              "network delivered %llu frames\n",
              static_cast<unsigned long long>(node_a.roce()->tx_frames()),
              static_cast<unsigned long long>(node_a.roce()->retransmitted_frames()),
              static_cast<unsigned long long>(network.frames_delivered()));
  return 0;
}
