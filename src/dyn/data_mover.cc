#include "src/dyn/data_mover.h"

#include <cassert>
#include <utility>

#include "src/sim/access_guard.h"

namespace coyote {
namespace dyn {

namespace {
// Arbitration source id for page migrations on the shared links.
constexpr uint32_t kMigrationSource = 0xFFFF'FFFD;
}  // namespace

struct DataMover::ReadOp {
  TransferRequest req;
  axi::Stream* dst = nullptr;
  Completion done;
  uint64_t next_issue = 0;        // byte offset of the next packet to issue
  uint64_t next_seq_issue = 0;    // sequence number of the next packet
  uint64_t next_seq_deliver = 0;  // in-order delivery cursor
  std::map<uint64_t, axi::StreamPacket> reorder;
  uint64_t packets_delivered = 0;
  uint64_t packets_total = 0;
  bool failed = false;
  bool completed = false;
};

struct DataMover::WriteOp {
  TransferRequest req;
  axi::Stream* src = nullptr;
  Completion done;
  uint64_t consumed = 0;  // bytes popped from the source stream
  uint64_t written = 0;   // bytes committed to memory
  bool failed = false;
  bool completed = false;
};

DataMover::DataMover(sim::Engine* engine, mmu::Svm* svm, memsys::CardMemory* card,
                     memsys::GpuMemory* gpu, XdmaCore* xdma, const Config& config)
    : engine_(engine),
      svm_(svm),
      card_(card),
      gpu_(gpu),
      xdma_(xdma),
      config_(config),
      gpu_link_(engine, {config.gpu_p2p_bps, 0, sim::Nanoseconds(900), "gpu_p2p"}) {}

void DataMover::RegisterVfpga(uint32_t vfpga_id, mmu::Mmu* mmu) { mmus_[vfpga_id] = mmu; }

axi::CreditCounter& DataMover::CreditsFor(
    std::map<std::pair<uint64_t, uint32_t>, std::unique_ptr<axi::CreditCounter>>& table,
    uint32_t vfpga_id, uint32_t stream) {
  const auto key = std::make_pair(static_cast<uint64_t>(vfpga_id), stream);
  auto it = table.find(key);
  if (it == table.end()) {
    it = table.emplace(key, std::make_unique<axi::CreditCounter>(config_.credits_per_stream))
             .first;
  }
  return *it->second;
}

axi::CreditCounter& DataMover::ReadCredits(uint32_t vfpga_id, uint32_t stream) {
  return CreditsFor(read_credits_, vfpga_id, stream);
}
axi::CreditCounter& DataMover::WriteCredits(uint32_t vfpga_id, uint32_t stream) {
  return CreditsFor(write_credits_, vfpga_id, stream);
}

void DataMover::SubmitPhysical(uint32_t vfpga_id, mmu::MemKind kind, uint64_t phys_addr,
                               uint64_t bytes, std::function<void()> on_done) {
  switch (kind) {
    case mmu::MemKind::kHost:
      // Direction chosen by the caller via which link it implies; reads from
      // host memory traverse H2C, writes to host memory traverse C2H. The
      // caller encodes this by the `phys_addr` being unused for host DRAM
      // timing — both directions share the same model, so route on a flag
      // folded into this function is unnecessary: reads call through
      // SubmitHostRead/Write wrappers below.
      xdma_->h2c().Submit(vfpga_id, bytes, std::move(on_done));
      break;
    case mmu::MemKind::kCard:
      card_->Access(phys_addr, bytes, vfpga_id, std::move(on_done));
      break;
    case mmu::MemKind::kGpu:
      gpu_link_.Submit(vfpga_id, bytes, std::move(on_done));
      break;
    case mmu::MemKind::kNvme: {
      // Reading a cold page in place: the NVMe command latency dominates.
      // The tiering service exists to make this path rare.
      assert(nvme_ != nullptr && "kNvme residency without an attached drive");
      const uint64_t bb = nvme_->config().block_bytes;
      nvme_->ReadCommand(phys_addr / bb, static_cast<uint32_t>((bytes + bb - 1) / bb),
                         vfpga_id, std::move(on_done));
      break;
    }
  }
}

void DataMover::Read(const TransferRequest& req, axi::Stream* dst, Completion done) {
  auto op = std::make_shared<ReadOp>();
  op->req = req;
  op->dst = dst;
  op->done = std::move(done);

  // Count packets (page-boundary-aware) so delivery knows when it is done.
  const uint64_t page = svm_->page_table().page_bytes();
  uint64_t off = 0;
  while (off < req.bytes) {
    const uint64_t to_page_end = page - ((req.vaddr + off) % page);
    const uint64_t n = std::min({config_.packet_bytes, req.bytes - off, to_page_end});
    off += n;
    ++op->packets_total;
  }
  if (op->packets_total == 0) {
    engine_->ScheduleAfter(0, [op]() {
      if (op->done) {
        op->done(true);
      }
    });
    return;
  }

  // Wire credit replenishment: every packet the kernel pops from this stream
  // frees one destination-queue slot.
  axi::CreditCounter& credits = ReadCredits(req.vfpga_id, req.stream);
  dst->set_on_space([&credits]() { credits.Release(1); });

  // Serialize transfers per (vfpga, stream): only the queue head issues.
  auto& queue = read_queues_[{req.vfpga_id, req.stream}];
  queue.push_back(op);
  if (queue.size() == 1) {
    IssueReadPackets(op);
  }
}

void DataMover::IssueReadPackets(const std::shared_ptr<ReadOp>& op) {
  mmu::Mmu* mmu = mmus_.at(op->req.vfpga_id);
  axi::CreditCounter& credits = ReadCredits(op->req.vfpga_id, op->req.stream);
  const uint64_t page = svm_->page_table().page_bytes();

  while (op->next_issue < op->req.bytes && !op->failed) {
    if (!credits.TryAcquire()) {
      credits.WaitForCredit([this, op]() { IssueReadPackets(op); });
      return;
    }
    const uint64_t off = op->next_issue;
    const uint64_t vaddr = op->req.vaddr + off;
    const uint64_t to_page_end = page - (vaddr % page);
    const uint64_t n = std::min({config_.packet_bytes, op->req.bytes - off, to_page_end});
    const uint64_t seq = op->next_seq_issue++;
    op->next_issue += n;

    mmu->Translate(vaddr, [this, op, mmu, vaddr, off, n, seq](std::optional<mmu::PhysPage> e) {
      if (op->completed) {
        // Aborted while the translation was in flight; the result is stale.
        return;
      }
      auto fail = [this, op]() {
        xdma_->RaiseMsix(kMsixPageFault, op->req.vaddr);
        ++page_fault_irqs_;
        if (!op->failed) {
          op->failed = true;
          if (op->done && !op->completed) {
            op->completed = true;
            op->done(false);
          }
          // A faulted transfer must not wedge the stream's descriptor queue.
          RetireReadOp(op);
        }
      };
      if (!e) {
        fail();
        return;
      }
      auto proceed = [this, op, vaddr, off, n, seq](mmu::PhysPage pg) {
        const uint64_t page_bytes = svm_->page_table().page_bytes();
        const uint64_t phys = pg.addr + (vaddr % page_bytes);
        SubmitPhysical(op->req.vfpga_id, pg.kind, phys, n, [this, op, vaddr, off, n, seq]() {
          if (op->completed) {
            // Aborted while the physical read was in flight: the op's buffers
            // may already be unmapped (shed/evacuation frees them right after
            // AbortVfpga), so drop the packet without touching the SVM.
            return;
          }
          axi::StreamPacket pkt;
          pkt.data.resize(n);
          svm_->ReadVirtual(vaddr, pkt.data.data(), n);
          pkt.tid = op->req.tid;
          pkt.tdest = op->req.stream;
          pkt.last = (off + n == op->req.bytes);
          DeliverInOrder(op, seq, std::move(pkt));
        });
      };
      if (e->kind != op->req.target) {
        // Page fault: data not in the memory this transfer addresses.
        // Migrate the page, then re-translate (untimed: the driver already
        // has the new entry in hand when it resumes the transfer).
        const uint64_t page_bytes = svm_->page_table().page_bytes();
        const uint64_t page_base = (vaddr / page_bytes) * page_bytes;
        svm_->EnsureResident(page_base, page_bytes, op->req.target,
                             [this, op, mmu, vaddr, proceed, fail]() {
                               auto e2 = mmu->TranslateUntimed(vaddr);
                               if (!e2) {
                                 fail();
                                 return;
                               }
                               proceed(*e2);
                             });
      } else {
        proceed(*e);
      }
    });
  }
}

void DataMover::DeliverInOrder(const std::shared_ptr<ReadOp>& op, uint64_t seq,
                               axi::StreamPacket pkt) {  // lint: hot-copy-ok (sink owns)
  if (op->completed || op->failed) {
    // Aborted or faulted op: in-flight packets drain to the floor rather
    // than leaking a dead kernel's data into the destination stream.
    return;
  }
  op->reorder.emplace(seq, std::move(pkt));
  while (!op->reorder.empty() && op->reorder.begin()->first == op->next_seq_deliver) {
    op->dst->Push(std::move(op->reorder.begin()->second));
    op->reorder.erase(op->reorder.begin());
    ++op->next_seq_deliver;
    ++op->packets_delivered;
    ++packets_moved_;
    ++packets_moved_by_vfpga_[op->req.vfpga_id];
  }
  if (op->packets_delivered == op->packets_total && !op->completed) {
    op->completed = true;
    if (op->done) {
      op->done(true);
    }
    RetireReadOp(op);
  }
}

void DataMover::RetireReadOp(const std::shared_ptr<ReadOp>& op) {
  auto it = read_queues_.find({op->req.vfpga_id, op->req.stream});
  if (it != read_queues_.end() && !it->second.empty() && it->second.front() == op) {
    it->second.pop_front();
    if (!it->second.empty()) {
      IssueReadPackets(it->second.front());
    }
  }
}

void DataMover::Write(const TransferRequest& req, axi::Stream* src, Completion done) {
  auto op = std::make_shared<WriteOp>();
  op->req = req;
  op->src = src;
  op->done = std::move(done);
  if (req.bytes == 0) {
    engine_->ScheduleAfter(0, [op]() {
      if (op->done) {
        op->done(true);
      }
    });
    return;
  }
  // Keep the per-region abort index tight: completed ops expire their weak
  // pointers, which we prune before appending.
  auto& index = write_ops_by_vfpga_[req.vfpga_id];
  std::erase_if(index, [](const std::weak_ptr<WriteOp>& w) { return w.expired(); });
  index.push_back(op);
  auto& queue = write_queues_[src];
  queue.push_back(op);
  src->set_on_data([this, src]() { PumpWrites(src); });
  PumpWrites(src);
}

void DataMover::PumpWrites(axi::Stream* src) {
  auto& queue = write_queues_[src];
  while (!queue.empty()) {
    std::shared_ptr<WriteOp> op = queue.front();
    if (op->consumed == op->req.bytes) {
      // Fully consumed; completion fires when writes land. Next op owns the
      // stream from here.
      queue.pop_front();
      continue;
    }
    if (src->Empty()) {
      return;
    }
    axi::CreditCounter& credits = WriteCredits(op->req.vfpga_id, op->req.stream);
    if (!credits.TryAcquire()) {
      credits.WaitForCredit([this, src]() { PumpWrites(src); });
      return;
    }
    auto pkt = src->Pop();
    assert(pkt.has_value());
    const uint64_t n = pkt->data.size();
    assert(op->consumed + n <= op->req.bytes &&
           "kernel produced more bytes than the write request covers");
    const uint64_t off = op->consumed;
    op->consumed += n;

    mmu::Mmu* mmu = mmus_.at(op->req.vfpga_id);
    const uint64_t vaddr = op->req.vaddr + off;
    // Take over the packet's payload view: the capture chain below shares the
    // ref-counted buffer instead of copying the bytes per hop.
    const axi::BufferView data = std::move(pkt->data);

    mmu->Translate(vaddr, [this, op, mmu, vaddr, data, &credits](std::optional<mmu::PhysPage> e) {
      if (op->completed) {
        // Aborted while the translation was in flight; the result is stale
        // and the credit counter was already reset by the abort.
        return;
      }
      auto fail = [this, op, &credits]() {
        if (op->completed) {
          return;
        }
        xdma_->RaiseMsix(kMsixPageFault, op->req.vaddr);
        ++page_fault_irqs_;
        credits.Release(1);
        op->failed = true;
        op->completed = true;
        if (op->done) {
          op->done(false);
        }
      };
      if (!e) {
        fail();
        return;
      }
      auto commit = [this, op, vaddr, data, &credits](mmu::PhysPage pg) {
        const uint64_t page_bytes = svm_->page_table().page_bytes();
        const uint64_t phys = pg.addr + (vaddr % page_bytes);
        // Writes to host memory travel C2H; card/GPU use their own paths.
        auto finish = [this, op, vaddr, data, &credits]() {
          if (op->completed) {
            // Aborted mid-flight: drop the data, and leave the credit
            // counter alone — the abort reset it to full.
            return;
          }
          svm_->WriteVirtual(vaddr, data.data(), data.size());
          op->written += data.size();
          ++packets_moved_;
          ++packets_moved_by_vfpga_[op->req.vfpga_id];
          credits.Release(1);
          if (op->written == op->req.bytes && !op->completed) {
            op->completed = true;
            if (op->done) {
              op->done(true);
            }
          }
        };
        switch (pg.kind) {
          case mmu::MemKind::kHost:
            xdma_->c2h().Submit(op->req.vfpga_id, data.size(), finish);
            break;
          case mmu::MemKind::kCard:
            card_->Access(phys, data.size(), op->req.vfpga_id, finish);
            break;
          case mmu::MemKind::kGpu:
            gpu_link_.Submit(op->req.vfpga_id, data.size(), finish);
            break;
          case mmu::MemKind::kNvme: {
            assert(nvme_ != nullptr && "kNvme residency without an attached drive");
            const uint64_t bb = nvme_->config().block_bytes;
            nvme_->WriteCommand(phys / bb,
                                static_cast<uint32_t>((data.size() + bb - 1) / bb),
                                op->req.vfpga_id, finish);
            break;
          }
        }
      };
      if (e->kind != op->req.target) {
        const uint64_t page_bytes = svm_->page_table().page_bytes();
        const uint64_t page_base = (vaddr / page_bytes) * page_bytes;
        svm_->EnsureResident(page_base, page_bytes, op->req.target,
                             [this, op, mmu, vaddr, commit, fail]() {
                               auto e2 = mmu->TranslateUntimed(vaddr);
                               if (!e2) {
                                 fail();
                                 return;
                               }
                               commit(*e2);
                             });
      } else {
        commit(*e);
      }
    });
  }
}

void DataMover::Migrate(uint32_t vfpga_id, uint64_t vaddr, uint64_t bytes, mmu::MemKind to,
                        Completion done) {
  (void)vfpga_id;
  svm_->EnsureResident(vaddr, bytes, to, [done = std::move(done)]() {
    if (done) {
      done(true);
    }
  });
}

size_t DataMover::OutstandingOps(uint32_t vfpga_id) const {
  size_t live = 0;
  const auto lo = read_queues_.lower_bound({vfpga_id, 0});
  const auto hi = read_queues_.lower_bound({static_cast<uint64_t>(vfpga_id) + 1, 0});
  for (auto it = lo; it != hi; ++it) {
    for (const auto& op : it->second) {
      if (!op->completed) {
        ++live;
      }
    }
  }
  auto wit = write_ops_by_vfpga_.find(vfpga_id);
  if (wit != write_ops_by_vfpga_.end()) {
    for (const auto& weak : wit->second) {
      if (auto op = weak.lock(); op && !op->completed) {
        ++live;
      }
    }
  }
  return live;
}

uint64_t DataMover::AbortVfpga(uint32_t vfpga_id) {
  uint64_t aborted = 0;

  // Error-complete the op if it is still live. Ordering is deterministic:
  // read queues in (vfpga, stream) key order, then writes in issue order.
  auto kill_read = [&aborted](const std::shared_ptr<ReadOp>& op) {
    if (op->completed) {
      return;
    }
    op->failed = true;
    op->completed = true;
    ++aborted;
    if (op->done) {
      op->done(false);
    }
  };
  const auto lo = read_queues_.lower_bound({vfpga_id, 0});
  const auto hi = read_queues_.lower_bound({static_cast<uint64_t>(vfpga_id) + 1, 0});
  for (auto it = lo; it != hi; ++it) {
    for (auto& op : it->second) {
      kill_read(op);
    }
    it->second.clear();
  }

  auto wit = write_ops_by_vfpga_.find(vfpga_id);
  if (wit != write_ops_by_vfpga_.end()) {
    for (auto& weak : wit->second) {
      auto op = weak.lock();
      if (!op || op->completed) {
        continue;
      }
      op->failed = true;
      op->completed = true;
      ++aborted;
      if (op->done) {
        op->done(false);
      }
      // Unlink from the source stream's descriptor queue so PumpWrites never
      // waits on bytes the dead kernel will not produce.
      auto qit = write_queues_.find(op->src);
      if (qit != write_queues_.end()) {
        std::erase(qit->second, op);
      }
    }
    write_ops_by_vfpga_.erase(wit);
  }

  // Fresh credit state for the reprogrammed region; stale waiters belong to
  // the aborted ops and are dropped.
  const auto clo = std::make_pair(static_cast<uint64_t>(vfpga_id), 0u);
  const auto chi = std::make_pair(static_cast<uint64_t>(vfpga_id) + 1, 0u);
  for (auto it = read_credits_.lower_bound(clo); it != read_credits_.lower_bound(chi); ++it) {
    it->second->Reset(config_.credits_per_stream);
  }
  for (auto it = write_credits_.lower_bound(clo); it != write_credits_.lower_bound(chi); ++it) {
    it->second->Reset(config_.credits_per_stream);
  }

  // TLB shootdown: the recovered region must re-fault its translations, like
  // the invalidation hook this runs as the DMA actor.
  auto mit = mmus_.find(vfpga_id);
  if (mit != mmus_.end()) {
    sim::ActorScope actor(sim::kActorDma);
    mit->second->InvalidateTlbAll();
  }

  aborted_ops_ += aborted;
  return aborted;
}

mmu::Svm::MigrationHooks DataMover::MakeMigrationHooks() {
  mmu::Svm::MigrationHooks hooks;
  hooks.transfer = [this](mmu::MemKind from, mmu::MemKind to, uint64_t bytes,
                          std::function<void()> cb) {
    if (from == mmu::MemKind::kGpu || to == mmu::MemKind::kGpu) {
      gpu_link_.Submit(kMigrationSource, bytes, std::move(cb));
    } else if (to == mmu::MemKind::kNvme) {
      // Cold demotion wave: one bulk write command to the drive (the
      // write-back cache acks quickly; sustained bandwidth still gates).
      assert(nvme_ != nullptr && "demoting to kNvme without an attached drive");
      const uint64_t bb = nvme_->config().block_bytes;
      nvme_->WriteCommand(0, static_cast<uint32_t>((bytes + bb - 1) / bb), kMigrationSource,
                          std::move(cb));
    } else if (from == mmu::MemKind::kNvme) {
      // Promotion out of the cold tier: the drive read dominates; a card
      // destination additionally crosses H2C and occupies the HBM crossbar.
      assert(nvme_ != nullptr && "promoting from kNvme without an attached drive");
      const uint64_t bb = nvme_->config().block_bytes;
      const auto blocks = static_cast<uint32_t>((bytes + bb - 1) / bb);
      if (to == mmu::MemKind::kCard) {
        nvme_->ReadCommand(0, blocks, kMigrationSource,
                           [this, bytes, cb = std::move(cb)]() mutable {
                             xdma_->h2c().Submit(kMigrationSource, bytes,
                                                 [this, bytes, cb = std::move(cb)]() mutable {
                                                   card_->Access(0, bytes, kMigrationSource,
                                                                 std::move(cb));
                                                 });
                           });
      } else {
        nvme_->ReadCommand(0, blocks, kMigrationSource, std::move(cb));
      }
    } else if (to == mmu::MemKind::kCard) {
      // host -> card: data crosses the H2C direction, then lands in HBM; the
      // HBM side is faster, so PCIe dominates; we additionally charge the
      // card-side write to model crossbar occupancy.
      xdma_->h2c().Submit(kMigrationSource, bytes, [this, bytes, cb = std::move(cb)]() mutable {
        card_->Access(0, bytes, kMigrationSource, std::move(cb));
      });
    } else {
      xdma_->c2h().Submit(kMigrationSource, bytes, std::move(cb));
    }
  };
  hooks.invalidate = [this](uint64_t vaddr) {
    // TLB shootdown runs as the DMA actor: it touches every vFPGA's TLB, and
    // a same-epoch translation by another actor is a modeled race.
    sim::ActorScope actor(sim::kActorDma);
    for (auto& [id, mmu] : mmus_) {
      mmu->InvalidateTlb(vaddr);
    }
  };
  return hooks;
}

}  // namespace dyn
}  // namespace coyote
