# Empty compiler generated dependencies file for coyote_memsys.
# This may be replaced when dependencies are built.
