# Empty compiler generated dependencies file for coyote_hlscompat.
# This may be replaced when dependencies are built.
