file(REMOVE_RECURSE
  "CMakeFiles/coyote_vfpga.dir/vfpga.cc.o"
  "CMakeFiles/coyote_vfpga.dir/vfpga.cc.o.d"
  "libcoyote_vfpga.a"
  "libcoyote_vfpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coyote_vfpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
