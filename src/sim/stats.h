// Lightweight statistics helpers shared by tests and the benchmark harness.

#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace coyote {
namespace sim {

// Online mean/stddev/min/max accumulator (Welford).
class Summary {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  // Bit-exact comparison: two deterministic runs that fed the same samples in
  // the same order produce equal Summaries (the chaos tests rely on this).
  bool operator==(const Summary&) const = default;

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed set of samples with percentile queries; used for latency reporting.
class Samples {
 public:
  void Add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }

  uint64_t count() const { return values_.size(); }

  double Percentile(double p) {
    if (values_.empty()) {
      return 0.0;
    }
    if (!sorted_) {
      std::sort(values_.begin(), values_.end());
      sorted_ = true;
    }
    const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, values_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values_[lo] * (1.0 - frac) + values_[hi] * frac;
  }

  double Mean() const {
    if (values_.empty()) {
      return 0.0;
    }
    double s = 0.0;
    for (double v : values_) {
      s += v;
    }
    return s / static_cast<double>(values_.size());
  }

  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
  bool sorted_ = false;
};

// Named monotonic counters with deterministic (sorted) iteration order.
// Subsystems that inject or absorb faults account every event here, so a test
// can assert that two runs with the same seed saw the exact same fault
// schedule by comparing fingerprints.
class CounterSet {
 public:
  void Increment(std::string_view name, uint64_t n = 1) {
    counters_[std::string(name)] += n;
  }

  uint64_t value(std::string_view name) const {
    auto it = counters_.find(std::string(name));
    return it == counters_.end() ? 0 : it->second;
  }

  const std::map<std::string, uint64_t>& counters() const { return counters_; }

  uint64_t total() const {
    uint64_t sum = 0;
    for (const auto& [name, v] : counters_) {
      sum += v;
    }
    return sum;
  }

  // FNV-1a over (name, value) pairs in sorted order.
  uint64_t Fingerprint() const {
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](const void* data, size_t len) {
      const auto* p = static_cast<const uint8_t*>(data);
      for (size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
      }
    };
    for (const auto& [name, v] : counters_) {
      mix(name.data(), name.size());
      mix(&v, sizeof(v));
    }
    return h;
  }

  bool operator==(const CounterSet&) const = default;

 private:
  std::map<std::string, uint64_t> counters_;
};

}  // namespace sim
}  // namespace coyote

#endif  // SRC_SIM_STATS_H_
