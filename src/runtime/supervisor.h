// Shell supervision layer: watchdogs, deadlines, automatic vFPGA recovery.
//
// Data center deployment (paper §2.1) means a misbehaving application kernel
// cannot be allowed to wedge its region forever: the shell must detect the
// hang, fence the region off, and bring it back — the same way the paper's
// partial reconfiguration flow hot-swaps applications, but driven by a
// health signal instead of an operator. The Supervisor closes the loop:
//
//   DETECT   — a periodic watchdog samples each region's heartbeats (the
//              vFPGA's retired beats + the data mover's delivered packets).
//              A region with outstanding transfers whose heartbeats stay
//              flat for a full deadline window is declared hung. A cThread
//              op-deadline miss (CThread::SetOpDeadline) is treated as
//              early evidence and shortcuts the window.
//   ISOLATE  — the region is quarantined in the KernelScheduler (no new
//              dispatches), its in-flight DMA is aborted with error
//              completions (DataMover::AbortVfpga, which also restores the
//              credit counters and shoots down the TLB), and its stream
//              queues are flushed.
//   RECOVER  — the region is reprogrammed with its last-known-good
//              bitstream through the normal ICAP path (ReconfigureApp), so
//              recovery pays the real Table-3 reconfiguration latency and
//              is itself subject to injected ICAP faults.
//   REPORT   — every incident is recorded (fault class, detection latency,
//              MTTR) in an append-ordered trace whose FNV-1a fingerprint is
//              bit-identical across same-seed runs.
//
// A recovered region sits in probation: it stays out of the scheduler for a
// configurable number of clean watchdog ticks before re-admission. A region
// that exhausts its recovery budget is permanently quarantined — the shell
// keeps serving the other regions (fault isolation, §4).

#ifndef SRC_RUNTIME_SUPERVISOR_H_
#define SRC_RUNTIME_SUPERVISOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/runtime/device.h"
#include "src/runtime/scheduler.h"
#include "src/sim/access_guard.h"
#include "src/sim/timer_wheel.h"

namespace coyote {
namespace runtime {

class Supervisor {
 public:
  struct Config {
    // Watchdog sampling period.
    sim::TimePs watchdog_period = sim::Microseconds(50);
    // A region with outstanding work whose heartbeats have been flat for at
    // least this long is declared hung.
    sim::TimePs heartbeat_deadline = sim::Microseconds(200);
    // Clean watchdog ticks a recovered region spends in probation before it
    // is re-admitted to the scheduler.
    uint32_t probation_ticks = 3;
    // Failed reprogram attempts per incident before the region is
    // permanently quarantined. Successful recoveries don't consume it.
    uint32_t max_recoveries = 3;
  };

  enum class RegionHealth : uint8_t {
    kHealthy,      // heartbeats advancing (or region idle)
    kSuspected,    // stale heartbeats with outstanding work; window running
    kRecovering,   // recovery in progress (quarantine + abort + reprogram)
    kProbation,    // recovered; cooling off before re-admission
    kQuarantined,  // recovery budget exhausted; permanently fenced off
  };

  // One detect→recover cycle. `recovered == false` means the reprogram
  // failed (e.g. injected ICAP faults) and the region either went back to
  // kSuspected for another attempt or was permanently quarantined.
  struct Incident {
    uint32_t vfpga_id = 0;
    std::string fault_class;         // "kernel.hang" or "deadline.miss"
    sim::TimePs detected_at = 0;
    sim::TimePs detect_latency = 0;  // last progress -> detection
    sim::TimePs recovered_at = 0;    // 0 when the attempt failed
    sim::TimePs mttr = 0;            // detected_at -> recovered_at
    bool recovered = false;
  };

  // `scheduler` may be nullptr when the caller owns region placement itself;
  // quarantine then only gates the supervisor's own bookkeeping.
  Supervisor(SimDevice* dev, KernelScheduler* scheduler, Config config);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  // Arms the periodic watchdog (idempotent). Stop() disarms it.
  void Start();
  void Stop();
  bool running() const { return watchdog_timer_ != sim::TimerWheel::kInvalidTimer; }

  // Registers the bitstream recovery reprograms the region with — callers
  // name the bitstream they consider good (typically the one that last
  // loaded successfully). No registration means recovery cannot reprogram
  // and a hang escalates straight to permanent quarantine.
  void SetLastKnownGood(uint32_t vfpga_id, const std::string& bitstream_path);

  // cThread deadline misses land here through SimDevice::NotifyOpDeadline.
  void NoteDeadlineMiss(uint32_t vfpga_id);

  RegionHealth health(uint32_t vfpga_id) const { return regions_[vfpga_id].health; }
  const std::vector<Incident>& incidents() const { return incidents_; }

  uint64_t watchdog_ticks() const { return watchdog_ticks_; }
  uint64_t hangs_detected() const { return hangs_detected_; }
  uint64_t recoveries() const { return recoveries_; }
  uint64_t failed_recoveries() const { return failed_recoveries_; }
  uint64_t permanent_quarantines() const { return permanent_quarantines_; }
  uint64_t readmissions() const { return readmissions_; }

  // Append-ordered event trace ("t=<ps> vfpga=<id> <event>" lines) and its
  // FNV-1a fingerprint; same seed + same workload => same fingerprint.
  const std::vector<std::string>& trace() const { return trace_; }
  uint64_t TraceFingerprint() const;

 private:
  struct RegionWatch {
    RegionHealth health = RegionHealth::kHealthy;
    uint64_t last_beats = 0;
    uint64_t last_packets = 0;
    sim::TimePs last_progress_at = 0;
    uint32_t probation_left = 0;
    uint32_t recovery_count = 0;
    // Reprogram attempts consumed by the current incident *chain*: a relapse
    // mid-probation continues this budget instead of resetting it, so a
    // region that keeps failing straight out of recovery escalates to
    // permanent quarantine. Cleared only by a clean re-admission.
    uint32_t incident_attempts = 0;
    bool deadline_missed = false;  // set by NoteDeadlineMiss, cleared on tick
    std::string last_known_good;
  };

  void Tick();
  void SampleRegion(uint32_t id);
  // The full isolate->recover->report sequence; synchronous (advances
  // simulated time through the nested reconfiguration, like the scheduler's
  // dispatch path).
  void Recover(uint32_t id, const std::string& fault_class);
  void TraceEvent(uint32_t id, const std::string& event);

  SimDevice* dev_;
  KernelScheduler* scheduler_;  // may be nullptr
  Config config_;

  std::vector<RegionWatch> regions_;
  sim::TimerWheel::TimerId watchdog_timer_ = sim::TimerWheel::kInvalidTimer;
  // Recovery advances simulated time (nested event processing), which can
  // re-fire the periodic watchdog; nested ticks are skipped.
  bool ticking_ = false;

  std::vector<Incident> incidents_;
  std::vector<std::string> trace_;

  uint64_t watchdog_ticks_ = 0;
  uint64_t hangs_detected_ = 0;
  uint64_t recoveries_ = 0;
  uint64_t failed_recoveries_ = 0;
  uint64_t permanent_quarantines_ = 0;
  uint64_t readmissions_ = 0;

  sim::AccessGuard state_guard_{"runtime.supervisor"};
};

}  // namespace runtime
}  // namespace coyote

#endif  // SRC_RUNTIME_SUPERVISOR_H_
