file(REMOVE_RECURSE
  "CMakeFiles/coyote_fabric.dir/floorplan.cc.o"
  "CMakeFiles/coyote_fabric.dir/floorplan.cc.o.d"
  "CMakeFiles/coyote_fabric.dir/resources.cc.o"
  "CMakeFiles/coyote_fabric.dir/resources.cc.o.d"
  "CMakeFiles/coyote_fabric.dir/shell_config.cc.o"
  "CMakeFiles/coyote_fabric.dir/shell_config.cc.o.d"
  "libcoyote_fabric.a"
  "libcoyote_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coyote_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
