#include "src/net/tcp.h"

#include <algorithm>
#include <cstring>

namespace coyote {
namespace net {
namespace {

void PutU16(std::vector<uint8_t>& v, uint16_t x) {
  v.push_back(static_cast<uint8_t>(x >> 8));
  v.push_back(static_cast<uint8_t>(x));
}
void PutU32(std::vector<uint8_t>& v, uint32_t x) {
  v.push_back(static_cast<uint8_t>(x >> 24));
  v.push_back(static_cast<uint8_t>(x >> 16));
  v.push_back(static_cast<uint8_t>(x >> 8));
  v.push_back(static_cast<uint8_t>(x));
}
uint16_t GetU16(const uint8_t* p) { return static_cast<uint16_t>(p[0] << 8 | p[1]); }
uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) << 24 | static_cast<uint32_t>(p[1]) << 16 |
         static_cast<uint32_t>(p[2]) << 8 | static_cast<uint32_t>(p[3]);
}

constexpr size_t kEth = 14;
constexpr size_t kIp = 20;
constexpr size_t kTcp = 20;

}  // namespace

std::vector<uint8_t> BuildTcpSegment(const TcpSegmentMeta& meta,
                                     const axi::BufferView& payload) {
  std::vector<uint8_t> f;
  f.reserve(kEth + kIp + kTcp + payload.size());
  // Ethernet: derived MACs, ethertype IPv4.
  for (uint32_t ip : {meta.dst_ip, meta.src_ip}) {
    f.push_back(0x02);
    f.push_back(0x00);
    f.push_back(static_cast<uint8_t>(ip >> 24));
    f.push_back(static_cast<uint8_t>(ip >> 16));
    f.push_back(static_cast<uint8_t>(ip >> 8));
    f.push_back(static_cast<uint8_t>(ip));
  }
  PutU16(f, 0x0800);
  // IPv4, protocol 6 (TCP).
  const uint16_t total = static_cast<uint16_t>(kIp + kTcp + payload.size());
  f.push_back(0x45);
  f.push_back(0x00);
  PutU16(f, total);
  PutU16(f, 0);
  PutU16(f, 0x4000);
  f.push_back(64);
  f.push_back(6);
  PutU16(f, 0);  // checksum elided (link is reliable in the model)
  PutU32(f, meta.src_ip);
  PutU32(f, meta.dst_ip);
  // TCP header.
  PutU16(f, meta.src_port);
  PutU16(f, meta.dst_port);
  PutU32(f, meta.seq);
  PutU32(f, meta.ack);
  f.push_back(0x50);  // data offset 5 words
  f.push_back(meta.flags);
  PutU16(f, meta.window);
  PutU16(f, 0);  // checksum
  PutU16(f, 0);  // urgent
  f.insert(f.end(), payload.begin(), payload.end());
  return f;
}

std::optional<ParsedTcpSegment> ParseTcpSegment(const axi::BufferView& frame) {
  if (frame.size() < kEth + kIp + kTcp) {
    return std::nullopt;
  }
  const uint8_t* p = frame.data();
  if (GetU16(p + 12) != 0x0800) {
    return std::nullopt;
  }
  const uint8_t* ip = p + kEth;
  if ((ip[0] >> 4) != 4 || ip[9] != 6) {
    return std::nullopt;  // not IPv4/TCP
  }
  ParsedTcpSegment out;
  out.meta.src_ip = GetU32(ip + 12);
  out.meta.dst_ip = GetU32(ip + 16);
  const uint8_t* tcp = ip + kIp;
  out.meta.src_port = GetU16(tcp);
  out.meta.dst_port = GetU16(tcp + 2);
  out.meta.seq = GetU32(tcp + 4);
  out.meta.ack = GetU32(tcp + 8);
  out.meta.flags = tcp[13];
  out.meta.window = GetU16(tcp + 14);
  // Zero-copy: the payload view shares the frame's storage.
  out.payload = frame.Slice(kEth + kIp + kTcp, frame.size() - (kEth + kIp + kTcp));
  return out;
}

TcpStack::TcpStack(sim::Engine* engine, Network* network, uint32_t ip, mmu::Svm* svm,
                   Config config)
    : engine_(engine), network_(network), ip_(ip), svm_(svm), config_(config) {
  port_id_ = network_->AttachPort(ip, [this](axi::BufferView frame) {
    OnRxFrame(std::move(frame));
  });
}

void TcpStack::Listen(uint16_t port, AcceptHandler on_accept) {
  listeners_[port] = std::move(on_accept);
}

void TcpStack::Connect(uint32_t remote_ip, uint16_t remote_port,
                       ConnectHandler on_connected) {
  const ConnId id = next_conn_++;
  Connection& conn = connections_[id];
  conn.state = State::kSynSent;
  conn.remote_ip = remote_ip;
  conn.remote_port = remote_port;
  conn.local_port = next_port_++;
  conn.snd_nxt = id * 100'000;  // distinct ISN per connection
  conn.snd_una = conn.snd_nxt;
  conn.on_connected = std::move(on_connected);
  TransmitSegment(conn, kTcpSyn, conn.snd_nxt, {});
  conn.snd_nxt += 1;  // SYN consumes a sequence number
  ArmTimer(id);
}

void TcpStack::TransmitSegment(Connection& conn, uint8_t flags, uint32_t seq,
                               const axi::BufferView& payload) {
  TcpSegmentMeta meta;
  meta.src_ip = ip_;
  meta.dst_ip = conn.remote_ip;
  meta.src_port = conn.local_port;
  meta.dst_port = conn.remote_port;
  meta.seq = seq;
  meta.ack = conn.rcv_nxt;
  meta.flags = flags;
  meta.window = static_cast<uint16_t>(std::min<uint32_t>(config_.window_bytes / 1024, 0xFFFF));
  ++segments_sent_;
  const axi::BufferView frame = BuildTcpSegment(meta, payload);
  const uint32_t dst_ip = conn.remote_ip;
  engine_->ScheduleAfter(config_.stack_latency, [this, dst_ip, frame]() {
    network_->Transmit(port_id_, dst_ip, frame);
  });
}

void TcpStack::Send(ConnId id, uint64_t vaddr, uint64_t bytes, Completion done) {
  auto cit = connections_.find(id);
  if (cit == connections_.end() || cit->second.state != State::kEstablished) {
    // Dead or half-open connection: error completion, never a silent drop.
    ++error_completions_;
    if (done) {
      engine_->ScheduleAfter(0, [cb = std::move(done)]() { cb(false); });
    }
    return;
  }
  Connection& conn = cit->second;
  // Sequence of the first new byte: snd_nxt already covers transmitted data,
  // the backlog extends beyond it.
  uint64_t backlog_bytes = 0;
  for (const auto& c : conn.backlog) {
    backlog_bytes += c.payload.size();
  }
  // Read the whole send once; each MSS chunk is a zero-copy slice of it
  // (held across backlog, in-flight tracking and retransmission).
  axi::BufferView message;
  message.resize(bytes);
  if (bytes > 0) {
    svm_->ReadVirtual(vaddr, message.data(), bytes);
  }
  uint64_t off = 0;
  uint32_t seq = conn.snd_nxt + static_cast<uint32_t>(backlog_bytes);
  while (off < bytes) {
    const uint64_t n = std::min<uint64_t>(config_.mss, bytes - off);
    SendChunk chunk;
    chunk.seq = seq;
    chunk.payload = message.Slice(off, n);
    conn.backlog.push_back(std::move(chunk));
    off += n;
    seq += static_cast<uint32_t>(n);
  }
  if (done) {
    conn.completions[seq] = std::move(done);
  }
  PumpSendWindow(id);
}

void TcpStack::PumpSendWindow(ConnId id) {
  Connection& conn = connections_.at(id);
  const uint32_t window = std::max<uint32_t>(conn.peer_window, config_.mss);
  while (!conn.backlog.empty()) {
    const uint32_t inflight_bytes = conn.snd_nxt - conn.snd_una;
    const uint64_t next_len = conn.backlog.front().payload.size();
    if (inflight_bytes + next_len > window) {
      break;  // window full; ACKs will reopen it
    }
    SendChunk chunk = std::move(conn.backlog.front());
    conn.backlog.pop_front();
    TransmitSegment(conn, kTcpAck, chunk.seq, chunk.payload);
    conn.snd_nxt = chunk.seq + static_cast<uint32_t>(chunk.payload.size());
    conn.inflight.push_back(std::move(chunk));
  }
  if (!conn.inflight.empty()) {
    ArmTimer(id);
  }
}

void TcpStack::OnRxFrame(axi::BufferView frame) {
  auto parsed = ParseTcpSegment(frame);
  if (!parsed) {
    return;  // not TCP (e.g., RoCE sharing the wire)
  }
  auto shared = std::make_shared<ParsedTcpSegment>(std::move(*parsed));
  engine_->ScheduleAfter(config_.stack_latency, [this, shared]() {
    const ConnId id = FindConnection(shared->meta);
    if (id != 0) {
      HandleSegment(id, *shared);
      return;
    }
    // New connection? SYN to a listening port.
    if ((shared->meta.flags & kTcpSyn) && !(shared->meta.flags & kTcpAck)) {
      auto listener = listeners_.find(shared->meta.dst_port);
      if (listener == listeners_.end()) {
        return;
      }
      const ConnId conn_id = next_conn_++;
      Connection& conn = connections_[conn_id];
      conn.state = State::kSynReceived;
      conn.remote_ip = shared->meta.src_ip;
      conn.remote_port = shared->meta.src_port;
      conn.local_port = shared->meta.dst_port;
      conn.rcv_nxt = shared->meta.seq + 1;
      conn.snd_nxt = conn_id * 100'000 + 7;
      conn.snd_una = conn.snd_nxt;
      conn.peer_window = static_cast<uint32_t>(shared->meta.window) * 1024;
      TransmitSegment(conn, kTcpSyn | kTcpAck, conn.snd_nxt, {});
      conn.snd_nxt += 1;
      ArmTimer(conn_id);
    }
  });
}

TcpStack::ConnId TcpStack::FindConnection(const TcpSegmentMeta& meta) const {
  for (const auto& [id, conn] : connections_) {
    if (conn.local_port == meta.dst_port && conn.remote_port == meta.src_port &&
        conn.remote_ip == meta.src_ip) {
      return id;
    }
  }
  return 0;
}

void TcpStack::HandleSegment(ConnId id, const ParsedTcpSegment& seg) {
  Connection& conn = connections_.at(id);
  conn.peer_window = std::max<uint32_t>(static_cast<uint32_t>(seg.meta.window) * 1024,
                                        config_.mss);

  // Handshake transitions.
  if (conn.state == State::kSynSent && (seg.meta.flags & kTcpSyn) &&
      (seg.meta.flags & kTcpAck)) {
    conn.rcv_nxt = seg.meta.seq + 1;
    conn.snd_una = seg.meta.ack;
    conn.state = State::kEstablished;
    NoteProgress(conn);
    TransmitSegment(conn, kTcpAck, conn.snd_nxt, {});
    ++conn.timer_generation;  // SYN acknowledged
    if (conn.on_connected) {
      conn.on_connected(id, true);
    }
    return;
  }
  if (conn.state == State::kSynReceived && (seg.meta.flags & kTcpAck)) {
    conn.state = State::kEstablished;
    conn.snd_una = seg.meta.ack;
    NoteProgress(conn);
    ++conn.timer_generation;
    auto listener = listeners_.find(conn.local_port);
    if (listener != listeners_.end() && listener->second) {
      listener->second(id);
    }
    // Fall through: the ACK may carry data.
  }

  // ACK processing (cumulative).
  if (seg.meta.flags & kTcpAck) {
    const uint32_t acked = seg.meta.ack;
    if (acked > conn.snd_una) {
      bytes_acked_ += acked - conn.snd_una;
      conn.snd_una = acked;
      NoteProgress(conn);
      while (!conn.inflight.empty()) {
        const SendChunk& front = conn.inflight.front();
        if (front.seq + front.payload.size() <= acked) {
          conn.inflight.pop_front();
        } else {
          break;
        }
      }
      auto end = conn.completions.upper_bound(acked);
      for (auto it = conn.completions.begin(); it != end; ++it) {
        if (it->second) {
          it->second(true);
        }
      }
      conn.completions.erase(conn.completions.begin(), end);
      ++conn.timer_generation;
      if (!conn.inflight.empty()) {
        ArmTimer(id);
      }
      if (conn.state == State::kFinSent && conn.inflight.empty() &&
          conn.backlog.empty()) {
        // FIN acknowledged: connection gone.
        Completion close_cb = std::move(conn.close_done);
        guard_.Write();
        connections_.erase(id);
        if (close_cb) {
          close_cb(true);
        }
        return;
      }
      if (conn.close_pending && conn.inflight.empty() && conn.backlog.empty()) {
        conn.close_pending = false;
        Close(id);  // all data acknowledged; send the deferred FIN
        return;
      }
      PumpSendWindow(id);
    }
  }

  // Data receive path (go-back-N: only in-order segments accepted).
  if (!seg.payload.empty()) {
    if (seg.meta.seq == conn.rcv_nxt) {
      conn.rcv_nxt += static_cast<uint32_t>(seg.payload.size());
      if (conn.on_recv) {
        // Application boundary: the handler owns its bytes (one copy, same as
        // the old by-value vector delivery).
        conn.on_recv(seg.payload.ToVector());
      }
    }
    // ACK whatever is in order so far (duplicate ACK on reorder/loss).
    TransmitSegment(conn, kTcpAck, conn.snd_nxt, {});
  }

  // FIN from the peer: ack it and drop the connection.
  if (seg.meta.flags & kTcpFin) {
    conn.rcv_nxt = seg.meta.seq + 1;
    TransmitSegment(conn, kTcpAck, conn.snd_nxt, {});
    guard_.Write();
    connections_.erase(id);
  }
}

void TcpStack::NoteProgress(Connection& conn) {
  conn.consecutive_timeouts = 0;
  conn.cur_rto = config_.rto;
}

void TcpStack::FailConnection(ConnId id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) {
    return;
  }
  ++retries_exhausted_;
  Connection conn = std::move(it->second);
  guard_.Write();
  connections_.erase(it);
  // Error-complete everything the application is waiting on. The connection
  // entry is gone first so reentrant calls observe a closed connection.
  if (conn.state == State::kSynSent && conn.on_connected) {
    ++error_completions_;
    conn.on_connected(id, false);
  }
  for (auto& [seq, cb] : conn.completions) {
    if (cb) {
      ++error_completions_;
      cb(false);
    }
  }
  if (conn.close_done) {
    ++error_completions_;
    conn.close_done(false);
  }
}

void TcpStack::ArmTimer(ConnId id) {
  Connection& armed = connections_.at(id);
  if (armed.cur_rto == 0) {
    armed.cur_rto = config_.rto;
  }
  const uint64_t generation = ++armed.timer_generation;
  engine_->ScheduleAfter(armed.cur_rto, [this, id, generation]() {
    auto it = connections_.find(id);
    if (it == connections_.end()) {
      return;
    }
    Connection& conn = it->second;
    if (conn.timer_generation != generation) {
      return;
    }
    ++timeouts_;
    if (++conn.consecutive_timeouts > config_.max_retries) {
      // Parity with RoCE retry-budget exhaustion: the peer is unreachable;
      // abort instead of retrying forever.
      FailConnection(id);
      return;
    }
    // Exponential backoff, capped.
    const sim::TimePs next = std::min<sim::TimePs>(conn.cur_rto * 2, config_.max_rto);
    if (next > conn.cur_rto) {
      conn.cur_rto = next;
      ++backoff_events_;
    }
    if (conn.state == State::kSynSent) {
      TransmitSegment(conn, kTcpSyn, conn.snd_una, {});
      ++retransmitted_segments_;
    } else if (conn.state == State::kFinSent && conn.inflight.empty()) {
      TransmitSegment(conn, kTcpFin | kTcpAck, conn.snd_nxt - 1, {});
      ++retransmitted_segments_;
    } else {
      // Go-back-N: resend every in-flight segment.
      for (const SendChunk& chunk : conn.inflight) {
        TransmitSegment(conn, kTcpAck, chunk.seq, chunk.payload);
        ++retransmitted_segments_;
      }
    }
    ArmTimer(id);
  });
}

void TcpStack::SetRecvHandler(ConnId id, RecvHandler handler) {
  connections_.at(id).on_recv = std::move(handler);
}

void TcpStack::Close(ConnId id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) {
    return;
  }
  Connection& conn = it->second;
  if (!conn.backlog.empty() || !conn.inflight.empty()) {
    // Graceful close: the FIN follows the last queued byte (sent from the
    // ACK path once everything is acknowledged).
    conn.close_pending = true;
    return;
  }
  conn.state = State::kFinSent;
  TransmitSegment(conn, kTcpFin | kTcpAck, conn.snd_nxt, {});
  conn.snd_nxt += 1;  // FIN consumes a sequence number
  ArmTimer(id);
}

bool TcpStack::IsOpen(ConnId id) const {
  auto it = connections_.find(id);
  return it != connections_.end() && it->second.state == State::kEstablished;
}

}  // namespace net
}  // namespace coyote
