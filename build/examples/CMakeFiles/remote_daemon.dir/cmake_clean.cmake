file(REMOVE_RECURSE
  "CMakeFiles/remote_daemon.dir/remote_daemon.cpp.o"
  "CMakeFiles/remote_daemon.dir/remote_daemon.cpp.o.d"
  "remote_daemon"
  "remote_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
