// Node -> shard placement for the sharded PDES engine.
//
// A placement maps every logical node of a simulated deployment onto the
// shard whose Engine will execute its callbacks. Determinism across shard
// counts requires only that cross-node interaction flows through
// ShardedEngine::Post with the *node* id as the merge order key; the
// placement itself is free. These helpers cover the two shapes the tests and
// bench use; they are pure functions of (num_nodes, num_shards) so a run's
// placement is reproducible from its config alone.

#ifndef SRC_RUNTIME_PLACEMENT_H_
#define SRC_RUNTIME_PLACEMENT_H_

#include <cstdint>
#include <vector>

namespace coyote {
namespace runtime {

// Region occupancy books for one node: region -> tenant id (-1 free), plus a
// capacity gate for declared-dead nodes. This is the placement arithmetic
// the Orchestrator's NodeHealth and the serving Router's per-node view both
// run on — extracted here so control plane and routing tier can't drift.
// Deterministic by construction: every lookup scans regions in ascending
// index order.
class RegionBook {
 public:
  void Reset(uint32_t num_regions) {
    tenant_.assign(num_regions, -1);
    closed_ = false;
  }

  // A dead node offers no capacity, but its (stale) assignments remain
  // visible so evacuation can enumerate who was resident.
  void CloseCapacity() { closed_ = true; }
  bool closed() const { return closed_; }

  uint32_t size() const { return static_cast<uint32_t>(tenant_.size()); }
  int32_t tenant_at(uint32_t region) const { return tenant_[region]; }

  uint32_t free() const {
    if (closed_) {
      return 0;
    }
    uint32_t n = 0;
    for (int32_t t : tenant_) {
      n += t < 0 ? 1u : 0u;
    }
    return n;
  }

  // Lowest free region, -1 when full (or capacity-closed).
  int32_t FindFree() const {
    if (closed_) {
      return -1;
    }
    for (uint32_t r = 0; r < tenant_.size(); ++r) {
      if (tenant_[r] < 0) {
        return static_cast<int32_t>(r);
      }
    }
    return -1;
  }

  // Lowest region assigned to `tenant`, -1 when absent.
  int32_t FindTenant(uint32_t tenant) const {
    for (uint32_t r = 0; r < tenant_.size(); ++r) {
      if (tenant_[r] == static_cast<int32_t>(tenant)) {
        return static_cast<int32_t>(r);
      }
    }
    return -1;
  }

  bool Reserve(int32_t region, uint32_t tenant) {
    if (region < 0 || static_cast<size_t>(region) >= tenant_.size() ||
        tenant_[static_cast<size_t>(region)] >= 0) {
      return false;
    }
    tenant_[static_cast<size_t>(region)] = static_cast<int32_t>(tenant);
    return true;
  }

  bool Release(int32_t region) {
    if (region < 0 || static_cast<size_t>(region) >= tenant_.size() ||
        tenant_[static_cast<size_t>(region)] < 0) {
      return false;
    }
    tenant_[static_cast<size_t>(region)] = -1;
    return true;
  }

 private:
  // lint: guard-ok value-type occupancy book embedded in a guarded owner (Orchestrator node health, DataMover region table); every mutation runs in the owner's shard context behind the owner's AccessGuard
  std::vector<int32_t> tenant_;
  bool closed_ = false;
};

struct ShardPlacement {
  // node i -> shard i % num_shards. Best load spread when nodes are
  // homogeneous; adjacent nodes land on different shards.
  static std::vector<uint32_t> RoundRobin(uint32_t num_nodes, uint32_t num_shards) {
    std::vector<uint32_t> shard_of(num_nodes);
    for (uint32_t n = 0; n < num_nodes; ++n) {
      shard_of[n] = n % num_shards;
    }
    return shard_of;
  }

  // Contiguous blocks of ceil(num_nodes / num_shards) nodes per shard.
  // Keeps ring/pairwise-adjacent nodes on one shard, minimizing cross-shard
  // traffic for neighbor-heavy topologies. With num_shards > num_nodes the
  // trailing shards simply stay empty (a legal, if wasteful, configuration —
  // the stress suite exercises it).
  static std::vector<uint32_t> Blocked(uint32_t num_nodes, uint32_t num_shards) {
    std::vector<uint32_t> shard_of(num_nodes);
    const uint32_t per_shard = (num_nodes + num_shards - 1) / num_shards;
    for (uint32_t n = 0; n < num_nodes; ++n) {
      shard_of[n] = n / per_shard;
    }
    return shard_of;
  }
};

}  // namespace runtime
}  // namespace coyote

#endif  // SRC_RUNTIME_PLACEMENT_H_
