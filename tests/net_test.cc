// Unit tests for the networking substrate: RoCE v2 packet formats, the
// switched network, the RDMA stack and the traffic sniffer.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/memsys/card_memory.h"
#include "src/memsys/gpu_memory.h"
#include "src/memsys/host_memory.h"
#include "src/mmu/svm.h"
#include "src/net/network.h"
#include "src/net/packets.h"
#include "src/net/roce.h"
#include "src/net/sniffer.h"
#include "src/sim/engine.h"
#include "src/sim/rng.h"

namespace coyote {
namespace net {
namespace {

constexpr uint64_t kPage = 2ull << 20;

TEST(PacketsTest, BuildParseRoundTripWriteOnly) {
  FrameMeta meta;
  meta.src_ip = 0x0A000001;
  meta.dst_ip = 0x0A000002;
  meta.opcode = Opcode::kWriteOnly;
  meta.dest_qpn = 0x123;
  meta.psn = 0x456;
  meta.ack_req = true;
  meta.reth_vaddr = 0xDEADBEEF000;
  meta.reth_rkey = 0x77;
  meta.reth_len = 4096;
  std::vector<uint8_t> payload(4096);
  sim::Rng rng(1);
  rng.FillBytes(payload.data(), payload.size());

  const std::vector<uint8_t> frame = BuildFrame(meta, payload);
  EXPECT_EQ(frame.size(), FrameOverheadBytes(meta.opcode) + payload.size());

  auto parsed = ParseFrame(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->meta.src_ip, meta.src_ip);
  EXPECT_EQ(parsed->meta.dst_ip, meta.dst_ip);
  EXPECT_EQ(parsed->meta.opcode, Opcode::kWriteOnly);
  EXPECT_EQ(parsed->meta.dest_qpn, 0x123u);
  EXPECT_EQ(parsed->meta.psn, 0x456u);
  EXPECT_TRUE(parsed->meta.ack_req);
  EXPECT_EQ(parsed->meta.reth_vaddr, meta.reth_vaddr);
  EXPECT_EQ(parsed->meta.reth_len, 4096u);
  EXPECT_EQ(parsed->payload, payload);
}

TEST(PacketsTest, AckCarriesAeth) {
  FrameMeta meta;
  meta.opcode = Opcode::kAck;
  meta.psn = 99;
  meta.aeth_syndrome = 0;
  meta.aeth_msn = 99;
  auto parsed = ParseFrame(BuildFrame(meta, {}));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->meta.opcode, Opcode::kAck);
  EXPECT_EQ(parsed->meta.aeth_msn, 99u);
  EXPECT_TRUE(parsed->payload.empty());
}

TEST(PacketsTest, OpcodeClassification) {
  EXPECT_TRUE(OpcodeHasReth(Opcode::kWriteFirst));
  EXPECT_TRUE(OpcodeHasReth(Opcode::kReadRequest));
  EXPECT_FALSE(OpcodeHasReth(Opcode::kWriteMiddle));
  EXPECT_TRUE(OpcodeHasAeth(Opcode::kAck));
  EXPECT_FALSE(OpcodeHasAeth(Opcode::kReadResponseMiddle));  // per IB spec
  EXPECT_TRUE(OpcodeIsReadResponse(Opcode::kReadResponseMiddle));
  EXPECT_TRUE(OpcodeIsLastOrOnly(Opcode::kSendOnly));
  EXPECT_FALSE(OpcodeIsLastOrOnly(Opcode::kSendFirst));
}

TEST(PacketsTest, MalformedFramesRejected) {
  EXPECT_FALSE(ParseFrame({}).has_value());
  EXPECT_FALSE(ParseFrame(std::vector<uint8_t>(10, 0)).has_value());
  // Non-IPv4 ethertype.
  FrameMeta meta;
  meta.opcode = Opcode::kSendOnly;
  std::vector<uint8_t> frame = BuildFrame(meta, {});
  frame[12] = 0x86;  // not 0x0800
  EXPECT_FALSE(ParseFrame(frame).has_value());
}

TEST(PacketsTest, Ipv4HeaderChecksumValidates) {
  FrameMeta meta;
  meta.opcode = Opcode::kSendOnly;
  meta.src_ip = 0x0A000001;
  meta.dst_ip = 0x0A000002;
  const auto frame = BuildFrame(meta, {1, 2, 3});
  // Recompute: one's-complement sum over the IP header must be 0xFFFF.
  uint32_t sum = 0;
  for (size_t i = kEthHeaderBytes; i < kEthHeaderBytes + kIpv4HeaderBytes; i += 2) {
    sum += static_cast<uint32_t>(frame[i] << 8 | frame[i + 1]);
  }
  while (sum >> 16) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  EXPECT_EQ(sum, 0xFFFFu);
}

TEST(NetworkTest, DeliversFramesWithLatencyAndBandwidth) {
  sim::Engine engine;
  Network nw(&engine, {});
  std::vector<uint8_t> received;
  nw.AttachPort(1, nullptr);
  nw.AttachPort(2, [&](axi::BufferView f) { received = f.ToVector(); });
  std::vector<uint8_t> frame(12500, 0xAB);  // 12.5 KB = 1 us at 100G per hop
  nw.Transmit(0, 2, frame);
  engine.RunUntilIdle();
  EXPECT_EQ(received.size(), frame.size());
  // tx serialization + switch + rx serialization = 1 us + 0.6 us + 1 us.
  EXPECT_EQ(engine.Now(), sim::Microseconds(2.6));
  EXPECT_EQ(nw.frames_delivered(), 1u);
}

TEST(NetworkTest, UnroutableFramesDrop) {
  sim::Engine engine;
  Network nw(&engine, {});
  nw.AttachPort(1, nullptr);
  nw.Transmit(0, 99, std::vector<uint8_t>(100));
  engine.RunUntilIdle();
  EXPECT_EQ(nw.frames_dropped(), 1u);
  EXPECT_EQ(nw.frames_delivered(), 0u);
}

TEST(NetworkTest, DropFilterInjectsLoss) {
  sim::Engine engine;
  Network nw(&engine, {});
  int received = 0;
  nw.AttachPort(1, nullptr);
  nw.AttachPort(2, [&](axi::BufferView) { ++received; });
  nw.SetDropFilter([](uint64_t index) { return index % 2 == 0; });
  for (int i = 0; i < 10; ++i) {
    nw.Transmit(0, 2, std::vector<uint8_t>(100));
  }
  engine.RunUntilIdle();
  EXPECT_EQ(received, 5);
  EXPECT_EQ(nw.frames_dropped(), 5u);
}

class RoceTest : public ::testing::Test {
 protected:
  RoceTest()
      : nw_(&engine_, {}),
        card_a_(&engine_, {}),
        card_b_(&engine_, {}),
        svm_a_(&engine_, &host_a_, &card_a_, &gpu_a_, kPage),
        svm_b_(&engine_, &host_b_, &card_b_, &gpu_b_, kPage),
        a_(&engine_, &nw_, 0x0A000001, &svm_a_),
        b_(&engine_, &nw_, 0x0A000002, &svm_b_) {
    qp_a_ = a_.CreateQp();
    qp_b_ = b_.CreateQp();
    a_.Connect(qp_a_, 0x0A000002, qp_b_);
    b_.Connect(qp_b_, 0x0A000001, qp_a_);
    buf_a_ = host_a_.Allocate(16ull << 20, memsys::AllocKind::kHuge2M);
    svm_a_.RegisterHostBuffer(buf_a_, 16ull << 20);
    buf_b_ = host_b_.Allocate(16ull << 20, memsys::AllocKind::kHuge2M);
    svm_b_.RegisterHostBuffer(buf_b_, 16ull << 20);
  }

  std::vector<uint8_t> FillA(uint64_t bytes, uint64_t seed) {
    std::vector<uint8_t> data(bytes);
    sim::Rng rng(seed);
    rng.FillBytes(data.data(), bytes);
    svm_a_.WriteVirtual(buf_a_, data.data(), bytes);
    return data;
  }

  sim::Engine engine_;
  Network nw_;
  memsys::HostMemory host_a_, host_b_;
  memsys::CardMemory card_a_, card_b_;
  memsys::GpuMemory gpu_a_, gpu_b_;
  mmu::Svm svm_a_, svm_b_;
  RoceStack a_, b_;
  uint32_t qp_a_ = 0, qp_b_ = 0;
  uint64_t buf_a_ = 0, buf_b_ = 0;
};

TEST_F(RoceTest, WriteMovesBytesAndCompletes) {
  const auto data = FillA(1 << 20, 1);
  bool done = false;
  a_.PostWrite(qp_a_, buf_a_, buf_b_, data.size(), [&](bool ok) { done = ok; });
  engine_.RunUntilCondition([&] { return done; });
  std::vector<uint8_t> got(data.size());
  svm_b_.ReadVirtual(buf_b_, got.data(), got.size());
  EXPECT_EQ(got, data);
  // 256 MTU frames + trailing ACKs.
  EXPECT_GE(a_.tx_frames(), 256u);
  EXPECT_EQ(a_.retransmitted_frames(), 0u);
}

TEST_F(RoceTest, WriteArrivalHandlerSeesMessageBounds) {
  const auto data = FillA(10000, 2);
  uint64_t got_vaddr = 0, got_bytes = 0;
  b_.SetWriteArrivalHandler(qp_b_, [&](uint64_t vaddr, uint64_t bytes) {
    got_vaddr = vaddr;
    got_bytes = bytes;
  });
  bool done = false;
  a_.PostWrite(qp_a_, buf_a_, buf_b_ + 512, 10000, [&](bool ok) { done = ok; });
  engine_.RunUntilCondition([&] { return done; });
  EXPECT_EQ(got_vaddr, buf_b_ + 512);
  EXPECT_EQ(got_bytes, 10000u);
}

TEST_F(RoceTest, SendDeliversPayloadToHandler) {
  const auto data = FillA(9000, 3);
  std::vector<uint8_t> received;
  b_.SetRecvHandler(qp_b_, [&](std::vector<uint8_t> d) { received = std::move(d); });
  bool done = false;
  a_.PostSend(qp_a_, buf_a_, 9000, [&](bool ok) { done = ok; });
  engine_.RunUntilCondition([&] { return done; });
  EXPECT_EQ(received, data);
}

TEST_F(RoceTest, ReadFetchesRemoteBytes) {
  std::vector<uint8_t> remote(3 << 20);
  sim::Rng rng(4);
  rng.FillBytes(remote.data(), remote.size());
  svm_b_.WriteVirtual(buf_b_, remote.data(), remote.size());

  bool done = false;
  a_.PostRead(qp_a_, buf_a_, buf_b_, remote.size(), [&](bool ok) { done = ok; });
  engine_.RunUntilCondition([&] { return done; });
  std::vector<uint8_t> got(remote.size());
  svm_a_.ReadVirtual(buf_a_, got.data(), got.size());
  EXPECT_EQ(got, remote);
}

TEST_F(RoceTest, GoBackNRecoversFromLoss) {
  // Drop two data frames of the first transmission; the timeout-driven
  // go-back-N retransmission must still deliver the exact payload.
  const auto data = FillA(256 << 10, 5);
  uint64_t count = 0;
  nw_.SetDropFilter([&count](uint64_t) {
    ++count;
    return count == 10 || count == 30;
  });
  bool done = false;
  a_.PostWrite(qp_a_, buf_a_, buf_b_, data.size(), [&](bool ok) { done = ok; });
  engine_.RunUntilCondition([&] { return done; });
  EXPECT_TRUE(done);
  EXPECT_GT(a_.retransmitted_frames(), 0u);
  std::vector<uint8_t> got(data.size());
  svm_b_.ReadVirtual(buf_b_, got.data(), got.size());
  EXPECT_EQ(got, data);
}

TEST_F(RoceTest, ReadRecoversFromResponseLoss) {
  std::vector<uint8_t> remote(64 << 10);
  sim::Rng rng(6);
  rng.FillBytes(remote.data(), remote.size());
  svm_b_.WriteVirtual(buf_b_, remote.data(), remote.size());
  uint64_t count = 0;
  nw_.SetDropFilter([&count](uint64_t) { return ++count == 5; });
  bool done = false;
  a_.PostRead(qp_a_, buf_a_, buf_b_, remote.size(), [&](bool ok) { done = ok; });
  engine_.RunUntilCondition([&] { return done; });
  EXPECT_TRUE(done);
  std::vector<uint8_t> got(remote.size());
  svm_a_.ReadVirtual(buf_a_, got.data(), got.size());
  EXPECT_EQ(got, remote);
}

TEST_F(RoceTest, ThroughputApproachesLineRate) {
  const uint64_t bytes = 16ull << 20;
  FillA(bytes, 7);
  bool done = false;
  const sim::TimePs start = engine_.Now();
  a_.PostWrite(qp_a_, buf_a_, buf_b_, bytes, [&](bool ok) { done = ok; });
  engine_.RunUntilCondition([&] { return done; });
  const double gbps = sim::BandwidthGBps(bytes, engine_.Now() - start);
  // 100G line rate is 12.5 GB/s; headers + ACK turnaround cost a bit.
  EXPECT_GT(gbps, 11.0);
  EXPECT_LE(gbps, 12.5);
}

TEST_F(RoceTest, ConcurrentBidirectionalTraffic) {
  const auto data_a = FillA(1 << 20, 8);
  std::vector<uint8_t> data_b(1 << 20);
  sim::Rng rng(9);
  rng.FillBytes(data_b.data(), data_b.size());
  svm_b_.WriteVirtual(buf_b_ + (8 << 20), data_b.data(), data_b.size());

  bool done_a = false, done_b = false;
  a_.PostWrite(qp_a_, buf_a_, buf_b_, data_a.size(), [&](bool ok) { done_a = ok; });
  b_.PostWrite(qp_b_, buf_b_ + (8 << 20), buf_a_ + (8 << 20), data_b.size(),
               [&](bool ok) { done_b = ok; });
  engine_.RunUntilCondition([&] { return done_a && done_b; });
  std::vector<uint8_t> got_b(1 << 20), got_a(1 << 20);
  svm_b_.ReadVirtual(buf_b_, got_b.data(), got_b.size());
  svm_a_.ReadVirtual(buf_a_ + (8 << 20), got_a.data(), got_a.size());
  EXPECT_EQ(got_b, data_a);
  EXPECT_EQ(got_a, data_b);
}

TEST_F(RoceTest, SnifferTapSeesAllTrafficAndFilters) {
  TrafficSniffer sniffer(&engine_);
  a_.SetTap([&](const axi::BufferView& f, bool is_tx) { sniffer.OnFrame(f, is_tx); });
  sniffer.Start();
  const auto data = FillA(64 << 10, 10);
  bool done = false;
  a_.PostWrite(qp_a_, buf_a_, buf_b_, data.size(), [&](bool ok) { done = ok; });
  engine_.RunUntilCondition([&] { return done; });
  sniffer.Stop();
  // 16 data frames out + at least 1 ACK in.
  EXPECT_GE(sniffer.frames().size(), 17u);

  // Filter: TX only.
  TrafficSniffer rx_only(&engine_);
  TrafficSniffer::Filter f;
  f.capture_tx = false;
  rx_only.SetFilter(f);
  rx_only.Start();
  a_.SetTap([&](const axi::BufferView& fr, bool is_tx) { rx_only.OnFrame(fr, is_tx); });
  done = false;
  a_.PostWrite(qp_a_, buf_a_, buf_b_, data.size(), [&](bool ok) { done = ok; });
  engine_.RunUntilCondition([&] { return done; });
  for (const auto& cap : rx_only.frames()) {
    EXPECT_FALSE(cap.is_tx);
  }
  EXPECT_GT(rx_only.dropped_by_filter(), 0u);
}

TEST(SnifferTest, PcapFormatIsWellFormed) {
  sim::Engine engine;
  TrafficSniffer sniffer(&engine);
  sniffer.Start();
  FrameMeta meta;
  meta.opcode = Opcode::kSendOnly;
  engine.ScheduleAt(sim::Seconds(3) + sim::Microseconds(250), [&] {
    sniffer.OnFrame(BuildFrame(meta, {1, 2, 3, 4}), true);
  });
  engine.RunUntilIdle();
  const std::vector<uint8_t> pcap = sniffer.ToPcap();
  ASSERT_GE(pcap.size(), 24u + 16u);
  // Little-endian magic.
  EXPECT_EQ(pcap[0], 0xd4);
  EXPECT_EQ(pcap[1], 0xc3);
  EXPECT_EQ(pcap[2], 0xb2);
  EXPECT_EQ(pcap[3], 0xa1);
  // Link type Ethernet at offset 20.
  EXPECT_EQ(pcap[20], 1);
  // First record header: ts_sec = 3, ts_usec = 250.
  EXPECT_EQ(pcap[24], 3);
  EXPECT_EQ(pcap[28], 250);
  // incl_len matches the frame.
  const uint32_t incl = pcap[32] | pcap[33] << 8 | pcap[34] << 16;
  EXPECT_EQ(incl, FrameOverheadBytes(Opcode::kSendOnly) + 4);
}

TEST(SnifferTest, HeadersOnlyTruncates) {
  sim::Engine engine;
  TrafficSniffer sniffer(&engine);
  TrafficSniffer::Filter f;
  f.headers_only = true;
  sniffer.SetFilter(f);
  sniffer.Start();
  FrameMeta meta;
  meta.opcode = Opcode::kWriteOnly;
  meta.reth_len = 4096;
  sniffer.OnFrame(BuildFrame(meta, std::vector<uint8_t>(4096, 0xCC)), true);
  ASSERT_EQ(sniffer.frames().size(), 1u);
  const auto& cap = sniffer.frames()[0];
  EXPECT_LT(cap.bytes.size(), 100u);
  EXPECT_GT(cap.original_len, 4096u);
}

TEST(SnifferTest, OpcodeFilterSelectsFrames) {
  sim::Engine engine;
  TrafficSniffer sniffer(&engine);
  TrafficSniffer::Filter f;
  f.opcode = Opcode::kAck;
  sniffer.SetFilter(f);
  sniffer.Start();
  FrameMeta ack;
  ack.opcode = Opcode::kAck;
  FrameMeta send;
  send.opcode = Opcode::kSendOnly;
  sniffer.OnFrame(BuildFrame(ack, {}), true);
  sniffer.OnFrame(BuildFrame(send, {}), true);
  EXPECT_EQ(sniffer.frames().size(), 1u);
  EXPECT_EQ(sniffer.dropped_by_filter(), 1u);
}

TEST_F(RoceTest, TwoQpsOnOneStackStayIsolated) {
  // A second connection between the same two stacks; concurrent writes on
  // both QPs must land in their own destinations with correct bytes.
  const uint32_t qa2 = a_.CreateQp();
  const uint32_t qb2 = b_.CreateQp();
  a_.Connect(qa2, 0x0A000002, qb2);
  b_.Connect(qb2, 0x0A000001, qa2);

  const auto d1 = FillA(256 << 10, 30);
  std::vector<uint8_t> d2(256 << 10);
  sim::Rng rng(31);
  rng.FillBytes(d2.data(), d2.size());
  svm_a_.WriteVirtual(buf_a_ + (4 << 20), d2.data(), d2.size());

  bool done1 = false, done2 = false;
  a_.PostWrite(qp_a_, buf_a_, buf_b_, d1.size(), [&](bool ok) { done1 = ok; });
  a_.PostWrite(qa2, buf_a_ + (4 << 20), buf_b_ + (4 << 20), d2.size(),
               [&](bool ok) { done2 = ok; });
  engine_.RunUntilCondition([&] { return done1 && done2; });
  std::vector<uint8_t> g1(d1.size()), g2(d2.size());
  svm_b_.ReadVirtual(buf_b_, g1.data(), g1.size());
  svm_b_.ReadVirtual(buf_b_ + (4 << 20), g2.data(), g2.size());
  EXPECT_EQ(g1, d1);
  EXPECT_EQ(g2, d2);
}

TEST_F(RoceTest, AckCoalescingBoundsAckTraffic) {
  // 1 MB = 256 data frames; with ack_interval 16 the receiver sends roughly
  // 256/16 acks plus the per-message last-frame ack — far fewer than one ack
  // per frame.
  const auto data = FillA(1 << 20, 32);
  bool done = false;
  a_.PostWrite(qp_a_, buf_a_, buf_b_, data.size(), [&](bool ok) { done = ok; });
  engine_.RunUntilCondition([&] { return done; });
  EXPECT_LE(b_.tx_frames(), 256u / 16 + 4);
  EXPECT_GE(b_.tx_frames(), 256u / 16);
}

TEST_F(RoceTest, SnifferIpFilterSelectsDirection) {
  TrafficSniffer sniffer(&engine_);
  TrafficSniffer::Filter f;
  f.src_ip = 0x0A000002;  // only frames FROM node B (acks, on A's RX)
  sniffer.SetFilter(f);
  sniffer.Start();
  a_.SetTap([&](const axi::BufferView& fr, bool is_tx) { sniffer.OnFrame(fr, is_tx); });
  const auto data = FillA(64 << 10, 33);
  bool done = false;
  a_.PostWrite(qp_a_, buf_a_, buf_b_, data.size(), [&](bool ok) { done = ok; });
  engine_.RunUntilCondition([&] { return done; });
  EXPECT_GT(sniffer.frames().size(), 0u);
  for (const auto& cap : sniffer.frames()) {
    auto parsed = ParseFrame(cap.bytes);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->meta.src_ip, 0x0A000002u);
  }
  a_.SetTap(nullptr);
}

TEST_F(RoceTest, InboundOffloadTransformsPayloadOnPath) {
  // The paper's SmartNIC/DPU position (§6.2): network data flows through the
  // vFPGA. Here the "kernel" is a byte-wise XOR stage wired between the
  // stack and memory; what lands in B's memory is the transformed data.
  axi::Stream to_kernel, from_kernel;
  to_kernel.set_on_data([&]() {
    while (auto p = to_kernel.Pop()) {
      uint8_t* bytes = p->data.data();  // mutable access: copy-on-write detach
      for (size_t i = 0; i < p->data.size(); ++i) {
        bytes[i] ^= 0x5A;
      }
      from_kernel.Push(std::move(*p));
    }
  });
  b_.SetInboundOffload(&to_kernel, &from_kernel);

  const auto data = FillA(64 << 10, 20);
  uint64_t arrival_bytes = 0;
  b_.SetWriteArrivalHandler(qp_b_, [&](uint64_t, uint64_t bytes) { arrival_bytes = bytes; });
  bool done = false;
  a_.PostWrite(qp_a_, buf_a_, buf_b_, data.size(), [&](bool ok) { done = ok; });
  engine_.RunUntilCondition([&] { return done && arrival_bytes != 0; });

  std::vector<uint8_t> got(data.size());
  svm_b_.ReadVirtual(buf_b_, got.data(), got.size());
  std::vector<uint8_t> expected = data;
  for (auto& byte : expected) {
    byte ^= 0x5A;
  }
  EXPECT_EQ(got, expected);
  EXPECT_EQ(arrival_bytes, data.size());

  // Disabling the offload restores the direct path.
  b_.SetInboundOffload(nullptr, nullptr);
  done = false;
  a_.PostWrite(qp_a_, buf_a_, buf_b_, data.size(), [&](bool ok) { done = ok; });
  engine_.RunUntilCondition([&] { return done; });
  svm_b_.ReadVirtual(buf_b_, got.data(), got.size());
  EXPECT_EQ(got, data);
}

// Property: write payload integrity for any message size (boundary cases
// around the MTU).
class RoceSizeSweep : public RoceTest, public ::testing::WithParamInterface<uint64_t> {};

TEST_P(RoceSizeSweep, WriteIntegrityAtMtuBoundaries) {
  const uint64_t bytes = GetParam();
  const auto data = FillA(bytes, bytes);
  bool done = false;
  a_.PostWrite(qp_a_, buf_a_, buf_b_, bytes, [&](bool ok) { done = ok; });
  engine_.RunUntilCondition([&] { return done; });
  std::vector<uint8_t> got(bytes);
  svm_b_.ReadVirtual(buf_b_, got.data(), got.size());
  EXPECT_EQ(got, data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RoceSizeSweep,
                         ::testing::Values(1, 64, 4095, 4096, 4097, 8192, 12289, 65536));

}  // namespace
}  // namespace net
}  // namespace coyote
