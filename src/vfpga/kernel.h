// Hardware kernel abstraction.
//
// A kernel is the user logic inside a vFPGA region. It interacts with the
// world only through the generic application interface (paper §7.1, Fig. 5):
// parallel host/card/network streams, the AXI4-Lite control bus, the
// interrupt channel and the read/write send queues. Loading a kernel into a
// region models partial reconfiguration of that region.

#ifndef SRC_VFPGA_KERNEL_H_
#define SRC_VFPGA_KERNEL_H_

#include <string_view>

#include "src/fabric/resources.h"

namespace coyote {
namespace vfpga {

class Vfpga;

class HwKernel {
 public:
  virtual ~HwKernel() = default;

  virtual std::string_view name() const = 0;

  // Resource footprint of the kernel (drives utilization + bitstream sizes).
  virtual fabric::ResourceVector resources() const = 0;

  // Called when the kernel is loaded into a region. The kernel wires itself
  // to the region's streams/CSRs here (subscribe to on_data etc.).
  virtual void Attach(Vfpga* region) = 0;

  // Called when the kernel is unloaded (region reconfigured away).
  virtual void Detach() {}
};

}  // namespace vfpga
}  // namespace coyote

#endif  // SRC_VFPGA_KERNEL_H_
