#include "src/services/nn.h"

#include <algorithm>
#include <cstring>

#include "src/sim/clock.h"
#include "src/sim/rng.h"

namespace coyote {
namespace services {

uint64_t MlpSpec::TotalMultiplies() const {
  uint64_t n = 0;
  for (const Conv1dLayer& l : conv_layers) {
    n += static_cast<uint64_t>(l.out_len()) * l.out_channels * l.in_channels * l.kernel_size;
  }
  for (const DenseLayer& l : layers) {
    n += static_cast<uint64_t>(l.in_dim) * l.out_dim;
  }
  return n;
}

uint64_t MlpSpec::LatencyCycles() const {
  // Each layer: log2-deep adder tree + activation + requant registering,
  // serialized across layers; reuse multiplies the per-layer schedule.
  uint64_t latency = 0;
  auto tree_depth = [](uint32_t fan_in) {
    uint64_t tree = 1;
    while (fan_in > 1) {
      fan_in = (fan_in + 1) / 2;
      ++tree;
    }
    return tree;
  };
  for (const Conv1dLayer& l : conv_layers) {
    // The line buffer adds kernel_size cycles of fill before the first tap.
    latency += tree_depth(l.in_channels * l.kernel_size) + l.kernel_size + 2 + reuse_factor;
  }
  for (const DenseLayer& l : layers) {
    latency += tree_depth(l.in_dim) + 2 + reuse_factor;
  }
  return latency;
}

fabric::ResourceVector MlpSpec::EstimateResources() const {
  const uint64_t mults = TotalMultiplies();
  const uint64_t dsp = (mults + reuse_factor - 1) / reuse_factor;
  uint64_t width_sum = 0;
  for (const Conv1dLayer& l : conv_layers) {
    width_sum += l.in_channels * l.kernel_size + l.out_channels;
  }
  for (const DenseLayer& l : layers) {
    width_sum += l.in_dim + l.out_dim;
  }
  return fabric::ResourceVector{
      .luts = 1200 + 28 * width_sum + 6 * dsp,
      .ffs = 2000 + 40 * width_sum + 8 * dsp,
      .bram36 = 4 + (TotalMultiplies() / 4096),  // weight storage
      .uram = 0,
      .dsp = dsp,
  };
}

std::vector<int8_t> MlpForward(const MlpSpec& spec, const int8_t* input) {
  std::vector<int32_t> acc;
  std::vector<int8_t> act(input, input + spec.input_dim());

  // Convolutional front end (channel-last layout).
  for (const Conv1dLayer& l : spec.conv_layers) {
    const uint32_t out_len = l.out_len();
    std::vector<int8_t> next(static_cast<size_t>(out_len) * l.out_channels);
    for (uint32_t t = 0; t < out_len; ++t) {
      for (uint32_t oc = 0; oc < l.out_channels; ++oc) {
        int32_t a = l.bias[oc];
        for (uint32_t ic = 0; ic < l.in_channels; ++ic) {
          for (uint32_t dt = 0; dt < l.kernel_size; ++dt) {
            const int8_t w =
                l.weights[(static_cast<size_t>(oc) * l.in_channels + ic) * l.kernel_size + dt];
            const int8_t x = act[static_cast<size_t>(t + dt) * l.in_channels + ic];
            a += static_cast<int32_t>(w) * static_cast<int32_t>(x);
          }
        }
        int32_t v = a >> l.requant_shift;
        if (l.relu && v < 0) {
          v = 0;
        }
        next[static_cast<size_t>(t) * l.out_channels + oc] =
            static_cast<int8_t>(std::clamp(v, -128, 127));
      }
    }
    act = std::move(next);
  }

  for (const DenseLayer& l : spec.layers) {
    acc.assign(l.out_dim, 0);
    for (uint32_t j = 0; j < l.out_dim; ++j) {
      int32_t a = l.bias[j];
      const int8_t* w = &l.weights[static_cast<size_t>(j) * l.in_dim];
      for (uint32_t i = 0; i < l.in_dim; ++i) {
        a += static_cast<int32_t>(w[i]) * static_cast<int32_t>(act[i]);
      }
      acc[j] = a;
    }
    act.assign(l.out_dim, 0);
    for (uint32_t j = 0; j < l.out_dim; ++j) {
      int32_t v = acc[j] >> l.requant_shift;
      if (l.relu && v < 0) {
        v = 0;
      }
      act[j] = static_cast<int8_t>(std::clamp(v, -128, 127));
    }
  }
  return act;
}

MlpSpec MakeIntrusionDetectionMlp() {
  // Geometry after the line-rate intrusion-detection demo [55]: 49 input
  // flow features, three hidden layers, binary (attack / benign) output.
  MlpSpec spec;
  spec.name = "intrusion_detection";
  spec.reuse_factor = 4;
  const std::vector<std::pair<uint32_t, uint32_t>> dims = {
      {49, 64}, {64, 32}, {32, 16}, {16, 2}};
  sim::Rng rng2(0x1D5EED);  // deterministic weights; final layer emits logits

  for (size_t k = 0; k < dims.size(); ++k) {
    DenseLayer l;
    l.in_dim = dims[k].first;
    l.out_dim = dims[k].second;
    l.weights.resize(static_cast<size_t>(l.in_dim) * l.out_dim);
    l.bias.resize(l.out_dim);
    for (auto& w : l.weights) {
      w = static_cast<int8_t>(static_cast<int64_t>(rng2.NextBounded(31)) - 15);
    }
    for (auto& b : l.bias) {
      b = static_cast<int32_t>(rng2.NextBounded(65)) - 32;
    }
    l.requant_shift = 6;
    l.relu = (k + 1 != dims.size());
    spec.layers.push_back(std::move(l));
  }
  return spec;
}

MlpSpec MakeConv1dClassifier() {
  // 64 time steps x 2 channels -> conv(8ch,k5) -> conv(4ch,k3) -> dense(32)
  // -> dense(4 logits). Deterministic weights, as with the MLP.
  MlpSpec spec;
  spec.name = "conv1d_classifier";
  spec.reuse_factor = 8;
  sim::Rng rng(0xC04D);
  auto w8 = [&rng]() { return static_cast<int8_t>(static_cast<int64_t>(rng.NextBounded(15)) - 7); };
  auto b32 = [&rng]() { return static_cast<int32_t>(rng.NextBounded(33)) - 16; };

  Conv1dLayer c1;
  c1.in_len = 64;
  c1.in_channels = 2;
  c1.out_channels = 8;
  c1.kernel_size = 5;
  c1.weights.resize(static_cast<size_t>(c1.out_channels) * c1.in_channels * c1.kernel_size);
  c1.bias.resize(c1.out_channels);
  for (auto& w : c1.weights) {
    w = w8();
  }
  for (auto& b : c1.bias) {
    b = b32();
  }
  spec.conv_layers.push_back(std::move(c1));

  Conv1dLayer c2;
  c2.in_len = 60;  // 64 - 5 + 1
  c2.in_channels = 8;
  c2.out_channels = 4;
  c2.kernel_size = 3;
  c2.weights.resize(static_cast<size_t>(c2.out_channels) * c2.in_channels * c2.kernel_size);
  c2.bias.resize(c2.out_channels);
  for (auto& w : c2.weights) {
    w = w8();
  }
  for (auto& b : c2.bias) {
    b = b32();
  }
  spec.conv_layers.push_back(std::move(c2));

  const uint32_t flat = 58 * 4;  // (60 - 3 + 1) x 4 channels
  for (auto [in, out, relu] :
       {std::tuple<uint32_t, uint32_t, bool>{flat, 32, true}, {32u, 4u, false}}) {
    DenseLayer l;
    l.in_dim = in;
    l.out_dim = out;
    l.relu = relu;
    l.weights.resize(static_cast<size_t>(in) * out);
    l.bias.resize(out);
    for (auto& w : l.weights) {
      w = w8();
    }
    for (auto& b : l.bias) {
      b = b32();
    }
    spec.layers.push_back(std::move(l));
  }
  return spec;
}

void NnKernel::Attach(vfpga::Vfpga* region) {
  region_ = region;
  next_sample_entry_cycle_ = 0;
  samples_ = 0;
  const uint32_t nh = region->config().num_host_streams;
  const uint32_t nc = region->config().num_card_streams;
  guard_.Write();
  residual_.assign(nh + nc, {});
  for (uint32_t i = 0; i < nh; ++i) {
    region->host_in(i).set_on_data([this, i]() { Pump(i, false); });
    Pump(i, false);
  }
  for (uint32_t i = 0; i < nc; ++i) {
    region->card_in(i).set_on_data([this, i]() { Pump(i, true); });
    Pump(i, true);
  }
}

void NnKernel::Detach() {
  if (region_ != nullptr) {
    for (uint32_t i = 0; i < region_->config().num_host_streams; ++i) {
      region_->host_in(i).set_on_data(nullptr);
    }
    for (uint32_t i = 0; i < region_->config().num_card_streams; ++i) {
      region_->card_in(i).set_on_data(nullptr);
    }
    region_ = nullptr;
  }
}

void NnKernel::Pump(uint32_t stream_index, bool card) {
  auto& in = card ? region_->card_in(stream_index) : region_->host_in(stream_index);
  const uint32_t residual_index =
      card ? region_->config().num_host_streams + stream_index : stream_index;
  const sim::Clock& clk = sim::kSystemClock;
  const uint32_t in_dim = spec_.input_dim();
  const uint32_t out_dim = spec_.output_dim();

  while (!in.Empty()) {
    auto pkt = in.Pop();
    auto& residual = residual_[residual_index];
    residual.insert(residual.end(), pkt->data.begin(), pkt->data.end());

    std::vector<uint8_t> out_bytes;
    const uint64_t now_cycle = clk.PsToCycles(region_->engine()->Now());
    uint64_t last_exit = now_cycle;
    size_t off = 0;
    while (residual.size() - off >= in_dim) {
      const auto* sample = reinterpret_cast<const int8_t*>(&residual[off]);
      std::vector<int8_t> result = MlpForward(spec_, sample);
      out_bytes.insert(out_bytes.end(), reinterpret_cast<uint8_t*>(result.data()),
                       reinterpret_cast<uint8_t*>(result.data()) + out_dim);
      off += in_dim;
      ++samples_;

      const uint64_t entry = std::max(now_cycle, next_sample_entry_cycle_);
      next_sample_entry_cycle_ = entry + spec_.IiCycles();
      last_exit = entry + spec_.LatencyCycles();
    }
    residual.erase(residual.begin(), residual.begin() + static_cast<ptrdiff_t>(off));

    if (!out_bytes.empty()) {
      axi::StreamPacket out;
      out.data = std::move(out_bytes);
      out.tid = pkt->tid;
      out.last = pkt->last;
      vfpga::Vfpga* r = region_;
      region_->engine()->ScheduleAt(clk.CyclesToPs(last_exit),
                                    [r, stream_index, card, out = std::move(out)]() mutable {
                                      auto& dst = card ? r->card_out(stream_index)
                                                       : r->host_out(stream_index);
                                      dst.Push(std::move(out));
                                    });
    }
  }
}

}  // namespace services
}  // namespace coyote
