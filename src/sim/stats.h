// Lightweight statistics helpers shared by tests and the benchmark harness.

#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace coyote {
namespace sim {

// Online mean/stddev/min/max accumulator (Welford).
class Summary {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed set of samples with percentile queries; used for latency reporting.
class Samples {
 public:
  void Add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }

  uint64_t count() const { return values_.size(); }

  double Percentile(double p) {
    if (values_.empty()) {
      return 0.0;
    }
    if (!sorted_) {
      std::sort(values_.begin(), values_.end());
      sorted_ = true;
    }
    const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, values_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values_[lo] * (1.0 - frac) + values_[hi] * frac;
  }

  double Mean() const {
    if (values_.empty()) {
      return 0.0;
    }
    double s = 0.0;
    for (double v : values_) {
      s += v;
    }
    return s / static_cast<double>(values_.size());
  }

  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
  bool sorted_ = false;
};

}  // namespace sim
}  // namespace coyote

#endif  // SRC_SIM_STATS_H_
