# Empty compiler generated dependencies file for hll_daemon.
# This may be replaced when dependencies are built.
