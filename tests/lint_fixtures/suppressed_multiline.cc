// Fixture: a suppression comment above a statement whose flagged token sits
// on a *continuation* line must still silence the rule — the linter maps each
// line back to the first line of its statement before checking suppressions.
#include <cstdint>
#include <unordered_map>

uint64_t MultiLineRangeFor() {
  std::unordered_map<uint64_t, uint64_t> histogram;
  uint64_t sum = 0;
  // Commutative reduction: iteration order cannot leak into the result.
  // lint: ordered-ok
  for (const auto& [k, v] :
       histogram) {
    sum += v;
  }
  return sum;
}

uint64_t MultiLineBegin() {
  std::unordered_map<uint64_t, uint64_t> histogram;
  // lint: ordered-ok
  return histogram.empty() ? 0
                           : histogram.begin()->second;
}
