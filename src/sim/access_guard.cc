#include "src/sim/access_guard.h"

#include <cstdio>
#include <cstdlib>

namespace coyote {
namespace sim {

thread_local AccessLedger::Tls AccessLedger::tls_;

std::string AccessConflict::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%s conflict on '%s' at epoch %llu: actor %u vs actor %u",
                write_write ? "write/write" : "read/write", resource.c_str(),
                static_cast<unsigned long long>(epoch), first_actor, second_actor);
  return std::string(buf);
}

std::string ShardViolation::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "cross-shard %s on '%s' at epoch %llu: shard %u touched shard %u-owned state "
                "(actor %u)",
                write ? "write" : "read", resource.c_str(),
                static_cast<unsigned long long>(epoch), touching_shard, owner_shard, actor);
  return std::string(buf);
}

AccessLedger& AccessLedger::Global() {
  static AccessLedger ledger;
  return ledger;
}

void AccessLedger::Reset() {
  tls_ = Tls{};
  ordered_.clear();
  conflicts_.clear();
  for (auto& slot : shard_conflicts_) {
    slot.clear();
  }
  for (auto& slot : shard_violations_) {
    slot.clear();
  }
}

void AccessLedger::ConfigureShards(uint32_t num_shards) {
  const size_t slots = static_cast<size_t>(num_shards) + 1;
  if (shard_conflicts_.size() < slots) {
    shard_conflicts_.resize(slots);
  }
  if (shard_violations_.size() < slots) {
    shard_violations_.resize(slots);
  }
}

void AccessLedger::BindThread(ShardId shard) {
  tls_.shard = shard;
  const size_t slot = shard == kNoShard ? 0 : static_cast<size_t>(shard) + 1;
  tls_.slot = slot < shard_violations_.size() ? static_cast<uint32_t>(slot) : 0;
}

void AccessLedger::RegisterShardThread(ShardId shard) {
  BindThread(shard);
  // Band the epoch counter per shard so a guard's cached epoch from one
  // shard's event can never equal another shard's epoch by coincidence.
  tls_.epoch = static_cast<uint64_t>(shard + 1) << 48;
}

void AccessLedger::DeclareOrdered(ActorId a, ActorId b) {
  if (!Ordered(a, b)) {
    ordered_.emplace_back(a, b);
  }
}

bool AccessLedger::Ordered(ActorId a, ActorId b) const {
  for (const auto& [x, y] : ordered_) {
    if ((x == a && y == b) || (x == b && y == a)) {
      return true;
    }
  }
  return false;
}

void AccessLedger::Report(AccessConflict conflict) {
  if (abort_on_conflict_) {
    // lint: callback-blocking-ok fatal diagnostic immediately before abort()
    std::fprintf(stderr, "AccessGuard: %s\n", conflict.ToString().c_str());
    std::abort();
  }
  if (tls_.slot != 0 && tls_.slot < shard_conflicts_.size()) {
    shard_conflicts_[tls_.slot].push_back(std::move(conflict));
  } else {
    conflicts_.push_back(std::move(conflict));
  }
}

void AccessLedger::ReportShardViolation(ShardViolation violation) {
  if (abort_on_conflict_) {
    // lint: callback-blocking-ok fatal diagnostic immediately before abort()
    std::fprintf(stderr, "AccessGuard: %s\n", violation.ToString().c_str());
    std::abort();
  }
  if (tls_.slot < shard_violations_.size()) {
    shard_violations_[tls_.slot].push_back(std::move(violation));
  } else {
    // No slots configured (violation minted via ShardScope without a
    // ShardedEngine): fall back to the host slot, creating it on demand.
    if (shard_violations_.empty()) {
      shard_violations_.resize(1);
    }
    shard_violations_[0].push_back(std::move(violation));
  }
}

std::vector<AccessConflict> AccessLedger::AllConflicts() const {
  std::vector<AccessConflict> all = conflicts_;
  for (const auto& slot : shard_conflicts_) {
    all.insert(all.end(), slot.begin(), slot.end());
  }
  return all;
}

std::vector<ShardViolation> AccessLedger::shard_violations() const {
  std::vector<ShardViolation> all;
  for (const auto& slot : shard_violations_) {
    all.insert(all.end(), slot.begin(), slot.end());
  }
  return all;
}

bool AccessGuard::ShardCheck(AccessLedger& ledger, bool is_write) const {
  const ShardId shard = ledger.current_shard();
  if (owner_shard_ == kNoShard || shard == kNoShard || shard == owner_shard_) {
    return false;
  }
  ledger.ReportShardViolation(
      ShardViolation{name_, ledger.epoch(), owner_shard_, shard, ledger.current_actor(), is_write});
  return true;
}

void AccessGuard::CheckShardOnly(bool is_write) const {
  AccessLedger& ledger = AccessLedger::Global();
  if (ledger.enabled()) {
    ShardCheck(ledger, is_write);
  }
}

void AccessGuard::Record(AccessLedger& ledger, bool is_write) const {
  if (ShardCheck(ledger, is_write)) {
    // Foreign-shard touch: reported above. Leave the touch history alone —
    // it belongs to the owning shard's thread, and mutating it from here
    // would be the very data race the check exists to catch.
    return;
  }
  const uint64_t epoch = ledger.epoch();
  if (epoch != epoch_) {
    epoch_ = epoch;
    touches_.clear();
  }
  const ActorId actor = ledger.current_actor();
  for (const Touch& t : touches_) {
    if (t.actor == actor && t.write == is_write) {
      return;  // repeat of an already-recorded touch; conflicts were reported
    }
  }
  for (const Touch& t : touches_) {
    if (t.actor == actor) {
      continue;  // same actor never conflicts with itself
    }
    if ((t.write || is_write) && !ledger.Ordered(t.actor, actor)) {
      ledger.Report(AccessConflict{name_, epoch, t.actor, actor, t.write && is_write});
    }
  }
  touches_.push_back(Touch{actor, is_write});
}

}  // namespace sim
}  // namespace coyote
