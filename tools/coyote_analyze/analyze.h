// coyote-verify interprocedural simulation-context analyzer.
//
// The determinism lint (tools/coyote_lint) checks one line at a time and the
// runtime AccessGuard checks one execution at a time. This tool closes the
// gap between them: it indexes the whole repository into a function/method
// symbol table and call graph, classifies *contexts* — which functions are
// event-callback bodies (passed to sim::Engine::ScheduleAt/ScheduleAfter,
// ShardedEngine::Post, TimerWheel, or shard worker bodies), which are
// control-plane host code, which are test-only — propagates those contexts
// transitively through the call graph, and then enforces the simulator's
// context rules *interprocedurally*:
//
//   callback-blocking   nothing reachable from an event callback may block:
//                       no sleeps, no mutex/condvar acquisition, no IO, no
//                       fork/wait. A callback that blocks stalls its whole
//                       shard's window and couples simulated time to wall
//                       time.
//   sim-nondet          no nondeterminism source reachable from simulation
//                       context, however many calls deep: wall-clock reads,
//                       rand(), pointer hashing, unordered-container
//                       iteration.
//   cross-shard         callbacks touch other shards only through the
//                       ShardedEngine mailbox API (Post); reaching for
//                       another shard's Engine via shard()/ScheduleOn from
//                       callback context bypasses the merge-order contract.
//   guard-state         every mutable member/global container mutated from
//                       callback context belongs to a class that registers a
//                       sim::AccessGuard, or carries an explicit suppression
//                       *with a written reason* — the static mirror of the
//                       runtime race detector's state inventory.
//
// Findings come with a full call-chain trace ("callback → A() → B() →
// std::unordered_map iteration"), so the report names not just the offending
// line but the path by which callback context reaches it. Suppressions use
// the same `// lint: <tag>` comment syntax as coyote_lint, written at the
// *primitive* site (the deepest frame of the chain).
//
// Like the linter, the analyzer is heuristic by design: it is built on the
// shared token-level frontend (tools/coyote_frontend), not a compiler. The
// function indexer understands namespaces, classes, out-of-line methods and
// lambdas; it does not do template instantiation or overload resolution, so
// calls resolve by name (same-class methods first, then free functions, then
// any method of that name — an over-approximation that errs toward flagging).
// The cases the heuristics get wrong are exactly what the per-site
// suppressions are for.

#ifndef TOOLS_COYOTE_ANALYZE_ANALYZE_H_
#define TOOLS_COYOTE_ANALYZE_ANALYZE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace coyote {
namespace analyze {

// One source file by (project-relative) path and content.
using SourceFile = std::pair<std::string, std::string>;

// --- Index entities ---------------------------------------------------------

// A call site inside a function body. `qualifier` is the explicit `Q::name`
// scope if written; `member` is true for `obj.name(...)` / `obj->name(...)`.
struct CallSite {
  std::string name;
  std::string qualifier;
  uint32_t line = 0;
  bool member = false;
};

// A context-rule primitive found in a function body (a blocking call, a
// nondeterminism source, a cross-shard access, a static container). The
// primitive only becomes a finding when the enclosing function is reached by
// the context the rule guards, so collection is unconditional at index time.
// `needs_reason` marks a site whose suppression tag demands a justification
// but carried none.
struct PrimitiveSite {
  std::string rule;  // "callback-blocking" | "sim-nondet" | "cross-shard" | "guard-state"
  uint32_t line = 0;
  std::string detail;
  bool needs_reason = false;
};

// A candidate container-iteration site: `name` is iterated here (range-for
// or .begin()/.equal_range()). Whether that is nondeterministic depends on
// the *project-wide* unordered-name table, so resolution happens at analyze
// time, after every file's declarations are merged.
struct IterSite {
  std::string name;
  uint32_t line = 0;
};

// A mutation of a container member (`entries_.insert(...)`, `table_[k] = v`)
// or of a namespace-scope container. Checked against the guard-state
// inventory when the mutating function runs in callback context.
struct MutationSite {
  std::string name;
  uint32_t line = 0;
  bool global = false;
};

struct FunctionInfo {
  std::string name;        // qualified: coyote::sim::Engine::Step, ...::lambda@42
  std::string short_name;  // Step, lambda@42
  std::string class_name;  // enclosing class or out-of-line qualifier ("" = free)
  std::string file;
  uint32_t line = 0;
  bool is_lambda = false;
  // "" (plain), "callback" (event-callback root: lambda passed to a schedule
  // sink, InlineCallback construction, shard worker body).
  std::string root;
  std::vector<CallSite> calls;
  std::vector<PrimitiveSite> primitives;
  std::vector<IterSite> iters;
  std::vector<MutationSite> mutations;
};

struct MemberInfo {
  std::string name;
  uint32_t line = 0;
  bool suppressed = false;    // carries `// lint: guard-ok ...`
  bool has_reason = false;    // ... with non-empty justification text
};

struct ClassInfo {
  std::string name;
  std::string file;
  uint32_t line = 0;
  bool has_access_guard = false;  // declares a sim::AccessGuard member
  std::vector<MemberInfo> container_members;
};

struct GlobalInfo {
  std::string name;
  uint32_t line = 0;
  bool suppressed = false;
  bool has_reason = false;
};

// Everything extracted from one file. Self-contained so the index cache can
// reuse it whenever the file's content hash is unchanged.
struct FileIndex {
  std::string path;
  uint64_t fnv = 0;
  std::vector<FunctionInfo> functions;
  std::vector<ClassInfo> classes;
  std::vector<GlobalInfo> globals;
  std::vector<std::string> unordered_names;  // unordered containers declared here
};

struct Index {
  std::vector<FileIndex> files;
};

// --- Analysis ---------------------------------------------------------------

struct Finding {
  std::string file;
  uint32_t line = 0;
  std::string rule;
  std::string message;
  // Interprocedural trace, outermost first: "<context> root F (file:line)",
  // then one entry per call edge, ending at the primitive.
  std::vector<std::string> chain;
  std::string ChainString() const;  // "callback → A() → B() → <detail>"
};

struct Options {
  // Empty: all rules. Otherwise only the listed rule ids run.
  std::vector<std::string> rules;
};

struct RuleInfo {
  std::string id;
  std::string suppression;
  std::string summary;
};

const std::vector<RuleInfo>& Rules();

// Indexes in-memory sources (lex, function/lambda extraction, call sites,
// primitives, class inventories).
Index BuildIndex(const std::vector<SourceFile>& files);

// Call-graph assembly + context propagation + rule evaluation. Findings are
// deterministic: ordered by (file, line, rule, message).
std::vector<Finding> Analyze(const Index& index, const Options& options);

// Formats findings the way the CLI and the CI artifact print them: one
// `path:line: [rule] message` line followed by indented chain lines, then a
// `coyote_analyze: N finding(s)` summary. Stable across runs and machines.
std::string FormatReport(const std::vector<Finding>& findings);

// --- Index cache ------------------------------------------------------------

// Text serialization of an Index. Load returns false on missing/ malformed /
// version-mismatched cache (callers just rebuild). BuildIndexCached reuses
// the cached FileIndex for every file whose FNV-1a content hash is
// unchanged, re-indexes the rest, and returns the fresh index; pass the
// result to SaveIndex to refresh the cache.
bool SaveIndex(const Index& index, const std::string& path);
bool LoadIndex(const std::string& path, Index* index);
Index BuildIndexCached(const std::vector<SourceFile>& files, const Index& cached);

// Convenience: read `relative_paths` under `root_dir` (frontend::ReadFiles)
// and index them, consulting `cache_path` when non-empty (read + refresh).
Index IndexPaths(const std::string& root_dir, const std::vector<std::string>& relative_paths,
                 const std::string& cache_path);

}  // namespace analyze
}  // namespace coyote

#endif  // TOOLS_COYOTE_ANALYZE_ANALYZE_H_
