// AES (FIPS-197): 128/192/256-bit keys.
//
// Functional model of the AES core used by the multi-tenant ECB benchmark
// (Fig. 8) and the multi-threaded CBC benchmark (Figs. 9/10). Real
// cryptography, verified against FIPS-197 / NIST SP 800-38A vectors, so
// end-to-end tests can check ciphertext correctness, not just byte counts.
//
// `Aes` is the generic cipher: the key length picks the schedule
// (Nk = key_bytes / 4 words, Nr = Nk + 6 rounds per FIPS-197 §5). `Aes128`
// keeps the original fixed-key API the hardware kernels use (the CSR space
// only carries a 128-bit key).

#ifndef SRC_SERVICES_AES_H_
#define SRC_SERVICES_AES_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace coyote {
namespace services {

class Aes {
 public:
  static constexpr size_t kBlockBytes = 16;

  // `key` must be 16, 24 or 32 bytes (AES-128/192/256).
  explicit Aes(const std::vector<uint8_t>& key);

  void EncryptBlock(const uint8_t in[kBlockBytes], uint8_t out[kBlockBytes]) const;
  void DecryptBlock(const uint8_t in[kBlockBytes], uint8_t out[kBlockBytes]) const;

  // Whole-buffer helpers (length must be a multiple of 16).
  std::vector<uint8_t> EncryptEcb(const std::vector<uint8_t>& plain) const;
  std::vector<uint8_t> DecryptEcb(const std::vector<uint8_t>& cipher) const;
  std::vector<uint8_t> EncryptCbc(const std::vector<uint8_t>& plain,
                                  const std::array<uint8_t, kBlockBytes>& iv) const;
  std::vector<uint8_t> DecryptCbc(const std::vector<uint8_t>& cipher,
                                  const std::array<uint8_t, kBlockBytes>& iv) const;

  int rounds() const { return rounds_; }
  size_t key_bytes() const { return key_bytes_; }

 protected:
  Aes() = default;
  void ExpandKey(const uint8_t* key, size_t key_bytes);

 private:
  int rounds_ = 0;       // Nr
  size_t key_bytes_ = 0;
  // Round keys: (Nr + 1) * 16 bytes.
  std::vector<uint8_t> round_keys_;
};

class Aes128 : public Aes {
 public:
  static constexpr size_t kKeyBytes = 16;
  static constexpr int kRounds = 10;  // also the hardware pipeline depth

  explicit Aes128(const std::array<uint8_t, kKeyBytes>& key) {
    ExpandKey(key.data(), kKeyBytes);
  }

  // Convenience: key packed as two little-endian 64-bit words (the CSR
  // layout the kernels use: reg0 = bytes 0..7, reg1 = bytes 8..15).
  Aes128(uint64_t key_lo, uint64_t key_hi);
};

}  // namespace services
}  // namespace coyote

#endif  // SRC_SERVICES_AES_H_
