#include "src/sim/access_guard.h"

#include <cstdio>
#include <cstdlib>

namespace coyote {
namespace sim {

std::string AccessConflict::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%s conflict on '%s' at epoch %llu: actor %u vs actor %u",
                write_write ? "write/write" : "read/write", resource.c_str(),
                static_cast<unsigned long long>(epoch), first_actor, second_actor);
  return std::string(buf);
}

AccessLedger& AccessLedger::Global() {
  static AccessLedger ledger;
  return ledger;
}

void AccessLedger::Reset() {
  epoch_ = 0;
  current_actor_ = kActorHost;
  ordered_.clear();
  conflicts_.clear();
}

void AccessLedger::DeclareOrdered(ActorId a, ActorId b) {
  if (!Ordered(a, b)) {
    ordered_.emplace_back(a, b);
  }
}

bool AccessLedger::Ordered(ActorId a, ActorId b) const {
  for (const auto& [x, y] : ordered_) {
    if ((x == a && y == b) || (x == b && y == a)) {
      return true;
    }
  }
  return false;
}

void AccessLedger::Report(AccessConflict conflict) {
  if (abort_on_conflict_) {
    std::fprintf(stderr, "AccessGuard: %s\n", conflict.ToString().c_str());
    std::abort();
  }
  conflicts_.push_back(std::move(conflict));
}

void AccessGuard::Record(AccessLedger& ledger, bool is_write) const {
  const uint64_t epoch = ledger.epoch();
  if (epoch != epoch_) {
    epoch_ = epoch;
    touches_.clear();
  }
  const ActorId actor = ledger.current_actor();
  for (const Touch& t : touches_) {
    if (t.actor == actor && t.write == is_write) {
      return;  // repeat of an already-recorded touch; conflicts were reported
    }
  }
  for (const Touch& t : touches_) {
    if (t.actor == actor) {
      continue;  // same actor never conflicts with itself
    }
    if ((t.write || is_write) && !ledger.Ordered(t.actor, actor)) {
      ledger.Report(AccessConflict{name_, epoch, t.actor, actor, t.write && is_write});
    }
  }
  touches_.push_back(Touch{actor, is_write});
}

}  // namespace sim
}  // namespace coyote
