// Fixture: tiering-style profiling service. Access-stream callbacks and the
// epoch tick mutate per-page state: the tiering service's own heat table
// registers a sim::AccessGuard member (clean), while a bolt-on sampling
// cache mutated from the same callback context does not (finding).
#include <cstdint>
#include <map>
#include <vector>

namespace fx {

namespace sim {
class AccessGuard {
 public:
  void Write();
};
}  // namespace sim

class Engine {
 public:
  void ScheduleAfter(long delay, void (*fn)());
};

// The tiering service proper: the heat table is covered by a registered
// guard, so both the access-stream and epoch-tick mutations stay clean.
class Tiering {
 public:
  void OnAccess(uint64_t vpage) {
    guard_.Write();
    heat_[vpage] += 1;
  }
  void EpochTick() {
    guard_.Write();
    for (auto& [vp, h] : heat_) {
      h >>= 1;
    }
  }

 private:
  std::map<uint64_t, uint64_t> heat_;
  sim::AccessGuard guard_;
};

// Bolt-on heat sampler: mutates its sample log from the same epoch-tick
// callback but registers no guard: flagged.
class HeatSampler {
 public:
  void Sample(uint64_t vpage) { samples_.push_back(vpage); }

 private:
  std::vector<uint64_t> samples_;
};

void ArmTiering(Engine& engine, Tiering& tiering, HeatSampler& sampler) {
  engine.ScheduleAfter(1000, [&] {
    tiering.OnAccess(42);
    tiering.EpochTick();
    sampler.Sample(42);
  });
}

}  // namespace fx
