// Shell configuration descriptors (paper §4).
//
// A shell is fully parametrized by the services it provides and the user
// applications it hosts. Users pick a configuration at compile time; Coyote
// v2 synthesizes partial bitstreams for it. At link time, an application
// bitstream records the ConfigId of the shell it was built against, and
// loading verifies the match — the fail-safe that prevents an application
// from losing a service it depends on (multiple privilege levels, §4).

#ifndef SRC_FABRIC_SHELL_CONFIG_H_
#define SRC_FABRIC_SHELL_CONFIG_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace coyote {
namespace fabric {

enum class Service : uint8_t {
  kHostStream = 0,  // direct AXI streams to host memory (always present)
  kCardMemory,      // HBM/DDR controllers + migration channel
  kRdma,            // RoCE v2 stack (BALBOA)
  kTcp,             // TCP/IP stack
  kSniffer,         // on-path network traffic sniffer
  kGpuDma,          // peer DMA into GPU memory (MMU extension)
  kStorage,         // NVMe bridge: FPGA-direct storage access (§10)
};

std::string_view ServiceName(Service s);

struct ShellConfigDesc {
  std::string name;
  std::vector<Service> services;
  uint32_t num_vfpgas = 1;

  // MMU parametrization (paper §6.1): page size and TLB geometry are
  // compile-time shell parameters.
  uint64_t page_bytes = 2ull << 20;  // 2 MB hugepages by default
  uint32_t tlb_entries = 1024;
  uint32_t tlb_associativity = 4;

  bool HasService(Service s) const {
    return std::find(services.begin(), services.end(), s) != services.end();
  }

  // Stable identity used for app-to-shell link verification. FNV-1a over all
  // configuration-relevant fields (the name is documentation, not identity).
  uint64_t ConfigId() const {
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ull;
      }
    };
    uint64_t svc_mask = 0;
    for (Service s : services) {
      svc_mask |= 1ull << static_cast<uint8_t>(s);
    }
    mix(svc_mask);
    mix(num_vfpgas);
    mix(page_bytes);
    mix(tlb_entries);
    mix(tlb_associativity);
    return h;
  }
};

}  // namespace fabric
}  // namespace coyote

#endif  // SRC_FABRIC_SHELL_CONFIG_H_
