// Three-layer floorplan (paper §3, §4).
//
// Coyote v2 partitions the device into:
//   * the STATIC layer — the card-specific XDMA/PCIe link, reconfiguration
//     controller and request routing. Deliberately small: services moved out
//     of it, which is the core architectural change over Coyote v1.
//   * the DYNAMIC (services) layer — networking stacks, memory controllers,
//     MMU/TLBs. Reconfigurable at run time together with the app layer.
//   * the APPLICATION layer — N parallel vFPGA regions hosting user logic,
//     each independently reconfigurable.
//
// The shell := dynamic + application layers; a "shell reconfiguration" swaps
// both, an "app reconfiguration" swaps a single vFPGA region. The floorplan
// fixes region budgets at build time and derives partial-bitstream sizes from
// the configuration frames a region spans.

#ifndef SRC_FABRIC_FLOORPLAN_H_
#define SRC_FABRIC_FLOORPLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fabric/part.h"
#include "src/fabric/resources.h"

namespace coyote {
namespace fabric {

enum class Layer : uint8_t {
  kStatic,
  kDynamic,
  kApp,
};

struct Region {
  Layer layer = Layer::kApp;
  uint32_t index = 0;  // vFPGA index for app regions, 0 otherwise
  std::string name;
  ResourceVector budget;
};

// Configuration-frame model: an UltraScale+ partial bitstream spans every
// frame of its region, so the raw size scales with the region *budget*
// (U55C: ~91 MB full device / 1.30 M LUTs ~= 73 B per LUT-equivalent of
// area). Vivado then compresses runs of empty frames, so the written size
// also depends on occupancy; the affine fill model below is calibrated
// against the three shell configurations of paper Table 3.
inline constexpr double kBitstreamBytesPerLut = 73.0;
inline constexpr double kBitstreamBaseFill = 0.42;    // empty-region floor
inline constexpr double kBitstreamFillPerUtil = 1.6;  // growth with occupancy

class Floorplan {
 public:
  // Default Coyote v2 floorplan: a thin static layer (the paper's key
  // simplification), a service region sized for the heaviest shells (RDMA +
  // memory controllers), and `num_app_regions` equal vFPGA slots in the rest.
  static Floorplan ForPart(const FpgaPart& part, uint32_t num_app_regions);

  const FpgaPart& part() const { return part_; }
  const Region& static_region() const { return static_region_; }
  const Region& service_region() const { return service_region_; }
  const std::vector<Region>& app_regions() const { return app_regions_; }
  uint32_t num_app_regions() const { return static_cast<uint32_t>(app_regions_.size()); }

  // Partial bitstream covering one region (app reconfiguration), given the
  // resources the design actually occupies inside it.
  uint64_t RegionBitstreamBytes(const Region& region, const ResourceVector& occupied) const;

  // Partial bitstream covering the whole shell = dynamic + all app regions
  // (shell reconfiguration, Table 3). `occupied` is the full shell contents.
  uint64_t ShellBitstreamBytes(const ResourceVector& occupied) const;

  // Resource budget of the shell (for utilization reporting).
  ResourceVector ShellBudget() const;

 private:
  Floorplan(const FpgaPart& part) : part_(part) {}

  FpgaPart part_;
  Region static_region_;
  Region service_region_;
  std::vector<Region> app_regions_;
};

}  // namespace fabric
}  // namespace coyote

#endif  // SRC_FABRIC_FLOORPLAN_H_
