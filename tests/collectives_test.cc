// Unit tests for the collective-communication service (broadcast, allgather,
// allreduce over the RDMA mesh).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/memsys/card_memory.h"
#include "src/memsys/gpu_memory.h"
#include "src/memsys/host_memory.h"
#include "src/mmu/svm.h"
#include "src/net/collectives.h"
#include "src/net/network.h"
#include "src/net/roce.h"
#include "src/sim/engine.h"
#include "src/sim/rng.h"

namespace coyote {
namespace net {
namespace {

constexpr uint64_t kPage = 2ull << 20;

// A simulated cluster of N Coyote nodes sharing one engine and network.
class Cluster {
 public:
  explicit Cluster(uint32_t n) : network_(&engine_, {}) {
    for (uint32_t i = 0; i < n; ++i) {
      auto node = std::make_unique<Node>();
      node->card = std::make_unique<memsys::CardMemory>(&engine_, memsys::CardMemory::Config{});
      node->svm = std::make_unique<mmu::Svm>(&engine_, &node->host, node->card.get(),
                                             &node->gpu, kPage);
      node->stack = std::make_unique<RoceStack>(&engine_, &network_, 0x0A000001 + i,
                                                node->svm.get());
      // Symmetric allocations: the data buffer lands at the same virtual
      // address on every node (SPMD-style).
      node->data_vaddr = node->host.Allocate(8ull << 20, memsys::AllocKind::kHuge2M);
      node->svm->RegisterHostBuffer(node->data_vaddr, 8ull << 20);
      node->scratch_vaddr = node->host.Allocate(8ull << 20, memsys::AllocKind::kHuge2M);
      node->svm->RegisterHostBuffer(node->scratch_vaddr, 8ull << 20);
      nodes_.push_back(std::move(node));
    }
    std::vector<CollectiveGroup::Member> members;
    for (auto& node : nodes_) {
      members.push_back({node->stack.get(), node->svm.get(), node->scratch_vaddr});
    }
    group_ = std::make_unique<CollectiveGroup>(&engine_, std::move(members));
  }

  struct Node {
    memsys::HostMemory host;
    std::unique_ptr<memsys::CardMemory> card;
    memsys::GpuMemory gpu;
    std::unique_ptr<mmu::Svm> svm;
    std::unique_ptr<RoceStack> stack;
    uint64_t data_vaddr = 0;
    uint64_t scratch_vaddr = 0;
  };

  sim::Engine engine_;
  Network network_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<CollectiveGroup> group_;
};

TEST(CollectivesTest, BroadcastReachesAllNodes) {
  Cluster cluster(5);
  std::vector<uint8_t> data(1 << 20);
  sim::Rng rng(1);
  rng.FillBytes(data.data(), data.size());
  const uint64_t vaddr = cluster.nodes_[2]->data_vaddr;  // same on all nodes
  cluster.nodes_[2]->svm->WriteVirtual(vaddr, data.data(), data.size());

  bool done = false;
  cluster.group_->Broadcast(2, vaddr, data.size(), [&](bool) { done = true; });
  cluster.engine_.RunUntilCondition([&] { return done; });

  for (auto& node : cluster.nodes_) {
    std::vector<uint8_t> got(data.size());
    node->svm->ReadVirtual(vaddr, got.data(), got.size());
    EXPECT_EQ(got, data);
  }
}

TEST(CollectivesTest, BroadcastTrivialCases) {
  Cluster single(1);
  bool done = false;
  single.group_->Broadcast(0, single.nodes_[0]->data_vaddr, 100, [&](bool) { done = true; });
  single.engine_.RunUntilIdle();
  EXPECT_TRUE(done);

  Cluster pair(2);
  done = false;
  pair.group_->Broadcast(0, pair.nodes_[0]->data_vaddr, 0, [&](bool) { done = true; });
  pair.engine_.RunUntilIdle();
  EXPECT_TRUE(done);
}

TEST(CollectivesTest, AllGatherAssemblesAllChunks) {
  constexpr uint32_t kNodes = 4;
  constexpr uint64_t kChunk = 64 << 10;
  Cluster cluster(kNodes);
  // Node i contributes chunk i.
  for (uint32_t i = 0; i < kNodes; ++i) {
    std::vector<uint8_t> chunk(kChunk, static_cast<uint8_t>(0xA0 + i));
    cluster.nodes_[i]->svm->WriteVirtual(cluster.nodes_[i]->data_vaddr + i * kChunk,
                                         chunk.data(), kChunk);
  }
  bool done = false;
  cluster.group_->AllGather(cluster.nodes_[0]->data_vaddr, kChunk, [&](bool) { done = true; });
  cluster.engine_.RunUntilCondition([&] { return done; });

  for (uint32_t i = 0; i < kNodes; ++i) {
    for (uint32_t c = 0; c < kNodes; ++c) {
      uint8_t b = 0;
      cluster.nodes_[i]->svm->ReadVirtual(cluster.nodes_[i]->data_vaddr + c * kChunk + 7, &b,
                                          1);
      EXPECT_EQ(b, 0xA0 + c) << "node " << i << " chunk " << c;
    }
  }
}

void RunAllReduce(uint32_t n, uint64_t count) {
  Cluster cluster(n);
  std::vector<int32_t> expected(count, 0);
  for (uint32_t i = 0; i < n; ++i) {
    std::vector<int32_t> values(count);
    sim::Rng rng(100 + i);
    for (uint64_t e = 0; e < count; ++e) {
      values[e] = static_cast<int32_t>(rng.NextBounded(2000)) - 1000;
      expected[e] += values[e];
    }
    cluster.nodes_[i]->svm->WriteVirtual(cluster.nodes_[i]->data_vaddr, values.data(),
                                         count * 4);
  }
  bool done = false;
  cluster.group_->AllReduceInt32(cluster.nodes_[0]->data_vaddr, count, [&](bool) { done = true; });
  cluster.engine_.RunUntilCondition([&] { return done; });
  ASSERT_TRUE(done);
  for (uint32_t i = 0; i < n; ++i) {
    std::vector<int32_t> got(count);
    cluster.nodes_[i]->svm->ReadVirtual(cluster.nodes_[i]->data_vaddr, got.data(), count * 4);
    EXPECT_EQ(got, expected) << "node " << i;
  }
}

TEST(CollectivesTest, AllReduceSumsAcrossFourNodes) { RunAllReduce(4, 64 * 1024); }

TEST(CollectivesTest, AllReduceOddNodeCountAndUnevenChunks) {
  // count not divisible by n: last chunk is short.
  RunAllReduce(3, 10'001);
}

TEST(CollectivesTest, AllReduceTwoNodes) { RunAllReduce(2, 1024); }

TEST(CollectivesTest, AllReduceSingleElement) { RunAllReduce(4, 1); }

// Property: broadcast correctness for any root.
class BroadcastRootSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BroadcastRootSweep, AnyRootWorks) {
  const uint32_t root = GetParam();
  Cluster cluster(6);
  std::vector<uint8_t> data(100'000);
  sim::Rng rng(root);
  rng.FillBytes(data.data(), data.size());
  const uint64_t vaddr = cluster.nodes_[root]->data_vaddr;
  cluster.nodes_[root]->svm->WriteVirtual(vaddr, data.data(), data.size());
  bool done = false;
  cluster.group_->Broadcast(root, vaddr, data.size(), [&](bool) { done = true; });
  cluster.engine_.RunUntilCondition([&] { return done; });
  for (auto& node : cluster.nodes_) {
    std::vector<uint8_t> got(data.size());
    node->svm->ReadVirtual(vaddr, got.data(), got.size());
    EXPECT_EQ(got, data);
  }
}

INSTANTIATE_TEST_SUITE_P(Roots, BroadcastRootSweep, ::testing::Values(0, 1, 3, 5));

TEST(CollectivesTest, BroadcastScalesLogarithmically) {
  // Binomial tree: time grows ~log2(N), far below linear send-to-each.
  auto run = [](uint32_t n) {
    Cluster cluster(n);
    const uint64_t bytes = 4 << 20;
    bool done = false;
    cluster.group_->Broadcast(0, cluster.nodes_[0]->data_vaddr, bytes, [&](bool) { done = true; });
    cluster.engine_.RunUntilCondition([&] { return done; });
    return cluster.engine_.Now();
  };
  const sim::TimePs t2 = run(2);   // 1 round
  const sim::TimePs t8 = run(8);   // 3 rounds
  EXPECT_LT(t8, 4 * t2);           // log scaling, not 7x
  EXPECT_GT(t8, 2 * t2);
}

}  // namespace
}  // namespace net
}  // namespace coyote
