// FPGA resource accounting.
//
// Every hardware module in the substrate (services, kernels, shell
// infrastructure) carries a ResourceVector describing its footprint in the
// five primitive types of an UltraScale+ device. Resource vectors drive the
// utilization results (Figs. 11, 12), the bitstream size model (Table 3) and
// the synthesis time model (Fig. 7(b)).

#ifndef SRC_FABRIC_RESOURCES_H_
#define SRC_FABRIC_RESOURCES_H_

#include <algorithm>
#include <cstdint>
#include <string>

namespace coyote {
namespace fabric {

struct ResourceVector {
  uint64_t luts = 0;
  uint64_t ffs = 0;
  uint64_t bram36 = 0;  // 36 Kb block RAM tiles
  uint64_t uram = 0;    // 288 Kb UltraRAM tiles
  uint64_t dsp = 0;

  ResourceVector& operator+=(const ResourceVector& o) {
    luts += o.luts;
    ffs += o.ffs;
    bram36 += o.bram36;
    uram += o.uram;
    dsp += o.dsp;
    return *this;
  }

  friend ResourceVector operator+(ResourceVector a, const ResourceVector& b) { return a += b; }

  ResourceVector Scaled(double f) const {
    auto s = [f](uint64_t v) { return static_cast<uint64_t>(static_cast<double>(v) * f); };
    return ResourceVector{s(luts), s(ffs), s(bram36), s(uram), s(dsp)};
  }

  // True if this footprint fits within `budget` in every dimension.
  bool FitsIn(const ResourceVector& budget) const {
    return luts <= budget.luts && ffs <= budget.ffs && bram36 <= budget.bram36 &&
           uram <= budget.uram && dsp <= budget.dsp;
  }

  bool IsZero() const { return luts == 0 && ffs == 0 && bram36 == 0 && uram == 0 && dsp == 0; }

  // Highest per-dimension utilization fraction against `budget` (the number
  // Vivado reports as the binding constraint).
  double MaxUtilization(const ResourceVector& budget) const {
    auto frac = [](uint64_t used, uint64_t total) {
      return total == 0 ? 0.0 : static_cast<double>(used) / static_cast<double>(total);
    };
    return std::max({frac(luts, budget.luts), frac(ffs, budget.ffs),
                     frac(bram36, budget.bram36), frac(uram, budget.uram),
                     frac(dsp, budget.dsp)});
  }

  double LutUtilization(const ResourceVector& budget) const {
    return budget.luts == 0 ? 0.0
                            : static_cast<double>(luts) / static_cast<double>(budget.luts);
  }

  bool operator==(const ResourceVector&) const = default;
};

std::string ToString(const ResourceVector& r);

}  // namespace fabric
}  // namespace coyote

#endif  // SRC_FABRIC_RESOURCES_H_
