file(REMOVE_RECURSE
  "CMakeFiles/coyote_services.dir/aes.cc.o"
  "CMakeFiles/coyote_services.dir/aes.cc.o.d"
  "CMakeFiles/coyote_services.dir/aes_kernels.cc.o"
  "CMakeFiles/coyote_services.dir/aes_kernels.cc.o.d"
  "CMakeFiles/coyote_services.dir/compression.cc.o"
  "CMakeFiles/coyote_services.dir/compression.cc.o.d"
  "CMakeFiles/coyote_services.dir/db_scan.cc.o"
  "CMakeFiles/coyote_services.dir/db_scan.cc.o.d"
  "CMakeFiles/coyote_services.dir/hll.cc.o"
  "CMakeFiles/coyote_services.dir/hll.cc.o.d"
  "CMakeFiles/coyote_services.dir/nn.cc.o"
  "CMakeFiles/coyote_services.dir/nn.cc.o.d"
  "CMakeFiles/coyote_services.dir/pointer_chase.cc.o"
  "CMakeFiles/coyote_services.dir/pointer_chase.cc.o.d"
  "CMakeFiles/coyote_services.dir/stream_kernel.cc.o"
  "CMakeFiles/coyote_services.dir/stream_kernel.cc.o.d"
  "CMakeFiles/coyote_services.dir/vector_kernels.cc.o"
  "CMakeFiles/coyote_services.dir/vector_kernels.cc.o.d"
  "libcoyote_services.a"
  "libcoyote_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coyote_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
