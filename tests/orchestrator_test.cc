// Fleet resilience tests: checkpoint-driven live migration, chunk-loss
// retransmission, CRC rejection + rollback, restore-failure rollback,
// kill-one-node evacuation (from checkpoint and from scratch), priority
// shedding under capacity pressure, and bit-identical behavior across shard
// counts and threading modes.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/runtime/orchestrator.h"
#include "src/services/vector_kernels.h"
#include "src/sim/time.h"

namespace coyote {
namespace {

using runtime::Fleet;
using runtime::MigrationRecord;
using runtime::Orchestrator;
using runtime::TenantOutcome;
using runtime::TenantSpec;

Fleet::Config BaseConfig() {
  Fleet::Config c;
  c.kernel_factory = [] { return std::make_unique<services::PassthroughKernel>(); };
  return c;
}

// The tenant data hash is a pure function of (tenant id, items_total,
// item_bytes): every item's payload is the deterministic pattern the fleet
// generates, passed through the passthrough kernel unchanged, folded FNV-1a
// with its item index. Recomputing it here makes the hash an end-to-end
// data-integrity witness — any migration that loses or corrupts tenant state
// diverges from this value.
uint64_t ExpectedHash(uint32_t tenant, uint64_t items_total, uint64_t item_bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  auto fold = [&h](const uint8_t* p, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ull;
    }
  };
  for (uint64_t item = 0; item < items_total; ++item) {
    fold(reinterpret_cast<const uint8_t*>(&item), sizeof(item));
    for (uint64_t i = 0; i < item_bytes; ++i) {
      const uint8_t b = static_cast<uint8_t>((tenant * 131 + item * 31 + i * 7) ^ (i >> 8));
      fold(&b, 1);
    }
  }
  return h;
}

const MigrationRecord* FindRecord(const Fleet& fleet, uint32_t tenant) {
  for (const auto& rec : fleet.orchestrator().migrations()) {
    if (rec.tenant == tenant) {
      return &rec;
    }
  }
  return nullptr;
}

// --- Planned live migration ---------------------------------------------------

TEST(OrchestratorTest, PlannedMigrationMovesTenantAndPreservesData) {
  Fleet::Config c = BaseConfig();
  c.num_nodes = 2;
  Fleet fleet(c);

  TenantSpec spec;
  spec.name = "mover";
  spec.home_node = 0;
  spec.items_total = 20;
  const uint32_t t = fleet.AddTenant(spec);
  fleet.ScheduleMigration(sim::Microseconds(150), t, /*dst_node=*/1);

  ASSERT_TRUE(fleet.Run(sim::Milliseconds(50)));
  EXPECT_EQ(fleet.tenant_outcome(t), TenantOutcome::kDone);
  EXPECT_EQ(fleet.tenant_items_done(t), spec.items_total);
  EXPECT_EQ(fleet.tenant_data_hash(t), ExpectedHash(t, spec.items_total, spec.item_bytes));

  const MigrationRecord* rec = FindRecord(fleet, t);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->outcome, "ok");
  EXPECT_EQ(rec->src_node, 0u);
  EXPECT_EQ(rec->dst_node, 1u);
  EXPECT_GT(rec->ckpt_bytes, 0u);
  EXPECT_GT(rec->chunks, 0u);
  EXPECT_GT(rec->downtime, 0u);
  EXPECT_EQ(fleet.orchestrator().tenants().at(t).node, 1u);
}

TEST(OrchestratorTest, MigrationToFullOrDeadDestinationIsRejected) {
  Fleet::Config c = BaseConfig();
  c.num_nodes = 2;
  c.regions_per_node = 1;
  Fleet fleet(c);

  TenantSpec a;
  a.home_node = 0;
  a.items_total = 10;
  TenantSpec b;
  b.home_node = 1;
  b.items_total = 10;
  const uint32_t ta = fleet.AddTenant(a);
  fleet.AddTenant(b);
  // Node 1's only region is occupied: the migration command is refused and
  // the tenant keeps running at home.
  fleet.ScheduleMigration(sim::Microseconds(100), ta, 1);

  ASSERT_TRUE(fleet.Run(sim::Milliseconds(50)));
  EXPECT_EQ(fleet.tenant_outcome(ta), TenantOutcome::kDone);
  EXPECT_EQ(fleet.orchestrator().tenants().at(ta).node, 0u);
  EXPECT_TRUE(fleet.orchestrator().migrations().empty());
}

// --- Transfer-layer faults ----------------------------------------------------

TEST(OrchestratorTest, DroppedChunksAreRetransmittedUntilComplete) {
  Fleet::Config c = BaseConfig();
  c.num_nodes = 2;
  c.fault_template.migration_chunk_drop_first_n = 3;
  Fleet fleet(c);

  TenantSpec spec;
  spec.home_node = 0;
  spec.items_total = 20;
  const uint32_t t = fleet.AddTenant(spec);
  fleet.ScheduleMigration(sim::Microseconds(150), t, 1);

  ASSERT_TRUE(fleet.Run(sim::Milliseconds(50)));
  EXPECT_EQ(fleet.tenant_outcome(t), TenantOutcome::kDone);
  EXPECT_EQ(fleet.tenant_data_hash(t), ExpectedHash(t, spec.items_total, spec.item_bytes));

  const MigrationRecord* rec = FindRecord(fleet, t);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->outcome, "ok");
  EXPECT_GE(rec->retransmit_rounds, 1u);
  EXPECT_EQ(fleet.orchestrator().tenants().at(t).node, 1u);
}

TEST(OrchestratorTest, CorruptCheckpointIsRejectedByCrcAndRolledBack) {
  Fleet::Config c = BaseConfig();
  c.num_nodes = 2;
  // Every transfer round arrives bit-flipped: the CYK1 CRC rejects each
  // assembly, the retransmit budget runs dry, and the orchestrator rolls the
  // tenant back to the source instead of restoring garbage.
  c.fault_template.checkpoint_corrupt_rate = 1.0;
  Fleet fleet(c);

  TenantSpec spec;
  spec.home_node = 0;
  spec.items_total = 20;
  const uint32_t t = fleet.AddTenant(spec);
  fleet.ScheduleMigration(sim::Microseconds(150), t, 1);

  ASSERT_TRUE(fleet.Run(sim::Milliseconds(50)));
  EXPECT_EQ(fleet.tenant_outcome(t), TenantOutcome::kDone);
  EXPECT_EQ(fleet.tenant_data_hash(t), ExpectedHash(t, spec.items_total, spec.item_bytes));
  EXPECT_EQ(fleet.orchestrator().tenants().at(t).node, 0u);
  EXPECT_EQ(fleet.orchestrator().rollbacks(), 1u);

  const MigrationRecord* rec = FindRecord(fleet, t);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->outcome, "rollback.transfer");
  EXPECT_GE(rec->retransmit_rounds, 1u);
}

TEST(OrchestratorTest, RestoreFailureRollsBackToSource) {
  Fleet::Config c = BaseConfig();
  c.num_nodes = 2;
  c.restore_attempts_max = 2;
  c.fault_template.restore_fail_first_n = 2;  // exhaust both attempts
  Fleet fleet(c);

  TenantSpec spec;
  spec.home_node = 0;
  spec.items_total = 20;
  const uint32_t t = fleet.AddTenant(spec);
  fleet.ScheduleMigration(sim::Microseconds(150), t, 1);

  ASSERT_TRUE(fleet.Run(sim::Milliseconds(50)));
  EXPECT_EQ(fleet.tenant_outcome(t), TenantOutcome::kDone);
  EXPECT_EQ(fleet.tenant_data_hash(t), ExpectedHash(t, spec.items_total, spec.item_bytes));
  EXPECT_EQ(fleet.orchestrator().tenants().at(t).node, 0u);
  EXPECT_EQ(fleet.orchestrator().rollbacks(), 1u);

  const MigrationRecord* rec = FindRecord(fleet, t);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->outcome, "rollback.restore");
  EXPECT_EQ(rec->restore_attempts, 2u);
}

// --- Node death and evacuation ------------------------------------------------

TEST(OrchestratorTest, KillOneNodeEvacuatesTenantsFromCheckpoint) {
  Fleet::Config c = BaseConfig();
  c.num_nodes = 3;
  Fleet fleet(c);

  std::vector<uint32_t> ids;
  std::vector<TenantSpec> specs;
  for (uint32_t i = 0; i < 4; ++i) {
    TenantSpec spec;
    spec.name = "t" + std::to_string(i);
    spec.home_node = i < 2 ? 0 : i - 1;  // two on node 0, one each on 1 and 2
    spec.items_total = 30;
    spec.think_time = sim::Microseconds(25);
    ids.push_back(fleet.AddTenant(spec));
    specs.push_back(spec);
  }
  fleet.ScheduleKill(sim::Microseconds(620), 0);

  ASSERT_TRUE(fleet.Run(sim::Milliseconds(100)));
  const Orchestrator& orch = fleet.orchestrator();
  EXPECT_EQ(orch.deaths_declared(), 1u);
  EXPECT_EQ(orch.evacuations(), 2u);
  EXPECT_EQ(orch.sheds(), 0u);
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(fleet.tenant_outcome(ids[i]), TenantOutcome::kDone) << "tenant " << i;
    EXPECT_EQ(fleet.tenant_data_hash(ids[i]),
              ExpectedHash(ids[i], specs[i].items_total, specs[i].item_bytes))
        << "tenant " << i;
  }
  // Both node-0 tenants resumed from a stored periodic checkpoint — replay,
  // not restart: the evacuation records say so and land on live nodes.
  for (uint32_t i = 0; i < 2; ++i) {
    const MigrationRecord* rec = FindRecord(fleet, ids[i]);
    ASSERT_NE(rec, nullptr) << "tenant " << i;
    EXPECT_EQ(rec->outcome, "evacuated") << "tenant " << i;
    EXPECT_EQ(rec->reason, "node.dead");
    EXPECT_NE(rec->dst_node, 0u);
    EXPECT_GT(rec->ckpt_bytes, 0u);
    EXPECT_NE(fleet.orchestrator().tenants().at(ids[i]).node, 0u);
  }
}

TEST(OrchestratorTest, EvacuationWithoutCheckpointRestartsFresh) {
  Fleet::Config c = BaseConfig();
  c.num_nodes = 2;
  c.checkpoint_period = 0;  // periodic checkpoints disabled
  Fleet fleet(c);

  TenantSpec spec;
  spec.home_node = 0;
  spec.items_total = 30;
  spec.think_time = sim::Microseconds(25);
  const uint32_t t = fleet.AddTenant(spec);
  fleet.ScheduleKill(sim::Microseconds(400), 0);

  ASSERT_TRUE(fleet.Run(sim::Milliseconds(100)));
  EXPECT_EQ(fleet.tenant_outcome(t), TenantOutcome::kDone);
  EXPECT_EQ(fleet.tenant_data_hash(t), ExpectedHash(t, spec.items_total, spec.item_bytes));
  const MigrationRecord* rec = FindRecord(fleet, t);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->outcome, "evacuated.fresh");
  EXPECT_EQ(fleet.orchestrator().tenants().at(t).node, 1u);
}

TEST(OrchestratorTest, CapacityPressureShedsLowestPriorityWithTypedOutcome) {
  Fleet::Config c = BaseConfig();
  c.num_nodes = 2;
  Fleet fleet(c);

  // Node 0 carries the high-priority pair, node 1 the low-priority pair;
  // killing node 0 with zero free regions forces displacement.
  std::vector<uint32_t> ids;
  const uint32_t prios[4] = {5, 5, 1, 0};
  for (uint32_t i = 0; i < 4; ++i) {
    TenantSpec spec;
    spec.name = "t" + std::to_string(i);
    spec.priority = prios[i];
    spec.home_node = i < 2 ? 0 : 1;
    spec.items_total = i < 2 ? 30 : 60;
    spec.think_time = sim::Microseconds(25);
    ids.push_back(fleet.AddTenant(spec));
  }
  fleet.ScheduleKill(sim::Microseconds(620), 0);

  ASSERT_TRUE(fleet.Run(sim::Milliseconds(100)));
  const Orchestrator& orch = fleet.orchestrator();
  EXPECT_EQ(orch.deaths_declared(), 1u);
  EXPECT_EQ(orch.sheds(), 2u);
  // High-priority tenants displaced the low-priority pair and finished.
  EXPECT_EQ(fleet.tenant_outcome(ids[0]), TenantOutcome::kDone);
  EXPECT_EQ(fleet.tenant_outcome(ids[1]), TenantOutcome::kDone);
  EXPECT_EQ(fleet.tenant_outcome(ids[2]), TenantOutcome::kShed);
  EXPECT_EQ(fleet.tenant_outcome(ids[3]), TenantOutcome::kShed);
  EXPECT_EQ(orch.tenants().at(ids[0]).node, 1u);
  EXPECT_EQ(orch.tenants().at(ids[1]).node, 1u);
}

// --- Cross-shard-count determinism --------------------------------------------

struct FleetRunResult {
  uint64_t trace_fp = 0;
  uint64_t injector_fp = 0;
  sim::TimePs settled_at = 0;
  std::vector<uint64_t> hashes;
  std::vector<TenantOutcome> outcomes;
  bool settled = false;

  bool operator==(const FleetRunResult& o) const {
    return trace_fp == o.trace_fp && injector_fp == o.injector_fp &&
           settled_at == o.settled_at && hashes == o.hashes && outcomes == o.outcomes &&
           settled == o.settled;
  }
};

FleetRunResult RunDeterminismFleet(uint32_t num_shards, bool use_threads) {
  Fleet::Config c = BaseConfig();
  c.num_nodes = 7;  // + the orchestrator = 8 logical nodes: fills 8 shards
  c.num_shards = num_shards;
  c.use_threads = use_threads;
  c.seed = 77;
  c.fault_template.migration_chunk_drop_first_n = 2;
  Fleet fleet(c);

  std::vector<uint32_t> ids;
  for (uint32_t i = 0; i < 6; ++i) {
    TenantSpec spec;
    spec.name = "t" + std::to_string(i);
    spec.priority = i % 3;
    spec.home_node = i;  // node 6 stays free for evacuations
    spec.items_total = 12;
    spec.think_time = sim::Microseconds(25);
    ids.push_back(fleet.AddTenant(spec));
  }
  fleet.ScheduleMigration(sim::Microseconds(150), ids[1], 6);
  fleet.ScheduleKill(sim::Microseconds(620), 0);

  FleetRunResult res;
  res.settled = fleet.Run(sim::Milliseconds(100));
  res.trace_fp = fleet.orchestrator().TraceFingerprint();
  res.injector_fp = fleet.InjectorFingerprint();
  res.settled_at = fleet.orchestrator().settled_at();
  for (const uint32_t id : ids) {
    res.hashes.push_back(fleet.tenant_data_hash(id));
    res.outcomes.push_back(fleet.tenant_outcome(id));
  }
  return res;
}

TEST(OrchestratorDeterminismTest, FleetIsBitIdenticalAcrossShardCountsAndThreading) {
  const FleetRunResult golden = RunDeterminismFleet(1, false);
  ASSERT_TRUE(golden.settled);
  for (const uint32_t shards : {2u, 4u, 8u}) {
    const FleetRunResult seq = RunDeterminismFleet(shards, false);
    EXPECT_TRUE(seq == golden) << "sequential shards=" << shards;
    const FleetRunResult thr = RunDeterminismFleet(shards, true);
    EXPECT_TRUE(thr == golden) << "threaded shards=" << shards;
  }
}

TEST(OrchestratorDeterminismTest, SameSeedRunsAreBitIdentical) {
  const FleetRunResult a = RunDeterminismFleet(4, false);
  const FleetRunResult b = RunDeterminismFleet(4, false);
  ASSERT_TRUE(a.settled);
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace coyote
