// Database operator offload (the paper's intro motivation: database
// acceleration [16], Farview-style operator push-down [33]).
//
// A 4M-row table lives on the NVMe drive (storage service, §10). A query
// "SELECT count(*), sum(value) WHERE key BETWEEN lo AND hi" runs two ways:
//  1. software: read the whole table to the host, scan on the CPU;
//  2. offload: the table streams drive -> memory -> DbScanKernel; only a
//     16-byte aggregate crosses back to software.
// Both produce identical answers; the offload avoids shipping the table
// through the host-side scan.

// The table buffer is tiered: HBM only holds half of it, and the
// profiling-driven tiering service decides which pages earn the fast tier
// from the scans' access stream.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "src/mmu/tiering.h"
#include "src/runtime/cthread.h"
#include "src/runtime/device.h"
#include "src/services/db_scan.h"
#include "src/sim/rng.h"

using namespace coyote;

int main() {
  runtime::SimDevice::Config cfg;
  cfg.shell.name = "db";
  cfg.shell.services = {fabric::Service::kHostStream, fabric::Service::kCardMemory,
                        fabric::Service::kStorage};
  cfg.shell.num_vfpgas = 1;
  runtime::SimDevice dev(cfg);
  dev.vfpga(0).LoadKernel(std::make_unique<services::DbScanKernel>());
  runtime::cThread t(&dev, 0);

  // Build the table and persist it to the drive.
  constexpr uint64_t kRows = 4u << 20;
  constexpr uint64_t kTableBytes = kRows * sizeof(services::DbRecord);
  std::vector<services::DbRecord> table(kRows);
  sim::Rng rng(17);
  for (auto& rec : table) {
    rec.key = static_cast<int64_t>(rng.NextBounded(1'000'000));
    rec.value = static_cast<int64_t>(rng.NextBounded(10'000)) - 5'000;
  }
  const uint64_t buf = t.GetMem({runtime::Alloc::kHpf, kTableBytes});
  t.WriteBuffer(buf, table.data(), kTableBytes);
  runtime::SgEntry persist;
  persist.storage = {.lba = 0, .vaddr = buf, .len = kTableBytes};
  t.InvokeSync(runtime::Oper::kStorageWrite, persist);
  std::printf("table: %" PRIu64 " rows (%.0f MiB) persisted to NVMe\n", kRows,
              kTableBytes / 1048576.0);

  // HBM oversubscription: only half the table's hugepages fit in the fast
  // tier; the profiler ranks pages by scan traffic and fills those slots.
  const uint64_t table_pages = kTableBytes / cfg.shell.page_bytes;
  mmu::Tiering::Config tiering_cfg;
  tiering_cfg.policy = mmu::Tiering::Policy::kProfileGuided;
  tiering_cfg.fast_capacity_pages = table_pages / 2;
  mmu::Tiering& tiering = dev.EnableTiering(tiering_cfg);
  tiering.Manage(buf, kTableBytes);

  const int64_t lo = 250'000, hi = 300'000;

  // --- 1. Software scan: fetch table from storage, scan on the CPU. ---------
  uint64_t sw_count = 0;
  int64_t sw_sum = 0;
  sim::TimePs sw_elapsed = 0;
  {
    const sim::TimePs start = dev.engine().Now();
    runtime::SgEntry fetch;
    fetch.storage = {.lba = 0, .vaddr = buf, .len = kTableBytes};
    t.InvokeSync(runtime::Oper::kStorageRead, fetch);
    std::vector<services::DbRecord> rows(kRows);
    t.ReadBuffer(buf, rows.data(), kTableBytes);
    // Charge a host-CPU scan at ~8 GB/s effective (single core, branchy).
    dev.engine().RunUntil(dev.engine().Now() +
                          sim::TransferTime(kTableBytes, 8'000'000'000ull));
    for (const auto& rec : rows) {
      if (rec.key >= lo && rec.key <= hi) {
        ++sw_count;
        sw_sum += rec.value;
      }
    }
    sw_elapsed = dev.engine().Now() - start;
  }

  // --- 2. Offloaded scan: storage -> memory -> kernel -> 16 B answer. -------
  uint64_t hw_count = 0;
  int64_t hw_sum = 0;
  sim::TimePs hw_elapsed = 0;
  {
    t.SetCsr(static_cast<uint64_t>(lo), services::kScanCsrMinKey);
    t.SetCsr(static_cast<uint64_t>(hi), services::kScanCsrMaxKey);
    const uint64_t result = t.GetMem({runtime::Alloc::kReg, 4096});
    const sim::TimePs start = dev.engine().Now();
    runtime::SgEntry fetch;
    fetch.storage = {.lba = 0, .vaddr = buf, .len = kTableBytes};
    t.InvokeSync(runtime::Oper::kStorageRead, fetch);
    runtime::SgEntry scan;
    scan.local = {.src_addr = buf, .src_len = kTableBytes, .dst_addr = result,
                  .dst_len = 16, .src_stream = 0, .dst_stream = 0};
    t.InvokeSync(runtime::Oper::kLocalTransfer, scan);
    hw_elapsed = dev.engine().Now() - start;
    uint8_t answer[16];
    t.ReadBuffer(result, answer, 16);
    std::memcpy(&hw_count, answer, 8);
    std::memcpy(&hw_sum, answer + 8, 8);
  }

  std::printf("query: SELECT count(*), sum(value) WHERE key BETWEEN %lld AND %lld\n",
              static_cast<long long>(lo), static_cast<long long>(hi));
  std::printf("software scan:  count=%" PRIu64 " sum=%lld in %.2f ms\n", sw_count,
              static_cast<long long>(sw_sum), sim::ToMilliseconds(sw_elapsed));
  std::printf("FPGA offload:   count=%" PRIu64 " sum=%lld in %.2f ms (%s)\n", hw_count,
              static_cast<long long>(hw_sum), sim::ToMilliseconds(hw_elapsed),
              hw_count == sw_count && hw_sum == sw_sum ? "answers match" : "MISMATCH");
  std::printf("data returned to software: %.0f MiB vs 16 bytes\n", kTableBytes / 1048576.0);

  const sim::Histogram heat = tiering.HeatHistogram();
  std::printf("tiering: %llu tracked pages, occupancy hbm=%llu host=%llu nvme=%llu\n",
              static_cast<unsigned long long>(tiering.tracked_pages()),
              static_cast<unsigned long long>(tiering.occupancy(mmu::MemKind::kCard)),
              static_cast<unsigned long long>(tiering.occupancy(mmu::MemKind::kHost)),
              static_cast<unsigned long long>(tiering.occupancy(mmu::MemKind::kNvme)));
  std::printf("tiering: heat histogram (log2 buckets):");
  for (size_t b = 0; b < 24; ++b) {
    if (heat.bucket(b) != 0) {
      std::printf(" [2^%zu)=%llu", b, static_cast<unsigned long long>(heat.bucket(b)));
    }
  }
  std::printf("\n");
  std::printf("tiering: accesses=%llu promotions=%llu migrated=%.0f MiB\n",
              static_cast<unsigned long long>(tiering.stats().value("tiering.accesses")),
              static_cast<unsigned long long>(tiering.stats().value("tiering.promotions")),
              static_cast<double>(tiering.stats().value("tiering.migrated_bytes")) / 1048576.0);

  const bool tiering_ok = tiering.stats().value("tiering.accesses") > 0 &&
                          tiering.stats().value("tiering.promotions") >= 1 &&
                          tiering.occupancy(mmu::MemKind::kCard) <= tiering_cfg.fast_capacity_pages;
  if (!tiering_ok) {
    std::printf("tiering: PROFILE NEVER ENGAGED\n");
  }
  return hw_count == sw_count && hw_sum == sw_sum && tiering_ok ? 0 : 1;
}
