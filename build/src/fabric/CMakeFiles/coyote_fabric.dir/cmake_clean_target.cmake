file(REMOVE_RECURSE
  "libcoyote_fabric.a"
)
