file(REMOVE_RECURSE
  "CMakeFiles/rdma_pingpong.dir/rdma_pingpong.cpp.o"
  "CMakeFiles/rdma_pingpong.dir/rdma_pingpong.cpp.o.d"
  "rdma_pingpong"
  "rdma_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdma_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
