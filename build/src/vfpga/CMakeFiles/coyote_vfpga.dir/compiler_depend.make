# Empty compiler generated dependencies file for coyote_vfpga.
# This may be replaced when dependencies are built.
