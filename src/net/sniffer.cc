#include "src/net/sniffer.h"

#include <cstdio>
#include <cstring>

namespace coyote {
namespace net {
namespace {

void PutU32Le(std::vector<uint8_t>& v, uint32_t x) {
  v.push_back(static_cast<uint8_t>(x));
  v.push_back(static_cast<uint8_t>(x >> 8));
  v.push_back(static_cast<uint8_t>(x >> 16));
  v.push_back(static_cast<uint8_t>(x >> 24));
}
void PutU16Le(std::vector<uint8_t>& v, uint16_t x) {
  v.push_back(static_cast<uint8_t>(x));
  v.push_back(static_cast<uint8_t>(x >> 8));
}

}  // namespace

bool TrafficSniffer::Matches(const axi::BufferView& frame, bool is_tx) const {
  if (is_tx && !filter_.capture_tx) {
    return false;
  }
  if (!is_tx && !filter_.capture_rx) {
    return false;
  }
  if (filter_.src_ip != 0 || filter_.dst_ip != 0 || filter_.opcode.has_value()) {
    auto parsed = ParseFrame(frame);
    if (!parsed) {
      return false;
    }
    if (filter_.src_ip != 0 && parsed->meta.src_ip != filter_.src_ip) {
      return false;
    }
    if (filter_.dst_ip != 0 && parsed->meta.dst_ip != filter_.dst_ip) {
      return false;
    }
    if (filter_.opcode.has_value() && parsed->meta.opcode != *filter_.opcode) {
      return false;
    }
  }
  return true;
}

void TrafficSniffer::OnFrame(const axi::BufferView& frame, bool is_tx) {
  if (!recording_) {
    return;
  }
  if (!Matches(frame, is_tx)) {
    ++dropped_by_filter_;
    return;
  }
  CapturedFrame cap;
  cap.timestamp = engine_->Now();
  cap.is_tx = is_tx;
  cap.original_len = static_cast<uint32_t>(frame.size());
  if (filter_.headers_only) {
    // Keep Ethernet + IPv4 + UDP + BTH + (max) RETH. A truncating slice
    // would pin the full frame alive in the capture buffer, so headers-only
    // mode copies the prefix instead (that's the mode's entire point —
    // bounding the HBM staging footprint).
    const size_t keep = std::min(frame.size(), kEthHeaderBytes + kIpv4HeaderBytes +
                                                   kUdpHeaderBytes + kBthBytes + kRethBytes);
    cap.bytes.assign(frame.begin(), frame.begin() + static_cast<ptrdiff_t>(keep));
  } else {
    cap.bytes = frame;  // shares the wire frame's storage
  }
  guard_.Write();
  frames_.push_back(std::move(cap));
}

uint64_t TrafficSniffer::capture_bytes() const {
  uint64_t n = 0;
  for (const auto& f : frames_) {
    n += f.bytes.size() + 16;  // + per-frame metadata record
  }
  return n;
}

std::vector<uint8_t> TrafficSniffer::ToPcap() const {
  std::vector<uint8_t> out;
  // Global header.
  PutU32Le(out, 0xa1b2c3d4);  // magic (microsecond timestamps)
  PutU16Le(out, 2);           // version major
  PutU16Le(out, 4);           // version minor
  PutU32Le(out, 0);           // thiszone
  PutU32Le(out, 0);           // sigfigs
  PutU32Le(out, 65535);       // snaplen
  PutU32Le(out, 1);           // LINKTYPE_ETHERNET
  for (const auto& f : frames_) {
    const uint64_t usec_total = f.timestamp / sim::kPsPerUs;
    PutU32Le(out, static_cast<uint32_t>(usec_total / 1'000'000));
    PutU32Le(out, static_cast<uint32_t>(usec_total % 1'000'000));
    PutU32Le(out, static_cast<uint32_t>(f.bytes.size()));
    PutU32Le(out, f.original_len);
    out.insert(out.end(), f.bytes.begin(), f.bytes.end());
  }
  return out;
}

bool TrafficSniffer::WritePcapFile(const std::string& path) const {
  std::FILE* fp = std::fopen(path.c_str(), "wb");
  if (fp == nullptr) {
    return false;
  }
  const std::vector<uint8_t> data = ToPcap();
  const bool ok = std::fwrite(data.data(), 1, data.size(), fp) == data.size();
  std::fclose(fp);
  return ok;
}

}  // namespace net
}  // namespace coyote
