file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7b_synthesis_time.dir/bench/bench_fig7b_synthesis_time.cc.o"
  "CMakeFiles/bench_fig7b_synthesis_time.dir/bench/bench_fig7b_synthesis_time.cc.o.d"
  "bench/bench_fig7b_synthesis_time"
  "bench/bench_fig7b_synthesis_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7b_synthesis_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
