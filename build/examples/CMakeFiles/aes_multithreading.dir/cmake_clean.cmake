file(REMOVE_RECURSE
  "CMakeFiles/aes_multithreading.dir/aes_multithreading.cpp.o"
  "CMakeFiles/aes_multithreading.dir/aes_multithreading.cpp.o.d"
  "aes_multithreading"
  "aes_multithreading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aes_multithreading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
