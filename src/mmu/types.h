// Shared-virtual-memory types.

#ifndef SRC_MMU_TYPES_H_
#define SRC_MMU_TYPES_H_

#include <cstdint>
#include <string_view>

namespace coyote {
namespace mmu {

// Physical memory a page can be resident in. The GPU kind models the
// externally contributed MMU extension for FPGA<->GPU peer DMA (paper §2.2);
// the NVMe kind is the cold end of the host/HBM/GPU/NVMe placement hierarchy
// the tiering service (src/mmu/tiering.h) manages — pages demoted there are
// backed by the memsys::NvmeDrive block store.
enum class MemKind : uint8_t {
  kHost,
  kCard,
  kGpu,
  kNvme,
};

inline constexpr uint32_t kNumMemKinds = 4;

inline std::string_view MemKindName(MemKind k) {
  switch (k) {
    case MemKind::kHost:
      return "host";
    case MemKind::kCard:
      return "card";
    case MemKind::kGpu:
      return "gpu";
    case MemKind::kNvme:
      return "nvme";
  }
  return "unknown";
}

struct PhysPage {
  MemKind kind = MemKind::kHost;
  uint64_t addr = 0;  // physical address within that memory
};

// Observer interface for the two access streams the memory system already
// produces (functional virtual-memory accesses and TLB-miss driver fallbacks)
// plus page-migration events. The tiering service implements this to build
// its per-page heat profile; the producers (Svm, Mmu) stay policy-free and
// pay a single predictable null-check when no profiler is attached.
class TierProfileSink {
 public:
  virtual ~TierProfileSink() = default;
  // A ReadVirtual/WriteVirtual touched [vaddr, vaddr+len).
  virtual void OnAccess(uint64_t vaddr, uint64_t len, bool write) = 0;
  // A hardware TLB missed and fell back to the driver for `vaddr`.
  virtual void OnTlbMiss(uint64_t vaddr) = 0;
  // Page `vpage` moved between physical tiers (any initiator).
  virtual void OnMigrate(uint64_t vpage, MemKind from, MemKind to) = 0;
};

}  // namespace mmu
}  // namespace coyote

#endif  // SRC_MMU_TYPES_H_
