file(REMOVE_RECURSE
  "CMakeFiles/hll_daemon.dir/hll_daemon.cpp.o"
  "CMakeFiles/hll_daemon.dir/hll_daemon.cpp.o.d"
  "hll_daemon"
  "hll_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hll_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
