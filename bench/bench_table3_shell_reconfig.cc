// Table 3: shell reconfiguration latency for three scenarios.
//
//   #1  pass-through + 2 MB-page MMU   ->  pass-through + 1 GB-page MMU
//   #2  RDMA + traffic-writer kernel   ->  vector add + product, no network
//   #3  RDMA + traffic sniffer         ->  RDMA only (sniffer disabled)
//
// Reported like the paper: the kernel latency (pure ICAP programming) and
// the total latency (disk read + copy to kernel space + programming),
// against a full re-programming via Vivado Hardware Manager (JTAG + PCIe
// hot-plug + driver re-insertion).

#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/runtime/crcnfg.h"
#include "src/runtime/device.h"
#include "src/services/vector_kernels.h"
#include "src/synth/flow.h"
#include "src/synth/netlist.h"

namespace coyote {
namespace {

struct Scenario {
  std::string name;
  fabric::ShellConfigDesc from;
  std::vector<synth::Netlist> from_apps;
  fabric::ShellConfigDesc to;
  std::vector<synth::Netlist> to_apps;
  double paper_kernel_ms;
  double paper_total_ms;
  double paper_vivado_ms;
};

fabric::ShellConfigDesc Shell(const std::string& name, std::vector<fabric::Service> services,
                              uint64_t page_bytes = 2ull << 20) {
  fabric::ShellConfigDesc s;
  s.name = name;
  s.services = std::move(services);
  s.services.insert(s.services.begin(), fabric::Service::kHostStream);
  s.num_vfpgas = 2;
  s.page_bytes = page_bytes;
  return s;
}

void Run() {
  bench::PrintHeader("Shell reconfiguration latency", "Coyote v2 paper, Table 3");

  using fabric::Service;
  synth::Netlist passthrough{"passthrough", {synth::LibraryModule("passthrough")}};
  synth::Netlist vadd{"vector_add", {synth::LibraryModule("vector_add")}};
  synth::Netlist vmult{"vector_mult", {synth::LibraryModule("vector_mult")}};

  std::vector<Scenario> scenarios = {
      {"#1 MMU 2MB -> 1GB pages",
       Shell("pt-2m", {}, 2ull << 20), {passthrough},
       Shell("pt-1g", {}, 1ull << 30), {passthrough},
       51.6, 536.2, 55922.5},
      {"#2 RDMA writer -> 2 numeric kernels",
       Shell("rdma-writer", {Service::kCardMemory, Service::kRdma}), {passthrough},
       Shell("numeric", {Service::kCardMemory}), {vadd, vmult},
       72.3, 709.0, 63045.2},
      {"#3 RDMA+sniffer -> RDMA",
       Shell("rdma-sniffer", {Service::kCardMemory, Service::kRdma, Service::kSniffer}),
       {passthrough},
       Shell("rdma", {Service::kCardMemory, Service::kRdma}), {passthrough},
       85.5, 929.1, 71417.9},
  };

  bench::Row("%-38s %10s %10s %12s | %8s %8s %10s", "Scenario", "kernel", "total",
             "Vivado", "paper", "paper", "paper");
  bench::Row("%-38s %10s %10s %12s | %8s %8s %10s", "", "[ms]", "[ms]", "flow [ms]", "krnl",
             "total", "Vivado");
  bench::PrintRule();

  for (const Scenario& sc : scenarios) {
    // Start from the "from" shell, then reconfigure to the "to" shell.
    runtime::SimDevice::Config cfg;
    cfg.shell = sc.from;
    runtime::SimDevice dev(cfg);

    synth::BuildFlow flow(dev.floorplan());
    const synth::BuildOutput target = flow.RunShellFlow(sc.to, sc.to_apps);
    if (!target.ok) {
      bench::Row("%-38s  ERROR: %s", sc.name.c_str(), target.error.c_str());
      continue;
    }
    dev.WriteBitstreamFile("/bit/target.bin", target.shell_bitstream);

    runtime::CRcnfg rcnfg(&dev);
    const auto result = rcnfg.ReconfigureShell("/bit/target.bin");
    if (!result.ok) {
      bench::Row("%-38s  ERROR: %s", sc.name.c_str(), result.error.c_str());
      continue;
    }

    // Vivado baseline: reprogram the full device holding the target design.
    const double vivado_ms =
        1000.0 * flow.VivadoFullProgramSeconds(target.shell_bitstream.occupied +
                                               synth::LibraryModule("static_layer").res);

    bench::Row("%-38s %10.1f %10.1f %12.1f | %8.1f %8.1f %10.1f", sc.name.c_str(),
               sim::ToMilliseconds(result.kernel_latency),
               sim::ToMilliseconds(result.total_latency), vivado_ms, sc.paper_kernel_ms,
               sc.paper_total_ms, sc.paper_vivado_ms);
  }
  bench::PrintRule();
  bench::Note("Shape check: Coyote v2 shell reconfiguration is 1-2 orders of magnitude");
  bench::Note("faster than full re-programming, and latency grows with shell complexity.");
  bench::Note("Kernel latency ~10% of total: disk read dominates (paper: same split).");
}

}  // namespace
}  // namespace coyote

int main() {
  coyote::Run();
  return 0;
}
