// Allocation-free callbacks for the simulator hot path.
//
// Every event the engine retires carries a callable. With std::function the
// common captures on the data path — a shared_ptr to the op, a couple of
// integers, a stream pointer — routinely exceed the implementation's small
// buffer (16-32 bytes on mainstream standard libraries) and force one heap
// allocation per scheduled event, which dominates the schedule/fire cycle at
// the event rates the soak benches run at. InlineCallback is a move-only
// replacement with 48 bytes of inline storage: captures up to that size are
// stored in place and steady-state scheduling never touches the allocator.
// Larger captures (or throwing-move functors) fall back to the heap exactly
// like std::function, so nothing needs to change at call sites.
//
// Used as the callback type of sim::Engine, sim::TimerWheel, sim::Link and
// axi::Stream. Anything callable with signature void() converts implicitly,
// including an existing std::function<void()> (which then rides inline, since
// sizeof(std::function) <= 48 everywhere we build).

#ifndef SRC_SIM_CALLBACK_H_
#define SRC_SIM_CALLBACK_H_

#include <cstddef>
#include <new>  // placement new; lint: raw-alloc-ok
#include <type_traits>
#include <utility>

namespace coyote {
namespace sim {

class InlineCallback {
 public:
  // Inline capture budget. Sized for the simulator's common case: a `this`
  // pointer, a shared_ptr control block handle, and a few 64-bit scalars.
  static constexpr size_t kInlineBytes = 48;

  InlineCallback() noexcept = default;
  InlineCallback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, InlineCallback> &&
                                        !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    Emplace<std::decay_t<F>>(std::forward<F>(f));
  }

  InlineCallback(InlineCallback&& other) noexcept { MoveFrom(&other); }
  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(&other);
    }
    return *this;
  }
  InlineCallback& operator=(std::nullptr_t) noexcept {
    Reset();
    return *this;
  }
  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { Reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

  // True if this callback's captures spilled to the heap (capture too large
  // or not nothrow-move-constructible). Exposed for tests and the perf bench.
  bool heap_allocated() const noexcept { return ops_ != nullptr && ops_->heap; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-construct into `dst` from `src` storage, then destroy src's object.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool heap;
    // Trivially copyable + trivially destructible capture: moves are a plain
    // 48-byte memcpy and destruction is a no-op, so the per-event hot path
    // (schedule -> pool slot -> fire) skips the indirect relocate/destroy
    // calls entirely. This is the common case for engine events — a couple
    // of pointers and scalars.
    bool trivial;
  };

  template <typename F>
  static constexpr bool kFitsInline = sizeof(F) <= kInlineBytes &&
                                      alignof(F) <= alignof(std::max_align_t) &&
                                      std::is_nothrow_move_constructible_v<F>;

  template <typename F>
  static const Ops* InlineOps() {
    static constexpr Ops ops = {
        [](void* s) { (*static_cast<F*>(static_cast<void*>(s)))(); },
        [](void* dst, void* src) noexcept {
          F* from = static_cast<F*>(src);
          ::new (dst) F(std::move(*from));  // placement new; lint: raw-alloc-ok
          from->~F();
        },
        [](void* s) noexcept { static_cast<F*>(s)->~F(); },
        /*heap=*/false,
        /*trivial=*/std::is_trivially_copyable_v<F> && std::is_trivially_destructible_v<F>,
    };
    return &ops;
  }

  template <typename F>
  static const Ops* HeapOps() {
    static constexpr Ops ops = {
        [](void* s) { (**static_cast<F**>(s))(); },
        [](void* dst, void* src) noexcept {
          *static_cast<F**>(dst) = *static_cast<F**>(src);
        },
        // InlineCallback is the simulator's allocator shim for callables;
        // ownership never escapes, so raw new/delete is contained here.
        [](void* s) noexcept { delete *static_cast<F**>(s); },  // lint: raw-alloc-ok
        /*heap=*/true,
        /*trivial=*/false,
    };
    return &ops;
  }

  template <typename F, typename Arg>
  void Emplace(Arg&& f) {
    if constexpr (kFitsInline<F>) {
      ::new (static_cast<void*>(storage_)) F(std::forward<Arg>(f));  // lint: raw-alloc-ok
      ops_ = InlineOps<F>();
    } else {
      *reinterpret_cast<F**>(storage_) = new F(std::forward<Arg>(f));  // lint: raw-alloc-ok
      ops_ = HeapOps<F>();
    }
  }

  void MoveFrom(InlineCallback* other) noexcept {
    if (other->ops_ != nullptr) {
      if (other->ops_->trivial) {
        __builtin_memcpy(storage_, other->storage_, kInlineBytes);
      } else {
        other->ops_->relocate(storage_, other->storage_);
      }
      ops_ = other->ops_;
      other->ops_ = nullptr;
    }
  }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      if (!ops_->trivial) {
        ops_->destroy(storage_);
      }
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace sim
}  // namespace coyote

#endif  // SRC_SIM_CALLBACK_H_
