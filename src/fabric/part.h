// Device descriptions for the AMD Alveo cards Coyote v2 supports.
//
// Numbers are taken from the public AMD data sheets for the parts the paper
// deploys on (U55C, U250, U280). Only quantities that feed the models matter:
// resource totals (utilization, bitstream sizes), HBM/DDR geometry (Fig. 7a)
// and host-link bandwidth (Figs. 8, 10, 12).

#ifndef SRC_FABRIC_PART_H_
#define SRC_FABRIC_PART_H_

#include <cstdint>
#include <string_view>

#include "src/fabric/resources.h"

namespace coyote {
namespace fabric {

enum class CardMemoryKind : uint8_t {
  kHbm,
  kDdr,
};

struct FpgaPart {
  std::string_view name;
  ResourceVector total;

  CardMemoryKind card_memory = CardMemoryKind::kHbm;
  uint32_t memory_channels = 0;          // HBM pseudo-channels or DDR channels
  uint64_t memory_bytes = 0;             // total card memory
  uint64_t channel_bandwidth_bps = 0;    // raw per-channel bandwidth
  uint64_t host_link_bandwidth_bps = 0;  // effective XDMA bandwidth per direction
  uint64_t network_bandwidth_bps = 0;    // CMAC line rate

  // Total device configuration bitstream size (full programming, used by the
  // Vivado-flow baseline in Table 3).
  uint64_t full_bitstream_bytes = 0;
};

// Alveo U55C: xcu55c (VU47P-class die), 32 GB HBM2 in 32 pseudo-channels.
// 12 GB/s effective host bandwidth via XDMA (paper §9.4); 100G CMAC.
inline constexpr FpgaPart kAlveoU55C{
    .name = "Alveo U55C",
    .total = {1'303'680, 2'607'360, 2'016, 960, 9'024},
    .card_memory = CardMemoryKind::kHbm,
    .memory_channels = 32,
    .memory_bytes = 32ull << 30,
    .channel_bandwidth_bps = 14'400'000'000ull,  // 256-bit @ 450 MHz
    .host_link_bandwidth_bps = 12'000'000'000ull,
    .network_bandwidth_bps = 12'500'000'000ull,  // 100 Gbit/s
    .full_bitstream_bytes = 91ull << 20,
};

// Alveo U250: xcu250, 64 GB DDR4 in 4 channels.
inline constexpr FpgaPart kAlveoU250{
    .name = "Alveo U250",
    .total = {1'728'000, 3'456'000, 2'688, 1'280, 12'288},
    .card_memory = CardMemoryKind::kDdr,
    .memory_channels = 4,
    .memory_bytes = 64ull << 30,
    .channel_bandwidth_bps = 19'200'000'000ull,  // DDR4-2400 x72
    .host_link_bandwidth_bps = 12'000'000'000ull,
    .network_bandwidth_bps = 12'500'000'000ull,
    .full_bitstream_bytes = 108ull << 20,
};

// Alveo U280: xcu280, 8 GB HBM2 + 32 GB DDR4 (we model the HBM side).
inline constexpr FpgaPart kAlveoU280{
    .name = "Alveo U280",
    .total = {1'303'680, 2'607'360, 2'016, 960, 9'024},
    .card_memory = CardMemoryKind::kHbm,
    .memory_channels = 32,
    .memory_bytes = 8ull << 30,
    .channel_bandwidth_bps = 14'400'000'000ull,
    .host_link_bandwidth_bps = 12'000'000'000ull,
    .network_bandwidth_bps = 12'500'000'000ull,
    .full_bitstream_bytes = 91ull << 20,
};

}  // namespace fabric
}  // namespace coyote

#endif  // SRC_FABRIC_PART_H_
