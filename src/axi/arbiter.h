// Round-robin arbiter.
//
// The pre-provided arbiter Coyote v2 ships for multiplexing parallel streams
// into a shared pipeline (paper §9.5) and for interleaving vFPGA traffic on
// bandwidth-constrained links (§6.3). Work-conserving: a grant skips inputs
// that are not ready, and the pointer advances past the granted input so each
// ready input is served once per round.

#ifndef SRC_AXI_ARBITER_H_
#define SRC_AXI_ARBITER_H_

#include <cstddef>
#include <functional>
#include <optional>

namespace coyote {
namespace axi {

class RoundRobinArbiter {
 public:
  explicit RoundRobinArbiter(size_t num_inputs) : num_inputs_(num_inputs) {}

  size_t num_inputs() const { return num_inputs_; }

  // Grants the next ready input after the last grant, wrapping around.
  // Returns nullopt when no input is ready.
  std::optional<size_t> Grant(const std::function<bool(size_t)>& ready) {
    for (size_t i = 0; i < num_inputs_; ++i) {
      const size_t idx = (next_ + i) % num_inputs_;
      if (ready(idx)) {
        next_ = (idx + 1) % num_inputs_;
        ++grants_;
        return idx;
      }
    }
    return std::nullopt;
  }

  uint64_t grants() const { return grants_; }

 private:
  size_t num_inputs_;
  size_t next_ = 0;
  uint64_t grants_ = 0;
};

}  // namespace axi
}  // namespace coyote

#endif  // SRC_AXI_ARBITER_H_
