// Unit tests for the memory substrate: sparse store, host allocator, card
// memory with striping, GPU memory.

#include <gtest/gtest.h>

#include <vector>

#include "src/memsys/card_memory.h"
#include "src/memsys/gpu_memory.h"
#include "src/memsys/host_memory.h"
#include "src/memsys/nvme.h"
#include "src/memsys/sparse_memory.h"
#include "src/sim/engine.h"
#include "src/sim/rng.h"

namespace coyote {
namespace memsys {
namespace {

TEST(SparseMemoryTest, RoundTripWithinChunk) {
  SparseMemory mem;
  const std::vector<uint8_t> data{1, 2, 3, 4, 5};
  mem.Write(100, data.data(), data.size());
  std::vector<uint8_t> out(5);
  mem.Read(100, out.data(), 5);
  EXPECT_EQ(out, data);
}

TEST(SparseMemoryTest, CrossChunkBoundary) {
  SparseMemory mem;
  std::vector<uint8_t> data(200'000);
  sim::Rng rng(1);
  rng.FillBytes(data.data(), data.size());
  const uint64_t addr = SparseMemory::kChunkBytes - 1234;  // straddles chunks
  mem.Write(addr, data.data(), data.size());
  std::vector<uint8_t> out(data.size());
  mem.Read(addr, out.data(), out.size());
  EXPECT_EQ(out, data);
}

TEST(SparseMemoryTest, UntouchedMemoryReadsZero) {
  SparseMemory mem;
  std::vector<uint8_t> out(64, 0xFF);
  mem.Read(1ull << 40, out.data(), out.size());
  for (uint8_t b : out) {
    EXPECT_EQ(b, 0);
  }
  EXPECT_EQ(mem.resident_bytes(), 0u);
}

TEST(SparseMemoryTest, FillAndResidency) {
  SparseMemory mem;
  mem.Fill(0, 0xAB, 100);
  uint8_t b = 0;
  mem.Read(99, &b, 1);
  EXPECT_EQ(b, 0xAB);
  EXPECT_EQ(mem.resident_bytes(), SparseMemory::kChunkBytes);
}

TEST(HostMemoryTest, AllocationAlignmentPerKind) {
  HostMemory mem;
  const uint64_t reg = mem.Allocate(100, AllocKind::kRegular);
  EXPECT_EQ(reg % 4096, 0u);
  const uint64_t huge = mem.Allocate(100, AllocKind::kHuge2M);
  EXPECT_EQ(huge % (2ull << 20), 0u);
  const uint64_t giant = mem.Allocate(100, AllocKind::kHuge1G);
  EXPECT_EQ(giant % (1ull << 30), 0u);
  EXPECT_EQ(mem.num_allocations(), 3u);
}

TEST(HostMemoryTest, SizesRoundUpToPage) {
  HostMemory mem;
  const uint64_t addr = mem.Allocate(1, AllocKind::kHuge2M);
  auto alloc = mem.FindAllocation(addr);
  ASSERT_TRUE(alloc.has_value());
  EXPECT_EQ(alloc->bytes, 2ull << 20);
}

TEST(HostMemoryTest, FindAllocationByInteriorAddress) {
  HostMemory mem;
  const uint64_t addr = mem.Allocate(8192, AllocKind::kRegular);
  auto alloc = mem.FindAllocation(addr + 5000);
  ASSERT_TRUE(alloc.has_value());
  EXPECT_EQ(alloc->addr, addr);
  EXPECT_FALSE(mem.FindAllocation(addr + 8192).has_value());
  EXPECT_FALSE(mem.FindAllocation(42).has_value());
}

TEST(HostMemoryTest, FreeRemovesAllocation) {
  HostMemory mem;
  const uint64_t addr = mem.Allocate(4096, AllocKind::kRegular);
  EXPECT_TRUE(mem.Free(addr));
  EXPECT_FALSE(mem.Free(addr));
  EXPECT_FALSE(mem.FindAllocation(addr).has_value());
}

TEST(HostMemoryTest, AllocationsDoNotOverlap) {
  HostMemory mem;
  std::vector<std::pair<uint64_t, uint64_t>> ranges;
  sim::Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const uint64_t n = rng.NextBounded(1 << 20) + 1;
    const auto kind = static_cast<AllocKind>(rng.NextBounded(2));  // reg / 2M
    const uint64_t a = mem.Allocate(n, kind);
    const auto alloc = mem.FindAllocation(a);
    for (const auto& [base, len] : ranges) {
      EXPECT_TRUE(a + alloc->bytes <= base || base + len <= a);
    }
    ranges.emplace_back(a, alloc->bytes);
  }
}

TEST(CardMemoryTest, ChannelMappingStripes) {
  sim::Engine engine;
  CardMemory::Config cfg;
  cfg.num_channels = 8;
  cfg.stripe_bytes = 4096;
  CardMemory card(&engine, cfg);
  EXPECT_EQ(card.ChannelFor(0), 0u);
  EXPECT_EQ(card.ChannelFor(4096), 1u);
  EXPECT_EQ(card.ChannelFor(4096ull * 8), 0u);  // wraps
  EXPECT_EQ(card.ChannelFor(4095), 0u);
}

TEST(CardMemoryTest, SingleChannelBandwidth) {
  sim::Engine engine;
  CardMemory::Config cfg;
  cfg.num_channels = 1;
  cfg.mmu_bypass = true;  // isolate the channel model
  CardMemory card(&engine, cfg);
  const uint64_t bytes = 1 << 20;
  bool done = false;
  card.Access(0, bytes, 0, [&] { done = true; });
  engine.RunUntilIdle();
  ASSERT_TRUE(done);
  const double gbps = sim::BandwidthGBps(bytes, engine.Now());
  // 14.4 GB/s raw * 0.6 efficiency = 8.64 GB/s.
  EXPECT_NEAR(gbps, 8.64, 0.1);
}

TEST(CardMemoryTest, StripedAccessUsesAllChannels) {
  sim::Engine engine;
  CardMemory::Config cfg;
  cfg.num_channels = 4;
  cfg.mmu_bypass = true;
  CardMemory card(&engine, cfg);
  const uint64_t bytes = 4 << 20;
  bool done = false;
  card.Access(0, bytes, 0, [&] { done = true; });
  engine.RunUntilIdle();
  ASSERT_TRUE(done);
  const double gbps = sim::BandwidthGBps(bytes, engine.Now());
  EXPECT_NEAR(gbps, 4 * 8.64, 0.5);
}

TEST(CardMemoryTest, CrossbarCapsVirtualizedBandwidth) {
  sim::Engine engine;
  CardMemory::Config cfg;
  cfg.num_channels = 32;
  cfg.mmu_bypass = false;
  cfg.translation_overhead = sim::Nanoseconds(50);
  CardMemory card(&engine, cfg);
  const uint64_t bytes = 32 << 20;
  bool done = false;
  card.Access(0, bytes, 0, [&] { done = true; });
  engine.RunUntilIdle();
  ASSERT_TRUE(done);
  const double gbps = sim::BandwidthGBps(bytes, engine.Now());
  // Cap = 4 KB / 50 ns ~= 82 GB/s, well below 32 * 8.64 = 276 GB/s raw.
  EXPECT_LT(gbps, 85.0);
  EXPECT_GT(gbps, 70.0);
}

TEST(CardMemoryTest, AllocateIsContiguousAndAligned) {
  sim::Engine engine;
  CardMemory card(&engine, {});
  const uint64_t a = card.Allocate(100);
  const uint64_t b = card.Allocate(100);
  EXPECT_EQ(a % 4096, 0u);
  EXPECT_EQ(b, a + 4096);
}

TEST(CardMemoryTest, ZeroLengthAccessCompletes) {
  sim::Engine engine;
  CardMemory card(&engine, {});
  bool done = false;
  card.Access(0, 0, 0, [&] { done = true; });
  engine.RunUntilIdle();
  EXPECT_TRUE(done);
}

TEST(GpuMemoryTest, AllocateAligned256) {
  GpuMemory gpu;
  const uint64_t a = gpu.Allocate(100);
  const uint64_t b = gpu.Allocate(100);
  EXPECT_EQ(a % 256, 0u);
  EXPECT_EQ(b, a + 256);
  gpu.store().Fill(a, 0x5A, 100);
  uint8_t v = 0;
  gpu.store().Read(a + 50, &v, 1);
  EXPECT_EQ(v, 0x5A);
}

TEST(NvmeTest, CommandLatencyAndBandwidth) {
  sim::Engine engine;
  memsys::NvmeDrive drive(&engine, {});
  // Small read: dominated by command latency (75 us).
  bool done = false;
  drive.ReadCommand(0, 1, 0, [&] { done = true; });
  engine.RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_GE(engine.Now(), sim::Microseconds(75));
  EXPECT_LT(engine.Now(), sim::Microseconds(80));

  // Large read: bandwidth-bound at 7 GB/s.
  const sim::TimePs start = engine.Now();
  done = false;
  drive.ReadCommand(0, 64ull << 20 >> 12, 0, [&] { done = true; });  // 64 MiB
  engine.RunUntilIdle();
  const double gbps = sim::BandwidthGBps(64ull << 20, engine.Now() - start);
  EXPECT_NEAR(gbps, 7.0, 0.2);
}

TEST(NvmeTest, WritesAckFasterThanReads) {
  sim::Engine engine;
  memsys::NvmeDrive drive(&engine, {});
  sim::TimePs write_done = 0, read_done = 0;
  drive.WriteCommand(0, 1, 0, [&] { write_done = engine.Now(); });
  engine.RunUntilIdle();
  const sim::TimePs mark = engine.Now();
  drive.ReadCommand(0, 1, 0, [&] { read_done = engine.Now() - mark; });
  engine.RunUntilIdle();
  EXPECT_LT(write_done, read_done);  // write-back cache ack vs media read
  EXPECT_EQ(drive.reads(), 1u);
  EXPECT_EQ(drive.writes(), 1u);
}

TEST(NvmeTest, StoreIsBlockAddressedAndPersistent) {
  sim::Engine engine;
  memsys::NvmeDrive drive(&engine, {});
  std::vector<uint8_t> block(4096);
  sim::Rng rng(5);
  rng.FillBytes(block.data(), block.size());
  drive.store().Write(42ull * 4096, block.data(), block.size());
  std::vector<uint8_t> back(4096);
  drive.store().Read(42ull * 4096, back.data(), back.size());
  EXPECT_EQ(back, block);
  EXPECT_GT(drive.num_blocks(), 1'000'000u);  // 1 TB of 4K blocks
}

TEST(NvmeTest, AllocateIsBlockAlignedAndMonotone) {
  sim::Engine engine;
  memsys::NvmeDrive drive(&engine, {});
  // Sub-block request still consumes a whole block (the tiering service's
  // swap slots never alias).
  EXPECT_EQ(drive.Allocate(100), 0u);
  EXPECT_EQ(drive.Allocate(4096), 4096u);
  EXPECT_EQ(drive.Allocate(2ull << 20), 2 * 4096u);
  EXPECT_EQ(drive.allocated_bytes(), 2 * 4096u + (2ull << 20));
}

// Property: card bandwidth scales ~linearly with channel count when striped
// and bypassed (no shared bottleneck).
class CardScaling : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CardScaling, LinearWithChannels) {
  const uint32_t channels = GetParam();
  sim::Engine engine;
  CardMemory::Config cfg;
  cfg.num_channels = channels;
  cfg.mmu_bypass = true;
  CardMemory card(&engine, cfg);
  const uint64_t bytes = static_cast<uint64_t>(channels) << 20;
  bool done = false;
  card.Access(0, bytes, 0, [&] { done = true; });
  engine.RunUntilIdle();
  ASSERT_TRUE(done);
  const double gbps = sim::BandwidthGBps(bytes, engine.Now());
  EXPECT_NEAR(gbps, 8.64 * channels, 0.15 * 8.64 * channels);
}

INSTANTIATE_TEST_SUITE_P(Channels, CardScaling, ::testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace memsys
}  // namespace coyote
