// Fixture: iteration over unordered containers, which the `unordered-iter`
// rule flags because hash iteration order is implementation-defined.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

uint64_t SumValues() {
  std::unordered_map<uint64_t, uint64_t> totals_by_id;
  uint64_t sum = 0;
  for (const auto& [id, v] : totals_by_id) {
    sum += v;
  }
  return sum;
}

uint64_t FirstMember() {
  std::unordered_set<uint64_t> members;
  if (members.begin() != members.end()) {
    return *members.begin();
  }
  return 0;
}
