# Empty dependencies file for remote_daemon.
# This may be replaced when dependencies are built.
