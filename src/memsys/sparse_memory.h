// Sparse byte-addressable backing store.
//
// Host DRAM, card HBM/DDR and GPU memory all need functional storage — the
// substrate moves real bytes so kernels (AES, HLL, NN) compute real results.
// Chunked allocation keeps multi-GB address spaces cheap when only small
// windows are touched.

#ifndef SRC_MEMSYS_SPARSE_MEMORY_H_
#define SRC_MEMSYS_SPARSE_MEMORY_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/sim/access_guard.h"

namespace coyote {
namespace memsys {

class SparseMemory {
 public:
  static constexpr uint64_t kChunkBytes = 64 * 1024;

  void Write(uint64_t addr, const void* src, uint64_t len) {
    const auto* p = static_cast<const uint8_t*>(src);
    while (len > 0) {
      const uint64_t chunk = addr / kChunkBytes;
      const uint64_t off = addr % kChunkBytes;
      const uint64_t n = std::min(len, kChunkBytes - off);
      std::memcpy(ChunkFor(chunk) + off, p, n);
      addr += n;
      p += n;
      len -= n;
    }
  }

  void Read(uint64_t addr, void* dst, uint64_t len) const {
    auto* p = static_cast<uint8_t*>(dst);
    while (len > 0) {
      const uint64_t chunk = addr / kChunkBytes;
      const uint64_t off = addr % kChunkBytes;
      const uint64_t n = std::min(len, kChunkBytes - off);
      auto it = chunks_.find(chunk);
      if (it == chunks_.end()) {
        std::memset(p, 0, n);  // untouched memory reads as zero
      } else {
        std::memcpy(p, it->second.get() + off, n);
      }
      addr += n;
      p += n;
      len -= n;
    }
  }

  std::vector<uint8_t> ReadVector(uint64_t addr, uint64_t len) const {
    std::vector<uint8_t> v(len);
    Read(addr, v.data(), len);
    return v;
  }

  void Fill(uint64_t addr, uint8_t value, uint64_t len) {
    while (len > 0) {
      const uint64_t chunk = addr / kChunkBytes;
      const uint64_t off = addr % kChunkBytes;
      const uint64_t n = std::min(len, kChunkBytes - off);
      std::memset(ChunkFor(chunk) + off, value, n);
      addr += n;
      len -= n;
    }
  }

  uint64_t resident_bytes() const { return chunks_.size() * kChunkBytes; }

 private:
  uint8_t* ChunkFor(uint64_t chunk) {
    auto it = chunks_.find(chunk);
    if (it == chunks_.end()) {
      guard_.Write();
      auto buf = std::make_unique<uint8_t[]>(kChunkBytes);
      std::memset(buf.get(), 0, kChunkBytes);
      it = chunks_.emplace(chunk, std::move(buf)).first;
    }
    return it->second.get();
  }

  sim::AccessGuard guard_{"memsys.sparse_memory"};
  std::unordered_map<uint64_t, std::unique_ptr<uint8_t[]>> chunks_;
};

}  // namespace memsys
}  // namespace coyote

#endif  // SRC_MEMSYS_SPARSE_MEMORY_H_
