#include "src/runtime/supervisor.h"

#include <string>
#include <utility>

namespace coyote {
namespace runtime {

Supervisor::Supervisor(SimDevice* dev, KernelScheduler* scheduler, Config config)
    : dev_(dev), scheduler_(scheduler), config_(config) {
  regions_.resize(dev_->num_vfpgas());
  // The supervisor drives quarantine, DMA aborts, and reconfiguration
  // synchronously from inside its own tick; those cross-actor touches are
  // program-ordered by construction. Declare the pairs so the race detector
  // stays focused on genuine reentrancy bugs.
  auto& ledger = sim::AccessLedger::Global();
  ledger.DeclareOrdered(sim::kActorSupervisor, sim::kActorScheduler);
  ledger.DeclareOrdered(sim::kActorSupervisor, sim::kActorDma);
  ledger.DeclareOrdered(sim::kActorSupervisor, sim::kActorHost);
  dev_->SetSupervisor(this);
}

Supervisor::~Supervisor() {
  Stop();
  if (dev_->supervisor() == this) {
    dev_->SetSupervisor(nullptr);
  }
}

void Supervisor::Start() {
  if (watchdog_timer_ != sim::TimerWheel::kInvalidTimer) {
    return;
  }
  // Baseline the heartbeats so a region already busy at Start() is not
  // instantly suspected.
  const sim::TimePs now = dev_->engine().Now();
  for (uint32_t i = 0; i < regions_.size(); ++i) {
    RegionWatch& w = regions_[i];
    w.last_beats = dev_->vfpga(i).beats_retired();
    w.last_packets = dev_->data_mover().packets_moved_for(i);
    w.last_progress_at = now;
  }
  watchdog_timer_ =
      dev_->timers().SchedulePeriodic(config_.watchdog_period, [this]() { Tick(); });
}

void Supervisor::Stop() {
  if (watchdog_timer_ != sim::TimerWheel::kInvalidTimer) {
    dev_->timers().Cancel(watchdog_timer_);
    watchdog_timer_ = sim::TimerWheel::kInvalidTimer;
  }
}

void Supervisor::SetLastKnownGood(uint32_t vfpga_id, const std::string& bitstream_path) {
  state_guard_.Write();
  regions_[vfpga_id].last_known_good = bitstream_path;
}

void Supervisor::NoteDeadlineMiss(uint32_t vfpga_id) {
  sim::ActorScope actor(sim::kActorSupervisor);
  state_guard_.Write();
  RegionWatch& w = regions_[vfpga_id];
  if (w.health == RegionHealth::kHealthy || w.health == RegionHealth::kSuspected ||
      w.health == RegionHealth::kProbation) {
    // A miss during probation is relapse evidence: the freshly reprogrammed
    // region is already failing host deadlines again.
    w.deadline_missed = true;
    TraceEvent(vfpga_id, "deadline.miss");
  }
}

void Supervisor::Tick() {
  if (ticking_) {
    return;  // nested fire while a recovery advances time
  }
  ticking_ = true;
  sim::ActorScope actor(sim::kActorSupervisor);
  state_guard_.Write();
  ++watchdog_ticks_;
  for (uint32_t i = 0; i < regions_.size(); ++i) {
    SampleRegion(i);
  }
  ticking_ = false;
}

void Supervisor::SampleRegion(uint32_t id) {
  RegionWatch& w = regions_[id];
  if (w.health == RegionHealth::kQuarantined) {
    // A permanently fenced region cannot make progress; any work that still
    // lands on it (a host unaware of the quarantine) is bounced with error
    // completions rather than left to hang.
    if (dev_->data_mover().OutstandingOps(id) > 0) {
      dev_->data_mover().AbortVfpga(id);
      dev_->vfpga(id).FlushStreams();
      TraceEvent(id, "quarantine.bounce");
    }
    return;
  }
  if (w.health == RegionHealth::kRecovering) {
    return;
  }

  const uint64_t beats = dev_->vfpga(id).beats_retired();
  const uint64_t packets = dev_->data_mover().packets_moved_for(id);
  const bool progressed = beats != w.last_beats || packets != w.last_packets;
  const sim::TimePs now = dev_->engine().Now();
  w.last_beats = beats;
  w.last_packets = packets;

  if (w.health == RegionHealth::kProbation) {
    // Cool-down: the region is still quarantined in the scheduler, so clean
    // ticks count down to re-admission. But a region failing *again* mid-
    // probation — host-driven work wedged past the deadline window, or a
    // fresh cThread deadline miss — escalates with its carried incident
    // budget rather than quietly restarting the countdown with a full one.
    if (progressed) {
      w.last_progress_at = now;
    }
    const bool relapsed =
        w.deadline_missed ||
        (!progressed && dev_->data_mover().OutstandingOps(id) > 0 &&
         now - w.last_progress_at >= config_.heartbeat_deadline);
    if (relapsed) {
      TraceEvent(id, "probation.relapse");
      Recover(id, "probation.relapse");
      return;
    }
    if (w.probation_left > 0) {
      --w.probation_left;
    }
    if (w.probation_left == 0) {
      w.health = RegionHealth::kHealthy;
      w.last_progress_at = now;
      w.incident_attempts = 0;  // clean exit: the incident chain is over
      ++readmissions_;
      TraceEvent(id, "readmit");
      if (scheduler_ != nullptr) {
        scheduler_->SetQuarantined(id, false);
      }
    }
    return;
  }

  if (progressed) {
    w.last_progress_at = now;
    w.deadline_missed = false;
    if (w.health == RegionHealth::kSuspected) {
      w.health = RegionHealth::kHealthy;
      TraceEvent(id, "clear");
    }
    return;
  }

  const size_t outstanding = dev_->data_mover().OutstandingOps(id);
  if (outstanding == 0 && !w.deadline_missed) {
    // Idle region: flat heartbeats are expected.
    w.last_progress_at = now;
    if (w.health == RegionHealth::kSuspected) {
      w.health = RegionHealth::kHealthy;
      TraceEvent(id, "clear");
    }
    return;
  }

  // Outstanding work with flat heartbeats: suspect first, recover once the
  // deadline window has elapsed. A reported cThread deadline miss shortcuts
  // the window — the host already waited its own deadline out.
  if (w.health == RegionHealth::kHealthy) {
    w.health = RegionHealth::kSuspected;
    TraceEvent(id, "suspect");
  }
  if (w.deadline_missed || now - w.last_progress_at >= config_.heartbeat_deadline) {
    Recover(id, w.deadline_missed ? "deadline.miss" : "kernel.hang");
  }
}

void Supervisor::Recover(uint32_t id, const std::string& fault_class) {
  RegionWatch& w = regions_[id];
  const sim::TimePs detected_at = dev_->engine().Now();

  Incident incident;
  incident.vfpga_id = id;
  incident.fault_class = fault_class;
  incident.detected_at = detected_at;
  incident.detect_latency = detected_at - w.last_progress_at;
  ++hangs_detected_;
  w.health = RegionHealth::kRecovering;
  w.deadline_missed = false;
  TraceEvent(id, "detect " + fault_class);

  // ISOLATE: fence the region off from new dispatches, abort its in-flight
  // DMA (error completions, credit restore, TLB shootdown) and flush the
  // stream queues so the reprogrammed kernel starts clean.
  if (scheduler_ != nullptr) {
    scheduler_->SetQuarantined(id, true);
  }
  dev_->data_mover().AbortVfpga(id);
  dev_->vfpga(id).FlushStreams();

  // RECOVER: hot-swap the last-known-good bitstream through the normal ICAP
  // path (real Table-3 latency; itself subject to injected ICAP faults). The
  // budget is per incident *chain*: max_recoveries attempts escalate to
  // permanent quarantine. A fresh incident (the region had been cleanly
  // re-admitted, or never failed) starts a full budget; a probation relapse
  // continues the one already partly spent — failing again straight out of
  // recovery must escalate, not loop forever on a free budget.
  if (fault_class != "probation.relapse") {
    w.incident_attempts = 0;
  }
  bool ok = false;
  while (!ok && w.incident_attempts < config_.max_recoveries) {
    ++w.incident_attempts;
    ++w.recovery_count;
    if (w.last_known_good.empty()) {
      break;
    }
    ok = dev_->ReconfigureApp(w.last_known_good, id).ok;
    if (!ok) {
      ++failed_recoveries_;
      TraceEvent(id, "recover.retry");
    }
  }

  const sim::TimePs now = dev_->engine().Now();
  if (ok) {
    ++recoveries_;
    incident.recovered = true;
    incident.recovered_at = now;
    incident.mttr = now - detected_at;
    w.health = RegionHealth::kProbation;
    w.probation_left = config_.probation_ticks;
    w.last_beats = dev_->vfpga(id).beats_retired();
    w.last_packets = dev_->data_mover().packets_moved_for(id);
    w.last_progress_at = now;
    TraceEvent(id, "recover.ok");
    if (scheduler_ != nullptr) {
      // Reap the hung request and record the freshly programmed bitstream.
      scheduler_->NoteRegionReset(id, w.last_known_good);
    }
  } else {
    // Budget exhausted (or nothing to reprogram with): fence permanently.
    // The shell keeps serving the other regions.
    dev_->vfpga(id).UnloadKernel();
    w.health = RegionHealth::kQuarantined;
    ++permanent_quarantines_;
    TraceEvent(id, "quarantine.permanent");
    if (scheduler_ != nullptr) {
      scheduler_->NoteRegionReset(id, std::string());
    }
  }
  incidents_.push_back(std::move(incident));
}

void Supervisor::TraceEvent(uint32_t id, const std::string& event) {
  trace_.push_back("t=" + std::to_string(dev_->engine().Now()) + " vfpga=" +
                   std::to_string(id) + " " + event);
}

uint64_t Supervisor::TraceFingerprint() const {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64-bit offset basis
  auto mix = [&h](uint8_t byte) {
    h ^= byte;
    h *= 0x100000001b3ull;
  };
  for (const auto& line : trace_) {
    for (const char c : line) {
      mix(static_cast<uint8_t>(c));
    }
    mix('\n');
  }
  return h;
}

}  // namespace runtime
}  // namespace coyote
