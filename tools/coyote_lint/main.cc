// coyote_lint CLI: determinism lint over the project tree.
//
//   coyote_lint --root <repo> src tests bench examples tools
//   coyote_lint --root <repo> --rule nondet src
//   coyote_lint --list-rules
//
// Exit codes: 0 clean, 1 findings, 2 usage error. Findings print one per
// line as `path:line: [rule] message` so editors and CI annotations can jump
// straight to the offending line.

#include <cstdio>
#include <string>
#include <vector>

#include "tools/coyote_lint/lint.h"

namespace {

void PrintUsage() {
  std::fprintf(stderr,
               "usage: coyote_lint [--root DIR] [--rule ID]... [--list-rules] [path...]\n"
               "  --root DIR    project root; findings are reported relative to it (default .)\n"
               "  --rule ID     run only the named rule (repeatable)\n"
               "  --list-rules  print the rule table and exit\n"
               "  path          files or directories under --root (default: src tests bench)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  coyote::lint::Options options;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        PrintUsage();
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--rule") {
      if (i + 1 >= argc) {
        PrintUsage();
        return 2;
      }
      options.rules.push_back(argv[++i]);
    } else if (arg == "--list-rules") {
      for (const auto& rule : coyote::lint::Rules()) {
        std::printf("%-16s suppress with '// lint: %s'\n    %s\n", rule.id.c_str(),
                    rule.suppression.c_str(), rule.summary.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "coyote_lint: unknown option '%s'\n", arg.c_str());
      PrintUsage();
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    paths = {"src", "tests", "bench"};
  }

  const auto files = coyote::lint::CollectFiles(root, paths);
  if (files.empty()) {
    std::fprintf(stderr, "coyote_lint: no source files found under --root %s\n", root.c_str());
    return 2;
  }
  const auto findings = coyote::lint::LintPaths(root, files, options);
  for (const auto& f : findings) {
    std::printf("%s:%u: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(), f.message.c_str());
  }
  std::fprintf(stderr, "coyote_lint: %zu finding%s in %zu file%s\n", findings.size(),
               findings.size() == 1 ? "" : "s", files.size(), files.size() == 1 ? "" : "s");
  return findings.empty() ? 0 : 1;
}
