#include "src/net/roce.h"

#include <algorithm>

#include "src/sim/fault.h"

namespace coyote {
namespace net {
namespace {

MacAddr MacForIp(uint32_t ip) {
  // Deterministic locally-administered MAC derived from the IP.
  return MacAddr{{0x02, 0x00, static_cast<uint8_t>(ip >> 24), static_cast<uint8_t>(ip >> 16),
                  static_cast<uint8_t>(ip >> 8), static_cast<uint8_t>(ip)}};
}

}  // namespace

RoceStack::RoceStack(sim::Engine* engine, Network* network, uint32_t ip, mmu::Svm* svm,
                     Config config)
    : engine_(engine), network_(network), ip_(ip), svm_(svm), config_(config) {
  port_id_ = network_->AttachPort(ip, [this](axi::BufferView frame) {
    OnRxFrame(std::move(frame));
  });
}

uint32_t RoceStack::CreateQp() {
  const uint32_t qpn = next_qpn_++;
  Qp qp;
  qp.local_qpn = qpn;
  qps_[qpn] = std::move(qp);
  return qpn;
}

void RoceStack::Connect(uint32_t local_qpn, uint32_t remote_ip, uint32_t remote_qpn) {
  Qp& qp = qps_.at(local_qpn);
  qp.remote_ip = remote_ip;
  qp.remote_qpn = remote_qpn;
  qp.state = QpState::kReadyToSend;
}

bool RoceStack::ResetQp(uint32_t qpn) {
  qp_guard_.Write();
  auto it = qps_.find(qpn);
  if (it == qps_.end()) {
    return false;
  }
  Qp& qp = it->second;
  // Requester state: drain the SQ and restart the PSN space.
  qp.send_psn = 0;
  qp.unacked.clear();
  qp.completions.clear();
  qp.reads.clear();
  ++qp.timer_generation;  // cancel any pending retransmit timer
  qp.cur_timeout = 0;
  qp.consecutive_timeouts = 0;
  // Responder state: expect a fresh message stream from the re-inited peer.
  qp.expected_psn = 0;
  qp.write_cursor_vaddr = 0;
  qp.write_msg_start = 0;
  qp.write_msg_bytes = 0;
  qp.recv_accum.clear();
  qp.frames_since_ack = 0;
  qp.wedged = false;
  qp.state = QpState::kInit;
  ++qp_resets_;
  return true;
}

RoceStack::QpState RoceStack::qp_state(uint32_t qpn) const {
  auto it = qps_.find(qpn);
  return it == qps_.end() ? QpState::kInit : it->second.state;
}

void RoceStack::MaybeWedge(Qp& qp) {
  if (injector_ != nullptr && !qp.wedged && injector_->NextQpWedge()) {
    qp.wedged = true;
    ++qps_wedged_;
  }
}

bool RoceStack::AdmitPost(Qp& qp, Completion& done) {
  if (qp.state == QpState::kReadyToSend) {
    MaybeWedge(qp);
    return true;
  }
  // Posting to an un-inited or errored QP is an immediate error CQE — the
  // caller always hears back, never silently loses the WR.
  ++error_completions_;
  if (done) {
    engine_->ScheduleAfter(0, [cb = std::move(done)]() { cb(false); });
    done = nullptr;
  }
  return false;
}

FrameMeta RoceStack::BaseMeta(const Qp& qp) const {
  FrameMeta m;
  m.src_mac = MacForIp(ip_);
  m.dst_mac = MacForIp(qp.remote_ip);
  m.src_ip = ip_;
  m.dst_ip = qp.remote_ip;
  m.dest_qpn = qp.remote_qpn;
  return m;
}

void RoceStack::TransmitFrame(Qp& qp, const FrameMeta& meta,
                              const axi::BufferView& payload, bool track_for_retransmit) {
  if (track_for_retransmit) {
    // Shares the posted message's buffer — no per-frame payload copy.
    qp.unacked[meta.psn] = PendingFrame{meta, payload};
    ArmRetransmitTimer(qp.local_qpn);
  }
  if (qp.wedged) {
    // Injected tx black hole: the frame is tracked (so timeouts fire and the
    // retry budget eventually trips the QP into kError) but never reaches
    // the wire.
    ++wedged_tx_dropped_;
    return;
  }
  // Serialization is the single copy a transmitted payload pays; the frame
  // then rides as a shared view through the tap, the switch and the receiver.
  const axi::BufferView frame = BuildFrame(meta, payload);
  if (tap_) {
    tap_(frame, /*is_tx=*/true);
  }
  ++tx_frames_;
  payload_bytes_sent_ += payload.size();
  // Per-frame stack processing latency before the frame hits the CMAC.
  const uint32_t dst_ip = meta.dst_ip;
  engine_->ScheduleAfter(config_.stack_latency, [this, dst_ip, frame]() {
    network_->Transmit(port_id_, dst_ip, frame);
  });
}

void RoceStack::PostWrite(uint32_t qpn, uint64_t local_vaddr, uint64_t remote_vaddr,
                          uint64_t bytes, Completion done) {
  qp_guard_.Write();
  Qp& qp = qps_.at(qpn);
  if (!AdmitPost(qp, done)) {
    return;
  }
  const uint64_t n_frames = std::max<uint64_t>(1, (bytes + config_.mtu - 1) / config_.mtu);
  // Read the whole message out of virtual memory once; every MTU frame (and
  // its go-back-N window entry) is a zero-copy slice of this buffer.
  axi::BufferView message;
  message.resize(bytes);
  if (bytes > 0) {
    svm_->ReadVirtual(local_vaddr, message.data(), bytes);
  }
  uint64_t off = 0;
  for (uint64_t i = 0; i < n_frames; ++i) {
    const uint64_t n = std::min<uint64_t>(config_.mtu, bytes - off);
    FrameMeta m = BaseMeta(qp);
    m.psn = qp.send_psn++;
    if (n_frames == 1) {
      m.opcode = Opcode::kWriteOnly;
    } else if (i == 0) {
      m.opcode = Opcode::kWriteFirst;
    } else if (i + 1 == n_frames) {
      m.opcode = Opcode::kWriteLast;
    } else {
      m.opcode = Opcode::kWriteMiddle;
    }
    if (OpcodeHasReth(m.opcode)) {
      m.reth_vaddr = remote_vaddr;
      m.reth_len = static_cast<uint32_t>(bytes);
    }
    m.ack_req = OpcodeIsLastOrOnly(m.opcode);

    if (OpcodeIsLastOrOnly(m.opcode) && done) {
      qp.completions[m.psn] = std::move(done);
      done = nullptr;
    }
    TransmitFrame(qp, m, message.Slice(off, n), /*track_for_retransmit=*/true);
    off += n;
  }
}

void RoceStack::PostSend(uint32_t qpn, uint64_t local_vaddr, uint64_t bytes, Completion done) {
  qp_guard_.Write();
  Qp& qp = qps_.at(qpn);
  if (!AdmitPost(qp, done)) {
    return;
  }
  const uint64_t n_frames = std::max<uint64_t>(1, (bytes + config_.mtu - 1) / config_.mtu);
  // Single bulk read; per-MTU frames slice it (see PostWrite).
  axi::BufferView message;
  message.resize(bytes);
  if (bytes > 0) {
    svm_->ReadVirtual(local_vaddr, message.data(), bytes);
  }
  uint64_t off = 0;
  for (uint64_t i = 0; i < n_frames; ++i) {
    const uint64_t n = std::min<uint64_t>(config_.mtu, bytes - off);
    FrameMeta m = BaseMeta(qp);
    m.psn = qp.send_psn++;
    if (n_frames == 1) {
      m.opcode = Opcode::kSendOnly;
    } else if (i == 0) {
      m.opcode = Opcode::kSendFirst;
    } else if (i + 1 == n_frames) {
      m.opcode = Opcode::kSendLast;
    } else {
      m.opcode = Opcode::kSendMiddle;
    }
    m.ack_req = OpcodeIsLastOrOnly(m.opcode);

    if (OpcodeIsLastOrOnly(m.opcode) && done) {
      qp.completions[m.psn] = std::move(done);
      done = nullptr;
    }
    TransmitFrame(qp, m, message.Slice(off, n), /*track_for_retransmit=*/true);
    off += n;
  }
}

void RoceStack::PostRead(uint32_t qpn, uint64_t local_vaddr, uint64_t remote_vaddr,
                         uint64_t bytes, Completion done) {
  qp_guard_.Write();
  Qp& qp = qps_.at(qpn);
  if (!AdmitPost(qp, done)) {
    return;
  }
  const uint32_t n_resp =
      static_cast<uint32_t>(std::max<uint64_t>(1, (bytes + config_.mtu - 1) / config_.mtu));

  ReadCtx ctx;
  ctx.local_vaddr = local_vaddr;
  ctx.bytes = bytes;
  ctx.first_psn = qp.send_psn;
  ctx.last_psn = qp.send_psn + n_resp - 1;
  ctx.got.assign(n_resp, false);
  ctx.done = std::move(done);
  qp.reads.push_back(std::move(ctx));

  FrameMeta m = BaseMeta(qp);
  m.opcode = Opcode::kReadRequest;
  m.psn = qp.send_psn;
  m.reth_vaddr = remote_vaddr;
  m.reth_len = static_cast<uint32_t>(bytes);
  qp.send_psn += n_resp;  // responses consume PSN space (IB RC semantics)
  TransmitFrame(qp, m, {}, /*track_for_retransmit=*/true);
}

void RoceStack::OnRxFrame(axi::BufferView frame) {
  // Inbound frame processing mutates responder-side QP state as the network
  // actor; a same-epoch touch from another actor is a modeled race.
  sim::ActorScope actor(sim::kActorNet);
  qp_guard_.Write();
  if (tap_) {
    tap_(frame, /*is_tx=*/false);
  }
  ++rx_frames_;
  auto parsed = ParseFrame(frame);
  if (!parsed) {
    // Bad ICRC or truncated header — the frame was corrupted in flight.
    ++rx_malformed_;
    return;
  }
  const uint32_t qpn = parsed->meta.dest_qpn;
  if (qps_.find(qpn) == qps_.end()) {
    return;
  }
  // Per-frame RX processing latency. Re-resolve the QP at fire time: it may
  // have been destroyed (e.g., the shell reconfigured) while the frame was
  // in the pipeline.
  auto shared = std::make_shared<ParsedFrame>(std::move(*parsed));
  engine_->ScheduleAfter(config_.stack_latency, [this, qpn, shared]() {
    auto it = qps_.find(qpn);
    if (it == qps_.end()) {
      return;
    }
    Qp& qp = it->second;
    const Opcode op = shared->meta.opcode;
    if (op == Opcode::kAck) {
      HandleAck(qp, *shared);
    } else if (op == Opcode::kReadRequest) {
      HandleReadRequest(qp, *shared);
    } else if (OpcodeIsReadResponse(op)) {
      // Middle responses carry no AETH, so route by opcode, not by header.
      HandleReadResponse(qp, *shared);
    } else {
      HandleDataFrame(qp, *shared);
    }
  });
}

void RoceStack::HandleDataFrame(Qp& qp, const ParsedFrame& f) {
  if (f.meta.psn != qp.expected_psn) {
    // Out-of-order or duplicate under go-back-N: discard, re-ack last good.
    if (f.meta.psn < qp.expected_psn) {
      SendAck(qp, qp.expected_psn - 1);
    }
    return;
  }
  qp.expected_psn = f.meta.psn + 1;
  ++qp.frames_since_ack;

  const Opcode op = f.meta.opcode;
  const bool is_write = op == Opcode::kWriteFirst || op == Opcode::kWriteMiddle ||
                        op == Opcode::kWriteLast || op == Opcode::kWriteOnly;
  if (is_write) {
    if (OpcodeHasReth(op)) {
      qp.write_cursor_vaddr = f.meta.reth_vaddr;
      qp.write_msg_start = f.meta.reth_vaddr;
      qp.write_msg_bytes = 0;
    }
    const uint64_t commit_vaddr = qp.write_cursor_vaddr;
    qp.write_cursor_vaddr += f.payload.size();
    qp.write_msg_bytes += f.payload.size();
    if (offload_to_kernel_ != nullptr) {
      // On-path processing: the payload detours through the vFPGA; the
      // transformed packet commits when it emerges (PumpOffloadCommits).
      offload_commits_.push_back(OffloadCommit{qp.local_qpn, commit_vaddr,
                                               OpcodeIsLastOrOnly(op), qp.write_msg_start,
                                               qp.write_msg_bytes});
      axi::StreamPacket pkt;
      pkt.data = f.payload;
      pkt.last = OpcodeIsLastOrOnly(op);
      offload_to_kernel_->Push(std::move(pkt));
    } else {
      if (!f.payload.empty()) {
        svm_->WriteVirtual(commit_vaddr, f.payload.data(), f.payload.size());
      }
      if (OpcodeIsLastOrOnly(op)) {
        if (qp.write_arrival_handler) {
          qp.write_arrival_handler(qp.write_msg_start, qp.write_msg_bytes);
        }
      }
    }
  } else {
    // SEND path.
    qp.recv_accum.insert(qp.recv_accum.end(), f.payload.begin(), f.payload.end());
    if (OpcodeIsLastOrOnly(op)) {
      if (qp.recv_handler) {
        qp.recv_handler(std::move(qp.recv_accum));
      }
      qp.recv_accum.clear();
    }
  }

  if (OpcodeIsLastOrOnly(op) || f.meta.ack_req ||
      qp.frames_since_ack >= config_.ack_interval) {
    SendAck(qp, f.meta.psn);
  }
}

void RoceStack::SendAck(Qp& qp, uint32_t psn) {
  qp.frames_since_ack = 0;
  FrameMeta m = BaseMeta(qp);
  m.opcode = Opcode::kAck;
  m.psn = psn;
  m.aeth_syndrome = 0;  // ACK
  m.aeth_msn = psn & 0x00FFFFFF;
  TransmitFrame(qp, m, {}, /*track_for_retransmit=*/false);
}

void RoceStack::NoteProgress(Qp& qp) {
  qp.consecutive_timeouts = 0;
  qp.cur_timeout = config_.ack_timeout;
}

void RoceStack::HandleAck(Qp& qp, const ParsedFrame& f) {
  NoteProgress(qp);
  const uint32_t acked = f.meta.psn;
  // Cumulative: drop every tracked frame with psn <= acked.
  qp.unacked.erase(qp.unacked.begin(), qp.unacked.upper_bound(acked));
  // Fire message completions.
  auto end = qp.completions.upper_bound(acked);
  for (auto it = qp.completions.begin(); it != end; ++it) {
    if (it->second) {
      it->second(true);
    }
  }
  qp.completions.erase(qp.completions.begin(), end);
  ++qp.timer_generation;  // cancel pending timer
  if (!qp.unacked.empty()) {
    ArmRetransmitTimer(qp.local_qpn);
  }
}

void RoceStack::HandleReadRequest(Qp& qp, const ParsedFrame& f) {
  // Idempotent: duplicates re-serve the same data at the same PSNs.
  const uint64_t bytes = f.meta.reth_len;
  const uint64_t n_frames = std::max<uint64_t>(1, (bytes + config_.mtu - 1) / config_.mtu);
  // One bulk read of the requested range; each response frame slices it.
  axi::BufferView message;
  message.resize(bytes);
  if (bytes > 0) {
    svm_->ReadVirtual(f.meta.reth_vaddr, message.data(), bytes);
  }
  uint64_t off = 0;
  for (uint64_t i = 0; i < n_frames; ++i) {
    const uint64_t n = std::min<uint64_t>(config_.mtu, bytes - off);
    FrameMeta m = BaseMeta(qp);
    m.psn = f.meta.psn + static_cast<uint32_t>(i);
    if (n_frames == 1) {
      m.opcode = Opcode::kReadResponseOnly;
    } else if (i == 0) {
      m.opcode = Opcode::kReadResponseFirst;
    } else if (i + 1 == n_frames) {
      m.opcode = Opcode::kReadResponseLast;
    } else {
      m.opcode = Opcode::kReadResponseMiddle;
    }
    m.aeth_msn = m.psn & 0x00FFFFFF;
    TransmitFrame(qp, m, message.Slice(off, n), /*track_for_retransmit=*/false);
    off += n;
  }
}

void RoceStack::HandleReadResponse(Qp& qp, const ParsedFrame& f) {
  NoteProgress(qp);
  for (auto it = qp.reads.begin(); it != qp.reads.end(); ++it) {
    ReadCtx& ctx = *it;
    if (f.meta.psn < ctx.first_psn || f.meta.psn > ctx.last_psn) {
      continue;
    }
    const uint64_t index = f.meta.psn - ctx.first_psn;
    const uint64_t off = index * config_.mtu;
    if (!f.payload.empty() && !ctx.got[index]) {
      ctx.got[index] = true;
      svm_->WriteVirtual(ctx.local_vaddr + off, f.payload.data(), f.payload.size());
      ctx.received += f.payload.size();
    }
    if (ctx.received >= ctx.bytes) {
      // Read satisfied: retire the request frame and complete.
      qp.unacked.erase(ctx.first_psn);
      Completion done = std::move(ctx.done);
      qp.reads.erase(it);
      ++qp.timer_generation;
      if (!qp.unacked.empty()) {
        ArmRetransmitTimer(qp.local_qpn);
      }
      if (done) {
        done(true);
      }
    }
    return;
  }
}

void RoceStack::ArmRetransmitTimer(uint32_t qpn) {
  Qp& qp = qps_.at(qpn);
  if (qp.cur_timeout == 0) {
    qp.cur_timeout = config_.ack_timeout;
  }
  const uint64_t generation = ++qp.timer_generation;
  engine_->ScheduleAfter(qp.cur_timeout, [this, qpn, generation]() {
    auto it = qps_.find(qpn);
    if (it == qps_.end()) {
      return;
    }
    Qp& q = it->second;
    qp_guard_.Write();
    if (q.timer_generation != generation || q.unacked.empty()) {
      return;
    }
    ++timeouts_;
    if (++q.consecutive_timeouts > config_.max_retries) {
      // Retry budget exhausted: the peer is unreachable (dead node, storm of
      // losses). Error out instead of retrying forever.
      FailQp(q);
      return;
    }
    // Exponential backoff, capped.
    const sim::TimePs next = std::min<sim::TimePs>(q.cur_timeout * 2, config_.max_ack_timeout);
    if (next > q.cur_timeout) {
      q.cur_timeout = next;
      ++backoff_events_;
    }
    RetransmitUnacked(q);
    ArmRetransmitTimer(qpn);
  });
}

void RoceStack::FailQp(Qp& qp) {
  ++retries_exhausted_;
  // SQ drain + transition to the error state: all in-flight WRs complete
  // with ok=false, and subsequent posts bounce until ResetQp + Connect.
  qp.state = QpState::kError;
  qp.unacked.clear();
  NoteProgress(qp);
  ++qp.timer_generation;  // cancel any pending timer
  auto completions = std::move(qp.completions);
  qp.completions.clear();
  auto reads = std::move(qp.reads);
  qp.reads.clear();
  for (auto& [psn, cb] : completions) {
    if (cb) {
      ++error_completions_;
      cb(false);
    }
  }
  for (auto& r : reads) {
    if (r.done) {
      ++error_completions_;
      r.done(false);
    }
  }
}

void RoceStack::RetransmitUnacked(Qp& qp) {
  // Go-back-N: resend every unacked frame in PSN order.
  std::vector<PendingFrame> frames;
  frames.reserve(qp.unacked.size());
  for (auto& [psn, f] : qp.unacked) {
    frames.push_back(f);
  }
  for (auto& f : frames) {
    ++retransmitted_frames_;
    TransmitFrame(qp, f.meta, f.payload, /*track_for_retransmit=*/false);
  }
}

void RoceStack::SetInboundOffload(axi::Stream* to_kernel, axi::Stream* from_kernel) {
  offload_to_kernel_ = to_kernel;
  offload_from_kernel_ = from_kernel;
  if (from_kernel != nullptr) {
    from_kernel->set_on_data([this]() { PumpOffloadCommits(); });
  }
}

void RoceStack::PumpOffloadCommits() {
  while (offload_from_kernel_ != nullptr && !offload_from_kernel_->Empty() &&
         !offload_commits_.empty()) {
    auto pkt = offload_from_kernel_->Pop();
    OffloadCommit commit = offload_commits_.front();
    offload_commits_.pop_front();
    if (!pkt->data.empty()) {
      svm_->WriteVirtual(commit.vaddr, pkt->data.data(), pkt->data.size());
    }
    if (commit.msg_last) {
      auto it = qps_.find(commit.qpn);
      if (it != qps_.end() && it->second.write_arrival_handler) {
        it->second.write_arrival_handler(commit.msg_start, commit.msg_bytes);
      }
    }
  }
}

void RoceStack::SetRecvHandler(uint32_t qpn, RecvHandler handler) {
  qps_.at(qpn).recv_handler = std::move(handler);
}

void RoceStack::SetWriteArrivalHandler(uint32_t qpn, WriteArrivalHandler handler) {
  qps_.at(qpn).write_arrival_handler = std::move(handler);
}

}  // namespace net
}  // namespace coyote
