// Deterministic race detector for shared simulator state.
//
// The simulator's engines are single-threaded, so classic data races cannot
// happen inside one shard — but *logical* races can: two actors (a cThread
// driver call, the engine's event callback, the DMA completion path, the RoCE
// rx path) touching the same shared structure within one event epoch, with the
// outcome depending on reentrancy order rather than simulated time. Those bugs
// are seed-dependent heisenbugs under chaos testing. The AccessGuard layer
// turns them into hard, reproducible failures:
//
//   - sim::Engine advances a per-thread *epoch* once per executed event.
//   - Call sites annotate who is running via ActorScope (RAII).
//   - Shared structures (TLB, page tables, credit counters, RoCE QP state,
//     scheduler queues) hold an AccessGuard and record Read()/Write() touches.
//   - A same-epoch write/write or read/write pair by *different* actors with
//     no declared happens-before edge is reported as an AccessConflict.
//
// The sharded PDES engine (src/sim/sharded_engine.h) adds a second axis:
// *shard ownership*. Every shard runs its own engine on its own worker
// thread; state owned by shard A must never be touched from shard B's
// callbacks in the same run — cross-shard interaction is only legal through
// the engine's mailboxes. Guards can be bound to their owning shard with
// BindShard(); a touch from a different bound shard context is reported as a
// ShardViolation *before* the guard's touch state is mutated (the mutation
// would itself be the data race). Violations are recorded in per-shard
// append-ordered slots so two identical runs report identical violation
// sequences regardless of thread scheduling.
//
// The layer is runtime-toggled (a single predictable branch when disabled).
// Builds with COYOTE_ACCESS_GUARDS defined (COYOTE_SANITIZE=ON, COYOTE_TSAN=ON
// or Debug, see the top-level CMakeLists) arm the global ledger automatically
// when the first Engine is constructed, so every chaos/determinism test runs
// guarded.

#ifndef SRC_SIM_ACCESS_GUARD_H_
#define SRC_SIM_ACCESS_GUARD_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace coyote {
namespace sim {

using ActorId = uint32_t;

// Well-known actor identities. Tests may mint their own from kActorUserBase.
inline constexpr ActorId kActorHost = 0;       // driver/cThread API, default
inline constexpr ActorId kActorEngine = 1;     // generic engine callback
inline constexpr ActorId kActorDma = 2;        // data mover / XDMA paths
inline constexpr ActorId kActorNet = 3;        // RoCE/TCP rx processing
inline constexpr ActorId kActorScheduler = 4;  // kernel scheduler dispatch
inline constexpr ActorId kActorSupervisor = 5;  // watchdog / recovery engine
inline constexpr ActorId kActorOrchestrator = 6;  // fleet migration / evacuation
inline constexpr ActorId kActorUserBase = 16;

// Shard identity for the sharded PDES engine. kNoShard means "not executing
// on behalf of any shard" (host setup/teardown code), which is always allowed
// to touch bound guards: placement happens before the first window and
// observation after the last, outside any shard's execution.
using ShardId = uint32_t;
inline constexpr ShardId kNoShard = 0xffffffffu;

struct AccessConflict {
  std::string resource;
  uint64_t epoch = 0;
  ActorId first_actor = 0;
  ActorId second_actor = 0;
  bool write_write = false;  // false: read/write
  std::string ToString() const;
};

// A touch of shard-owned state from a different shard's execution context.
// Always a bug: cross-shard interaction must go through the sharded engine's
// mailboxes (or be host-side setup, which runs outside any shard context).
struct ShardViolation {
  std::string resource;
  uint64_t epoch = 0;
  ShardId owner_shard = kNoShard;
  ShardId touching_shard = kNoShard;
  ActorId actor = 0;
  bool write = false;
  std::string ToString() const;
};

// Process-wide conflict ledger. The epoch counter and the current actor/shard
// are thread-local (each shard worker is its own execution lane); declared
// happens-before edges and the conflict/violation logs live on the ledger.
// All containers are append-ordered, and sharded contexts append into
// per-shard slots, so two identical runs report identical sequences
// regardless of thread scheduling.
class AccessLedger {
 public:
  static AccessLedger& Global();

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Clears the calling thread's epoch/actor/shard state plus all edges,
  // conflicts and shard violations; keeps the enabled flag and the configured
  // shard-slot count. Worker threads of a ShardedEngine start with fresh
  // thread-local state, so a main-thread Reset() between runs is sufficient.
  void Reset();

  void AdvanceEpoch() { ++tls_.epoch; }
  uint64_t epoch() const { return tls_.epoch; }

  ActorId current_actor() const { return tls_.actor; }
  ShardId current_shard() const { return tls_.shard; }

  // --- Shard plumbing (sharded PDES engine) ---------------------------------
  // Sizes the per-shard violation/conflict slots. Called by ShardedEngine
  // before its workers start; grows monotonically, never shrinks, so several
  // engines of different widths can coexist in one process.
  void ConfigureShards(uint32_t num_shards);
  // Binds the calling thread to `shard` for its remaining lifetime: sets the
  // thread-local shard id, routes its reports into the shard's slot, and
  // offsets its epoch counter into a per-shard band so same-numbered epochs
  // on different shards never alias inside one guard's touch history.
  void RegisterShardThread(ShardId shard);

  // Declares that same-epoch accesses by `a` and `b` are deliberately ordered
  // (symmetric). Guards skip conflict reports for declared pairs.
  void DeclareOrdered(ActorId a, ActorId b);
  bool Ordered(ActorId a, ActorId b) const;

  void Report(AccessConflict conflict);
  void ReportShardViolation(ShardViolation violation);
  // Conflicts recorded outside any shard context (the single-threaded path —
  // unchanged pre-sharding behavior).
  const std::vector<AccessConflict>& conflicts() const { return conflicts_; }
  // Deterministic merged views: host slot first, then shard 0..N-1, each in
  // append order.
  std::vector<AccessConflict> AllConflicts() const;
  std::vector<ShardViolation> shard_violations() const;

  // When set, Report()/ReportShardViolation() print to stderr and abort. Off
  // by default so tests can assert on the logs.
  void set_abort_on_conflict(bool abort_on_conflict) { abort_on_conflict_ = abort_on_conflict; }

 private:
  friend class ActorScope;
  friend class ShardScope;

  struct Tls {
    uint64_t epoch = 0;
    ActorId actor = kActorHost;
    ShardId shard = kNoShard;
    uint32_t slot = 0;  // 0 = host/unsharded; shard s reports into slot s + 1
  };
  static thread_local Tls tls_;

  // Sets the calling thread's shard id and report slot (no epoch banding —
  // ShardScope must not perturb the single-threaded epoch sequence).
  void BindThread(ShardId shard);

  bool enabled_ = false;
  bool abort_on_conflict_ = false;
  std::vector<std::pair<ActorId, ActorId>> ordered_;
  std::vector<AccessConflict> conflicts_;
  // Slot s + 1 is written only by the thread bound to shard s (and slot 0
  // only outside shard contexts), so appends never race; the vectors are
  // pre-sized by ConfigureShards before workers start.
  std::vector<std::vector<AccessConflict>> shard_conflicts_;
  std::vector<std::vector<ShardViolation>> shard_violations_;
};

// RAII: sets the calling thread's current actor for the enclosing dynamic
// scope. Nesting is expected (engine callback -> rx path -> user completion).
class ActorScope {
 public:
  explicit ActorScope(ActorId actor) : saved_(AccessLedger::tls_.actor) {
    AccessLedger::tls_.actor = actor;
  }
  ~ActorScope() { AccessLedger::tls_.actor = saved_; }

  ActorScope(const ActorScope&) = delete;
  ActorScope& operator=(const ActorScope&) = delete;

 private:
  ActorId saved_;
};

// RAII: executes the enclosing scope as `shard`. The sharded engine's
// sequential (reference) mode uses this to run every shard's window on one
// thread with the same shard attribution as the threaded mode; tests use it
// to simulate cross-shard touches without spinning up workers.
class ShardScope {
 public:
  explicit ShardScope(ShardId shard)
      : saved_shard_(AccessLedger::tls_.shard), saved_slot_(AccessLedger::tls_.slot) {
    AccessLedger::Global().BindThread(shard);
  }
  ~ShardScope() {
    AccessLedger::tls_.shard = saved_shard_;
    AccessLedger::tls_.slot = saved_slot_;
  }

  ShardScope(const ShardScope&) = delete;
  ShardScope& operator=(const ShardScope&) = delete;

 private:
  ShardId saved_shard_;
  uint32_t saved_slot_;
};

// Per-structure guard. Records (actor, kind) touches for the current epoch
// and reports a conflict when a new touch collides with an earlier same-epoch
// touch by a different, unordered actor where at least one side is a write.
// When bound to a shard, a touch from a different shard context is reported
// as a ShardViolation instead (and the touch history is left untouched).
class AccessGuard {
 public:
  explicit AccessGuard(std::string name) : name_(std::move(name)) {}

  // Declares the owning shard. kNoShard (the default) disables the shard
  // check. Rebinding is allowed (placement can change between runs).
  void BindShard(ShardId shard) { owner_shard_ = shard; }
  ShardId owner_shard() const { return owner_shard_; }

  void Read() const {
    AccessLedger& ledger = AccessLedger::Global();
    if (ledger.enabled()) {
      Record(ledger, /*is_write=*/false);
    }
  }

  void Write() const {
    AccessLedger& ledger = AccessLedger::Global();
    if (ledger.enabled()) {
      Record(ledger, /*is_write=*/true);
    }
  }

  // Shard-ownership-only probe: reports a cross-shard violation but records
  // no actor touch. For structures whose same-shard reentrancy is ordered by
  // design (e.g. the network switch's fan-out counters, which every attached
  // stack bumps on the deterministic single-engine path) where only a
  // foreign-shard touch is a bug.
  void CheckShardOnly(bool is_write) const;

  const std::string& name() const { return name_; }

 private:
  struct Touch {
    ActorId actor;
    bool write;
  };

  void Record(AccessLedger& ledger, bool is_write) const;
  // Returns true when the touch comes from a foreign shard (and reports it).
  bool ShardCheck(AccessLedger& ledger, bool is_write) const;

  std::string name_;
  ShardId owner_shard_ = kNoShard;
  // Mutable: guards live inside logically-const containers and recording a
  // read must not force the owning structure's API non-const.
  mutable uint64_t epoch_ = ~0ull;
  mutable std::vector<Touch> touches_;
};

}  // namespace sim
}  // namespace coyote

#endif  // SRC_SIM_ACCESS_GUARD_H_
