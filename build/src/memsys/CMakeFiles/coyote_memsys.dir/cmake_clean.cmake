file(REMOVE_RECURSE
  "CMakeFiles/coyote_memsys.dir/card_memory.cc.o"
  "CMakeFiles/coyote_memsys.dir/card_memory.cc.o.d"
  "libcoyote_memsys.a"
  "libcoyote_memsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coyote_memsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
