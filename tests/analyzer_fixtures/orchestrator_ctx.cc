// Fixture: orchestrator-style control plane. Heartbeat/checkpoint handlers
// run in callback context (armed via SchedulePeriodic/Post); the control
// plane's own state maps register sim::AccessGuard members (clean), a
// bolt-on ledger does not (finding), and a rebalance helper reaches through
// .shard() instead of the mailbox (finding) while the Post path stays clean.
#include <cstdint>
#include <map>
#include <vector>

namespace fx {

namespace sim {
class AccessGuard {
 public:
  void Write();
};
}  // namespace sim

class Cluster {
 public:
  void* shard(int idx);
  void Post(int idx, long when, void (*fn)());
};

class Engine {
 public:
  void SchedulePeriodic(long period, void (*fn)());
  void Post(long when, void (*fn)());
};

// Orchestrator-owned state maps, each covered by a registered guard: the
// inventory rule sees the AccessGuard member and keeps the class clean.
class ControlPlane {
 public:
  void OnHeartbeat(int node, long at) {
    guard_.Write();
    health_[node] = at;
  }
  void OnCheckpoint(int tenant, int bytes) {
    guard_.Write();
    ckpt_store_[tenant] = bytes;
  }

 private:
  std::map<int, long> health_;
  std::map<int, int> ckpt_store_;
  sim::AccessGuard guard_;
};

// The bolt-on ledger mutates from the same callbacks but registers no
// guard: flagged.
class EvacLedger {
 public:
  void Record(int tenant) { pending_.push_back(tenant); }

 private:
  std::vector<int> pending_;
};

class Rebalancer {
 public:
  void Drain(int node) {
    cluster_->shard(node);
  }

  void Forward(int node, long when) {
    cluster_->Post(node, when, nullptr);  // the sanctioned mailbox path
  }

 private:
  Cluster* cluster_ = nullptr;
};

void ArmControlPlane(Engine& engine, ControlPlane& orch, EvacLedger& ledger, Rebalancer& rb) {
  engine.SchedulePeriodic(50, [&] {
    orch.OnHeartbeat(0, 50);
    ledger.Record(7);
  });
  engine.Post(100, [&] {
    orch.OnCheckpoint(1, 4096);
    rb.Drain(2);
    rb.Forward(2, 140);
  });
}

}  // namespace fx
