#include "src/services/pointer_chase.h"

#include <cstring>

#include "src/mmu/types.h"

namespace coyote {
namespace services {

void PointerChaseKernel::Attach(vfpga::Vfpga* region) {
  region_ = region;
  running_ = false;
  visited_ = 0;
  sum_ = 0;
  region->csr().SetWriteHook(kChaseCsrStart, [this](uint32_t, uint64_t) { Start(); });
  region->host_in(0).set_on_data([this]() { OnData(); });
}

void PointerChaseKernel::Detach() {
  if (region_ != nullptr) {
    region_->host_in(0).set_on_data(nullptr);
    region_ = nullptr;
  }
}

void PointerChaseKernel::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  visited_ = 0;
  sum_ = 0;
  max_nodes_ = region_->csr().Peek(kChaseCsrMaxNodes);
  if (max_nodes_ == 0) {
    max_nodes_ = 1u << 20;
  }
  region_->csr().Poke(kChaseCsrDone, 0);
  region_->csr().Poke(kChaseCsrVisited, 0);
  region_->csr().Poke(kChaseCsrSum, 0);
  const uint64_t head = region_->csr().Peek(kChaseCsrHead);
  if (head == 0) {
    running_ = false;
    region_->csr().Poke(kChaseCsrDone, 1);
    region_->RaiseUserInterrupt(0);
    return;
  }
  FetchNode(head);
}

void PointerChaseKernel::FetchNode(uint64_t vaddr) {
  // Hardware-issued read descriptor: no host involvement per hop.
  vfpga::SendQueueEntry entry;
  entry.is_write = false;
  entry.vaddr = vaddr;
  entry.bytes = kNodeBytes;
  entry.stream = 0;
  entry.target = mmu::MemKind::kHost;
  region_->PostSend(entry);
}

void PointerChaseKernel::OnData() {
  auto& in = region_->host_in(0);
  while (!in.Empty()) {
    auto pkt = in.Pop();
    if (!running_ || pkt->data.size() < kNodeBytes) {
      continue;
    }
    uint64_t next = 0;
    int64_t value = 0;
    std::memcpy(&next, pkt->data.data(), 8);
    std::memcpy(&value, pkt->data.data() + 8, 8);
    ++visited_;
    sum_ += value;
    region_->csr().Poke(kChaseCsrVisited, visited_);
    region_->csr().Poke(kChaseCsrSum, static_cast<uint64_t>(sum_));

    if (next != 0 && visited_ < max_nodes_) {
      FetchNode(next);
    } else {
      running_ = false;
      region_->csr().Poke(kChaseCsrDone, 1);
      region_->RaiseUserInterrupt(static_cast<uint64_t>(sum_));
    }
  }
}

}  // namespace services
}  // namespace coyote
