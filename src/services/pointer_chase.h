// Pointer-chasing kernel (paper §7.1, read/write send queues).
//
// The motivating case for hardware-issued DMA: traversing a pointer-linked
// structure in host memory. A host-centric design pays an invoke/interrupt
// round trip per hop; with Coyote v2's send queues the vFPGA issues each
// dependent read itself, so the CPU is entirely out of the loop.
//
// Node layout in (virtual) memory, 16 bytes:
//   [0..7]  next-node virtual address (0 terminates)
//   [8..15] int64 payload value
//
// CSR map:
//   0 (W)  head virtual address
//   1 (W)  max nodes to follow (runaway/cycle guard)
//   2 (W)  doorbell: start traversal
//   8 (R)  nodes visited
//   9 (R)  running sum of payload values
//  10 (R)  done flag (1 when traversal finished)
//
// On completion the kernel also raises a user interrupt carrying the sum.

#ifndef SRC_SERVICES_POINTER_CHASE_H_
#define SRC_SERVICES_POINTER_CHASE_H_

#include <cstdint>

#include "src/fabric/resources.h"
#include "src/vfpga/kernel.h"
#include "src/vfpga/vfpga.h"

namespace coyote {
namespace services {

inline constexpr uint32_t kChaseCsrHead = 0;
inline constexpr uint32_t kChaseCsrMaxNodes = 1;
inline constexpr uint32_t kChaseCsrStart = 2;
inline constexpr uint32_t kChaseCsrVisited = 8;
inline constexpr uint32_t kChaseCsrSum = 9;
inline constexpr uint32_t kChaseCsrDone = 10;

class PointerChaseKernel : public vfpga::HwKernel {
 public:
  static constexpr uint64_t kNodeBytes = 16;

  std::string_view name() const override { return "pointer_chase"; }
  fabric::ResourceVector resources() const override {
    // Small control FSM + one outstanding descriptor.
    return fabric::ResourceVector{2'400, 4'100, 6, 0, 0};
  }

  void Attach(vfpga::Vfpga* region) override;
  void Detach() override;

  uint64_t nodes_visited() const { return visited_; }
  int64_t sum() const { return sum_; }

 private:
  void Start();
  void FetchNode(uint64_t vaddr);
  void OnData();

  vfpga::Vfpga* region_ = nullptr;
  bool running_ = false;
  uint64_t max_nodes_ = 0;
  uint64_t visited_ = 0;
  int64_t sum_ = 0;
};

}  // namespace services
}  // namespace coyote

#endif  // SRC_SERVICES_POINTER_CHASE_H_
