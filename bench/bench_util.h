// Shared helpers for the benchmark harness.
//
// Each bench binary regenerates one table or figure of the paper: it builds
// the workload, sweeps the paper's parameters on the simulated substrate and
// prints the same rows/series the paper reports, alongside the paper's
// values where the paper states them. Absolute numbers come from calibrated
// models (see DESIGN.md); the claims under test are the *shapes*: orderings,
// scaling trends, crossovers and factors.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <chrono>  // wall-clock for perf benches only; lint: nondet-ok
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>

namespace coyote {
namespace bench {

inline void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("\n==============================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================================\n");
}

inline void PrintRule() {
  std::printf("------------------------------------------------------------------------------\n");
}

inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void Note(const std::string& text) { std::printf("  %s\n", text.c_str()); }

// --- Throughput reporting (perf benches) -------------------------------------
// Simulation code never reads the wall clock; perf benches do, to report how
// fast the simulator itself runs. Anything derived from WallTimer is
// nondeterministic by nature, so JSON emitters must write such values under
// keys prefixed "wall_" — determinism checks diff the output with those lines
// filtered out.

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}  // lint: nondet-ok
  void Reset() { start_ = std::chrono::steady_clock::now(); }  // lint: nondet-ok
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)  // lint: nondet-ok
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;  // lint: nondet-ok
};

inline double EventsPerSec(uint64_t events, double seconds) {
  return seconds > 0.0 ? static_cast<double>(events) / seconds : 0.0;
}

inline void RowEventsPerSec(const char* label, uint64_t events, double seconds) {
  Row("  %-32s %12llu events  %8.4f s  %9.2f M events/s", label,
      static_cast<unsigned long long>(events), seconds, EventsPerSec(events, seconds) / 1e6);
}

}  // namespace bench
}  // namespace coyote

#endif  // BENCH_BENCH_UTIL_H_
