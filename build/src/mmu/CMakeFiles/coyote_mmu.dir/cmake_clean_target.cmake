file(REMOVE_RECURSE
  "libcoyote_mmu.a"
)
