
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/flow.cc" "src/synth/CMakeFiles/coyote_synth.dir/flow.cc.o" "gcc" "src/synth/CMakeFiles/coyote_synth.dir/flow.cc.o.d"
  "/root/repo/src/synth/module_library.cc" "src/synth/CMakeFiles/coyote_synth.dir/module_library.cc.o" "gcc" "src/synth/CMakeFiles/coyote_synth.dir/module_library.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fabric/CMakeFiles/coyote_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/coyote_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
