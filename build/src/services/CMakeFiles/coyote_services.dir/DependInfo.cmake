
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/services/aes.cc" "src/services/CMakeFiles/coyote_services.dir/aes.cc.o" "gcc" "src/services/CMakeFiles/coyote_services.dir/aes.cc.o.d"
  "/root/repo/src/services/aes_kernels.cc" "src/services/CMakeFiles/coyote_services.dir/aes_kernels.cc.o" "gcc" "src/services/CMakeFiles/coyote_services.dir/aes_kernels.cc.o.d"
  "/root/repo/src/services/compression.cc" "src/services/CMakeFiles/coyote_services.dir/compression.cc.o" "gcc" "src/services/CMakeFiles/coyote_services.dir/compression.cc.o.d"
  "/root/repo/src/services/db_scan.cc" "src/services/CMakeFiles/coyote_services.dir/db_scan.cc.o" "gcc" "src/services/CMakeFiles/coyote_services.dir/db_scan.cc.o.d"
  "/root/repo/src/services/hll.cc" "src/services/CMakeFiles/coyote_services.dir/hll.cc.o" "gcc" "src/services/CMakeFiles/coyote_services.dir/hll.cc.o.d"
  "/root/repo/src/services/nn.cc" "src/services/CMakeFiles/coyote_services.dir/nn.cc.o" "gcc" "src/services/CMakeFiles/coyote_services.dir/nn.cc.o.d"
  "/root/repo/src/services/pointer_chase.cc" "src/services/CMakeFiles/coyote_services.dir/pointer_chase.cc.o" "gcc" "src/services/CMakeFiles/coyote_services.dir/pointer_chase.cc.o.d"
  "/root/repo/src/services/stream_kernel.cc" "src/services/CMakeFiles/coyote_services.dir/stream_kernel.cc.o" "gcc" "src/services/CMakeFiles/coyote_services.dir/stream_kernel.cc.o.d"
  "/root/repo/src/services/vector_kernels.cc" "src/services/CMakeFiles/coyote_services.dir/vector_kernels.cc.o" "gcc" "src/services/CMakeFiles/coyote_services.dir/vector_kernels.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/coyote_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vfpga/CMakeFiles/coyote_vfpga.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/coyote_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/coyote_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/memsys/CMakeFiles/coyote_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/coyote_fabric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
