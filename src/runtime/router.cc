#include "src/runtime/router.h"

#include <algorithm>
#include <utility>

#include "src/net/rpc.h"

namespace coyote {
namespace runtime {

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

Router::Router(sim::Engine* engine, const Config& config)
    : engine_(engine), config_(config) {
  nodes_.resize(config_.num_nodes);
  tokens_ = config_.bucket_burst;
}

void Router::SetNodeResident(uint32_t node, std::vector<std::string> region_kernels) {
  nodes_.at(node).region_kernel = std::move(region_kernels);
}

const char* Router::StatusKey(OpStatus status) {
  switch (status) {
    case OpStatus::kOk:
      return "ok";
    case OpStatus::kError:
      return "error";
    case OpStatus::kDeadlineExceeded:
      return "deadline";
    case OpStatus::kAborted:
      return "aborted";
    case OpStatus::kShed:
      return "shed";
    default:
      return "pending";
  }
}

serving::ServingCompletion Router::LocalCompletion(const serving::ServingRequest& req,
                                                   OpStatus status) const {
  serving::ServingCompletion c;
  c.id = req.id;
  c.tenant = req.tenant;
  c.status = status;
  c.node = config_.num_nodes;  // the router's own logical id
  c.region = -1;
  c.submitted_at = req.submitted_at;
  c.completed_at = engine_->Now();
  return c;
}

void Router::Complete(const serving::ServingCompletion& c) {
  ++completions_;
  counters_.Increment(std::string("router.done.") + StatusKey(c.status));
  if (c.status == OpStatus::kOk) {
    latency_us_.Add(static_cast<double>(c.completed_at - c.submitted_at) * 1e-6);
  }
  // Fold the completion into the determinism witness, in delivery order.
  auto mix = [this](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      fp_ ^= (v >> (8 * i)) & 0xff;
      fp_ *= serving::kFnvPrime;
    }
  };
  mix(c.id);
  mix(c.tenant);
  mix(static_cast<uint64_t>(c.status));
  mix((static_cast<uint64_t>(c.node) << 32) ^ static_cast<uint32_t>(c.region));
  mix(c.completed_at);
  mix(c.response_hash);
  if (observer_) {
    observer_(c);
  }
}

void Router::RefillBucket() {
  if (config_.admit_period == 0) {
    return;
  }
  const sim::TimePs now = engine_->Now();
  const uint64_t gained = (now - bucket_refill_at_) / config_.admit_period;
  if (gained > 0) {
    tokens_ = std::min<uint64_t>(config_.bucket_burst, tokens_ + gained);
    bucket_refill_at_ += gained * config_.admit_period;
  }
}

void Router::Submit(serving::ServingRequest req) {
  guard_.Write();
  req.id = ++last_id_;
  req.submitted_at = engine_->Now();
  counters_.Increment("router.offered");
  RefillBucket();
  if (config_.admit_period > 0) {
    if (tokens_ == 0) {
      counters_.Increment("router.shed.bucket");
      Complete(LocalCompletion(req, OpStatus::kShed));
      return;
    }
    --tokens_;
  }
  auto& q = tenant_queues_[req.tenant];
  if (q.size() >= config_.tenant_queue_cap) {
    counters_.Increment("router.shed.queue_full");
    Complete(LocalCompletion(req, OpStatus::kShed));
    return;
  }
  q.push_back(std::move(req));
  ++total_queued_;
  depth_hist_.Add(total_queued_);
  KickDispatch();
}

void Router::KickDispatch() {
  if (dispatch_pending_) {
    return;
  }
  dispatch_pending_ = true;
  // Deferred one event, like the node schedulers: a burst submitted at one
  // timestamp is dispatched together, seeing the full queue state.
  engine_->ScheduleAfter(0, [this]() {
    dispatch_pending_ = false;
    DispatchLoop();
  });
}

int32_t Router::RouteOf(const serving::ServingRequest& req) const {
  int32_t best = kBackpressure;
  uint64_t best_load = 0;
  bool any_resident = false;
  for (uint32_t n = 0; n < nodes_.size(); ++n) {
    const NodeView& v = nodes_[n];
    if (!v.alive || RegionHintOn(n, req.kernel) < 0) {
      continue;
    }
    any_resident = true;
    const uint64_t load = v.outstanding + v.open_batch.size();
    if (load >= config_.node_window) {
      continue;
    }
    if (best < 0 || load < best_load) {
      best = static_cast<int32_t>(n);
      best_load = load;
    }
  }
  return best >= 0 ? best : (any_resident ? kBackpressure : kNoResident);
}

int32_t Router::RegionHintOn(uint32_t node, const std::string& kernel) const {
  const NodeView& v = nodes_[node];
  for (uint32_t r = 0; r < v.region_kernel.size(); ++r) {
    if (v.region_kernel[r] == kernel) {
      return static_cast<int32_t>(r);
    }
  }
  return -1;
}

void Router::DispatchLoop() {
  guard_.Write();
  bool progress = true;
  while (progress && total_queued_ > 0) {
    progress = false;
    // One round: each tenant with queued work gets at most one dispatch,
    // in cyclic tenant-id order starting just above the cursor.
    std::vector<uint32_t> order;
    order.reserve(tenant_queues_.size());
    for (auto it = tenant_queues_.upper_bound(rr_cursor_); it != tenant_queues_.end(); ++it) {
      if (!it->second.empty()) {
        order.push_back(it->first);
      }
    }
    for (auto it = tenant_queues_.begin(); it != tenant_queues_.end() && it->first <= rr_cursor_; ++it) {
      if (!it->second.empty()) {
        order.push_back(it->first);
      }
    }
    for (const uint32_t tenant : order) {
      auto& q = tenant_queues_[tenant];
      if (q.empty()) {
        continue;
      }
      serving::ServingRequest& head = q.front();
      if (head.deadline > 0 && engine_->Now() > head.deadline) {
        counters_.Increment("router.expired");
        Complete(LocalCompletion(head, OpStatus::kDeadlineExceeded));
        q.pop_front();
        --total_queued_;
        rr_cursor_ = tenant;
        progress = true;
        continue;
      }
      const int32_t node = RouteOf(head);
      if (node == kNoResident) {
        counters_.Increment("router.shed.no_kernel");
        Complete(LocalCompletion(head, OpStatus::kShed));
        q.pop_front();
        --total_queued_;
        rr_cursor_ = tenant;
        progress = true;
        continue;
      }
      if (node == kBackpressure) {
        continue;  // every candidate window is full; a completion will kick us
      }
      head.region_hint = RegionHintOn(static_cast<uint32_t>(node), head.kernel);
      serving::ServingRequest taken = std::move(head);
      q.pop_front();
      --total_queued_;
      rr_cursor_ = tenant;
      progress = true;
      AppendToBatch(static_cast<uint32_t>(node), std::move(taken));
    }
  }
  // Drop drained queues so churned-away tenants don't grow the map forever.
  for (auto it = tenant_queues_.begin(); it != tenant_queues_.end();) {
    it = it->second.empty() ? tenant_queues_.erase(it) : ++it;
  }
}

void Router::AppendToBatch(uint32_t node, serving::ServingRequest req) {
  NodeView& v = nodes_[node];
  v.open_batch.push_back(std::move(req));
  if (v.open_batch.size() >= config_.batch_max || config_.batch_timeout == 0) {
    FlushBatch(node, "size");
    return;
  }
  if (v.open_batch.size() == 1) {
    // Arm the timeout for this batch generation; a flush (any reason) bumps
    // the generation and the timer becomes a no-op.
    const uint64_t gen = v.batch_gen;
    engine_->ScheduleAfter(config_.batch_timeout, [this, node, gen]() {
      guard_.Write();
      if (nodes_[node].batch_gen == gen && !nodes_[node].open_batch.empty()) {
        FlushBatch(node, "timeout");
      }
    });
  }
}

void Router::FlushBatch(uint32_t node, const char* why) {
  NodeView& v = nodes_[node];
  ++v.batch_gen;
  std::vector<serving::ServingRequest> batch = std::move(v.open_batch);
  v.open_batch.clear();
  v.outstanding += batch.size();
  counters_.Increment("router.batches");
  counters_.Increment(std::string("router.flush.") + why);
  batch_hist_.Add(batch.size());
  for (const serving::ServingRequest& r : batch) {
    inflight_.emplace(r.id, Inflight{node, r});  // payload copy = refcount bump
  }
  if (batch_sink_) {
    batch_sink_(node, std::move(batch));
  }
}

void Router::OnCompletion(const serving::ServingCompletion& c) {
  guard_.Write();
  auto it = inflight_.find(c.id);
  if (it == inflight_.end()) {
    // Raced a death declaration: the request was already evacuated/shed.
    counters_.Increment("router.stale_completion");
    return;
  }
  if (c.status == OpStatus::kOk) {
    // End-to-end integrity witness: the echo response must hash to the
    // payload the load generator synthesized.
    const axi::BufferView& p = it->second.req.payload;
    const bool match = serving::ResponseBytes(it->second.req) == p.size() &&
                       c.response_hash == serving::HashBytes(p.data(), p.size());
    counters_.Increment(match ? "router.integrity.ok" : "router.integrity.mismatch");
  }
  NodeView& v = nodes_[it->second.node];
  if (v.outstanding > 0) {
    --v.outstanding;
  }
  inflight_.erase(it);
  Complete(c);
  KickDispatch();
}

void Router::OnHeartbeat(uint32_t node, uint64_t seq) {
  guard_.Write();
  NodeView& v = nodes_.at(node);
  if (!v.alive) {
    return;  // no resurrection: a declared death sticks for the run
  }
  v.last_heartbeat = engine_->Now();
  v.heartbeats = seq;
}

void Router::Sweep() {
  guard_.Write();
  const sim::TimePs now = engine_->Now();
  for (uint32_t n = 0; n < nodes_.size(); ++n) {
    const NodeView& v = nodes_[n];
    if (v.alive && now > config_.heartbeat_window &&
        now - v.last_heartbeat > config_.heartbeat_window) {
      MarkNodeDead(n);
    }
  }
}

void Router::MarkNodeDead(uint32_t node) {
  NodeView& v = nodes_[node];
  if (!v.alive) {
    return;
  }
  guard_.Write();
  v.alive = false;
  counters_.Increment("router.node_dead");
  // Evacuate: the unflushed open batch plus everything in flight there.
  std::vector<serving::ServingRequest> orphans = std::move(v.open_batch);
  v.open_batch.clear();
  ++v.batch_gen;
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    if (it->second.node == node) {
      orphans.push_back(std::move(it->second.req));
      it = inflight_.erase(it);
    } else {
      ++it;
    }
  }
  v.outstanding = 0;
  Requeue(std::move(orphans));
}

void Router::Requeue(std::vector<serving::ServingRequest> orphans) {
  // Ascending id: the open batch and the in-flight map each iterate in id
  // order but interleave; sort for a placement-independent requeue order.
  std::sort(orphans.begin(), orphans.end(),
            [](const serving::ServingRequest& a, const serving::ServingRequest& b) {
              return a.id < b.id;
            });
  for (serving::ServingRequest& r : orphans) {
    if (r.retries >= config_.retry_max) {
      counters_.Increment("router.shed.retries");
      Complete(LocalCompletion(r, OpStatus::kShed));
      continue;
    }
    ++r.retries;
    r.region_hint = -1;
    counters_.Increment("router.evacuated");
    tenant_queues_[r.tenant].push_back(std::move(r));
    ++total_queued_;
  }
  KickDispatch();
}

bool Router::Settled() const {
  if (total_queued_ > 0 || !inflight_.empty()) {
    return false;
  }
  for (const NodeView& v : nodes_) {
    if (!v.open_batch.empty()) {
      return false;
    }
  }
  return true;
}

uint64_t Router::Fingerprint() const {
  uint64_t h = fp_;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= serving::kFnvPrime;
    }
  };
  mix(counters_.Fingerprint());
  mix(completions_);
  mix(latency_us_.count());
  mix(depth_hist_.Fingerprint());
  mix(batch_hist_.Fingerprint());
  return h;
}

// ---------------------------------------------------------------------------
// ServingFabric
// ---------------------------------------------------------------------------

namespace {

// One independent stream per logical node, stable across placements (the
// same derivation Fleet uses).
uint64_t NodeSeed(uint64_t fabric_seed, uint32_t logical_node) {
  return fabric_seed ^ (0x9E3779B97F4A7C15ull * (logical_node + 1));
}

}  // namespace

ServingFabric::ServingFabric(const Config& config) : config_(config) {
  router_logical_ = config_.num_nodes;
  shard_of_ = ShardPlacement::RoundRobin(config_.num_nodes + 1, config_.num_shards);

  // Same conservative lookahead as Fleet: the minimum cross-node traversal
  // of the modeled fabric.
  sim::ShardedEngine::Config ec;
  ec.num_shards = config_.num_shards;
  ec.lookahead =
      config_.net.switch_latency + 2 * sim::TransferTime(64, config_.net.link_bps);
  ec.use_threads = config_.use_threads;
  sharded_ = std::make_unique<sim::ShardedEngine>(ec);

  // Node-side state is written by the scheduler dispatch path, the DMA
  // completion path, and generic engine callbacks (frames, storms) — all
  // program-ordered by the single-engine-per-shard contract. Declare the
  // pairs so the ledger hunts genuine reentrancy instead.
  auto& ledger = sim::AccessLedger::Global();
  ledger.DeclareOrdered(sim::kActorHost, sim::kActorEngine);
  ledger.DeclareOrdered(sim::kActorHost, sim::kActorDma);
  ledger.DeclareOrdered(sim::kActorScheduler, sim::kActorEngine);
  ledger.DeclareOrdered(sim::kActorScheduler, sim::kActorDma);

  const size_t num_kernels = std::max<size_t>(1, config_.kernel_names.size());
  nodes_.reserve(config_.num_nodes);
  for (uint32_t n = 0; n < config_.num_nodes; ++n) {
    auto node = std::make_unique<NodeRt>();
    node->id = n;

    SimDevice::Config dc;
    dc.shell.name = "serving-node";
    dc.shell.services = {fabric::Service::kHostStream, fabric::Service::kCardMemory};
    dc.shell.num_vfpgas = config_.regions_per_node;
    dc.ip = 0x0A010001u + n;
    node->dev = std::make_unique<SimDevice>(dc, nullptr, &EngineAt(n));

    // Preload every region's kernel host-side (reconfiguration nests an
    // engine run and must never happen inside a shard callback) and tell the
    // scheduler what is resident; the serving tier then runs
    // require_resident end to end.
    node->sched = std::make_unique<KernelScheduler>(node->dev.get(), config_.policy);
    node->sched->BindShard(shard_of_[n]);
    node->region_kernel.resize(config_.regions_per_node);
    for (uint32_t r = 0; r < config_.regions_per_node; ++r) {
      const std::string& kernel =
          config_.kernel_names.empty()
              ? node->region_kernel[r]  // stays empty
              : config_.kernel_names[(n + r) % num_kernels];
      node->region_kernel[r] = kernel;
      if (config_.kernel_factory) {
        node->dev->RegisterKernelFactory(kernel, config_.kernel_factory);
        node->dev->vfpga(r).LoadKernel(config_.kernel_factory());
      }
      node->sched->NoteRegionReset(r, kernel);
    }

    // One executor cThread per region with preallocated staging buffers; the
    // completion callback is the shard-safe alternative to Wait().
    node->execs.resize(config_.regions_per_node);
    for (uint32_t r = 0; r < config_.regions_per_node; ++r) {
      Exec& e = node->execs[r];
      e.thread = std::make_unique<CThread>(node->dev.get(), r,
                                           static_cast<int64_t>(n * 1000 + r));
      e.src_vaddr = e.thread->GetMem({Alloc::kHpf, config_.max_payload_bytes});
      e.dst_vaddr = e.thread->GetMem({Alloc::kHpf, config_.max_payload_bytes});
      e.thread->SetCompletionCallback(
          [this, n, r](CThread::Task task, OpStatus status) {
            OnExecDone(n, r, task, status);
          });
    }

    nodes_.push_back(std::move(node));
    auto guard = std::make_unique<sim::AccessGuard>("serving.node" + std::to_string(n));
    guard->BindShard(shard_of_[n]);
    node_guards_.push_back(std::move(guard));
  }

  Router::Config rc = config_.router;
  rc.num_nodes = config_.num_nodes;
  router_ = std::make_unique<Router>(&EngineAt(router_logical_), rc);
  router_->BindShard(shard_of_[router_logical_]);
  for (uint32_t n = 0; n < config_.num_nodes; ++n) {
    router_->SetNodeResident(n, nodes_[n]->region_kernel);
  }
  router_->SetBatchSink([this](uint32_t node, std::vector<serving::ServingRequest> batch) {
    SendBatch(node, std::move(batch));
  });

  LoadGen::Config lc = config_.loadgen;
  lc.seed = NodeSeed(config_.seed, router_logical_);
  if (lc.kernels.empty()) {
    lc.kernels = config_.kernel_names;
  }
  loadgen_ = std::make_unique<LoadGen>(
      &EngineAt(router_logical_), lc,
      [this](serving::ServingRequest req) { router_->Submit(std::move(req)); });
  loadgen_->BindShard(shard_of_[router_logical_]);

  router_timers_ = std::make_unique<sim::TimerWheel>(&EngineAt(router_logical_));
}

ServingFabric::~ServingFabric() = default;

sim::Engine& ServingFabric::EngineAt(uint32_t logical) {
  return sharded_->shard(shard_of_[logical]);  // lint: cross-shard-ok own-shard accessor, callers pass their own logical node; cross-node traffic goes through Post
}

sim::TimePs ServingFabric::NowAt(uint32_t logical) { return EngineAt(logical).Now(); }

void ServingFabric::PostToNode(uint32_t src_logical, uint32_t dst_logical,
                               sim::TimePs delay, sim::InlineCallback cb) {
  const sim::TimePs now = NowAt(src_logical);
  const sim::TimePs wire = std::max(delay, sharded_->lookahead());
  sharded_->Post(shard_of_[dst_logical], now + wire, std::move(cb),
                 /*order_key=*/src_logical);
}

sim::TimePs ServingFabric::WireDelay(uint64_t bytes) const {
  return config_.net.switch_latency + sim::TransferTime(bytes, config_.net.link_bps);
}

bool ServingFabric::Run(sim::TimePs horizon, sim::TimePs step) {
  if (!started_) {
    started_ = true;
    for (auto& node : nodes_) {
      const uint32_t id = node->id;
      node->hb_timer = node->dev->timers().SchedulePeriodic(
          config_.heartbeat_period, [this, id]() { HeartbeatTick(id); });
    }
    router_timers_->SchedulePeriodic(config_.sweep_period,
                                     [this]() { router_->Sweep(); });
    for (const StormSpec& s : config_.storms) {
      sharded_->ScheduleOn(shard_of_[s.node], s.at, [this, s]() { StormBegin(s); });
    }
    for (const KillSpec& k : config_.kills) {
      sharded_->ScheduleOn(shard_of_[k.node], k.at, [this, k]() { KillNode(k.node); });
    }
    loadgen_->Start();
  }
  for (sim::TimePs t = step; t <= horizon; t += step) {
    sharded_->RunUntil(t);
    if (Settled()) {
      return true;
    }
  }
  return Settled();
}

void ServingFabric::SubmitAt(sim::TimePs t, serving::ServingRequest req) {
  sharded_->ScheduleOn(shard_of_[router_logical_], t,
                       [this, req = std::move(req)]() mutable {
                         router_->Submit(std::move(req));
                       });
}

bool ServingFabric::Settled() const {
  if (!loadgen_->done() || !router_->Settled()) {
    return false;
  }
  for (const auto& node : nodes_) {
    if (node->alive && !node->sched->Idle()) {
      return false;
    }
  }
  return true;
}

uint64_t ServingFabric::Fingerprint() const {
  uint64_t h = router_->Fingerprint();
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= serving::kFnvPrime;
    }
  };
  for (const auto& node : nodes_) {
    mix(node->sched->stats().Fingerprint());
    mix(node->sched->completed());
    mix(node->sched->failed_requests());
  }
  mix(frame_errors_);
  return h;
}

// --- Wire: router -> node batches ------------------------------------------

void ServingFabric::SendBatch(uint32_t node, std::vector<serving::ServingRequest> batch) {
  net::rpc::FrameWriter w;
  w.U32(node);
  w.U32(static_cast<uint32_t>(batch.size()));
  uint64_t payload_bytes = 0;
  std::vector<axi::BufferView> payloads;
  payloads.reserve(batch.size());
  for (const serving::ServingRequest& r : batch) {
    w.U64(r.id);
    w.U32(r.tenant);
    w.Str(r.kernel);
    w.U64(r.payload.size());
    w.U64(r.response_bytes);
    w.U64(r.deadline);
    w.U32(r.priority);
    w.I32(r.region_hint);
    w.U64(r.submitted_at);
    w.U32(r.retries);
    payload_bytes += r.payload.size();
    payloads.push_back(r.payload);
  }
  std::vector<uint8_t> frame = w.Finish(net::rpc::MsgType::kRequestBatch);
  // The frame carries the metadata; payloads ride alongside as views (the
  // simulated wire charges for both, the host copies neither).
  const sim::TimePs delay = WireDelay(frame.size() + payload_bytes);
  PostToNode(router_logical_, node, delay,
             [this, node, frame = std::move(frame), payloads = std::move(payloads)]() {
               OnBatchFrame(node, frame, payloads);
             });
}

void ServingFabric::OnBatchFrame(uint32_t node, const std::vector<uint8_t>& frame,
                                 const std::vector<axi::BufferView>& payloads) {
  NodeRt& n = *nodes_[node];
  if (!n.alive) {
    return;  // the frame reached a dead node; the router's sweep recovers it
  }
  node_guards_[node]->Write();
  net::rpc::FrameReader r(frame);
  if (!r.ok() || r.type() != net::rpc::MsgType::kRequestBatch || r.U32() != node) {
    ++frame_errors_;
    return;
  }
  const uint32_t count = r.U32();
  if (count != payloads.size()) {
    ++frame_errors_;
    return;
  }
  for (uint32_t i = 0; i < count; ++i) {
    serving::ServingRequest req;
    req.id = r.U64();
    req.tenant = r.U32();
    req.kernel = r.Str();
    const uint64_t payload_len = r.U64();
    req.response_bytes = r.U64();
    req.deadline = r.U64();
    req.priority = r.U32();
    req.region_hint = r.I32();
    req.submitted_at = r.U64();
    req.retries = r.U32();
    if (!r.ok() || payload_len != payloads[i].size()) {
      ++frame_errors_;
      return;
    }
    req.payload = payloads[i];
    ExecuteOnNode(node, std::move(req));
  }
}

void ServingFabric::ExecuteOnNode(uint32_t node, serving::ServingRequest req) {
  NodeRt& n = *nodes_[node];
  const sim::TimePs now = NowAt(node);
  if (req.deadline > 0 && now > req.deadline) {
    serving::ServingCompletion c;
    c.id = req.id;
    c.tenant = req.tenant;
    c.status = OpStatus::kDeadlineExceeded;
    c.node = node;
    c.submitted_at = req.submitted_at;
    c.completed_at = now;
    CompleteFromNode(node, c);
    return;
  }
  KernelScheduler::Request sr;
  sr.bitstream_path = req.kernel;
  sr.priority = req.priority;
  sr.tenant = req.tenant;
  sr.region_hint = req.region_hint;
  // The serving contract: never reconfigure on the request path. If the
  // resident region vanished (quarantined mid-batch), fail typed instead.
  sr.require_resident = true;
  const uint64_t id = req.id;
  const uint32_t tenant = req.tenant;
  const sim::TimePs submitted_at = req.submitted_at;
  sr.failed = [this, node, id, tenant, submitted_at](OpStatus status) {
    serving::ServingCompletion c;
    c.id = id;
    c.tenant = tenant;
    c.status = status;
    c.node = node;
    c.submitted_at = submitted_at;
    c.completed_at = NowAt(node);
    CompleteFromNode(node, c);
  };
  sr.run = [this, node, req = std::move(req)](uint32_t vfpga_id,
                                              std::function<void()> done) mutable {
    StartExec(node, vfpga_id, std::move(req), std::move(done));
  };
  n.sched->Submit(std::move(sr));
}

void ServingFabric::StartExec(uint32_t node, uint32_t region,
                              serving::ServingRequest req, std::function<void()> done) {
  NodeRt& n = *nodes_[node];
  node_guards_[node]->Write();
  Exec& e = n.execs[region];
  if (req.payload.size() > config_.max_payload_bytes ||
      serving::ResponseBytes(req) > config_.max_payload_bytes) {
    serving::ServingCompletion c;
    c.id = req.id;
    c.tenant = req.tenant;
    c.status = OpStatus::kError;
    c.node = node;
    c.region = static_cast<int32_t>(region);
    c.submitted_at = req.submitted_at;
    c.completed_at = NowAt(node);
    CompleteFromNode(node, c);
    done();  // oversized payload: the region frees immediately
    return;
  }
  e.busy = true;
  e.req = std::move(req);
  e.done = std::move(done);
  const CThread::Task task =
      serving::StageAndInvoke(e.thread.get(), e.src_vaddr, e.dst_vaddr, e.req);
  e.task_id = task.id;
}

void ServingFabric::OnExecDone(uint32_t node, uint32_t region, CThread::Task task,
                               OpStatus status) {
  NodeRt& n = *nodes_[node];
  if (!n.alive) {
    return;
  }
  Exec& e = n.execs[region];
  if (!e.busy || e.task_id != task.id) {
    return;  // stale completion of a request the storm path already settled
  }
  node_guards_[node]->Write();
  e.busy = false;
  serving::ServingCompletion c;
  c.id = e.req.id;
  c.tenant = e.req.tenant;
  c.status = status;
  c.node = node;
  c.region = static_cast<int32_t>(region);
  c.submitted_at = e.req.submitted_at;
  c.completed_at = NowAt(node);
  if (status == OpStatus::kOk) {
    c.response_hash = serving::HashResponse(e.thread.get(), e.dst_vaddr,
                                            serving::ResponseBytes(e.req));
  }
  std::function<void()> done = std::move(e.done);
  e.done = nullptr;
  e.req = serving::ServingRequest{};
  CompleteFromNode(node, c);
  if (done) {
    done();  // frees the region; a reaped epoch makes this a no-op
  }
}

// --- Wire: node -> router completions & heartbeats --------------------------

void ServingFabric::CompleteFromNode(uint32_t node, const serving::ServingCompletion& c) {
  net::rpc::FrameWriter w;
  w.U64(c.id);
  w.U32(c.tenant);
  w.U8(static_cast<uint8_t>(c.status));
  w.U32(c.node);
  w.I32(c.region);
  w.U64(c.submitted_at);
  w.U64(c.completed_at);
  w.U64(c.response_hash);
  std::vector<uint8_t> frame = w.Finish(net::rpc::MsgType::kCompletion);
  const sim::TimePs delay = WireDelay(frame.size());
  PostToNode(node, router_logical_, delay,
             [this, frame = std::move(frame)]() { OnCompletionFrame(frame); });
}

void ServingFabric::OnCompletionFrame(const std::vector<uint8_t>& frame) {
  net::rpc::FrameReader r(frame);
  if (!r.ok() || r.type() != net::rpc::MsgType::kCompletion) {
    ++frame_errors_;
    return;
  }
  serving::ServingCompletion c;
  c.id = r.U64();
  c.tenant = r.U32();
  c.status = static_cast<OpStatus>(r.U8());
  c.node = r.U32();
  c.region = r.I32();
  c.submitted_at = r.U64();
  c.completed_at = r.U64();
  c.response_hash = r.U64();
  if (!r.ok() || !r.AtEnd()) {
    ++frame_errors_;
    return;
  }
  router_->OnCompletion(c);
}

void ServingFabric::HeartbeatTick(uint32_t node) {
  NodeRt& n = *nodes_[node];
  if (!n.alive) {
    return;
  }
  node_guards_[node]->Write();
  const uint64_t seq = ++n.hb_seq;
  net::rpc::FrameWriter w;
  w.U32(node);
  w.U64(seq);
  w.U64(NowAt(node));
  std::vector<uint8_t> frame = w.Finish(net::rpc::MsgType::kHeartbeat);
  const sim::TimePs delay = WireDelay(frame.size());
  PostToNode(node, router_logical_, delay, [this, node, frame = std::move(frame)]() {
    net::rpc::FrameReader r(frame);
    if (!r.ok() || r.type() != net::rpc::MsgType::kHeartbeat || r.U32() != node) {
      ++frame_errors_;
      return;
    }
    const uint64_t seq_rx = r.U64();
    router_->OnHeartbeat(node, seq_rx);
  });
}

// --- Storms and kills -------------------------------------------------------

void ServingFabric::StormBegin(const StormSpec& s) {
  NodeRt& n = *nodes_[s.node];
  if (!n.alive || s.region >= config_.regions_per_node) {
    return;
  }
  node_guards_[s.node]->Write();
  ++storms_begun_;
  // The region goes dark for the reprogram window: quarantine first so the
  // scheduler fails stranded require_resident work fast, then abort whatever
  // was running there (typed kAborted back through the completion path).
  n.sched->SetQuarantined(s.region, true);
  if (n.execs[s.region].busy) {
    n.execs[s.region].thread->AbortPending(OpStatus::kAborted);
  }
  EngineAt(s.node).ScheduleAfter(std::max<sim::TimePs>(1, s.duration),
                                 [this, s]() { StormEnd(s); });
}

void ServingFabric::StormEnd(const StormSpec& s) {
  NodeRt& n = *nodes_[s.node];
  if (!n.alive) {
    return;
  }
  node_guards_[s.node]->Write();
  // Reprogram done: the region comes back with its kernel freshly resident.
  n.sched->NoteRegionReset(s.region, n.region_kernel[s.region]);
  n.sched->SetQuarantined(s.region, false);
}

void ServingFabric::KillNode(uint32_t node) {
  NodeRt& n = *nodes_[node];
  if (!n.alive) {
    return;
  }
  node_guards_[node]->Write();
  n.alive = false;
  if (n.hb_timer != sim::TimerWheel::kInvalidTimer) {
    n.dev->timers().Cancel(n.hb_timer);
    n.hb_timer = sim::TimerWheel::kInvalidTimer;
  }
  // Everything else decays passively: heartbeats stop, in-flight work never
  // completes, and the router's sweep declares the death and evacuates.
}

}  // namespace runtime
}  // namespace coyote
