#include "src/runtime/orchestrator.h"

#include <algorithm>
#include <utility>

#include "src/runtime/serving.h"
#include "src/vfpga/checkpoint.h"

namespace coyote {
namespace runtime {

namespace {

using serving::FoldBytes;

// Injector seed derivation: one independent stream per logical node, stable
// across shard counts and placements.
uint64_t NodeSeed(uint64_t fleet_seed, uint32_t logical_node) {
  return fleet_seed ^ (0x9E3779B97F4A7C15ull * (logical_node + 1));
}

// Deterministic per-tenant item payload; the restore target regenerates the
// same bytes, so the rolling data hash is a pure function of the spec.
uint8_t PatternByte(uint32_t tenant, uint64_t item, uint64_t i) {
  return static_cast<uint8_t>((tenant * 131 + item * 31 + i * 7) ^ (i >> 8));
}

}  // namespace

// ---------------------------------------------------------------------------
// Fleet: construction and host-side setup
// ---------------------------------------------------------------------------

Fleet::Fleet(const Config& config) : config_(config) {
  // Conservative lookahead: the minimum cross-node traversal of the modeled
  // fabric — switch latency plus serialization of a minimum frame on both
  // links (net::Network::MinCrossNodeLatencyPs's formula).
  const sim::TimePs lookahead =
      config_.net.switch_latency + 2 * sim::TransferTime(64, config_.net.link_bps);

  orch_logical_ = config_.num_nodes;
  shard_of_ = ShardPlacement::RoundRobin(config_.num_nodes + 1, config_.num_shards);

  sim::ShardedEngine::Config ec;
  ec.num_shards = config_.num_shards;
  ec.lookahead = lookahead;
  ec.use_threads = config_.use_threads;
  sharded_ = std::make_unique<sim::ShardedEngine>(ec);

  nodes_.reserve(config_.num_nodes);
  for (uint32_t n = 0; n < config_.num_nodes; ++n) {
    auto node = std::make_unique<NodeRt>();
    node->id = n;

    SimDevice::Config dc;
    dc.shell.name = "fleet-node";
    dc.shell.services = {fabric::Service::kHostStream, fabric::Service::kCardMemory};
    dc.shell.num_vfpgas = config_.regions_per_node;
    dc.ip = 0x0A000001u + n;
    node->dev = std::make_unique<SimDevice>(dc, nullptr, &EngineAt(n));

    // Preload the kernel into every region host-side: reconfiguration nests
    // an engine run (SimDevice::StageAndProgram) and therefore must never
    // happen inside a shard callback, so the fleet loads once up front and
    // restores move *state*, not bitstreams.
    if (config_.kernel_factory) {
      node->dev->RegisterKernelFactory(config_.kernel_name, config_.kernel_factory);
      for (uint32_t r = 0; r < config_.regions_per_node; ++r) {
        node->dev->vfpga(r).LoadKernel(config_.kernel_factory());
      }
    }

    sim::FaultPlan plan = config_.fault_template;
    plan.seed = NodeSeed(config_.seed, n);
    node->injector =
        std::make_unique<sim::FaultInjector>(&EngineAt(n), plan);
    node->dev->AttachFaultInjector(node->injector.get());

    node->sup = std::make_unique<Supervisor>(node->dev.get(), nullptr, config_.supervisor);
    node->region_tenant.assign(config_.regions_per_node, -1);
    nodes_.push_back(std::move(node));

    auto guard = std::make_unique<sim::AccessGuard>("fleet.node" + std::to_string(n));
    guard->BindShard(shard_of_[n]);
    node_guards_.push_back(std::move(guard));
  }

  sim::FaultPlan orch_plan = config_.fault_template;
  orch_plan.seed = NodeSeed(config_.seed, orch_logical_);
  orch_injector_ = std::make_unique<sim::FaultInjector>(
      &EngineAt(orch_logical_), orch_plan);

  orch_ = std::make_unique<Orchestrator>(this);
}

Fleet::~Fleet() = default;

uint32_t Fleet::AddTenant(const TenantSpec& spec) {
  const uint32_t id = next_tenant_++;
  NodeRt& n = *nodes_.at(spec.home_node);
  int32_t region = -1;
  for (uint32_t r = 0; r < n.region_tenant.size(); ++r) {
    if (n.region_tenant[r] < 0) {
      region = static_cast<int32_t>(r);
      break;
    }
  }
  // Host-side setup runs outside any shard context, so touching node state
  // directly (rather than through Post) is legal here.
  StartTenantFresh(spec.home_node, id, spec, region);
  orch_->AdmitTenant(id, spec, spec.home_node, region);
  return id;
}

void Fleet::ScheduleMigration(sim::TimePs t, uint32_t tenant, uint32_t dst_node) {
  sharded_->ScheduleOn(shard_of_[orch_logical_], t, [this, tenant, dst_node]() {
    orch_->StartMigration(tenant, dst_node, "planned");
  });
}

void Fleet::ScheduleKill(sim::TimePs t, uint32_t node) {
  sharded_->ScheduleOn(shard_of_[node], t, [this, node]() { KillNode(node); });
}

bool Fleet::Run(sim::TimePs horizon, sim::TimePs step) {
  if (!started_) {
    started_ = true;
    for (auto& node : nodes_) {
      const uint32_t id = node->id;
      node->hb_timer = node->dev->timers().SchedulePeriodic(
          config_.heartbeat_period, [this, id]() { HeartbeatTick(id); });
      if (config_.checkpoint_period > 0) {
        node->ckpt_timer = node->dev->timers().SchedulePeriodic(
            config_.checkpoint_period, [this, id]() { CheckpointTick(id); });
      }
      node->sup->Start();
    }
    orch_->timers_.SchedulePeriodic(config_.sweep_period, [this]() { orch_->Sweep(); });
  }
  for (sim::TimePs t = step; t <= horizon; t += step) {
    sharded_->RunUntil(t);
    if (orch_->AllSettled()) {
      return true;
    }
  }
  return orch_->AllSettled();
}

TenantOutcome Fleet::tenant_outcome(uint32_t tenant) const {
  return orch_->tenants().at(tenant).outcome;
}

uint64_t Fleet::tenant_data_hash(uint32_t tenant) const {
  const auto& book = orch_->tenants().at(tenant);
  const auto& tenants = nodes_.at(book.node)->tenants;
  auto it = tenants.find(tenant);
  return it == tenants.end() ? 0 : it->second->data_hash;
}

uint64_t Fleet::tenant_items_done(uint32_t tenant) const {
  const auto& book = orch_->tenants().at(tenant);
  const auto& tenants = nodes_.at(book.node)->tenants;
  auto it = tenants.find(tenant);
  return it == tenants.end() ? 0 : it->second->items_done;
}

uint64_t Fleet::InjectorFingerprint() const {
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  for (const auto& node : nodes_) {
    mix(node->injector->ScheduleFingerprint());
  }
  mix(orch_injector_->ScheduleFingerprint());
  return h;
}

// ---------------------------------------------------------------------------
// Fleet: cross-node messaging
// ---------------------------------------------------------------------------

sim::Engine& Fleet::EngineAt(uint32_t logical) {
  return sharded_->shard(shard_of_[logical]);  // lint: cross-shard-ok own-shard accessor, callers pass their own logical node; cross-node traffic goes through Post
}

sim::TimePs Fleet::NowAt(uint32_t logical) { return EngineAt(logical).Now(); }

void Fleet::PostToNode(uint32_t src_logical, uint32_t dst_node, sim::TimePs delay,
                       sim::InlineCallback cb) {
  const sim::TimePs now = NowAt(src_logical);
  const sim::TimePs wire = std::max(delay, sharded_->lookahead());
  sharded_->Post(shard_of_[dst_node], now + wire, std::move(cb), /*order_key=*/src_logical);
}

void Fleet::PostToOrch(uint32_t src_logical, sim::TimePs delay, sim::InlineCallback cb) {
  PostToNode(src_logical, orch_logical_, delay, std::move(cb));
}

sim::TimePs Fleet::ChunkWireDelay(uint32_t chunk_index, uint64_t cumulative_bytes) const {
  (void)chunk_index;
  return config_.net.switch_latency +
         sim::TransferTime(cumulative_bytes, config_.net.link_bps);
}

// ---------------------------------------------------------------------------
// Fleet: tenant execution (node shard context)
// ---------------------------------------------------------------------------

void Fleet::StartTenantFresh(uint32_t node, uint32_t tenant, const TenantSpec& spec,
                             int32_t region) {
  sim::ActorScope actor(sim::kActorOrchestrator);
  NodeRt& n = *nodes_[node];
  if (!n.alive || region < 0) {
    return;
  }
  node_guards_[node]->Write();
  auto t = std::make_unique<TenantRt>();
  t->id = tenant;
  t->spec = spec;
  t->node = node;
  t->region = region;
  t->thread = std::make_unique<CThread>(n.dev.get(), static_cast<uint32_t>(region));
  t->src_vaddr = t->thread->GetMem({Alloc::kHpf, spec.item_bytes});
  t->dst_vaddr = t->thread->GetMem({Alloc::kHpf, spec.item_bytes});
  t->thread->SetCompletionCallback([this, node, tenant](CThread::Task task, OpStatus status) {
    OnItemComplete(node, tenant, task, status);
  });
  t->running = true;
  n.region_tenant[region] = static_cast<int32_t>(tenant);
  n.tenants[tenant] = std::move(t);
  StartItem(node, tenant);
}

void Fleet::StartItem(uint32_t node, uint32_t tenant) {
  NodeRt& n = *nodes_[node];
  auto it = n.tenants.find(tenant);
  if (!n.alive || it == n.tenants.end()) {
    return;
  }
  TenantRt& t = *it->second;
  if (!t.running || t.item_inflight || t.items_done >= t.spec.items_total) {
    return;
  }
  node_guards_[node]->Write();
  t.item_inflight = true;
  // One item = one serving envelope: the same request shape the Router ships
  // to node schedulers, here issued directly on the tenant's resident region.
  std::vector<uint8_t> payload(t.spec.item_bytes);
  for (uint64_t i = 0; i < t.spec.item_bytes; ++i) {
    payload[i] = PatternByte(tenant, t.items_done, i);
  }
  serving::ServingRequest item;
  item.id = t.items_done;
  item.tenant = tenant;
  item.kernel = config_.kernel_name;
  item.payload = axi::BufferView(std::move(payload));
  serving::StageAndInvoke(t.thread.get(), t.src_vaddr, t.dst_vaddr, item);
}

void Fleet::OnItemComplete(uint32_t node, uint32_t tenant, CThread::Task task, OpStatus status) {
  (void)task;
  sim::ActorScope actor(sim::kActorOrchestrator);
  NodeRt& n = *nodes_[node];
  auto it = n.tenants.find(tenant);
  if (!n.alive || it == n.tenants.end()) {
    return;
  }
  TenantRt& t = *it->second;
  t.item_inflight = false;
  if (!t.running) {
    return;  // quiesce/shed abort completions land here with running unset
  }
  node_guards_[node]->Write();
  if (status == OpStatus::kOk) {
    std::vector<uint8_t> out(t.spec.item_bytes);
    t.thread->ReadBuffer(t.dst_vaddr, out.data(), out.size());
    const uint64_t item = t.items_done;
    FoldBytes(&t.data_hash, reinterpret_cast<const uint8_t*>(&item), sizeof(item));
    FoldBytes(&t.data_hash, out.data(), out.size());
    ++t.items_done;
    if (t.items_done >= t.spec.items_total) {
      // Retire in place: free the buffers (TLB shootdown at the source) and
      // hand the region back through the orchestrator's books.
      t.running = false;
      t.thread->FreeMem(t.src_vaddr);
      t.thread->FreeMem(t.dst_vaddr);
      t.src_vaddr = t.dst_vaddr = 0;
      if (t.region >= 0) {
        n.region_tenant[t.region] = -1;
      }
      t.region = -1;
      PostToOrch(node, 0, [this, tenant]() { orch_->OnTenantDone(tenant); });
      return;
    }
    EngineAt(node).ScheduleAfter(t.spec.think_time,
                                                   [this, node, tenant]() { StartItem(node, tenant); });
    return;
  }
  // Typed error completion (DMA abort, deadline): retry the same item after
  // a think-time backoff. kShed never reaches here (running is unset first).
  ++t.retries;
  EngineAt(node).ScheduleAfter(t.spec.think_time,
                                                 [this, node, tenant]() { StartItem(node, tenant); });
}

// ---------------------------------------------------------------------------
// Fleet: heartbeats and periodic checkpoints (node shard context)
// ---------------------------------------------------------------------------

void Fleet::HeartbeatTick(uint32_t node) {
  NodeRt& n = *nodes_[node];
  if (!n.alive) {
    return;
  }
  const uint64_t seq = ++n.hb_seq;
  const sim::TimePs sent = NowAt(node);
  PostToOrch(node, 0, [this, node, seq, sent]() { orch_->OnHeartbeat(node, seq, sent); });
}

void Fleet::CheckpointTick(uint32_t node) {
  sim::ActorScope actor(sim::kActorOrchestrator);
  NodeRt& n = *nodes_[node];
  if (!n.alive) {
    return;
  }
  node_guards_[node]->Write();
  for (auto& [tenant, t] : n.tenants) {
    if (!t->running) {
      continue;
    }
    // Non-disruptive capture: in-flight ops ride along as pending descriptors
    // and are re-issued whole on restore, so the tenant keeps executing.
    uint64_t pages = 0;
    std::vector<uint8_t> blob = BuildCheckpoint(n, *t, t->thread->SnapshotPending(), &pages);
    t->last_ckpt_clock = n.dev->svm().dirty_clock();
    const sim::TimePs captured = NowAt(node);
    const sim::TimePs wire = config_.net.switch_latency +
                             sim::TransferTime(blob.size(), config_.net.link_bps);
    const uint32_t tenant_id = tenant;
    PostToOrch(node, wire, [this, tenant_id, blob = std::move(blob), pages, captured]() mutable {
      orch_->OnCheckpoint(tenant_id, std::move(blob), pages, captured);
    });
  }
}

// ---------------------------------------------------------------------------
// Fleet: checkpoint serialization
// ---------------------------------------------------------------------------

std::vector<uint8_t> Fleet::BuildCheckpoint(const NodeRt& n, const TenantRt& t,
                                            const std::vector<CThread::PendingOp>& pending,
                                            uint64_t* pages_out) const {
  vfpga::ckpt::Writer w;
  w.U32(t.id);
  w.Str(t.spec.name);
  w.U32(t.spec.priority);
  w.U64(t.spec.items_total);
  w.U64(t.spec.item_bytes);
  w.U64(t.spec.think_time);
  w.U64(t.items_done);
  w.U64(t.retries);
  w.U64(t.data_hash);

  vfpga::RegionSnapshot snap =
      vfpga::CaptureRegion(n.dev->vfpga(static_cast<uint32_t>(t.region)));
  snap.AppendTo(&w);

  // In-flight ops, buffer-relative (virtual addresses differ across nodes).
  w.U32(static_cast<uint32_t>(pending.size()));
  for (const auto& op : pending) {
    w.U8(static_cast<uint8_t>(op.oper));
    w.U64(op.sg.local.src_addr - t.src_vaddr);
    w.U64(op.sg.local.src_len);
    w.U64(op.sg.local.dst_addr - t.dst_vaddr);
    w.U64(op.sg.local.dst_len);
  }

  // Dirty-page manifest from the SVM layer: only pages ever written ship;
  // the restore target reproduces untouched (zero) pages for free. Segments
  // are clipped to the buffer, so a small buffer inside a hugepage does not
  // drag the whole 2 MB across the wire.
  uint64_t pages = 0;
  const mmu::Svm& svm = n.dev->svm();
  const uint64_t page_bytes = svm.page_table().page_bytes();
  auto append_buffer = [&](uint64_t vaddr) {
    const std::vector<uint64_t> dirty = svm.DirtyPagesIn(vaddr, t.spec.item_bytes, 0);
    pages += dirty.size();
    w.U32(static_cast<uint32_t>(dirty.size()));
    for (const uint64_t vpage : dirty) {
      const uint64_t page_start = vpage * page_bytes;
      const uint64_t seg_start = std::max(page_start, vaddr);
      const uint64_t seg_end = std::min(page_start + page_bytes, vaddr + t.spec.item_bytes);
      std::vector<uint8_t> content(seg_end - seg_start);
      svm.ReadVirtual(seg_start, content.data(), content.size());
      w.U64(seg_start - vaddr);
      w.Bytes(content);
    }
  };
  append_buffer(t.src_vaddr);
  append_buffer(t.dst_vaddr);
  if (pages_out != nullptr) {
    *pages_out = pages;
  }
  return std::move(w).Finish();
}

bool Fleet::ApplyCheckpoint(uint32_t node, int32_t region, const std::vector<uint8_t>& blob) {
  NodeRt& n = *nodes_[node];
  vfpga::ckpt::Reader r(blob);
  if (!r.ok() || region < 0) {
    return false;
  }
  const uint32_t tenant = r.U32();
  TenantSpec spec;
  spec.name = r.Str();
  spec.priority = r.U32();
  spec.items_total = r.U64();
  spec.item_bytes = r.U64();
  spec.think_time = r.U64();
  const uint64_t items_done = r.U64();
  const uint64_t retries = r.U64();
  const uint64_t data_hash = r.U64();

  vfpga::RegionSnapshot snap;
  if (!snap.ParseFrom(&r)) {
    return false;
  }

  struct PendingDesc {
    Oper oper;
    uint64_t src_off, src_len, dst_off, dst_len;
  };
  std::vector<PendingDesc> pending(r.U32());
  for (auto& op : pending) {
    op.oper = static_cast<Oper>(r.U8());
    op.src_off = r.U64();
    op.src_len = r.U64();
    op.dst_off = r.U64();
    op.dst_len = r.U64();
  }

  struct Segment {
    uint64_t off;
    std::vector<uint8_t> bytes;
  };
  auto read_segments = [&r]() {
    std::vector<Segment> segs(r.U32());
    for (auto& s : segs) {
      s.off = r.U64();
      s.bytes = r.Bytes();
    }
    return segs;
  };
  const std::vector<Segment> src_segs = read_segments();
  const std::vector<Segment> dst_segs = read_segments();
  if (!r.AtEnd()) {
    return false;
  }

  auto t = std::make_unique<TenantRt>();
  t->id = tenant;
  t->spec = spec;
  t->node = node;
  t->region = region;
  t->thread = std::make_unique<CThread>(n.dev.get(), static_cast<uint32_t>(region));
  t->src_vaddr = t->thread->GetMem({Alloc::kHpf, spec.item_bytes});
  t->dst_vaddr = t->thread->GetMem({Alloc::kHpf, spec.item_bytes});
  for (const auto& s : src_segs) {
    t->thread->WriteBuffer(t->src_vaddr + s.off, s.bytes.data(), s.bytes.size());
  }
  for (const auto& s : dst_segs) {
    t->thread->WriteBuffer(t->dst_vaddr + s.off, s.bytes.data(), s.bytes.size());
  }
  if (!vfpga::RestoreRegion(n.dev->vfpga(static_cast<uint32_t>(region)), snap)) {
    t->thread->FreeMem(t->src_vaddr);
    t->thread->FreeMem(t->dst_vaddr);
    return false;
  }
  t->items_done = items_done;
  t->retries = retries;
  t->data_hash = data_hash;
  t->thread->SetCompletionCallback([this, node, tenant](CThread::Task task, OpStatus status) {
    OnItemComplete(node, tenant, task, status);
  });
  // Re-issue the ops the quiesce cut short, rebased onto the new buffers.
  // The workload keeps at most one op in flight, so the re-issue cannot
  // double-fold the data hash.
  t->running = true;
  bool reissued = false;
  for (const auto& op : pending) {
    SgEntry sg;
    sg.local = {.src_addr = t->src_vaddr + op.src_off,
                .src_len = op.src_len,
                .dst_addr = t->dst_vaddr + op.dst_off,
                .dst_len = op.dst_len};
    t->thread->Invoke(op.oper, sg);
    t->item_inflight = true;
    reissued = true;
  }
  n.region_tenant[region] = static_cast<int32_t>(tenant);
  n.tenants[tenant] = std::move(t);
  if (!reissued) {
    StartItem(node, tenant);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Fleet: migration pipeline (node shard context)
// ---------------------------------------------------------------------------

void Fleet::BeginMigration(uint32_t node, uint32_t tenant, uint32_t dst_node,
                           int32_t dst_region) {
  sim::ActorScope actor(sim::kActorOrchestrator);
  NodeRt& n = *nodes_[node];
  if (!n.alive) {
    return;  // the sweep will declare this node dead and evacuate instead
  }
  auto it = n.tenants.find(tenant);
  if (it == n.tenants.end() || !it->second->running) {
    PostToOrch(node, 0,
               [this, tenant]() { orch_->OnMigrationFailed(tenant, "src.not_running"); });
    return;
  }
  node_guards_[node]->Write();
  TenantRt& t = *it->second;

  // QUIESCE: stop issuing, snapshot the in-flight descriptors, then abort
  // them through the data mover (error completions, credit restore, TLB
  // shootdown) so the region is drained before capture.
  t.running = false;
  t.mig_pending = t.thread->SnapshotPending();
  t.thread->AbortPending(OpStatus::kAborted);
  n.dev->data_mover().AbortVfpga(static_cast<uint32_t>(t.region));
  n.dev->vfpga(static_cast<uint32_t>(t.region)).FlushStreams();

  uint64_t pages = 0;
  t.mig_blob = BuildCheckpoint(n, t, t.mig_pending, &pages);
  t.mig_dst = dst_node;
  t.mig_dst_region = dst_region;
  t.mig_quiesced_at = NowAt(node);

  const uint32_t chunks = static_cast<uint32_t>(
      (t.mig_blob.size() + config_.chunk_bytes - 1) / config_.chunk_bytes);
  const uint64_t bytes = t.mig_blob.size();
  const sim::TimePs quiesced = t.mig_quiesced_at;
  PostToOrch(node, 0, [this, tenant, quiesced, bytes, pages, chunks]() {
    orch_->OnMigrationQuiesced(tenant, quiesced, bytes, pages, chunks);
  });

  // TRANSFER: serialize-out at capture bandwidth, then chunks on the wire.
  std::vector<uint32_t> ids(chunks);
  for (uint32_t i = 0; i < chunks; ++i) {
    ids[i] = i;
  }
  const sim::TimePs capture_delay = sim::TransferTime(bytes, config_.capture_bps);
  SendChunks(node, dst_node, tenant, t.mig_blob, ids, chunks, /*round=*/0, dst_region,
             capture_delay);
}

void Fleet::SendChunks(uint32_t src_logical, uint32_t dst_node, uint32_t tenant,
                       const std::vector<uint8_t>& blob, const std::vector<uint32_t>& chunk_ids,
                       uint32_t total_chunks, uint32_t round, int32_t dst_region,
                       sim::TimePs extra_delay) {
  sim::FaultInjector& injector =
      src_logical == orch_logical_ ? *orch_injector_ : *nodes_[src_logical]->injector;
  uint64_t cumulative = 0;
  for (uint32_t i = 0; i < chunk_ids.size(); ++i) {
    const uint32_t id = chunk_ids[i];
    const uint64_t off = static_cast<uint64_t>(id) * config_.chunk_bytes;
    const uint64_t len = std::min<uint64_t>(config_.chunk_bytes, blob.size() - off);
    cumulative += len;
    if (injector.NextMigrationChunkDrop()) {
      continue;  // lost in flight; the marker round below detects the gap
    }
    std::vector<uint8_t> bytes(blob.begin() + static_cast<ptrdiff_t>(off),
                               blob.begin() + static_cast<ptrdiff_t>(off + len));
    PostToNode(src_logical, dst_node, extra_delay + ChunkWireDelay(i, cumulative),
               [this, dst_node, tenant, id, bytes = std::move(bytes)]() mutable {
                 OnChunk(dst_node, tenant, id, std::move(bytes));
               });
  }
  // The marker always arrives (control channel): it carries the per-round
  // corruption draw and closes the round on the receiver.
  const uint64_t corrupt = injector.NextCheckpointCorrupt();
  const sim::TimePs marker_delay = extra_delay + ChunkWireDelay(0, cumulative + 64);
  PostToNode(src_logical, dst_node, marker_delay,
             [this, dst_node, tenant, src_logical, dst_region, total_chunks, round, corrupt]() {
               OnTransferMarker(dst_node, tenant, src_logical, dst_region, total_chunks, round,
                                corrupt);
             });
}

void Fleet::OnChunk(uint32_t node, uint32_t tenant, uint32_t chunk_id,
                    std::vector<uint8_t> bytes) {
  sim::ActorScope actor(sim::kActorOrchestrator);
  NodeRt& n = *nodes_[node];
  if (!n.alive) {
    return;
  }
  node_guards_[node]->Write();
  n.inbound[tenant].chunks[chunk_id] = std::move(bytes);
}

void Fleet::OnTransferMarker(uint32_t node, uint32_t tenant, uint32_t src_logical,
                             int32_t dst_region, uint32_t total_chunks, uint32_t round,
                             uint64_t corrupt_entropy) {
  sim::ActorScope actor(sim::kActorOrchestrator);
  NodeRt& n = *nodes_[node];
  if (!n.alive) {
    return;
  }
  node_guards_[node]->Write();
  NodeRt::Inbound& ib = n.inbound[tenant];
  ib.src_logical = src_logical;
  ib.region = dst_region;
  ib.total = total_chunks;

  std::vector<uint32_t> missing;
  for (uint32_t i = 0; i < total_chunks; ++i) {
    if (ib.chunks.find(i) == ib.chunks.end()) {
      missing.push_back(i);
    }
  }
  if (!missing.empty()) {
    const uint32_t next_round = round + 1;
    PostToNode(node, src_logical, 0,
               [this, src_logical, tenant, missing = std::move(missing), next_round]() mutable {
                 OnResendRequest(src_logical, tenant, std::move(missing), next_round);
               });
    return;
  }

  std::vector<uint8_t> blob;
  for (uint32_t i = 0; i < total_chunks; ++i) {
    auto& c = ib.chunks[i];
    blob.insert(blob.end(), c.begin(), c.end());
  }
  n.inbound.erase(tenant);
  if (corrupt_entropy != 0 && !blob.empty()) {
    // In-flight bit flip; the CYK1 CRC trailer catches it below.
    blob[corrupt_entropy % blob.size()] ^= static_cast<uint8_t>((corrupt_entropy >> 8) | 1);
  }
  TryRestore(node, tenant, src_logical, dst_region, round, std::move(blob));
}

void Fleet::OnResendRequest(uint32_t src_logical, uint32_t tenant, std::vector<uint32_t> missing,
                            uint32_t round) {
  sim::ActorScope actor(sim::kActorOrchestrator);
  if (round > config_.chunk_retry_max) {
    // Retransmit budget exhausted: the orchestrator rolls back (migration)
    // or sheds (evacuation — the source is already gone).
    if (src_logical == orch_logical_) {
      orch_->OnMigrationFailed(tenant, "evac.transfer");
    } else {
      PostToOrch(src_logical, 0,
                 [this, tenant]() { orch_->OnMigrationFailed(tenant, "transfer"); });
    }
    return;
  }
  const sim::TimePs backoff = config_.chunk_retry_backoff * round;
  if (src_logical == orch_logical_) {
    // Evacuation replay: the orchestrator itself is the sender.
    auto it = orch_->ckpt_store_.find(tenant);
    auto bit = orch_->active_migration_.find(tenant);
    if (it == orch_->ckpt_store_.end() || bit == orch_->active_migration_.end()) {
      return;
    }
    orch_->OnTransferRound(tenant, round);
    const MigrationRecord& rec = orch_->records_[bit->second];
    const int32_t region = orch_->health_.at(rec.dst_node).regions.FindTenant(tenant);
    const uint32_t total = static_cast<uint32_t>(
        (it->second.blob.size() + config_.chunk_bytes - 1) / config_.chunk_bytes);
    SendChunks(orch_logical_, rec.dst_node, tenant, it->second.blob, missing, total, round,
               region, backoff);
    return;
  }
  NodeRt& n = *nodes_[src_logical];
  if (!n.alive) {
    return;  // the sweep handles a source that died mid-transfer
  }
  auto it = n.tenants.find(tenant);
  if (it == n.tenants.end() || it->second->mig_blob.empty()) {
    return;
  }
  node_guards_[src_logical]->Write();
  TenantRt& t = *it->second;
  PostToOrch(src_logical, 0, [this, tenant, round]() { orch_->OnTransferRound(tenant, round); });
  const uint32_t total = static_cast<uint32_t>(
      (t.mig_blob.size() + config_.chunk_bytes - 1) / config_.chunk_bytes);
  SendChunks(src_logical, t.mig_dst, tenant, t.mig_blob, missing, total, round, t.mig_dst_region,
             backoff);
}

void Fleet::TryRestore(uint32_t node, uint32_t tenant, uint32_t src_logical, int32_t dst_region,
                       uint32_t round, std::vector<uint8_t> blob) {
  NodeRt& n = *nodes_[node];
  vfpga::ckpt::Reader probe(blob);
  if (!probe.ok()) {
    // CRC/framing reject: request a full resend — counts against the same
    // retransmit budget as a lost chunk.
    const uint32_t total = static_cast<uint32_t>(
        (blob.size() + config_.chunk_bytes - 1) / config_.chunk_bytes);
    std::vector<uint32_t> all(total);
    for (uint32_t i = 0; i < total; ++i) {
      all[i] = i;
    }
    const uint32_t next_round = round + 1;
    PostToNode(node, src_logical, 0,
               [this, src_logical, tenant, all = std::move(all), next_round]() mutable {
                 OnResendRequest(src_logical, tenant, std::move(all), next_round);
               });
    return;
  }

  // RESTORE: bounded attempts, each subject to injected restore faults.
  bool restored = false;
  for (uint32_t attempt = 0; attempt < config_.restore_attempts_max && !restored; ++attempt) {
    PostToOrch(node, 0, [this, tenant]() { orch_->OnRestoreAttempt(tenant); });
    if (n.injector->NextRestoreFail()) {
      continue;
    }
    restored = ApplyCheckpoint(node, dst_region, blob);
  }
  if (!restored) {
    PostToOrch(node, 0, [this, tenant]() { orch_->OnMigrationFailed(tenant, "restore"); });
    return;
  }
  // RESUME: charge deserialize-in at capture bandwidth before declaring the
  // tenant live (the first re-issued op is already queued behind it).
  const sim::TimePs restore_ps = sim::TransferTime(blob.size(), config_.capture_bps);
  EngineAt(node).ScheduleAfter(restore_ps, [this, node, tenant]() {
    if (!nodes_[node]->alive) {
      return;
    }
    const sim::TimePs resumed = NowAt(node);
    PostToOrch(node, 0, [this, tenant, resumed]() { orch_->OnMigrationDone(tenant, resumed); });
  });
}

void Fleet::ResumeAtSource(uint32_t node, uint32_t tenant) {
  sim::ActorScope actor(sim::kActorOrchestrator);
  NodeRt& n = *nodes_[node];
  if (!n.alive) {
    return;
  }
  auto it = n.tenants.find(tenant);
  if (it == n.tenants.end()) {
    return;
  }
  node_guards_[node]->Write();
  TenantRt& t = *it->second;
  t.running = true;
  bool reissued = false;
  for (const auto& op : t.mig_pending) {
    t.thread->Invoke(op.oper, op.sg);  // same node, original addresses
    t.item_inflight = true;
    reissued = true;
  }
  t.mig_blob.clear();
  t.mig_pending.clear();
  if (!reissued) {
    StartItem(node, tenant);
  }
  const sim::TimePs resumed = NowAt(node);
  PostToOrch(node, 0, [this, tenant, resumed]() { orch_->OnRollbackResumed(tenant, resumed); });
}

void Fleet::CleanupSource(uint32_t node, uint32_t tenant) {
  sim::ActorScope actor(sim::kActorOrchestrator);
  NodeRt& n = *nodes_[node];
  if (!n.alive) {
    return;
  }
  auto it = n.tenants.find(tenant);
  if (it == n.tenants.end()) {
    return;
  }
  node_guards_[node]->Write();
  TenantRt& t = *it->second;
  if (t.src_vaddr != 0) {
    t.thread->FreeMem(t.src_vaddr);  // unmap + TLB shootdown at the source
    t.thread->FreeMem(t.dst_vaddr);
    t.src_vaddr = t.dst_vaddr = 0;
  }
  if (t.region >= 0) {
    n.region_tenant[t.region] = -1;
  }
  t.region = -1;
  t.mig_blob.clear();
  t.mig_pending.clear();
}

void Fleet::AbandonInbound(uint32_t node, uint32_t tenant) {
  sim::ActorScope actor(sim::kActorOrchestrator);
  NodeRt& n = *nodes_[node];
  if (!n.alive) {
    return;
  }
  node_guards_[node]->Write();
  n.inbound.erase(tenant);
}

void Fleet::ShedTenant(uint32_t node, uint32_t tenant) {
  sim::ActorScope actor(sim::kActorOrchestrator);
  NodeRt& n = *nodes_[node];
  if (!n.alive) {
    return;
  }
  auto it = n.tenants.find(tenant);
  if (it == n.tenants.end()) {
    return;
  }
  node_guards_[node]->Write();
  TenantRt& t = *it->second;
  if (!t.running && t.region < 0) {
    // Retired (or already shed) before the command arrived; the tenant's own
    // OnTenantDone resolves any evacuation waiting on this region.
    return;
  }
  // Graceful degradation: typed kShed completions instead of a hang, then
  // the region and its buffers go back to the pool.
  t.running = false;
  t.thread->AbortPending(OpStatus::kShed);
  if (t.region >= 0) {
    n.dev->data_mover().AbortVfpga(static_cast<uint32_t>(t.region));
    n.dev->vfpga(static_cast<uint32_t>(t.region)).FlushStreams();
    n.region_tenant[t.region] = -1;
  }
  if (t.src_vaddr != 0) {
    t.thread->FreeMem(t.src_vaddr);
    t.thread->FreeMem(t.dst_vaddr);
    t.src_vaddr = t.dst_vaddr = 0;
  }
  t.region = -1;
  PostToOrch(node, 0, [this, tenant]() { orch_->OnTenantShed(tenant, "capacity"); });
}

void Fleet::KillNode(uint32_t node) {
  sim::ActorScope actor(sim::kActorOrchestrator);
  NodeRt& n = *nodes_[node];
  if (!n.alive) {
    return;
  }
  node_guards_[node]->Write();
  n.alive = false;
  if (n.hb_timer != sim::TimerWheel::kInvalidTimer) {
    n.dev->timers().Cancel(n.hb_timer);
    n.hb_timer = sim::TimerWheel::kInvalidTimer;
  }
  if (n.ckpt_timer != sim::TimerWheel::kInvalidTimer) {
    n.dev->timers().Cancel(n.ckpt_timer);
    n.ckpt_timer = sim::TimerWheel::kInvalidTimer;
  }
  n.sup->Stop();
  // Everything else decays passively: heartbeats stop, queued callbacks
  // no-op on the alive check, and the orchestrator's sweep declares the
  // death once the heartbeat window lapses.
}

// ---------------------------------------------------------------------------
// Orchestrator
// ---------------------------------------------------------------------------

Orchestrator::Orchestrator(Fleet* fleet)
    : fleet_(fleet),
      timers_(&fleet->EngineAt(fleet->orch_logical_)) {
  // The orchestrator's maps are touched from its own shard callbacks, from
  // host-side setup/observation, and (conceptually) alongside the engine /
  // DMA / supervisor actors whose completions feed it — all program-ordered
  // by the PDES merge contract. Declare the pairs so the ledger hunts real
  // reentrancy, and bind every map to the orchestrator's shard.
  auto& ledger = sim::AccessLedger::Global();
  ledger.DeclareOrdered(sim::kActorOrchestrator, sim::kActorHost);
  ledger.DeclareOrdered(sim::kActorOrchestrator, sim::kActorEngine);
  ledger.DeclareOrdered(sim::kActorOrchestrator, sim::kActorDma);
  ledger.DeclareOrdered(sim::kActorOrchestrator, sim::kActorSupervisor);
  const sim::ShardId shard = fleet_->shard_of_[fleet_->orch_logical_];
  tenants_guard_.BindShard(shard);
  health_guard_.BindShard(shard);
  ckpt_guard_.BindShard(shard);
  for (uint32_t n = 0; n < fleet_->config_.num_nodes; ++n) {
    NodeHealth h;
    h.regions.Reset(fleet_->config_.regions_per_node);
    health_[n] = std::move(h);
  }
}

void Orchestrator::Trace(const std::string& line) {
  const sim::TimePs now =
      fleet_->NowAt(fleet_->orch_logical_);
  trace_.push_back("t=" + std::to_string(now) + " " + line);
}

uint64_t Orchestrator::TraceFingerprint() const {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& line : trace_) {
    FoldBytes(&h, reinterpret_cast<const uint8_t*>(line.data()), line.size());
    h ^= '\n';
    h *= 0x100000001b3ull;
  }
  return h;
}

void Orchestrator::AdmitTenant(uint32_t tenant, const TenantSpec& spec, uint32_t node,
                               int32_t region) {
  tenants_guard_.Write();
  health_guard_.Write();
  TenantBook book;
  book.spec = spec;
  book.node = node;
  book.region = region;
  tenants_[tenant] = std::move(book);
  ReserveRegion(node, region, tenant);
  Trace("tenant=" + std::to_string(tenant) + " admit node=" + std::to_string(node) +
        " region=" + std::to_string(region) + " prio=" + std::to_string(spec.priority));
}

void Orchestrator::ReserveRegion(uint32_t node, int32_t region, uint32_t tenant) {
  health_[node].regions.Reserve(region, tenant);
}

void Orchestrator::ReleaseRegion(uint32_t node, int32_t region) {
  NodeHealth& h = health_[node];
  if (h.believed_alive) {
    h.regions.Release(region);
  }
}

void Orchestrator::OnHeartbeat(uint32_t node, uint64_t seq, sim::TimePs sent_at) {
  sim::ActorScope actor(sim::kActorOrchestrator);
  health_guard_.Write();
  (void)sent_at;
  NodeHealth& h = health_[node];
  if (!h.believed_alive) {
    return;  // a declared-dead node stays dead (no flapping)
  }
  h.last_heartbeat_at =
      fleet_->NowAt(fleet_->orch_logical_);
  h.heartbeats = seq;
}

void Orchestrator::OnCheckpoint(uint32_t tenant, std::vector<uint8_t> blob, uint64_t pages,
                                sim::TimePs captured_at) {
  sim::ActorScope actor(sim::kActorOrchestrator);
  ckpt_guard_.Write();
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.outcome != TenantOutcome::kRunning) {
    return;  // late checkpoint from a tenant that already settled
  }
  StoredCkpt& s = ckpt_store_[tenant];
  s.blob = std::move(blob);
  s.pages = pages;
  s.captured_at = captured_at;
}

void Orchestrator::StartMigration(uint32_t tenant, uint32_t dst_node, const std::string& reason) {
  sim::ActorScope actor(sim::kActorOrchestrator);
  tenants_guard_.Write();
  health_guard_.Write();
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return;
  }
  TenantBook& book = it->second;
  const NodeHealth& dst = health_[dst_node];
  if (book.outcome != TenantOutcome::kRunning || book.migrating ||
      !health_[book.node].believed_alive || !dst.believed_alive || dst.regions.free() == 0 ||
      dst_node == book.node) {
    Trace("tenant=" + std::to_string(tenant) + " migrate.reject dst=" +
          std::to_string(dst_node));
    return;
  }
  const int32_t region = dst.regions.FindFree();
  ReserveRegion(dst_node, region, tenant);
  book.migrating = true;

  MigrationRecord rec;
  rec.tenant = tenant;
  rec.src_node = book.node;
  rec.dst_node = dst_node;
  rec.reason = reason;
  rec.started_at =
      fleet_->NowAt(fleet_->orch_logical_);
  rec.outcome = "ok";
  active_migration_[tenant] = records_.size();
  records_.push_back(std::move(rec));
  Trace("tenant=" + std::to_string(tenant) + " migrate.start src=" +
        std::to_string(book.node) + " dst=" + std::to_string(dst_node) + " reason=" + reason);

  const uint32_t src = book.node;
  fleet_->PostToNode(fleet_->orch_logical_, src, 0, [this, src, tenant, dst_node, region]() {
    fleet_->BeginMigration(src, tenant, dst_node, region);
  });
}

MigrationRecord* Orchestrator::ActiveRecord(uint32_t tenant) {
  auto it = active_migration_.find(tenant);
  return it == active_migration_.end() ? nullptr : &records_[it->second];
}

void Orchestrator::OnMigrationQuiesced(uint32_t tenant, sim::TimePs quiesced_at,
                                       uint64_t ckpt_bytes, uint64_t ckpt_pages,
                                       uint32_t chunks) {
  sim::ActorScope actor(sim::kActorOrchestrator);
  tenants_guard_.Write();
  MigrationRecord* rec = ActiveRecord(tenant);
  if (rec == nullptr) {
    return;
  }
  rec->quiesced_at = quiesced_at;
  rec->ckpt_bytes = ckpt_bytes;
  rec->ckpt_pages = ckpt_pages;
  rec->chunks = chunks;
  Trace("tenant=" + std::to_string(tenant) + " quiesce bytes=" + std::to_string(ckpt_bytes) +
        " pages=" + std::to_string(ckpt_pages) + " chunks=" + std::to_string(chunks));
}

void Orchestrator::OnTransferRound(uint32_t tenant, uint32_t round) {
  sim::ActorScope actor(sim::kActorOrchestrator);
  tenants_guard_.Write();
  MigrationRecord* rec = ActiveRecord(tenant);
  if (rec == nullptr) {
    return;
  }
  rec->retransmit_rounds = std::max(rec->retransmit_rounds, round);
  Trace("tenant=" + std::to_string(tenant) + " transfer.retry round=" + std::to_string(round));
}

void Orchestrator::OnRestoreAttempt(uint32_t tenant) {
  sim::ActorScope actor(sim::kActorOrchestrator);
  tenants_guard_.Write();
  MigrationRecord* rec = ActiveRecord(tenant);
  if (rec == nullptr) {
    return;
  }
  ++rec->restore_attempts;
}

void Orchestrator::OnMigrationDone(uint32_t tenant, sim::TimePs resumed_at) {
  sim::ActorScope actor(sim::kActorOrchestrator);
  tenants_guard_.Write();
  health_guard_.Write();
  MigrationRecord* rec = ActiveRecord(tenant);
  auto it = tenants_.find(tenant);
  if (rec == nullptr || it == tenants_.end()) {
    return;
  }
  TenantBook& book = it->second;
  rec->resumed_at = resumed_at;
  rec->downtime = resumed_at - (rec->quiesced_at > 0 ? rec->quiesced_at : rec->started_at);

  const uint32_t old_node = book.node;
  const int32_t old_region = book.region;
  book.node = rec->dst_node;
  book.migrating = false;
  book.region = health_[rec->dst_node].regions.FindTenant(tenant);
  active_migration_.erase(tenant);
  Trace("tenant=" + std::to_string(tenant) + " resume node=" + std::to_string(book.node) +
        " downtime=" + std::to_string(rec->downtime) + " outcome=" + rec->outcome);

  // Source cleanup only applies to a live source (planned migration or
  // drain); an evacuated tenant's source is gone.
  if (health_[old_node].believed_alive && old_node != book.node) {
    ReleaseRegion(old_node, old_region);
    fleet_->PostToNode(fleet_->orch_logical_, old_node, 0, [this, old_node, tenant]() {
      fleet_->CleanupSource(old_node, tenant);
    });
  }
}

void Orchestrator::OnMigrationFailed(uint32_t tenant, const std::string& why) {
  sim::ActorScope actor(sim::kActorOrchestrator);
  tenants_guard_.Write();
  health_guard_.Write();
  MigrationRecord* rec = ActiveRecord(tenant);
  auto it = tenants_.find(tenant);
  if (rec == nullptr || it == tenants_.end()) {
    return;
  }
  TenantBook& book = it->second;
  Trace("tenant=" + std::to_string(tenant) + " migrate.fail why=" + why);

  // Release the destination reservation in every failure shape.
  const NodeHealth& dst = health_[rec->dst_node];
  for (uint32_t r = 0; r < dst.regions.size(); ++r) {
    if (dst.regions.tenant_at(r) == static_cast<int32_t>(tenant) &&
        static_cast<int32_t>(r) != book.region) {
      ReleaseRegion(rec->dst_node, static_cast<int32_t>(r));
    }
  }
  book.migrating = false;
  active_migration_.erase(tenant);

  if (why == "src.not_running") {
    rec->outcome = "abort.src_done";
    return;
  }
  if (health_[book.node].believed_alive) {
    // ROLLBACK: the source still holds the live state; resume it there.
    rec->outcome = "rollback." + why;
    ++rollbacks_;
    const uint32_t src = book.node;
    fleet_->PostToNode(fleet_->orch_logical_, src, 0,
                       [this, src, tenant]() { fleet_->ResumeAtSource(src, tenant); });
    return;
  }
  // Evacuation failed and there is no source to roll back to: degrade.
  rec->outcome = "shed";
  book.outcome = TenantOutcome::kShed;
  ++sheds_;
  Trace("tenant=" + std::to_string(tenant) + " shed why=" + why);
  CheckSettled();
}

void Orchestrator::OnRollbackResumed(uint32_t tenant, sim::TimePs resumed_at) {
  sim::ActorScope actor(sim::kActorOrchestrator);
  tenants_guard_.Write();
  // The record was already closed by OnMigrationFailed; stamp the downtime
  // on the most recent record for this tenant.
  for (auto rit = records_.rbegin(); rit != records_.rend(); ++rit) {
    if (rit->tenant == tenant) {
      rit->resumed_at = resumed_at;
      rit->downtime = resumed_at - (rit->quiesced_at > 0 ? rit->quiesced_at : rit->started_at);
      break;
    }
  }
  Trace("tenant=" + std::to_string(tenant) + " rollback.resumed");
}

void Orchestrator::OnTenantDone(uint32_t tenant) {
  sim::ActorScope actor(sim::kActorOrchestrator);
  tenants_guard_.Write();
  health_guard_.Write();
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.outcome != TenantOutcome::kRunning) {
    return;
  }
  TenantBook& book = it->second;
  book.outcome = TenantOutcome::kDone;
  ReleaseRegion(book.node, book.region);
  book.region = -1;
  Trace("tenant=" + std::to_string(tenant) + " done");
  // An evacuation may have been waiting on this tenant's region (it was
  // picked as a shed victim but finished first) — its region is free now.
  auto pit = pending_evacuations_.find(tenant);
  if (pit != pending_evacuations_.end()) {
    const uint32_t evacuee = pit->second;
    pending_evacuations_.erase(pit);
    EvacuateTenant(evacuee, "node.dead");
  }
  CheckSettled();
}

void Orchestrator::OnTenantShed(uint32_t tenant, const std::string& why) {
  sim::ActorScope actor(sim::kActorOrchestrator);
  tenants_guard_.Write();
  health_guard_.Write();
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.outcome != TenantOutcome::kRunning) {
    return;
  }
  TenantBook& book = it->second;
  book.outcome = TenantOutcome::kShed;
  ++sheds_;
  ReleaseRegion(book.node, book.region);
  book.region = -1;
  Trace("tenant=" + std::to_string(tenant) + " shed why=" + why);
  // A pending evacuation was waiting for this region.
  auto pit = pending_evacuations_.find(tenant);
  if (pit != pending_evacuations_.end()) {
    const uint32_t evacuee = pit->second;
    pending_evacuations_.erase(pit);
    EvacuateTenant(evacuee, "node.dead");
  }
  CheckSettled();
}

void Orchestrator::Sweep() {
  sim::ActorScope actor(sim::kActorOrchestrator);
  health_guard_.Write();
  const sim::TimePs now =
      fleet_->NowAt(fleet_->orch_logical_);
  const sim::TimePs window =
      fleet_->config_.dead_after_missed * fleet_->config_.heartbeat_period;
  for (auto& [node, h] : health_) {
    if (h.believed_alive && now - h.last_heartbeat_at > window) {
      DeclareDead(node);
    }
  }
}

void Orchestrator::DeclareDead(uint32_t node) {
  tenants_guard_.Write();
  health_guard_.Write();
  NodeHealth& h = health_[node];
  h.believed_alive = false;
  h.regions.CloseCapacity();
  ++deaths_declared_;
  Trace("node=" + std::to_string(node) + " dead");

  // A victim that was mid-shed on this node will never ack; release its
  // waiting evacuee back into the normal path below.
  std::vector<uint32_t> orphaned;
  for (auto it = pending_evacuations_.begin(); it != pending_evacuations_.end();) {
    const auto vit = tenants_.find(it->first);
    if (vit != tenants_.end() && vit->second.node == node) {
      orphaned.push_back(it->second);
      it = pending_evacuations_.erase(it);
    } else {
      ++it;
    }
  }

  std::vector<uint32_t> ids;
  for (const auto& [id, book] : tenants_) {
    (void)book;
    ids.push_back(id);
  }
  for (const uint32_t id : ids) {
    TenantBook& book = tenants_[id];
    if (book.outcome != TenantOutcome::kRunning) {
      continue;
    }
    if (book.migrating) {
      MigrationRecord* rec = ActiveRecord(id);
      if (rec != nullptr && rec->dst_node == node && health_[rec->src_node].believed_alive) {
        // Destination died mid-restore: roll back to the live source.
        rec->outcome = "rollback.dst_dead";
        ++rollbacks_;
        book.migrating = false;
        active_migration_.erase(id);
        const uint32_t src = rec->src_node;
        Trace("tenant=" + std::to_string(id) + " rollback.dst_dead");
        fleet_->PostToNode(fleet_->orch_logical_, src, 0,
                           [this, src, id]() { fleet_->ResumeAtSource(src, id); });
        continue;
      }
      if (rec != nullptr && rec->src_node == node) {
        // Source died mid-transfer: abandon the partial transfer and replay
        // the stored checkpoint instead.
        rec->outcome = "abort.src_dead";
        book.migrating = false;
        active_migration_.erase(id);
        if (health_[rec->dst_node].believed_alive) {
          const uint32_t dst = rec->dst_node;
          // The reserved destination region frees up for the evacuation
          // placement decision below.
          const int32_t reserved = health_[dst].regions.FindTenant(id);
          if (reserved >= 0) {
            ReleaseRegion(dst, reserved);
          }
          fleet_->PostToNode(fleet_->orch_logical_, dst, 0,
                             [this, dst, id]() { fleet_->AbandonInbound(dst, id); });
        }
        EvacuateTenant(id, "node.dead");
        continue;
      }
      continue;
    }
    if (book.node == node) {
      EvacuateTenant(id, "node.dead");
    }
  }
  for (const uint32_t evacuee : orphaned) {
    const auto eit = tenants_.find(evacuee);
    if (eit != tenants_.end() && eit->second.outcome == TenantOutcome::kRunning &&
        !eit->second.migrating) {
      EvacuateTenant(evacuee, "node.dead");
    }
  }
}

bool Orchestrator::FindFreeRegion(uint32_t* node_out, int32_t* region_out) const {
  for (const auto& [node, h] : health_) {
    if (!h.believed_alive) {
      continue;
    }
    const int32_t r = h.regions.FindFree();
    if (r >= 0) {
      *node_out = node;
      *region_out = r;
      return true;
    }
  }
  return false;
}

bool Orchestrator::FindShedVictim(uint32_t below_priority, uint32_t* victim_out) const {
  bool found = false;
  uint32_t best_prio = 0;
  uint32_t best_id = 0;
  for (const auto& [id, book] : tenants_) {
    if (book.outcome != TenantOutcome::kRunning || book.migrating ||
        !health_.at(book.node).believed_alive || book.spec.priority >= below_priority ||
        pending_evacuations_.find(id) != pending_evacuations_.end()) {
      continue;  // a victim already slated for another evacuee stays claimed
    }
    // Lowest priority loses; equal priorities shed the higher tenant id.
    if (!found || book.spec.priority < best_prio ||
        (book.spec.priority == best_prio && id > best_id)) {
      found = true;
      best_prio = book.spec.priority;
      best_id = id;
    }
  }
  if (found) {
    *victim_out = best_id;
  }
  return found;
}

void Orchestrator::EvacuateTenant(uint32_t tenant, const std::string& reason) {
  tenants_guard_.Write();
  health_guard_.Write();
  ckpt_guard_.Read();
  TenantBook& book = tenants_[tenant];
  uint32_t dst = 0;
  int32_t region = -1;
  if (!FindFreeRegion(&dst, &region)) {
    uint32_t victim = 0;
    if (FindShedVictim(book.spec.priority, &victim)) {
      // Shed the victim first; its ack re-enters EvacuateTenant with a free
      // region. Deterministic: the shed command and the ack both ride the
      // ordered mailbox streams.
      pending_evacuations_[victim] = tenant;
      const uint32_t victim_node = tenants_[victim].node;
      Trace("tenant=" + std::to_string(victim) + " shed.request evacuee=" +
            std::to_string(tenant));
      fleet_->PostToNode(fleet_->orch_logical_, victim_node, 0, [this, victim_node, victim]() {
        fleet_->ShedTenant(victim_node, victim);
      });
      return;
    }
    // Nobody to displace: the evacuee itself degrades.
    book.outcome = TenantOutcome::kShed;
    ++sheds_;
    Trace("tenant=" + std::to_string(tenant) + " shed why=capacity");
    CheckSettled();
    return;
  }

  ReserveRegion(dst, region, tenant);
  book.migrating = true;
  ++evacuations_;

  MigrationRecord rec;
  rec.tenant = tenant;
  rec.src_node = book.node;
  rec.dst_node = dst;
  rec.reason = reason;
  const sim::TimePs now =
      fleet_->NowAt(fleet_->orch_logical_);
  rec.started_at = now;
  rec.quiesced_at = now;  // downtime for an evacuation runs from detection

  auto cit = ckpt_store_.find(tenant);
  if (cit != ckpt_store_.end()) {
    rec.outcome = "evacuated";
    rec.ckpt_bytes = cit->second.blob.size();
    rec.ckpt_pages = cit->second.pages;
    const uint32_t chunks = static_cast<uint32_t>(
        (cit->second.blob.size() + fleet_->config_.chunk_bytes - 1) /
        fleet_->config_.chunk_bytes);
    rec.chunks = chunks;
    active_migration_[tenant] = records_.size();
    records_.push_back(std::move(rec));
    Trace("tenant=" + std::to_string(tenant) + " evacuate dst=" + std::to_string(dst) +
          " region=" + std::to_string(region) + " bytes=" +
          std::to_string(cit->second.blob.size()));
    std::vector<uint32_t> ids(chunks);
    for (uint32_t i = 0; i < chunks; ++i) {
      ids[i] = i;
    }
    fleet_->SendChunks(fleet_->orch_logical_, dst, tenant, cit->second.blob, ids, chunks,
                       /*round=*/0, region, /*extra_delay=*/0);
    return;
  }

  // No checkpoint yet: restart from scratch on the survivor.
  rec.outcome = "evacuated.fresh";
  active_migration_[tenant] = records_.size();
  records_.push_back(std::move(rec));
  Trace("tenant=" + std::to_string(tenant) + " evacuate.fresh dst=" + std::to_string(dst) +
        " region=" + std::to_string(region));
  const TenantSpec spec = book.spec;
  fleet_->PostToNode(fleet_->orch_logical_, dst, 0, [this, dst, tenant, spec, region]() {
    fleet_->StartTenantFresh(dst, tenant, spec, region);
    const sim::TimePs resumed = fleet_->NowAt(dst);
    fleet_->PostToOrch(dst, 0,
                       [this, tenant, resumed]() { OnMigrationDone(tenant, resumed); });
  });
}

void Orchestrator::CheckSettled() {
  if (settled_) {
    return;
  }
  for (const auto& [id, book] : tenants_) {
    (void)id;
    if (book.outcome == TenantOutcome::kRunning) {
      return;
    }
  }
  settled_ = true;
  settled_at_ = fleet_->NowAt(fleet_->orch_logical_);
  Trace("settled");
}

bool Orchestrator::AllSettled() const { return settled_; }

}  // namespace runtime
}  // namespace coyote
