file(REMOVE_RECURSE
  "libcoyote_runtime.a"
)
