#include "tools/coyote_frontend/frontend.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace coyote {
namespace frontend {
namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Fills lexed->stmt_start: every line that carries tokens maps to the line of
// the first token of its enclosing statement. Statement breakers are `;` at
// parenthesis depth 0 (so a multi-line `for (...;...;...)` header stays one
// statement), `{`, `}`, and the end of a preprocessor directive (a `#`
// statement ends with its line).
void ComputeStatementStarts(LexedFile* lexed) {
  uint32_t stmt_begin = 0;
  bool in_directive = false;
  int paren_depth = 0;
  uint32_t prev_line = 0;
  for (const Token& t : lexed->tokens) {
    if (in_directive && t.line != prev_line) {
      in_directive = false;
      stmt_begin = 0;
    }
    if (stmt_begin == 0) {
      stmt_begin = t.line;
      paren_depth = 0;
    }
    lexed->stmt_start.emplace(t.line, stmt_begin);
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(") {
        ++paren_depth;
      } else if (t.text == ")") {
        paren_depth = std::max(0, paren_depth - 1);
      } else if (t.text == "#") {
        in_directive = true;
        stmt_begin = t.line;
        lexed->stmt_start[t.line] = stmt_begin;
      } else if ((t.text == ";" && paren_depth == 0) || t.text == "{" || t.text == "}") {
        stmt_begin = 0;  // next token opens a new statement
      }
    }
    prev_line = t.line;
  }
}

}  // namespace

LexedFile Lex(const std::string& src) {
  LexedFile out;
  uint32_t line = 1;
  size_t i = 0;
  const size_t n = src.size();
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const size_t start = i;
      while (i < n && src[i] != '\n') {
        ++i;
      }
      out.comments[line] += src.substr(start, i - start);
      continue;
    }
    // Block comment (text attributed to every line it spans).
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      std::string text;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') {
          out.comments[line] += text;
          text.clear();
          ++line;
        } else {
          text += src[i];
        }
        ++i;
      }
      out.comments[line] += text;
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') {
        delim += src[j++];
      }
      const std::string close = ")" + delim + "\"";
      const size_t end = src.find(close, j);
      const size_t stop = (end == std::string::npos) ? n : end + close.size();
      const size_t body = j + 1;
      const std::string content =
          (end == std::string::npos || end < body) ? "" : src.substr(body, end - body);
      for (size_t k = i; k < stop; ++k) {
        if (src[k] == '\n') {
          ++line;
        }
      }
      out.tokens.push_back({TokKind::kString, content, line});
      i = stop;
      continue;
    }
    // String / char literal. String content is retained (the analyzer checks
    // AccessGuard registration names); char literals carry no text.
    if (c == '"' || c == '\'') {
      const char quote = c;
      size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) {
          ++j;
        }
        if (src[j] == '\n') {
          ++line;
        }
        ++j;
      }
      out.tokens.push_back({quote == '"' ? TokKind::kString : TokKind::kChar,
                            quote == '"' ? src.substr(i + 1, j - i - 1) : std::string(), line});
      i = j + 1;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(src[j])) {
        ++j;
      }
      out.tokens.push_back({TokKind::kIdent, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && (IsIdentChar(src[j]) || src[j] == '.' || src[j] == '\'')) {
        ++j;
      }
      out.tokens.push_back({TokKind::kNumber, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation; combine "::" and "->".
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.tokens.push_back({TokKind::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      out.tokens.push_back({TokKind::kPunct, "->", line});
      i += 2;
      continue;
    }
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  ComputeStatementStarts(&out);
  return out;
}

namespace {

// The candidate lines a suppression for a finding at `line` may sit on: the
// line itself, the line above, and — when the finding sits on a continuation
// line of a multi-line statement — the statement's first line and the line
// above that.
std::vector<uint32_t> SuppressionLines(const LexedFile& lexed, uint32_t line) {
  std::vector<uint32_t> lines = {line};
  if (line > 1) {
    lines.push_back(line - 1);
  }
  auto it = lexed.stmt_start.find(line);
  if (it != lexed.stmt_start.end() && it->second != line) {
    lines.push_back(it->second);
    if (it->second > 1) {
      lines.push_back(it->second - 1);
    }
  }
  return lines;
}

bool CommentHasTag(const std::string& comment, const std::string& tag) {
  return comment.find("lint:") != std::string::npos && comment.find(tag) != std::string::npos;
}

}  // namespace

bool Suppressed(const LexedFile& lexed, uint32_t line, const std::string& tag) {
  for (uint32_t l : SuppressionLines(lexed, line)) {
    auto it = lexed.comments.find(l);
    if (it != lexed.comments.end() && CommentHasTag(it->second, tag)) {
      return true;
    }
  }
  return false;
}

bool SuppressedWithReason(const LexedFile& lexed, uint32_t line, const std::string& tag,
                          std::string* reason) {
  for (uint32_t l : SuppressionLines(lexed, line)) {
    auto it = lexed.comments.find(l);
    if (it == lexed.comments.end() || !CommentHasTag(it->second, tag)) {
      continue;
    }
    std::string text = it->second.substr(it->second.find(tag) + tag.size());
    // Trim separators and whitespace off both ends.
    const auto is_sep = [](char c) {
      return std::isspace(static_cast<unsigned char>(c)) || c == ':' || c == '-' || c == ',' ||
             static_cast<unsigned char>(c) >= 0x80;  // em-dash bytes
    };
    size_t b = 0;
    while (b < text.size() && is_sep(text[b])) {
      ++b;
    }
    size_t e = text.size();
    while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) {
      --e;
    }
    *reason = text.substr(b, e - b);
    return true;
  }
  return false;
}

bool HasFileAnnotation(const LexedFile& lexed, const std::string& tag) {
  // File-level annotations live in the leading comment block, before the
  // first code token — a tag mentioned in prose deeper in the file (rule
  // documentation, a fixture describing the syntax) must not annotate it.
  const uint32_t first_code_line = lexed.tokens.empty() ? ~0u : lexed.tokens.front().line;
  for (const auto& [line, comment] : lexed.comments) {
    if (line > first_code_line) {
      break;
    }
    if (CommentHasTag(comment, tag)) {
      return true;
    }
  }
  return false;
}

bool IsHeaderPath(const std::string& path) {
  return path.size() > 2 &&
         (path.rfind(".h") == path.size() - 2 || path.rfind(".hpp") == path.size() - 4);
}

bool PrevIsMemberAccess(const std::vector<Token>& toks, size_t i) {
  const Token* p = Prev(toks, i);
  return p != nullptr && p->kind == TokKind::kPunct && (p->text == "." || p->text == "->");
}

const std::set<std::string>& CallPrefixKeywords() {
  static const std::set<std::string> kw = {"return",   "if",    "while", "for",     "do",
                                           "else",     "case",  "co_return", "switch",
                                           "not",      "and",   "or",    "co_await"};
  return kw;
}

const std::set<std::string>& NonCallKeywords() {
  static const std::set<std::string> kw = {
      "if",     "for",      "while",    "switch",  "catch",     "return", "sizeof",
      "alignof", "alignas", "decltype", "static_assert",        "new",    "delete",
      "typeid", "noexcept", "assert",   "defined", "co_await",  "co_return", "co_yield",
      "static_cast", "dynamic_cast",    "const_cast",           "reinterpret_cast"};
  return kw;
}

bool LooksLikeCall(const std::vector<Token>& toks, size_t i) {
  const Token* nx = Next(toks, i);
  if (nx == nullptr || nx->text != "(") {
    return false;
  }
  if (PrevIsMemberAccess(toks, i)) {
    return false;
  }
  const Token* p = Prev(toks, i);
  if (p != nullptr && p->kind == TokKind::kIdent && CallPrefixKeywords().count(p->text) == 0) {
    return false;  // "Type name(...)" declaration, not a call
  }
  return true;
}

std::string JoinIncludeName(const std::vector<Token>& toks, size_t lt, size_t* end_index) {
  std::string name;
  size_t j = lt + 1;
  while (j < toks.size() && toks[j].text != ">") {
    name += toks[j].text;
    ++j;
  }
  *end_index = j;
  return name;
}

std::vector<std::string> CollectFiles(const std::string& root_dir,
                                      const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  static const std::set<std::string> kExtensions = {".h", ".hpp", ".cc", ".cpp"};
  const auto skip_dir = [](const std::string& name) {
    return name.rfind("build", 0) == 0 || name == "CMakeFiles" || name == "lint_fixtures" ||
           name == "analyzer_fixtures" || name == "third_party" ||
           (!name.empty() && name[0] == '.');
  };

  std::vector<std::string> out;
  const fs::path base(root_dir);
  for (const std::string& root : roots) {
    const fs::path p = base / root;
    std::error_code ec;
    if (fs::is_regular_file(p, ec)) {
      out.push_back(root);
      continue;
    }
    if (!fs::is_directory(p, ec)) {
      continue;
    }
    fs::recursive_directory_iterator it(p, fs::directory_options::skip_permission_denied, ec);
    for (; it != fs::recursive_directory_iterator(); it.increment(ec)) {
      const fs::path& entry = it->path();
      if (it->is_directory(ec)) {
        if (skip_dir(entry.filename().string())) {
          it.disable_recursion_pending();
        }
        continue;
      }
      if (kExtensions.count(entry.extension().string()) != 0) {
        out.push_back(fs::relative(entry, base, ec).generic_string());
      }
    }
  }
  // Directory iteration order is unspecified; sort for deterministic reports.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<SourceFile> ReadFiles(const std::string& root_dir,
                                  const std::vector<std::string>& relative_paths) {
  namespace fs = std::filesystem;
  std::vector<SourceFile> files;
  files.reserve(relative_paths.size());
  for (const std::string& rel : relative_paths) {
    std::ifstream in(fs::path(root_dir) / rel, std::ios::binary);
    std::ostringstream content;
    content << in.rdbuf();
    files.emplace_back(rel, content.str());
  }
  return files;
}

uint64_t Fnv1a(const std::string& data) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace frontend
}  // namespace coyote
