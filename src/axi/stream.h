// AXI4-Stream channel model.
//
// Coyote v2's unified application interface is built from AXI4 streams
// (paper §7.1): parallel host/card/network streams into and out of each
// vFPGA, each 512 bits wide with TID tagging for cThread multiplexing.
//
// The substrate models streams at *transfer* granularity: a StreamPacket is a
// contiguous run of beats carrying real payload bytes plus the sideband
// fields (TID = issuing cThread, TDEST = target stream, TLAST on the final
// packet of a transfer). A Stream is a bounded FIFO with ready/valid
// semantics — Push fails when full, which is how backpressure propagates,
// and registered callbacks model the valid/ready edges.

#ifndef SRC_AXI_STREAM_H_
#define SRC_AXI_STREAM_H_

#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <string>
#include <utility>

#include "src/axi/buffer.h"
#include "src/sim/access_guard.h"
#include "src/sim/callback.h"

namespace coyote {
namespace axi {

// Width of the shell data path: 512-bit AXI4 streams (64 bytes/beat).
inline constexpr uint32_t kDataBusBytes = 64;

struct StreamPacket {
  // Zero-copy payload slice: forwarding a packet (or segmenting it) shares
  // the underlying bytes; only mutation copies (see src/axi/buffer.h).
  BufferView data;
  uint32_t tid = 0;    // issuing cThread / client id (AXI TID)
  uint32_t tdest = 0;  // destination stream index (AXI TDEST)
  bool last = true;    // TLAST on the final beat of this transfer

  uint64_t size_bytes() const { return data.size(); }
  // Number of 512-bit beats this packet occupies on the wire.
  uint64_t beats() const { return (data.size() + kDataBusBytes - 1) / kDataBusBytes; }
};

class Stream {
 public:
  using Callback = sim::InlineCallback;

  explicit Stream(size_t capacity_packets = std::numeric_limits<size_t>::max(),
                  std::string name = "stream")
      : capacity_(capacity_packets), name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  bool CanPush() const { return fifo_.size() < capacity_; }
  bool Empty() const { return fifo_.empty(); }
  size_t size() const { return fifo_.size(); }
  size_t capacity() const { return capacity_; }

  // Pushes one packet; returns false (and drops nothing) if the FIFO is full.
  // On success fires the on-data callback (the "valid" edge).
  // Take-by-value + move: the FIFO assumes ownership; producers std::move in,
  // and the payload itself is a ref-counted BufferView, so "copy" is a
  // pointer bump even when they don't.
  bool Push(StreamPacket packet) {  // lint: hot-copy-ok
    if (!CanPush()) {
      return false;
    }
    guard_.Write();
    total_bytes_ += packet.size_bytes();
    ++total_packets_;
    fifo_.push_back(std::move(packet));
    if (on_data_) {
      on_data_();
    }
    return true;
  }

  // Pops the head packet, if any. Fires the on-space callback (the "ready"
  // edge) so stalled producers can resume.
  std::optional<StreamPacket> Pop() {
    if (fifo_.empty()) {
      return std::nullopt;
    }
    guard_.Write();
    StreamPacket p = std::move(fifo_.front());
    fifo_.pop_front();
    if (on_space_) {
      on_space_();
    }
    return p;
  }

  const StreamPacket* Peek() const { return fifo_.empty() ? nullptr : &fifo_.front(); }

  // Drops every queued packet without firing callbacks; returns how many were
  // discarded. Models a region-level flush during recovery: stale data from a
  // quarantined kernel must not leak into the next tenant of the region.
  size_t Clear() {
    guard_.Write();
    const size_t n = fifo_.size();
    fifo_.clear();
    return n;
  }

  void set_on_data(Callback cb) { on_data_ = std::move(cb); }
  void set_on_space(Callback cb) { on_space_ = std::move(cb); }

  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t total_packets() const { return total_packets_; }

 private:
  size_t capacity_;
  std::string name_;
  sim::AccessGuard guard_{"axi.stream"};
  std::deque<StreamPacket> fifo_;
  Callback on_data_;
  Callback on_space_;
  uint64_t total_bytes_ = 0;
  uint64_t total_packets_ = 0;
};

}  // namespace axi
}  // namespace coyote

#endif  // SRC_AXI_STREAM_H_
