// Sharded parallel discrete-event simulation (conservative PDES).
//
// Partitions a simulation into `num_shards` shards, each owning one
// calendar-queue Engine driven by its own worker thread. Synchronization is
// conservative and window-based (a.k.a. bounded-lag BSP):
//
//   1. The coordinator computes the global minimum pending timestamp T across
//      all shards and opens the window [T, T + lookahead).
//   2. Every shard executes its local events with timestamp strictly below
//      the window end, in parallel, touching only shard-owned state.
//   3. Cross-shard interaction goes exclusively through Post(): the event is
//      placed in the sending shard's bounded SPSC outbox with a delivery time
//      clamped to at least sender-now + lookahead, so nothing ever needs to
//      be delivered into the window still executing.
//   4. At the window barrier the coordinator drains every outbox, sorts the
//      messages by the MERGE ORDER (below) and schedules them into their
//      destination shards; then the next window opens.
//
// MERGE ORDER (part of the engine contract — tests and fingerprints depend
// on it): messages are delivered in ascending
//
//     (timestamp, order_key, source shard id, source sequence number)
//
// where order_key defaults to the source shard id and may be overridden with
// the sending *logical node* id. Because each shard's execution is
// deterministic, its outbox content and sequence numbers are deterministic,
// so the merged delivery order is identical run-to-run regardless of thread
// scheduling — and, when order_key identifies logical nodes, identical
// across shard counts too. Equal-timestamp messages drained at *different*
// barriers are ordered by barrier (earlier barrier first); with
// lookahead-clamped posting and no backpressure truncation, the barrier an
// event is drained at is itself invariant, which is what makes N-shard runs
// observably identical to the 1-shard reference.
//
// Determinism argument, in full (see DESIGN.md "Sharded PDES engine"):
//   - each shard's Engine orders events by (time, insertion seq) — FIFO among
//     equal timestamps — and is single-threaded;
//   - window boundaries depend only on the global minimum pending timestamp
//     and the lookahead, both deterministic and placement-invariant;
//   - barrier merge order is the specified total order above;
//   - shard-owned state is never touched across shards (enforced by
//     sim::AccessGuard::BindShard in guarded builds).
//
// Lookahead comes from the modeled inter-node link latency: no frame can
// cross the simulated switch in less than net::Network::MinCrossNodeLatencyPs,
// so node-partitioned simulations get that much conservative slack for free.
//
// Backpressure: when a shard's outbox ring fills, the overflowing message
// spills to an unbounded same-thread list and the shard's current window is
// truncated (it simply stops early; unexecuted events stay queued for the
// next window). Truncation depends only on the shard's own deterministic
// event stream, so runs remain bit-identical for a fixed configuration.

#ifndef SRC_SIM_SHARDED_ENGINE_H_
#define SRC_SIM_SHARDED_ENGINE_H_

// Thread primitives are banned in simulation code (engine callbacks must
// never block), but this file IS the coordination layer: workers block only
// between windows, never inside a callback.
#include <condition_variable>  // lint: blocking-ok
#include <cstdint>
#include <memory>
#include <mutex>  // lint: blocking-ok
#include <thread>  // lint: blocking-ok
#include <vector>

#include "src/sim/access_guard.h"
#include "src/sim/callback.h"
#include "src/sim/engine.h"
#include "src/sim/mailbox.h"
#include "src/sim/time.h"

namespace coyote {
namespace sim {

class ShardedEngine {
 public:
  using Callback = InlineCallback;

  struct Config {
    uint32_t num_shards = 1;
    // Conservative synchronization horizon. Must be > 0 when num_shards > 1;
    // derive it from the modeled inter-node link latency
    // (net::Network::MinCrossNodeLatencyPs) for node-partitioned simulations.
    TimePs lookahead = 0;
    // Per-source-shard outbox ring capacity (messages per window before the
    // backpressure policy truncates the window).
    size_t mailbox_capacity = 4096;
    // false: run every shard's window sequentially on the calling thread —
    // the reference mode conformance tests compare against to prove results
    // do not depend on thread scheduling.
    bool use_threads = true;
  };

  struct Stats {
    uint64_t windows = 0;
    uint64_t cross_shard_messages = 0;
    // Posts whose requested delivery time violated the lookahead contract
    // and were clamped forward to sender-now + lookahead.
    uint64_t lookahead_violations = 0;
    // Windows truncated because an outbox ring filled.
    uint64_t backpressure_stalls = 0;
    // Deliveries into a shard that had no pending events (an idle shard
    // woken across the horizon).
    uint64_t idle_wakeups = 0;
  };

  explicit ShardedEngine(const Config& config);
  ~ShardedEngine();
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  TimePs lookahead() const { return config_.lookahead; }

  // The shard's engine, for host-side setup (attaching models, reading
  // results) and for shard-local scheduling from inside callbacks. Only the
  // owning shard's callbacks may schedule on it during a run.
  Engine& shard(uint32_t s) { return *shards_[s]->engine; }
  const Engine& shard(uint32_t s) const { return *shards_[s]->engine; }

  // Host-side: places a local event on shard `s`. Call only between runs /
  // before the first window (never from another shard's callback).
  void ScheduleOn(uint32_t s, TimePs t, Callback cb) {
    shards_[s]->engine->ScheduleAt(t, std::move(cb));
  }

  // Cross-shard post, callable only from a shard execution context (the
  // calling thread must be bound to a shard — worker threads are, and the
  // sequential mode binds via ShardScope). Delivery is clamped to at least
  // sender-now + lookahead; clamps count as lookahead_violations. order_key
  // selects the merge stream (see MERGE ORDER above): pass the sending
  // logical node's id for placement-invariant ordering, or omit it to use
  // the source shard id.
  void Post(uint32_t dst_shard, TimePs t, Callback cb);
  void Post(uint32_t dst_shard, TimePs t, Callback cb, uint32_t order_key);

  // Runs windows until every shard is idle. Returns events executed.
  uint64_t RunUntilIdle();
  // Runs events with timestamp <= deadline; advances every shard's clock to
  // `deadline` if it drains earlier. Returns events executed.
  uint64_t RunUntil(TimePs deadline);

  bool Idle() const;
  // Sum over shards (mailboxes are always empty between runs).
  uint64_t events_executed() const;
  const Stats& stats() const { return stats_; }

 private:
  struct CrossShardEvent {
    TimePs time = 0;
    uint32_t dst = 0;
    uint32_t order_key = 0;
    uint32_t src = 0;
    uint64_t seq = 0;
    Callback cb;
  };

  struct Shard {
    explicit Shard(size_t mailbox_capacity) : outbox(mailbox_capacity) {}
    std::unique_ptr<Engine> engine;
    // Written only by this shard's worker during a window; drained only by
    // the coordinator at the barrier.
    SpscMailbox<CrossShardEvent> outbox;
    std::vector<CrossShardEvent> overflow;  // spill when the ring fills
    bool stall = false;                     // truncate this window (backpressure)
    uint64_t next_seq = 0;
    uint64_t lookahead_clamps = 0;
    uint64_t executed_in_window = 0;
  };

  static constexpr TimePs kNoDeadline = ~TimePs{0};

  // One barrier-synchronized window ending (exclusively) at `window_end`.
  void ExecuteWindow(TimePs window_end);
  void RunShardWindow(uint32_t s, TimePs window_end);
  // Drains all outboxes, merge-sorts, schedules into destinations.
  void DeliverMailboxes();
  uint64_t RunWindows(TimePs deadline);
  void WorkerMain(uint32_t s);

  Config config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  Stats stats_;
  std::vector<CrossShardEvent> merge_scratch_;

  // Worker coordination. window_end_ / shard state are only written while
  // every worker is parked (remaining_ == 0), and the generation handshake
  // through mu_ orders those writes before the workers' reads.
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  uint64_t generation_ = 0;
  uint32_t remaining_ = 0;
  TimePs window_end_ = 0;
  bool quit_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sim
}  // namespace coyote

#endif  // SRC_SIM_SHARDED_ENGINE_H_
