#include "src/sim/sharded_engine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <tuple>

namespace coyote {
namespace sim {

namespace {

TimePs SaturatingAdd(TimePs a, TimePs b) {
  const TimePs sum = a + b;
  return sum < a ? ~TimePs{0} : sum;
}

}  // namespace

ShardedEngine::ShardedEngine(const Config& config) : config_(config) {
  if (config_.num_shards == 0) {
    std::fprintf(stderr, "ShardedEngine: num_shards must be >= 1\n");
    std::abort();
  }
  if (config_.num_shards > 1 && config_.lookahead == 0) {
    // Zero lookahead makes every window degenerate (no event is strictly
    // below its own timestamp) — the conservative protocol cannot make
    // progress. Callers must derive a positive horizon from the model, e.g.
    // net::Network::MinCrossNodeLatencyPs().
    std::fprintf(stderr, "ShardedEngine: num_shards > 1 requires lookahead > 0\n");
    std::abort();
  }
  AccessLedger::Global().ConfigureShards(config_.num_shards);
  shards_.reserve(config_.num_shards);
  for (uint32_t s = 0; s < config_.num_shards; ++s) {
    auto shard = std::make_unique<Shard>(config_.mailbox_capacity);
    shard->engine = std::make_unique<Engine>();
    shards_.push_back(std::move(shard));
  }
  if (config_.use_threads) {
    workers_.reserve(config_.num_shards);
    for (uint32_t s = 0; s < config_.num_shards; ++s) {
      workers_.emplace_back([this, s] { WorkerMain(s); });
    }
  }
}

ShardedEngine::~ShardedEngine() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      quit_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& w : workers_) {
      w.join();
    }
  }
}

void ShardedEngine::Post(uint32_t dst_shard, TimePs t, Callback cb) {
  Post(dst_shard, t, std::move(cb), AccessLedger::Global().current_shard());
}

void ShardedEngine::Post(uint32_t dst_shard, TimePs t, Callback cb, uint32_t order_key) {
  const ShardId src = AccessLedger::Global().current_shard();
  if (src == kNoShard || src >= shards_.size()) {
    // Host-side code must use ScheduleOn(): Post's lookahead clamp needs a
    // sending shard clock, and the merge order needs a source lane.
    std::fprintf(stderr, "ShardedEngine::Post called outside a shard execution context\n");  // lint: callback-blocking-ok fatal diagnostic immediately before abort
    std::abort();
  }
  Shard& shard = *shards_[src];
  const TimePs min_t = SaturatingAdd(shard.engine->Now(), config_.lookahead);
  if (t < min_t) {
    t = min_t;
    ++shard.lookahead_clamps;
  }
  CrossShardEvent ev;
  ev.time = t;
  ev.dst = dst_shard;
  ev.order_key = order_key == kNoShard ? src : order_key;
  ev.src = src;
  ev.seq = shard.next_seq++;
  ev.cb = std::move(cb);
  if (!shard.outbox.TryPush(std::move(ev))) {
    // Ring full: spill (same thread, unbounded) and truncate this shard's
    // window so pressure propagates back deterministically.
    shard.overflow.push_back(std::move(ev));
    shard.stall = true;
  }
}

void ShardedEngine::RunShardWindow(uint32_t s, TimePs window_end) {
  Shard& shard = *shards_[s];
  // Workers are permanently bound via RegisterShardThread; re-binding here is
  // a cheap no-op for them and is what attributes the sequential (reference)
  // mode's execution to the right shard.
  ShardScope scope(s);
  Engine& engine = *shard.engine;
  shard.executed_in_window = 0;
  TimePs t = 0;
  while (!shard.stall && engine.PeekNextTime(&t) && t < window_end) {
    engine.Step();
    ++shard.executed_in_window;
  }
}

void ShardedEngine::ExecuteWindow(TimePs window_end) {
  if (workers_.empty()) {
    for (uint32_t s = 0; s < num_shards(); ++s) {
      RunShardWindow(s, window_end);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    window_end_ = window_end;
    remaining_ = num_shards();
    ++generation_;
  }
  cv_work_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return remaining_ == 0; });
}

void ShardedEngine::WorkerMain(uint32_t s) {
  AccessLedger::Global().RegisterShardThread(s);
  uint64_t seen_generation = 0;
  for (;;) {
    TimePs window_end = 0;
    {
      // Workers sleep between windows, never inside an event callback.
      // lint: callback-blocking-ok window-barrier handshake
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] {  // lint: callback-blocking-ok window barrier
        return quit_ || generation_ != seen_generation;
      });
      if (quit_) {
        return;
      }
      seen_generation = generation_;
      window_end = window_end_;
    }
    RunShardWindow(s, window_end);
    {
      // lint: callback-blocking-ok window-barrier handshake (between windows)
      std::lock_guard<std::mutex> lock(mu_);
      --remaining_;
    }
    cv_done_.notify_one();
  }
}

void ShardedEngine::DeliverMailboxes() {
  merge_scratch_.clear();
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    shard.outbox.Drain(&merge_scratch_);
    for (CrossShardEvent& ev : shard.overflow) {
      merge_scratch_.push_back(std::move(ev));
    }
    shard.overflow.clear();
    if (shard.stall) {
      ++stats_.backpressure_stalls;
      shard.stall = false;
    }
    stats_.lookahead_violations += shard.lookahead_clamps;
    shard.lookahead_clamps = 0;
  }
  if (merge_scratch_.empty()) {
    return;
  }
  // THE merge order — see the header contract. Total (no two events share
  // (src, seq)), so std::sort suffices.
  std::sort(merge_scratch_.begin(), merge_scratch_.end(),
            [](const CrossShardEvent& a, const CrossShardEvent& b) {
              return std::tie(a.time, a.order_key, a.src, a.seq) <
                     std::tie(b.time, b.order_key, b.src, b.seq);
            });
  for (CrossShardEvent& ev : merge_scratch_) {
    Engine& dst = *shards_[ev.dst]->engine;
    if (dst.Idle()) {
      ++stats_.idle_wakeups;
    }
    dst.ScheduleAt(ev.time, std::move(ev.cb));
  }
  stats_.cross_shard_messages += merge_scratch_.size();
  merge_scratch_.clear();
}

uint64_t ShardedEngine::RunWindows(TimePs deadline) {
  uint64_t executed = 0;
  for (;;) {
    // Global conservative horizon: min pending timestamp across shards.
    // Workers are parked here, so probing their engines is race-free.
    bool any_pending = false;
    TimePs next = ~TimePs{0};
    for (auto& shard : shards_) {
      TimePs t = 0;
      if (shard->engine->PeekNextTime(&t)) {
        any_pending = true;
        next = std::min(next, t);
      }
    }
    if (!any_pending || next > deadline) {
      break;
    }
    TimePs window_end;
    if (num_shards() == 1 && config_.lookahead == 0) {
      // Degenerate single-shard case: no synchronization needed, run the
      // whole horizon in one window (matches a plain Engine exactly).
      window_end = ~TimePs{0};
    } else {
      window_end = SaturatingAdd(next, config_.lookahead);
    }
    if (deadline != kNoDeadline) {
      window_end = std::min(window_end, SaturatingAdd(deadline, 1));
    }
    ExecuteWindow(window_end);
    for (auto& shard : shards_) {
      executed += shard->executed_in_window;
    }
    DeliverMailboxes();
    ++stats_.windows;
  }
  if (deadline != kNoDeadline) {
    // Nothing actionable remains at or before the deadline (every shard's
    // next event, if any, lies beyond it) — advance all clocks to it.
    for (auto& shard : shards_) {
      shard->engine->RunUntil(deadline);
    }
  }
  // Sequential (reference) mode drains windows with bare Step() on the
  // calling thread: close the last event's race-detection epoch so host code
  // resuming after this run is not treated as concurrent with it. (Threaded
  // workers close their own epochs via Engine::RunUntil above.)
  AccessLedger& ledger = AccessLedger::Global();
  if (ledger.enabled()) {
    ledger.AdvanceEpoch();
  }
  return executed;
}

uint64_t ShardedEngine::RunUntilIdle() { return RunWindows(kNoDeadline); }

uint64_t ShardedEngine::RunUntil(TimePs deadline) { return RunWindows(deadline); }

bool ShardedEngine::Idle() const {
  for (const auto& shard : shards_) {
    if (!shard->engine->Idle()) {
      return false;
    }
  }
  return true;
}

uint64_t ShardedEngine::events_executed() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->engine->events_executed();
  }
  return total;
}

}  // namespace sim
}  // namespace coyote
