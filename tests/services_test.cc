// Unit tests for the functional service cores: AES (FIPS-197 / SP 800-38A
// vectors), HyperLogLog, the quantized MLP, and the stream-kernel timing.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>
#include <vector>

#include "src/services/aes.h"
#include "src/services/db_scan.h"
#include "src/services/hll.h"
#include "src/services/nn.h"
#include "src/services/stream_kernel.h"
#include "src/services/vector_kernels.h"
#include "src/sim/rng.h"
#include "src/vfpga/vfpga.h"

namespace coyote {
namespace services {
namespace {

std::array<uint8_t, 16> HexBlock(const char* hex) {
  std::array<uint8_t, 16> out{};
  for (int i = 0; i < 16; ++i) {
    unsigned v = 0;
    sscanf(hex + 2 * i, "%02x", &v);
    out[i] = static_cast<uint8_t>(v);
  }
  return out;
}

TEST(AesTest, Fips197AppendixCVector) {
  // FIPS-197 Appendix C.1: AES-128.
  const auto key = HexBlock("000102030405060708090a0b0c0d0e0f");
  const auto plain = HexBlock("00112233445566778899aabbccddeeff");
  const auto expect = HexBlock("69c4e0d86a7b0430d8cdb78070b4c55a");
  Aes128 aes(key);
  uint8_t out[16];
  aes.EncryptBlock(plain.data(), out);
  EXPECT_EQ(0, std::memcmp(out, expect.data(), 16));
  uint8_t back[16];
  aes.DecryptBlock(out, back);
  EXPECT_EQ(0, std::memcmp(back, plain.data(), 16));
}

TEST(AesTest, Sp80038aEcbVectors) {
  // NIST SP 800-38A F.1.1 (ECB-AES128.Encrypt), blocks 1 and 2.
  const auto key = HexBlock("2b7e151628aed2a6abf7158809cf4f3c");
  Aes128 aes(key);
  struct Case {
    const char* plain;
    const char* cipher;
  };
  const Case cases[] = {
      {"6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"},
      {"ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"},
  };
  for (const Case& c : cases) {
    const auto plain = HexBlock(c.plain);
    const auto expect = HexBlock(c.cipher);
    uint8_t out[16];
    aes.EncryptBlock(plain.data(), out);
    EXPECT_EQ(0, std::memcmp(out, expect.data(), 16));
  }
}

std::vector<uint8_t> HexBytes(const char* hex) {
  std::vector<uint8_t> out;
  for (const char* p = hex; p[0] != '\0' && p[1] != '\0'; p += 2) {
    unsigned v = 0;
    sscanf(p, "%02x", &v);
    out.push_back(static_cast<uint8_t>(v));
  }
  return out;
}

// The shared SP 800-38A four-block plaintext (used by every mode/key size).
std::vector<uint8_t> Sp80038aPlaintext() {
  return HexBytes(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
}

TEST(AesTest, Sp80038aCbcFullVectorSet) {
  // NIST SP 800-38A F.2.1–F.2.6: CBC encrypt and decrypt, all four blocks,
  // for each key size (AES-128/192/256). The decrypt vectors are the same
  // data run backwards, so DecryptCbc doubles as F.2.2/F.2.4/F.2.6.
  struct Case {
    const char* key;
    const char* cipher;
  };
  const Case cases[] = {
      // F.2.1 CBC-AES128.
      {"2b7e151628aed2a6abf7158809cf4f3c",
       "7649abac8119b246cee98e9b12e9197d"
       "5086cb9b507219ee95db113a917678b2"
       "73bed6b8e3c1743b7116e69e22229516"
       "3ff1caa1681fac09120eca307586e1a7"},
      // F.2.3 CBC-AES192.
      {"8e73b0f7da0e6452c810f32b809079e562f8ead2522c6b7b",
       "4f021db243bc633d7178183a9fa071e8"
       "b4d9ada9ad7dedf4e5e738763f69145a"
       "571b242012fb7ae07fa9baac3df102e0"
       "08b0e27988598881d920a9e64f5615cd"},
      // F.2.5 CBC-AES256.
      {"603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4",
       "f58c4c04d6e5f1ba779eabfb5f7bfbd6"
       "9cfc4e967edb808d679f777bc6702c7d"
       "39f23369a9d9bacfa530e26304231461"
       "b2eb05e2c39be9fcda6c19078c6a9d1b"},
  };
  const auto iv = HexBlock("000102030405060708090a0b0c0d0e0f");
  const auto plain = Sp80038aPlaintext();
  for (const Case& c : cases) {
    const std::vector<uint8_t> key = HexBytes(c.key);
    Aes aes(key);
    EXPECT_EQ(aes.rounds(), static_cast<int>(key.size() / 4) + 6);
    const auto cipher = aes.EncryptCbc(plain, iv);
    EXPECT_EQ(cipher, HexBytes(c.cipher)) << "key bytes: " << key.size();
    EXPECT_EQ(aes.DecryptCbc(cipher, iv), plain) << "key bytes: " << key.size();
  }
}

TEST(AesTest, Fips197LongerKeyVectors) {
  // FIPS-197 Appendix C.2 (AES-192) and C.3 (AES-256): same plaintext and
  // sequential key bytes as the C.1 AES-128 vector.
  const auto plain = HexBlock("00112233445566778899aabbccddeeff");
  {
    Aes aes(HexBytes("000102030405060708090a0b0c0d0e0f1011121314151617"));
    uint8_t out[16];
    aes.EncryptBlock(plain.data(), out);
    const auto expect = HexBlock("dda97ca4864cdfe06eaf70a0ec0d7191");
    EXPECT_EQ(0, std::memcmp(out, expect.data(), 16));
    uint8_t back[16];
    aes.DecryptBlock(out, back);
    EXPECT_EQ(0, std::memcmp(back, plain.data(), 16));
  }
  {
    Aes aes(HexBytes("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"));
    uint8_t out[16];
    aes.EncryptBlock(plain.data(), out);
    const auto expect = HexBlock("8ea2b7ca516745bfeafc49904b496089");
    EXPECT_EQ(0, std::memcmp(out, expect.data(), 16));
    uint8_t back[16];
    aes.DecryptBlock(out, back);
    EXPECT_EQ(0, std::memcmp(back, plain.data(), 16));
  }
}

TEST(AesTest, GenericAesMatchesAes128ForSameKey) {
  const auto key = HexBlock("2b7e151628aed2a6abf7158809cf4f3c");
  Aes generic(std::vector<uint8_t>(key.begin(), key.end()));
  Aes128 fixed(key);
  std::vector<uint8_t> plain(160);
  sim::Rng rng(5);
  rng.FillBytes(plain.data(), plain.size());
  EXPECT_EQ(generic.EncryptEcb(plain), fixed.EncryptEcb(plain));
}

TEST(AesTest, CbcRoundTripAllKeySizes) {
  sim::Rng rng(6);
  for (size_t key_bytes : {16u, 24u, 32u}) {
    std::vector<uint8_t> key(key_bytes);
    rng.FillBytes(key.data(), key.size());
    Aes aes(key);
    std::array<uint8_t, 16> iv;
    rng.FillBytes(iv.data(), iv.size());
    std::vector<uint8_t> plain(100 * 16);
    rng.FillBytes(plain.data(), plain.size());
    const auto cipher = aes.EncryptCbc(plain, iv);
    EXPECT_NE(cipher, plain);
    EXPECT_EQ(aes.DecryptCbc(cipher, iv), plain) << "key bytes: " << key_bytes;
  }
}

TEST(AesTest, KeyFromCsrWordsMatchesArrayKey) {
  // The CSR packing (reg0 = bytes 0..7 LE) must equal the byte-array ctor.
  std::array<uint8_t, 16> key{};
  for (int i = 0; i < 16; ++i) {
    key[i] = static_cast<uint8_t>(i * 17);
  }
  uint64_t lo = 0, hi = 0;
  std::memcpy(&lo, key.data(), 8);
  std::memcpy(&hi, key.data() + 8, 8);
  Aes128 a(key), b(lo, hi);
  uint8_t in[16] = {42}, out_a[16], out_b[16];
  a.EncryptBlock(in, out_a);
  b.EncryptBlock(in, out_b);
  EXPECT_EQ(0, std::memcmp(out_a, out_b, 16));
}

TEST(AesTest, EcbRoundTripRandomBuffers) {
  Aes128 aes(0x123, 0x456);
  sim::Rng rng(1);
  for (size_t blocks : {1u, 7u, 64u, 1000u}) {
    std::vector<uint8_t> plain(blocks * 16);
    rng.FillBytes(plain.data(), plain.size());
    EXPECT_EQ(aes.DecryptEcb(aes.EncryptEcb(plain)), plain);
  }
}

TEST(AesTest, CbcDiffersFromEcbAndPropagates) {
  Aes128 aes(1, 2);
  std::vector<uint8_t> plain(64, 0x42);  // repeated blocks
  const auto ecb = aes.EncryptEcb(plain);
  const std::array<uint8_t, 16> iv{};
  const auto cbc = aes.EncryptCbc(plain, iv);
  // ECB leaks structure: identical blocks encrypt identically.
  EXPECT_EQ(0, std::memcmp(ecb.data(), ecb.data() + 16, 16));
  // CBC does not.
  EXPECT_NE(0, std::memcmp(cbc.data(), cbc.data() + 16, 16));
}

TEST(HllTest, HashIsDeterministicAndWellMixed) {
  EXPECT_EQ(HllSketch::Hash(1), HllSketch::Hash(1));
  EXPECT_NE(HllSketch::Hash(1), HllSketch::Hash(2));
  // Avalanche smoke test: flipping one input bit flips ~half the output.
  int diff_bits = __builtin_popcountll(HllSketch::Hash(0x1234) ^ HllSketch::Hash(0x1235));
  EXPECT_GT(diff_bits, 16);
  EXPECT_LT(diff_bits, 48);
}

TEST(HllTest, ExactForTinyCardinalities) {
  HllSketch sketch(14);
  for (uint64_t i = 0; i < 100; ++i) {
    sketch.Add(i);
    sketch.Add(i);  // duplicates must not count
  }
  EXPECT_NEAR(sketch.Estimate(), 100.0, 2.0);  // linear-counting regime
  EXPECT_EQ(sketch.items_added(), 200u);
}

TEST(HllTest, ErrorWithinTheoreticalBound) {
  // Standard error is ~1.04/sqrt(m); at p=14 that is ~0.8%. Allow 4 sigma.
  HllSketch sketch(14);
  constexpr uint64_t kDistinct = 1'000'000;
  for (uint64_t i = 0; i < kDistinct; ++i) {
    sketch.Add(i * 0x9E3779B97F4A7C15ull);
  }
  const double err = std::abs(sketch.Estimate() - kDistinct) / kDistinct;
  EXPECT_LT(err, 4 * 1.04 / std::sqrt(16384.0));
}

TEST(HllTest, ClearResets) {
  HllSketch sketch(14);
  for (uint64_t i = 0; i < 1000; ++i) {
    sketch.Add(i);
  }
  sketch.Clear();
  EXPECT_EQ(sketch.items_added(), 0u);
  EXPECT_LT(sketch.Estimate(), 1.0);
}

// Property: estimate accuracy across precisions.
class HllPrecisionSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(HllPrecisionSweep, EstimateTracksCardinality) {
  const uint32_t p = GetParam();
  HllSketch sketch(p);
  constexpr uint64_t kDistinct = 50'000;
  for (uint64_t i = 0; i < kDistinct; ++i) {
    sketch.Add(i);
  }
  const double sigma = 1.04 / std::sqrt(static_cast<double>(1u << p));
  EXPECT_NEAR(sketch.Estimate(), kDistinct, 5 * sigma * kDistinct);
}

INSTANTIATE_TEST_SUITE_P(Precisions, HllPrecisionSweep, ::testing::Values(10, 12, 14, 16));

TEST(MlpTest, ForwardMathIsExactInt) {
  // Single 2->2 layer with hand-computed result.
  MlpSpec spec;
  spec.name = "tiny";
  DenseLayer l;
  l.in_dim = 2;
  l.out_dim = 2;
  l.weights = {1, 2, -3, 4};  // row-major: out0 = 1*x0 + 2*x1
  l.bias = {10, -20};
  l.requant_shift = 0;
  l.relu = true;
  spec.layers.push_back(l);

  const int8_t input[2] = {5, -3};
  const auto out = MlpForward(spec, input);
  // out0 = 5 - 6 + 10 = 9; out1 = -15 - 12 - 20 = -47 -> relu -> 0.
  EXPECT_EQ(out[0], 9);
  EXPECT_EQ(out[1], 0);
}

TEST(MlpTest, RequantShiftAndClamp) {
  MlpSpec spec;
  DenseLayer l;
  l.in_dim = 1;
  l.out_dim = 2;
  l.weights = {100, -100};
  l.bias = {0, 0};
  l.requant_shift = 1;
  l.relu = false;
  spec.layers.push_back(l);
  const int8_t input[1] = {100};
  const auto out = MlpForward(spec, input);
  EXPECT_EQ(out[0], 127);   // 10000 >> 1 = 5000 -> clamp 127
  EXPECT_EQ(out[1], -128);  // -5000 -> clamp -128
}

TEST(MlpTest, Conv1dMathIsExact) {
  // One conv layer, hand-computed: in_len=4, 1 channel, 1 output channel,
  // kernel [1, 2, -1], bias 3, no shift.
  MlpSpec spec;
  Conv1dLayer c;
  c.in_len = 4;
  c.in_channels = 1;
  c.out_channels = 1;
  c.kernel_size = 3;
  c.weights = {1, 2, -1};
  c.bias = {3};
  c.requant_shift = 0;
  c.relu = false;
  spec.conv_layers.push_back(c);
  DenseLayer d;  // identity-ish dense to expose conv output: 2 -> 2
  d.in_dim = 2;
  d.out_dim = 2;
  d.weights = {1, 0, 0, 1};
  d.bias = {0, 0};
  d.requant_shift = 0;
  d.relu = false;
  spec.layers.push_back(d);

  const int8_t input[4] = {1, 2, 3, 4};
  // conv out[0] = 1*1 + 2*2 - 3 + 3 = 5; out[1] = 2 + 6 - 4 + 3 = 7.
  const auto out = MlpForward(spec, input);
  EXPECT_EQ(out[0], 5);
  EXPECT_EQ(out[1], 7);
}

TEST(MlpTest, Conv1dMultiChannelGeometry) {
  const MlpSpec spec = MakeConv1dClassifier();
  EXPECT_EQ(spec.input_dim(), 128u);  // 64 steps x 2 channels
  EXPECT_EQ(spec.output_dim(), 4u);
  EXPECT_EQ(spec.conv_layers[0].out_len(), 60u);
  EXPECT_EQ(spec.conv_layers[1].out_len(), 58u);
  EXPECT_GT(spec.TotalMultiplies(),
            spec.layers[0].in_dim * spec.layers[0].out_dim);  // convs counted
  // Deterministic + runnable.
  std::vector<int8_t> input(spec.input_dim(), 3);
  const auto a = MlpForward(spec, input.data());
  const auto b = MlpForward(MakeConv1dClassifier(), input.data());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 4u);
}

TEST(MlpTest, IntrusionModelGeometryAndEstimates) {
  const MlpSpec spec = MakeIntrusionDetectionMlp();
  EXPECT_EQ(spec.input_dim(), 49u);
  EXPECT_EQ(spec.output_dim(), 2u);
  EXPECT_EQ(spec.layers.size(), 4u);
  EXPECT_FALSE(spec.layers.back().relu);  // logits
  EXPECT_GT(spec.TotalMultiplies(), 5000u);
  EXPECT_EQ(spec.IiCycles(), spec.reuse_factor);
  EXPECT_GT(spec.LatencyCycles(), 4 * spec.reuse_factor);
  const fabric::ResourceVector r = spec.EstimateResources();
  EXPECT_GT(r.dsp, 0u);
  EXPECT_EQ(r.dsp, (spec.TotalMultiplies() + 3) / 4);  // reuse factor 4
  // Deterministic weights: two builds identical.
  const MlpSpec again = MakeIntrusionDetectionMlp();
  EXPECT_EQ(spec.layers[0].weights, again.layers[0].weights);
}

TEST(DbScanTest, PredicateAndAggregatesExact) {
  sim::Engine engine;
  vfpga::Vfpga region(&engine, 0, {.num_host_streams = 1, .num_card_streams = 1,
                                   .num_net_streams = 1});
  DbScanKernel kernel;
  kernel.Attach(&region);
  region.csr().Poke(kScanCsrMinKey, 10);
  region.csr().Poke(kScanCsrMaxKey, 20);

  std::vector<DbRecord> rows = {
      {5, 100}, {10, -7}, {15, 3}, {20, 4}, {21, 1000}, {12, -10},
  };
  axi::StreamPacket p;
  p.data.resize(rows.size() * sizeof(DbRecord));
  std::memcpy(p.data.data(), rows.data(), p.data.size());
  p.last = true;
  region.host_in(0).Push(std::move(p));
  engine.RunUntilIdle();

  auto out = region.host_out(0).Pop();
  ASSERT_TRUE(out.has_value());
  uint64_t count = 0;
  int64_t sum = 0;
  std::memcpy(&count, out->data.data(), 8);
  std::memcpy(&sum, out->data.data() + 8, 8);
  EXPECT_EQ(count, 4u);       // keys 10, 15, 20, 12
  EXPECT_EQ(sum, -7 + 3 + 4 - 10);
  EXPECT_EQ(static_cast<int64_t>(region.csr().Peek(kScanCsrMin)), -10);
  EXPECT_EQ(static_cast<int64_t>(region.csr().Peek(kScanCsrMax)), 4);
  kernel.Detach();
}

TEST(DbScanTest, RecordsStraddlingPacketBoundaries) {
  sim::Engine engine;
  vfpga::Vfpga region(&engine, 0, {.num_host_streams = 1, .num_card_streams = 1,
                                   .num_net_streams = 1});
  DbScanKernel kernel;
  kernel.Attach(&region);
  region.csr().Poke(kScanCsrMinKey, 0);
  region.csr().Poke(kScanCsrMaxKey, 1'000'000);

  // 100 records split into 24-byte packets (not record-aligned).
  std::vector<DbRecord> rows(100);
  int64_t expected_sum = 0;
  for (int i = 0; i < 100; ++i) {
    rows[i] = {i, i * 3};
    expected_sum += i * 3;
  }
  std::vector<uint8_t> bytes(rows.size() * 16);
  std::memcpy(bytes.data(), rows.data(), bytes.size());
  for (size_t off = 0; off < bytes.size(); off += 24) {
    axi::StreamPacket p;
    const size_t n = std::min<size_t>(24, bytes.size() - off);
    p.data.assign(bytes.begin() + static_cast<ptrdiff_t>(off),
                  bytes.begin() + static_cast<ptrdiff_t>(off + n));
    p.last = off + n == bytes.size();
    region.host_in(0).Push(std::move(p));
  }
  engine.RunUntilIdle();
  auto out = region.host_out(0).Pop();
  ASSERT_TRUE(out.has_value());
  uint64_t count = 0;
  int64_t sum = 0;
  std::memcpy(&count, out->data.data(), 8);
  std::memcpy(&sum, out->data.data() + 8, 8);
  EXPECT_EQ(count, 100u);
  EXPECT_EQ(sum, expected_sum);
  kernel.Detach();
}

TEST(DbScanTest, StateResetsBetweenQueries) {
  sim::Engine engine;
  vfpga::Vfpga region(&engine, 0, {.num_host_streams = 1, .num_card_streams = 1,
                                   .num_net_streams = 1});
  DbScanKernel kernel;
  kernel.Attach(&region);
  region.csr().Poke(kScanCsrMinKey, 0);
  region.csr().Poke(kScanCsrMaxKey, 100);
  auto run_query = [&](int64_t key, int64_t value) {
    axi::StreamPacket p;
    DbRecord rec{key, value};
    p.data.resize(16);
    std::memcpy(p.data.data(), &rec, 16);
    p.last = true;
    region.host_in(0).Push(std::move(p));
    engine.RunUntilIdle();
    auto out = region.host_out(0).Pop();
    int64_t sum = 0;
    std::memcpy(&sum, out->data.data() + 8, 8);
    return sum;
  };
  EXPECT_EQ(run_query(1, 41), 41);
  EXPECT_EQ(run_query(2, 1), 1);  // not 42: fresh aggregation per scan
  kernel.Detach();
}

TEST(StreamKernelTest, RateModelThrottlesOutput) {
  sim::Engine engine;
  vfpga::Vfpga region(&engine, 0, {.num_host_streams = 1, .num_card_streams = 1,
                                   .num_net_streams = 1});
  PassthroughKernel kernel;
  kernel.Attach(&region);

  // 64 KB at 64 B/cycle = 1024 cycles = 4.096 us (+4 cycles fill).
  axi::StreamPacket p;
  p.data.assign(64 * 1024, 0xAB);
  region.host_in(0).Push(std::move(p));
  engine.RunUntilIdle();
  EXPECT_EQ(engine.Now(), sim::kSystemClock.CyclesToPs(1024 + 4));
  auto out = region.host_out(0).Pop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->data.size(), 64u * 1024);
  EXPECT_EQ(kernel.bytes_processed(), 64u * 1024);
  kernel.Detach();
}

TEST(StreamKernelTest, BackToBackPacketsPipelineThroughSharedPipe) {
  sim::Engine engine;
  vfpga::Vfpga region(&engine, 0, {.num_host_streams = 1, .num_card_streams = 1,
                                   .num_net_streams = 1});
  PassthroughKernel kernel;
  kernel.Attach(&region);
  for (int i = 0; i < 4; ++i) {
    axi::StreamPacket p;
    p.data.assign(4096, 0x11);
    region.host_in(0).Push(std::move(p));
  }
  engine.RunUntilIdle();
  // 4 x 64 cycles serialized + fill, not 4 x (64 + fill).
  EXPECT_EQ(engine.Now(), sim::kSystemClock.CyclesToPs(4 * 64 + 4));
  EXPECT_EQ(region.host_out(0).size(), 4u);
  kernel.Detach();
}

TEST(VectorKernelTest, AddAndMultCompute) {
  for (VectorOp op : {VectorOp::kAdd, VectorOp::kMult}) {
    sim::Engine engine;
    vfpga::Vfpga region(&engine, 0, {.num_host_streams = 2, .num_card_streams = 2,
                                     .num_net_streams = 1});
    VectorOpKernel kernel(op, /*use_card=*/false);
    kernel.Attach(&region);

    std::vector<int32_t> a{1, -2, 3, 1000000}, b{10, 20, -30, 3};
    axi::StreamPacket pa, pb;
    pa.data.resize(16);
    pb.data.resize(16);
    std::memcpy(pa.data.data(), a.data(), 16);
    std::memcpy(pb.data.data(), b.data(), 16);
    pa.last = pb.last = true;
    region.host_in(0).Push(std::move(pa));
    region.host_in(1).Push(std::move(pb));
    engine.RunUntilIdle();

    auto out = region.host_out(0).Pop();
    ASSERT_TRUE(out.has_value());
    std::vector<int32_t> r(4);
    std::memcpy(r.data(), out->data.data(), 16);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(r[i], op == VectorOp::kAdd ? a[i] + b[i] : a[i] * b[i]);
    }
    EXPECT_TRUE(out->last);
    kernel.Detach();
  }
}

TEST(VectorKernelTest, MismatchedArrivalBuffersUntilPaired) {
  sim::Engine engine;
  vfpga::Vfpga region(&engine, 0, {.num_host_streams = 2, .num_card_streams = 2,
                                   .num_net_streams = 1});
  VectorOpKernel kernel(VectorOp::kAdd, false);
  kernel.Attach(&region);
  axi::StreamPacket pa;
  pa.data.assign(16, 1);
  pa.last = false;
  region.host_in(0).Push(std::move(pa));
  engine.RunUntilIdle();
  EXPECT_TRUE(region.host_out(0).Empty());  // waiting for operand B
  axi::StreamPacket pb;
  pb.data.assign(16, 2);
  pb.last = true;
  region.host_in(1).Push(std::move(pb));
  engine.RunUntilIdle();
  EXPECT_EQ(region.host_out(0).size(), 1u);
  kernel.Detach();
}

}  // namespace
}  // namespace services
}  // namespace coyote
