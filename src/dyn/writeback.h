// Completion writeback engine (paper §5.1, utility channel).
//
// Instead of having the host poll device registers over PCIe for transfer
// completion (burning link bandwidth on non-posted reads), the shell writes
// an incrementing counter into host memory when a transfer finishes; the
// host spins on its own cache line. Coyote v2 extends the XDMA-native
// mechanism to card-memory and network transfers, all of which complete
// independently of PCIe.

#ifndef SRC_DYN_WRITEBACK_H_
#define SRC_DYN_WRITEBACK_H_

#include <cstdint>
#include <unordered_map>

#include "src/memsys/host_memory.h"
#include "src/sim/engine.h"
#include "src/sim/link.h"

namespace coyote {
namespace dyn {

class WritebackEngine {
 public:
  // Writeback slots are keyed by (vfpga, cthread, direction).
  struct Key {
    uint32_t vfpga = 0;
    uint32_t cthread = 0;
    bool write_direction = false;

    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return (static_cast<size_t>(k.vfpga) << 33) ^ (static_cast<size_t>(k.cthread) << 1) ^
             (k.write_direction ? 1 : 0);
    }
  };

  WritebackEngine(sim::Engine* engine, memsys::HostMemory* host, sim::Link* c2h)
      : engine_(engine), host_(host), c2h_(c2h) {}

  // Registers the host-memory address of the counter for `key`.
  void RegisterSlot(const Key& key, uint64_t host_addr) { slots_[key] = host_addr; }

  // Marks one more completed transfer for `key`: a 64-byte posted write
  // travels the C2H direction, then the host-visible counter increments.
  void Complete(const Key& key) {
    auto it = slots_.find(key);
    if (it == slots_.end()) {
      return;  // untracked transfer (no registered cThread slot)
    }
    const uint64_t addr = it->second;
    ++pending_;
    c2h_->Submit(kWritebackSource, kWritebackBytes, [this, addr]() {
      --pending_;
      uint32_t value = 0;
      host_->store().Read(addr, &value, sizeof(value));
      ++value;
      host_->store().Write(addr, &value, sizeof(value));
      ++writebacks_;
    });
  }

  // Host-side read of a counter (from the host's own memory — cheap).
  uint32_t ReadCounter(const Key& key) const {
    auto it = slots_.find(key);
    if (it == slots_.end()) {
      return 0;
    }
    uint32_t value = 0;
    host_->store().Read(it->second, &value, sizeof(value));
    return value;
  }

  uint64_t writebacks() const { return writebacks_; }
  uint64_t pending() const { return pending_; }

 private:
  // Writeback shares the C2H link; give it a dedicated arbitration source so
  // it interleaves fairly with bulk data.
  static constexpr uint32_t kWritebackSource = 0xFFFF'FFFE;
  static constexpr uint64_t kWritebackBytes = 64;

  sim::Engine* engine_;
  memsys::HostMemory* host_;
  sim::Link* c2h_;
  std::unordered_map<Key, uint64_t, KeyHash> slots_;
  uint64_t writebacks_ = 0;
  uint64_t pending_ = 0;
};

}  // namespace dyn
}  // namespace coyote

#endif  // SRC_DYN_WRITEBACK_H_
