// Deployment overlays: CoyoteOverlay and the PYNQ/Vitis baseline.
//
// CoyoteOverlay (paper Code 3): program_fpga() loads the generated NN kernel
// into a vFPGA via partial reconfiguration; predict() streams input batches
// straight from host memory through the kernel and back — no staging copy —
// driven by the C++ runtime (cThread under the hood).
//
// PynqBaseline models the hls4ml Vitis/PYNQ flow the paper compares against:
// every batch is (1) copied from host to card memory, (2) processed by the
// same kernel reading from HBM, (3) copied back — plus the Python-side
// runtime overhead PYNQ adds per call and per buffer sync. The kernel is
// identical; the integration path is the experiment (Fig. 12).

#ifndef SRC_HLSCOMPAT_OVERLAY_H_
#define SRC_HLSCOMPAT_OVERLAY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/hlscompat/hls_model.h"
#include "src/runtime/cthread.h"
#include "src/runtime/device.h"

namespace coyote {
namespace hlscompat {

struct InferenceResult {
  std::vector<int8_t> outputs;
  sim::TimePs elapsed = 0;
  double samples_per_second = 0;
  double batch_latency_us = 0;  // mean per-batch latency
};

class CoyoteOverlay {
 public:
  CoyoteOverlay(runtime::SimDevice* dev, CompiledModel model, uint32_t vfpga_id = 0);

  // Loads the NN kernel into the vFPGA (partial reconfiguration). Returns
  // the reconfiguration latency.
  sim::TimePs ProgramFpga();

  // Batched inference: `num_samples` samples of spec.input_dim() int8
  // features each, processed in batches of `batch_size`.
  InferenceResult Predict(const std::vector<int8_t>& inputs, size_t num_samples,
                          size_t batch_size);

 private:
  runtime::SimDevice* dev_;
  CompiledModel model_;
  uint32_t vfpga_id_;
  std::unique_ptr<runtime::CThread> cthread_;
  bool programmed_ = false;
};

class PynqBaseline {
 public:
  struct Overheads {
    // PYNQ's Python call path: allocate/teardown of the call, numpy
    // marshalling, driver transitions.
    sim::TimePs per_call = sim::Milliseconds(1.0);
    // Per-batch buffer sync + DMA descriptor handling in Python.
    sim::TimePs per_batch = sim::Microseconds(100);
  };

  PynqBaseline(runtime::SimDevice* dev, CompiledModel model, uint32_t vfpga_id = 0);

  sim::TimePs ProgramFpga();
  InferenceResult Predict(const std::vector<int8_t>& inputs, size_t num_samples,
                          size_t batch_size);

 private:
  runtime::SimDevice* dev_;
  CompiledModel model_;
  uint32_t vfpga_id_;
  Overheads overheads_;
  std::unique_ptr<runtime::CThread> cthread_;
  bool programmed_ = false;
};

}  // namespace hlscompat
}  // namespace coyote

#endif  // SRC_HLSCOMPAT_OVERLAY_H_
