// Hardware multi-threading (paper §7.3, §9.5).
//
// AES CBC is sequential per client: each 128-bit block XORs with the
// previous ciphertext, so one cThread keeps only 1 of the 10 pipeline
// stages busy. This example runs 1..8 cThreads on the SAME vFPGA — each on
// its own host stream with its own TID — and shows throughput scaling
// linearly while every client's ciphertext stays correct and isolated.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/runtime/cthread.h"
#include "src/runtime/device.h"
#include "src/services/aes.h"
#include "src/services/aes_kernels.h"
#include "src/sim/rng.h"

using namespace coyote;

int main() {
  constexpr uint64_t kMessageBytes = 32 << 10;
  constexpr uint64_t kKeyLo = 0x6167717a7a767668ull;

  std::printf("AES CBC multi-threading on one vFPGA (32 KB messages)\n");
  std::printf("%-10s %18s %16s\n", "cThreads", "throughput MB/s", "all verified");

  for (uint32_t n : {1u, 2u, 4u, 8u}) {
    runtime::SimDevice::Config cfg;
    cfg.shell.services = {fabric::Service::kHostStream};
    cfg.shell.num_vfpgas = 1;
    cfg.vfpga.num_host_streams = 8;
    runtime::SimDevice device(cfg);
    device.vfpga(0).LoadKernel(std::make_unique<services::AesCbcKernel>());

    std::vector<std::unique_ptr<runtime::cThread>> threads;
    for (uint32_t i = 0; i < n; ++i) {
      threads.push_back(std::make_unique<runtime::cThread>(&device, 0));
    }
    threads[0]->SetCsr(kKeyLo, services::kAesCsrKeyLo);

    std::vector<uint64_t> srcs(n), dsts(n);
    std::vector<std::vector<uint8_t>> plains(n);
    for (uint32_t i = 0; i < n; ++i) {
      srcs[i] = threads[i]->GetMem({runtime::Alloc::kHpf, kMessageBytes});
      dsts[i] = threads[i]->GetMem({runtime::Alloc::kHpf, kMessageBytes});
      plains[i].resize(kMessageBytes);
      sim::Rng rng(1000 + i);
      rng.FillBytes(plains[i].data(), kMessageBytes);
      threads[i]->WriteBuffer(srcs[i], plains[i].data(), kMessageBytes);
    }

    const sim::TimePs start = device.engine().Now();
    std::vector<runtime::cThread::Task> tasks;
    for (uint32_t i = 0; i < n; ++i) {
      runtime::SgEntry sg;
      sg.local = {.src_addr = srcs[i], .src_len = kMessageBytes, .dst_addr = dsts[i],
                  .dst_len = kMessageBytes};
      tasks.push_back(threads[i]->Invoke(runtime::Oper::kLocalTransfer, sg));
    }
    bool ok = true;
    for (uint32_t i = 0; i < n; ++i) {
      ok &= threads[i]->Wait(tasks[i]);
    }
    const double mbps =
        sim::BandwidthMBps(kMessageBytes * n, device.engine().Now() - start);

    // Verify every lane independently against software CBC (zero IV).
    const services::Aes128 reference(kKeyLo, 0);
    const std::array<uint8_t, 16> iv{};
    for (uint32_t i = 0; i < n; ++i) {
      std::vector<uint8_t> cipher(kMessageBytes);
      threads[i]->ReadBuffer(dsts[i], cipher.data(), kMessageBytes);
      ok &= cipher == reference.EncryptCbc(plains[i], iv);
    }
    std::printf("%-10u %18.1f %16s\n", n, mbps, ok ? "yes" : "NO");
  }
  return 0;
}
