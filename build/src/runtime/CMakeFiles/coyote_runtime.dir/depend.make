# Empty dependencies file for coyote_runtime.
# This may be replaced when dependencies are built.
