# Included from the top-level CMakeLists (not add_subdirectory) so that
# build/bench/ holds only the benchmark binaries: `for b in build/bench/*`
# then runs every experiment with no CMake metadata in the way.
function(coyote_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
  target_link_libraries(${name} PRIVATE ${ARGN})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

coyote_bench(bench_table2_reconfig_throughput coyote_fabric)
coyote_bench(bench_fig7a_hbm_scaling coyote_runtime coyote_services)
coyote_bench(bench_fig7b_synthesis_time coyote_synth)
coyote_bench(bench_table3_shell_reconfig coyote_runtime coyote_services coyote_synth)
coyote_bench(bench_fig8_aes_ecb_sharing coyote_runtime coyote_services)
coyote_bench(bench_fig10_aes_cbc coyote_runtime coyote_services)
coyote_bench(bench_fig11_hll coyote_runtime coyote_services coyote_synth)
coyote_bench(bench_fig12_nn_inference coyote_hlscompat)
coyote_bench(bench_ablations coyote_runtime coyote_services)
coyote_bench(bench_extensions coyote_runtime coyote_services coyote_net coyote_synth)
coyote_bench(bench_micro_cores coyote_services coyote_net coyote_mmu benchmark::benchmark)
coyote_bench(bench_table1_features coyote_runtime coyote_services coyote_synth)
coyote_bench(bench_recovery_mttr coyote_runtime coyote_services coyote_synth)
coyote_bench(bench_migration coyote_runtime coyote_services coyote_net)
coyote_bench(bench_sim_engine coyote_sim coyote_axi)
coyote_bench(bench_serving coyote_runtime coyote_services coyote_net)
coyote_bench(bench_tiering coyote_mmu)
