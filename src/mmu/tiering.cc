#include "src/mmu/tiering.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace coyote {
namespace mmu {
namespace {

// ClockVictim sentinel: no fast-resident page is evictable right now.
constexpr uint64_t kNoVictim = ~0ull;

}  // namespace

void Tiering::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  engine_->ScheduleAfter(config_.epoch_ps, [this]() { EpochTick(); });
}

void Tiering::Manage(uint64_t vaddr, uint64_t bytes) {
  if (bytes == 0) {
    return;
  }
  guard_.Write();
  const uint64_t first = svm_->page_table().VPage(vaddr);
  const uint64_t last = svm_->page_table().VPage(vaddr + bytes - 1);
  for (uint64_t vp = first; vp <= last; ++vp) {
    Track(vp);
  }
}

Tiering::PageState* Tiering::Track(uint64_t vpage) {
  auto it = pages_.find(vpage);
  if (it != pages_.end()) {
    return &it->second;
  }
  auto entry = svm_->page_table().Find(vpage * svm_->page_table().page_bytes());
  if (!entry.has_value()) {
    return nullptr;
  }
  PageState st;
  st.tier = entry->kind;
  st.resident_since = epoch_;
  st.last_touch = epoch_;
  ++occupancy_[static_cast<size_t>(entry->kind)];
  return &pages_.emplace(vpage, st).first->second;
}

void Tiering::Touch(uint64_t vpage, uint64_t weight) {
  PageState* st = Track(vpage);
  if (st == nullptr) {
    return;
  }
  st->heat += weight;
  st->last_touch = epoch_;
  st->referenced = true;
  if (config_.policy == Policy::kLruClock && st->tier != config_.fast_tier && !st->queued) {
    st->queued = true;
    demand_fifo_.push_back(vpage);
  }
}

void Tiering::OnAccess(uint64_t vaddr, uint64_t len, bool write) {
  (void)write;
  if (len == 0) {
    return;
  }
  guard_.Write();
  stats_.Increment("tiering.accesses");
  const uint64_t first = svm_->page_table().VPage(vaddr);
  const uint64_t last = svm_->page_table().VPage(vaddr + len - 1);
  for (uint64_t vp = first; vp <= last; ++vp) {
    Touch(vp, config_.access_weight);
  }
}

void Tiering::OnTlbMiss(uint64_t vaddr) {
  guard_.Write();
  stats_.Increment("tiering.tlb_misses");
  Touch(svm_->page_table().VPage(vaddr), config_.tlb_miss_weight);
}

void Tiering::OnMigrate(uint64_t vpage, MemKind from, MemKind to) {
  guard_.Write();
  auto it = pages_.find(vpage);
  if (it == pages_.end()) {
    // First sighting: begin tracking at the page's new tier.
    PageState st;
    st.tier = to;
    st.resident_since = epoch_;
    st.last_touch = epoch_;
    ++occupancy_[static_cast<size_t>(to)];
    pages_.emplace(vpage, st);
    return;
  }
  assert(it->second.tier == from && "tier mirror out of sync with page table");
  --occupancy_[static_cast<size_t>(from)];
  ++occupancy_[static_cast<size_t>(to)];
  it->second.tier = to;
  it->second.resident_since = epoch_;
  it->second.referenced = false;
}

sim::Histogram Tiering::HeatHistogram() const {
  guard_.Read();
  sim::Histogram h;
  for (const auto& [vp, st] : pages_) {
    h.Add(st.heat);
  }
  return h;
}

uint64_t Tiering::FreeFastSlots() const {
  if (config_.fast_capacity_pages == 0) {
    return ~0ull;
  }
  const uint64_t used = occupancy_[static_cast<size_t>(config_.fast_tier)];
  return used >= config_.fast_capacity_pages ? 0 : config_.fast_capacity_pages - used;
}

void Tiering::EpochTick() {
  if (!started_) {
    return;  // Stop() drops the self-rescheduling chain
  }
  guard_.Write();
  ++epoch_;
  stats_.Increment("tiering.epochs");
  if (config_.decay_shift > 0) {
    for (auto& [vp, st] : pages_) {
      st.heat >>= config_.decay_shift;
    }
  }
  if (!wave_in_flight_) {
    RunPolicy();
  }
  engine_->ScheduleAfter(config_.epoch_ps, [this]() { EpochTick(); });
}

void Tiering::RunPolicy() {
  std::vector<uint64_t> promote;
  std::vector<uint64_t> demote;
  std::vector<uint64_t> cold;
  switch (config_.policy) {
    case Policy::kStatic:
      return;
    case Policy::kLruClock:
      PlanLruClock(&promote, &demote);
      break;
    case Policy::kProfileGuided:
      PlanProfileGuided(&promote, &demote);
      PlanColdDemotion(&cold);
      break;
  }
  if (promote.empty() && demote.empty() && cold.empty()) {
    return;
  }
  ExecuteWaves(std::move(cold), std::move(demote), std::move(promote));
}

void Tiering::PlanProfileGuided(std::vector<uint64_t>* promote, std::vector<uint64_t>* demote) {
  // Candidates: pages outside the fast tier whose decayed heat clears the
  // promotion threshold, hottest first. Victims: fast-resident pages past
  // their minimum residency, coldest first. Ties break on vpage so the plan
  // is a pure function of (heat table, epoch).
  std::vector<std::pair<uint64_t, uint64_t>> cands;   // (heat, vpage)
  std::vector<std::pair<uint64_t, uint64_t>> victims; // (heat, vpage)
  for (const auto& [vp, st] : pages_) {
    if (st.tier == config_.fast_tier) {
      if (epoch_ - st.resident_since >= config_.min_residency_epochs) {
        victims.emplace_back(st.heat, vp);
      }
    } else if (st.heat >= config_.promote_threshold) {
      cands.emplace_back(st.heat, vp);
    }
  }
  std::sort(cands.begin(), cands.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  std::sort(victims.begin(), victims.end());

  uint64_t budget = config_.max_moves_per_epoch;
  uint64_t free_slots = FreeFastSlots();
  size_t vi = 0;
  for (const auto& [heat, vp] : cands) {
    if (budget == 0) {
      break;
    }
    if (free_slots > 0) {
      promote->push_back(vp);
      --free_slots;
      --budget;
      continue;
    }
    if (vi >= victims.size() || budget < 2) {
      break;
    }
    // Hysteresis: displacing a resident page costs two migrations, so the
    // newcomer must be strictly hotter than the coldest victim by more than
    // the margin. Candidates are sorted hottest-first: once one fails, the
    // rest fail too.
    if (heat <= victims[vi].first + config_.hysteresis_margin) {
      break;
    }
    demote->push_back(victims[vi].second);
    promote->push_back(vp);
    ++vi;
    budget -= 2;
  }
}

uint64_t Tiering::ClockVictim() {
  const uint64_t fast_count = occupancy_[static_cast<size_t>(config_.fast_tier)];
  if (fast_count == 0) {
    return kNoVictim;
  }
  // Two sweeps bound the scan: the first clears second-chance bits, the
  // second must find a victim unless every page was already chosen this epoch.
  const uint64_t limit = 2 * fast_count + 2;
  uint64_t scanned = 0;
  auto it = pages_.upper_bound(clock_hand_);
  while (scanned < limit) {
    if (it == pages_.end()) {
      it = pages_.begin();
      if (it == pages_.end()) {
        return kNoVictim;
      }
    }
    PageState& st = it->second;
    const uint64_t vp = it->first;
    ++it;
    if (st.tier != config_.fast_tier || st.victim_epoch == epoch_) {
      continue;
    }
    ++scanned;
    if (st.referenced) {
      st.referenced = false;  // second chance
      continue;
    }
    st.victim_epoch = epoch_;
    clock_hand_ = vp;
    return vp;
  }
  return kNoVictim;
}

void Tiering::PlanLruClock(std::vector<uint64_t>* promote, std::vector<uint64_t>* demote) {
  // Demand-driven: pages touched while not fast-resident queued in FIFO
  // order. Unserved demand is dropped, not carried over — a still-hot page
  // re-queues itself on its next access.
  std::vector<uint64_t> drained = std::move(demand_fifo_);
  demand_fifo_.clear();
  uint64_t budget = config_.max_moves_per_epoch;
  uint64_t free_slots = FreeFastSlots();
  bool eviction_exhausted = false;
  for (uint64_t vp : drained) {
    auto it = pages_.find(vp);
    if (it == pages_.end()) {
      continue;
    }
    it->second.queued = false;
    if (it->second.tier == config_.fast_tier || budget == 0 || eviction_exhausted) {
      continue;
    }
    if (free_slots > 0) {
      promote->push_back(vp);
      --free_slots;
      --budget;
      continue;
    }
    if (budget < 2) {
      continue;
    }
    const uint64_t victim = ClockVictim();
    if (victim == kNoVictim) {
      eviction_exhausted = true;
      continue;
    }
    demote->push_back(victim);
    promote->push_back(vp);
    budget -= 2;
  }
}

void Tiering::PlanColdDemotion(std::vector<uint64_t>* cold) {
  if (config_.slow_capacity_pages == 0 || !svm_->has_nvme()) {
    return;
  }
  const uint64_t used = occupancy_[static_cast<size_t>(config_.slow_tier)];
  if (used <= config_.slow_capacity_pages) {
    return;
  }
  uint64_t over = used - config_.slow_capacity_pages;
  uint64_t budget = config_.max_moves_per_epoch;
  for (const auto& [vp, st] : pages_) {
    if (over == 0 || budget == 0) {
      break;
    }
    if (st.tier != config_.slow_tier || st.heat != 0) {
      continue;
    }
    if (epoch_ - st.last_touch < config_.cold_after_epochs) {
      continue;
    }
    cold->push_back(vp);
    --over;
    --budget;
  }
}

void Tiering::ExecuteWaves(std::vector<uint64_t> cold, std::vector<uint64_t> demote,
                           std::vector<uint64_t> promote) {
  const uint64_t page = svm_->page_table().page_bytes();
  stats_.Increment("tiering.waves");
  stats_.Increment("tiering.promotions", promote.size());
  stats_.Increment("tiering.demotions", demote.size());
  stats_.Increment("tiering.cold_demotions", cold.size());
  stats_.Increment("tiering.migrated_bytes",
                   (cold.size() + demote.size() + promote.size()) * page);
  wave_in_flight_ = true;

  // Waves run in dependency order — demotions free fast capacity, cold
  // demotions relieve the slow tier, promotions fill the vacated slots — and
  // each wave is ONE bandwidth-charged transfer per source tier
  // (Svm::MigratePages), so eviction churn shows up in the timing model as
  // bulk transfers, not per-page chatter.
  auto finish = [this]() { wave_in_flight_ = false; };
  auto do_promote = [this, promote = std::move(promote), finish]() {
    if (promote.empty()) {
      finish();
      return;
    }
    svm_->MigratePages(promote, config_.fast_tier, finish);
  };
  auto do_cold = [this, cold = std::move(cold), do_promote]() {
    if (cold.empty()) {
      do_promote();
      return;
    }
    svm_->MigratePages(cold, config_.cold_tier, do_promote);
  };
  if (demote.empty()) {
    do_cold();
    return;
  }
  svm_->MigratePages(demote, config_.slow_tier, do_cold);
}

}  // namespace mmu
}  // namespace coyote
