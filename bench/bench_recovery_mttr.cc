// Recovery MTTR: detection latency and mean-time-to-repair per fault class.
//
// The supervision layer closes detect -> isolate -> recover -> report around
// a hung vFPGA (src/runtime/supervisor.h). This bench measures the two
// latencies an operator cares about, per detection path:
//
//   detect  — last heartbeat progress to the supervisor declaring the hang
//             (bounded by the heartbeat deadline + one watchdog period, or by
//             the cThread op deadline when the miss shortcuts the window)
//   MTTR    — detection to the region serving again (dominated by the
//             Table-3 app-bitstream reconfiguration latency; an injected
//             transient ICAP abort adds one full program retry)
//
// Every scenario runs twice with the same seed; the run is only reported as
// deterministic when detection latency, MTTR and the supervisor's trace
// fingerprint are bit-identical. Results land in BENCH_recovery.json.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/runtime/cthread.h"
#include "src/runtime/device.h"
#include "src/runtime/supervisor.h"
#include "src/services/vector_kernels.h"
#include "src/sim/engine.h"
#include "src/sim/fault.h"
#include "src/sim/rng.h"
#include "src/sim/sharded_engine.h"
#include "src/synth/flow.h"
#include "src/synth/netlist.h"

namespace coyote {
namespace {

using runtime::Alloc;
using runtime::CThread;
using runtime::Oper;
using runtime::SgEntry;
using runtime::SimDevice;
using runtime::Supervisor;

enum class Mode {
  kWatchdogWindow,    // hang found by flat heartbeats over the deadline window
  kDeadlineShortcut,  // cThread op-deadline miss shortcuts the window
  kIcapTransient,     // recovery itself eats a transient ICAP abort
};

struct Scenario {
  const char* name;
  const char* fault_class;
  Mode mode;
};

constexpr Scenario kScenarios[] = {
    {"watchdog-window", "kernel.hang", Mode::kWatchdogWindow},
    {"deadline-shortcut", "deadline.miss", Mode::kDeadlineShortcut},
    {"icap-transient", "kernel.hang", Mode::kIcapTransient},
};

struct Outcome {
  bool ok = false;  // scenario ran end to end and the region recovered
  sim::TimePs detect_latency = 0;
  sim::TimePs mttr = 0;
  uint64_t trace_fingerprint = 0;
  uint64_t icap_programs_failed = 0;
  uint64_t supervisor_failed_recoveries = 0;

  bool operator==(const Outcome&) const = default;
};

// `engine == nullptr`: the device owns its engine (classic single-engine
// run). Otherwise the device executes on the caller's engine — the --shards
// mode places each scenario's device on a shard of a ShardedEngine to prove
// the recovery schedule is placement-invariant.
Outcome RunScenario(Mode mode, uint64_t seed, sim::Engine* engine = nullptr) {
  Outcome result;

  SimDevice::Config cfg;
  cfg.shell.name = "recovery-bench-shell";
  cfg.shell.services = {fabric::Service::kHostStream, fabric::Service::kCardMemory};
  cfg.shell.num_vfpgas = 2;
  SimDevice dev(cfg, nullptr, engine);
  dev.RegisterKernelFactory(
      "passthrough", []() { return std::make_unique<services::PassthroughKernel>(); });

  synth::BuildFlow flow(dev.floorplan());
  synth::Netlist passthrough{"passthrough", {synth::LibraryModule("passthrough")}};
  auto out = flow.RunShellFlow(cfg.shell, {passthrough});
  if (!out.ok) {
    return result;
  }
  dev.WriteBitstreamFile("/bit/app.bin", out.app_bitstreams[0]);

  sim::FaultPlan plan;
  plan.seed = seed;
  plan.kernel_hang_first_n = 1;  // the kernel wedges on its first data
  if (mode == Mode::kIcapTransient) {
    plan.reconfig_fail_first_n = 1;  // ...and the first reprogram aborts
  }
  sim::FaultInjector injector(&dev.engine(), plan);
  dev.AttachFaultInjector(&injector);

  if (mode == Mode::kIcapTransient) {
    // Load directly so the injected ICAP abort hits the *recovery* program,
    // not this setup step.
    dev.vfpga(0).LoadKernel(std::make_unique<services::PassthroughKernel>());
  } else {
    if (!dev.ReconfigureApp("/bit/app.bin", 0).ok) {
      return result;
    }
  }

  Supervisor::Config scfg;
  scfg.watchdog_period = sim::Microseconds(20);
  // The shortcut scenario gets a deliberately generous heartbeat window so
  // that any detection inside it must have come from the op-deadline miss.
  scfg.heartbeat_deadline = (mode == Mode::kDeadlineShortcut) ? sim::Milliseconds(10)
                                                              : sim::Microseconds(60);
  scfg.probation_ticks = 2;
  Supervisor sup(&dev, nullptr, scfg);
  sup.SetLastKnownGood(0, "/bit/app.bin");
  sup.Start();

  CThread t(&dev, 0);
  if (mode == Mode::kDeadlineShortcut) {
    t.SetOpDeadline(sim::Microseconds(100));
  }

  // A 64 KB transfer: deep enough that the wedged kernel strands both DMA
  // directions, guaranteeing the watchdog sees outstanding work.
  constexpr uint64_t kBytes = 64 << 10;
  std::vector<uint8_t> data(kBytes);
  sim::Rng fill(5);
  fill.FillBytes(data.data(), kBytes);
  const uint64_t src = t.GetMem({Alloc::kHpf, kBytes});
  const uint64_t dst = t.GetMem({Alloc::kHpf, kBytes});
  t.WriteBuffer(src, data.data(), kBytes);
  SgEntry sg;
  sg.local = {.src_addr = src, .src_len = kBytes, .dst_addr = dst, .dst_len = kBytes};
  if (t.InvokeSync(Oper::kLocalTransfer, sg)) {
    return result;  // the hang never fired; nothing to measure
  }
  if (!dev.engine().RunUntilCondition([&] { return sup.recoveries() == 1; })) {
    return result;
  }
  if (sup.incidents().size() != 1 || !sup.incidents()[0].recovered) {
    return result;
  }

  const Supervisor::Incident& inc = sup.incidents()[0];
  result.ok = true;
  result.detect_latency = inc.detect_latency;
  result.mttr = inc.mttr;
  result.trace_fingerprint = sup.TraceFingerprint();
  result.icap_programs_failed = dev.reconfig_controller().programs_failed();
  result.supervisor_failed_recoveries = sup.failed_recoveries();
  sup.Stop();
  return result;
}

double ToUs(sim::TimePs ps) { return static_cast<double>(ps) / 1e6; }

int Run() {
  constexpr uint64_t kSeed = 7;

  bench::PrintHeader(
      "Recovery MTTR: detection latency + repair time per fault class",
      "Shell supervision layer; app reconfiguration latency per Table 3");
  bench::Row("%-20s %-14s %14s %14s %8s %6s", "scenario", "fault class",
             "detect (us)", "MTTR (us)", "icap.rt", "det.");
  bench::PrintRule();

  bool all_ok = true;
  bool deterministic = true;
  std::vector<Outcome> outcomes;
  for (const Scenario& s : kScenarios) {
    const Outcome a = RunScenario(s.mode, kSeed);
    const Outcome b = RunScenario(s.mode, kSeed);  // same seed: must be bit-identical
    const bool det = a == b;
    all_ok = all_ok && a.ok;
    deterministic = deterministic && det;
    outcomes.push_back(a);
    if (!a.ok) {
      bench::Row("%-20s %-14s %31s", s.name, s.fault_class, "FAILED");
      continue;
    }
    bench::Row("%-20s %-14s %14.2f %14.2f %8llu %6s", s.name, s.fault_class,
               ToUs(a.detect_latency), ToUs(a.mttr),
               static_cast<unsigned long long>(a.icap_programs_failed),
               det ? "yes" : "NO");
  }

  bench::PrintRule();
  bench::Note("detect: last heartbeat progress -> supervisor declares the hang.");
  bench::Note("MTTR: detection -> region reprogrammed and serving (Table-3 latency).");
  bench::Note("icap.rt: transient ICAP aborts absorbed by the driver's program retry;");
  bench::Note("they lengthen MTTR but never reach the supervisor's recovery budget.");
  bench::Note(deterministic ? "det.: same-seed rerun reproduced every number bit-exactly."
                            : "det.: DETERMINISM VIOLATION — same-seed reruns diverged.");

  bench::BenchJsonWriter json("BENCH_recovery.json");
  if (json.ok()) {
    json.Field("bench", "recovery_mttr");
    json.Field("seed", kSeed);
    json.Field("deterministic", deterministic);
    json.BeginArray("scenarios");
    for (size_t i = 0; i < outcomes.size(); ++i) {
      const Scenario& s = kScenarios[i];
      const Outcome& o = outcomes[i];
      json.BeginObject();
      json.Field("name", s.name);
      json.Field("fault_class", s.fault_class);
      json.Field("ok", o.ok);
      json.Field("detect_latency_ps", o.detect_latency);
      json.Field("mttr_ps", o.mttr);
      json.Hex("trace_fingerprint", o.trace_fingerprint);
      json.Field("icap_programs_failed", o.icap_programs_failed);
      json.Field("supervisor_failed_recoveries", o.supervisor_failed_recoveries);
      json.End();
    }
    json.End();
    json.Close();
    bench::Note("wrote BENCH_recovery.json");
  }

  return (all_ok && deterministic) ? 0 : 1;
}

// --shards=N: replay every scenario with its device placed on a shard of an
// N-shard PDES engine and assert the per-fault-class outcome — detection
// latency, MTTR, and the supervisor's trace fingerprint — is bit-identical
// to the classic single-engine run. Each scenario is node-local (no
// cross-shard traffic), so placement must not perturb its schedule.
int RunShardsMode(uint32_t num_shards) {
  constexpr uint64_t kSeed = 7;

  bench::PrintHeader("Recovery MTTR: shard-placement invariance",
                     "same seed, single engine vs shard of an N-shard PDES engine");
  bench::Row("%-20s %-14s %10s", "scenario", "fault class", "identical");
  bench::PrintRule();

  bool all_identical = true;
  for (size_t i = 0; i < std::size(kScenarios); ++i) {
    const Scenario& s = kScenarios[i];
    const Outcome single = RunScenario(s.mode, kSeed);
    sim::ShardedEngine eng(sim::ShardedEngine::Config{
        num_shards, sim::Nanoseconds(100), /*mailbox_capacity=*/4096, /*use_threads=*/false});
    const Outcome sharded =
        RunScenario(s.mode, kSeed, &eng.shard(static_cast<uint32_t>(i) % num_shards));
    const bool same = single.ok && sharded.ok && single == sharded;
    all_identical = all_identical && same;
    bench::Row("%-20s %-14s %10s", s.name, s.fault_class, same ? "yes" : "NO");
  }
  bench::PrintRule();
  bench::Note(all_identical
                  ? "every fault-class fingerprint is bit-identical to single-shard."
                  : "PLACEMENT DIVERGENCE — sharded outcomes differ from single-shard.");
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace coyote

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--shards=", 0) == 0) {
      const int n = std::atoi(arg.c_str() + 9);
      if (n < 1) {
        std::fprintf(stderr, "bad --shards value: %s\n", arg.c_str());
        return 2;
      }
      return coyote::RunShardsMode(static_cast<uint32_t>(n));
    }
  }
  return coyote::Run();
}
