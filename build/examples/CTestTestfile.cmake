# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;11;coyote_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_aes_multithreading "/root/repo/build/examples/aes_multithreading")
set_tests_properties(example_aes_multithreading PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;12;coyote_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hll_daemon "/root/repo/build/examples/hll_daemon")
set_tests_properties(example_hll_daemon PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;13;coyote_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rdma_pingpong "/root/repo/build/examples/rdma_pingpong")
set_tests_properties(example_rdma_pingpong PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;14;coyote_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_traffic_sniffer "/root/repo/build/examples/traffic_sniffer")
set_tests_properties(example_traffic_sniffer PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;15;coyote_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_nn_inference "/root/repo/build/examples/nn_inference")
set_tests_properties(example_nn_inference PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;16;coyote_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pointer_chase "/root/repo/build/examples/pointer_chase")
set_tests_properties(example_pointer_chase PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;17;coyote_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gpu_p2p "/root/repo/build/examples/gpu_p2p")
set_tests_properties(example_gpu_p2p PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;18;coyote_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smartnic_offload "/root/repo/build/examples/smartnic_offload")
set_tests_properties(example_smartnic_offload PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;19;coyote_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_remote_daemon "/root/repo/build/examples/remote_daemon")
set_tests_properties(example_remote_daemon PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;20;coyote_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_db_scan_offload "/root/repo/build/examples/db_scan_offload")
set_tests_properties(example_db_scan_offload PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;21;coyote_example;/root/repo/examples/CMakeLists.txt;0;")
