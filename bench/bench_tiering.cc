// Memory-tiering ablation: hot/cold page placement under HBM oversubscription.
//
// The SVM of paper §6.1 places a page in the tier that first touched it and
// leaves it there ("first EnsureResident wins"). This bench measures what the
// profiling-driven tiering service (src/mmu/tiering.h) buys over that static
// placement when the working set exceeds HBM:
//
//   workloads  — pointer_chase: 64 B dependent reads, 80% of accesses to a
//                20% hot set that is deliberately striped across the whole
//                address range (so half of it starts on the wrong side of
//                PCIe); db_scan: repeated 4 KiB scans of a hot partition that
//                straddles the HBM capacity boundary, interleaved with full
//                table scans (the classic scan-pollution trap for LRU).
//   matrix     — {static, lru-clock, profile-guided} x {1x, 2x, 4x}
//                oversubscription (fast capacity = working set / factor).
//   timing     — closed loop per access: HBM-resident 200 ns; host-resident
//                one 4 KiB fetch over a shared 12 GB/s PCIe link that
//                migration waves also ride (so tiering traffic contends with
//                demand traffic); NVMe-resident one block read (~80 us).
//   cold tier  — a separate 4x arm caps the host tier so the profile-guided
//                policy must demote never-touched pages to NVMe.
//
// The run exits nonzero unless profile-guided beats static by >= 1.5x at 2x
// oversubscription on pointer_chase with lru-clock strictly between, every
// arm's end-of-run data hash matches the pre-run fill (migration moved bytes,
// not meaning), and a same-seed rerun reproduces every metric bit-exactly.
// Simulated-time metrics land in BENCH_tiering.json; wall-clock throughput
// goes under "wall_" keys so determinism diffs can filter it.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/memsys/card_memory.h"
#include "src/memsys/gpu_memory.h"
#include "src/memsys/host_memory.h"
#include "src/memsys/nvme.h"
#include "src/mmu/svm.h"
#include "src/mmu/tiering.h"
#include "src/sim/engine.h"
#include "src/sim/link.h"
#include "src/sim/rng.h"
#include "src/sim/time.h"

namespace coyote {
namespace {

using mmu::MemKind;
using mmu::Svm;
using mmu::Tiering;

constexpr uint64_t kSeed = 17;
constexpr uint64_t kPageBytes = 4096;
constexpr uint64_t kWorkingSetPages = 2048;  // 8 MiB
constexpr uint64_t kHotStride = 5;           // hot set = every 5th page (~20%)
constexpr uint64_t kChaseAccesses = 50'000;
constexpr uint64_t kScanRounds = 10;
constexpr sim::TimePs kFastAccessPs = sim::Nanoseconds(200);
constexpr uint32_t kDemandSource = 0;   // PCIe round-robin: demand fetches
constexpr uint32_t kMigrateSource = 1;  // PCIe round-robin: tiering waves

enum class Workload { kPointerChase, kDbScan };

const char* WorkloadName(Workload w) {
  return w == Workload::kPointerChase ? "pointer_chase" : "db_scan";
}

struct CaseResult {
  sim::TimePs completion = 0;
  uint64_t accesses = 0;
  uint64_t fast_hits = 0;
  uint64_t promotions = 0;
  uint64_t demotions = 0;
  uint64_t cold_demotions = 0;
  uint64_t waves = 0;
  uint64_t migrated_bytes = 0;
  uint64_t occ_fast = 0;
  uint64_t occ_slow = 0;
  uint64_t occ_nvme = 0;
  uint64_t heat_fp = 0;
  uint64_t stats_fp = 0;
  uint64_t data_hash = 0;

  bool operator==(const CaseResult&) const = default;
  double fast_hit_rate() const {
    return accesses ? static_cast<double>(fast_hits) / static_cast<double>(accesses) : 0.0;
  }
};

uint64_t Fnv1a(uint64_t h, const uint8_t* p, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

// One self-contained SVM + tiering stack with a closed-loop access cost
// model. Demand fetches and migration waves share one PCIe link so the
// policies pay for their own traffic.
class TieredStack {
 public:
  TieredStack(Tiering::Policy policy, uint64_t fast_capacity_pages, uint64_t slow_capacity_pages)
      : card_(&engine_, {}),
        nvme_(&engine_, {}),
        svm_(&engine_, &host_, &card_, &gpu_, kPageBytes, &nvme_),
        pcie_(&engine_, PcieConfig()) {
    const uint64_t bytes = kWorkingSetPages * kPageBytes;
    base_ = host_.Allocate(bytes, memsys::AllocKind::kRegular);
    svm_.RegisterHostBuffer(base_, bytes);

    // Deterministic fill; the end-of-run hash proves migrations moved bytes
    // without corrupting them.
    std::vector<uint8_t> page(kPageBytes);
    sim::Rng fill(kSeed);
    uint64_t h = 0xcbf29ce484222325ull;
    for (uint64_t p = 0; p < kWorkingSetPages; ++p) {
      fill.FillBytes(page.data(), page.size());
      svm_.WriteVirtual(base_ + p * kPageBytes, page.data(), page.size());
      h = Fnv1a(h, page.data(), page.size());
    }
    expected_hash_ = h;

    // Static first-EnsureResident-wins baseline: the first `fast_capacity`
    // pages land in HBM, everything else stays host-resident. Placement
    // happens before the timing hooks attach, so setup is free for every arm.
    std::vector<uint64_t> seeded;
    const uint64_t base_vpage = base_ / kPageBytes;
    for (uint64_t p = 0; p < std::min(fast_capacity_pages, kWorkingSetPages); ++p) {
      seeded.push_back(base_vpage + p);
    }
    svm_.MigratePages(seeded, MemKind::kCard, [] {});
    engine_.RunUntilIdle();

    Svm::MigrationHooks hooks;
    hooks.transfer = [this](MemKind from, MemKind to, uint64_t wave_bytes,
                            std::function<void()> done) {
      const auto blocks =
          static_cast<uint32_t>((wave_bytes + nvme_.config().block_bytes - 1) /
                                nvme_.config().block_bytes);
      if (to == MemKind::kNvme) {
        nvme_.WriteCommand(0, blocks, kMigrateSource, std::move(done));
      } else if (from == MemKind::kNvme) {
        nvme_.ReadCommand(0, blocks, kMigrateSource, std::move(done));
      } else {
        auto shared = std::make_shared<std::function<void()>>(std::move(done));
        pcie_.Submit(kMigrateSource, wave_bytes, [shared] { (*shared)(); });
      }
    };
    hooks.invalidate = [](uint64_t) {};
    svm_.set_hooks(std::move(hooks));

    Tiering::Config tc;
    tc.policy = policy;
    tc.fast_capacity_pages = fast_capacity_pages;
    tc.slow_capacity_pages = slow_capacity_pages;
    tc.epoch_ps = sim::Milliseconds(1);
    tiering_ = std::make_unique<Tiering>(&engine_, &svm_, tc);
    svm_.set_profiler(tiering_.get());
    tiering_->Manage(base_, bytes);
    tiering_->Start();
  }

  // One demand access: pay the residency-dependent fetch cost in simulated
  // time, then touch the bytes (which feeds the heat profile).
  void Access(uint64_t page, uint64_t bytes) {
    const uint64_t vaddr = base_ + page * kPageBytes;
    const auto entry = svm_.page_table().Find(vaddr);
    switch (entry->kind) {
      case MemKind::kCard:
      case MemKind::kGpu:
        engine_.RunUntil(engine_.Now() + kFastAccessPs);
        ++fast_hits_;
        break;
      case MemKind::kHost: {
        bool done = false;
        pcie_.Submit(kDemandSource, kPageBytes, [&done] { done = true; });
        engine_.RunUntilCondition([&done] { return done; });
        break;
      }
      case MemKind::kNvme: {
        bool done = false;
        const auto blocks = static_cast<uint32_t>(kPageBytes / nvme_.config().block_bytes);
        nvme_.ReadCommand(0, blocks, kDemandSource, [&done] { done = true; });
        engine_.RunUntilCondition([&done] { return done; });
        break;
      }
    }
    svm_.ReadVirtual(vaddr, scratch_.data(), std::min(bytes, scratch_.size()));
    ++accesses_;
  }

  CaseResult Finish() {
    tiering_->Stop();
    engine_.RunUntilIdle();
    svm_.set_profiler(nullptr);  // the verification sweep is not workload heat

    CaseResult r;
    r.completion = engine_.Now();
    r.accesses = accesses_;
    r.fast_hits = fast_hits_;
    const sim::CounterSet& s = tiering_->stats();
    r.promotions = s.value("tiering.promotions");
    r.demotions = s.value("tiering.demotions");
    r.cold_demotions = s.value("tiering.cold_demotions");
    r.waves = s.value("tiering.waves");
    r.migrated_bytes = s.value("tiering.migrated_bytes");
    r.occ_fast = tiering_->occupancy(MemKind::kCard);
    r.occ_slow = tiering_->occupancy(MemKind::kHost);
    r.occ_nvme = tiering_->occupancy(MemKind::kNvme);
    r.heat_fp = tiering_->HeatHistogram().Fingerprint();
    r.stats_fp = s.Fingerprint();

    std::vector<uint8_t> page(kPageBytes);
    uint64_t h = 0xcbf29ce484222325ull;
    for (uint64_t p = 0; p < kWorkingSetPages; ++p) {
      svm_.ReadVirtual(base_ + p * kPageBytes, page.data(), page.size());
      h = Fnv1a(h, page.data(), page.size());
    }
    r.data_hash = h;
    return r;
  }

  uint64_t expected_hash() const { return expected_hash_; }

 private:
  static sim::Link::Config PcieConfig() {
    sim::Link::Config c;
    c.bytes_per_second = 12'000'000'000ull;  // one PCIe gen4 direction, derated
    c.delivery_latency = sim::Nanoseconds(1500);
    c.name = "pcie";
    return c;
  }

  sim::Engine engine_;
  memsys::HostMemory host_;
  memsys::CardMemory card_;
  memsys::GpuMemory gpu_;
  memsys::NvmeDrive nvme_;
  Svm svm_;
  sim::Link pcie_;
  std::unique_ptr<Tiering> tiering_;
  uint64_t base_ = 0;
  uint64_t expected_hash_ = 0;
  uint64_t accesses_ = 0;
  uint64_t fast_hits_ = 0;
  std::vector<uint8_t> scratch_ = std::vector<uint8_t>(kPageBytes);
};

// 80/20 skew with the hot set striped across the whole range: page p is hot
// iff p % kHotStride == 0, so at 2x oversubscription half the hot set starts
// host-resident and static placement never fixes it.
void DrivePointerChase(TieredStack* stack, uint64_t accesses) {
  sim::Rng rng(kSeed);
  const uint64_t hot_count = kWorkingSetPages / kHotStride;
  for (uint64_t i = 0; i < accesses; ++i) {
    uint64_t page;
    if (rng.NextBounded(10) < 8) {
      page = kHotStride * rng.NextBounded(hot_count);
    } else {
      page = rng.NextBounded(kWorkingSetPages);
    }
    stack->Access(page, 64);
  }
}

// Hot partition straddling the HBM capacity boundary gets scanned 4x per
// round; a full table scan per round tempts demand-driven policies into
// promoting pages that will not be touched again this epoch.
void DriveDbScan(TieredStack* stack, uint64_t fast_capacity_pages, uint64_t rounds) {
  const uint64_t half_window = kWorkingSetPages / 16;
  const uint64_t hot_lo = fast_capacity_pages > half_window ? fast_capacity_pages - half_window : 0;
  const uint64_t hot_hi = std::min(hot_lo + kWorkingSetPages / 8, kWorkingSetPages);
  for (uint64_t r = 0; r < rounds; ++r) {
    for (int s = 0; s < 4; ++s) {
      for (uint64_t p = hot_lo; p < hot_hi; ++p) {
        stack->Access(p, kPageBytes);
      }
    }
    for (uint64_t p = 0; p < kWorkingSetPages; ++p) {
      stack->Access(p, kPageBytes);
    }
  }
}

CaseResult RunCase(Workload w, Tiering::Policy policy, uint64_t oversub,
                   uint64_t slow_capacity_pages, uint64_t* expected_hash) {
  const uint64_t fast_capacity = kWorkingSetPages / oversub;
  TieredStack stack(policy, fast_capacity, slow_capacity_pages);
  if (w == Workload::kPointerChase) {
    DrivePointerChase(&stack, kChaseAccesses);
  } else {
    DriveDbScan(&stack, fast_capacity, kScanRounds);
  }
  if (expected_hash != nullptr) {
    *expected_hash = stack.expected_hash();
  }
  return stack.Finish();
}

double ToMs(sim::TimePs ps) { return static_cast<double>(ps) / 1e9; }

void EmitCase(bench::BenchJsonWriter* json, const char* key, Workload w, Tiering::Policy p,
              uint64_t oversub, const CaseResult& r) {
  json->BeginObject(key);
  json->Field("workload", WorkloadName(w));
  json->Field("policy", Tiering::PolicyName(p));
  json->Field("oversubscription", oversub);
  json->Field("completion_ps", r.completion);
  json->Field("accesses", r.accesses);
  json->Field("fast_hits", r.fast_hits);
  json->Field("fast_hit_rate", r.fast_hit_rate());
  json->Field("promotions", r.promotions);
  json->Field("demotions", r.demotions);
  json->Field("cold_demotions", r.cold_demotions);
  json->Field("waves", r.waves);
  json->Field("migrated_bytes", r.migrated_bytes);
  json->Field("occupancy_hbm", r.occ_fast);
  json->Field("occupancy_host", r.occ_slow);
  json->Field("occupancy_nvme", r.occ_nvme);
  json->Hex("heat_fingerprint", r.heat_fp);
  json->Hex("stats_fingerprint", r.stats_fp);
  json->Hex("data_hash", r.data_hash);
  json->End();
}

int Run() {
  bench::PrintHeader("Memory tiering: policy ablation under HBM oversubscription",
                     "profiling-driven placement over the paper's §6.1 unified memory");

  constexpr Workload kWorkloads[] = {Workload::kPointerChase, Workload::kDbScan};
  constexpr Tiering::Policy kPolicies[] = {Tiering::Policy::kStatic, Tiering::Policy::kLruClock,
                                           Tiering::Policy::kProfileGuided};
  constexpr uint64_t kOversubs[] = {1, 2, 4};

  bench::WallTimer wall;
  uint64_t expected_hash = 0;
  // results[workload][oversub_index][policy_index]
  CaseResult results[2][3][3];
  for (size_t wi = 0; wi < 2; ++wi) {
    for (size_t oi = 0; oi < 3; ++oi) {
      for (size_t pi = 0; pi < 3; ++pi) {
        results[wi][oi][pi] =
            RunCase(kWorkloads[wi], kPolicies[pi], kOversubs[oi], 0, &expected_hash);
      }
    }
  }

  // Same-seed determinism witness: the acceptance cell, run again from
  // scratch, must reproduce every metric bit-exactly.
  const CaseResult rerun =
      RunCase(Workload::kPointerChase, Tiering::Policy::kProfileGuided, 2, 0, nullptr);
  const bool rerun_identical = rerun == results[0][1][2];

  // Cold-tier arm: 4x oversubscribed with the host tier capped, forcing the
  // profile-guided policy to demote never-touched pages to NVMe.
  const CaseResult nvme_case = RunCase(Workload::kPointerChase, Tiering::Policy::kProfileGuided, 4,
                                       /*slow_capacity_pages=*/768, nullptr);
  const double wall_s = wall.Seconds();

  bench::Row("%-14s %4s %-15s %14s %10s %10s %10s %8s", "workload", "over", "policy",
             "completion(ms)", "hit-rate", "promote", "demote", "waves");
  bench::PrintRule();
  for (size_t wi = 0; wi < 2; ++wi) {
    for (size_t oi = 0; oi < 3; ++oi) {
      for (size_t pi = 0; pi < 3; ++pi) {
        const CaseResult& r = results[wi][oi][pi];
        bench::Row("%-14s %3llux %-15s %14.2f %9.1f%% %10llu %10llu %8llu",
                   WorkloadName(kWorkloads[wi]), static_cast<unsigned long long>(kOversubs[oi]),
                   Tiering::PolicyName(kPolicies[pi]), ToMs(r.completion),
                   100.0 * r.fast_hit_rate(), static_cast<unsigned long long>(r.promotions),
                   static_cast<unsigned long long>(r.demotions),
                   static_cast<unsigned long long>(r.waves));
      }
    }
  }
  bench::PrintRule();
  bench::Row("%-14s %3s %-15s %14.2f %9.1f%% %10llu %10llu %8llu  (nvme cold tier: %llu pages)",
             "pointer_chase", "4x", "pg+nvme", ToMs(nvme_case.completion),
             100.0 * nvme_case.fast_hit_rate(),
             static_cast<unsigned long long>(nvme_case.promotions),
             static_cast<unsigned long long>(nvme_case.demotions),
             static_cast<unsigned long long>(nvme_case.waves),
             static_cast<unsigned long long>(nvme_case.occ_nvme));

  // --- Acceptance -----------------------------------------------------------
  const CaseResult& pc2_static = results[0][1][0];
  const CaseResult& pc2_lru = results[0][1][1];
  const CaseResult& pc2_pg = results[0][1][2];
  const double speedup_pg =
      static_cast<double>(pc2_static.completion) / static_cast<double>(pc2_pg.completion);
  const double speedup_lru =
      static_cast<double>(pc2_static.completion) / static_cast<double>(pc2_lru.completion);

  bool data_intact = nvme_case.data_hash == expected_hash;
  bool no_migration_at_1x = true;
  for (size_t wi = 0; wi < 2; ++wi) {
    for (size_t pi = 0; pi < 3; ++pi) {
      const CaseResult& r = results[wi][0][pi];
      no_migration_at_1x = no_migration_at_1x && r.promotions == 0 && r.demotions == 0;
    }
    for (size_t oi = 0; oi < 3; ++oi) {
      for (size_t pi = 0; pi < 3; ++pi) {
        data_intact = data_intact && results[wi][oi][pi].data_hash == expected_hash;
      }
    }
  }
  const bool ordering_ok =
      pc2_pg.completion < pc2_lru.completion && pc2_lru.completion < pc2_static.completion;
  const bool speedup_ok = speedup_pg >= 1.5;
  const bool static_never_moves =
      results[0][1][0].promotions == 0 && results[1][1][0].promotions == 0;
  const bool nvme_ok = nvme_case.cold_demotions > 0 && nvme_case.occ_nvme > 0;
  const bool db2_ok = results[1][1][2].completion < results[1][1][0].completion;

  bench::Note("pointer_chase @2x: profile-guided " + std::to_string(speedup_pg) +
              "x over static, lru-clock " + std::to_string(speedup_lru) + "x.");
  bench::Note(ordering_ok && speedup_ok
                  ? "acceptance: pg >= 1.5x static with lru-clock strictly between."
                  : "ACCEPTANCE FAILURE: policy ordering or speedup floor not met.");
  bench::Note(no_migration_at_1x ? "1x arms planned zero moves (no oversubscription, no churn)."
                                 : "UNEXPECTED MIGRATIONS AT 1x.");
  bench::Note(data_intact ? "every arm's end-of-run data hash matches the pre-run fill."
                          : "DATA CORRUPTION ACROSS MIGRATIONS.");
  bench::Note(nvme_ok ? "capped host tier demoted cold pages to NVMe (" +
                            std::to_string(nvme_case.cold_demotions) + " demotions)."
                      : "NVME COLD TIER NEVER ENGAGED.");
  bench::Note(rerun_identical ? "same-seed rerun reproduced every metric bit-exactly."
                              : "SAME-SEED DETERMINISM VIOLATION.");

  bench::BenchJsonWriter json("BENCH_tiering.json");
  if (json.ok()) {
    json.Field("bench", "tiering");
    json.Field("seed", kSeed);
    json.Field("page_bytes", kPageBytes);
    json.Field("working_set_pages", kWorkingSetPages);
    json.Field("chase_accesses", kChaseAccesses);
    json.Field("scan_rounds", kScanRounds);
    json.Field("speedup_pg_vs_static_2x", speedup_pg);
    json.Field("speedup_lru_vs_static_2x", speedup_lru);
    json.Field("deterministic_same_seed", rerun_identical);
    json.Field("data_intact", data_intact);
    json.BeginArray("cases");
    for (size_t wi = 0; wi < 2; ++wi) {
      for (size_t oi = 0; oi < 3; ++oi) {
        for (size_t pi = 0; pi < 3; ++pi) {
          EmitCase(&json, nullptr, kWorkloads[wi], kPolicies[pi], kOversubs[oi],
                   results[wi][oi][pi]);
        }
      }
    }
    json.End();
    json.Field("nvme_slow_capacity_pages", 768);
    EmitCase(&json, "nvme_cold_tier", Workload::kPointerChase, Tiering::Policy::kProfileGuided, 4,
             nvme_case);
    json.Wall("runtime_s", wall_s);
    json.Close();
    bench::Note("wrote BENCH_tiering.json");
  }

  return (ordering_ok && speedup_ok && static_never_moves && no_migration_at_1x && data_intact &&
          nvme_ok && db2_ok && rerun_identical)
             ? 0
             : 1;
}

}  // namespace
}  // namespace coyote

int main() { return coyote::Run(); }
