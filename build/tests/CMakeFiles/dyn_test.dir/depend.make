# Empty dependencies file for dyn_test.
# This may be replaced when dependencies are built.
