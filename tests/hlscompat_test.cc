// Unit tests for the hls4ml integration layer: model building, software
// emulation vs hardware bit-exactness, backend differences, overlays.

#include <gtest/gtest.h>

#include <vector>

#include "src/hlscompat/hls_model.h"
#include "src/hlscompat/overlay.h"
#include "src/runtime/device.h"
#include "src/services/nn.h"
#include "src/sim/rng.h"

namespace coyote {
namespace hlscompat {
namespace {

runtime::SimDevice::Config DeviceConfig() {
  runtime::SimDevice::Config cfg;
  cfg.shell.name = "nn-test";
  cfg.shell.services = {fabric::Service::kHostStream, fabric::Service::kCardMemory};
  cfg.shell.num_vfpgas = 1;
  return cfg;
}

std::vector<int8_t> RandomInputs(size_t samples, uint32_t dim, uint64_t seed) {
  std::vector<int8_t> v(samples * dim);
  sim::Rng rng(seed);
  for (auto& x : v) {
    x = static_cast<int8_t>(static_cast<int64_t>(rng.NextBounded(255)) - 127);
  }
  return v;
}

TEST(HlsModelTest, BackendNames) {
  EXPECT_EQ(BackendName(Backend::kCoyoteAccelerator), "CoyoteAccelerator");
  EXPECT_EQ(BackendName(Backend::kPynqVitis), "PYNQ/Vitis");
}

TEST(HlsModelTest, EmulationMatchesDirectForward) {
  const services::MlpSpec spec = services::MakeIntrusionDetectionMlp();
  HlsModel model(spec, Backend::kCoyoteAccelerator);
  const auto inputs = RandomInputs(10, spec.input_dim(), 1);
  const auto out = model.PredictEmulated(inputs, 10);
  ASSERT_EQ(out.size(), 10u * spec.output_dim());
  for (int s = 0; s < 10; ++s) {
    const auto direct = services::MlpForward(spec, &inputs[s * spec.input_dim()]);
    for (uint32_t j = 0; j < spec.output_dim(); ++j) {
      EXPECT_EQ(out[s * spec.output_dim() + j], direct[j]);
    }
  }
}

TEST(HlsModelTest, BuildReportsResourcesAndTimes) {
  const services::MlpSpec spec = services::MakeIntrusionDetectionMlp();
  const fabric::Floorplan fp = fabric::Floorplan::ForPart(fabric::kAlveoU55C, 1);
  const CompiledModel coyote = HlsModel(spec, Backend::kCoyoteAccelerator).Build(fp);
  const CompiledModel pynq = HlsModel(spec, Backend::kPynqVitis).Build(fp);
  // Same kernel both ways.
  EXPECT_EQ(coyote.kernel_resources.dsp, pynq.kernel_resources.dsp);
  // Coyote links against a prebuilt shell: faster build.
  EXPECT_LT(coyote.build_seconds, pynq.build_seconds);
  // Totals comparable (the Fig. 12 claim): within 2.5x either way.
  const double ratio = static_cast<double>(coyote.total_resources().luts) /
                       static_cast<double>(pynq.total_resources().luts);
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 2.5);
}

TEST(OverlayTest, CoyotePredictIsBitExactVsEmulation) {
  const services::MlpSpec spec = services::MakeIntrusionDetectionMlp();
  const fabric::Floorplan fp = fabric::Floorplan::ForPart(fabric::kAlveoU55C, 1);
  HlsModel model(spec, Backend::kCoyoteAccelerator);
  const CompiledModel built = model.Build(fp);

  runtime::SimDevice dev(DeviceConfig());
  CoyoteOverlay overlay(&dev, built);
  EXPECT_GT(overlay.ProgramFpga(), 0u);

  constexpr size_t kSamples = 500;
  const auto inputs = RandomInputs(kSamples, spec.input_dim(), 2);
  const auto result = overlay.Predict(inputs, kSamples, 128);
  EXPECT_EQ(result.outputs, model.PredictEmulated(inputs, kSamples));
  EXPECT_GT(result.samples_per_second, 0.0);
}

TEST(OverlayTest, PynqPredictIsBitExactButSlower) {
  const services::MlpSpec spec = services::MakeIntrusionDetectionMlp();
  const fabric::Floorplan fp = fabric::Floorplan::ForPart(fabric::kAlveoU55C, 1);
  HlsModel model(spec, Backend::kPynqVitis);
  const CompiledModel built = model.Build(fp);

  constexpr size_t kSamples = 500;
  const auto inputs = RandomInputs(kSamples, spec.input_dim(), 3);
  const auto reference = model.PredictEmulated(inputs, kSamples);

  runtime::SimDevice dev_p(DeviceConfig());
  PynqBaseline baseline(&dev_p, built);
  baseline.ProgramFpga();
  const auto pynq = baseline.Predict(inputs, kSamples, 128);
  EXPECT_EQ(pynq.outputs, reference);

  runtime::SimDevice dev_c(DeviceConfig());
  CoyoteOverlay overlay(&dev_c, HlsModel(spec, Backend::kCoyoteAccelerator).Build(fp));
  overlay.ProgramFpga();
  const auto coyote = overlay.Predict(inputs, kSamples, 128);
  EXPECT_EQ(coyote.outputs, reference);

  // The headline claim: order-of-magnitude advantage for direct streaming.
  EXPECT_GT(coyote.samples_per_second / pynq.samples_per_second, 8.0);
}

TEST(HlsModelTest, ReuseFactorTradesDspForThroughput) {
  // hls4ml's central knob: higher reuse -> fewer DSPs, higher II (lower
  // throughput), slightly higher latency.
  services::MlpSpec base = services::MakeIntrusionDetectionMlp();
  services::MlpSpec parallel = base;
  parallel.reuse_factor = 1;
  services::MlpSpec frugal = base;
  frugal.reuse_factor = 16;

  EXPECT_LT(parallel.IiCycles(), frugal.IiCycles());
  EXPECT_GT(parallel.EstimateResources().dsp, frugal.EstimateResources().dsp);
  EXPECT_LE(parallel.LatencyCycles(), frugal.LatencyCycles());
  // DSPs scale ~1/reuse.
  EXPECT_NEAR(static_cast<double>(parallel.EstimateResources().dsp),
              16.0 * static_cast<double>(frugal.EstimateResources().dsp),
              static_cast<double>(parallel.EstimateResources().dsp) * 0.05);
  // Outputs are identical regardless of the schedule.
  const auto inputs = RandomInputs(8, base.input_dim(), 12);
  EXPECT_EQ(HlsModel(parallel, Backend::kCoyoteAccelerator).PredictEmulated(inputs, 8),
            HlsModel(frugal, Backend::kCoyoteAccelerator).PredictEmulated(inputs, 8));
}

TEST(OverlayTest, BackendIsModelAgnosticConvNet) {
  // §9.7: "any model that is supported by hls4ml can be deployed with
  // Coyote v2" — same flow, CNN instead of MLP, still bit-exact.
  const services::MlpSpec spec = services::MakeConv1dClassifier();
  const fabric::Floorplan fp = fabric::Floorplan::ForPart(fabric::kAlveoU55C, 1);
  HlsModel model(spec, Backend::kCoyoteAccelerator);
  const CompiledModel built = model.Build(fp);
  EXPECT_GT(built.kernel_resources.dsp, 0u);

  runtime::SimDevice dev(DeviceConfig());
  CoyoteOverlay overlay(&dev, built);
  overlay.ProgramFpga();
  constexpr size_t kSamples = 64;
  const auto inputs = RandomInputs(kSamples, spec.input_dim(), 9);
  const auto result = overlay.Predict(inputs, kSamples, 16);
  EXPECT_EQ(result.outputs, model.PredictEmulated(inputs, kSamples));
}

// Property: bit-exactness holds across batch sizes (batches that split
// samples across packets must not corrupt outputs).
class BatchSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(BatchSweep, OutputsIndependentOfBatching) {
  const services::MlpSpec spec = services::MakeIntrusionDetectionMlp();
  const fabric::Floorplan fp = fabric::Floorplan::ForPart(fabric::kAlveoU55C, 1);
  HlsModel model(spec, Backend::kCoyoteAccelerator);
  const CompiledModel built = model.Build(fp);

  constexpr size_t kSamples = 257;  // deliberately not a power of two
  const auto inputs = RandomInputs(kSamples, spec.input_dim(), 4);
  const auto reference = model.PredictEmulated(inputs, kSamples);

  runtime::SimDevice dev(DeviceConfig());
  CoyoteOverlay overlay(&dev, built);
  overlay.ProgramFpga();
  EXPECT_EQ(overlay.Predict(inputs, kSamples, GetParam()).outputs, reference);
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchSweep, ::testing::Values(1, 3, 64, 100, 257, 1000));

}  // namespace
}  // namespace hlscompat
}  // namespace coyote
