// XDMA core model (paper §5.1).
//
// The static layer's CPU<->FPGA link: a DMA wrapper over the hardened PCIe
// block, controllable from both sides. Exposes the four channels the paper
// describes: shell control (BAR-mapped registers), the host streaming
// channel, the migration channel, and the two-sided utility channel used for
// bitstream delivery, writeback counters and MSI-X interrupts.

#ifndef SRC_DYN_XDMA_H_
#define SRC_DYN_XDMA_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "src/axi/axi_lite.h"
#include "src/sim/engine.h"
#include "src/sim/fault.h"
#include "src/sim/link.h"
#include "src/sim/time.h"

namespace coyote {
namespace dyn {

class XdmaCore {
 public:
  struct Config {
    // Effective per-direction host bandwidth. ~12 GB/s is what the paper
    // measures on the U55C (§9.4) once PCIe/DMA overheads are folded in.
    uint64_t h2c_bps = 12'000'000'000ull;
    uint64_t c2h_bps = 12'000'000'000ull;
    sim::TimePs per_packet_overhead = 0;  // descriptor cost, ablation knob
    // PCIe round-trip latency per transfer (pipelined; throughput intact).
    sim::TimePs pcie_latency = sim::Nanoseconds(900);
    // MSI-X delivery: device write -> IOMMU -> LAPIC -> kernel ISR.
    sim::TimePs msix_latency = sim::Microseconds(2);
    // One BAR register access over PCIe (posted write / non-posted read).
    sim::TimePs bar_write_latency = sim::Nanoseconds(300);
    sim::TimePs bar_read_latency = sim::Nanoseconds(800);
  };

  using MsixHandler = std::function<void(uint32_t vector, uint64_t value)>;

  XdmaCore(sim::Engine* engine, const Config& config)
      : engine_(engine),
        config_(config),
        h2c_(engine, {config.h2c_bps, config.per_packet_overhead, config.pcie_latency,
                      "xdma_h2c"}),
        c2h_(engine, {config.c2h_bps, config.per_packet_overhead, config.pcie_latency,
                      "xdma_c2h"}) {}

  // Host -> card direction (reads from host memory).
  sim::Link& h2c() { return h2c_; }
  // Card -> host direction (writes to host memory).
  sim::Link& c2h() { return c2h_; }

  // Shell control: BAR-mapped register space (TLB control, network config,
  // interrupt registers, per-vFPGA CSR windows).
  axi::AxiLiteRegisterFile& bar() { return bar_; }

  // Raises an MSI-X interrupt towards the host. The driver's handler runs
  // after the delivery latency. Sources include page faults, reconfiguration
  // completions, TLB invalidations and user-issued interrupts (§5.1).
  void RaiseMsix(uint32_t vector, uint64_t value) {
    ++msix_raised_;
    engine_->ScheduleAfter(config_.msix_latency, [this, vector, value]() {
      if (msix_handler_) {
        msix_handler_(vector, value);
      }
    });
  }

  void SetMsixHandler(MsixHandler handler) { msix_handler_ = std::move(handler); }

  // Fault injection: each DMA packet in either direction may stall the link
  // (a PCIe replay, a host-memory backpressure hiccup). nullptr detaches.
  void SetFaultInjector(sim::FaultInjector* injector) {
    if (injector == nullptr) {
      h2c_.SetFaultHook(nullptr);
      c2h_.SetFaultHook(nullptr);
      return;
    }
    h2c_.SetFaultHook([injector](uint64_t) { return injector->NextXdmaStall(); });
    c2h_.SetFaultHook([injector](uint64_t) { return injector->NextXdmaStall(); });
  }

  const Config& config() const { return config_; }
  uint64_t msix_raised() const { return msix_raised_; }

 private:
  sim::Engine* engine_;
  Config config_;
  sim::Link h2c_;
  sim::Link c2h_;
  axi::AxiLiteRegisterFile bar_;
  MsixHandler msix_handler_;
  uint64_t msix_raised_ = 0;
};

}  // namespace dyn
}  // namespace coyote

#endif  // SRC_DYN_XDMA_H_
