// Table 1: the Coyote v2 feature row, demonstrated live.
//
// The paper's Table 1 compares shells along eight feature axes. This bench
// re-derives the Coyote v2 row by *probing* each feature on the running
// system — every check mark is backed by an actual operation, not a claim.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/net/network.h"
#include "src/runtime/crcnfg.h"
#include "src/runtime/cthread.h"
#include "src/runtime/device.h"
#include "src/services/aes_kernels.h"
#include "src/services/vector_kernels.h"
#include "src/sim/rng.h"
#include "src/synth/flow.h"
#include "src/synth/netlist.h"

namespace coyote {
namespace {

void Check(const char* feature, bool ok, const char* evidence) {
  bench::Row("%-38s %-4s %s", feature, ok ? "[x]" : "[ ]", evidence);
}

void Run() {
  bench::PrintHeader("Feature matrix probes (the Coyote v2 row)", "Coyote v2 paper, Table 1");
  bench::Row("%-38s %-4s %s", "Feature", "", "Evidence (probed live)");
  bench::PrintRule();

  sim::Engine engine;
  net::Network network(&engine, {});

  runtime::SimDevice::Config cfg;
  cfg.shell.name = "table1";
  cfg.shell.services = {fabric::Service::kHostStream, fabric::Service::kCardMemory,
                        fabric::Service::kRdma};
  cfg.shell.num_vfpgas = 2;
  cfg.vfpga.num_host_streams = 4;
  runtime::SimDevice dev(cfg, &network, &engine);
  dev.RegisterKernelFactory("passthrough",
                            []() { return std::make_unique<services::PassthroughKernel>(); });
  dev.RegisterKernelFactory("aes_ecb",
                            []() { return std::make_unique<services::AesEcbKernel>(); });

  // 1. Services: the shell instantiated memory + networking services.
  Check("Services", dev.roce() != nullptr && &dev.card_memory() != nullptr,
        "shell built with card memory + RoCE v2 stack");

  // 2. Service reconfiguration: swap to a different service set at run time.
  synth::BuildFlow flow(dev.floorplan());
  fabric::ShellConfigDesc next = cfg.shell;
  next.name = "no-net";
  next.services = {fabric::Service::kHostStream, fabric::Service::kCardMemory};
  const auto next_built = flow.RunShellFlow(next, {});
  dev.WriteBitstreamFile("/bit/no-net.bin", next_built.shell_bitstream);
  runtime::CRcnfg rcnfg(&dev);
  const auto sr = rcnfg.ReconfigureShell("/bit/no-net.bin");
  Check("Service reconfiguration", sr.ok && dev.roce() == nullptr,
        "RDMA service removed at run time without reboot");

  // Rebuild the original shell for the remaining probes.
  const auto orig_built = flow.RunShellFlow(cfg.shell, {});
  dev.WriteBitstreamFile("/bit/orig.bin", orig_built.shell_bitstream);
  rcnfg.ReconfigureShell("/bit/orig.bin");

  // 3. Shared virtual memory: one buffer migrates host -> card and back with
  //    data intact, accessed by virtual address throughout.
  runtime::CThread t0(&dev, 0);
  const uint64_t buf = t0.GetMem({runtime::Alloc::kHpf, 1 << 20});
  std::vector<uint8_t> data(1 << 20);
  sim::Rng rng(1);
  rng.FillBytes(data.data(), data.size());
  t0.WriteBuffer(buf, data.data(), data.size());
  runtime::SgEntry mig;
  mig.local.src_addr = buf;
  mig.local.src_len = 1 << 20;
  bool svm_ok = t0.InvokeSync(runtime::Oper::kMigrateToCard, mig);
  svm_ok = svm_ok && dev.svm().page_table().Find(buf)->kind == mmu::MemKind::kCard;
  std::vector<uint8_t> back(data.size());
  t0.ReadBuffer(buf, back.data(), back.size());
  svm_ok = svm_ok && back == data;
  Check("Shared virtual memory", svm_ok, "page migrated host->card, same vaddr, data intact");

  // 4. Multiple reconfigurable applications: different kernels into the two
  //    regions, independently.
  const auto app_flow_pt =
      flow.RunAppFlow(synth::Netlist{"passthrough", {synth::LibraryModule("passthrough")}}, 0,
                      orig_built);
  const auto app_flow_aes = flow.RunAppFlow(
      synth::Netlist{"aes_ecb", {synth::LibraryModule("aes_core")}}, 1, orig_built);
  dev.WriteBitstreamFile("/bit/pt.bin", app_flow_pt.app_bitstreams[0]);
  dev.WriteBitstreamFile("/bit/aes.bin", app_flow_aes.app_bitstreams[0]);
  const bool apps_ok = rcnfg.ReconfigureApp("/bit/pt.bin", 0).ok &&
                       rcnfg.ReconfigureApp("/bit/aes.bin", 1).ok &&
                       dev.vfpga(0).kernel()->name() == "passthrough" &&
                       dev.vfpga(1).kernel()->name() == "aes_ecb";
  Check("Multiple reconfigurable applications", apps_ok,
        "passthrough -> vFPGA0, AES -> vFPGA1, independent partial reconfig");

  // 5. Multi-threading: two cThreads on ONE vFPGA, distinct streams/TIDs.
  runtime::CThread a(&dev, 0), b(&dev, 0);
  const uint64_t sa = a.GetMem({runtime::Alloc::kHpf, 4096});
  const uint64_t da = a.GetMem({runtime::Alloc::kHpf, 4096});
  const uint64_t sb = b.GetMem({runtime::Alloc::kHpf, 4096});
  const uint64_t db = b.GetMem({runtime::Alloc::kHpf, 4096});
  a.WriteBuffer(sa, data.data(), 4096);
  b.WriteBuffer(sb, data.data() + 4096, 4096);
  runtime::SgEntry sga, sgb;
  sga.local = {.src_addr = sa, .src_len = 4096, .dst_addr = da, .dst_len = 4096};
  sgb.local = {.src_addr = sb, .src_len = 4096, .dst_addr = db, .dst_len = 4096};
  auto ta = a.Invoke(runtime::Oper::kLocalTransfer, sga);
  auto tb = b.Invoke(runtime::Oper::kLocalTransfer, sgb);
  const bool mt_ok = a.Wait(ta) && b.Wait(tb) && a.ctid() != b.ctid();
  Check("Multi-threading", mt_ok, "2 cThreads, 1 vFPGA, concurrent transfers, distinct TIDs");

  // 6. Application interface: host, card AND network streams, multiple each.
  const auto& vcfg = dev.vfpga(0).config();
  Check("App interface: host/card/net (multiple)",
        vcfg.num_host_streams > 1 && vcfg.num_card_streams > 1 && vcfg.num_net_streams >= 1,
        "parallel AXI4 streams on all three interfaces + HW send queues");

  // 7. Interrupts: kernel-raised user interrupt reaches the host callback.
  bool irq_seen = false;
  a.SetInterruptCallback([&](uint64_t) { irq_seen = true; });
  dev.vfpga(0).RaiseUserInterrupt(42);
  engine.RunUntilIdle();
  Check("Interrupts", irq_seen, "user interrupt -> MSI-X -> eventfd-style callback");

  // 8. Open source: this repository.
  Check("Open source", true, "this reproduction, MIT-licensed");

  bench::PrintRule();
  bench::Note("Every probe exercised the live simulated shell; compare with the paper's");
  bench::Note("Table 1 row for Coyote v2 (all eight features supported).");
}

}  // namespace
}  // namespace coyote

int main() {
  coyote::Run();
  return 0;
}
