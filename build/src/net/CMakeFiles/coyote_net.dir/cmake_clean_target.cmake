file(REMOVE_RECURSE
  "libcoyote_net.a"
)
