// RoCE v2 packet formats.
//
// BALBOA (paper §6.2) is fully RoCE v2-compliant so a Coyote FPGA can talk
// to commodity RDMA NICs. We serialize real frames — Ethernet / IPv4 / UDP
// (port 4791) / InfiniBand BTH (+RETH/AETH) / payload / ICRC — so that the
// traffic sniffer's PCAP output (§8) is well-formed and byte-accurate.

#ifndef SRC_NET_PACKETS_H_
#define SRC_NET_PACKETS_H_

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/axi/buffer.h"

namespace coyote {
namespace net {

inline constexpr uint16_t kRoceUdpPort = 4791;

// InfiniBand transport opcodes (RC subset BALBOA implements).
enum class Opcode : uint8_t {
  kSendFirst = 0x00,
  kSendMiddle = 0x01,
  kSendLast = 0x02,
  kSendOnly = 0x04,
  kWriteFirst = 0x06,
  kWriteMiddle = 0x07,
  kWriteLast = 0x08,
  kWriteOnly = 0x0A,
  kReadRequest = 0x0C,
  kReadResponseFirst = 0x0D,
  kReadResponseMiddle = 0x0E,
  kReadResponseLast = 0x0F,
  kReadResponseOnly = 0x10,
  kAck = 0x11,
};

bool OpcodeHasReth(Opcode op);
bool OpcodeHasAeth(Opcode op);
bool OpcodeIsLastOrOnly(Opcode op);
bool OpcodeIsReadResponse(Opcode op);

struct MacAddr {
  std::array<uint8_t, 6> bytes{};
  bool operator==(const MacAddr&) const = default;
};

// Everything needed to build or interpret one RoCE v2 frame.
struct FrameMeta {
  MacAddr dst_mac;
  MacAddr src_mac;
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  Opcode opcode = Opcode::kSendOnly;
  uint32_t dest_qpn = 0;
  uint32_t psn = 0;
  bool ack_req = false;

  // RETH (RDMA write / read request).
  uint64_t reth_vaddr = 0;
  uint32_t reth_rkey = 0;
  uint32_t reth_len = 0;

  // AETH (acks, read responses).
  uint8_t aeth_syndrome = 0;  // 0 = ACK, 0x60|code = NAK
  uint32_t aeth_msn = 0;
};

// Wire sizes.
inline constexpr size_t kEthHeaderBytes = 14;
inline constexpr size_t kIpv4HeaderBytes = 20;
inline constexpr size_t kUdpHeaderBytes = 8;
inline constexpr size_t kBthBytes = 12;
inline constexpr size_t kRethBytes = 16;
inline constexpr size_t kAethBytes = 4;
inline constexpr size_t kIcrcBytes = 4;

// Total header overhead of a frame carrying `op`.
size_t FrameOverheadBytes(Opcode op);

// Serializes a frame; `payload` may be empty (pure ACK / read request).
// Serialization inherently copies the payload bytes into the frame — this is
// the one copy a transmitted payload pays; everything downstream shares it.
std::vector<uint8_t> BuildFrame(const FrameMeta& meta, const axi::BufferView& payload);

// Parses a frame built by BuildFrame (or any RoCE v2 frame with the same
// layout). Returns nullopt if the frame is malformed or not RoCE. The
// payload is a zero-copy slice of `frame` (it shares the frame's storage).
struct ParsedFrame {
  FrameMeta meta;
  axi::BufferView payload;
};
std::optional<ParsedFrame> ParseFrame(const axi::BufferView& frame);

}  // namespace net
}  // namespace coyote

#endif  // SRC_NET_PACKETS_H_
