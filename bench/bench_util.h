// Shared helpers for the benchmark harness.
//
// Each bench binary regenerates one table or figure of the paper: it builds
// the workload, sweeps the paper's parameters on the simulated substrate and
// prints the same rows/series the paper reports, alongside the paper's
// values where the paper states them. Absolute numbers come from calibrated
// models (see DESIGN.md); the claims under test are the *shapes*: orderings,
// scaling trends, crossovers and factors.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <string>

namespace coyote {
namespace bench {

inline void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("\n==============================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================================\n");
}

inline void PrintRule() {
  std::printf("------------------------------------------------------------------------------\n");
}

inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void Note(const std::string& text) { std::printf("  %s\n", text.c_str()); }

}  // namespace bench
}  // namespace coyote

#endif  // BENCH_BENCH_UTIL_H_
