// Collective communication over the RDMA service (paper §10 future work,
// after ACCL [22]).
//
// The paper lists collective communication as the next service to add on
// top of Coyote v2's RDMA stack. This module implements the classic
// algorithms over a fully connected mesh of RoCE queue pairs:
//
//   * Broadcast   — binomial tree, log2(N) rounds.
//   * AllGather   — ring, N-1 steps of neighbor exchange.
//   * AllReduce   — ring reduce-scatter + ring all-gather (bandwidth
//                   optimal: 2*(N-1)/N of the data per link).
//
// Functional on real buffer bytes in each node's shared virtual memory;
// timing falls out of the RDMA/network substrate.

#ifndef SRC_NET_COLLECTIVES_H_
#define SRC_NET_COLLECTIVES_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/mmu/svm.h"
#include "src/net/roce.h"
#include "src/sim/engine.h"

namespace coyote {
namespace net {

class CollectiveGroup {
 public:
  struct Member {
    RoceStack* stack = nullptr;
    mmu::Svm* svm = nullptr;
    // Scratch buffer in this member's address space, at least
    // 2 * data_bytes large, used for staging incoming fragments.
    uint64_t scratch_vaddr = 0;
  };

  // ok=false when any per-peer work request inside the collective failed
  // (e.g. a QP hit its retry budget). The whole collective fails with ONE
  // error completion — the continuation chain never strands a caller.
  using Completion = std::function<void(bool ok)>;

  // Builds the group and connects a full QP mesh between all members.
  CollectiveGroup(sim::Engine* engine, std::vector<Member> members);

  size_t size() const { return members_.size(); }

  // Broadcast `bytes` at `vaddr` (an address valid in every member's address
  // space) from `root` to all members, binomial tree.
  void Broadcast(uint32_t root, uint64_t vaddr, uint64_t bytes, Completion done);

  // AllReduce (element-wise int32 sum) of `count` elements at `vaddr` in
  // every member's space. On completion every member holds the global sum.
  void AllReduceInt32(uint64_t vaddr, uint64_t count, Completion done);

  // AllGather: member i contributes `chunk_bytes` at vaddr + i*chunk_bytes;
  // afterwards all members hold all N chunks.
  void AllGather(uint64_t vaddr, uint64_t chunk_bytes, Completion done);

  uint64_t broadcasts() const { return broadcasts_; }
  uint64_t allreduces() const { return allreduces_; }
  uint64_t failed_collectives() const { return failed_collectives_; }

 private:
  uint32_t QpFor(uint32_t from, uint32_t to) const { return qp_[from][to]; }
  void RingStep(uint64_t vaddr, uint64_t chunk_bytes, uint32_t steps, bool reduce,
                Completion done);

  sim::Engine* engine_;
  std::vector<Member> members_;
  std::vector<std::vector<uint32_t>> qp_;  // [from][to] -> local qpn at `from`

  uint64_t broadcasts_ = 0;
  uint64_t allreduces_ = 0;
  uint64_t failed_collectives_ = 0;
};

}  // namespace net
}  // namespace coyote

#endif  // SRC_NET_COLLECTIVES_H_
