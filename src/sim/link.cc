#include "src/sim/link.h"

#include <utility>

namespace coyote {
namespace sim {

Link::Link(Engine* engine, const Config& config) : engine_(engine), config_(config) {}

void Link::Submit(uint32_t source_id, uint64_t bytes, Callback on_done) {
  auto it = queues_.find(source_id);
  if (it == queues_.end()) {
    source_order_.push_back(source_id);
    it = queues_.emplace(source_id, std::deque<Packet>{}).first;
  }
  it->second.push_back(Packet{bytes, std::move(on_done)});
  ++queued_packets_;
  if (!busy_) {
    StartNext();
  }
}

bool Link::PickNextSource(uint32_t* out) {
  const size_t n = source_order_.size();
  for (size_t i = 0; i < n; ++i) {
    const size_t idx = (rr_index_ + i) % n;
    const uint32_t sid = source_order_[idx];
    if (!queues_[sid].empty()) {
      // Advance past the chosen source so the next grant goes to its neighbor.
      rr_index_ = (idx + 1) % n;
      *out = sid;
      return true;
    }
  }
  return false;
}

void Link::StartNext() {
  uint32_t sid = 0;
  if (!PickNextSource(&sid)) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Packet pkt = std::move(queues_[sid].front());
  queues_[sid].pop_front();
  --queued_packets_;

  TimePs duration =
      TransferTime(pkt.bytes, config_.bytes_per_second) + config_.per_packet_overhead;
  if (fault_hook_) {
    const TimePs stall = fault_hook_(pkt.bytes);
    if (stall > 0) {
      ++stalled_packets_;
      stall_time_ += stall;
      duration += stall;
    }
  }
  total_bytes_ += pkt.bytes;
  ++total_packets_;
  busy_time_ += duration;
  per_source_bytes_[sid] += pkt.bytes;

  inflight_done_ = std::move(pkt.on_done);
  engine_->ScheduleAfter(duration, [this] { OnTransmitDone(); });
}

void Link::OnTransmitDone() {
  Callback done = std::move(inflight_done_);
  inflight_done_ = nullptr;
  if (config_.delivery_latency > 0) {
    // Free the link now; the completion arrives after the pipe latency.
    if (done) {
      engine_->ScheduleAfter(config_.delivery_latency, std::move(done));
    }
  } else if (done) {
    done();
  }
  StartNext();
}

uint64_t Link::bytes_for_source(uint32_t source_id) const {
  auto it = per_source_bytes_.find(source_id);
  return it == per_source_bytes_.end() ? 0 : it->second;
}

double Link::ObservedBandwidthBps() const {
  const TimePs elapsed = engine_->Now() - stats_epoch_;
  return BandwidthBytesPerSec(total_bytes_, elapsed);
}

void Link::ResetStats() {
  total_bytes_ = 0;
  total_packets_ = 0;
  busy_time_ = 0;
  per_source_bytes_.clear();
  stats_epoch_ = engine_->Now();
}

}  // namespace sim
}  // namespace coyote
