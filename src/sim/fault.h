// Deterministic fault injection (the "messy parts" of §6.2 / §7).
//
// Data center FPGAs live with lossy 100G links, partial-reconfiguration
// failures and page-fault storms; the Coyote v2 shell's job is to absorb
// them. The FaultInjector turns those hazards into a *seeded, replayable
// schedule*: every consumer (the network switch, the ICAP controller, the
// XDMA links, the per-vFPGA MMUs) asks the injector for a decision at each
// hazard point, and the injector draws from a per-domain RNG stream derived
// from one master seed. Because the event engine is single-threaded and
// deterministic, the same seed always reproduces the exact same fault
// schedule — a failing chaos run is replayable from its seed alone.
//
// Each decision is accounted in a CounterSet and folded into a running
// fingerprint, so tests can assert schedule identity across runs.

#ifndef SRC_SIM_FAULT_H_
#define SRC_SIM_FAULT_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/rng.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace coyote {
namespace sim {

// A schedulable fault plan: rates are per-opportunity probabilities, outages
// are absolute simulated-time windows. All fields default to "no faults".
struct FaultPlan {
  uint64_t seed = 1;

  // --- Network / link layer ---------------------------------------------------
  double frame_drop_rate = 0.0;       // silently lose the frame
  double frame_corrupt_rate = 0.0;    // flip one byte (caught by the ICRC)
  double frame_duplicate_rate = 0.0;  // deliver the frame twice
  double frame_delay_rate = 0.0;      // hold the frame in the switch
  TimePs frame_delay_min = Microseconds(5);
  TimePs frame_delay_max = Microseconds(200);

  // --- Reconfiguration (ICAP) --------------------------------------------------
  double reconfig_fail_rate = 0.0;  // programming aborts mid-bitstream
  uint32_t reconfig_fail_first_n = 0;  // deterministically fail the first N programs
  double reconfig_slowdown_rate = 0.0;
  double reconfig_slowdown_factor = 4.0;  // latency multiplier when slowed

  // --- XDMA / host link --------------------------------------------------------
  double xdma_stall_rate = 0.0;  // per-packet stall probability
  TimePs xdma_stall_ps = Microseconds(10);

  // --- MMU / TLB ---------------------------------------------------------------
  double tlb_force_miss_rate = 0.0;  // per-translation forced TLB eviction

  // --- Kernel execution (vFPGA regions) ----------------------------------------
  // A hung kernel stops retiring beats: it accepts no further input and
  // produces no output until the region is reconfigured. Detection is the
  // Supervisor's job (src/runtime/supervisor.h).
  double kernel_hang_rate = 0.0;       // per-invocation hang probability
  uint32_t kernel_hang_first_n = 0;    // deterministically hang the first N invocations

  // --- RoCE QPs ----------------------------------------------------------------
  // A wedged QP's transmit path goes dark: frames are silently eaten after
  // the stack hands them off, so only retransmit-budget exhaustion surfaces
  // the failure (as an error CQE + QP error state).
  double qp_wedge_rate = 0.0;      // per-posted-WR wedge probability
  uint32_t qp_wedge_first_n = 0;   // deterministically wedge the first N posted WRs

  // --- Node outages ------------------------------------------------------------
  // While Now() is inside [start, end), every frame to or from `ip` is
  // dropped — the simulated node is dead. Restore is implicit at `end`.
  struct NodeOutage {
    uint32_t ip = 0;
    TimePs start = 0;
    TimePs end = 0;
  };
  std::vector<NodeOutage> outages;

  // --- Migration / fleet -------------------------------------------------------
  // Mid-migration hazards for the orchestrator's checkpoint pipeline: chunks
  // of a checkpoint transfer vanish in flight (retried with backoff),
  // checkpoints arrive bit-flipped (caught by the CRC trailer), and restores
  // fail on the destination (rolled back to the source).
  double migration_chunk_drop_rate = 0.0;
  uint32_t migration_chunk_drop_first_n = 0;  // deterministically drop the first N chunks
  double checkpoint_corrupt_rate = 0.0;       // per-transfer bit flip in transit
  double restore_fail_rate = 0.0;
  uint32_t restore_fail_first_n = 0;  // deterministically fail the first N restores
};

class FaultInjector {
 public:
  enum class FrameAction : uint8_t { kDeliver, kDrop, kCorrupt, kDuplicate, kDelay };

  struct FrameDecision {
    FrameAction action = FrameAction::kDeliver;
    TimePs delay = 0;          // kDelay: extra switch-resident time
    uint64_t corrupt_entropy = 0;  // kCorrupt: picks the byte + flip mask
  };

  FaultInjector(Engine* engine, const FaultPlan& plan);

  // --- Network ----------------------------------------------------------------
  // One decision per frame offered to the switch. Draws exactly one uniform
  // per call (plus one for delay/corrupt parameters) so the schedule depends
  // only on the call sequence, not on which faults are enabled downstream.
  FrameDecision OnFrame(uint32_t src_ip, uint32_t dst_ip, uint64_t frame_bytes);

  // True if either endpoint is inside a configured outage window; counted as
  // an outage drop when it is.
  bool DropForOutage(uint32_t src_ip, uint32_t dst_ip);

  // Pure query (no accounting): is this node currently dead?
  bool NodeDown(uint32_t ip) const;

  // --- Reconfiguration --------------------------------------------------------
  bool NextReconfigFails();
  double NextReconfigSlowdown();  // 1.0 = full speed

  // --- XDMA -------------------------------------------------------------------
  TimePs NextXdmaStall();  // 0 = no stall for this packet

  // --- MMU --------------------------------------------------------------------
  bool NextForcedTlbMiss();

  // --- Kernel execution -------------------------------------------------------
  // One decision per kernel invocation (first beat pumped after attach).
  bool NextKernelHang();

  // --- RoCE QPs ---------------------------------------------------------------
  // One decision per posted work request.
  bool NextQpWedge();

  // --- Migration pipeline -----------------------------------------------------
  // One decision per checkpoint chunk offered to the wire (drawn on the
  // sender). Returns true when the chunk is lost in flight.
  bool NextMigrationChunkDrop();
  // One decision per completed checkpoint transfer; non-zero means "flip this
  // byte" (1-based index entropy) — the CRC trailer catches it on the far end.
  uint64_t NextCheckpointCorrupt();
  // One decision per restore attempt on the destination region.
  bool NextRestoreFail();

  // --- Introspection ----------------------------------------------------------
  const FaultPlan& plan() const { return plan_; }
  const CounterSet& counters() const { return counters_; }
  // Rolling FNV-1a hash over every (decision, time) pair drawn so far: two
  // runs with identical fingerprints executed identical fault schedules.
  uint64_t ScheduleFingerprint() const { return fingerprint_; }
  // Fault *opportunities* seen (every draw, fired or not); counters() holds
  // only the faults that actually fired.
  uint64_t decisions() const { return decisions_; }

 private:
  void Record(std::string_view what, uint64_t detail);

  Engine* engine_;
  FaultPlan plan_;
  // Independent streams per domain: drawing a network decision never
  // perturbs the reconfig/XDMA/MMU schedules.
  Rng net_rng_;
  Rng reconfig_rng_;
  Rng xdma_rng_;
  Rng mmu_rng_;
  Rng kernel_rng_;
  Rng qp_rng_;
  Rng migration_rng_;

  uint32_t reconfig_programs_seen_ = 0;
  uint32_t kernel_invocations_seen_ = 0;
  uint32_t qp_posts_seen_ = 0;
  uint32_t migration_chunks_seen_ = 0;
  uint32_t restores_seen_ = 0;
  CounterSet counters_;
  uint64_t fingerprint_ = 0xcbf29ce484222325ull;
  uint64_t decisions_ = 0;
};

}  // namespace sim
}  // namespace coyote

#endif  // SRC_SIM_FAULT_H_
