// coyote-verify determinism lint.
//
// A lightweight tokenizer-based linter that enforces the coding rules the
// simulator's bit-exact determinism contract depends on (see ANALYSIS.md).
// It is deliberately not a compiler plugin: the rules are lexical, the
// tokenizer strips comments/strings, and a project-wide symbol table of
// unordered-container names approximates type information. That keeps the
// tool dependency-free, fast enough to run as a tier-1 ctest, and honest
// about what it can see — each rule has a per-line suppression comment for
// the cases the heuristic gets wrong.

#ifndef TOOLS_COYOTE_LINT_LINT_H_
#define TOOLS_COYOTE_LINT_LINT_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace coyote {
namespace lint {

struct Finding {
  std::string file;
  uint32_t line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string id;           // e.g. "nondet"
  std::string suppression;  // e.g. "nondet-ok" -> written as "// lint: nondet-ok"
  std::string summary;
};

struct Options {
  // Empty: all rules. Otherwise only the listed rule ids run.
  std::vector<std::string> rules;
};

// One source file by (project-relative) path and content.
using SourceFile = std::pair<std::string, std::string>;

// The rule table (static).
const std::vector<RuleInfo>& Rules();

// Lints a set of in-memory sources as one project: pass 1 collects the names
// of variables declared with unordered containers across every file, pass 2
// runs all enabled rules per file. Findings are ordered by (file, line).
std::vector<Finding> LintProject(const std::vector<SourceFile>& files, const Options& options);

// Walks `roots` (files or directories, relative to `root_dir`) collecting
// .h/.hpp/.cc/.cpp sources in sorted order. Skips build*/, CMakeFiles/,
// .git/, and the lint_fixtures/ + analyzer_fixtures/ test-seed directories
// (delegates to frontend::CollectFiles).
std::vector<std::string> CollectFiles(const std::string& root_dir,
                                      const std::vector<std::string>& roots);

// Reads the collected files and lints them. Paths in findings are relative
// to `root_dir`.
std::vector<Finding> LintPaths(const std::string& root_dir,
                               const std::vector<std::string>& relative_paths,
                               const Options& options);

}  // namespace lint
}  // namespace coyote

#endif  // TOOLS_COYOTE_LINT_LINT_H_
