// Fixture: nondeterminism sources two-plus calls away from the callback
// root. rand() sits three frames deep (lambda -> Draw -> Reseed -> rand);
// the unordered iteration hides behind an accessor the lambda calls.
#include <cstdlib>
#include <unordered_map>

namespace fx {

class Sampler {
 public:
  unsigned Draw() { return Reseed() % 7; }

  long Sum() const {
    long total = 0;
    for (const auto& kv : table_) {
      total += kv.second;
    }
    return total;
  }

 private:
  unsigned Reseed() { return static_cast<unsigned>(rand()); }

  std::unordered_map<int, long> table_;
};

class Engine {
 public:
  void ScheduleAfter(long delay, void (*fn)());
};

void ArmSampler(Engine& engine, Sampler& sampler) {
  engine.ScheduleAfter(5, [&sampler] {
    sampler.Draw();
    sampler.Sum();
  });
}

}  // namespace fx
