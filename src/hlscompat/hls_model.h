// Mini hls4ml front end (paper §9.7).
//
// hls4ml compiles high-level neural networks into quantized FPGA IP and
// pairs them with an accelerator backend that supplies the deployment
// infrastructure. This module reproduces the integration surface the paper
// adds: a `CoyoteAccelerator` backend that drops the generated IP into a
// vFPGA, plus the `PynqVitis` baseline backend the paper compares against
// (Vitis flow + PYNQ Python runtime, data staged through card memory).

#ifndef SRC_HLSCOMPAT_HLS_MODEL_H_
#define SRC_HLSCOMPAT_HLS_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fabric/floorplan.h"
#include "src/fabric/resources.h"
#include "src/services/nn.h"

namespace coyote {
namespace hlscompat {

enum class Backend : uint8_t {
  kCoyoteAccelerator,  // vFPGA integration, direct host streaming
  kPynqVitis,          // Vitis kernel + PYNQ runtime, staged through HBM
};

std::string_view BackendName(Backend b);

struct CompiledModel {
  services::MlpSpec spec;
  Backend backend = Backend::kCoyoteAccelerator;
  fabric::ResourceVector kernel_resources;
  fabric::ResourceVector infra_resources;  // shell / Vitis platform overhead
  double build_seconds = 0;                // reported synthesis time

  fabric::ResourceVector total_resources() const {
    return kernel_resources + infra_resources;
  }
};

// The hls4ml model object: convert -> compile (software emulation) ->
// build (synthesis) mirroring the Python flow in the paper's Code 3.
class HlsModel {
 public:
  HlsModel(services::MlpSpec spec, Backend backend)
      : spec_(std::move(spec)), backend_(backend) {}

  const services::MlpSpec& spec() const { return spec_; }
  Backend backend() const { return backend_; }

  // `hls_model.predict(X)` before building: bit-accurate software emulation.
  std::vector<int8_t> PredictEmulated(const std::vector<int8_t>& inputs,
                                      size_t num_samples) const;

  // `hls_model.build()`: synthesis. Resource/time estimates come from the
  // same models the rest of the substrate uses.
  CompiledModel Build(const fabric::Floorplan& floorplan) const;

 private:
  services::MlpSpec spec_;
  Backend backend_;
};

}  // namespace hlscompat
}  // namespace coyote

#endif  // SRC_HLSCOMPAT_HLS_MODEL_H_
