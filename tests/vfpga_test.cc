// Unit tests for the vFPGA container: the generic application interface of
// paper Fig. 5 (streams, CSRs, interrupts, send/completion queues, kernel
// lifecycle).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/services/vector_kernels.h"
#include "src/sim/engine.h"
#include "src/vfpga/checkpoint.h"
#include "src/vfpga/kernel.h"
#include "src/vfpga/vfpga.h"

namespace coyote {
namespace vfpga {
namespace {

Vfpga::Config SmallConfig() {
  return Vfpga::Config{.num_host_streams = 2, .num_card_streams = 2, .num_net_streams = 1};
}

TEST(VfpgaTest, StreamsAreIndependentPerIndexAndKind) {
  sim::Engine engine;
  Vfpga region(&engine, 3, SmallConfig());
  EXPECT_EQ(region.id(), 3u);

  axi::StreamPacket p;
  p.data = {1};
  region.host_in(0).Push(std::move(p));
  EXPECT_EQ(region.host_in(0).size(), 1u);
  EXPECT_TRUE(region.host_in(1).Empty());
  EXPECT_TRUE(region.card_in(0).Empty());
  EXPECT_TRUE(region.net_in(0).Empty());
}

TEST(VfpgaTest, InterruptChannelRoutesToHandler) {
  sim::Engine engine;
  Vfpga region(&engine, 0, SmallConfig());
  std::vector<uint64_t> values;
  region.SetInterruptHandler([&](uint64_t v) { values.push_back(v); });
  region.RaiseUserInterrupt(1);
  region.RaiseUserInterrupt(0xFFFF);
  EXPECT_EQ(values, (std::vector<uint64_t>{1, 0xFFFF}));
  EXPECT_EQ(region.user_interrupts(), 2u);
  // No handler: counted, not fatal.
  region.SetInterruptHandler(nullptr);
  region.RaiseUserInterrupt(2);
  EXPECT_EQ(region.user_interrupts(), 3u);
}

TEST(VfpgaTest, SendQueueInvokesShellHandler) {
  sim::Engine engine;
  Vfpga region(&engine, 0, SmallConfig());
  SendQueueEntry seen;
  region.SetSendHandler([&](const SendQueueEntry& e) { seen = e; });
  SendQueueEntry entry;
  entry.is_write = true;
  entry.vaddr = 0x1000;
  entry.bytes = 512;
  entry.stream = 1;
  entry.tid = 7;
  entry.target = mmu::MemKind::kCard;
  region.PostSend(entry);
  EXPECT_TRUE(seen.is_write);
  EXPECT_EQ(seen.vaddr, 0x1000u);
  EXPECT_EQ(seen.bytes, 512u);
  EXPECT_EQ(seen.stream, 1u);
  EXPECT_EQ(seen.tid, 7u);
  EXPECT_EQ(seen.target, mmu::MemKind::kCard);
  EXPECT_EQ(region.sends_posted(), 1u);
}

TEST(VfpgaTest, CompletionQueueAccumulatesAndNotifies) {
  sim::Engine engine;
  Vfpga region(&engine, 0, SmallConfig());
  int notified = 0;
  region.SetCompletionHandler([&](const CompletionEntry& e) {
    ++notified;
    EXPECT_TRUE(e.ok);
  });
  region.PushCompletion({.is_write = false, .stream = 0, .tid = 1, .bytes = 64, .ok = true});
  region.PushCompletion({.is_write = true, .stream = 1, .tid = 2, .bytes = 128, .ok = true});
  EXPECT_EQ(notified, 2);
  ASSERT_EQ(region.completions().size(), 2u);
  EXPECT_EQ(region.completions()[0].bytes, 64u);
  EXPECT_TRUE(region.completions()[1].is_write);
}

TEST(VfpgaTest, KernelLifecycleAttachDetach) {
  sim::Engine engine;
  Vfpga region(&engine, 0, SmallConfig());
  EXPECT_EQ(region.kernel(), nullptr);

  region.LoadKernel(std::make_unique<services::PassthroughKernel>());
  ASSERT_NE(region.kernel(), nullptr);
  EXPECT_EQ(region.kernel()->name(), "passthrough");

  // The kernel wired itself to the streams: data flows.
  axi::StreamPacket p;
  p.data.assign(64, 0x42);
  region.host_in(0).Push(std::move(p));
  engine.RunUntilIdle();
  EXPECT_EQ(region.host_out(0).size(), 1u);

  // Reconfiguration: loading a new kernel detaches the old one.
  region.LoadKernel(std::make_unique<services::PassthroughKernel>());
  ASSERT_NE(region.kernel(), nullptr);
  region.UnloadKernel();
  EXPECT_EQ(region.kernel(), nullptr);

  // With no kernel, input queues just buffer (nothing consumes).
  axi::StreamPacket q;
  q.data.assign(64, 0x43);
  region.host_in(0).Push(std::move(q));
  engine.RunUntilIdle();
  EXPECT_EQ(region.host_in(0).size(), 1u);
}

TEST(VfpgaTest, CsrFileIsPerRegion) {
  sim::Engine engine;
  Vfpga a(&engine, 0, SmallConfig());
  Vfpga b(&engine, 1, SmallConfig());
  a.csr().Write(0, 0xAAAA);
  b.csr().Write(0, 0xBBBB);
  EXPECT_EQ(a.csr().Read(0), 0xAAAAu);
  EXPECT_EQ(b.csr().Read(0), 0xBBBBu);
}

// --- CYK1 checkpoints ---------------------------------------------------------

TEST(CheckpointTest, WriterReaderRoundtripPreservesEveryFieldType) {
  ckpt::Writer w(/*flags=*/0x0102);
  w.U8(0xAB);
  w.U16(0xBEEF);
  w.U32(0xDEADBEEFu);
  w.U64(0x0123456789ABCDEFull);
  w.Str("tenant-7");
  w.Bytes(std::vector<uint8_t>{1, 2, 3, 4, 5});
  const std::vector<uint8_t> blob = std::move(w).Finish();

  ckpt::Reader r(blob);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.flags(), 0x0102);
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U16(), 0xBEEF);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.Str(), "tenant-7");
  EXPECT_EQ(r.Bytes(), (std::vector<uint8_t>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(CheckpointTest, CrcTrailerRejectsAnySingleBitFlip) {
  ckpt::Writer w;
  w.U64(42);
  w.Str("payload");
  const std::vector<uint8_t> blob = std::move(w).Finish();
  ASSERT_TRUE(ckpt::Reader(blob).ok());

  // Flip one bit anywhere — header, payload, or the trailer itself — and the
  // whole checkpoint must be rejected before a single field is handed out.
  for (size_t i = 0; i < blob.size(); ++i) {
    std::vector<uint8_t> bad = blob;
    bad[i] ^= 0x10;
    EXPECT_FALSE(ckpt::Reader(bad).ok()) << "byte " << i;
  }
}

TEST(CheckpointTest, TruncatedOrOverlongBlobIsRejected) {
  ckpt::Writer w;
  w.U32(7);
  const std::vector<uint8_t> blob = std::move(w).Finish();
  for (size_t len = 0; len < blob.size(); ++len) {
    const std::vector<uint8_t> cut(blob.begin(), blob.begin() + static_cast<long>(len));
    EXPECT_FALSE(ckpt::Reader(cut).ok()) << "len " << len;
  }
  std::vector<uint8_t> padded = blob;
  padded.push_back(0);
  EXPECT_FALSE(ckpt::Reader(padded).ok());
}

TEST(CheckpointTest, RegionSnapshotRoundtripsCsrsBeatsAndKernelState) {
  sim::Engine engine;
  Vfpga src(&engine, 0, SmallConfig());
  src.LoadKernel(std::make_unique<services::PassthroughKernel>());
  src.csr().Write(3, 0x33);
  src.csr().Write(0, 0x11);

  // Push data through so the kernel accumulates private state and the
  // region retires beats — the parts a reprogram would lose.
  axi::StreamPacket p;
  p.data.assign(64, 0x42);
  src.host_in(0).Push(std::move(p));
  engine.RunUntilIdle();
  ASSERT_GT(src.beats_retired(), 0u);

  const RegionSnapshot snap = CaptureRegion(src);
  EXPECT_EQ(snap.kernel_name, "passthrough");
  EXPECT_EQ(snap.beats_retired, src.beats_retired());

  // Embed into a CYK1 stream and read it back — the orchestrator's path.
  ckpt::Writer w;
  snap.AppendTo(&w);
  const std::vector<uint8_t> blob = std::move(w).Finish();
  ckpt::Reader r(blob);
  ASSERT_TRUE(r.ok());
  RegionSnapshot parsed;
  ASSERT_TRUE(parsed.ParseFrom(&r));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(parsed, snap);

  // Restore onto a fresh region with the same kernel resident: CSRs, beat
  // counter, and kernel state all carry over.
  Vfpga dst(&engine, 1, SmallConfig());
  dst.LoadKernel(std::make_unique<services::PassthroughKernel>());
  ASSERT_TRUE(RestoreRegion(dst, parsed));
  EXPECT_EQ(dst.csr().Read(0), 0x11u);
  EXPECT_EQ(dst.csr().Read(3), 0x33u);
  EXPECT_EQ(dst.beats_retired(), src.beats_retired());
  const RegionSnapshot again = CaptureRegion(dst);
  EXPECT_EQ(again, snap);
}

TEST(CheckpointTest, RestoreRejectsKernelMismatch) {
  sim::Engine engine;
  Vfpga src(&engine, 0, SmallConfig());
  src.LoadKernel(std::make_unique<services::PassthroughKernel>());
  const RegionSnapshot snap = CaptureRegion(src);

  Vfpga empty(&engine, 1, SmallConfig());
  EXPECT_FALSE(RestoreRegion(empty, snap));  // no kernel resident
}

TEST(CheckpointTest, SameStateProducesBitIdenticalBlobs) {
  auto capture = [] {
    sim::Engine engine;
    Vfpga region(&engine, 0, SmallConfig());
    region.LoadKernel(std::make_unique<services::PassthroughKernel>());
    region.csr().Write(5, 0x55);
    axi::StreamPacket p;
    p.data.assign(64, 0x17);
    region.host_in(0).Push(std::move(p));
    engine.RunUntilIdle();
    ckpt::Writer w;
    CaptureRegion(region).AppendTo(&w);
    return std::move(w).Finish();
  };
  EXPECT_EQ(capture(), capture());
}

}  // namespace
}  // namespace vfpga
}  // namespace coyote
