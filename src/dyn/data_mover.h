// Dynamic-layer data mover (paper §6.3, §7.2).
//
// The hub of the shell's data plane. Every vFPGA transfer — host streaming,
// card memory, GPU peer DMA — flows through here and receives:
//
//  * PACKETIZATION: requests of arbitrary size are split into 4 KB packets
//    (configurable), giving precise control over outstanding transactions.
//  * INTERLEAVING: packets from different vFPGAs share bandwidth-constrained
//    links (PCIe) under round-robin arbitration (fairness in Fig. 8).
//  * CREDITING: a per-vFPGA, per-stream credit counter gates packet issue on
//    destination-queue space. A vFPGA that requests data but never consumes
//    it stalls itself, not the shell (§7.2). Credits replenish when the
//    kernel pops packets from the destination stream.
//  * VIRTUAL MEMORY: every packet's page is translated by the vFPGA's MMU;
//    residency in the wrong memory triggers a page migration (GPU-style
//    unified memory); unmapped addresses raise a page-fault MSI-X.
//  * IN-ORDER DELIVERY: a reorder stage guarantees packets enter the
//    destination stream in request order even when migrations or different
//    physical paths complete out of order.

#ifndef SRC_DYN_DATA_MOVER_H_
#define SRC_DYN_DATA_MOVER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/axi/credit.h"
#include "src/axi/stream.h"
#include "src/dyn/xdma.h"
#include "src/memsys/card_memory.h"
#include "src/memsys/gpu_memory.h"
#include "src/memsys/nvme.h"
#include "src/mmu/mmu.h"
#include "src/mmu/svm.h"
#include "src/sim/engine.h"

namespace coyote {
namespace dyn {

// MSI-X vectors used by the shell (§5.1 lists the interrupt sources).
inline constexpr uint32_t kMsixPageFault = 0;
inline constexpr uint32_t kMsixReconfigDone = 1;
inline constexpr uint32_t kMsixTlbInvalidation = 2;
inline constexpr uint32_t kMsixUserBase = 16;  // + vfpga_id

struct TransferRequest {
  uint32_t vfpga_id = 0;
  uint32_t tid = 0;     // issuing cThread (AXI TID)
  uint32_t stream = 0;  // stream index within the vFPGA interface
  uint64_t vaddr = 0;
  uint64_t bytes = 0;
  mmu::MemKind target = mmu::MemKind::kHost;  // memory this transfer addresses
};

class DataMover {
 public:
  struct Config {
    uint64_t packet_bytes = 4096;     // §6.3 default
    uint32_t credits_per_stream = 8;  // destination-queue depth in packets
    uint64_t gpu_p2p_bps = 10'000'000'000ull;
  };

  using Completion = std::function<void(bool ok)>;

  DataMover(sim::Engine* engine, mmu::Svm* svm, memsys::CardMemory* card,
            memsys::GpuMemory* gpu, XdmaCore* xdma, const Config& config);

  // Associates a vFPGA with its MMU. Must be called before issuing requests.
  void RegisterVfpga(uint32_t vfpga_id, mmu::Mmu* mmu);

  // Attaches the NVMe drive backing the cold tier; transfers and migrations
  // touching kNvme pages are charged to its command queues.
  void SetNvme(memsys::NvmeDrive* nvme) { nvme_ = nvme; }

  // Streams req.bytes at req.vaddr into `dst` as in-order packets tagged
  // with req.tid. Completion fires after the last packet is delivered.
  void Read(const TransferRequest& req, axi::Stream* dst, Completion done);

  // Consumes req.bytes from `src` (as the kernel produces them) and writes
  // them to virtual memory at req.vaddr. Completion fires when the last byte
  // is globally visible.
  void Write(const TransferRequest& req, axi::Stream* src, Completion done);

  // Explicit buffer migration (the migration channel, §5.1): moves the pages
  // of [vaddr, vaddr+bytes) to `to`, e.g. pre-loading NN weights into HBM.
  void Migrate(uint32_t vfpga_id, uint64_t vaddr, uint64_t bytes, mmu::MemKind to,
               Completion done);

  // Timing hooks wired into the Svm so page migrations charge DMA time here.
  mmu::Svm::MigrationHooks MakeMigrationHooks();

  // Recovery path (runtime::Supervisor): aborts every queued and in-flight
  // transfer of `vfpga_id` with an error completion, restores the region's
  // credit counters to full, and shoots down its TLB so a reprogrammed
  // kernel starts from a clean translation state. In-flight physical-link
  // packets drain harmlessly — their delivery callbacks observe the aborted
  // op and drop the data. Returns the number of operations aborted.
  uint64_t AbortVfpga(uint32_t vfpga_id);

  // Credit counter for (vfpga, stream, direction); exposed for tests.
  axi::CreditCounter& ReadCredits(uint32_t vfpga_id, uint32_t stream);
  axi::CreditCounter& WriteCredits(uint32_t vfpga_id, uint32_t stream);

  const Config& config() const { return config_; }
  uint64_t page_fault_irqs() const { return page_fault_irqs_; }
  uint64_t packets_moved() const { return packets_moved_; }
  // Monotone per-region progress counter: together with the vFPGA's retired
  // beats this is the heartbeat signal the Supervisor's watchdog samples.
  uint64_t packets_moved_for(uint32_t vfpga_id) const {
    auto it = packets_moved_by_vfpga_.find(vfpga_id);
    return it == packets_moved_by_vfpga_.end() ? 0 : it->second;
  }
  uint64_t aborted_ops() const { return aborted_ops_; }
  // Live (not yet completed) transfer operations for the region. The
  // watchdog combines this with the heartbeat counters: a region is only
  // "hung" when it has outstanding work AND its heartbeats are stale.
  size_t OutstandingOps(uint32_t vfpga_id) const;

 private:
  struct ReadOp;
  struct WriteOp;

  void IssueReadPackets(const std::shared_ptr<ReadOp>& op);
  // Take-by-value + move: the reorder buffer assumes ownership of the packet.
  void DeliverInOrder(const std::shared_ptr<ReadOp>& op, uint64_t seq,
                      axi::StreamPacket pkt);  // lint: hot-copy-ok
  void RetireReadOp(const std::shared_ptr<ReadOp>& op);
  void PumpWrites(axi::Stream* src);
  void SubmitPhysical(uint32_t vfpga_id, mmu::MemKind kind, uint64_t phys_addr, uint64_t bytes,
                      std::function<void()> on_done);

  axi::CreditCounter& CreditsFor(
      std::map<std::pair<uint64_t, uint32_t>, std::unique_ptr<axi::CreditCounter>>& table,
      uint32_t vfpga_id, uint32_t stream);

  sim::Engine* engine_;
  mmu::Svm* svm_;
  memsys::CardMemory* card_;
  memsys::GpuMemory* gpu_;
  memsys::NvmeDrive* nvme_ = nullptr;
  XdmaCore* xdma_;
  Config config_;
  sim::Link gpu_link_;

  // Ordered: the TLB-shootdown hook iterates this map, and invalidation
  // order must be identical run-to-run for bit-exact replay.
  std::map<uint32_t, mmu::Mmu*> mmus_;
  std::map<std::pair<uint64_t, uint32_t>, std::unique_ptr<axi::CreditCounter>> read_credits_;
  std::map<std::pair<uint64_t, uint32_t>, std::unique_ptr<axi::CreditCounter>> write_credits_;

  // Pending write operations per source stream, serviced FIFO.
  std::unordered_map<axi::Stream*, std::deque<std::shared_ptr<WriteOp>>> write_queues_;
  // Deterministic per-region index over the same ops (write_queues_ is keyed
  // by stream pointer, which must never be iterated): AbortVfpga walks this
  // in issue order so error completions fire identically run-to-run.
  std::map<uint32_t, std::vector<std::weak_ptr<WriteOp>>> write_ops_by_vfpga_;

  // Pending read operations per (vfpga, stream), serviced FIFO: like a real
  // DMA descriptor queue, a stream's transfers are processed strictly in
  // issue order, so packets of consecutive transfers never interleave in the
  // destination stream.
  std::map<std::pair<uint64_t, uint32_t>, std::deque<std::shared_ptr<ReadOp>>> read_queues_;

  uint64_t page_fault_irqs_ = 0;
  uint64_t packets_moved_ = 0;
  uint64_t aborted_ops_ = 0;
  std::map<uint32_t, uint64_t> packets_moved_by_vfpga_;
};

}  // namespace dyn
}  // namespace coyote

#endif  // SRC_DYN_DATA_MOVER_H_
