// Fixture: a blocking primitive reached from an event callback *through two
// helper frames*. The lambda itself never blocks — only the interprocedural
// walk (callback lambda -> Commit -> FlushToDisk -> sleep_for) can see it.
#include <chrono>
#include <thread>

namespace fx {

class Journal {
 public:
  void Commit() { FlushToDisk(); }

 private:
  void FlushToDisk() {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
};

class Engine {
 public:
  void ScheduleAt(long when, void (*fn)());
};

void ArmCommit(Engine& engine, Journal& journal) {
  engine.ScheduleAt(10, [&journal] { journal.Commit(); });
}

}  // namespace fx
