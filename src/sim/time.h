// Simulated time primitives.
//
// All simulated time in the Coyote v2 substrate is kept in picoseconds so that
// the 250 MHz system clock (4000 ps), the 450 MHz HBM clock (~2222 ps) and the
// 200 MHz ICAP clock (5000 ps) can all be represented exactly enough without
// accumulating rounding error over long runs.

#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>

namespace coyote {
namespace sim {

// Absolute simulated time or a duration, in picoseconds.
using TimePs = uint64_t;

inline constexpr TimePs kPsPerNs = 1000;
inline constexpr TimePs kPsPerUs = 1000ull * 1000;
inline constexpr TimePs kPsPerMs = 1000ull * 1000 * 1000;
inline constexpr TimePs kPsPerSec = 1000ull * 1000 * 1000 * 1000;

constexpr TimePs Nanoseconds(double ns) { return static_cast<TimePs>(ns * kPsPerNs); }
constexpr TimePs Microseconds(double us) { return static_cast<TimePs>(us * kPsPerUs); }
constexpr TimePs Milliseconds(double ms) { return static_cast<TimePs>(ms * kPsPerMs); }
constexpr TimePs Seconds(double s) { return static_cast<TimePs>(s * kPsPerSec); }

constexpr double ToNanoseconds(TimePs t) { return static_cast<double>(t) / kPsPerNs; }
constexpr double ToMicroseconds(TimePs t) { return static_cast<double>(t) / kPsPerUs; }
constexpr double ToMilliseconds(TimePs t) { return static_cast<double>(t) / kPsPerMs; }
constexpr double ToSeconds(TimePs t) { return static_cast<double>(t) / kPsPerSec; }

// Time to move `bytes` over a resource sustaining `bytes_per_second`.
// Rounds up so that a transfer never completes "for free".
constexpr TimePs TransferTime(uint64_t bytes, uint64_t bytes_per_second) {
  if (bytes_per_second == 0 || bytes == 0) {
    return 0;
  }
  // bytes * 1e12 / Bps, computed in 128-bit to avoid overflow for large buffers.
  const unsigned __int128 num = static_cast<unsigned __int128>(bytes) * kPsPerSec;
  return static_cast<TimePs>((num + bytes_per_second - 1) / bytes_per_second);
}

// Effective bandwidth in bytes/second given bytes moved over a duration.
constexpr double BandwidthBytesPerSec(uint64_t bytes, TimePs elapsed) {
  if (elapsed == 0) {
    return 0.0;
  }
  return static_cast<double>(bytes) / ToSeconds(elapsed);
}

constexpr double BandwidthGBps(uint64_t bytes, TimePs elapsed) {
  return BandwidthBytesPerSec(bytes, elapsed) / 1e9;
}

constexpr double BandwidthMBps(uint64_t bytes, TimePs elapsed) {
  return BandwidthBytesPerSec(bytes, elapsed) / 1e6;
}

}  // namespace sim
}  // namespace coyote

#endif  // SRC_SIM_TIME_H_
