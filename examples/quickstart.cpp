// Quickstart: the paper's Code 1, end to end.
//
// Creates a cThread bound to vFPGA 0, allocates hugepage buffers (added to
// the TLB by GetMem), writes the encryption key to a control register,
// builds a scatter-gather entry and launches the kernel with LOCAL_TRANSFER.
// The destination buffer then holds AES-ECB ciphertext, verified against a
// software AES.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/runtime/cthread.h"
#include "src/runtime/device.h"
#include "src/services/aes.h"
#include "src/services/aes_kernels.h"
#include "src/sim/rng.h"

using namespace coyote;

int main() {
  // A Coyote v2 device with the host-streaming shell and one vFPGA hosting
  // the AES ECB kernel.
  runtime::SimDevice::Config cfg;
  cfg.shell.name = "quickstart";
  cfg.shell.services = {fabric::Service::kHostStream};
  cfg.shell.num_vfpgas = 1;
  runtime::SimDevice device(cfg);
  device.vfpga(0).LoadKernel(std::make_unique<services::AesEcbKernel>());

  // Create a cThread and assign it to vFPGA 0.
  runtime::cThread cthread(&device, /*vfpga_id=*/0);

  // Allocate 4 KB source & destination memory using huge pages (HPF).
  // GetMem also adds src and dst to the TLB.
  const uint64_t src = cthread.GetMem({runtime::Alloc::kHpf, 4096});
  const uint64_t dst = cthread.GetMem({runtime::Alloc::kHpf, 4096});

  // Some host-side processing on src.
  std::vector<uint8_t> plaintext(4096);
  sim::Rng rng(2024);
  rng.FillBytes(plaintext.data(), plaintext.size());
  cthread.WriteBuffer(src, plaintext.data(), plaintext.size());

  // Set hardware register for the encryption key.
  const uint64_t kKey = 0x6167717a7a767668ull;
  cthread.SetCsr(kKey, services::kAesCsrKeyLo);

  // Create an SG entry for the DMA transaction and launch the kernel.
  runtime::SgEntry sg;
  sg.local = {.src_addr = src, .src_len = 4096, .dst_addr = dst, .dst_len = 4096};
  const bool ok = cthread.InvokeSync(runtime::Oper::kLocalTransfer, sg);

  std::vector<uint8_t> ciphertext(4096);
  cthread.ReadBuffer(dst, ciphertext.data(), ciphertext.size());
  const services::Aes128 reference(kKey, 0);
  const bool correct = ciphertext == reference.EncryptEcb(plaintext);

  std::printf("quickstart: transfer %s, ciphertext %s\n", ok ? "completed" : "FAILED",
              correct ? "verified against software AES" : "MISMATCH");
  std::printf("simulated time: %.2f us (invoke + 2x 4 KB DMA + 10-stage AES pipeline)\n",
              sim::ToMicroseconds(device.engine().Now()));
  return ok && correct ? 0 : 1;
}
