#include "src/net/packets.h"

#include <array>
#include <cstring>

namespace coyote {
namespace net {
namespace {

void PutU16(std::vector<uint8_t>& v, uint16_t x) {
  v.push_back(static_cast<uint8_t>(x >> 8));
  v.push_back(static_cast<uint8_t>(x));
}
void PutU32(std::vector<uint8_t>& v, uint32_t x) {
  v.push_back(static_cast<uint8_t>(x >> 24));
  v.push_back(static_cast<uint8_t>(x >> 16));
  v.push_back(static_cast<uint8_t>(x >> 8));
  v.push_back(static_cast<uint8_t>(x));
}
void PutU64(std::vector<uint8_t>& v, uint64_t x) {
  PutU32(v, static_cast<uint32_t>(x >> 32));
  PutU32(v, static_cast<uint32_t>(x));
}
uint16_t GetU16(const uint8_t* p) { return static_cast<uint16_t>(p[0] << 8 | p[1]); }
uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) << 24 | static_cast<uint32_t>(p[1]) << 16 |
         static_cast<uint32_t>(p[2]) << 8 | static_cast<uint32_t>(p[3]);
}
uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) << 32 | GetU32(p + 4);
}

uint16_t Ipv4Checksum(const uint8_t* hdr, size_t len) {
  uint32_t sum = 0;
  for (size_t i = 0; i + 1 < len; i += 2) {
    sum += static_cast<uint32_t>(hdr[i] << 8 | hdr[i + 1]);
  }
  while (sum >> 16) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

// CRC32 (reflected, poly 0xEDB88320) stands in for the InfiniBand ICRC.
uint32_t Crc32(const uint8_t* data, size_t len) {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace

bool OpcodeHasReth(Opcode op) {
  return op == Opcode::kWriteFirst || op == Opcode::kWriteOnly || op == Opcode::kReadRequest;
}

bool OpcodeHasAeth(Opcode op) {
  return op == Opcode::kAck || op == Opcode::kReadResponseFirst ||
         op == Opcode::kReadResponseLast || op == Opcode::kReadResponseOnly;
}

bool OpcodeIsLastOrOnly(Opcode op) {
  switch (op) {
    case Opcode::kSendLast:
    case Opcode::kSendOnly:
    case Opcode::kWriteLast:
    case Opcode::kWriteOnly:
    case Opcode::kReadResponseLast:
    case Opcode::kReadResponseOnly:
      return true;
    default:
      return false;
  }
}

bool OpcodeIsReadResponse(Opcode op) {
  return op == Opcode::kReadResponseFirst || op == Opcode::kReadResponseMiddle ||
         op == Opcode::kReadResponseLast || op == Opcode::kReadResponseOnly;
}

size_t FrameOverheadBytes(Opcode op) {
  size_t n = kEthHeaderBytes + kIpv4HeaderBytes + kUdpHeaderBytes + kBthBytes + kIcrcBytes;
  if (OpcodeHasReth(op)) {
    n += kRethBytes;
  }
  if (OpcodeHasAeth(op)) {
    n += kAethBytes;
  }
  return n;
}

std::vector<uint8_t> BuildFrame(const FrameMeta& meta, const axi::BufferView& payload) {
  std::vector<uint8_t> f;
  f.reserve(FrameOverheadBytes(meta.opcode) + payload.size());

  // Ethernet.
  f.insert(f.end(), meta.dst_mac.bytes.begin(), meta.dst_mac.bytes.end());
  f.insert(f.end(), meta.src_mac.bytes.begin(), meta.src_mac.bytes.end());
  PutU16(f, 0x0800);

  // IPv4.
  const size_t ip_start = f.size();
  const size_t bth_extra = (OpcodeHasReth(meta.opcode) ? kRethBytes : 0) +
                           (OpcodeHasAeth(meta.opcode) ? kAethBytes : 0);
  const uint16_t ip_total = static_cast<uint16_t>(kIpv4HeaderBytes + kUdpHeaderBytes +
                                                  kBthBytes + bth_extra + payload.size() +
                                                  kIcrcBytes);
  f.push_back(0x45);  // version 4, IHL 5
  f.push_back(0x02);  // DSCP for RoCE lossless class
  PutU16(f, ip_total);
  PutU16(f, 0);       // identification
  PutU16(f, 0x4000);  // don't fragment
  f.push_back(64);    // TTL
  f.push_back(17);    // UDP
  PutU16(f, 0);       // checksum placeholder
  PutU32(f, meta.src_ip);
  PutU32(f, meta.dst_ip);
  const uint16_t csum = Ipv4Checksum(&f[ip_start], kIpv4HeaderBytes);
  f[ip_start + 10] = static_cast<uint8_t>(csum >> 8);
  f[ip_start + 11] = static_cast<uint8_t>(csum);

  // UDP (checksum 0 — permitted, and what RoCE NICs emit).
  PutU16(f, 0xC000);  // ephemeral source port
  PutU16(f, kRoceUdpPort);
  PutU16(f, static_cast<uint16_t>(ip_total - kIpv4HeaderBytes));
  PutU16(f, 0);

  // BTH.
  f.push_back(static_cast<uint8_t>(meta.opcode));
  f.push_back(meta.ack_req ? 0x80 : 0x00);  // solicited/ackreq flags
  PutU16(f, 0xFFFF);                        // pkey
  PutU32(f, meta.dest_qpn & 0x00FFFFFF);
  PutU32(f, meta.psn & 0x00FFFFFF);

  if (OpcodeHasReth(meta.opcode)) {
    PutU64(f, meta.reth_vaddr);
    PutU32(f, meta.reth_rkey);
    PutU32(f, meta.reth_len);
  }
  if (OpcodeHasAeth(meta.opcode)) {
    f.push_back(meta.aeth_syndrome);
    f.push_back(static_cast<uint8_t>(meta.aeth_msn >> 16));
    f.push_back(static_cast<uint8_t>(meta.aeth_msn >> 8));
    f.push_back(static_cast<uint8_t>(meta.aeth_msn));
  }

  f.insert(f.end(), payload.begin(), payload.end());
  PutU32(f, Crc32(f.data(), f.size()));
  return f;
}

std::optional<ParsedFrame> ParseFrame(const axi::BufferView& bytes) {
  const size_t min_len =
      kEthHeaderBytes + kIpv4HeaderBytes + kUdpHeaderBytes + kBthBytes + kIcrcBytes;
  if (bytes.size() < min_len) {
    return std::nullopt;
  }
  const uint8_t* p = bytes.data();
  ParsedFrame out;
  std::memcpy(out.meta.dst_mac.bytes.data(), p, 6);
  std::memcpy(out.meta.src_mac.bytes.data(), p + 6, 6);
  if (GetU16(p + 12) != 0x0800) {
    return std::nullopt;
  }
  const uint8_t* ip = p + kEthHeaderBytes;
  if ((ip[0] >> 4) != 4 || ip[9] != 17) {
    return std::nullopt;
  }
  out.meta.src_ip = GetU32(ip + 12);
  out.meta.dst_ip = GetU32(ip + 16);
  const uint8_t* udp = ip + kIpv4HeaderBytes;
  if (GetU16(udp + 2) != kRoceUdpPort) {
    return std::nullopt;
  }
  const uint8_t* bth = udp + kUdpHeaderBytes;
  out.meta.opcode = static_cast<Opcode>(bth[0]);
  out.meta.ack_req = (bth[1] & 0x80) != 0;
  out.meta.dest_qpn = GetU32(bth + 4) & 0x00FFFFFF;
  out.meta.psn = GetU32(bth + 8) & 0x00FFFFFF;

  const uint8_t* cursor = bth + kBthBytes;
  if (OpcodeHasReth(out.meta.opcode)) {
    if (cursor + kRethBytes > p + bytes.size()) {
      return std::nullopt;
    }
    out.meta.reth_vaddr = GetU64(cursor);
    out.meta.reth_rkey = GetU32(cursor + 8);
    out.meta.reth_len = GetU32(cursor + 12);
    cursor += kRethBytes;
  }
  if (OpcodeHasAeth(out.meta.opcode)) {
    if (cursor + kAethBytes > p + bytes.size()) {
      return std::nullopt;
    }
    out.meta.aeth_syndrome = cursor[0];
    out.meta.aeth_msn = static_cast<uint32_t>(cursor[1]) << 16 |
                        static_cast<uint32_t>(cursor[2]) << 8 | cursor[3];
    cursor += kAethBytes;
  }
  const uint8_t* end = p + bytes.size() - kIcrcBytes;
  if (cursor > end) {
    return std::nullopt;
  }
  // ICRC check: a frame corrupted in flight fails here and is treated like a
  // loss — the sender's retransmit machinery recovers it.
  if (GetU32(end) != Crc32(p, bytes.size() - kIcrcBytes)) {
    return std::nullopt;
  }
  // Zero-copy: the payload view shares the frame's storage.
  out.payload = bytes.Slice(static_cast<size_t>(cursor - p), static_cast<size_t>(end - cursor));
  return out;
}

}  // namespace net
}  // namespace coyote
