#include "src/net/network.h"

#include <string>
#include <utility>

namespace coyote {
namespace net {

uint32_t Network::AttachPort(uint32_t ip, RxHandler rx) {
  const uint32_t id = static_cast<uint32_t>(ports_.size());
  Port port;
  port.ip = ip;
  port.rx = std::move(rx);
  port.tx_link = std::make_unique<sim::Link>(
      engine_, sim::Link::Config{config_.link_bps, 0, 0, "net_tx" + std::to_string(id)});
  port.rx_link = std::make_unique<sim::Link>(
      engine_, sim::Link::Config{config_.link_bps, 0, 0, "net_rx" + std::to_string(id)});
  ports_.push_back(std::move(port));
  ip_to_port_.emplace(ip, id);
  return id;
}

void Network::Transmit(uint32_t src_port, uint32_t dst_ip, std::vector<uint8_t> frame) {
  const uint64_t index = frame_counter_++;
  auto [first, last] = ip_to_port_.equal_range(dst_ip);
  if (first == last || src_port >= ports_.size()) {
    ++frames_dropped_;
    return;
  }
  if (drop_filter_ && drop_filter_(index)) {
    ++frames_dropped_;
    return;
  }
  const uint64_t bytes = frame.size();
  auto shared = std::make_shared<std::vector<uint8_t>>(std::move(frame));

  // Serialize on the sender's TX link, cross the switch, then serialize on
  // each destination port's RX link before the handler sees the frame (a
  // device binding multiple stacks to one IP gets a copy per stack).
  for (auto it = first; it != last; ++it) {
    const uint32_t dst_port = it->second;
    ports_[src_port].tx_link->Submit(dst_port, bytes, [this, dst_port, bytes, shared]() {
      engine_->ScheduleAfter(config_.switch_latency, [this, dst_port, bytes, shared]() {
        ports_[dst_port].rx_link->Submit(0, bytes, [this, dst_port, bytes, shared]() {
          ++frames_delivered_;
          bytes_delivered_ += bytes;
          if (ports_[dst_port].rx) {
            ports_[dst_port].rx(*shared);
          }
        });
      });
    });
  }
}

}  // namespace net
}  // namespace coyote
