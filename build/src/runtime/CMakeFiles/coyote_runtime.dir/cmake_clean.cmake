file(REMOVE_RECURSE
  "CMakeFiles/coyote_runtime.dir/cthread.cc.o"
  "CMakeFiles/coyote_runtime.dir/cthread.cc.o.d"
  "CMakeFiles/coyote_runtime.dir/device.cc.o"
  "CMakeFiles/coyote_runtime.dir/device.cc.o.d"
  "CMakeFiles/coyote_runtime.dir/scheduler.cc.o"
  "CMakeFiles/coyote_runtime.dir/scheduler.cc.o.d"
  "libcoyote_runtime.a"
  "libcoyote_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coyote_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
