// Fleet resilience layer: checkpoint/restore driven live migration and
// failure-driven evacuation across a simulated rack of Coyote v2 nodes.
//
// The Supervisor (src/runtime/supervisor.h) keeps one *node* healthy: it
// detects hung regions and hot-swaps them in place. This layer closes the
// loop one level up, across nodes — the role the paper assigns to the data
// center control plane sitting on the shell's monitoring registers:
//
//   Fleet         — the deployment harness. N SimDevice nodes partitioned
//                   over a sharded PDES engine (one logical node per
//                   ShardPlacement slot, the Orchestrator occupying logical
//                   node id N), event-driven tenant workloads, per-node
//                   fault injectors and supervisors, and deterministic
//                   node-kill scheduling. Every cross-node interaction is a
//                   ShardedEngine::Post keyed by the sending logical node,
//                   so a fleet run is bit-identical across shard counts.
//   Orchestrator  — the control plane. Scores node health from periodic
//                   heartbeats, stores each tenant's periodic checkpoint,
//                   and drives the migration pipeline:
//
//       quiesce -> checkpoint -> transfer (chunked, RoCE-latency modeled,
//       lossy) -> restore -> resume
//
//   with bounded retransmit rounds and rollback to the source when the
//   destination cannot restore. A node whose heartbeats go silent is
//   declared dead; its tenants are replayed from their last stored
//   checkpoint on a survivor, and when capacity runs out the lowest-
//   priority tenant is shed with typed kShed completions — degraded, never
//   hung.
//
// Checkpoints use the CYK1 wire format (src/vfpga/checkpoint.h): region
// CSR/kernel state, the tenant's progress counters, in-flight op
// descriptors rebased to buffer-relative offsets, and the dirty-page
// manifest from the SVM layer (pages never written are not shipped — the
// restore target reproduces zero state for free). See DESIGN.md
// "Checkpoint wire format and migration protocol".

#ifndef SRC_RUNTIME_ORCHESTRATOR_H_
#define SRC_RUNTIME_ORCHESTRATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/net/network.h"
#include "src/runtime/cthread.h"
#include "src/runtime/device.h"
#include "src/runtime/placement.h"
#include "src/runtime/supervisor.h"
#include "src/sim/access_guard.h"
#include "src/sim/fault.h"
#include "src/sim/sharded_engine.h"
#include "src/sim/time.h"
#include "src/sim/timer_wheel.h"

namespace coyote {
namespace runtime {

// A fleet tenant: one kernel occupying one vFPGA region, streaming a fixed
// number of deterministic data items through it.
struct TenantSpec {
  std::string name;
  // Higher wins capacity fights; equal priorities shed the higher tenant id.
  uint32_t priority = 0;
  uint32_t home_node = 0;
  uint64_t items_total = 8;
  uint64_t item_bytes = 8 << 10;
  sim::TimePs think_time = sim::Microseconds(20);
};

// Terminal fate of a tenant, for settlement accounting.
enum class TenantOutcome : uint8_t {
  kRunning,  // not terminal yet
  kDone,     // all items retired (possibly after migration / evacuation)
  kShed,     // dropped by the orchestrator with kShed completions
};

// One quiesce->checkpoint->transfer->restore->resume attempt (or a
// checkpoint replay after a node death). Everything needed by
// BENCH_migration.json, in simulated picoseconds / bytes.
struct MigrationRecord {
  uint32_t tenant = 0;
  uint32_t src_node = 0;
  uint32_t dst_node = 0;
  std::string reason;  // "planned", "drain", "node.dead", ...
  sim::TimePs started_at = 0;
  sim::TimePs quiesced_at = 0;   // tenant stopped executing on the source
  sim::TimePs resumed_at = 0;    // tenant executing again (dst or rollback)
  sim::TimePs downtime = 0;      // quiesced_at -> resumed_at
  uint64_t ckpt_bytes = 0;
  uint64_t ckpt_pages = 0;       // dirty pages shipped
  uint32_t chunks = 0;           // first-round transfer chunks
  uint32_t retransmit_rounds = 0;
  uint32_t restore_attempts = 0;
  // "ok" | "rollback.transfer" | "rollback.restore" | "rollback.dst_dead"
  // | "evacuated" | "evacuated.fresh" | "shed"
  std::string outcome;
};

class Orchestrator;

// The deployment: nodes, tenants, injectors, and the sharded engine that
// runs them. Construction and Run() are host-side; everything else executes
// inside shard callbacks and communicates through Post().
class Fleet {
 public:
  struct Config {
    uint32_t num_nodes = 4;
    uint32_t regions_per_node = 2;
    uint32_t num_shards = 1;
    bool use_threads = false;
    uint64_t seed = 1;

    // Per-node fault plan template; each node derives its injector seed from
    // `seed` and its node id, the orchestrator from id num_nodes.
    sim::FaultPlan fault_template;

    // Control-plane cadence.
    sim::TimePs heartbeat_period = sim::Microseconds(50);
    sim::TimePs sweep_period = sim::Microseconds(100);
    // Heartbeats a node may miss before the sweep declares it dead.
    uint32_t dead_after_missed = 4;
    // Periodic tenant checkpoint cadence (0 disables periodic checkpoints;
    // a dead node's tenants then restart from scratch).
    sim::TimePs checkpoint_period = sim::Microseconds(300);

    // Migration transport: checkpoint chunk size on the wire and capture
    // serialization bandwidth. Link rate and switch latency come from
    // net::Network::Config — the same constants the RoCE fabric models.
    uint64_t chunk_bytes = 4096;
    uint64_t capture_bps = 8'000'000'000ull;
    uint32_t chunk_retry_max = 6;
    sim::TimePs chunk_retry_backoff = sim::Microseconds(5);
    uint32_t restore_attempts_max = 2;

    net::Network::Config net;
    Supervisor::Config supervisor;

    // Kernel preloaded into every region at setup. Restores must find the
    // same kernel resident (RestoreRegion matches by name); the factory
    // keeps this layer independent of the concrete kernel library.
    std::string kernel_name = "passthrough";
    SimDevice::KernelFactory kernel_factory;
  };

  explicit Fleet(const Config& config);
  ~Fleet();
  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  // --- Host-side setup (before Run) -------------------------------------------
  // Admits a tenant on its home node's first free region. Returns the tenant
  // id. Must be called before Run().
  uint32_t AddTenant(const TenantSpec& spec);
  // Schedules a migration command (orchestrator-driven) at simulated time t.
  void ScheduleMigration(sim::TimePs t, uint32_t tenant, uint32_t dst_node);
  // Schedules a hard node crash at simulated time t: timers stop, heartbeats
  // go silent, every callback on the node becomes a no-op.
  void ScheduleKill(sim::TimePs t, uint32_t node);

  // Runs the fleet in fixed `step` windows until every tenant settled (done
  // or shed) or `horizon` elapses. Returns true when settled.
  bool Run(sim::TimePs horizon, sim::TimePs step = sim::Milliseconds(1));

  // --- Observation (host-side, after Run) --------------------------------------
  Orchestrator& orchestrator() { return *orch_; }
  const Orchestrator& orchestrator() const { return *orch_; }
  sim::ShardedEngine& sharded() { return *sharded_; }
  SimDevice& node_device(uint32_t node) { return *nodes_[node]->dev; }
  Supervisor& node_supervisor(uint32_t node) { return *nodes_[node]->sup; }
  sim::FaultInjector& node_injector(uint32_t node) { return *nodes_[node]->injector; }
  sim::FaultInjector& orch_injector() { return *orch_injector_; }
  uint32_t num_nodes() const { return config_.num_nodes; }
  bool node_alive(uint32_t node) const { return nodes_[node]->alive; }

  TenantOutcome tenant_outcome(uint32_t tenant) const;
  // Rolling FNV-1a over every item the tenant verified end-to-end; carried
  // through checkpoints, so it is the data-integrity witness for migration.
  uint64_t tenant_data_hash(uint32_t tenant) const;
  uint64_t tenant_items_done(uint32_t tenant) const;

  // Fault-schedule fingerprint folded over every injector (nodes then
  // orchestrator) — bit-identical across shard counts for one seed.
  uint64_t InjectorFingerprint() const;

 private:
  friend class Orchestrator;

  // Tenant execution state on a node. Retired entries are kept (a CThread
  // with in-flight completions must outlive them); `region < 0` marks them.
  struct TenantRt {
    uint32_t id = 0;
    TenantSpec spec;
    uint32_t node = 0;
    int32_t region = -1;
    std::unique_ptr<CThread> thread;
    uint64_t src_vaddr = 0;
    uint64_t dst_vaddr = 0;
    uint64_t items_done = 0;
    uint64_t retries = 0;
    uint64_t data_hash = 0xcbf29ce484222325ull;
    // Dirty clock at the previous checkpoint (incremental-manifest stats).
    uint64_t last_ckpt_clock = 0;
    bool running = false;  // false: quiesced / retired / shed
    // Exactly one item op in flight at a time. Guards against a stale
    // think-time timer firing right after a rollback resumed the tenant,
    // which would double-issue the current item.
    bool item_inflight = false;

    // Live-migration scratch, valid while this tenant is the source of an
    // in-flight transfer: the frozen checkpoint for retransmit rounds and
    // the aborted in-flight ops for a rollback re-issue.
    std::vector<uint8_t> mig_blob;
    std::vector<CThread::PendingOp> mig_pending;
    uint32_t mig_dst = 0;
    int32_t mig_dst_region = -1;
    sim::TimePs mig_quiesced_at = 0;
  };

  struct NodeRt {
    uint32_t id = 0;
    bool alive = true;
    std::unique_ptr<SimDevice> dev;
    std::unique_ptr<Supervisor> sup;
    std::unique_ptr<sim::FaultInjector> injector;
    sim::TimerWheel::TimerId hb_timer = sim::TimerWheel::kInvalidTimer;
    sim::TimerWheel::TimerId ckpt_timer = sim::TimerWheel::kInvalidTimer;
    uint64_t hb_seq = 0;
    // region -> resident tenant id (-1 free). Orchestrator placement is
    // authoritative; this is the node-local execution view.
    std::vector<int32_t> region_tenant;
    // tenant id -> runtime (including retired entries).
    std::map<uint32_t, std::unique_ptr<TenantRt>> tenants;
    // In-progress inbound checkpoint transfer, keyed by tenant. The marker
    // message (re)stamps the metadata every round; chunks accumulate across
    // retransmit rounds.
    struct Inbound {
      std::map<uint32_t, std::vector<uint8_t>> chunks;
      uint32_t src_logical = 0;
      int32_t region = -1;
      uint32_t total = 0;
    };
    std::map<uint32_t, Inbound> inbound;
  };

  // --- Node-side handlers (shard context of the node) ---------------------------
  void StartTenantFresh(uint32_t node, uint32_t tenant, const TenantSpec& spec, int32_t region);
  void StartItem(uint32_t node, uint32_t tenant);
  void OnItemComplete(uint32_t node, uint32_t tenant, CThread::Task task, OpStatus status);
  void HeartbeatTick(uint32_t node);
  void CheckpointTick(uint32_t node);
  void BeginMigration(uint32_t node, uint32_t tenant, uint32_t dst_node, int32_t dst_region);
  void SendChunks(uint32_t src_logical, uint32_t dst_node, uint32_t tenant,
                  const std::vector<uint8_t>& blob, const std::vector<uint32_t>& chunk_ids,
                  uint32_t total_chunks, uint32_t round, int32_t dst_region,
                  sim::TimePs extra_delay);
  void OnChunk(uint32_t node, uint32_t tenant, uint32_t chunk_id, std::vector<uint8_t> bytes);
  void OnTransferMarker(uint32_t node, uint32_t tenant, uint32_t src_logical, int32_t dst_region,
                        uint32_t total_chunks, uint32_t round, uint64_t corrupt_entropy);
  void OnResendRequest(uint32_t src_logical, uint32_t tenant, std::vector<uint32_t> missing,
                       uint32_t round);
  void TryRestore(uint32_t node, uint32_t tenant, uint32_t src_logical, int32_t dst_region,
                  uint32_t round, std::vector<uint8_t> blob);
  void ResumeAtSource(uint32_t node, uint32_t tenant);
  void CleanupSource(uint32_t node, uint32_t tenant);
  void AbandonInbound(uint32_t node, uint32_t tenant);
  void ShedTenant(uint32_t node, uint32_t tenant);
  void KillNode(uint32_t node);

  // Serializes a tenant's full state (progress, region snapshot, pending
  // ops, dirty pages) into a CYK1 blob. `pending` comes from SnapshotPending
  // *before* the quiesce abort.
  std::vector<uint8_t> BuildCheckpoint(const NodeRt& n, const TenantRt& t,
                                       const std::vector<CThread::PendingOp>& pending,
                                       uint64_t* pages_out) const;
  // Instantiates the tenant described by `blob` on (node, region). Returns
  // false when the blob fails validation or the region state mismatches.
  bool ApplyCheckpoint(uint32_t node, int32_t region, const std::vector<uint8_t>& blob);

  // Cross-node message: runs `cb` in `dst_node`'s shard context no earlier
  // than now + max(delay, lookahead), merge-keyed by the sending node.
  void PostToNode(uint32_t src_logical, uint32_t dst_node, sim::TimePs delay,
                  sim::InlineCallback cb);
  void PostToOrch(uint32_t src_logical, sim::TimePs delay, sim::InlineCallback cb);
  sim::TimePs ChunkWireDelay(uint32_t chunk_index, uint64_t bytes) const;
  // `logical`'s own engine / local clock. Callers always pass their *own*
  // logical node id — reaching another node's engine is what PostToNode is
  // for, and the access guards trip on any cross-shard touch.
  sim::Engine& EngineAt(uint32_t logical);
  sim::TimePs NowAt(uint32_t logical);

  Config config_;
  std::unique_ptr<sim::ShardedEngine> sharded_;
  std::vector<uint32_t> shard_of_;  // logical node (incl. orchestrator) -> shard
  uint32_t orch_logical_ = 0;       // == num_nodes
  std::vector<std::unique_ptr<NodeRt>> nodes_;
  std::unique_ptr<sim::FaultInjector> orch_injector_;
  std::unique_ptr<Orchestrator> orch_;
  uint32_t next_tenant_ = 0;
  bool started_ = false;

  // Node-side tenant/region tables are shard-owned: each node's guard is
  // bound to its shard so a stray cross-shard touch trips the ledger.
  std::vector<std::unique_ptr<sim::AccessGuard>> node_guards_;
};

// The control plane. Lives on logical node `num_nodes` (its own shard slot);
// every method below executes in that shard's context unless noted.
class Orchestrator {
 public:
  struct NodeHealth {
    bool believed_alive = true;
    sim::TimePs last_heartbeat_at = 0;
    uint64_t heartbeats = 0;
    // Orchestrator-authoritative placement books (src/runtime/placement.h).
    // Reservations happen here before the destination node hears anything,
    // so two migrations can never race for one region.
    RegionBook regions;
  };

  // Tenant bookkeeping from the orchestrator's point of view.
  struct TenantBook {
    TenantSpec spec;
    uint32_t node = 0;
    int32_t region = -1;
    TenantOutcome outcome = TenantOutcome::kRunning;
    bool migrating = false;
  };

  explicit Orchestrator(Fleet* fleet);

  // --- Control-plane events (shard context) ------------------------------------
  void OnHeartbeat(uint32_t node, uint64_t seq, sim::TimePs sent_at);
  void OnCheckpoint(uint32_t tenant, std::vector<uint8_t> blob, uint64_t pages,
                    sim::TimePs captured_at);
  void StartMigration(uint32_t tenant, uint32_t dst_node, const std::string& reason);
  void OnMigrationQuiesced(uint32_t tenant, sim::TimePs quiesced_at, uint64_t ckpt_bytes,
                           uint64_t ckpt_pages, uint32_t chunks);
  void OnTransferRound(uint32_t tenant, uint32_t round);
  void OnRestoreAttempt(uint32_t tenant);
  void OnMigrationDone(uint32_t tenant, sim::TimePs resumed_at);
  void OnMigrationFailed(uint32_t tenant, const std::string& why);
  void OnRollbackResumed(uint32_t tenant, sim::TimePs resumed_at);
  void OnTenantDone(uint32_t tenant);
  void OnTenantShed(uint32_t tenant, const std::string& why);
  void Sweep();

  // --- Host-side observation ----------------------------------------------------
  bool AllSettled() const;
  const std::vector<MigrationRecord>& migrations() const { return records_; }
  const std::map<uint32_t, TenantBook>& tenants() const { return tenants_; }
  const std::map<uint32_t, NodeHealth>& node_health() const { return health_; }
  uint64_t deaths_declared() const { return deaths_declared_; }
  uint64_t evacuations() const { return evacuations_; }
  uint64_t sheds() const { return sheds_; }
  uint64_t rollbacks() const { return rollbacks_; }
  sim::TimePs settled_at() const { return settled_at_; }

  // Append-ordered control-plane event trace and its FNV-1a fingerprint —
  // the cross-shard-count determinism witness for the whole fleet.
  const std::vector<std::string>& trace() const { return trace_; }
  uint64_t TraceFingerprint() const;

 private:
  friend class Fleet;

  struct StoredCkpt {
    std::vector<uint8_t> blob;
    uint64_t pages = 0;
    sim::TimePs captured_at = 0;
  };

  void AdmitTenant(uint32_t tenant, const TenantSpec& spec, uint32_t node, int32_t region);
  void DeclareDead(uint32_t node);
  void EvacuateTenant(uint32_t tenant, const std::string& reason);
  void ReserveRegion(uint32_t node, int32_t region, uint32_t tenant);
  void ReleaseRegion(uint32_t node, int32_t region);
  // Lowest-priority running tenant strictly below `below` (ties: highest
  // id). Returns false when none qualifies.
  bool FindShedVictim(uint32_t below_priority, uint32_t* victim_out) const;
  bool FindFreeRegion(uint32_t* node_out, int32_t* region_out) const;
  MigrationRecord* ActiveRecord(uint32_t tenant);
  void Trace(const std::string& line);
  void CheckSettled();

  Fleet* fleet_;
  sim::TimerWheel timers_;

  std::map<uint32_t, TenantBook> tenants_;
  std::map<uint32_t, NodeHealth> health_;
  // Last periodic checkpoint per tenant (evacuation replays these).
  std::map<uint32_t, StoredCkpt> ckpt_store_;
  // Tenants whose evacuation waits on a shed victim's region (victim -> evacuee).
  std::map<uint32_t, uint32_t> pending_evacuations_;
  // Index into records_ of each tenant's active migration.
  std::map<uint32_t, size_t> active_migration_;

  std::vector<MigrationRecord> records_;
  std::vector<std::string> trace_;
  uint64_t deaths_declared_ = 0;
  uint64_t evacuations_ = 0;
  uint64_t sheds_ = 0;
  uint64_t rollbacks_ = 0;
  sim::TimePs settled_at_ = 0;
  bool settled_ = false;

  // Orchestrator-owned state maps, bound to the orchestrator's shard.
  sim::AccessGuard tenants_guard_{"orch.tenants"};
  sim::AccessGuard health_guard_{"orch.node_health"};
  sim::AccessGuard ckpt_guard_{"orch.ckpt_store"};
};

}  // namespace runtime
}  // namespace coyote

#endif  // SRC_RUNTIME_ORCHESTRATOR_H_
