// Library of hardware modules with calibrated resource footprints.
//
// Footprints approximate the published utilization of the corresponding real
// IPs (Coyote v2 repo, fpga-network-stack, XDMA/HBM IP datasheets). They feed
// three models: resource utilization (Figs. 11/12), bitstream sizes
// (Table 3), and synthesis/P&R time (Fig. 7(b)). `congestion` captures how
// hard a module is to route (peripheral-attached blocks pin to I/O columns
// and dominate place & route time — paper §9.2).

#ifndef SRC_SYNTH_MODULE_LIBRARY_H_
#define SRC_SYNTH_MODULE_LIBRARY_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/fabric/resources.h"
#include "src/fabric/shell_config.h"

namespace coyote {
namespace synth {

struct HwModule {
  std::string name;
  fabric::ResourceVector res;
  double congestion = 1.0;  // routing-difficulty multiplier
};

// Returns the named module. Dies (assert) on unknown names — the library is a
// closed calibration surface, not user-extensible storage.
const HwModule& LibraryModule(std::string_view name);

// True if the library contains `name`.
bool LibraryHasModule(std::string_view name);

// Modules instantiated in the dynamic layer for a given shell configuration.
// Always includes the shell crossbar/arbitration infrastructure; adds memory
// controllers, network stacks, the sniffer and the GPU-DMA bridge on demand,
// plus one MMU instance per vFPGA sized by the TLB parameters.
std::vector<HwModule> ServiceModulesFor(const fabric::ShellConfigDesc& config);

}  // namespace synth
}  // namespace coyote

#endif  // SRC_SYNTH_MODULE_LIBRARY_H_
