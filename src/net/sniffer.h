// Traffic sniffer service + PCAP writer (paper §8, Fig. 6).
//
// A reconfigurable service inserted between the network stacks and the 100G
// CMAC. Controlled through CSR-style accessors: a user-configured filter
// selects which RX/TX traffic is captured, optionally headers-only, and
// recording can be started/stopped at run time. Captured frames are
// timestamped in hardware and staged in a card-memory buffer; a host-side
// parser converts them to a standard little-endian PCAP file that Wireshark
// and tcpdump can open.

#ifndef SRC_NET_SNIFFER_H_
#define SRC_NET_SNIFFER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/axi/buffer.h"
#include "src/net/packets.h"
#include "src/sim/access_guard.h"
#include "src/sim/engine.h"

namespace coyote {
namespace net {

class TrafficSniffer {
 public:
  struct Filter {
    bool capture_tx = true;
    bool capture_rx = true;
    bool headers_only = false;          // truncate to header bytes
    uint32_t src_ip = 0;                // 0 = wildcard
    uint32_t dst_ip = 0;                // 0 = wildcard
    std::optional<Opcode> opcode;       // capture only this opcode
  };

  struct CapturedFrame {
    sim::TimePs timestamp = 0;
    bool is_tx = false;
    uint32_t original_len = 0;
    // Full captures share the wire frame's storage (no copy at capture
    // time); headers-only captures hold a truncated private copy.
    axi::BufferView bytes;
  };

  explicit TrafficSniffer(sim::Engine* engine) : engine_(engine) {}

  // CSR-equivalent control plane.
  void SetFilter(const Filter& filter) { filter_ = filter; }
  void Start() { recording_ = true; }
  void Stop() { recording_ = false; }
  bool recording() const { return recording_; }
  void Clear() {
    guard_.Write();
    frames_.clear();
  }

  // Data plane: called for every frame at the CMAC boundary. This is the
  // function to install as a RoceStack tap.
  void OnFrame(const axi::BufferView& frame, bool is_tx);

  const std::vector<CapturedFrame>& frames() const { return frames_; }
  uint64_t dropped_by_filter() const { return dropped_by_filter_; }

  // Total bytes the capture buffer occupies (the HBM staging footprint).
  uint64_t capture_bytes() const;

  // Host-side parser: renders the capture as a PCAP byte stream
  // (little-endian magic 0xa1b2c3d4, LINKTYPE_ETHERNET).
  std::vector<uint8_t> ToPcap() const;
  bool WritePcapFile(const std::string& path) const;

 private:
  bool Matches(const axi::BufferView& frame, bool is_tx) const;

  sim::Engine* engine_;
  Filter filter_;
  bool recording_ = false;
  sim::AccessGuard guard_{"net.sniffer"};
  std::vector<CapturedFrame> frames_;
  uint64_t dropped_by_filter_ = 0;
};

}  // namespace net
}  // namespace coyote

#endif  // SRC_NET_SNIFFER_H_
