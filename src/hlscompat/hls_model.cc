#include "src/hlscompat/hls_model.h"

#include "src/synth/flow.h"
#include "src/synth/module_library.h"
#include "src/synth/netlist.h"

namespace coyote {
namespace hlscompat {

std::string_view BackendName(Backend b) {
  switch (b) {
    case Backend::kCoyoteAccelerator:
      return "CoyoteAccelerator";
    case Backend::kPynqVitis:
      return "PYNQ/Vitis";
  }
  return "unknown";
}

std::vector<int8_t> HlsModel::PredictEmulated(const std::vector<int8_t>& inputs,
                                              size_t num_samples) const {
  const uint32_t in_dim = spec_.input_dim();
  const uint32_t out_dim = spec_.output_dim();
  std::vector<int8_t> out;
  out.reserve(num_samples * out_dim);
  for (size_t s = 0; s < num_samples; ++s) {
    std::vector<int8_t> y = services::MlpForward(spec_, &inputs[s * in_dim]);
    out.insert(out.end(), y.begin(), y.end());
  }
  return out;
}

CompiledModel HlsModel::Build(const fabric::Floorplan& floorplan) const {
  CompiledModel model;
  model.spec = spec_;
  model.backend = backend_;
  model.kernel_resources = spec_.EstimateResources();

  synth::BuildFlow flow(floorplan);
  const synth::HwModule nn_module{"nn:" + spec_.name, model.kernel_resources, 1.0};
  synth::Netlist app{"nn:" + spec_.name, {nn_module}};

  if (backend_ == Backend::kCoyoteAccelerator) {
    // Coyote: link against the pre-routed streaming shell (app flow). The
    // infrastructure charged against the design is the dynamic layer's
    // streaming plumbing plus one MMU.
    fabric::ShellConfigDesc shell;
    shell.name = "nn-shell";
    shell.services = {fabric::Service::kHostStream, fabric::Service::kCardMemory};
    shell.num_vfpgas = floorplan.num_app_regions();
    const synth::BuildOutput locked = flow.RunShellFlow(shell, {});
    const synth::BuildOutput out = flow.RunAppFlow(app, 0, locked);
    model.build_seconds = out.total_seconds;
    fabric::ResourceVector infra;
    infra += synth::LibraryModule("dyn_crossbar").res;
    infra += synth::LibraryModule("host_stream").res;
    infra += synth::LibraryModule("mmu_2m").res;
    model.infra_resources = infra;
  } else {
    // Vitis/PYNQ: full platform build each time; the XRT shell plus the
    // Vitis memory subsystem ride along with the kernel.
    fabric::ShellConfigDesc shell;
    shell.name = "vitis-platform";
    shell.services = {fabric::Service::kHostStream, fabric::Service::kCardMemory};
    shell.num_vfpgas = floorplan.num_app_regions();
    const synth::BuildOutput out = flow.RunShellFlow(shell, {app});
    model.build_seconds = out.total_seconds;
    fabric::ResourceVector infra;
    infra += synth::LibraryModule("static_layer").res.Scaled(0.6);  // XRT shell
    infra += synth::LibraryModule("hbm_controller").res;
    infra += synth::LibraryModule("dyn_crossbar").res;
    model.infra_resources = infra;
  }
  return model;
}

}  // namespace hlscompat
}  // namespace coyote
