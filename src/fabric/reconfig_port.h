// Partial reconfiguration ports (paper §5.3, Table 2).
//
// The configuration memory of an UltraScale+ device is written through one of
// several ports. Legacy controllers (AXI HWICAP, PCAP, MCAP) perform
// single-word register writes and are an order of magnitude slower than the
// raw ICAP bandwidth (~800 MB/s: 32-bit word per 200 MHz cycle). Coyote v2's
// controller streams the bitstream from host memory over a dedicated XDMA
// channel straight into the ICAP, saturating it.

#ifndef SRC_FABRIC_RECONFIG_PORT_H_
#define SRC_FABRIC_RECONFIG_PORT_H_

#include <cstdint>
#include <functional>
#include <string_view>

#include "src/sim/clock.h"
#include "src/sim/engine.h"
#include "src/sim/fault.h"
#include "src/sim/time.h"

namespace coyote {
namespace fabric {

struct ReconfigPortSpec {
  std::string_view name;
  std::string_view interface;  // bus type, as reported in Table 2
  uint32_t word_bytes = 4;
  sim::TimePs per_word_ps = 0;  // time to push one word through the port

  constexpr double ThroughputMBps() const {
    return per_word_ps == 0
               ? 0.0
               : static_cast<double>(word_bytes) / (static_cast<double>(per_word_ps) * 1e-12) /
                     1e6;
  }
};

// AXI HWICAP [AMD PG134]: AXI4-Lite, each 32-bit word costs a full register
// write transaction (~42 cycles at 200 MHz) -> ~19 MB/s.
inline constexpr ReconfigPortSpec kAxiHwicap{"AXI HWICAP", "AXI Lite", 4, 210'526};

// PCAP (Zynq processor configuration access port): ~128 MB/s.
inline constexpr ReconfigPortSpec kPcap{"PCAP", "AXI", 4, 31'250};

// MCAP (PCIe media configuration access port): ~145 MB/s.
inline constexpr ReconfigPortSpec kMcap{"MCAP", "AXI", 4, 27'586};

// Coyote v2 optimized ICAP controller: one 32-bit word per ICAP clock cycle
// (200 MHz), fed by an AXI4-Stream from a dedicated XDMA channel -> 800 MB/s.
inline constexpr ReconfigPortSpec kCoyoteIcap{"Coyote v2 ICAP", "AXI Stream", 4, 5'000};

// Pure programming time of `bytes` through a port (the Table 3 "kernel
// latency" component for the Coyote ICAP).
constexpr sim::TimePs ProgramTime(const ReconfigPortSpec& port, uint64_t bytes) {
  const uint64_t words = (bytes + port.word_bytes - 1) / port.word_bytes;
  return words * port.per_word_ps;
}

// Coyote v2's reconfiguration controller: stages the bitstream transfer from
// host memory (XDMA utility channel) against the ICAP write, pipelined in
// 4 KB bursts, so the slower of the two rates bounds the latency. The rest of
// the fabric keeps running: programming is just another event stream.
class ReconfigController {
 public:
  ReconfigController(sim::Engine* engine, uint64_t host_link_bps,
                     ReconfigPortSpec port = kCoyoteIcap)
      : engine_(engine), host_link_bps_(host_link_bps), port_(port) {}

  // Latency from "bitstream resident in pinned host memory" to "region
  // activated" — the paper's kernel latency.
  sim::TimePs ProgramLatency(uint64_t bytes) const {
    const sim::TimePs icap = ProgramTime(port_, bytes);
    const sim::TimePs dma = sim::TransferTime(bytes, host_link_bps_);
    // Pipelined: total = max of the stages + one burst of fill latency.
    const sim::TimePs fill = sim::TransferTime(kBurstBytes, host_link_bps_);
    return std::max(icap, dma) + fill;
  }

  // Programs `bytes` through the port; `on_done(ok)` fires when the attempt
  // finishes. With a fault injector attached, a program may abort mid-stream
  // (ok=false, after roughly half the nominal latency — the point where a CRC
  // error in the bitstream stream is detected) or run slowed by the plan's
  // factor.
  void ProgramAsync(uint64_t bytes, std::function<void(bool ok)> on_done) {
    ++programs_in_flight_;
    sim::TimePs latency = ProgramLatency(bytes);
    bool ok = true;
    if (injector_ != nullptr) {
      if (injector_->NextReconfigFails()) {
        ok = false;
        latency /= 2;  // abort detected mid-bitstream
        ++programs_failed_;
      } else {
        const double slow = injector_->NextReconfigSlowdown();
        if (slow > 1.0) {
          latency = static_cast<sim::TimePs>(static_cast<double>(latency) * slow);
          ++programs_slowed_;
        }
      }
    }
    engine_->ScheduleAfter(latency, [this, ok, cb = std::move(on_done)]() {
      --programs_in_flight_;
      if (cb) {
        cb(ok);
      }
    });
  }

  void SetFaultInjector(sim::FaultInjector* injector) { injector_ = injector; }

  bool busy() const { return programs_in_flight_ > 0; }
  uint64_t programs_failed() const { return programs_failed_; }
  uint64_t programs_slowed() const { return programs_slowed_; }
  const ReconfigPortSpec& port() const { return port_; }

 private:
  static constexpr uint64_t kBurstBytes = 4096;

  sim::Engine* engine_;
  uint64_t host_link_bps_;
  ReconfigPortSpec port_;
  sim::FaultInjector* injector_ = nullptr;
  int programs_in_flight_ = 0;
  uint64_t programs_failed_ = 0;
  uint64_t programs_slowed_ = 0;
};

}  // namespace fabric
}  // namespace coyote

#endif  // SRC_FABRIC_RECONFIG_PORT_H_
