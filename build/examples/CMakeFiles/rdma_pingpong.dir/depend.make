# Empty dependencies file for rdma_pingpong.
# This may be replaced when dependencies are built.
