// Unit tests for the TCP/IP offload stack.

#include <gtest/gtest.h>

#include <vector>

#include "src/memsys/card_memory.h"
#include "src/memsys/gpu_memory.h"
#include "src/memsys/host_memory.h"
#include "src/mmu/svm.h"
#include "src/net/network.h"
#include "src/net/packets.h"
#include "src/net/tcp.h"
#include "src/sim/engine.h"
#include "src/sim/rng.h"

namespace coyote {
namespace net {
namespace {

constexpr uint64_t kPage = 2ull << 20;

TEST(TcpSegmentTest, BuildParseRoundTrip) {
  TcpSegmentMeta meta;
  meta.src_ip = 0x0A000001;
  meta.dst_ip = 0x0A000002;
  meta.src_port = 0xC001;
  meta.dst_port = 5001;
  meta.seq = 1'000'000;
  meta.ack = 2'000'000;
  meta.flags = kTcpAck | kTcpSyn;
  meta.window = 256;
  std::vector<uint8_t> payload{9, 8, 7};
  auto parsed = ParseTcpSegment(BuildTcpSegment(meta, payload));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->meta.src_port, meta.src_port);
  EXPECT_EQ(parsed->meta.dst_port, meta.dst_port);
  EXPECT_EQ(parsed->meta.seq, meta.seq);
  EXPECT_EQ(parsed->meta.ack, meta.ack);
  EXPECT_EQ(parsed->meta.flags, meta.flags);
  EXPECT_EQ(parsed->meta.window, meta.window);
  EXPECT_EQ(parsed->payload, payload);
}

TEST(TcpSegmentTest, RejectsNonTcp) {
  EXPECT_FALSE(ParseTcpSegment({}).has_value());
  // A RoCE (UDP) frame must not parse as TCP.
  FrameMeta roce;
  roce.opcode = Opcode::kSendOnly;
  EXPECT_FALSE(ParseTcpSegment(BuildFrame(roce, {})).has_value());
  // And vice versa: a TCP segment must not parse as RoCE.
  TcpSegmentMeta tcp;
  EXPECT_FALSE(ParseFrame(BuildTcpSegment(tcp, {})).has_value());
}

class TcpTest : public ::testing::Test {
 protected:
  TcpTest()
      : nw_(&engine_, {}),
        card_a_(&engine_, {}),
        card_b_(&engine_, {}),
        svm_a_(&engine_, &host_a_, &card_a_, &gpu_a_, kPage),
        svm_b_(&engine_, &host_b_, &card_b_, &gpu_b_, kPage),
        client_(&engine_, &nw_, 0x0A000001, &svm_a_),
        server_(&engine_, &nw_, 0x0A000002, &svm_b_) {
    buf_a_ = host_a_.Allocate(8ull << 20, memsys::AllocKind::kHuge2M);
    svm_a_.RegisterHostBuffer(buf_a_, 8ull << 20);
    buf_b_ = host_b_.Allocate(8ull << 20, memsys::AllocKind::kHuge2M);
    svm_b_.RegisterHostBuffer(buf_b_, 8ull << 20);
  }

  // Establishes a connection; returns {client_conn, server_conn}.
  std::pair<TcpStack::ConnId, TcpStack::ConnId> Establish() {
    TcpStack::ConnId client_conn = 0, server_conn = 0;
    server_.Listen(5001, [&](TcpStack::ConnId c) { server_conn = c; });
    client_.Connect(0x0A000002, 5001,
                    [&](TcpStack::ConnId c, bool ok) { client_conn = ok ? c : 0; });
    engine_.RunUntilCondition([&] { return client_conn != 0 && server_conn != 0; });
    return {client_conn, server_conn};
  }

  sim::Engine engine_;
  Network nw_;
  memsys::HostMemory host_a_, host_b_;
  memsys::CardMemory card_a_, card_b_;
  memsys::GpuMemory gpu_a_, gpu_b_;
  mmu::Svm svm_a_, svm_b_;
  TcpStack client_, server_;
  uint64_t buf_a_ = 0, buf_b_ = 0;
};

TEST_F(TcpTest, HandshakeEstablishesBothSides) {
  auto [c, s] = Establish();
  EXPECT_TRUE(client_.IsOpen(c));
  EXPECT_TRUE(server_.IsOpen(s));
  // Handshake: SYN + SYN-ACK + ACK = 3 segments minimum.
  EXPECT_GE(client_.segments_sent() + server_.segments_sent(), 3u);
}

TEST_F(TcpTest, ConnectToClosedPortNeverCompletes) {
  bool called = false;
  client_.Connect(0x0A000002, 9999, [&](TcpStack::ConnId, bool) { called = true; });
  engine_.RunUntil(sim::Milliseconds(2));
  EXPECT_FALSE(called);  // SYN retransmits, no listener answers
  EXPECT_GT(client_.retransmitted_segments(), 0u);
}

TEST_F(TcpTest, StreamTransferDeliversExactBytes) {
  auto [c, s] = Establish();
  constexpr uint64_t kBytes = 2 << 20;
  std::vector<uint8_t> data(kBytes);
  sim::Rng rng(1);
  rng.FillBytes(data.data(), kBytes);
  svm_a_.WriteVirtual(buf_a_, data.data(), kBytes);

  std::vector<uint8_t> received;
  server_.SetRecvHandler(s, [&](std::vector<uint8_t> chunk) {
    received.insert(received.end(), chunk.begin(), chunk.end());
  });
  bool done = false;
  client_.Send(c, buf_a_, kBytes, [&](bool ok) { done = ok; });
  engine_.RunUntilCondition([&] { return done; });
  EXPECT_EQ(received, data);
  EXPECT_EQ(client_.bytes_acked(), kBytes);
}

TEST_F(TcpTest, WindowLimitsInflightBytes) {
  auto [c, s] = Establish();
  // The peer advertises a bounded window; the sender must pace rather than
  // blast the whole backlog at once: so at any instant in-flight <= window.
  constexpr uint64_t kBytes = 4 << 20;
  server_.SetRecvHandler(s, [](std::vector<uint8_t>) {});
  bool done = false;
  client_.Send(c, buf_a_, kBytes, [&](bool ok) { done = ok; });
  // Step and check the invariant as the transfer progresses.
  for (int i = 0; i < 2000 && !done; ++i) {
    engine_.Step();
  }
  engine_.RunUntilCondition([&] { return done; });
  EXPECT_TRUE(done);
}

TEST_F(TcpTest, LossRecoveryGoBackN) {
  auto [c, s] = Establish();
  constexpr uint64_t kBytes = 512 << 10;
  std::vector<uint8_t> data(kBytes);
  sim::Rng rng(2);
  rng.FillBytes(data.data(), kBytes);
  svm_a_.WriteVirtual(buf_a_, data.data(), kBytes);

  uint64_t count = 0;
  nw_.SetDropFilter([&count](uint64_t) {
    ++count;
    return count == 7 || count == 20;
  });
  std::vector<uint8_t> received;
  server_.SetRecvHandler(s, [&](std::vector<uint8_t> chunk) {
    received.insert(received.end(), chunk.begin(), chunk.end());
  });
  bool done = false;
  client_.Send(c, buf_a_, kBytes, [&](bool ok) { done = ok; });
  engine_.RunUntilCondition([&] { return done; });
  EXPECT_EQ(received, data);
  EXPECT_GT(client_.retransmitted_segments(), 0u);
}

TEST_F(TcpTest, BidirectionalStreams) {
  auto [c, s] = Establish();
  std::vector<uint8_t> up(100'000, 0xAA), down(50'000, 0xBB);
  svm_a_.WriteVirtual(buf_a_, up.data(), up.size());
  svm_b_.WriteVirtual(buf_b_, down.data(), down.size());
  std::vector<uint8_t> got_up, got_down;
  server_.SetRecvHandler(s, [&](std::vector<uint8_t> d) {
    got_up.insert(got_up.end(), d.begin(), d.end());
  });
  client_.SetRecvHandler(c, [&](std::vector<uint8_t> d) {
    got_down.insert(got_down.end(), d.begin(), d.end());
  });
  bool done_up = false, done_down = false;
  client_.Send(c, buf_a_, up.size(), [&](bool ok) { done_up = ok; });
  server_.Send(s, buf_b_, down.size(), [&](bool ok) { done_down = ok; });
  engine_.RunUntilCondition([&] { return done_up && done_down; });
  EXPECT_EQ(got_up, up);
  EXPECT_EQ(got_down, down);
}

TEST_F(TcpTest, MultipleSendsOnOneConnectionStaySequenced) {
  auto [c, s] = Establish();
  std::vector<uint8_t> all;
  server_.SetRecvHandler(s, [&](std::vector<uint8_t> d) {
    all.insert(all.end(), d.begin(), d.end());
  });
  std::vector<uint8_t> expected;
  int completions = 0;
  for (int i = 0; i < 3; ++i) {
    std::vector<uint8_t> part(10'000, static_cast<uint8_t>(0x10 + i));
    svm_a_.WriteVirtual(buf_a_ + i * 10'000, part.data(), part.size());
    expected.insert(expected.end(), part.begin(), part.end());
    client_.Send(c, buf_a_ + i * 10'000, part.size(), [&](bool) { ++completions; });
  }
  engine_.RunUntilCondition([&] { return completions == 3; });
  EXPECT_EQ(all, expected);
}

TEST_F(TcpTest, CloseAfterSendDeliversEverythingFirst) {
  // Graceful close: the FIN must follow the last queued byte.
  auto [c, s] = Establish();
  std::vector<uint8_t> data(300'000);
  sim::Rng rng(9);
  rng.FillBytes(data.data(), data.size());
  svm_a_.WriteVirtual(buf_a_, data.data(), data.size());
  std::vector<uint8_t> received;
  server_.SetRecvHandler(s, [&](std::vector<uint8_t> d) {
    received.insert(received.end(), d.begin(), d.end());
  });
  client_.Send(c, buf_a_, data.size(), nullptr);
  client_.Close(c);  // immediately — data still in flight
  engine_.RunUntil(engine_.Now() + sim::Milliseconds(5));
  EXPECT_EQ(received, data);
  EXPECT_FALSE(client_.IsOpen(c));
  EXPECT_FALSE(server_.IsOpen(s));
}

TEST_F(TcpTest, CloseTearsDownBothSides) {
  auto [c, s] = Establish();
  client_.Close(c);
  engine_.RunUntil(engine_.Now() + sim::Milliseconds(1));
  EXPECT_FALSE(client_.IsOpen(c));
  EXPECT_FALSE(server_.IsOpen(s));
}

TEST_F(TcpTest, BlackholedSendErrorCompletesAfterRetryBudget) {
  auto [c, s] = Establish();
  nw_.SetDropFilter([](uint64_t) { return true; });  // total blackhole

  // The send can never be acknowledged: backoff runs, the retry budget
  // drains, and the completion fires with ok=false — never a silent hang.
  bool done = false, ok = true;
  client_.Send(c, buf_a_, 64 << 10, [&](bool k) {
    done = true;
    ok = k;
  });
  ASSERT_TRUE(engine_.RunUntilCondition([&] { return done; }));
  EXPECT_FALSE(ok);
  EXPECT_EQ(client_.retries_exhausted(), 1u);
  EXPECT_GT(client_.backoff_events(), 0u);
  EXPECT_GT(client_.error_completions(), 0u);
  EXPECT_FALSE(client_.IsOpen(c));  // the failed connection is torn down
}

TEST_F(TcpTest, HandshakeIntoBlackholeFailsWithTypedError) {
  nw_.SetDropFilter([](uint64_t) { return true; });
  bool called = false, ok = true;
  client_.Connect(0x0A000002, 5001, [&](TcpStack::ConnId, bool k) {
    called = true;
    ok = k;
  });
  ASSERT_TRUE(engine_.RunUntilCondition([&] { return called; }));
  EXPECT_FALSE(ok);
  EXPECT_EQ(client_.retries_exhausted(), 1u);
  EXPECT_GT(client_.error_completions(), 0u);
}

TEST_F(TcpTest, ThroughputReasonableOn100G) {
  auto [c, s] = Establish();
  constexpr uint64_t kBytes = 8 << 20;
  server_.SetRecvHandler(s, [](std::vector<uint8_t>) {});
  bool done = false;
  const sim::TimePs start = engine_.Now();
  client_.Send(c, buf_a_, kBytes, [&](bool ok) { done = ok; });
  engine_.RunUntilCondition([&] { return done; });
  const double gbps = sim::BandwidthGBps(kBytes, engine_.Now() - start);
  // Window-paced, ACK-clocked: must stay within line rate but be efficient.
  EXPECT_GT(gbps, 5.0);
  EXPECT_LE(gbps, 12.5);
}

}  // namespace
}  // namespace net
}  // namespace coyote
