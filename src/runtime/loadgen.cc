#include "src/runtime/loadgen.h"

#include <algorithm>
#include <utility>

namespace coyote {
namespace runtime {

LoadGen::LoadGen(sim::Engine* engine, const Config& config, SubmitFn submit)
    : engine_(engine), config_(config), submit_(std::move(submit)), rng_(config.seed) {}

void LoadGen::Start() {
  engine_->ScheduleAt(config_.start, [this]() { ArrivalTick(); });
}

uint32_t LoadGen::PermilleAt(sim::TimePs t) const {
  if (config_.diurnal_permille.empty() || config_.phase_period == 0) {
    return 1000;
  }
  const size_t phase = static_cast<size_t>(t / config_.phase_period) %
                       config_.diurnal_permille.size();
  return std::max<uint32_t>(1, config_.diurnal_permille[phase]);
}

uint32_t LoadGen::PickTenant(sim::TimePs now) {
  const uint32_t universe = std::max<uint32_t>(1, config_.tenant_universe);
  const uint32_t active = std::min(std::max<uint32_t>(1, config_.active_tenants), universe);
  uint32_t base = 0;
  if (config_.churn_period > 0 && universe > active) {
    // Each churn epoch shifts the active window by one tenant, so over time
    // every tenant in the universe cycles through the live set.
    base = static_cast<uint32_t>((now / config_.churn_period) % universe);
  }
  return (base + static_cast<uint32_t>(rng_.NextBounded(active))) % universe;
}

void LoadGen::ArrivalTick() {
  const sim::TimePs now = engine_->Now();
  if (now >= config_.start + config_.duration) {
    done_ = true;
    return;
  }
  guard_.Write();

  const bool burst =
      config_.burst_permille > 0 && rng_.NextBounded(1000) < config_.burst_permille;
  const uint32_t sessions = burst ? std::max<uint32_t>(1, config_.burst_size) : 1;
  counters_.Increment(burst ? "gen.burst_arrivals" : "gen.arrivals");
  for (uint32_t s = 0; s < sessions; ++s) {
    StartSession(now);
  }

  // Next arrival: the diurnal profile divides the baseline mean gap, jitter
  // is uniform in [mean/2, 3*mean/2). Integer arithmetic throughout.
  const sim::TimePs mean =
      std::max<sim::TimePs>(1, config_.session_gap * 1000 / PermilleAt(now));
  const sim::TimePs gap = mean / 2 + rng_.NextBounded(mean);
  engine_->ScheduleAfter(gap, [this]() { ArrivalTick(); });
}

void LoadGen::StartSession(sim::TimePs now) {
  ++sessions_;
  const uint32_t tenant = PickTenant(now);
  const uint64_t k = 1 + rng_.NextBounded(std::max<uint32_t>(1, config_.requests_per_session_max));
  sim::TimePs at = 0;
  for (uint64_t j = 0; j < k; ++j) {
    EmitRequestAfter(at, tenant);
    // Think time between a session's requests, +-50% jitter.
    const sim::TimePs think = std::max<sim::TimePs>(1, config_.think_gap);
    at += think / 2 + rng_.NextBounded(think);
  }
}

void LoadGen::EmitRequestAfter(sim::TimePs delay, uint32_t tenant) {
  // All randomness is drawn NOW (in the arrival event), not at fire time:
  // the draw order is then a pure function of the arrival chain, independent
  // of how emitted requests interleave with router events.
  serving::ServingRequest req;
  req.tenant = tenant;
  if (!config_.kernels.empty()) {
    req.kernel = config_.kernels[rng_.NextBounded(config_.kernels.size())];
  }
  const uint64_t lo = std::max<uint64_t>(1, config_.payload_bytes_min);
  const uint64_t hi = std::max(lo, config_.payload_bytes_max);
  std::vector<uint8_t> bytes(lo + rng_.NextBounded(hi - lo + 1));
  rng_.FillBytes(bytes.data(), bytes.size());
  req.payload = axi::BufferView(std::move(bytes));
  req.priority = static_cast<uint32_t>(rng_.NextBounded(std::max<uint32_t>(1, config_.priorities)));
  if (config_.deadline_budget > 0) {
    req.deadline = engine_->Now() + delay + config_.deadline_budget;
  }
  ++requests_;
  engine_->ScheduleAfter(delay, [this, req = std::move(req)]() mutable {
    guard_.Write();
    submit_(std::move(req));
  });
}

}  // namespace runtime
}  // namespace coyote
