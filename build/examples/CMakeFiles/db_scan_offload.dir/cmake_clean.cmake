file(REMOVE_RECURSE
  "CMakeFiles/db_scan_offload.dir/db_scan_offload.cpp.o"
  "CMakeFiles/db_scan_offload.dir/db_scan_offload.cpp.o.d"
  "db_scan_offload"
  "db_scan_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_scan_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
