// Shared virtual memory manager (paper §6.1).
//
// Implements the GPU-style unified memory model: a single virtual address
// space per cThread spanning host DRAM, card HBM/DDR and (with the external
// extension) GPU memory. Accessing data that is not resident in the memory a
// transfer requires raises a page fault and triggers a page migration; the
// driver updates the page table and invalidates the hardware TLBs.
//
// The Svm holds functional state (where each page's bytes live) and performs
// real byte copies between the backing stores. Migration *timing* is
// injected via MigrationHooks so this module stays independent of the
// dynamic-layer DMA models that provide the bandwidth numbers.

#ifndef SRC_MMU_SVM_H_
#define SRC_MMU_SVM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/memsys/card_memory.h"
#include "src/memsys/gpu_memory.h"
#include "src/memsys/host_memory.h"
#include "src/mmu/page_table.h"
#include "src/mmu/types.h"
#include "src/sim/access_guard.h"
#include "src/sim/engine.h"

namespace coyote {
namespace mmu {

class Svm {
 public:
  struct MigrationHooks {
    // Charges the time to move `bytes` from `from` to `to`; must invoke the
    // callback when the transfer completes. Defaults to instantaneous.
    std::function<void(MemKind from, MemKind to, uint64_t bytes, std::function<void()> done)>
        transfer;
    // Broadcast TLB shootdown for a virtual address (all vFPGA MMUs).
    std::function<void(uint64_t vaddr)> invalidate;
  };

  Svm(sim::Engine* engine, memsys::HostMemory* host, memsys::CardMemory* card,
      memsys::GpuMemory* gpu, uint64_t page_bytes)
      : engine_(engine), host_(host), card_(card), gpu_(gpu), page_table_(page_bytes) {}

  void set_hooks(MigrationHooks hooks) { hooks_ = std::move(hooks); }

  PageTable& page_table() { return page_table_; }
  const PageTable& page_table() const { return page_table_; }

  // Registers a host buffer returned by HostMemory::Allocate: identity-maps
  // its pages as host-resident (the driver side of cThread::GetMem()).
  void RegisterHostBuffer(uint64_t vaddr, uint64_t bytes) {
    page_table_.MapRange(vaddr, bytes, MemKind::kHost, vaddr);
  }

  // Registers a GPU buffer into the same address space (peer-DMA extension).
  // Returns the virtual base address chosen for it.
  uint64_t RegisterGpuBuffer(uint64_t bytes);

  // Ensures every page of [vaddr, vaddr+bytes) is resident in `target`,
  // migrating page contents as needed. `done` fires when the last migration
  // completes (immediately if everything is already resident).
  void EnsureResident(uint64_t vaddr, uint64_t bytes, MemKind target, std::function<void()> done);

  // Functional access through the virtual address space: reads/writes land
  // in whichever store currently holds each page.
  void ReadVirtual(uint64_t vaddr, void* dst, uint64_t len) const;
  void WriteVirtual(uint64_t vaddr, const void* src, uint64_t len);

  uint64_t migrations() const { return migrations_; }
  uint64_t migrated_bytes() const { return migrated_bytes_; }

  // --- Dirty-page tracking (checkpoint manifests) ----------------------------
  // Every WriteVirtual stamps the pages it touches with a monotone dirty
  // clock. A checkpointer records dirty_clock() at capture time and asks for
  // the pages stamped since its previous capture — an incremental manifest.
  // since=0 returns every page ever written (the full first checkpoint).
  uint64_t dirty_clock() const { return dirty_clock_; }

  // Virtual page numbers in [vaddr, vaddr+bytes) written after `since`,
  // ascending. Pages never written are absent: their content is still the
  // store's initial (zero) state, which a restore target reproduces for free.
  std::vector<uint64_t> DirtyPagesIn(uint64_t vaddr, uint64_t bytes, uint64_t since) const;

 private:
  memsys::SparseMemory& StoreFor(MemKind kind) const;
  void MigratePage(uint64_t vpage, MemKind target, std::function<void()> done);

  sim::Engine* engine_;
  memsys::HostMemory* host_;
  memsys::CardMemory* card_;
  memsys::GpuMemory* gpu_;
  PageTable page_table_;
  MigrationHooks hooks_;

  uint64_t next_gpu_vaddr_ = 1ull << 44;  // distinct VA window for GPU buffers
  uint64_t migrations_ = 0;
  uint64_t migrated_bytes_ = 0;

  // vpage -> dirty-clock stamp of its most recent write. Ordered so
  // DirtyPagesIn iterates deterministically.
  sim::AccessGuard dirty_guard_{"mmu.svm_dirty"};
  std::map<uint64_t, uint64_t> dirty_gen_;
  uint64_t dirty_clock_ = 0;
};

}  // namespace mmu
}  // namespace coyote

#endif  // SRC_MMU_SVM_H_
