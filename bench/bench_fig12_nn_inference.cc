// Figure 12: neural network inference — hls4ml CoyoteAccelerator backend vs
// the PYNQ/Vitis baseline.
//
// The same quantized intrusion-detection MLP is compiled once and deployed
// through both integration paths. The Coyote path streams input batches
// directly from host memory through the vFPGA; the PYNQ path stages every
// batch through card memory and pays the Python runtime overhead. The paper
// measures an order-of-magnitude throughput advantage at comparable
// resource utilization.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/hlscompat/hls_model.h"
#include "src/hlscompat/overlay.h"
#include "src/runtime/device.h"
#include "src/services/nn.h"
#include "src/sim/rng.h"

namespace coyote {
namespace {

runtime::SimDevice::Config DeviceConfig() {
  runtime::SimDevice::Config cfg;
  cfg.shell.name = "nn";
  cfg.shell.services = {fabric::Service::kHostStream, fabric::Service::kCardMemory};
  cfg.shell.num_vfpgas = 1;
  return cfg;
}

void Run() {
  bench::PrintHeader("Neural network inference: CoyoteAccelerator vs PYNQ/Vitis",
                     "Coyote v2 paper, Figure 12");

  const services::MlpSpec spec = services::MakeIntrusionDetectionMlp();
  constexpr size_t kSamples = 16384;
  std::vector<int8_t> inputs(kSamples * spec.input_dim());
  sim::Rng rng(3);
  for (auto& x : inputs) {
    x = static_cast<int8_t>(static_cast<int64_t>(rng.NextBounded(255)) - 127);
  }

  // Build both backends (synthesis-time + resource report).
  const fabric::Floorplan floorplan = fabric::Floorplan::ForPart(fabric::kAlveoU55C, 1);
  hlscompat::HlsModel coyote_model(spec, hlscompat::Backend::kCoyoteAccelerator);
  hlscompat::HlsModel pynq_model(spec, hlscompat::Backend::kPynqVitis);
  const hlscompat::CompiledModel coyote_built = coyote_model.Build(floorplan);
  const hlscompat::CompiledModel pynq_built = pynq_model.Build(floorplan);

  // Bit-accurate software emulation is the reference output.
  const std::vector<int8_t> reference = coyote_model.PredictEmulated(inputs, kSamples);

  bench::Row("Throughput (samples/s), batch-size sweep, %zu samples", kSamples);
  bench::Row("%-12s %20s %20s %10s", "Batch", "Coyote v2 [smp/s]", "PYNQ/Vitis [smp/s]",
             "Speedup");
  bench::PrintRule();
  for (size_t batch : {64ull, 256ull, 1024ull, 4096ull}) {
    runtime::SimDevice dev_c(DeviceConfig());
    hlscompat::CoyoteOverlay overlay(&dev_c, coyote_built);
    overlay.ProgramFpga();
    const auto rc = overlay.Predict(inputs, kSamples, batch);

    runtime::SimDevice dev_p(DeviceConfig());
    hlscompat::PynqBaseline baseline(&dev_p, pynq_built);
    baseline.ProgramFpga();
    const auto rp = baseline.Predict(inputs, kSamples, batch);

    const bool c_ok = rc.outputs == reference;
    const bool p_ok = rp.outputs == reference;
    bench::Row("%-12zu %20.0f %20.0f %9.1fx%s", batch, rc.samples_per_second,
               rp.samples_per_second, rc.samples_per_second / rp.samples_per_second,
               (c_ok && p_ok) ? "" : "  [OUTPUT MISMATCH]");
  }
  bench::PrintRule();
  bench::Note("Shape check: order-of-magnitude speedup for the Coyote backend (paper: ~10x),");
  bench::Note("shrinking as batches grow and Python overhead amortizes. Outputs verified");
  bench::Note("bit-exact against hls4ml software emulation on both paths.");

  bench::Row("");
  bench::Row("Resource utilization (%% of U55C LUTs / DSPs) and build time");
  bench::Row("%-18s %12s %12s %16s", "Backend", "LUT util", "DSP util", "build [min]");
  bench::PrintRule();
  const fabric::ResourceVector total = fabric::kAlveoU55C.total;
  for (const auto* m : {&coyote_built, &pynq_built}) {
    const fabric::ResourceVector r = m->total_resources();
    bench::Row("%-18s %11.1f%% %11.1f%% %16.1f",
               std::string(hlscompat::BackendName(m->backend)).c_str(),
               100.0 * r.LutUtilization(total),
               100.0 * (total.dsp ? static_cast<double>(r.dsp) / static_cast<double>(total.dsp) : 0.0),
               m->build_seconds / 60.0);
  }
  bench::PrintRule();
  bench::Note("Shape check: comparable utilization across backends (paper: approximately");
  bench::Note("equal), Coyote build faster via the linked app flow.");
}

}  // namespace
}  // namespace coyote

int main() {
  coyote::Run();
  return 0;
}
