# Empty dependencies file for bench_fig7a_hbm_scaling.
# This may be replaced when dependencies are built.
