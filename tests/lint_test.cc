// Tests for the coyote-verify determinism lint (tools/coyote_lint).
//
// Two layers: fixture files on disk (tests/lint_fixtures/, excluded from the
// repo-wide walk) prove each rule fires on realistic bad code and that the
// per-rule suppression comments silence it; in-memory sources pin down the
// trickier tokenizer behaviors (comments, strings, member access, the
// project-wide unordered-name symbol table).

#include "tools/coyote_lint/lint.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace coyote {
namespace lint {
namespace {

#ifndef LINT_FIXTURE_DIR
#error "LINT_FIXTURE_DIR must be defined by the build"
#endif

std::vector<Finding> LintFixture(const std::string& name) {
  return LintPaths(LINT_FIXTURE_DIR, {name}, Options{});
}

bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&rule](const Finding& f) { return f.rule == rule; });
}

bool HasRuleAtLine(const std::vector<Finding>& findings, const std::string& rule,
                   uint32_t line) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.rule == rule && f.line == line;
  });
}

std::vector<Finding> LintSnippet(const std::string& path, const std::string& content) {
  return LintProject({{path, content}}, Options{});
}

TEST(LintFixtures, NondetRuleFiresOnEveryBannedForm) {
  const auto findings = LintFixture("bad_nondet.cc");
  EXPECT_TRUE(HasRuleAtLine(findings, "nondet", 4));   // #include <random>
  EXPECT_TRUE(HasRuleAtLine(findings, "nondet", 7));   // std::random_device
  EXPECT_TRUE(HasRuleAtLine(findings, "nondet", 8));   // std::mt19937
  EXPECT_TRUE(HasRuleAtLine(findings, "nondet", 13));  // srand
  EXPECT_TRUE(HasRuleAtLine(findings, "nondet", 14));  // rand
  EXPECT_TRUE(HasRuleAtLine(findings, "nondet", 18));  // time(nullptr)
  EXPECT_TRUE(HasRuleAtLine(findings, "nondet", 22));  // getenv
  for (const auto& f : findings) {
    EXPECT_EQ(f.rule, "nondet") << f.file << ":" << f.line << " " << f.message;
  }
}

TEST(LintFixtures, UnorderedIterRuleFiresOnRangeForAndBegin) {
  const auto findings = LintFixture("bad_unordered.cc");
  EXPECT_TRUE(HasRuleAtLine(findings, "unordered-iter", 10));  // range-for
  EXPECT_TRUE(HasRuleAtLine(findings, "unordered-iter", 18));  // members.begin()
}

TEST(LintFixtures, UnorderedIterRuleFiresOnTemporaries) {
  const auto findings = LintFixture("bad_unordered_temp.cc");
  EXPECT_TRUE(HasRuleAtLine(findings, "unordered-iter", 12));  // MakeUnorderedSet()
  EXPECT_TRUE(HasRuleAtLine(findings, "unordered-iter", 20));  // BorrowUnorderedSet() (by-ref)
  EXPECT_TRUE(HasRuleAtLine(findings, "unordered-iter", 28));  // inline unordered_set{...}
}

TEST(LintFixtures, SuppressionAboveMultiLineStatementIsHonored) {
  // The flagged tokens sit on continuation lines; the comment above the
  // statement's first line must still cover them.
  EXPECT_TRUE(LintFixture("suppressed_multiline.cc").empty());
}

TEST(LintFixtures, WallClockRuleFiresInSimulatorSources) {
  const auto findings = LintFixture("src/bad_wall_clock.cc");
  EXPECT_TRUE(HasRuleAtLine(findings, "wall-clock", 8));   // steady_clock::now()
  EXPECT_TRUE(HasRuleAtLine(findings, "wall-clock", 13));  // system_clock::now()
  EXPECT_TRUE(HasRuleAtLine(findings, "wall-clock", 17));  // sleep_for
}

TEST(LintFixtures, WallClockRuleIgnoresNonSrcPaths) {
  // Identical content outside src/: bench/tests own their wall-clock policy.
  const auto findings =
      LintSnippet("bench/timing.cc", "long Now() {\n"
                                     "  return std::chrono::steady_clock::now()\n"
                                     "      .time_since_epoch().count();\n"
                                     "}\n");
  EXPECT_FALSE(HasRule(findings, "wall-clock"));
}

TEST(LintFixtures, HostBoundaryAnnotationDisablesWallClock) {
  EXPECT_FALSE(HasRule(LintFixture("src/host_boundary_ok.cc"), "wall-clock"));
}

TEST(LintFixtures, RawAllocRuleFiresOnNewAndDelete) {
  const auto findings = LintFixture("bad_alloc.cc");
  EXPECT_TRUE(HasRuleAtLine(findings, "raw-alloc", 3));  // new
  EXPECT_TRUE(HasRuleAtLine(findings, "raw-alloc", 8));  // delete
}

TEST(LintFixtures, BlockingRuleFiresOnSleepSystemAndThreadInclude) {
  const auto findings = LintFixture("bad_blocking.cc");
  EXPECT_TRUE(HasRuleAtLine(findings, "blocking", 2));  // #include <thread>
  EXPECT_TRUE(HasRuleAtLine(findings, "blocking", 5));  // sleep_for
  EXPECT_TRUE(HasRuleAtLine(findings, "blocking", 9));  // system
}

TEST(LintFixtures, HeaderRulesFireOnBadHeader) {
  const auto findings = LintFixture("bad_header.h");
  EXPECT_TRUE(HasRule(findings, "header-guard"));    // non-canonical guard name
  EXPECT_TRUE(HasRule(findings, "using-ns-header"));  // using namespace std
}

TEST(LintFixtures, HeaderGuardRuleFiresOnMissingGuard) {
  const auto findings = LintFixture("bad_header_missing.h");
  EXPECT_TRUE(HasRule(findings, "header-guard"));
}

TEST(LintFixtures, SuppressionCommentsSilenceEveryRule) {
  EXPECT_TRUE(LintFixture("suppressed_ok.cc").empty());
}

TEST(LintFixtures, CleanCodeProducesNoFindings) {
  EXPECT_TRUE(LintFixture("clean.cc").empty());
}

TEST(LintFixtures, RuleFilterRunsOnlySelectedRules) {
  Options only_alloc;
  only_alloc.rules = {"raw-alloc"};
  const auto findings = LintPaths(LINT_FIXTURE_DIR, {"bad_nondet.cc", "bad_alloc.cc"},
                                  only_alloc);
  EXPECT_FALSE(findings.empty());
  for (const auto& f : findings) {
    EXPECT_EQ(f.rule, "raw-alloc");
  }
}

// --- Tokenizer behaviors -----------------------------------------------------

TEST(LintTokenizer, CommentsAndStringsAreNotCode) {
  const auto findings = LintSnippet("t.cc",
                                    "// rand() in a comment\n"
                                    "/* srand(1); time(nullptr); */\n"
                                    "const char* s = \"rand() getenv\";\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintTokenizer, MemberAccessIsNotACall) {
  // Engine events carry a `.time` field; member access must not trip the
  // wall-clock ban, and a declaration `Type rand(` is not a call either.
  const auto findings = LintSnippet("t.cc",
                                    "struct Ev { long time; };\n"
                                    "long F(Ev e) { return e.time; }\n"
                                    "long G(Ev* e) { return e->time; }\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintTokenizer, StdQualifiedCallIsStillACall) {
  const auto findings = LintSnippet("t.cc", "long F() { return std::time(nullptr); }\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "nondet");
}

TEST(LintTokenizer, DeletedFunctionsAreNotRawDelete) {
  const auto findings = LintSnippet("t.h",
                                    "#ifndef T_H_\n#define T_H_\n"
                                    "struct S {\n"
                                    "  S(const S&) = delete;\n"
                                    "  S& operator=(const S&) = delete;\n"
                                    "};\n"
                                    "#endif  // T_H_\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintSymbols, UnorderedNamesAreCollectedAcrossFiles) {
  // Declaration in one file (a header), iteration in another: the symbol
  // table is project-wide, mirroring member declarations in .h files used by
  // the .cc that iterates them.
  const std::vector<SourceFile> files = {
      {"s.h",
       "#ifndef S_H_\n#define S_H_\n#include <unordered_map>\n"
       "struct S { std::unordered_map<int, int> lookup_; };\n"
       "#endif  // S_H_\n"},
      {"s.cc",
       "#include \"s.h\"\n"
       "int Sum(S& s) { int n = 0; for (auto& [k, v] : s.lookup_) n += v; return n; }\n"}};
  const auto findings = LintProject(files, Options{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-iter");
  EXPECT_EQ(findings[0].file, "s.cc");
}

TEST(LintSymbols, OrderedMapIterationIsFine) {
  const auto findings = LintSnippet(
      "t.cc",
      "#include <map>\nint F() { std::map<int, int> m; int n = 0;\n"
      "for (auto& [k, v] : m) n += v; return n; }\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintFixtures, HotCopyRuleFiresOnByValuePayloadParams) {
  const auto findings = LintFixture("src/net/bad_hotcopy.cc");
  EXPECT_TRUE(HasRuleAtLine(findings, "hot-copy", 9));   // StreamPacket by value
  EXPECT_TRUE(HasRuleAtLine(findings, "hot-copy", 10));  // vector<uint8_t> by value
  EXPECT_TRUE(HasRuleAtLine(findings, "hot-copy", 11));  // const-value still copies
  // Everything else in the fixture — refs, moves, pointers, return types,
  // members, locals, constructor calls, the suppressed sink — is clean.
  for (const auto& f : findings) {
    EXPECT_EQ(f.rule, "hot-copy") << f.file << ":" << f.line;
    EXPECT_LE(f.line, 11u) << f.file << ":" << f.line << " " << f.message;
  }
  EXPECT_EQ(findings.size(), 3u);
}

TEST(LintRules, HotCopyOnlyAppliesToHotPathDirectories) {
  // The same by-value signature outside src/{axi,dyn,net,memsys} is not the
  // lint's business: cold paths may copy for clarity.
  const std::string source =
      "struct StreamPacket { int x; };\n"
      "void Deliver(StreamPacket pkt);\n";
  EXPECT_TRUE(LintSnippet("src/runtime/cold.cc", source).empty());
  EXPECT_TRUE(LintSnippet("tests/some_test.cc", source).empty());
  EXPECT_EQ(LintSnippet("src/net/hot.cc", source).size(), 1u);
  EXPECT_EQ(LintSnippet("src/memsys/hot.cc", source).size(), 1u);
}

TEST(LintRules, RuleTableExposesSuppressionsForEveryRule) {
  const auto& rules = Rules();
  ASSERT_GE(rules.size(), 6u);
  for (const auto& rule : rules) {
    EXPECT_FALSE(rule.id.empty());
    EXPECT_FALSE(rule.suppression.empty()) << rule.id;
    EXPECT_FALSE(rule.summary.empty()) << rule.id;
  }
}

TEST(LintWalk, CollectSkipsFixtureAndBuildDirectories) {
  // Walking the real tests/ directory must not pick up lint_fixtures/.
  const auto files = CollectFiles(PROJECT_SOURCE_DIR, {"tests"});
  EXPECT_FALSE(files.empty());
  for (const auto& f : files) {
    EXPECT_EQ(f.find("lint_fixtures"), std::string::npos) << f;
    EXPECT_EQ(f.find("CMakeFiles"), std::string::npos) << f;
  }
}

TEST(LintRepo, WholeTreeIsClean) {
  // The acceptance gate, in-process: src/, tests/, bench/, examples/ and the
  // lint tool itself produce zero findings.
  const auto files = CollectFiles(PROJECT_SOURCE_DIR,
                                  {"src", "tests", "bench", "examples", "tools"});
  ASSERT_GT(files.size(), 100u);
  const auto findings = LintPaths(PROJECT_SOURCE_DIR, files, Options{});
  for (const auto& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message;
  }
}

}  // namespace
}  // namespace lint
}  // namespace coyote
