// Bandwidth-shared link.
//
// Models a serial resource of fixed bandwidth (a PCIe/XDMA direction, an HBM
// pseudo-channel, a 100G CMAC, an ICAP port...) that services packets from
// multiple sources with round-robin interleaving — the arbitration policy the
// Coyote v2 dynamic layer uses for multi-tenant fair sharing (paper §6.3).
//
// Each Submit() enqueues one packet for a source. The link transmits a single
// packet at a time; when it finishes, the completion callback fires and the
// next source in round-robin order is served. Per-packet fixed overhead models
// descriptor/header cost and is the knob behind the packet-size ablation.

#ifndef SRC_SIM_LINK_H_
#define SRC_SIM_LINK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/callback.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace coyote {
namespace sim {

class Link {
 public:
  using Callback = InlineCallback;

  struct Config {
    uint64_t bytes_per_second = 0;
    TimePs per_packet_overhead = 0;  // fixed cost occupying the link per packet
    // Pipelined delivery latency: completions fire this long after the last
    // byte leaves the link, without holding the link (PCIe round trip,
    // controller latency). Does not affect throughput.
    TimePs delivery_latency = 0;
    std::string name = "link";
  };

  Link(Engine* engine, const Config& config);

  // Enqueues one packet of `bytes` from `source_id`. `on_done` fires when the
  // last byte has left the link. Sources are serviced round-robin; packets
  // from the same source stay FIFO.
  void Submit(uint32_t source_id, uint64_t bytes, Callback on_done);

  // Fault injection: called once per packet as it starts transmitting; the
  // returned duration is added to the packet's link occupancy (an XDMA stall,
  // a controller hiccup). Cleared by passing an empty function.
  using FaultHook = std::function<TimePs(uint64_t bytes)>;
  void SetFaultHook(FaultHook hook) { fault_hook_ = std::move(hook); }

  // --- Introspection / statistics -------------------------------------------
  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t total_packets() const { return total_packets_; }
  TimePs busy_time() const { return busy_time_; }
  uint64_t bytes_for_source(uint32_t source_id) const;
  uint64_t queued_packets() const { return queued_packets_; }
  uint64_t stalled_packets() const { return stalled_packets_; }
  TimePs stall_time() const { return stall_time_; }
  const Config& config() const { return config_; }

  // Effective bandwidth observed since construction (bytes actually moved over
  // wall simulated time).
  double ObservedBandwidthBps() const;

  void ResetStats();

 private:
  struct Packet {
    uint64_t bytes;
    Callback on_done;
  };

  void StartNext();
  void OnTransmitDone();
  bool PickNextSource(uint32_t* out);

  Engine* engine_;
  Config config_;

  // Source queues in registration order; round-robin pointer walks this list.
  std::vector<uint32_t> source_order_;
  std::unordered_map<uint32_t, std::deque<Packet>> queues_;
  size_t rr_index_ = 0;
  bool busy_ = false;
  uint64_t queued_packets_ = 0;
  // Completion of the single packet occupying the link. Held here (not in the
  // engine lambda) so the scheduled event captures only `this` and stays
  // within InlineCallback's inline budget.
  Callback inflight_done_;

  FaultHook fault_hook_;
  uint64_t total_bytes_ = 0;
  uint64_t total_packets_ = 0;
  uint64_t stalled_packets_ = 0;
  TimePs stall_time_ = 0;
  TimePs busy_time_ = 0;
  TimePs stats_epoch_ = 0;
  std::unordered_map<uint32_t, uint64_t> per_source_bytes_;
};

}  // namespace sim
}  // namespace coyote

#endif  // SRC_SIM_LINK_H_
