// Serving envelope: the one typed request shape that crosses every layer of
// the serving fabric (LoadGen -> Router -> node scheduler -> vFPGA) and the
// matching typed completion travelling back.
//
// Before this existed every test and harness hand-rolled the same sequence —
// GetMem, WriteBuffer, SgEntry, Invoke, ReadBuffer — with slightly different
// conventions for sizes and error handling. The envelope names the contract
// once: a request is (tenant, kernel, payload view, deadline, priority), an
// execution is "stage the payload, run the kernel, read the response", and a
// completion carries the typed OpStatus plus the per-hop timestamps the
// latency accounting needs. The payload rides as an axi::BufferView so a
// request forwarded router -> node is a refcount bump, not a copy.

#ifndef SRC_RUNTIME_SERVING_H_
#define SRC_RUNTIME_SERVING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/axi/buffer.h"
#include "src/runtime/cthread.h"
#include "src/sim/time.h"

namespace coyote {
namespace runtime {
namespace serving {

inline constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ull;

inline void FoldBytes(uint64_t* h, const uint8_t* data, size_t len) {
  for (size_t i = 0; i < len; ++i) {
    *h ^= data[i];
    *h *= kFnvPrime;
  }
}

inline uint64_t HashBytes(const uint8_t* data, size_t len) {
  uint64_t h = kFnvOffset;
  FoldBytes(&h, data, len);
  return h;
}

// The request envelope. `id` is stamped by whoever owns the request's
// lifecycle (the Router in a fabric run, the test in a direct call);
// `submitted_at` is stamped at admission so every later hop can account
// latency against one origin.
struct ServingRequest {
  uint64_t id = 0;
  uint32_t tenant = 0;
  std::string kernel;         // kernel the request must run on
  axi::BufferView payload;    // zero-copy input view
  uint64_t response_bytes = 0;  // bytes read back; 0 = payload size
  sim::TimePs deadline = 0;     // absolute simulated deadline; 0 = none
  uint32_t priority = 0;        // larger = more urgent
  // Placement hint stamped by the routing tier (the region on the chosen
  // node whose resident kernel matches); -1 leaves placement to the node.
  int32_t region_hint = -1;
  sim::TimePs submitted_at = 0;
  uint32_t retries = 0;  // bumped when the router re-routes after a node death
};

// The typed completion. Exactly one per request, whatever happened to it —
// admission shed, routing failure, quarantine abort, deadline, or success.
struct ServingCompletion {
  uint64_t id = 0;
  uint32_t tenant = 0;
  OpStatus status = OpStatus::kPending;
  uint32_t node = 0;
  int32_t region = -1;
  sim::TimePs submitted_at = 0;
  sim::TimePs completed_at = 0;
  // FNV-1a over the response bytes; zero for requests that never executed.
  // With an echo-style kernel this equals the payload hash, making every
  // completion an end-to-end data-integrity witness.
  uint64_t response_hash = 0;
};

inline uint64_t ResponseBytes(const ServingRequest& req) {
  return req.response_bytes != 0 ? req.response_bytes : req.payload.size();
}

// Stages the payload into `src_vaddr` and invokes the kernel op. Async: the
// terminal status arrives through the CThread's completion callback — the
// shard-safe path the fabric's node executors use.
inline CThread::Task StageAndInvoke(CThread* t, uint64_t src_vaddr, uint64_t dst_vaddr,
                                    const ServingRequest& req) {
  t->WriteBuffer(src_vaddr, req.payload.data(), req.payload.size());
  SgEntry sg;
  sg.local = {.src_addr = src_vaddr,
              .src_len = req.payload.size(),
              .dst_addr = dst_vaddr,
              .dst_len = ResponseBytes(req)};
  return t->Invoke(Oper::kLocalTransfer, sg);
}

// Reads the response back and hashes it (the completion's integrity witness).
inline uint64_t HashResponse(CThread* t, uint64_t dst_vaddr, uint64_t len) {
  std::vector<uint8_t> out(len);
  t->ReadBuffer(dst_vaddr, out.data(), len);
  return HashBytes(out.data(), out.size());
}

// Synchronous one-shot execution on an existing cThread: allocates transfer
// buffers, stages, waits (nests an engine run, like InvokeSync — host-side
// only, never inside a shard callback) and reads the response back. This is
// the single invocation path the tests use in place of the former ad-hoc
// GetMem/WriteBuffer/SgEntry/InvokeSync/ReadBuffer blocks.
inline ServingCompletion ExecuteSync(CThread* t, const ServingRequest& req,
                                     std::vector<uint8_t>* response = nullptr) {
  ServingCompletion done;
  done.id = req.id;
  done.tenant = req.tenant;
  done.submitted_at = req.submitted_at;
  done.node = 0;
  done.region = static_cast<int32_t>(t->vfpga_id());

  const uint64_t resp_len = ResponseBytes(req);
  const uint64_t src = t->GetMem({Alloc::kHpf, req.payload.size()});
  const uint64_t dst = t->GetMem({Alloc::kHpf, resp_len});
  const CThread::Task task = StageAndInvoke(t, src, dst, req);
  t->Wait(task);
  done.status = t->Status(task);
  done.completed_at = t->device().engine().Now();
  if (done.status == OpStatus::kOk) {
    std::vector<uint8_t> out(resp_len);
    t->ReadBuffer(dst, out.data(), out.size());
    done.response_hash = HashBytes(out.data(), out.size());
    if (response != nullptr) {
      *response = std::move(out);
    }
  }
  t->FreeMem(src);
  t->FreeMem(dst);
  return done;
}

}  // namespace serving
}  // namespace runtime
}  // namespace coyote

#endif  // SRC_RUNTIME_SERVING_H_
