// Discrete-event simulation engine.
//
// The engine owns a timestamped callback queue. All hardware models in the
// substrate (links, memory channels, reconfiguration ports, network switches,
// kernels) schedule their state transitions here. The engine is strictly
// single-threaded: determinism is a design requirement so that every
// benchmark in bench/ is exactly reproducible run-to-run. Multi-core
// simulation does not relax this — the sharded PDES coordinator
// (src/sim/sharded_engine.h) gives every shard its own Engine on its own
// worker thread and only ever drives one engine from one thread at a time.
//
// Implementation: a hierarchical calendar queue (timing wheel) instead of a
// global binary heap. Near-future events land in one of kNumBuckets
// fixed-width buckets; the bucket under the cursor is sorted once at
// adoption and drained with O(1) pops (`active_`), late arrivals into the
// open window go to a small incursion min-heap, and events beyond the
// wheel's horizon wait in an overflow heap that migrates into the wheel as
// simulated time advances. Because every structure orders events by the
// global (timestamp, sequence) pair, the execution order is IDENTICAL to the
// previous binary-heap engine: events fire in timestamp order with a stable
// FIFO tie-break among equal timestamps, so same-seed runs stay
// bit-identical across the engine swap. What changes is the constant factor:
// pushes are O(1) for in-horizon events, pops touch at most the two window
// tops instead of sifting the whole queue, and event callbacks are recycled
// through a pooled free list so steady-state scheduling never allocates
// (callback captures up to InlineCallback::kInlineBytes ride inline too).

#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/sim/callback.h"
#include "src/sim/time.h"

namespace coyote {
namespace sim {

class AccessLedger;

class Engine {
 public:
  using Callback = InlineCallback;

  // Arms the global AccessLedger in COYOTE_ACCESS_GUARDS builds (see
  // src/sim/access_guard.h).
  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Current simulated time.
  TimePs Now() const { return now_; }

  // Schedules `cb` at absolute time `t`. Events scheduled for a time in the
  // past fire at the current time. Events with equal timestamps fire in
  // insertion order (stable FIFO tie-break).
  void ScheduleAt(TimePs t, Callback cb) { ScheduleImpl(t < now_ ? now_ : t, std::move(cb)); }

  // Schedules `cb` after `delay` picoseconds.
  void ScheduleAfter(TimePs delay, Callback cb) { ScheduleImpl(now_ + delay, std::move(cb)); }

  // Runs the next pending event. Returns false if the queue is empty.
  bool Step();

  // Runs until no events remain. Returns the number of events executed.
  uint64_t RunUntilIdle();

  // Runs events with timestamp <= `deadline`; advances Now() to `deadline` if
  // the queue drains earlier. Returns the number of events executed.
  uint64_t RunUntil(TimePs deadline);

  // Runs until `done` returns true or the queue drains. Returns true if the
  // predicate was satisfied.
  bool RunUntilCondition(const std::function<bool()>& done);

  // Earliest pending timestamp without executing it; false when idle. The
  // sharded coordinator (src/sim/sharded_engine.h) uses this between windows
  // to compute the next conservative horizon across all shards.
  bool PeekNextTime(TimePs* t) {
    if (!PrepareNext()) {
      return false;
    }
    *t = NextTime();
    return true;
  }

  bool Idle() const { return num_pending_ == 0; }
  uint64_t events_executed() const { return events_executed_; }
  size_t pending_events() const { return num_pending_; }

  // Calendar geometry, exposed so tests can exercise bucket/day boundaries.
  static constexpr uint32_t kBucketWidthLog2 = 10;  // 1024 ps per bucket
  static constexpr uint32_t kNumBucketsLog2 = 12;   // 4096 buckets
  static constexpr TimePs kBucketWidthPs = TimePs{1} << kBucketWidthLog2;
  static constexpr uint32_t kNumBuckets = 1u << kNumBucketsLog2;
  // One full rotation of the wheel (~4.2 us of simulated time).
  static constexpr TimePs kDaySpanPs = kBucketWidthPs * kNumBuckets;

  // Allocation introspection for the perf bench: capacity of the callback
  // pool and how many slots currently sit on the free list.
  size_t event_pool_size() const { return pool_.size(); }
  size_t event_free_list_size() const { return free_nodes_.size(); }

 private:
  // Advances the race-detection epoch when a run loop hands control back to
  // its caller: code resuming after a nested run is program-ordered after the
  // last event, never logically concurrent with it.
  void CloseEpoch();

  // Ordering key + pool index. Entries carry their (time, seq) key so heap
  // comparisons and sorts touch only the contiguous entry array — never the
  // callback pool. That locality is worth ~2x on deep queues versus moving
  // full callback slots through the ordering structures. The sequence number
  // is stored truncated to 32 bits to keep the entry at 16 bytes: pending
  // events never span anywhere near 2^31 sequence numbers (the spread is
  // bounded by the pool size), so the wrap-safe difference compare below
  // reproduces the full-width FIFO order exactly.
  struct HeapEntry {
    TimePs time = 0;
    uint32_t seq = 0;  // tie-break: FIFO among equal timestamps (mod 2^32)
    uint32_t idx = 0;  // callback slot in pool_
  };
  static bool EntryAfter(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) {
      return a.time > b.time;
    }
    return static_cast<int32_t>(a.seq - b.seq) > 0;
  }

  // End of the time window currently drained through active_.
  TimePs ActiveEnd() const { return (cur_bucket_ + 1) << kBucketWidthLog2; }

  // Takes the callback by rvalue reference so the capture bytes move exactly
  // once, from the caller's frame into the pool slot.
  void ScheduleImpl(TimePs t, Callback&& cb);
  uint32_t AllocNode(Callback&& cb);
  void Route(const HeapEntry& e);  // place an event into the window/wheel/overflow
  // Absolute bucket number of the next occupied wheel bucket after
  // cur_bucket_ (wrapping ring scan). Caller guarantees wheel_count_ > 0.
  uint64_t NextOccupiedBucket() const;
  // Ensures the current window (active_ or incursion_) holds the globally
  // earliest pending event. Returns false if no events are pending.
  bool PrepareNext();
  void MigrateOverflow();
  // True when the adopted bucket is fully drained.
  bool StackEmpty() const { return drain_pos_ == active_.size(); }
  // Earliest pending timestamp. Only valid after PrepareNext() == true.
  TimePs NextTime() const {
    if (incursion_.empty()) {
      return active_[drain_pos_].time;
    }
    if (StackEmpty() || EntryAfter(active_[drain_pos_], incursion_.front())) {
      return incursion_.front().time;
    }
    return active_[drain_pos_].time;
  }

  // (time, seq) min-heap primitives (hole-insertion sifts: one move per
  // level instead of a swap per level).
  static void SiftDown(std::vector<HeapEntry>* heap, size_t i);
  static void HeapPush(std::vector<HeapEntry>* heap, const HeapEntry& e);
  static HeapEntry HeapPop(std::vector<HeapEntry>* heap);

  TimePs now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  size_t num_pending_ = 0;
  // Cached at construction: the process-wide ledger outlives every engine,
  // and caching skips an out-of-line Global() call on the per-event path.
  AccessLedger* ledger_ = nullptr;

  // Callback pool with an index free list: slots are recycled LIFO, so the
  // slot written at schedule time is usually the one just vacated by the
  // firing event — cache-hot — and steady-state scheduling performs no
  // allocation once the pool has warmed up.
  std::vector<Callback> pool_;
  std::vector<uint32_t> free_nodes_;

  // Calendar wheel. cur_bucket_ is the absolute bucket number under the
  // cursor (monotonic; event time >> kBucketWidthLog2); ring slot i holds
  // absolute bucket b iff b % kNumBuckets == i. The wheel always covers one
  // full rotation AHEAD OF THE CURSOR — not a fixed day — so any event up to
  // kDaySpanPs in the future rides the wheel regardless of cursor phase.
  // Invariants:
  //  * every event with time < ActiveEnd() is in active_/incursion_;
  //  * wheel entries have absolute bucket in (cur_bucket_,
  //    cur_bucket_ + kNumBuckets]; inserting within one rotation of the
  //    cursor means a ring slot never mixes two absolute buckets by the
  //    time the cursor adopts it;
  //  * overflow_ events lie beyond that horizon, and PrepareNext migrates
  //    them in (earliest-bucket-first) before the cursor can pass them.
  uint64_t cur_bucket_ = 0;
  std::vector<std::vector<HeapEntry>> buckets_;
  // Occupancy bitmap over buckets_ (one bit per bucket, 512 B — L1-resident).
  // Advancing the cursor scans words with ctz instead of touching the 96 KB
  // array of scattered vector headers; with sparse buckets that scan is the
  // dominant per-event cost otherwise.
  std::array<uint64_t, kNumBuckets / 64> bucket_bits_{};
  size_t wheel_count_ = 0;
  // The cursor window drains from two structures. active_ is the adopted
  // bucket, sorted ascending once at adoption and consumed by advancing
  // drain_pos_ — a bucket is fully drained before the next is adopted, so a
  // heap's incremental ordering is wasted work there. incursion_ is a
  // min-heap for the rarer events scheduled *into* the open window after
  // adoption; each pop takes the min of the two tops, which preserves the
  // exact global (time, seq) order. All vectors retain their grown capacity
  // (adoption copies entries instead of swapping storage), so the wheel
  // stops allocating once every touched bucket has warmed up.
  std::vector<HeapEntry> active_;
  size_t drain_pos_ = 0;
  std::vector<HeapEntry> incursion_;
  std::vector<HeapEntry> overflow_;  // min-heap beyond the wheel horizon
};

}  // namespace sim
}  // namespace coyote

#endif  // SRC_SIM_ENGINE_H_
