# Empty compiler generated dependencies file for coyote_synth.
# This may be replaced when dependencies are built.
