// Determinism regression tests.
//
// The simulator is single-threaded by design so every run is exactly
// reproducible (a property the benchmarks and the chaos tests both lean on).
// These tests pin that property down: the same seed must yield the same
// event count, the same final simulated time, the same payload bytes and the
// same stack statistics — with and without fault injection.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "src/memsys/card_memory.h"
#include "src/memsys/gpu_memory.h"
#include "src/memsys/host_memory.h"
#include "src/mmu/svm.h"
#include "src/net/network.h"
#include "src/net/roce.h"
#include "src/sim/engine.h"
#include "src/sim/fault.h"
#include "src/sim/rng.h"

namespace coyote {
namespace net {
namespace {

constexpr uint64_t kPage = 2ull << 20;
constexpr uint64_t kBufBytes = 8ull << 20;
constexpr uint32_t kIpA = 0x0A000001;
constexpr uint32_t kIpB = 0x0A000002;

// Everything observable about one run.
struct RunRecord {
  uint64_t events = 0;
  sim::TimePs final_time = 0;
  std::vector<uint8_t> payload_at_b;
  std::vector<uint8_t> echo_at_a;
  uint64_t tx_frames_a = 0;
  uint64_t rx_frames_a = 0;
  uint64_t retransmits_a = 0;
  uint64_t timeouts_a = 0;
  sim::CounterSet fault_counters;
  uint64_t fault_fingerprint = 0;

  bool operator==(const RunRecord&) const = default;
};

// One node: host-backed SVM plus a RoCE stack.
struct Node {
  Node(sim::Engine* engine, Network* network, uint32_t ip)
      : card(engine, memsys::CardMemory::Config{}),
        svm(engine, &host, &card, &gpu, kPage),
        stack(engine, network, ip, &svm) {
    buf = host.Allocate(kBufBytes, memsys::AllocKind::kHuge2M);
    svm.RegisterHostBuffer(buf, kBufBytes);
  }

  memsys::HostMemory host;
  memsys::CardMemory card;
  memsys::GpuMemory gpu;
  mmu::Svm svm;
  RoceStack stack;
  uint64_t buf = 0;
};

// RDMA ping-pong: A writes `bytes` to B, B echoes them back, `iters` times.
// The whole cluster — engine, network, stacks, payload, fault plan — is
// rebuilt from `seed` alone.
RunRecord RunPingpong(uint64_t seed, int iters, uint64_t bytes, bool with_faults) {
  sim::Engine engine;
  Network network(&engine, {});
  Node a(&engine, &network, kIpA);
  Node b(&engine, &network, kIpB);

  std::unique_ptr<sim::FaultInjector> injector;
  if (with_faults) {
    sim::FaultPlan plan;
    plan.seed = seed;
    plan.frame_drop_rate = 0.01;
    plan.frame_corrupt_rate = 0.001;
    injector = std::make_unique<sim::FaultInjector>(&engine, plan);
    network.SetFaultInjector(injector.get());
  }

  const uint32_t qp_a = a.stack.CreateQp();
  const uint32_t qp_b = b.stack.CreateQp();
  a.stack.Connect(qp_a, kIpB, qp_b);
  b.stack.Connect(qp_b, kIpA, qp_a);

  std::vector<uint8_t> payload(bytes);
  sim::Rng rng(seed);
  rng.FillBytes(payload.data(), payload.size());
  a.svm.WriteVirtual(a.buf, payload.data(), payload.size());

  b.stack.SetWriteArrivalHandler(qp_b, [&](uint64_t, uint64_t got) {
    b.stack.PostWrite(qp_b, b.buf, a.buf, got, nullptr);
  });
  for (int i = 0; i < iters; ++i) {
    bool pong = false;
    a.stack.SetWriteArrivalHandler(qp_a, [&](uint64_t, uint64_t) { pong = true; });
    a.stack.PostWrite(qp_a, a.buf, b.buf, bytes, nullptr);
    EXPECT_TRUE(engine.RunUntilCondition([&] { return pong; }));
  }
  engine.RunUntilIdle();  // drain trailing ACKs/timers so Now() is the true end

  RunRecord rec;
  rec.events = engine.events_executed();
  rec.final_time = engine.Now();
  rec.payload_at_b.resize(bytes);
  b.svm.ReadVirtual(b.buf, rec.payload_at_b.data(), bytes);
  rec.echo_at_a.resize(bytes);
  a.svm.ReadVirtual(a.buf, rec.echo_at_a.data(), bytes);
  rec.tx_frames_a = a.stack.tx_frames();
  rec.rx_frames_a = a.stack.rx_frames();
  rec.retransmits_a = a.stack.retransmitted_frames();
  rec.timeouts_a = a.stack.timeouts();
  if (injector) {
    rec.fault_counters = injector->counters();
    rec.fault_fingerprint = injector->ScheduleFingerprint();
  }
  return rec;
}

TEST(DeterminismTest, PingpongSameSeedSameRun) {
  const RunRecord first = RunPingpong(2025, 50, 64, /*with_faults=*/false);
  const RunRecord second = RunPingpong(2025, 50, 64, /*with_faults=*/false);
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.final_time, second.final_time);
  EXPECT_EQ(first.payload_at_b, second.payload_at_b);
  EXPECT_EQ(first.echo_at_a, second.echo_at_a);
  EXPECT_TRUE(first == second);
  // Sanity: the run actually did something.
  EXPECT_GT(first.events, 0u);
  EXPECT_GT(first.tx_frames_a, 0u);
  EXPECT_EQ(first.payload_at_b, first.echo_at_a);  // echo really round-tripped
}

TEST(DeterminismTest, PingpongSameSeedSameRunUnderFaults) {
  const RunRecord first = RunPingpong(77, 25, 4096, /*with_faults=*/true);
  const RunRecord second = RunPingpong(77, 25, 4096, /*with_faults=*/true);
  EXPECT_TRUE(first == second);
  EXPECT_EQ(first.fault_fingerprint, second.fault_fingerprint);
  EXPECT_TRUE(first.fault_counters == second.fault_counters);
  // The fault plan must have actually perturbed the run.
  EXPECT_GT(first.fault_counters.total(), 0u);
  // ...and the payload still arrived intact.
  std::vector<uint8_t> expect(4096);
  sim::Rng rng(77);
  rng.FillBytes(expect.data(), expect.size());
  EXPECT_EQ(first.payload_at_b, expect);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  // Large enough that the 1% plan certainly fires faults in both runs (the
  // fingerprint only folds actual fault events).
  const RunRecord a = RunPingpong(1, 10, 256 << 10, /*with_faults=*/true);
  const RunRecord b = RunPingpong(2, 10, 256 << 10, /*with_faults=*/true);
  // Different seeds produce different payloads and fault schedules...
  EXPECT_NE(a.payload_at_b, b.payload_at_b);
  EXPECT_NE(a.fault_fingerprint, b.fault_fingerprint);
  // ...but each run still delivers its own payload correctly.
  EXPECT_EQ(a.payload_at_b, a.echo_at_a);
  EXPECT_EQ(b.payload_at_b, b.echo_at_a);
}

TEST(DeterminismTest, LargerTransfersStayDeterministic) {
  // Multi-frame messages exercise segmentation, cumulative ACKs and (under
  // faults) go-back-N; the runs must still be bit-identical.
  const RunRecord first = RunPingpong(31337, 3, 1 << 20, /*with_faults=*/true);
  const RunRecord second = RunPingpong(31337, 3, 1 << 20, /*with_faults=*/true);
  EXPECT_TRUE(first == second);
  EXPECT_GT(first.retransmits_a + first.timeouts_a, 0u);
}

}  // namespace
}  // namespace net
}  // namespace coyote
