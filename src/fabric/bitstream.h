// Partial bitstream artifacts.
//
// The synthesis flows in src/synth emit these; the runtime's cRcnfg loads
// them. A shell bitstream reprograms the dynamic + application layers; an app
// bitstream reprograms a single vFPGA region and is only loadable on a shell
// whose ConfigId matches the one it was linked against (paper §4).

#ifndef SRC_FABRIC_BITSTREAM_H_
#define SRC_FABRIC_BITSTREAM_H_

#include <cstdint>
#include <string>

#include "src/fabric/floorplan.h"
#include "src/fabric/resources.h"
#include "src/fabric/shell_config.h"

namespace coyote {
namespace fabric {

struct PartialBitstream {
  std::string name;
  Layer target_layer = Layer::kApp;
  uint32_t region_index = 0;  // valid for app bitstreams
  uint64_t size_bytes = 0;

  // For a shell bitstream: the configuration it instantiates.
  // For an app bitstream: the configuration it was linked against.
  uint64_t shell_config_id = 0;
  ShellConfigDesc shell_config;  // populated for shell bitstreams

  // Resources the contained design occupies (reported utilization).
  ResourceVector occupied;

  bool IsShell() const { return target_layer == Layer::kDynamic; }
};

}  // namespace fabric
}  // namespace coyote

#endif  // SRC_FABRIC_BITSTREAM_H_
