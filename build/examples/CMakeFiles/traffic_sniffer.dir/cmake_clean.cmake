file(REMOVE_RECURSE
  "CMakeFiles/traffic_sniffer.dir/traffic_sniffer.cpp.o"
  "CMakeFiles/traffic_sniffer.dir/traffic_sniffer.cpp.o.d"
  "traffic_sniffer"
  "traffic_sniffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_sniffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
