// Cluster-scale admission / batching / routing tier for the serving fabric.
//
// The Router is the single front door for serving traffic (paper §9: one
// shell instance per node, many vFPGA apps behind it — something has to
// decide which node runs which request, and protect the nodes from overload).
// It runs on its own logical node of the sharded PDES fabric and owns the
// request lifecycle end to end: every ServingRequest submitted to it gets
// exactly one typed ServingCompletion, whatever happens in between.
//
// Pipeline, in order:
//   admission  — an integer token bucket over all tenants. Past saturation
//                the bucket empties and requests complete kShed immediately,
//                so offered load beyond capacity costs one completion record,
//                not a queue slot. Per-tenant queue caps bound memory.
//   fair queue — one FIFO per tenant, drained round-robin (quantum 1) by a
//                cursor over the tenant id space. A burst from one tenant
//                cannot starve the others.
//   batching   — per destination node, requests accumulate into an open
//                batch flushed when it reaches batch_max or when the oldest
//                entry has waited batch_timeout. One batch = one RPC frame.
//   routing    — among alive nodes with the kernel resident and room in
//                their outstanding window: least loaded, then lowest id.
//                The router stamps a region placement hint (lowest matching
//                region) that the node scheduler honors when eligible.
//   shedding   — no alive node has the kernel resident -> kShed (typed, the
//                reconfiguration-free contract); retries after a node death
//                are capped, then kShed.
//
// Failure handling: nodes heartbeat to the router; a periodic sweep declares
// a node dead after heartbeat_window of silence, evacuates its open batch
// and in-flight requests back into the tenant queues (retries capped), and
// routes them elsewhere. Completions that race the declaration are counted
// stale and dropped.
//
// Determinism: the router lives on one logical node, so every input —
// submissions, completions, heartbeats — arrives through the PDES merge
// order (time, order_key=source node). All policy state (bucket, cursors,
// windows) is integer. Fingerprint() folds every completion in delivery
// order; it is bit-identical across runs and shard placements.

#ifndef SRC_RUNTIME_ROUTER_H_
#define SRC_RUNTIME_ROUTER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/net/network.h"
#include "src/runtime/cthread.h"
#include "src/runtime/device.h"
#include "src/runtime/loadgen.h"
#include "src/runtime/placement.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/serving.h"
#include "src/sim/access_guard.h"
#include "src/sim/sharded_engine.h"
#include "src/sim/stats.h"
#include "src/sim/timer_wheel.h"

namespace coyote {
namespace runtime {

class Router {
 public:
  struct Config {
    uint32_t num_nodes = 1;
    // Admission token bucket: one token per request, one token minted every
    // admit_period picoseconds (integer refill), at most bucket_burst banked.
    // 0 disables admission control (nothing sheds at the front door).
    sim::TimePs admit_period = 0;
    uint64_t bucket_burst = 32;
    // Per-tenant queue cap; an admitted request finding its tenant queue
    // full completes kShed.
    uint64_t tenant_queue_cap = 256;
    // Batching: flush at batch_max requests or after batch_timeout from the
    // batch's first entry, whichever first. batch_timeout == 0 degenerates
    // to unbatched (every request flushes alone).
    uint32_t batch_max = 8;
    sim::TimePs batch_timeout = sim::Microseconds(5);
    // Max requests dispatched-but-incomplete per node (open batch included).
    uint32_t node_window = 16;
    // Re-routes after node deaths before the request sheds.
    uint32_t retry_max = 2;
    // A node silent for longer than this is declared dead by Sweep().
    sim::TimePs heartbeat_window = sim::Microseconds(400);
  };

  using BatchSink =
      std::function<void(uint32_t node, std::vector<serving::ServingRequest> batch)>;
  using CompletionObserver = std::function<void(const serving::ServingCompletion&)>;

  Router(sim::Engine* engine, const Config& config);

  // --- Host-side setup --------------------------------------------------------
  void BindShard(sim::ShardId shard) { guard_.BindShard(shard); }
  void SetBatchSink(BatchSink sink) { batch_sink_ = std::move(sink); }
  void SetCompletionObserver(CompletionObserver cb) { observer_ = std::move(cb); }
  // Declares which kernel is resident in each region of `node` (the routing
  // table and the source of placement hints).
  void SetNodeResident(uint32_t node, std::vector<std::string> region_kernels);

  // --- Shard-context entry points (router's shard only) -----------------------
  // Takes ownership of the request; stamps id + submitted_at.
  void Submit(serving::ServingRequest req);
  void OnCompletion(const serving::ServingCompletion& c);
  void OnHeartbeat(uint32_t node, uint64_t seq);
  // Periodic: declares nodes dead after heartbeat_window of silence.
  void Sweep();
  void MarkNodeDead(uint32_t node);

  // --- Observation ------------------------------------------------------------
  bool node_alive(uint32_t node) const { return nodes_[node].alive; }
  // No queued, batched, or in-flight requests anywhere.
  bool Settled() const;
  uint64_t completions() const { return completions_; }
  const sim::CounterSet& counters() const { return counters_; }
  // End-to-end latency (submit -> completion delivery) of kOk requests, us.
  sim::Samples& latency_us() { return latency_us_; }
  const sim::Histogram& depth_histogram() const { return depth_hist_; }
  const sim::Histogram& batch_histogram() const { return batch_hist_; }
  // Folds every completion in delivery order plus the counter table:
  // bit-identical across same-seed runs and shard placements.
  uint64_t Fingerprint() const;

 private:
  // RouteOf: >= 0 node id, kBackpressure (resident somewhere but all windows
  // full — wait), or kNoResident (shed: nothing alive has the kernel).
  static constexpr int32_t kBackpressure = -1;
  static constexpr int32_t kNoResident = -2;

  struct NodeView {
    bool alive = true;
    uint64_t outstanding = 0;  // flushed, completion not yet delivered
    std::vector<std::string> region_kernel;
    std::vector<serving::ServingRequest> open_batch;
    uint64_t batch_gen = 0;  // bumped per flush; cancels stale timeout timers
    sim::TimePs last_heartbeat = 0;
    uint64_t heartbeats = 0;
  };
  struct Inflight {
    uint32_t node = 0;
    serving::ServingRequest req;  // kept for evacuation + integrity check
  };

  void RefillBucket();
  void KickDispatch();
  void DispatchLoop();
  int32_t RouteOf(const serving::ServingRequest& req) const;
  int32_t RegionHintOn(uint32_t node, const std::string& kernel) const;
  void AppendToBatch(uint32_t node, serving::ServingRequest req);
  void FlushBatch(uint32_t node, const char* why);
  void Requeue(std::vector<serving::ServingRequest> orphans);
  serving::ServingCompletion LocalCompletion(const serving::ServingRequest& req,
                                             OpStatus status) const;
  void Complete(const serving::ServingCompletion& c);
  static const char* StatusKey(OpStatus status);

  sim::Engine* engine_;
  const Config config_;
  BatchSink batch_sink_;
  CompletionObserver observer_;
  sim::AccessGuard guard_{"runtime.router"};

  std::vector<NodeView> nodes_;
  std::map<uint32_t, std::deque<serving::ServingRequest>> tenant_queues_;
  uint64_t total_queued_ = 0;
  uint32_t rr_cursor_ = 0;  // last tenant served; next pass starts above it
  std::map<uint64_t, Inflight> inflight_;
  bool dispatch_pending_ = false;

  uint64_t last_id_ = 0;
  uint64_t tokens_ = 0;
  sim::TimePs bucket_refill_at_ = 0;

  uint64_t completions_ = 0;
  uint64_t fp_ = serving::kFnvOffset;
  sim::CounterSet counters_;
  sim::Samples latency_us_;
  sim::Histogram depth_hist_;  // total queued, sampled at each admission
  sim::Histogram batch_hist_;  // flushed batch sizes
};

// ---------------------------------------------------------------------------
// ServingFabric: N simulated nodes (SimDevice + KernelScheduler + per-region
// cThread executors) plus a Router and an open-loop LoadGen on logical node
// N, wired over rpc-framed messages with modeled wire delays, all on one
// sharded PDES engine. The serving analogue of Fleet: same placement rules,
// same lookahead, same merge-order discipline, so the whole fabric is
// bit-identical across 1/2/4/8-shard placements.
//
// Kernels are preloaded host-side (region r of node n holds
// kernel_names[(n + r) % K]) and the schedulers run require_resident: a
// reconfiguration — which nests an engine run — can never happen inside a
// shard callback. Reconfiguration storms are modeled as quarantine +
// region-reset after the reprogram latency; node kills stop heartbeats and
// let the router's sweep declare the death and evacuate.
// ---------------------------------------------------------------------------
class ServingFabric {
 public:
  struct StormSpec {
    sim::TimePs at = 0;
    uint32_t node = 0;
    uint32_t region = 0;
    sim::TimePs duration = sim::Microseconds(50);  // models the reprogram time
  };
  struct KillSpec {
    sim::TimePs at = 0;
    uint32_t node = 0;
  };

  struct Config {
    uint32_t num_nodes = 2;
    uint32_t regions_per_node = 2;
    uint32_t num_shards = 1;
    bool use_threads = false;
    uint64_t seed = 1;
    net::Network::Config net;
    Router::Config router;    // num_nodes is overwritten by the fabric
    LoadGen::Config loadgen;  // seed is derived from the fabric seed
    // Kernel k lives wherever (node + region) % kernel_names.size() == k.
    std::vector<std::string> kernel_names = {"serve.bin"};
    SimDevice::KernelFactory kernel_factory;  // optional, used for every name
    uint64_t max_payload_bytes = 4096;  // executor staging buffer size
    KernelScheduler::Policy policy = KernelScheduler::Policy::kAffinity;
    sim::TimePs heartbeat_period = sim::Microseconds(50);
    sim::TimePs sweep_period = sim::Microseconds(100);
    std::vector<StormSpec> storms;
    std::vector<KillSpec> kills;
  };

  explicit ServingFabric(const Config& config);
  ~ServingFabric();
  ServingFabric(const ServingFabric&) = delete;
  ServingFabric& operator=(const ServingFabric&) = delete;

  // Steps the fabric in `step` windows until everything settles (loadgen
  // done, router drained, node schedulers idle) or `horizon` passes.
  // Returns whether it settled.
  bool Run(sim::TimePs horizon, sim::TimePs step);

  // Host-side single-request entry (tests): routes through the same
  // admission path as LoadGen traffic. Call before Run or between windows.
  void SubmitAt(sim::TimePs t, serving::ServingRequest req);

  Router& router() { return *router_; }
  LoadGen& loadgen() { return *loadgen_; }
  KernelScheduler& scheduler(uint32_t node) { return *nodes_[node]->sched; }
  sim::ShardedEngine& sharded() { return *sharded_; }
  uint64_t frame_errors() const { return frame_errors_; }
  uint64_t storms_begun() const { return storms_begun_; }
  // Router fingerprint folded with every node scheduler's counter table.
  uint64_t Fingerprint() const;

 private:
  struct Exec {
    std::unique_ptr<CThread> thread;
    uint64_t src_vaddr = 0;
    uint64_t dst_vaddr = 0;
    bool busy = false;
    uint64_t task_id = 0;
    serving::ServingRequest req;
    std::function<void()> done;  // scheduler region-free callback
  };
  struct NodeRt {
    uint32_t id = 0;
    bool alive = true;
    std::unique_ptr<SimDevice> dev;
    std::unique_ptr<KernelScheduler> sched;
    std::vector<Exec> execs;  // one executor per region
    std::vector<std::string> region_kernel;
    sim::TimerWheel::TimerId hb_timer = sim::TimerWheel::kInvalidTimer;
    uint64_t hb_seq = 0;
  };

  sim::Engine& EngineAt(uint32_t logical);
  sim::TimePs NowAt(uint32_t logical);
  void PostToNode(uint32_t src_logical, uint32_t dst_logical, sim::TimePs delay,
                  sim::InlineCallback cb);
  sim::TimePs WireDelay(uint64_t bytes) const;

  void SendBatch(uint32_t node, std::vector<serving::ServingRequest> batch);
  void OnBatchFrame(uint32_t node, const std::vector<uint8_t>& frame,
                    const std::vector<axi::BufferView>& payloads);
  void ExecuteOnNode(uint32_t node, serving::ServingRequest req);
  void StartExec(uint32_t node, uint32_t region, serving::ServingRequest req,
                 std::function<void()> done);
  void OnExecDone(uint32_t node, uint32_t region, CThread::Task task, OpStatus status);
  void CompleteFromNode(uint32_t node, const serving::ServingCompletion& c);
  void OnCompletionFrame(const std::vector<uint8_t>& frame);
  void HeartbeatTick(uint32_t node);
  void StormBegin(const StormSpec& s);
  void StormEnd(const StormSpec& s);
  void KillNode(uint32_t node);
  bool Settled() const;

  Config config_;
  uint32_t router_logical_ = 0;  // logical node id of the router/loadgen
  std::vector<uint32_t> shard_of_;
  std::unique_ptr<sim::ShardedEngine> sharded_;
  std::vector<std::unique_ptr<NodeRt>> nodes_;
  std::vector<std::unique_ptr<sim::AccessGuard>> node_guards_;
  std::unique_ptr<Router> router_;
  std::unique_ptr<LoadGen> loadgen_;
  std::unique_ptr<sim::TimerWheel> router_timers_;
  bool started_ = false;
  uint64_t frame_errors_ = 0;
  uint64_t storms_begun_ = 0;
};

}  // namespace runtime
}  // namespace coyote

#endif  // SRC_RUNTIME_ROUTER_H_
