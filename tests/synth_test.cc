// Unit tests for the synthesis model: module library, netlists, build flows.

#include <gtest/gtest.h>

#include "src/fabric/floorplan.h"
#include "src/fabric/part.h"
#include "src/synth/flow.h"
#include "src/synth/module_library.h"
#include "src/synth/netlist.h"

namespace coyote {
namespace synth {
namespace {

fabric::ShellConfigDesc Shell(std::vector<fabric::Service> services, uint32_t vfpgas = 1) {
  fabric::ShellConfigDesc s;
  s.name = "test";
  s.services = std::move(services);
  s.num_vfpgas = vfpgas;
  return s;
}

TEST(ModuleLibraryTest, KnownModulesPresent) {
  for (const char* name : {"static_layer", "dyn_crossbar", "host_stream", "hbm_controller",
                           "rdma_stack", "tcp_stack", "sniffer", "mmu_4k", "mmu_2m", "mmu_1g",
                           "aes_core", "hll_core", "passthrough", "vector_add",
                           "nn_intrusion"}) {
    EXPECT_TRUE(LibraryHasModule(name)) << name;
    EXPECT_GT(LibraryModule(name).res.luts, 0u) << name;
  }
  EXPECT_FALSE(LibraryHasModule("flux_capacitor"));
}

TEST(ModuleLibraryTest, PeripheralModulesAreCongested) {
  EXPECT_GT(LibraryModule("static_layer").congestion, 1.4);
  EXPECT_GT(LibraryModule("hbm_controller").congestion, 1.4);
  EXPECT_GT(LibraryModule("rdma_stack").congestion, 1.4);
  EXPECT_DOUBLE_EQ(LibraryModule("passthrough").congestion, 1.0);
}

TEST(ModuleLibraryTest, ServiceModulesFollowTheConfig) {
  using fabric::Service;
  // Minimal shell: crossbar + host stream + 1 MMU.
  auto minimal = ServiceModulesFor(Shell({Service::kHostStream}, 1));
  EXPECT_EQ(minimal.size(), 3u);

  // Card memory adds controller + striping.
  auto memory = ServiceModulesFor(Shell({Service::kHostStream, Service::kCardMemory}, 1));
  EXPECT_EQ(memory.size(), 5u);

  // RDMA without card memory still instantiates a retransmit-buffer
  // controller.
  auto rdma = ServiceModulesFor(Shell({Service::kHostStream, Service::kRdma}, 1));
  bool has_ddr = false;
  for (const auto& m : rdma) {
    has_ddr |= m.name == "ddr_controller";
  }
  EXPECT_TRUE(has_ddr);

  // One MMU per vFPGA.
  auto quad = ServiceModulesFor(Shell({Service::kHostStream}, 4));
  int mmus = 0;
  for (const auto& m : quad) {
    mmus += m.name.rfind("mmu_", 0) == 0 ? 1 : 0;
  }
  EXPECT_EQ(mmus, 4);
}

TEST(ModuleLibraryTest, MmuVariantTracksPageSize) {
  using fabric::Service;
  auto find_mmu = [](const std::vector<HwModule>& mods) -> std::string {
    for (const auto& m : mods) {
      if (m.name.rfind("mmu_", 0) == 0) {
        return m.name;
      }
    }
    return "";
  };
  fabric::ShellConfigDesc s = Shell({Service::kHostStream}, 1);
  s.page_bytes = 4096;
  EXPECT_EQ(find_mmu(ServiceModulesFor(s)), "mmu_4k");
  s.page_bytes = 2ull << 20;
  EXPECT_EQ(find_mmu(ServiceModulesFor(s)), "mmu_2m");
  s.page_bytes = 1ull << 30;
  EXPECT_EQ(find_mmu(ServiceModulesFor(s)), "mmu_1g");
}

TEST(NetlistTest, TotalsAndCongestion) {
  Netlist n{"test", {}};
  n.Add("rdma_stack").Add("aes_core");
  const fabric::ResourceVector total = n.Total();
  EXPECT_EQ(total.luts,
            LibraryModule("rdma_stack").res.luts + LibraryModule("aes_core").res.luts);
  EXPECT_DOUBLE_EQ(n.MaxCongestion(), LibraryModule("rdma_stack").congestion);
}

class FlowTest : public ::testing::Test {
 protected:
  FlowTest()
      : floorplan_(fabric::Floorplan::ForPart(fabric::kAlveoU250, 2)), flow_(floorplan_) {}

  fabric::Floorplan floorplan_;
  BuildFlow flow_;
  Netlist passthrough_{"passthrough", {LibraryModule("passthrough")}};
  Netlist aes_{"aes", {LibraryModule("aes_core")}};
};

TEST_F(FlowTest, ShellFlowProducesAllArtifacts) {
  auto out = flow_.RunShellFlow(Shell({fabric::Service::kHostStream}, 2), {passthrough_});
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_GT(out.total_seconds, 0.0);
  EXPECT_TRUE(out.shell_bitstream.IsShell());
  EXPECT_GT(out.shell_bitstream.size_bytes, 0u);
  // One bitstream per region: the named app + a placeholder.
  ASSERT_EQ(out.app_bitstreams.size(), 2u);
  EXPECT_EQ(out.app_bitstreams[0].name, "app:passthrough");
  EXPECT_EQ(out.app_bitstreams[1].name, "app:placeholder");
  // All linked against the same shell config.
  for (const auto& bs : out.app_bitstreams) {
    EXPECT_EQ(bs.shell_config_id, out.shell_bitstream.shell_config_id);
  }
}

TEST_F(FlowTest, ShellFlowRejectsMismatchedRegionCount) {
  auto out = flow_.RunShellFlow(Shell({fabric::Service::kHostStream}, 4), {});
  EXPECT_FALSE(out.ok);
}

TEST_F(FlowTest, ShellFlowRejectsTooManyApps) {
  auto out = flow_.RunShellFlow(Shell({fabric::Service::kHostStream}, 2),
                                {passthrough_, passthrough_, passthrough_});
  EXPECT_FALSE(out.ok);
}

TEST_F(FlowTest, ShellFlowRejectsOversizedApp) {
  Netlist huge{"huge", {}};
  HwModule monster{"monster", floorplan_.part().total, 1.0};
  huge.Add(monster);
  auto out = flow_.RunShellFlow(Shell({fabric::Service::kHostStream}, 2), {huge});
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("does not fit"), std::string::npos);
}

TEST_F(FlowTest, AppFlowLinksAgainstLockedShell) {
  auto shell = flow_.RunShellFlow(Shell({fabric::Service::kHostStream}, 2), {passthrough_});
  ASSERT_TRUE(shell.ok);
  auto app = flow_.RunAppFlow(aes_, 1, shell);
  ASSERT_TRUE(app.ok) << app.error;
  ASSERT_EQ(app.app_bitstreams.size(), 1u);
  EXPECT_EQ(app.app_bitstreams[0].region_index, 1u);
  EXPECT_EQ(app.app_bitstreams[0].shell_config_id, shell.shell_bitstream.shell_config_id);
  EXPECT_LT(app.total_seconds, shell.total_seconds);
}

TEST_F(FlowTest, AppFlowRejectsBadRegion) {
  auto shell = flow_.RunShellFlow(Shell({fabric::Service::kHostStream}, 2), {});
  ASSERT_TRUE(shell.ok);
  EXPECT_FALSE(flow_.RunAppFlow(aes_, 7, shell).ok);
  BuildOutput bad;  // not a successful shell build
  EXPECT_FALSE(flow_.RunAppFlow(aes_, 0, bad).ok);
}

TEST_F(FlowTest, VivadoProgramTimeGrowsWithOccupancy) {
  const double low = flow_.VivadoFullProgramSeconds(floorplan_.part().total.Scaled(0.05));
  const double high = flow_.VivadoFullProgramSeconds(floorplan_.part().total.Scaled(0.5));
  EXPECT_GT(high, low);
  EXPECT_GT(low, 14.0);  // always pays hot-plug + driver re-insert
}

// Property (the Fig. 7(b) claim): across service mixes, the app flow always
// saves, landing in a 7-25% band (the paper's three configs sit at 15-20%;
// an app that is large relative to a minimal shell saves proportionally
// less).
class AppFlowSavings : public ::testing::TestWithParam<std::vector<fabric::Service>> {};

TEST_P(AppFlowSavings, InExpectedBand) {
  const fabric::Floorplan floorplan = fabric::Floorplan::ForPart(fabric::kAlveoU250, 1);
  BuildFlow flow(floorplan);
  Netlist app{"aes", {LibraryModule("aes_core")}};
  auto shell = flow.RunShellFlow(Shell(GetParam(), 1), {app});
  ASSERT_TRUE(shell.ok) << shell.error;
  auto linked = flow.RunAppFlow(app, 0, shell);
  ASSERT_TRUE(linked.ok) << linked.error;
  const double saving = (shell.total_seconds - linked.total_seconds) / shell.total_seconds;
  EXPECT_GT(saving, 0.07);
  EXPECT_LT(saving, 0.25);
}

INSTANTIATE_TEST_SUITE_P(
    ServiceMixes, AppFlowSavings,
    ::testing::Values(
        std::vector<fabric::Service>{fabric::Service::kHostStream},
        std::vector<fabric::Service>{fabric::Service::kHostStream,
                                     fabric::Service::kCardMemory},
        std::vector<fabric::Service>{fabric::Service::kHostStream,
                                     fabric::Service::kCardMemory, fabric::Service::kRdma},
        std::vector<fabric::Service>{fabric::Service::kHostStream,
                                     fabric::Service::kCardMemory, fabric::Service::kRdma,
                                     fabric::Service::kSniffer},
        std::vector<fabric::Service>{fabric::Service::kHostStream,
                                     fabric::Service::kCardMemory, fabric::Service::kTcp}));

}  // namespace
}  // namespace synth
}  // namespace coyote
