// Rate-based streaming kernel base class.
//
// Most Coyote v2 example kernels are deeply pipelined dataflow designs that
// sustain one 512-bit beat per system cycle once the pipeline fills. This
// base class models exactly that: a shared pipe of `bytes_per_cycle`
// throughput and `pipeline_depth` fill latency. Packets from every host
// input stream i are transformed by the subclass and emitted on host output
// stream i at the pipe's service rate. Kernels with data-dependent recurrences
// (AES CBC) or multiple coupled inputs (vector add) implement HwKernel
// directly instead.

#ifndef SRC_SERVICES_STREAM_KERNEL_H_
#define SRC_SERVICES_STREAM_KERNEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/axi/stream.h"
#include "src/sim/clock.h"
#include "src/vfpga/kernel.h"
#include "src/vfpga/vfpga.h"

namespace coyote {
namespace services {

class StreamKernel : public vfpga::HwKernel {
 public:
  struct Timing {
    uint64_t bytes_per_cycle = 64;  // one 512-bit beat per 250 MHz cycle
    uint64_t pipeline_depth = 8;    // fill latency in cycles
  };

  // Which interface kind the kernel's streams bind to. Host streams are the
  // default; kNet puts the kernel on the network data path (the paper's
  // on-path offload position between the stack and the application, §6.2).
  enum class Port : uint8_t { kHost, kNet };

  StreamKernel() : StreamKernel(Timing{64, 8}) {}
  explicit StreamKernel(Timing timing, Port port = Port::kHost)
      : timing_(timing), port_(port) {}

  void Attach(vfpga::Vfpga* region) override;
  void Detach() override;

  // Checkpointable kernel state: the processed-byte counter survives a
  // migration; pipe occupancy and the hang latch are per-residency and
  // deliberately reset (a restored kernel starts with an empty pipe).
  void SaveState(std::vector<uint8_t>* out) const override;
  bool RestoreState(const std::vector<uint8_t>& blob) override;

  uint64_t bytes_processed() const { return bytes_processed_; }
  // True once an injected hang has wedged the pipeline: the kernel stops
  // consuming input and retires no further beats until reconfigured.
  bool wedged() const { return wedged_; }

 protected:
  // Transforms one input packet's payload. Default: identity (pass-through),
  // which shares the input's storage instead of copying it. Subclasses that
  // produce fresh bytes return a std::vector (implicitly wrapped).
  virtual axi::BufferView Process(const axi::StreamPacket& in, uint32_t stream_index) {
    (void)stream_index;
    return in.data;
  }

  vfpga::Vfpga* region() { return region_; }

 private:
  void Pump(uint32_t stream_index);
  uint32_t NumStreams() const;
  axi::Stream& In(uint32_t i);
  axi::Stream& Out(uint32_t i);

  Timing timing_;
  Port port_;
  vfpga::Vfpga* region_ = nullptr;
  // Absolute cycle at which the shared pipe is next free.
  uint64_t pipe_free_cycle_ = 0;
  uint64_t bytes_processed_ = 0;
  // Chaos: one hang decision per invocation (first data seen after attach).
  bool hang_decided_ = false;
  bool wedged_ = false;
};

}  // namespace services
}  // namespace coyote

#endif  // SRC_SERVICES_STREAM_KERNEL_H_
