// Hardware kernel abstraction.
//
// A kernel is the user logic inside a vFPGA region. It interacts with the
// world only through the generic application interface (paper §7.1, Fig. 5):
// parallel host/card/network streams, the AXI4-Lite control bus, the
// interrupt channel and the read/write send queues. Loading a kernel into a
// region models partial reconfiguration of that region.

#ifndef SRC_VFPGA_KERNEL_H_
#define SRC_VFPGA_KERNEL_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/fabric/resources.h"

namespace coyote {
namespace vfpga {

class Vfpga;

class HwKernel {
 public:
  virtual ~HwKernel() = default;

  virtual std::string_view name() const = 0;

  // Resource footprint of the kernel (drives utilization + bitstream sizes).
  virtual fabric::ResourceVector resources() const = 0;

  // Called when the kernel is loaded into a region. The kernel wires itself
  // to the region's streams/CSRs here (subscribe to on_data etc.).
  virtual void Attach(Vfpga* region) = 0;

  // Called when the kernel is unloaded (region reconfigured away).
  virtual void Detach() {}

  // --- Checkpoint/restore ----------------------------------------------------
  // Serializes the kernel's private state (counters, pipeline occupancy —
  // whatever Attach() does not reconstruct) into *out. The encoding is the
  // kernel's own, but it must be deterministic: two same-seed runs captured
  // at the same simulated instant must produce identical bytes. Stateless
  // kernels keep the default empty blob.
  virtual void SaveState(std::vector<uint8_t>* out) const { out->clear(); }

  // Applies a blob previously produced by SaveState on a kernel of the same
  // name, after Attach(). Returns false if the blob is malformed (the region
  // then treats the restore as failed and rolls back). The default accepts
  // only the empty blob the default SaveState produces.
  virtual bool RestoreState(const std::vector<uint8_t>& blob) { return blob.empty(); }
};

}  // namespace vfpga
}  // namespace coyote

#endif  // SRC_VFPGA_KERNEL_H_
