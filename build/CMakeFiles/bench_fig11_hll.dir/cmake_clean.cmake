file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_hll.dir/bench/bench_fig11_hll.cc.o"
  "CMakeFiles/bench_fig11_hll.dir/bench/bench_fig11_hll.cc.o.d"
  "bench/bench_fig11_hll"
  "bench/bench_fig11_hll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_hll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
