// Unit tests for the fabric layer: resources, floorplan, shell configs,
// bitstream sizing, reconfiguration ports.

#include <gtest/gtest.h>

#include "src/fabric/bitstream.h"
#include "src/fabric/floorplan.h"
#include "src/fabric/part.h"
#include "src/fabric/reconfig_port.h"
#include "src/fabric/resources.h"
#include "src/fabric/shell_config.h"
#include "src/sim/engine.h"

namespace coyote {
namespace fabric {
namespace {

TEST(ResourceVectorTest, ArithmeticAndScaling) {
  ResourceVector a{100, 200, 10, 2, 5};
  ResourceVector b{50, 100, 5, 1, 3};
  ResourceVector sum = a + b;
  EXPECT_EQ(sum.luts, 150u);
  EXPECT_EQ(sum.dsp, 8u);
  ResourceVector half = a.Scaled(0.5);
  EXPECT_EQ(half.luts, 50u);
  EXPECT_EQ(half.uram, 1u);
}

TEST(ResourceVectorTest, FitsInIsPerDimension) {
  ResourceVector budget{100, 100, 100, 100, 100};
  EXPECT_TRUE((ResourceVector{100, 100, 100, 100, 100}).FitsIn(budget));
  EXPECT_FALSE((ResourceVector{101, 0, 0, 0, 0}).FitsIn(budget));
  EXPECT_FALSE((ResourceVector{0, 0, 0, 0, 101}).FitsIn(budget));
  EXPECT_TRUE(ResourceVector{}.FitsIn(budget));
  EXPECT_TRUE(ResourceVector{}.IsZero());
}

TEST(ResourceVectorTest, UtilizationPicksBindingConstraint) {
  ResourceVector budget{1000, 1000, 100, 100, 100};
  ResourceVector used{100, 100, 90, 10, 10};
  EXPECT_DOUBLE_EQ(used.MaxUtilization(budget), 0.9);  // BRAM binds
  EXPECT_DOUBLE_EQ(used.LutUtilization(budget), 0.1);
}

TEST(PartTest, KnownParts) {
  EXPECT_EQ(kAlveoU55C.memory_channels, 32u);
  EXPECT_EQ(kAlveoU55C.card_memory, CardMemoryKind::kHbm);
  EXPECT_EQ(kAlveoU250.card_memory, CardMemoryKind::kDdr);
  EXPECT_GT(kAlveoU250.total.luts, kAlveoU55C.total.luts);
  // 100G CMAC on all supported parts.
  EXPECT_EQ(kAlveoU55C.network_bandwidth_bps, 12'500'000'000ull);
}

TEST(FloorplanTest, RegionsPartitionTheDevice) {
  const Floorplan fp = Floorplan::ForPart(kAlveoU55C, 4);
  EXPECT_EQ(fp.num_app_regions(), 4u);
  // Static + dynamic + apps stay within the device.
  ResourceVector total = fp.static_region().budget + fp.service_region().budget;
  for (const Region& r : fp.app_regions()) {
    EXPECT_EQ(r.layer, Layer::kApp);
    total += r.budget;
  }
  EXPECT_TRUE(total.FitsIn(kAlveoU55C.total));
  // The static layer is deliberately thin (paper §3).
  EXPECT_LT(fp.static_region().budget.luts, fp.service_region().budget.luts);
}

TEST(FloorplanTest, AppRegionsShrinkWithMoreVfpgas) {
  const Floorplan fp2 = Floorplan::ForPart(kAlveoU55C, 2);
  const Floorplan fp8 = Floorplan::ForPart(kAlveoU55C, 8);
  EXPECT_GT(fp2.app_regions()[0].budget.luts, fp8.app_regions()[0].budget.luts);
  // Shell budget (services + all apps) is independent of the split.
  EXPECT_NEAR(static_cast<double>(fp2.ShellBudget().luts),
              static_cast<double>(fp8.ShellBudget().luts),
              static_cast<double>(fp2.ShellBudget().luts) * 0.01);
}

TEST(FloorplanTest, BitstreamGrowsWithOccupancy) {
  const Floorplan fp = Floorplan::ForPart(kAlveoU55C, 2);
  const Region& region = fp.app_regions()[0];
  const uint64_t empty = fp.RegionBitstreamBytes(region, {});
  const uint64_t tenth = fp.RegionBitstreamBytes(region, region.budget.Scaled(0.1));
  const uint64_t third = fp.RegionBitstreamBytes(region, region.budget.Scaled(0.3));
  const uint64_t full = fp.RegionBitstreamBytes(region, region.budget);
  EXPECT_LT(empty, tenth);
  EXPECT_LT(tenth, third);
  EXPECT_LE(third, full);
  // The fill factor saturates: never exceeds the uncompressed frame size.
  EXPECT_LE(full, static_cast<uint64_t>(static_cast<double>(region.budget.luts) *
                                        kBitstreamBytesPerLut));
}

TEST(FloorplanTest, ShellBitstreamInPaperRange) {
  // Table 3 shells on the U55C are ~40-70 MB.
  const Floorplan fp = Floorplan::ForPart(kAlveoU55C, 2);
  const uint64_t small = fp.ShellBitstreamBytes(fp.ShellBudget().Scaled(0.05));
  const uint64_t big = fp.ShellBitstreamBytes(fp.ShellBudget().Scaled(0.25));
  EXPECT_GT(small, 30ull << 20);
  EXPECT_LT(big, 80ull << 20);
}

TEST(ShellConfigTest, ConfigIdStableAndSensitive) {
  ShellConfigDesc a;
  a.services = {Service::kHostStream, Service::kRdma};
  a.num_vfpgas = 2;
  ShellConfigDesc b = a;
  EXPECT_EQ(a.ConfigId(), b.ConfigId());
  b.name = "renamed";  // name is documentation, not identity
  EXPECT_EQ(a.ConfigId(), b.ConfigId());
  b.page_bytes = 1ull << 30;
  EXPECT_NE(a.ConfigId(), b.ConfigId());
  ShellConfigDesc c = a;
  c.services = {Service::kRdma, Service::kHostStream};  // order-insensitive
  EXPECT_EQ(a.ConfigId(), c.ConfigId());
  ShellConfigDesc d = a;
  d.services.push_back(Service::kSniffer);
  EXPECT_NE(a.ConfigId(), d.ConfigId());
}

TEST(ShellConfigTest, HasServiceAndNames) {
  ShellConfigDesc s;
  s.services = {Service::kRdma};
  EXPECT_TRUE(s.HasService(Service::kRdma));
  EXPECT_FALSE(s.HasService(Service::kTcp));
  EXPECT_EQ(ServiceName(Service::kRdma), "rdma");
  EXPECT_EQ(ServiceName(Service::kSniffer), "sniffer");
}

TEST(ReconfigPortTest, Table2Throughputs) {
  EXPECT_NEAR(kAxiHwicap.ThroughputMBps(), 19.0, 0.1);
  EXPECT_NEAR(kPcap.ThroughputMBps(), 128.0, 0.5);
  EXPECT_NEAR(kMcap.ThroughputMBps(), 145.0, 0.5);
  EXPECT_NEAR(kCoyoteIcap.ThroughputMBps(), 800.0, 0.5);
}

TEST(ReconfigPortTest, ProgramTimeScalesWithSize) {
  const uint64_t mb = 1 << 20;
  EXPECT_EQ(ProgramTime(kCoyoteIcap, 0), 0u);
  const sim::TimePs one = ProgramTime(kCoyoteIcap, mb);
  const sim::TimePs ten = ProgramTime(kCoyoteIcap, 10 * mb);
  EXPECT_EQ(ten, 10 * one);
  // Word-granular rounding.
  EXPECT_EQ(ProgramTime(kCoyoteIcap, 1), ProgramTime(kCoyoteIcap, 4));
}

TEST(ReconfigControllerTest, IcapBoundWhenHostLinkFaster) {
  sim::Engine engine;
  ReconfigController ctrl(&engine, 12'000'000'000ull);
  const uint64_t bytes = 40ull << 20;
  // ICAP at 800 MB/s is the bottleneck; 40 MiB / 800 MB/s ~= 52.4 ms.
  const double ms = sim::ToMilliseconds(ctrl.ProgramLatency(bytes));
  EXPECT_NEAR(ms, 52.4, 1.0);
}

TEST(ReconfigControllerTest, HostLinkBoundWhenSlower) {
  sim::Engine engine;
  ReconfigController ctrl(&engine, 100'000'000ull);  // 100 MB/s staging link
  const uint64_t bytes = 10ull << 20;
  const double ms = sim::ToMilliseconds(ctrl.ProgramLatency(bytes));
  EXPECT_NEAR(ms, 104.9, 2.0);  // DMA-bound
}

TEST(ReconfigControllerTest, AsyncProgramKeepsEngineRunning) {
  sim::Engine engine;
  ReconfigController ctrl(&engine, 12'000'000'000ull);
  bool done = false;
  int other_events = 0;
  ctrl.ProgramAsync(8ull << 20, [&](bool ok) { done = ok; });
  EXPECT_TRUE(ctrl.busy());
  // The rest of the FPGA remains operational: unrelated events interleave.
  for (int i = 1; i <= 5; ++i) {
    engine.ScheduleAfter(sim::Milliseconds(i), [&] { ++other_events; });
  }
  engine.RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_FALSE(ctrl.busy());
  EXPECT_EQ(other_events, 5);
}

}  // namespace
}  // namespace fabric
}  // namespace coyote
