// Fixture: direct cross-shard mutation from callback context. The callback
// never names another shard itself — a helper reaches through .shard() and
// .ScheduleOn(), bypassing the ShardedEngine mailbox (Post) contract.
#include <cstdint>

namespace fx {

class Cluster {
 public:
  void* shard(int idx);
  void ScheduleOn(int idx, long when, void (*fn)());
  void Post(int idx, long when, void (*fn)());
};

class Fabric {
 public:
  void StealWork(int target) {
    cluster_->shard(target);
  }

  void MirrorEvent(int target, long when) {
    cluster_->ScheduleOn(target, when, nullptr);
  }

  void ForwardEvent(int target, long when) {
    cluster_->Post(target, when, nullptr);  // the sanctioned mailbox path
  }

 private:
  Cluster* cluster_ = nullptr;
};

class Engine {
 public:
  void Post(long when, void (*fn)());
};

void ArmFabric(Engine& engine, Fabric& fabric) {
  engine.Post(2, [&fabric] {
    fabric.StealWork(1);
    fabric.MirrorEvent(1, 40);
    fabric.ForwardEvent(1, 41);
  });
}

}  // namespace fx
