#include "src/net/rpc.h"

#include "src/vfpga/checkpoint.h"

namespace coyote {
namespace net {
namespace rpc {

namespace {
constexpr size_t kHeaderBytes = 4 + 2 + 1 + 1 + 4;
constexpr size_t kTrailerBytes = 4;
}  // namespace

void FrameWriter::U16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v & 0xFFu));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void FrameWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xFFu));
  }
}

void FrameWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xFFu));
  }
}

void FrameWriter::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

std::vector<uint8_t> FrameWriter::Finish(MsgType type) const {
  std::vector<uint8_t> out;
  out.reserve(kHeaderBytes + buf_.size() + kTrailerBytes);
  auto u16 = [&out](uint16_t v) {
    out.push_back(static_cast<uint8_t>(v & 0xFFu));
    out.push_back(static_cast<uint8_t>(v >> 8));
  };
  auto u32 = [&out](uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xFFu));
    }
  };
  u32(kMagic);
  u16(kVersion);
  out.push_back(static_cast<uint8_t>(type));
  out.push_back(0);  // reserved
  u32(static_cast<uint32_t>(buf_.size()));
  out.insert(out.end(), buf_.begin(), buf_.end());
  u32(vfpga::ckpt::Crc32(out.data(), out.size()));
  return out;
}

FrameReader::FrameReader(const std::vector<uint8_t>& frame) : frame_(&frame) {
  if (frame.size() < kHeaderBytes + kTrailerBytes) {
    return;
  }
  auto u16at = [&frame](size_t p) {
    return static_cast<uint16_t>(frame[p] | (static_cast<uint16_t>(frame[p + 1]) << 8));
  };
  auto u32at = [&frame](size_t p) {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(frame[p + static_cast<size_t>(i)]) << (8 * i);
    }
    return v;
  };
  if (u32at(0) != kMagic || u16at(4) != kVersion) {
    return;
  }
  const uint32_t len = u32at(8);
  if (frame.size() != kHeaderBytes + len + kTrailerBytes) {
    return;
  }
  const uint32_t stored = u32at(frame.size() - kTrailerBytes);
  if (vfpga::ckpt::Crc32(frame.data(), frame.size() - kTrailerBytes) != stored) {
    return;
  }
  type_ = static_cast<MsgType>(frame[6]);
  pos_ = kHeaderBytes;
  end_ = kHeaderBytes + len;
  ok_ = true;
}

uint8_t FrameReader::U8() {
  if (!ok_ || pos_ + 1 > end_) {
    ok_ = false;
    return 0;
  }
  return (*frame_)[pos_++];
}

uint16_t FrameReader::U16() {
  if (!ok_ || pos_ + 2 > end_) {
    ok_ = false;
    return 0;
  }
  const uint16_t v =
      static_cast<uint16_t>((*frame_)[pos_] | (static_cast<uint16_t>((*frame_)[pos_ + 1]) << 8));
  pos_ += 2;
  return v;
}

uint32_t FrameReader::U32() {
  if (!ok_ || pos_ + 4 > end_) {
    ok_ = false;
    return 0;
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>((*frame_)[pos_ + static_cast<size_t>(i)]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

uint64_t FrameReader::U64() {
  if (!ok_ || pos_ + 8 > end_) {
    ok_ = false;
    return 0;
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>((*frame_)[pos_ + static_cast<size_t>(i)]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::string FrameReader::Str() {
  const uint32_t len = U32();
  if (!ok_ || pos_ + len > end_) {
    ok_ = false;
    return std::string();
  }
  std::string s(reinterpret_cast<const char*>(frame_->data()) + pos_, len);
  pos_ += len;
  return s;
}

}  // namespace rpc
}  // namespace net
}  // namespace coyote
