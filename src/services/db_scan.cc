#include "src/services/db_scan.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "src/sim/clock.h"

namespace coyote {
namespace services {

void DbScanKernel::Attach(vfpga::Vfpga* region) {
  region_ = region;
  pipe_free_cycle_ = 0;
  Reset();
  region->host_in(0).set_on_data([this]() { Pump(); });
  Pump();
}

void DbScanKernel::Detach() {
  if (region_ != nullptr) {
    region_->host_in(0).set_on_data(nullptr);
    region_ = nullptr;
  }
}

void DbScanKernel::Reset() {
  guard_.Write();
  rows_ = 0;
  matched_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<int64_t>::max();
  max_ = std::numeric_limits<int64_t>::min();
  residual_.clear();
}

void DbScanKernel::Pump() {
  guard_.Write();
  auto& in = region_->host_in(0);
  const sim::Clock& clk = sim::kSystemClock;
  const int64_t min_key = static_cast<int64_t>(region_->csr().Peek(kScanCsrMinKey));
  const int64_t max_key = static_cast<int64_t>(region_->csr().Peek(kScanCsrMaxKey));

  while (!in.Empty()) {
    auto pkt = in.Pop();
    residual_.insert(residual_.end(), pkt->data.begin(), pkt->data.end());

    size_t off = 0;
    while (residual_.size() - off >= sizeof(DbRecord)) {
      DbRecord rec;
      std::memcpy(&rec, &residual_[off], sizeof(rec));
      off += sizeof(rec);
      ++rows_;
      if (rec.key >= min_key && rec.key <= max_key) {
        ++matched_;
        sum_ += rec.value;
        min_ = std::min(min_, rec.value);
        max_ = std::max(max_, rec.value);
      }
    }
    residual_.erase(residual_.begin(), residual_.begin() + static_cast<ptrdiff_t>(off));

    // Line-rate: one 512-bit beat (4 records) per cycle.
    const uint64_t now_cycle = clk.PsToCycles(region_->engine()->Now());
    const uint64_t start = std::max(now_cycle, pipe_free_cycle_);
    pipe_free_cycle_ = start + (pkt->data.size() + 63) / 64;

    region_->csr().Poke(kScanCsrCount, matched_);
    region_->csr().Poke(kScanCsrSum, static_cast<uint64_t>(sum_));
    region_->csr().Poke(kScanCsrMin, static_cast<uint64_t>(min_));
    region_->csr().Poke(kScanCsrMax, static_cast<uint64_t>(max_));

    if (pkt->last) {
      axi::StreamPacket out;
      out.data.resize(16);
      std::memcpy(out.data.data(), &matched_, 8);
      std::memcpy(out.data.data() + 8, &sum_, 8);
      out.tid = pkt->tid;
      out.last = true;
      vfpga::Vfpga* r = region_;
      const sim::TimePs when = clk.CyclesToPs(pipe_free_cycle_ + 6);
      region_->engine()->ScheduleAt(when, [r, out = std::move(out)]() mutable {
        r->host_out(0).Push(std::move(out));
      });
      // Ready for the next query (aggregation state is per scan).
      Reset();
    }
  }
}

}  // namespace services
}  // namespace coyote
