file(REMOVE_RECURSE
  "libcoyote_services.a"
)
