// On-demand kernel loading (paper §9.6).
//
// The HLL kernel runs as a background daemon loaded on demand: when a client
// submits a cardinality query, the runtime loads the kernel through partial
// reconfiguration (if it is not already resident) and serves the request.
// Subsequent requests reuse the loaded kernel; reconfiguring another kernel
// into the region evicts it.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/runtime/crcnfg.h"
#include "src/runtime/cthread.h"
#include "src/runtime/device.h"
#include "src/services/hll.h"
#include "src/services/vector_kernels.h"
#include "src/sim/rng.h"
#include "src/synth/flow.h"
#include "src/synth/netlist.h"

using namespace coyote;

namespace {

// Serves one cardinality query; loads the kernel first if needed.
double ServeQuery(runtime::SimDevice& dev, runtime::CRcnfg& rcnfg, uint64_t num_items,
                  uint64_t distinct) {
  if (dev.vfpga(0).kernel() == nullptr || dev.vfpga(0).kernel()->name() != "hyperloglog") {
    const sim::TimePs t0 = dev.engine().Now();
    auto result = rcnfg.ReconfigureApp("/bit/hll.bin", 0);
    std::printf("  [daemon] loaded HLL kernel via partial reconfiguration in %.1f ms\n",
                sim::ToMilliseconds(dev.engine().Now() - t0));
    if (!result.ok) {
      std::printf("  [daemon] reconfiguration failed: %s\n", result.error.c_str());
      return -1;
    }
  }

  runtime::cThread t(&dev, 0);
  std::vector<uint64_t> items(num_items);
  sim::Rng rng(distinct);
  for (auto& x : items) {
    x = rng.NextBounded(distinct);
  }
  const uint64_t bytes = num_items * 8;
  const uint64_t src = t.GetMem({runtime::Alloc::kHpf, bytes});
  const uint64_t dst = t.GetMem({runtime::Alloc::kHpf, 4096});
  t.WriteBuffer(src, items.data(), bytes);
  t.SetCsr(1, services::kHllCsrCtrl);  // fresh sketch per query

  runtime::SgEntry sg;
  // The HLL kernel consumes host stream 0 and emits on host stream 0.
  sg.local = {.src_addr = src, .src_len = bytes, .dst_addr = dst, .dst_len = 8,
              .src_stream = 0, .dst_stream = 0};
  t.InvokeSync(runtime::Oper::kLocalTransfer, sg);

  double estimate = 0;
  t.ReadBuffer(dst, &estimate, 8);
  t.FreeMem(src);
  t.FreeMem(dst);
  return estimate;
}

}  // namespace

int main() {
  runtime::SimDevice::Config cfg;
  cfg.shell.name = "daemon";
  cfg.shell.services = {fabric::Service::kHostStream, fabric::Service::kCardMemory};
  cfg.shell.num_vfpgas = 8;
  runtime::SimDevice dev(cfg);
  dev.RegisterKernelFactory("hyperloglog",
                            []() { return std::make_unique<services::HllKernel>(); });
  dev.RegisterKernelFactory("passthrough",
                            []() { return std::make_unique<services::PassthroughKernel>(); });

  // Synthesize bitstreams for the daemon's kernels against the active shell.
  synth::BuildFlow flow(dev.floorplan());
  synth::Netlist hll{"hyperloglog", {synth::LibraryModule("hll_core")}};
  synth::Netlist pt{"passthrough", {synth::LibraryModule("passthrough")}};
  const auto shell_out = flow.RunShellFlow(dev.config().shell, {hll, pt});
  dev.WriteBitstreamFile("/bit/hll.bin", shell_out.app_bitstreams[0]);

  runtime::CRcnfg rcnfg(&dev);

  std::printf("HLL daemon: on-demand kernel loading\n");
  struct Query {
    uint64_t items;
    uint64_t distinct;
  };
  const Query queries[] = {{200'000, 50'000}, {1'000'000, 300'000}, {400'000, 123'456}};
  int qid = 0;
  for (const Query& q : queries) {
    const sim::TimePs t0 = dev.engine().Now();
    const double est = ServeQuery(dev, rcnfg, q.items, q.distinct);
    std::printf("query %d: %llu items, true distinct=%llu -> estimate=%.0f (err %.1f%%), "
                "%.2f ms end-to-end\n",
                ++qid, static_cast<unsigned long long>(q.items),
                static_cast<unsigned long long>(q.distinct), est,
                100.0 * (est - static_cast<double>(q.distinct)) / static_cast<double>(q.distinct),
                sim::ToMilliseconds(dev.engine().Now() - t0));
  }
  std::printf("note: only query 1 paid the reconfiguration cost; 2 and 3 reused the kernel.\n");
  return 0;
}
