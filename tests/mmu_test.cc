// Unit tests for the MMU stack: TLB, page table, timed translation, shared
// virtual memory with migration.

#include <gtest/gtest.h>

#include <vector>

#include "src/memsys/card_memory.h"
#include "src/memsys/gpu_memory.h"
#include "src/memsys/host_memory.h"
#include "src/memsys/nvme.h"
#include "src/mmu/mmu.h"
#include "src/mmu/page_table.h"
#include "src/mmu/svm.h"
#include "src/mmu/tlb.h"
#include "src/sim/engine.h"
#include "src/sim/rng.h"

namespace coyote {
namespace mmu {
namespace {

constexpr uint64_t kPage2M = 2ull << 20;

TEST(TlbTest, HitAfterInsert) {
  Tlb tlb({.entries = 64, .associativity = 4, .page_bytes = kPage2M});
  EXPECT_FALSE(tlb.Lookup(0).has_value());
  tlb.Insert(0, {MemKind::kHost, 0x1000});
  auto hit = tlb.Lookup(kPage2M - 1);  // same page
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->addr, 0x1000u);
  EXPECT_FALSE(tlb.Lookup(kPage2M).has_value());  // next page
  EXPECT_EQ(tlb.hits(), 1u);
  EXPECT_EQ(tlb.misses(), 2u);
}

TEST(TlbTest, UpdateInPlaceForSamePage) {
  Tlb tlb({.entries = 16, .associativity = 4, .page_bytes = kPage2M});
  tlb.Insert(0, {MemKind::kHost, 1});
  tlb.Insert(0, {MemKind::kCard, 2});
  auto hit = tlb.Lookup(0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->kind, MemKind::kCard);
  EXPECT_EQ(hit->addr, 2u);
  EXPECT_EQ(tlb.evictions(), 0u);
}

TEST(TlbTest, LruEvictionWithinSet) {
  // 4 entries, 4-way => one set: the 5th distinct page evicts the LRU.
  Tlb tlb({.entries = 4, .associativity = 4, .page_bytes = kPage2M});
  for (uint64_t p = 0; p < 4; ++p) {
    tlb.Insert(p * kPage2M, {MemKind::kHost, p});
  }
  // Touch pages 1..3 so page 0 becomes LRU.
  for (uint64_t p = 1; p < 4; ++p) {
    EXPECT_TRUE(tlb.Lookup(p * kPage2M).has_value());
  }
  tlb.Insert(4 * kPage2M, {MemKind::kHost, 4});
  EXPECT_EQ(tlb.evictions(), 1u);
  EXPECT_FALSE(tlb.Lookup(0).has_value());            // evicted
  EXPECT_TRUE(tlb.Lookup(4 * kPage2M).has_value());   // resident
}

TEST(TlbTest, DirectMappedConflicts) {
  // Associativity 1: pages mapping to the same set conflict.
  Tlb tlb({.entries = 4, .associativity = 1, .page_bytes = kPage2M});
  EXPECT_EQ(tlb.num_sets(), 4u);
  tlb.Insert(0, {MemKind::kHost, 0});
  tlb.Insert(4 * kPage2M, {MemKind::kHost, 4});  // same set as page 0
  EXPECT_FALSE(tlb.Lookup(0).has_value());
  EXPECT_TRUE(tlb.Lookup(4 * kPage2M).has_value());
}

TEST(TlbTest, InvalidateSingleAndAll) {
  Tlb tlb({.entries = 64, .associativity = 4, .page_bytes = kPage2M});
  tlb.Insert(0, {MemKind::kHost, 0});
  tlb.Insert(kPage2M, {MemKind::kHost, 1});
  tlb.Invalidate(0);
  EXPECT_FALSE(tlb.Lookup(0).has_value());
  EXPECT_TRUE(tlb.Lookup(kPage2M).has_value());
  tlb.InvalidateAll();
  EXPECT_FALSE(tlb.Lookup(kPage2M).has_value());
}

TEST(TlbTest, HitRateTracksWorkload) {
  Tlb tlb({.entries = 1024, .associativity = 4, .page_bytes = kPage2M});
  for (uint64_t p = 0; p < 100; ++p) {
    tlb.Insert(p * kPage2M, {MemKind::kHost, p});
  }
  for (int round = 0; round < 9; ++round) {
    for (uint64_t p = 0; p < 100; ++p) {
      tlb.Lookup(p * kPage2M);
    }
  }
  EXPECT_GT(tlb.HitRate(), 0.99);
}

TEST(PageTableTest, MapRangeContiguous) {
  PageTable pt(kPage2M);
  pt.MapRange(0, 10 * kPage2M, MemKind::kCard, 0x10000000);
  for (uint64_t p = 0; p < 10; ++p) {
    auto e = pt.Find(p * kPage2M + 17);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->kind, MemKind::kCard);
    EXPECT_EQ(e->addr, 0x10000000 + p * kPage2M);
  }
  EXPECT_FALSE(pt.Find(10 * kPage2M).has_value());
  EXPECT_EQ(pt.size(), 10u);
}

TEST(PageTableTest, UnmapAndRemap) {
  PageTable pt(kPage2M);
  pt.Map(0, {MemKind::kHost, 0});
  EXPECT_TRUE(pt.Unmap(100));  // same page
  EXPECT_FALSE(pt.Find(0).has_value());
  EXPECT_FALSE(pt.Unmap(0));
}

TEST(MmuTest, HitIsOneCycleMissPaysDriverLatency) {
  sim::Engine engine;
  PageTable pt(kPage2M);
  pt.Map(0, {MemKind::kHost, 0x1234});
  Mmu::Config cfg;
  Mmu mmu(&engine, &pt, cfg);

  // Miss path: driver fallback latency.
  std::optional<PhysPage> result;
  mmu.Translate(0, [&](std::optional<PhysPage> e) { result = e; });
  engine.RunUntilIdle();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(engine.Now(), cfg.miss_latency);
  EXPECT_EQ(mmu.driver_fallbacks(), 1u);

  // Now cached: hit latency only.
  const sim::TimePs before = engine.Now();
  result.reset();
  mmu.Translate(100, [&](std::optional<PhysPage> e) { result = e; });
  engine.RunUntilIdle();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(engine.Now() - before, cfg.hit_latency);
}

TEST(MmuTest, UnmappedAddressIsPageFault) {
  sim::Engine engine;
  PageTable pt(kPage2M);
  Mmu mmu(&engine, &pt, {});
  bool called = false;
  mmu.Translate(0xDEAD0000, [&](std::optional<PhysPage> e) {
    called = true;
    EXPECT_FALSE(e.has_value());
  });
  engine.RunUntilIdle();
  EXPECT_TRUE(called);
  EXPECT_EQ(mmu.page_faults(), 1u);
}

class SvmTest : public ::testing::Test {
 protected:
  SvmTest()
      : card_(&engine_, {}),
        svm_(&engine_, &host_, &card_, &gpu_, kPage2M) {}

  sim::Engine engine_;
  memsys::HostMemory host_;
  memsys::CardMemory card_;
  memsys::GpuMemory gpu_;
  Svm svm_;
};

TEST_F(SvmTest, RegisterHostBufferIdentityMaps) {
  const uint64_t addr = host_.Allocate(kPage2M, memsys::AllocKind::kHuge2M);
  svm_.RegisterHostBuffer(addr, kPage2M);
  auto e = svm_.page_table().Find(addr);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->kind, MemKind::kHost);
  EXPECT_EQ(e->addr, addr);
}

TEST_F(SvmTest, MigrationPreservesDataAndUpdatesMapping) {
  const uint64_t addr = host_.Allocate(4 * kPage2M, memsys::AllocKind::kHuge2M);
  svm_.RegisterHostBuffer(addr, 4 * kPage2M);
  std::vector<uint8_t> data(4 * kPage2M);
  sim::Rng rng(3);
  rng.FillBytes(data.data(), data.size());
  svm_.WriteVirtual(addr, data.data(), data.size());

  bool done = false;
  svm_.EnsureResident(addr, 4 * kPage2M, MemKind::kCard, [&] { done = true; });
  engine_.RunUntilIdle();
  ASSERT_TRUE(done);
  EXPECT_EQ(svm_.migrations(), 4u);
  EXPECT_EQ(svm_.migrated_bytes(), 4 * kPage2M);
  EXPECT_EQ(svm_.page_table().Find(addr)->kind, MemKind::kCard);

  std::vector<uint8_t> back(data.size());
  svm_.ReadVirtual(addr, back.data(), back.size());
  EXPECT_EQ(back, data);
}

TEST_F(SvmTest, EnsureResidentIsIdempotent) {
  const uint64_t addr = host_.Allocate(kPage2M, memsys::AllocKind::kHuge2M);
  svm_.RegisterHostBuffer(addr, kPage2M);
  bool done = false;
  svm_.EnsureResident(addr, kPage2M, MemKind::kHost, [&] { done = true; });
  engine_.RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_EQ(svm_.migrations(), 0u);
}

TEST_F(SvmTest, PartialRangeMigratesOnlyAffectedPages) {
  const uint64_t addr = host_.Allocate(4 * kPage2M, memsys::AllocKind::kHuge2M);
  svm_.RegisterHostBuffer(addr, 4 * kPage2M);
  bool done = false;
  // Touch bytes spanning pages 1 and 2 only.
  svm_.EnsureResident(addr + kPage2M + 100, kPage2M, MemKind::kCard, [&] { done = true; });
  engine_.RunUntilIdle();
  ASSERT_TRUE(done);
  EXPECT_EQ(svm_.migrations(), 2u);
  EXPECT_EQ(svm_.page_table().Find(addr)->kind, MemKind::kHost);
  EXPECT_EQ(svm_.page_table().Find(addr + kPage2M)->kind, MemKind::kCard);
  EXPECT_EQ(svm_.page_table().Find(addr + 3 * kPage2M)->kind, MemKind::kHost);
}

TEST_F(SvmTest, MigrationHooksChargeTimingAndInvalidate) {
  uint64_t transfer_calls = 0;
  std::vector<uint64_t> invalidated;
  Svm::MigrationHooks hooks;
  hooks.transfer = [&](MemKind, MemKind, uint64_t, std::function<void()> done) {
    ++transfer_calls;
    engine_.ScheduleAfter(sim::Microseconds(10), std::move(done));
  };
  hooks.invalidate = [&](uint64_t vaddr) { invalidated.push_back(vaddr); };
  svm_.set_hooks(std::move(hooks));

  const uint64_t addr = host_.Allocate(kPage2M, memsys::AllocKind::kHuge2M);
  svm_.RegisterHostBuffer(addr, kPage2M);
  bool done = false;
  svm_.EnsureResident(addr, kPage2M, MemKind::kCard, [&] { done = true; });
  engine_.RunUntilIdle();
  ASSERT_TRUE(done);
  EXPECT_EQ(transfer_calls, 1u);
  EXPECT_EQ(invalidated.size(), 1u);
  EXPECT_EQ(engine_.Now(), sim::Microseconds(10));
}

TEST_F(SvmTest, GpuBufferJoinsTheAddressSpace) {
  const uint64_t vaddr = svm_.RegisterGpuBuffer(kPage2M);
  auto e = svm_.page_table().Find(vaddr);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->kind, MemKind::kGpu);

  std::vector<uint8_t> data(1024, 0x5C);
  svm_.WriteVirtual(vaddr, data.data(), data.size());
  std::vector<uint8_t> back(1024);
  svm_.ReadVirtual(vaddr, back.data(), back.size());
  EXPECT_EQ(back, data);

  // Migrate GPU -> card and verify data follows (the peer-DMA extension).
  bool done = false;
  svm_.EnsureResident(vaddr, kPage2M, MemKind::kCard, [&] { done = true; });
  engine_.RunUntilIdle();
  ASSERT_TRUE(done);
  svm_.ReadVirtual(vaddr, back.data(), back.size());
  EXPECT_EQ(back, data);
}

TEST_F(SvmTest, VirtualAccessSpansPagesAcrossKinds) {
  const uint64_t addr = host_.Allocate(2 * kPage2M, memsys::AllocKind::kHuge2M);
  svm_.RegisterHostBuffer(addr, 2 * kPage2M);
  // Move only page 1 to the card, then write across the boundary.
  bool done = false;
  svm_.EnsureResident(addr + kPage2M, kPage2M, MemKind::kCard, [&] { done = true; });
  engine_.RunUntilIdle();
  ASSERT_TRUE(done);

  std::vector<uint8_t> data(4096);
  sim::Rng rng(4);
  rng.FillBytes(data.data(), data.size());
  const uint64_t span_addr = addr + kPage2M - 2048;
  svm_.WriteVirtual(span_addr, data.data(), data.size());
  std::vector<uint8_t> back(4096);
  svm_.ReadVirtual(span_addr, back.data(), back.size());
  EXPECT_EQ(back, data);
}

TEST_F(SvmTest, NvmeTierRoundTripsDataAndRecyclesFrames) {
  memsys::NvmeDrive nvme(&engine_, {});
  EXPECT_FALSE(svm_.has_nvme());
  svm_.set_nvme(&nvme);
  ASSERT_TRUE(svm_.has_nvme());

  const uint64_t addr = host_.Allocate(2 * kPage2M, memsys::AllocKind::kHuge2M);
  svm_.RegisterHostBuffer(addr, 2 * kPage2M);
  std::vector<uint8_t> data(2 * kPage2M);
  sim::Rng rng(7);
  rng.FillBytes(data.data(), data.size());
  svm_.WriteVirtual(addr, data.data(), data.size());

  bool done = false;
  svm_.EnsureResident(addr, 2 * kPage2M, MemKind::kNvme, [&] { done = true; });
  engine_.RunUntilIdle();
  ASSERT_TRUE(done);
  EXPECT_EQ(svm_.page_table().Find(addr)->kind, MemKind::kNvme);
  EXPECT_EQ(nvme.allocated_bytes(), 2 * kPage2M);

  std::vector<uint8_t> back(data.size());
  svm_.ReadVirtual(addr, back.data(), back.size());
  EXPECT_EQ(back, data);

  // Promote back out, then demote again: the vacated drive slots are
  // recycled, so churn does not grow the swap partition.
  done = false;
  svm_.EnsureResident(addr, 2 * kPage2M, MemKind::kHost, [&] { done = true; });
  engine_.RunUntilIdle();
  ASSERT_TRUE(done);
  done = false;
  svm_.EnsureResident(addr, 2 * kPage2M, MemKind::kNvme, [&] { done = true; });
  engine_.RunUntilIdle();
  ASSERT_TRUE(done);
  EXPECT_EQ(nvme.allocated_bytes(), 2 * kPage2M);
  svm_.ReadVirtual(addr, back.data(), back.size());
  EXPECT_EQ(back, data);
}

TEST_F(SvmTest, MigratePagesChargesOneTransferPerSourceTier) {
  const uint64_t addr = host_.Allocate(4 * kPage2M, memsys::AllocKind::kHuge2M);
  svm_.RegisterHostBuffer(addr, 4 * kPage2M);
  std::vector<uint8_t> data(4 * kPage2M);
  sim::Rng rng(9);
  rng.FillBytes(data.data(), data.size());
  svm_.WriteVirtual(addr, data.data(), data.size());

  // Pre-place pages 0-1 on the card (hooks not yet armed: placement is free).
  bool placed = false;
  svm_.EnsureResident(addr, 2 * kPage2M, MemKind::kCard, [&] { placed = true; });
  engine_.RunUntilIdle();
  ASSERT_TRUE(placed);

  struct Transfer {
    MemKind from;
    MemKind to;
    uint64_t bytes;
  };
  std::vector<Transfer> transfers;
  Svm::MigrationHooks hooks;
  hooks.transfer = [&](MemKind from, MemKind to, uint64_t bytes, std::function<void()> cb) {
    transfers.push_back({from, to, bytes});
    engine_.ScheduleAfter(sim::Microseconds(1), std::move(cb));
  };
  svm_.set_hooks(std::move(hooks));

  // A wave spanning two source tiers (card pages 0-1, host pages 2-3) is
  // charged as exactly two bulk transfers, not four per-page callbacks.
  const uint64_t vp0 = addr / kPage2M;
  bool done = false;
  svm_.MigratePages({vp0, vp0 + 1, vp0 + 2, vp0 + 3}, MemKind::kGpu, [&] { done = true; });
  engine_.RunUntilIdle();
  ASSERT_TRUE(done);
  ASSERT_EQ(transfers.size(), 2u);
  EXPECT_EQ(transfers[0].from, MemKind::kHost);  // charged in MemKind order
  EXPECT_EQ(transfers[0].bytes, 2 * kPage2M);
  EXPECT_EQ(transfers[1].from, MemKind::kCard);
  EXPECT_EQ(transfers[1].bytes, 2 * kPage2M);
  EXPECT_EQ(svm_.migrations(), 6u);  // 2 placement + 4 wave

  // Pages already in the target are skipped: an all-resident wave charges
  // nothing and completes through the engine.
  transfers.clear();
  done = false;
  svm_.MigratePages({vp0, vp0 + 1}, MemKind::kGpu, [&] { done = true; });
  engine_.RunUntilIdle();
  ASSERT_TRUE(done);
  EXPECT_TRUE(transfers.empty());

  std::vector<uint8_t> back(data.size());
  svm_.ReadVirtual(addr, back.data(), back.size());
  EXPECT_EQ(back, data);
}

// Property: TLB geometry sweep — for any (entries, assoc, page), inserting N
// <= capacity distinct pages with unique set spread keeps them resident.
struct TlbGeometry {
  uint32_t entries;
  uint32_t assoc;
  uint64_t page;
};

class TlbGeometrySweep : public ::testing::TestWithParam<TlbGeometry> {};

TEST_P(TlbGeometrySweep, SequentialPagesUpToCapacityAllHit) {
  const TlbGeometry g = GetParam();
  Tlb tlb({.entries = g.entries, .associativity = g.assoc, .page_bytes = g.page});
  // Sequential pages spread perfectly across sets, so capacity is exact.
  for (uint64_t p = 0; p < g.entries; ++p) {
    tlb.Insert(p * g.page, {MemKind::kHost, p});
  }
  for (uint64_t p = 0; p < g.entries; ++p) {
    auto hit = tlb.Lookup(p * g.page);
    ASSERT_TRUE(hit.has_value()) << "page " << p;
    EXPECT_EQ(hit->addr, p);
  }
  EXPECT_EQ(tlb.evictions(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TlbGeometrySweep,
    ::testing::Values(TlbGeometry{16, 1, 4096}, TlbGeometry{64, 4, 4096},
                      TlbGeometry{1024, 4, 2ull << 20}, TlbGeometry{4096, 8, 2ull << 20},
                      TlbGeometry{32, 32, 1ull << 30},  // fully associative
                      TlbGeometry{128, 2, 1ull << 30}));

}  // namespace
}  // namespace mmu
}  // namespace coyote
