// Table 2: reconfiguration throughput of partial-reconfiguration ports.
//
// Streams a 32 MB partial bitstream through each controller model on the
// event engine and reports the achieved throughput. The legacy controllers
// (AXI HWICAP, PCAP, MCAP) are bound by single-word register writes; the
// Coyote v2 controller streams from host memory over a dedicated XDMA
// channel and saturates the raw ICAP bandwidth.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/fabric/reconfig_port.h"
#include "src/sim/engine.h"
#include "src/sim/link.h"

namespace coyote {
namespace {

struct PaperRow {
  fabric::ReconfigPortSpec spec;
  double paper_mbps;
};

void Run() {
  bench::PrintHeader("Reconfiguration throughput comparison", "Coyote v2 paper, Table 2");

  constexpr uint64_t kBitstreamBytes = 32ull << 20;
  const PaperRow rows[] = {
      {fabric::kAxiHwicap, 19.0},
      {fabric::kPcap, 128.0},
      {fabric::kMcap, 145.0},
      {fabric::kCoyoteIcap, 800.0},
  };

  bench::Row("%-18s %-12s %22s %18s", "Application", "Interface", "Measured [MB/s]",
             "Paper [MB/s]");
  bench::PrintRule();
  for (const PaperRow& row : rows) {
    // Drive the port as a bandwidth server on the engine: one "word" at a
    // time, which is exactly how these controllers ingest bitstreams.
    sim::Engine engine;
    fabric::ReconfigController ctrl(&engine, 12'000'000'000ull, row.spec);
    bool done = false;
    ctrl.ProgramAsync(kBitstreamBytes, [&done](bool) { done = true; });
    engine.RunUntilCondition([&done]() { return done; });
    const double mbps = sim::BandwidthMBps(kBitstreamBytes, engine.Now());
    bench::Row("%-18s %-12s %22.1f %18.0f", std::string(row.spec.name).c_str(),
               std::string(row.spec.interface).c_str(), mbps, row.paper_mbps);
  }
  bench::PrintRule();
  bench::Note("Shape check: Coyote v2 ICAP ~5.5x MCAP, ~42x AXI HWICAP (paper: 5.5x / 42x).");
}

}  // namespace
}  // namespace coyote

int main() {
  coyote::Run();
  return 0;
}
