// Cancellable timers on top of the event engine.
//
// Engine::ScheduleAfter is fire-and-forget: once an event is queued it will
// run, so any component that wants a *deadline* (fire only if something did
// NOT happen) has to build its own generation-counter machinery — the RoCE
// stack's retransmit timers do exactly that. The TimerWheel centralizes the
// pattern: it hands out handles, and a cancelled handle turns the queued
// engine event into a no-op. Watchdogs (runtime::Supervisor) and per-request
// deadlines (runtime::CThread) are the primary clients.
//
// Timers live in a slot pool indexed by the handle; a handle encodes
// (slot, generation) so Cancel and re-arm are O(1) — no map lookups, no
// allocation once the pool is warm. Cancelling frees the stored callback
// immediately; the already-queued engine event degrades to a generation-check
// no-op when it fires.
//
// Determinism: the wheel adds no ordering of its own — timers fire as plain
// engine events, so two timers armed for the same instant fire in the order
// they were armed (the engine's FIFO tie-break).

#ifndef SRC_SIM_TIMER_WHEEL_H_
#define SRC_SIM_TIMER_WHEEL_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/sim/callback.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace coyote {
namespace sim {

class TimerWheel {
 public:
  using TimerId = uint64_t;
  using Callback = InlineCallback;

  static constexpr TimerId kInvalidTimer = 0;

  explicit TimerWheel(Engine* engine) : engine_(engine) {}
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  // One-shot: fires once after `delay`, then the handle expires.
  TimerId ScheduleAfter(TimePs delay, Callback cb) {
    const uint32_t slot = AllocSlot();
    Slot& s = slots_[slot];
    s.periodic = false;
    s.period = 0;
    s.cb = std::move(cb);
    Arm(slot, s.generation, delay);
    return MakeId(slot, s.generation);
  }

  // Periodic: first fire after `period`, then every `period` until cancelled.
  TimerId SchedulePeriodic(TimePs period, Callback cb) {
    const uint32_t slot = AllocSlot();
    Slot& s = slots_[slot];
    s.periodic = true;
    s.period = period;
    // Periodic callbacks live behind a stable shared_ptr: a fire may pump the
    // engine (recovery code does), so the same timer can fire again while the
    // callback is still executing, and a callback may Cancel its own handle
    // mid-run. Each executor holds a reference, so the callable outlives every
    // in-flight invocation without a per-fire copy.
    s.periodic_cb = std::make_shared<Callback>(std::move(cb));
    Arm(slot, s.generation, period);
    return MakeId(slot, s.generation);
  }

  // Returns true if the timer was still pending (and is now disarmed). A
  // one-shot that already fired, or an unknown id, returns false. Safe to
  // call from inside the timer's own callback (stops a periodic timer).
  // O(1): bumps the slot generation, so the queued engine event no-ops.
  bool Cancel(TimerId id) {
    uint32_t slot, gen;
    if (!Decode(id, &slot, &gen) || !slots_[slot].armed || slots_[slot].generation != gen) {
      return false;
    }
    Disarm(slot);
    return true;
  }

  bool Pending(TimerId id) const {
    uint32_t slot, gen;
    return Decode(id, &slot, &gen) && slots_[slot].armed && slots_[slot].generation == gen;
  }
  size_t active() const { return armed_count_; }
  uint64_t fires() const { return fires_; }
  uint64_t cancelled_fires() const { return cancelled_fires_; }

 private:
  struct Slot {
    uint32_t generation = 0;
    bool armed = false;
    bool periodic = false;
    TimePs period = 0;
    Callback cb;                            // one-shot payload
    std::shared_ptr<Callback> periodic_cb;  // periodic payload (see SchedulePeriodic)
  };

  static TimerId MakeId(uint32_t slot, uint32_t gen) {
    // slot+1 keeps every valid id distinct from kInvalidTimer (0).
    return (static_cast<TimerId>(slot + 1) << 32) | gen;
  }
  bool Decode(TimerId id, uint32_t* slot, uint32_t* gen) const {
    const uint64_t hi = id >> 32;
    if (hi == 0 || hi > slots_.size()) {
      return false;
    }
    *slot = static_cast<uint32_t>(hi - 1);
    *gen = static_cast<uint32_t>(id & 0xFFFFFFFFu);
    return true;
  }

  uint32_t AllocSlot() {
    uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    slots_[slot].armed = true;
    ++armed_count_;
    return slot;
  }

  void Disarm(uint32_t slot) {
    Slot& s = slots_[slot];
    s.armed = false;
    ++s.generation;  // invalidates the handle and any queued engine event
    // Release captures now, not when the stale event fires. In-flight periodic
    // invocations keep their own reference to periodic_cb.
    s.cb = nullptr;
    s.periodic_cb.reset();
    free_slots_.push_back(slot);
    --armed_count_;
  }

  void Arm(uint32_t slot, uint32_t gen, TimePs delay) {
    engine_->ScheduleAfter(delay, [this, slot, gen] { Fire(slot, gen); });
  }

  void Fire(uint32_t slot, uint32_t gen) {
    Slot& s = slots_[slot];
    if (!s.armed || s.generation != gen) {
      // Cancelled (or slot recycled) between arm and fire: the engine event
      // outlives the handle and degrades to a no-op.
      ++cancelled_fires_;
      return;
    }
    ++fires_;
    if (s.periodic) {
      // Re-arm before running so the callback may Cancel() its own handle to
      // stop the cycle. Hold a reference for the invocation: the callback may
      // Cancel (dropping the slot's reference) or arm new timers (moving
      // slots_ under us) without invalidating the executing callable.
      Arm(slot, gen, s.period);
      const std::shared_ptr<Callback> keep = s.periodic_cb;
      (*keep)();
    } else {
      Callback cb = std::move(s.cb);
      Disarm(slot);
      cb();
    }
  }

  Engine* engine_;
  uint64_t fires_ = 0;
  uint64_t cancelled_fires_ = 0;
  size_t armed_count_ = 0;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
};

}  // namespace sim
}  // namespace coyote

#endif  // SRC_SIM_TIMER_WHEEL_H_
