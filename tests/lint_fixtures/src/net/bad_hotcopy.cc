// Fixture: by-value payload parameters on a packet hot path (src/net/...).
#include <cstdint>
#include <vector>

struct StreamPacket {
  std::vector<uint8_t> data;
};

void DeliverByValue(StreamPacket pkt);                       // line 9: flagged
void ForwardBytes(std::vector<uint8_t> bytes, int port);     // line 10: flagged
void MixedParams(int id, const StreamPacket header, int x);  // line 11: const-value still copies

// Borrowed and transferred payloads are fine.
void DeliverByRef(const StreamPacket& pkt);
void DeliverByMove(StreamPacket&& pkt);
void DeliverPtr(const StreamPacket* pkt);
void BytesByRef(const std::vector<uint8_t>& bytes);
StreamPacket MakePacket();                 // return type, not a parameter
std::vector<uint8_t> MakeBytes();          // return type, not a parameter

struct Frame {
  StreamPacket packet;             // member declaration, not a parameter
  std::vector<uint8_t> trailer;    // member declaration, not a parameter
};

void LocalsAreFine() {
  StreamPacket local;                      // local, not a parameter
  std::vector<uint8_t> buf(16, 0);         // local, not a parameter
  DeliverByRef(local);
  BytesByRef(buf);
  DeliverByMove(StreamPacket{});           // constructor call in an argument list
}

// A deliberate sink copy, annotated.
void SinkOwns(StreamPacket pkt);  // lint: hot-copy-ok
