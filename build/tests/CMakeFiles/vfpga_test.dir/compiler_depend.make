# Empty compiler generated dependencies file for vfpga_test.
# This may be replaced when dependencies are built.
