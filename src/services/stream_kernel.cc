#include "src/services/stream_kernel.h"

#include <algorithm>

#include "src/sim/fault.h"
#include "src/vfpga/checkpoint.h"

namespace coyote {
namespace services {

uint32_t StreamKernel::NumStreams() const {
  return port_ == Port::kHost ? region_->config().num_host_streams
                              : region_->config().num_net_streams;
}

axi::Stream& StreamKernel::In(uint32_t i) {
  return port_ == Port::kHost ? region_->host_in(i) : region_->net_in(i);
}

axi::Stream& StreamKernel::Out(uint32_t i) {
  return port_ == Port::kHost ? region_->host_out(i) : region_->net_out(i);
}

void StreamKernel::Attach(vfpga::Vfpga* region) {
  region_ = region;
  pipe_free_cycle_ = 0;
  // A freshly programmed bitstream starts healthy; the hang decision (if a
  // fault injector is wired) is drawn when the first data arrives.
  hang_decided_ = false;
  wedged_ = false;
  for (uint32_t i = 0; i < NumStreams(); ++i) {
    In(i).set_on_data([this, i]() { Pump(i); });
    // Drain anything already queued.
    Pump(i);
  }
}

void StreamKernel::Detach() {
  if (region_ != nullptr) {
    for (uint32_t i = 0; i < NumStreams(); ++i) {
      In(i).set_on_data(nullptr);
    }
    region_ = nullptr;
  }
}

void StreamKernel::SaveState(std::vector<uint8_t>* out) const {
  vfpga::ckpt::Writer w;
  w.U64(bytes_processed_);
  *out = std::move(w).Finish();
}

bool StreamKernel::RestoreState(const std::vector<uint8_t>& blob) {
  vfpga::ckpt::Reader r(blob);
  const uint64_t bytes = r.U64();
  if (!r.ok() || !r.AtEnd()) {
    return false;
  }
  bytes_processed_ = bytes;
  // Per-residency state stays reset: the restored kernel starts with an
  // empty pipe and a fresh hang draw (Attach already cleared them).
  return true;
}

void StreamKernel::Pump(uint32_t stream_index) {
  auto& in = In(stream_index);
  if (!in.Empty() && !hang_decided_) {
    hang_decided_ = true;
    sim::FaultInjector* injector = region_->fault_injector();
    if (injector != nullptr && injector->NextKernelHang()) {
      wedged_ = true;
    }
  }
  if (wedged_) {
    // Hung pipeline: input accumulates unconsumed, no beats retire, and the
    // client's transfer never completes — exactly the silent-stall signature
    // the Supervisor's watchdog exists to catch.
    return;
  }
  while (!in.Empty()) {
    auto pkt = in.Pop();
    const uint64_t n = pkt->data.size();
    bytes_processed_ += n;
    region_->RetireBeat(pkt->beats());

    // Service time on the shared pipe.
    const sim::Clock& clk = sim::kSystemClock;
    const uint64_t now_cycle = clk.PsToCycles(region_->engine()->Now());
    const uint64_t start = std::max(now_cycle, pipe_free_cycle_);
    const uint64_t busy = (n + timing_.bytes_per_cycle - 1) / timing_.bytes_per_cycle;
    pipe_free_cycle_ = start + busy;
    const uint64_t done_cycle = pipe_free_cycle_ + timing_.pipeline_depth;

    axi::StreamPacket out;
    out.data = Process(*pkt, stream_index);
    out.tid = pkt->tid;
    out.tdest = pkt->tdest;
    out.last = pkt->last;
    const sim::TimePs when = clk.CyclesToPs(done_cycle);
    // Capture the output stream (owned by the device, outlives the kernel)
    // rather than `this`: a pending completion must not dangle if the region
    // is reconfigured while data is in flight.
    axi::Stream* dst = &Out(stream_index);
    region_->engine()->ScheduleAt(when, [dst, out = std::move(out)]() mutable {
      dst->Push(std::move(out));
    });
  }
}

}  // namespace services
}  // namespace coyote
