// Unit tests for the AXI plumbing: streams, arbiter, credits, AXI4-Lite.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/axi/arbiter.h"
#include "src/axi/axi_lite.h"
#include "src/axi/credit.h"
#include "src/axi/stream.h"

namespace coyote {
namespace axi {
namespace {

StreamPacket MakePacket(size_t bytes, uint32_t tid = 0) {
  StreamPacket p;
  p.data.assign(bytes, static_cast<uint8_t>(tid));
  p.tid = tid;
  return p;
}

TEST(StreamTest, FifoOrderAndPayloadIntegrity) {
  Stream s;
  for (uint32_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(s.Push(MakePacket(100 + i, i)));
  }
  for (uint32_t i = 0; i < 10; ++i) {
    auto p = s.Pop();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->tid, i);
    EXPECT_EQ(p->data.size(), 100 + i);
    EXPECT_EQ(p->data[0], static_cast<uint8_t>(i));
  }
  EXPECT_FALSE(s.Pop().has_value());
}

TEST(StreamTest, CapacityEnforcedAndPushRejected) {
  Stream s(2);
  EXPECT_TRUE(s.Push(MakePacket(1)));
  EXPECT_TRUE(s.Push(MakePacket(1)));
  EXPECT_FALSE(s.CanPush());
  EXPECT_FALSE(s.Push(MakePacket(1)));
  EXPECT_EQ(s.size(), 2u);
  s.Pop();
  EXPECT_TRUE(s.CanPush());
}

TEST(StreamTest, CallbacksFireOnDataAndSpace) {
  Stream s(4);
  int data_events = 0, space_events = 0;
  s.set_on_data([&] { ++data_events; });
  s.set_on_space([&] { ++space_events; });
  s.Push(MakePacket(1));
  s.Push(MakePacket(1));
  EXPECT_EQ(data_events, 2);
  EXPECT_EQ(space_events, 0);
  s.Pop();
  EXPECT_EQ(space_events, 1);
}

TEST(StreamTest, BeatAccounting512BitBus) {
  StreamPacket p = MakePacket(64);
  EXPECT_EQ(p.beats(), 1u);
  p = MakePacket(65);
  EXPECT_EQ(p.beats(), 2u);
  p = MakePacket(4096);
  EXPECT_EQ(p.beats(), 64u);
  p = MakePacket(0);
  EXPECT_EQ(p.beats(), 0u);
}

TEST(StreamTest, StatisticsAccumulate) {
  Stream s;
  s.Push(MakePacket(100));
  s.Push(MakePacket(28));
  EXPECT_EQ(s.total_bytes(), 128u);
  EXPECT_EQ(s.total_packets(), 2u);
}

TEST(ArbiterTest, RoundRobinCyclesThroughReadyInputs) {
  RoundRobinArbiter arb(4);
  auto all_ready = [](size_t) { return true; };
  std::vector<size_t> grants;
  for (int i = 0; i < 8; ++i) {
    grants.push_back(*arb.Grant(all_ready));
  }
  EXPECT_EQ(grants, (std::vector<size_t>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(ArbiterTest, SkipsNotReadyInputs) {
  RoundRobinArbiter arb(4);
  auto odd_only = [](size_t i) { return i % 2 == 1; };
  EXPECT_EQ(*arb.Grant(odd_only), 1u);
  EXPECT_EQ(*arb.Grant(odd_only), 3u);
  EXPECT_EQ(*arb.Grant(odd_only), 1u);
}

TEST(ArbiterTest, NoReadyInputReturnsNullopt) {
  RoundRobinArbiter arb(3);
  EXPECT_FALSE(arb.Grant([](size_t) { return false; }).has_value());
  EXPECT_EQ(arb.grants(), 0u);
}

TEST(ArbiterTest, WorkConservingUnderAsymmetricLoad) {
  // One always-ready input must be granted every round even when others idle.
  RoundRobinArbiter arb(8);
  auto only_five = [](size_t i) { return i == 5; };
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(*arb.Grant(only_five), 5u);
  }
}

TEST(CreditTest, AcquireReleaseBalance) {
  CreditCounter c(4);
  EXPECT_TRUE(c.TryAcquire(3));
  EXPECT_EQ(c.available(), 1u);
  EXPECT_FALSE(c.TryAcquire(2));
  EXPECT_EQ(c.stalls(), 1u);
  c.Release(2);
  EXPECT_TRUE(c.TryAcquire(2));
  EXPECT_EQ(c.available(), 1u);
}

TEST(CreditTest, NoPartialAcquisition) {
  CreditCounter c(3);
  EXPECT_FALSE(c.TryAcquire(4));
  EXPECT_EQ(c.available(), 3u);  // untouched
}

TEST(CreditTest, WaitersWakeInFifoOrderOnRelease) {
  CreditCounter c(0);
  std::vector<int> woke;
  c.WaitForCredit([&] {
    if (c.TryAcquire()) {
      woke.push_back(1);
    }
  });
  c.WaitForCredit([&] {
    if (c.TryAcquire()) {
      woke.push_back(2);
    }
  });
  EXPECT_EQ(c.waiters(), 2u);
  c.Release(1);
  EXPECT_EQ(woke, (std::vector<int>{1}));
  c.Release(1);
  EXPECT_EQ(woke, (std::vector<int>{1, 2}));
}

TEST(AxiLiteTest, PlainReadWrite) {
  AxiLiteRegisterFile csr;
  csr.Write(3, 0xABCD);
  EXPECT_EQ(csr.Read(3), 0xABCDu);
  EXPECT_EQ(csr.Read(99), 0u);  // unwritten registers read as zero
  EXPECT_EQ(csr.writes(), 1u);
}

TEST(AxiLiteTest, WriteHookClaimsRegister) {
  AxiLiteRegisterFile csr;
  uint64_t doorbell_value = 0;
  csr.SetWriteHook(0, [&](uint32_t, uint64_t v) { doorbell_value = v; });
  csr.Write(0, 42);
  EXPECT_EQ(doorbell_value, 42u);
  EXPECT_EQ(csr.Read(0), 0u);  // hook did not store
}

TEST(AxiLiteTest, ReadHookAndPokePeek) {
  AxiLiteRegisterFile csr;
  csr.SetReadHook(7, [](uint32_t) { return 0x77ull; });
  EXPECT_EQ(csr.Read(7), 0x77u);
  csr.Poke(8, 0x88);
  EXPECT_EQ(csr.Peek(8), 0x88u);
}

// Property: for any interleaving of pushes/pops within capacity, the stream
// conserves bytes (total in == total out + resident).
class StreamConservation : public ::testing::TestWithParam<size_t> {};

TEST_P(StreamConservation, BytesConserved) {
  const size_t capacity = GetParam();
  Stream s(capacity);
  uint64_t pushed = 0, popped = 0;
  uint32_t seq = 0;
  for (int round = 0; round < 200; ++round) {
    if ((round * 7 + seq) % 3 != 0 && s.CanPush()) {
      const size_t n = (round % 64) + 1;
      ASSERT_TRUE(s.Push(MakePacket(n, seq++)));
      pushed += n;
    } else if (auto p = s.Pop()) {
      popped += p->data.size();
    }
  }
  uint64_t resident = 0;
  while (auto p = s.Pop()) {
    resident += p->data.size();
  }
  EXPECT_EQ(pushed, popped + resident);
}

INSTANTIATE_TEST_SUITE_P(Capacities, StreamConservation,
                         ::testing::Values(1, 2, 8, 64, 1024));

}  // namespace
}  // namespace axi
}  // namespace coyote
