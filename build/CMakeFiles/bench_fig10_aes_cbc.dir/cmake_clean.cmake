file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_aes_cbc.dir/bench/bench_fig10_aes_cbc.cc.o"
  "CMakeFiles/bench_fig10_aes_cbc.dir/bench/bench_fig10_aes_cbc.cc.o.d"
  "bench/bench_fig10_aes_cbc"
  "bench/bench_fig10_aes_cbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_aes_cbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
