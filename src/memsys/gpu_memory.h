// GPU memory target for the peer-DMA MMU extension.
//
// The paper highlights an external contribution that extended Coyote v2's
// MMU with GPU memory, enabling direct FPGA<->GPU data movement (§2.2,
// Requirement 1, refs [8]/[58]). We model the GPU as a third physical memory
// kind reachable over the same PCIe fabric: a flat store plus a bandwidth
// figure for the peer-to-peer path.

#ifndef SRC_MEMSYS_GPU_MEMORY_H_
#define SRC_MEMSYS_GPU_MEMORY_H_

#include <cstdint>

#include "src/memsys/sparse_memory.h"

namespace coyote {
namespace memsys {

class GpuMemory {
 public:
  struct Config {
    uint64_t capacity_bytes = 16ull << 30;
    // P2P over PCIe tops out below host DMA due to root-complex forwarding.
    uint64_t p2p_bandwidth_bps = 10'000'000'000ull;
  };

  GpuMemory() = default;
  explicit GpuMemory(const Config& config) : config_(config) {}

  uint64_t Allocate(uint64_t bytes) {
    const uint64_t addr = next_;
    next_ += (bytes + 255) & ~255ull;  // 256 B alignment, CUDA-style
    return addr;
  }

  SparseMemory& store() { return store_; }
  const SparseMemory& store() const { return store_; }
  const Config& config() const { return config_; }

 private:
  Config config_;
  SparseMemory store_;
  uint64_t next_ = 0;
};

}  // namespace memsys
}  // namespace coyote

#endif  // SRC_MEMSYS_GPU_MEMORY_H_
