# Empty compiler generated dependencies file for bench_fig10_aes_cbc.
# This may be replaced when dependencies are built.
