// Fixture: idiomatic clean code — ordered containers, point lookups into an
// unordered map, smart pointers. The linter must report nothing.
#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

uint64_t OrderedTraversal() {
  std::map<uint64_t, uint64_t> ordered;
  uint64_t sum = 0;
  for (const auto& [k, v] : ordered) {
    sum += v;
  }
  return sum;
}

uint64_t PointLookup(uint64_t key) {
  std::unordered_map<uint64_t, uint64_t> cache;
  auto it = cache.find(key);
  return it == cache.end() ? 0 : it->second;
}

std::unique_ptr<std::vector<uint8_t>> Owned() {
  return std::make_unique<std::vector<uint8_t>>(64);
}
