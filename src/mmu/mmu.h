// Per-vFPGA memory management unit.
//
// Hybrid design (paper §6.1): a hardware TLB answers hits in one system
// cycle; misses fall back to the host-side driver over PCIe (a page-fault
// interrupt + ioctl round trip), which installs the translation and resumes
// the access. One MMU instance exists per vFPGA, giving memory isolation
// between tenants (§7.2).

#ifndef SRC_MMU_MMU_H_
#define SRC_MMU_MMU_H_

#include <cstdint>
#include <functional>

#include "src/mmu/page_table.h"
#include "src/mmu/tlb.h"
#include "src/sim/clock.h"
#include "src/sim/engine.h"
#include "src/sim/fault.h"

namespace coyote {
namespace mmu {

class Mmu {
 public:
  struct Config {
    Tlb::Config tlb;
    // One 250 MHz cycle for an SRAM TLB hit.
    sim::TimePs hit_latency = sim::kSystemClock.CyclesToPs(1);
    // TLB miss -> driver: MSI-X + kernel handler + BAR write back. Dominated
    // by the interrupt path, a few microseconds on a tuned system.
    sim::TimePs miss_latency = sim::Microseconds(4);
  };

  using TranslateCallback = std::function<void(std::optional<PhysPage>)>;

  Mmu(sim::Engine* engine, PageTable* page_table, const Config& config)
      : engine_(engine), page_table_(page_table), config_(config), tlb_(config.tlb) {}

  // Asynchronously translates `vaddr`. On a TLB hit the callback fires after
  // the hit latency; on a miss, after the driver-fallback latency (and the
  // translation is cached). A nullopt result is an unresolved page fault —
  // no mapping exists — which the caller escalates (the data mover raises a
  // page-fault interrupt and triggers allocation/migration).
  void Translate(uint64_t vaddr, TranslateCallback cb) {
    if (injector_ != nullptr && injector_->NextForcedTlbMiss()) {
      // Fault injection: evict the entry so this translation takes the full
      // driver-fallback path (a TLB-miss storm under chaos testing).
      tlb_.Invalidate(vaddr);
    }
    if (auto hit = tlb_.Lookup(vaddr)) {
      engine_->ScheduleAfter(config_.hit_latency,
                             [cb = std::move(cb), page = *hit]() { cb(page); });
      return;
    }
    ++driver_fallbacks_;
    if (profiler_ != nullptr) {
      profiler_->OnTlbMiss(vaddr);
    }
    engine_->ScheduleAfter(config_.miss_latency, [this, vaddr, cb = std::move(cb)]() {
      auto entry = page_table_->Find(vaddr);
      if (entry) {
        tlb_.Insert(vaddr, *entry);
      } else {
        ++page_faults_;
      }
      cb(entry);
    });
  }

  // Synchronous variant for callers outside the timed data path (driver
  // bookkeeping, tests). Does not touch the TLB.
  std::optional<PhysPage> TranslateUntimed(uint64_t vaddr) const {
    return page_table_->Find(vaddr);
  }

  void InvalidateTlb(uint64_t vaddr) { tlb_.Invalidate(vaddr); }
  void InvalidateTlbAll() { tlb_.InvalidateAll(); }

  void SetFaultInjector(sim::FaultInjector* injector) { injector_ = injector; }

  // Attaches the tiering profiler; TLB misses are the hardware-side signal
  // of its heat model (faults are where placement is costing time).
  void set_profiler(TierProfileSink* profiler) { profiler_ = profiler; }

  Tlb& tlb() { return tlb_; }
  const Tlb& tlb() const { return tlb_; }
  PageTable* page_table() { return page_table_; }
  const Config& config() const { return config_; }
  uint64_t driver_fallbacks() const { return driver_fallbacks_; }
  uint64_t page_faults() const { return page_faults_; }

 private:
  sim::Engine* engine_;
  PageTable* page_table_;
  Config config_;
  Tlb tlb_;
  sim::FaultInjector* injector_ = nullptr;
  TierProfileSink* profiler_ = nullptr;
  uint64_t driver_fallbacks_ = 0;
  uint64_t page_faults_ = 0;
};

}  // namespace mmu
}  // namespace coyote

#endif  // SRC_MMU_MMU_H_
