// BALBOA: RoCE v2 RDMA stack (paper §6.2).
//
// Reliable-connection RDMA over the switched network: WRITE / READ / SEND
// verbs, MTU segmentation, PSN sequencing, cumulative ACKs and go-back-N
// retransmission. The data plane is integrated with Coyote v2's shared
// virtual memory: payloads are read from and written to Svm virtual
// addresses, translated by the same machinery the vFPGAs use, so RDMA
// operates on virtual addresses end to end — exactly the property the paper
// highlights.

#ifndef SRC_NET_ROCE_H_
#define SRC_NET_ROCE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/axi/stream.h"
#include "src/sim/access_guard.h"
#include "src/mmu/svm.h"
#include "src/net/network.h"
#include "src/net/packets.h"
#include "src/sim/engine.h"

namespace coyote {
namespace sim {
class FaultInjector;
}  // namespace sim
namespace net {

class RoceStack {
 public:
  // QP lifecycle, modeled on the IB verbs state machine (collapsed to the
  // states this stack distinguishes): a QP is created in kInit, Connect()
  // moves it to kReadyToSend, and retry-budget exhaustion moves it to
  // kError. In kError every posted WR completes immediately with ok=false
  // (no silent drops); ResetQp() returns the QP to kInit, after which both
  // endpoints re-Connect() — the driver-mediated re-init handshake.
  enum class QpState : uint8_t { kInit, kReadyToSend, kError };

  struct Config {
    uint32_t mtu = 4096;
    sim::TimePs stack_latency = sim::Nanoseconds(350);  // per-frame processing
    sim::TimePs ack_timeout = sim::Microseconds(100);
    uint32_t ack_interval = 16;  // receiver acks at least every N data frames
    // Retry budget: after this many consecutive unanswered timeouts on a QP,
    // outstanding work completes with ok=false instead of retrying forever.
    uint32_t max_retries = 8;
    // The retransmit timeout doubles on every consecutive timeout (exponential
    // backoff) up to this cap; any ACK or read-response progress resets it.
    sim::TimePs max_ack_timeout = sim::Milliseconds(3);
  };

  using Completion = std::function<void(bool ok)>;
  // Called when an inbound SEND message completes, with its payload. The
  // stack moves the assembled message into the handler (ownership transfer,
  // not a copy).
  using RecvHandler = std::function<void(std::vector<uint8_t> data)>;  // lint: hot-copy-ok
  // Called when an inbound RDMA WRITE message completes (vaddr, bytes).
  using WriteArrivalHandler = std::function<void(uint64_t vaddr, uint64_t bytes)>;
  // Sniffer tap: every frame entering (is_tx=false) or leaving (true) the
  // stack at the CMAC boundary. The view shares the wire frame's storage;
  // a tap that retains it (the sniffer does) retains it without copying.
  using Tap = std::function<void(const axi::BufferView& frame, bool is_tx)>;

  RoceStack(sim::Engine* engine, Network* network, uint32_t ip, mmu::Svm* svm)
      : RoceStack(engine, network, ip, svm, Config{}) {}
  RoceStack(sim::Engine* engine, Network* network, uint32_t ip, mmu::Svm* svm, Config config);

  uint32_t ip() const { return ip_; }

  // --- Queue pair management -------------------------------------------------
  uint32_t CreateQp();
  void Connect(uint32_t local_qpn, uint32_t remote_ip, uint32_t remote_qpn);

  // Error recovery: clears all requester and responder state (SQ, reorder
  // cursors, PSNs restart at 0) and returns the QP to kInit. Application
  // handlers (recv / write-arrival) survive the reset. Both endpoints must
  // ResetQp + Connect for the pair to be usable again. Returns false for an
  // unknown QPN.
  bool ResetQp(uint32_t qpn);
  QpState qp_state(uint32_t qpn) const;

  // Chaos hookup: when set, every posted WR draws a wedge decision; a wedged
  // QP's transmit path silently eats frames until the retry budget trips it
  // into kError. Null disables injection.
  void SetFaultInjector(sim::FaultInjector* injector) { injector_ = injector; }

  // Declares which shard's engine owns this stack's QP state in a sharded
  // run. All verbs and rx processing must then run on that shard; a posting
  // from another shard's callback is a reported ShardViolation (route it
  // through ShardedEngine::Post onto the owning shard instead).
  void BindShard(sim::ShardId shard) { qp_guard_.BindShard(shard); }

  // --- Verbs -------------------------------------------------------------------
  void PostWrite(uint32_t qpn, uint64_t local_vaddr, uint64_t remote_vaddr, uint64_t bytes,
                 Completion done);
  void PostRead(uint32_t qpn, uint64_t local_vaddr, uint64_t remote_vaddr, uint64_t bytes,
                Completion done);
  void PostSend(uint32_t qpn, uint64_t local_vaddr, uint64_t bytes, Completion done);

  void SetRecvHandler(uint32_t qpn, RecvHandler handler);
  void SetWriteArrivalHandler(uint32_t qpn, WriteArrivalHandler handler);
  void SetTap(Tap tap) { tap_ = std::move(tap); }

  // On-path offload (paper §6.2): the network data flow is routed through
  // the vFPGAs, enabling custom processing like a SmartNIC/DPU. When set,
  // inbound RDMA WRITE payloads are pushed into `to_kernel` (a vFPGA net_in
  // stream) and the transformed packets popped from `from_kernel` (net_out)
  // are what actually commits to memory. The transform must preserve packet
  // count and order (sizes may match 1:1, as with decryption).
  void SetInboundOffload(axi::Stream* to_kernel, axi::Stream* from_kernel);

  // --- Statistics ---------------------------------------------------------------
  uint64_t tx_frames() const { return tx_frames_; }
  uint64_t rx_frames() const { return rx_frames_; }
  uint64_t rx_malformed() const { return rx_malformed_; }
  uint64_t retransmitted_frames() const { return retransmitted_frames_; }
  uint64_t timeouts() const { return timeouts_; }
  uint64_t backoff_events() const { return backoff_events_; }
  uint64_t retries_exhausted() const { return retries_exhausted_; }
  uint64_t error_completions() const { return error_completions_; }
  uint64_t payload_bytes_sent() const { return payload_bytes_sent_; }
  uint64_t qps_wedged() const { return qps_wedged_; }
  uint64_t qp_resets() const { return qp_resets_; }
  uint64_t wedged_tx_dropped() const { return wedged_tx_dropped_; }
  const Config& config() const { return config_; }

 private:
  struct ReadCtx {
    uint64_t local_vaddr = 0;
    uint64_t bytes = 0;
    uint32_t first_psn = 0;
    uint32_t last_psn = 0;
    uint64_t received = 0;
    std::vector<bool> got;  // per-response dedup (duplicates after timeout)
    Completion done;
  };

  // Go-back-N window entry. The payload is a slice of the posted message's
  // buffer, so tracking a frame for retransmit shares bytes instead of
  // duplicating every in-flight payload.
  struct PendingFrame {
    FrameMeta meta;
    axi::BufferView payload;
  };

  struct Qp {
    uint32_t local_qpn = 0;
    uint32_t remote_qpn = 0;
    uint32_t remote_ip = 0;
    QpState state = QpState::kInit;
    bool wedged = false;  // injected tx black hole (chaos)

    // Requester state.
    uint32_t send_psn = 0;
    std::map<uint32_t, PendingFrame> unacked;        // psn -> frame (go-back-N)
    std::map<uint32_t, Completion> completions;      // last psn of msg -> cb
    std::vector<ReadCtx> reads;                      // outstanding reads
    uint64_t timer_generation = 0;
    sim::TimePs cur_timeout = 0;          // 0 = use config ack_timeout
    uint32_t consecutive_timeouts = 0;    // resets on any forward progress

    // Responder state.
    uint32_t expected_psn = 0;
    uint64_t write_cursor_vaddr = 0;   // in-progress inbound WRITE
    uint64_t write_msg_start = 0;
    uint64_t write_msg_bytes = 0;
    std::vector<uint8_t> recv_accum;   // in-progress inbound SEND
    uint32_t frames_since_ack = 0;

    RecvHandler recv_handler;
    WriteArrivalHandler write_arrival_handler;
  };

  void TransmitFrame(Qp& qp, const FrameMeta& meta, const axi::BufferView& payload,
                     bool track_for_retransmit);
  void OnRxFrame(axi::BufferView frame);
  void HandleDataFrame(Qp& qp, const ParsedFrame& f);
  void HandleAck(Qp& qp, const ParsedFrame& f);
  void HandleReadResponse(Qp& qp, const ParsedFrame& f);
  void HandleReadRequest(Qp& qp, const ParsedFrame& f);
  void SendAck(Qp& qp, uint32_t psn);
  void ArmRetransmitTimer(uint32_t qpn);
  void RetransmitUnacked(Qp& qp);
  void FailQp(Qp& qp);
  void NoteProgress(Qp& qp);
  void MaybeWedge(Qp& qp);
  // True if the WR may proceed; otherwise schedules an error completion.
  bool AdmitPost(Qp& qp, Completion& done);
  FrameMeta BaseMeta(const Qp& qp) const;
  void PumpOffloadCommits();

  sim::Engine* engine_;
  Network* network_;
  uint32_t ip_;
  uint32_t port_id_;
  mmu::Svm* svm_;
  Config config_;

  std::map<uint32_t, Qp> qps_;
  // One guard covers all QP state: requester/responder cursors, unacked
  // windows, completion maps. Fine-grained-per-QP adds nothing — the race we
  // care about is "two actors inside this stack in one epoch".
  sim::AccessGuard qp_guard_{"roce.qpstate"};
  uint32_t next_qpn_ = 0x11;
  Tap tap_;
  sim::FaultInjector* injector_ = nullptr;

  // On-path offload state: FIFO of pending commits matching the packets fed
  // into the offload kernel.
  struct OffloadCommit {
    uint32_t qpn = 0;
    uint64_t vaddr = 0;
    bool msg_last = false;
    uint64_t msg_start = 0;
    uint64_t msg_bytes = 0;
  };
  axi::Stream* offload_to_kernel_ = nullptr;
  axi::Stream* offload_from_kernel_ = nullptr;
  std::deque<OffloadCommit> offload_commits_;

  uint64_t tx_frames_ = 0;
  uint64_t rx_frames_ = 0;
  uint64_t rx_malformed_ = 0;
  uint64_t retransmitted_frames_ = 0;
  uint64_t timeouts_ = 0;
  uint64_t backoff_events_ = 0;
  uint64_t retries_exhausted_ = 0;
  uint64_t error_completions_ = 0;
  uint64_t payload_bytes_sent_ = 0;
  uint64_t qps_wedged_ = 0;
  uint64_t qp_resets_ = 0;
  uint64_t wedged_tx_dropped_ = 0;
};

}  // namespace net
}  // namespace coyote

#endif  // SRC_NET_ROCE_H_
