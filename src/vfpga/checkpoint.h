// Checkpointable vFPGA state: the wire format and the region capture API.
//
// A kernel-state checkpoint is what lets an orchestrator move a tenant
// between nodes (Funky-style cloud-native FPGA orchestration) or context-
// switch more tenants than regions (SYNERGY): everything the region will not
// reproduce on its own — CSR contents, retired-beat counter, and the
// kernel's private state blob — serialized deterministically so two
// same-seed runs produce bit-identical checkpoint bytes.
//
// Wire format (little-endian, see DESIGN.md "Checkpoint wire format"):
//
//   u32 magic 'C''Y''K''1'   u16 version   u16 flags
//   <payload sections written by the owner via Writer>
//   u32 crc32                 (IEEE 802.3, over everything before it)
//
// The Writer/Reader pair is deliberately dumb: fixed-width integers and
// length-prefixed byte strings only, no varints, no padding, no host-order
// leaks. A Reader validates the magic/version on Open and the CRC before
// handing out a single field, so a truncated or bit-flipped checkpoint is
// rejected as a whole rather than half-applied.

#ifndef SRC_VFPGA_CHECKPOINT_H_
#define SRC_VFPGA_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace coyote {
namespace vfpga {

class Vfpga;

namespace ckpt {

inline constexpr uint32_t kMagic = 0x314B5943u;  // "CYK1"
inline constexpr uint16_t kVersion = 1;

// CRC-32 (IEEE 802.3, reflected, init/final 0xFFFFFFFF).
uint32_t Crc32(const uint8_t* data, size_t len);

class Writer {
 public:
  // Starts a checkpoint stream: magic + version + flags header.
  explicit Writer(uint16_t flags = 0);

  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  // Length-prefixed (u32) byte string.
  void Bytes(const uint8_t* data, size_t len);
  void Bytes(const std::vector<uint8_t>& data) { Bytes(data.data(), data.size()); }
  void Str(const std::string& s);

  size_t size() const { return buf_.size(); }

  // Appends the CRC trailer and returns the finished checkpoint. The writer
  // is consumed; further appends are invalid.
  std::vector<uint8_t> Finish() &&;

 private:
  // lint: guard-ok stack-local serialization buffer: a Writer is built, filled and finished within one context, never shared
  std::vector<uint8_t> buf_;
};

class Reader {
 public:
  // Validates magic, version and the CRC trailer; ok() is false (and every
  // read returns zero/empty) when the blob is malformed or corrupt.
  explicit Reader(const std::vector<uint8_t>& blob);

  bool ok() const { return ok_; }
  uint16_t flags() const { return flags_; }

  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  uint64_t U64();
  std::vector<uint8_t> Bytes();
  std::string Str();

  // True when every payload byte has been consumed (trailer excluded).
  bool AtEnd() const { return ok_ && pos_ == end_; }

 private:
  bool Need(size_t n);

  const uint8_t* data_ = nullptr;
  size_t pos_ = 0;
  size_t end_ = 0;  // payload end (start of the CRC trailer)
  uint16_t flags_ = 0;
  bool ok_ = false;
};

}  // namespace ckpt

// Everything a region will not reproduce on its own after a reprogram:
// the resident kernel's name (so the restorer can instantiate it), the CSR
// file, the heartbeat counter and the kernel's private state blob. Captured
// deterministically (CSR indices ascending).
struct RegionSnapshot {
  std::string kernel_name;  // empty: no kernel resident
  std::vector<std::pair<uint32_t, uint64_t>> csr;  // ascending index
  uint64_t beats_retired = 0;
  std::vector<uint8_t> kernel_state;  // HwKernel::SaveState blob

  bool operator==(const RegionSnapshot&) const = default;

  // Serialized payload section (no header/CRC — embed into a Writer).
  void AppendTo(ckpt::Writer* w) const;
  // Reads the section back; returns false (leaving *this unspecified) on a
  // malformed stream.
  bool ParseFrom(ckpt::Reader* r);
};

// Captures the region's restorable state. The kernel, if any, contributes
// its SaveState blob. Safe on a quiesced region (no in-flight streams).
RegionSnapshot CaptureRegion(Vfpga& region);

// Applies a snapshot to a region whose kernel has already been instantiated
// (LoadKernel with a kernel matching snapshot.kernel_name — partial
// reconfiguration is the caller's job; this restores the *state*). Returns
// false when the resident kernel mismatches the snapshot or the kernel
// rejects its state blob.
bool RestoreRegion(Vfpga& region, const RegionSnapshot& snapshot);

}  // namespace vfpga
}  // namespace coyote

#endif  // SRC_VFPGA_CHECKPOINT_H_
