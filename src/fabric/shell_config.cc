#include "src/fabric/shell_config.h"

namespace coyote {
namespace fabric {

std::string_view ServiceName(Service s) {
  switch (s) {
    case Service::kHostStream:
      return "host-stream";
    case Service::kCardMemory:
      return "card-memory";
    case Service::kRdma:
      return "rdma";
    case Service::kTcp:
      return "tcp";
    case Service::kSniffer:
      return "sniffer";
    case Service::kGpuDma:
      return "gpu-dma";
    case Service::kStorage:
      return "storage";
  }
  return "unknown";
}

}  // namespace fabric
}  // namespace coyote
