#include "src/vfpga/vfpga.h"

#include <string>

namespace coyote {
namespace vfpga {
namespace {

std::vector<std::unique_ptr<axi::Stream>> MakeStreams(uint32_t n, const std::string& prefix) {
  std::vector<std::unique_ptr<axi::Stream>> v;
  v.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    v.push_back(std::make_unique<axi::Stream>(std::numeric_limits<size_t>::max(),
                                              prefix + std::to_string(i)));
  }
  return v;
}

}  // namespace

Vfpga::Vfpga(sim::Engine* engine, uint32_t id, const Config& config)
    : engine_(engine), id_(id), config_(config) {
  const std::string p = "vfpga" + std::to_string(id) + ".";
  host_in_ = MakeStreams(config.num_host_streams, p + "host_in");
  host_out_ = MakeStreams(config.num_host_streams, p + "host_out");
  card_in_ = MakeStreams(config.num_card_streams, p + "card_in");
  card_out_ = MakeStreams(config.num_card_streams, p + "card_out");
  net_in_ = MakeStreams(config.num_net_streams, p + "net_in");
  net_out_ = MakeStreams(config.num_net_streams, p + "net_out");
}

void Vfpga::LoadKernel(std::unique_ptr<HwKernel> kernel) {
  UnloadKernel();
  kernel_ = std::move(kernel);
  if (kernel_) {
    kernel_->Attach(this);
  }
}

void Vfpga::UnloadKernel() {
  if (kernel_) {
    kernel_->Detach();
    kernel_.reset();
  }
}

size_t Vfpga::FlushStreams() {
  size_t dropped = 0;
  auto flush = [&dropped](std::vector<std::unique_ptr<axi::Stream>>& streams) {
    for (auto& s : streams) {
      dropped += s->Clear();
    }
  };
  flush(host_in_);
  flush(host_out_);
  flush(card_in_);
  flush(card_out_);
  flush(net_in_);
  flush(net_out_);
  return dropped;
}

}  // namespace vfpga
}  // namespace coyote
