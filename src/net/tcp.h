// TCP/IP offload stack.
//
// The second networking service Coyote v2 shells can instantiate (paper §2.2
// Requirement 1 names "switching from TCP/IP to RDMA" as the canonical
// service reconfiguration; the fpga-network-stack [53] provides both). This
// is a functional TCP over the simulated switched network: three-way
// handshake, MSS segmentation, cumulative ACKs, a fixed receive window,
// RTO-based go-back-N retransmission and FIN teardown. Payloads are real
// bytes read from / delivered out of the shared virtual memory, like the
// RDMA stack.

#ifndef SRC_NET_TCP_H_
#define SRC_NET_TCP_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "src/axi/buffer.h"
#include "src/mmu/svm.h"
#include "src/net/network.h"
#include "src/sim/access_guard.h"
#include "src/sim/engine.h"

namespace coyote {
namespace net {

// TCP header flags.
inline constexpr uint8_t kTcpFin = 0x01;
inline constexpr uint8_t kTcpSyn = 0x02;
inline constexpr uint8_t kTcpAck = 0x10;

struct TcpSegmentMeta {
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint8_t flags = 0;
  uint16_t window = 0;
};

// Ethernet/IPv4/TCP serialization (coexists with the RoCE frames on the same
// wire; classified by IP protocol number). Serialization copies the payload
// into the frame once; parsing slices the payload out zero-copy.
std::vector<uint8_t> BuildTcpSegment(const TcpSegmentMeta& meta,
                                     const axi::BufferView& payload);
struct ParsedTcpSegment {
  TcpSegmentMeta meta;
  axi::BufferView payload;  // shares the frame's storage
};
std::optional<ParsedTcpSegment> ParseTcpSegment(const axi::BufferView& frame);

class TcpStack {
 public:
  struct Config {
    uint32_t mss = 4096;
    uint32_t window_bytes = 256 * 1024;  // receive window advertised
    sim::TimePs stack_latency = sim::Nanoseconds(500);
    sim::TimePs rto = sim::Microseconds(200);
    // Parity with the RoCE stack's loss hardening: after this many
    // consecutive unanswered RTOs the connection aborts and every pending
    // operation completes with ok=false instead of retrying forever.
    uint32_t max_retries = 8;
    // The RTO doubles on every consecutive timeout up to this cap; any ACK
    // progress resets it.
    sim::TimePs max_rto = sim::Milliseconds(3);
  };

  using ConnId = uint32_t;
  using Completion = std::function<void(bool ok)>;
  using AcceptHandler = std::function<void(ConnId conn)>;
  using ConnectHandler = std::function<void(ConnId conn, bool ok)>;
  // The stack moves received bytes into the handler (ownership transfer).
  using RecvHandler = std::function<void(std::vector<uint8_t> data)>;  // lint: hot-copy-ok

  TcpStack(sim::Engine* engine, Network* network, uint32_t ip, mmu::Svm* svm)
      : TcpStack(engine, network, ip, svm, Config{}) {}
  TcpStack(sim::Engine* engine, Network* network, uint32_t ip, mmu::Svm* svm, Config config);

  uint32_t ip() const { return ip_; }

  // Passive open: accepted connections are announced through the handler.
  void Listen(uint16_t port, AcceptHandler on_accept);

  // Active open: performs the three-way handshake.
  void Connect(uint32_t remote_ip, uint16_t remote_port, ConnectHandler on_connected);

  // Stream send of `bytes` at virtual address `vaddr`. Completion fires when
  // every byte has been acknowledged by the peer.
  void Send(ConnId conn, uint64_t vaddr, uint64_t bytes, Completion done);

  // In-order received bytes are delivered through the handler (chunked at
  // segment granularity).
  void SetRecvHandler(ConnId conn, RecvHandler handler);

  // Graceful close (FIN). The connection is gone once the peer acks.
  void Close(ConnId conn);
  bool IsOpen(ConnId conn) const;

  uint64_t segments_sent() const { return segments_sent_; }
  uint64_t retransmitted_segments() const { return retransmitted_segments_; }
  uint64_t bytes_acked() const { return bytes_acked_; }
  uint64_t timeouts() const { return timeouts_; }
  uint64_t backoff_events() const { return backoff_events_; }
  uint64_t retries_exhausted() const { return retries_exhausted_; }
  uint64_t error_completions() const { return error_completions_; }
  const Config& config() const { return config_; }

 private:
  enum class State : uint8_t {
    kClosed,
    kSynSent,
    kSynReceived,
    kEstablished,
    kFinSent,
  };

  // Backlog / in-flight entry. The payload is a slice of the Send() call's
  // bulk read, so windowed and retransmit-held data shares one buffer.
  struct SendChunk {
    uint32_t seq = 0;
    axi::BufferView payload;
  };

  struct Connection {
    State state = State::kClosed;
    uint32_t remote_ip = 0;
    uint16_t remote_port = 0;
    uint16_t local_port = 0;

    uint32_t snd_nxt = 0;  // next sequence to send
    uint32_t snd_una = 0;  // oldest unacknowledged
    uint32_t rcv_nxt = 0;  // next expected from peer
    uint32_t peer_window = 0;

    std::deque<SendChunk> inflight;        // sent, unacked
    std::deque<SendChunk> backlog;         // queued beyond the window
    std::map<uint32_t, Completion> completions;  // end-seq -> cb
    uint64_t timer_generation = 0;
    sim::TimePs cur_rto = 0;            // 0 = use config rto
    uint32_t consecutive_timeouts = 0;  // resets on any ACK progress

    ConnectHandler on_connected;
    RecvHandler on_recv;
    Completion close_done;
    bool close_pending = false;  // Close() called with data still queued
  };

  void TransmitSegment(Connection& conn, uint8_t flags, uint32_t seq,
                       const axi::BufferView& payload);
  void PumpSendWindow(ConnId id);
  void OnRxFrame(axi::BufferView frame);
  void HandleSegment(ConnId id, const ParsedTcpSegment& seg);
  void ArmTimer(ConnId id);
  void NoteProgress(Connection& conn);
  // Retry budget exhausted: abort the connection, error-complete everything
  // pending (sends, deferred close, an unfinished handshake).
  void FailConnection(ConnId id);
  ConnId FindConnection(const TcpSegmentMeta& meta) const;

  sim::Engine* engine_;
  Network* network_;
  uint32_t ip_;
  uint32_t port_id_;
  mmu::Svm* svm_;
  Config config_;

  sim::AccessGuard guard_{"net.tcp"};
  std::map<ConnId, Connection> connections_;
  std::map<uint16_t, AcceptHandler> listeners_;
  ConnId next_conn_ = 1;
  uint16_t next_port_ = 0xC000;

  uint64_t segments_sent_ = 0;
  uint64_t retransmitted_segments_ = 0;
  uint64_t bytes_acked_ = 0;
  uint64_t timeouts_ = 0;
  uint64_t backoff_events_ = 0;
  uint64_t retries_exhausted_ = 0;
  uint64_t error_completions_ = 0;
};

}  // namespace net
}  // namespace coyote

#endif  // SRC_NET_TCP_H_
