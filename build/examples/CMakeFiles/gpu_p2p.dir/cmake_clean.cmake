file(REMOVE_RECURSE
  "CMakeFiles/gpu_p2p.dir/gpu_p2p.cpp.o"
  "CMakeFiles/gpu_p2p.dir/gpu_p2p.cpp.o.d"
  "gpu_p2p"
  "gpu_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
