// Micro-benchmarks of the functional cores (google-benchmark).
//
// These measure the host-side computational primitives the substrate uses —
// useful for keeping the simulator fast and for validating that functional
// models are not the bottleneck in the table/figure benches.

#include <benchmark/benchmark.h>

#include <array>
#include <vector>

#include "src/mmu/tlb.h"
#include "src/net/packets.h"
#include "src/services/aes.h"
#include "src/services/hll.h"
#include "src/services/nn.h"
#include "src/sim/engine.h"
#include "src/sim/rng.h"

namespace coyote {
namespace {

void BM_AesEncryptBlock(benchmark::State& state) {
  services::Aes128 aes(0x0123456789abcdefull, 0xfedcba9876543210ull);
  uint8_t in[16] = {0};
  uint8_t out[16];
  for (auto _ : state) {
    aes.EncryptBlock(in, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AesEncryptBlock);

void BM_AesEcbBuffer(benchmark::State& state) {
  services::Aes128 aes(1, 2);
  std::vector<uint8_t> buf(static_cast<size_t>(state.range(0)));
  sim::Rng rng(1);
  rng.FillBytes(buf.data(), buf.size());
  for (auto _ : state) {
    auto out = aes.EncryptEcb(buf);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_AesEcbBuffer)->Arg(4096)->Arg(65536);

void BM_HllAdd(benchmark::State& state) {
  services::HllSketch sketch(14);
  uint64_t x = 0;
  for (auto _ : state) {
    sketch.Add(++x);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HllAdd);

void BM_TlbLookupHit(benchmark::State& state) {
  mmu::Tlb tlb({.entries = 1024, .associativity = 4, .page_bytes = 2ull << 20});
  for (uint64_t i = 0; i < 512; ++i) {
    tlb.Insert(i * (2ull << 20), {mmu::MemKind::kHost, i});
  }
  uint64_t addr = 0;
  for (auto _ : state) {
    auto hit = tlb.Lookup(addr);
    benchmark::DoNotOptimize(hit);
    addr = (addr + (2ull << 20)) % (512ull * (2ull << 20));
  }
}
BENCHMARK(BM_TlbLookupHit);

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < 1000; ++i) {
      engine.ScheduleAfter(static_cast<sim::TimePs>(i), [] {});
    }
    engine.RunUntilIdle();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_EngineEventThroughput);

void BM_RoceFrameBuildParse(benchmark::State& state) {
  net::FrameMeta meta;
  meta.opcode = net::Opcode::kWriteOnly;
  meta.reth_vaddr = 0x1000;
  meta.reth_len = 4096;
  std::vector<uint8_t> payload(4096, 0xAB);
  for (auto _ : state) {
    auto frame = net::BuildFrame(meta, payload);
    auto parsed = net::ParseFrame(frame);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_RoceFrameBuildParse);

void BM_MlpForward(benchmark::State& state) {
  const services::MlpSpec spec = services::MakeIntrusionDetectionMlp();
  std::vector<int8_t> input(spec.input_dim(), 3);
  for (auto _ : state) {
    auto out = services::MlpForward(spec, input.data());
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MlpForward);

}  // namespace
}  // namespace coyote

BENCHMARK_MAIN();
