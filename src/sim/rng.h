// Deterministic pseudo-random number generation for workload synthesis.
//
// splitmix64 seeding + xoshiro256** core: fast, reproducible across platforms
// (no reliance on libstdc++ distribution internals), which keeps benchmark
// inputs byte-identical between runs and machines.

#ifndef SRC_SIM_RNG_H_
#define SRC_SIM_RNG_H_

#include <cstdint>

namespace coyote {
namespace sim {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5EED'C0'07E5ull) {
    // splitmix64 to expand the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound == 0 returns 0.
  uint64_t NextBounded(uint64_t bound) {
    if (bound == 0) {
      return 0;
    }
    // Rejection sampling to remove modulo bias.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  void FillBytes(void* dst, uint64_t len) {
    auto* p = static_cast<uint8_t*>(dst);
    while (len >= 8) {
      const uint64_t v = Next();
      for (int i = 0; i < 8; ++i) {
        p[i] = static_cast<uint8_t>(v >> (8 * i));
      }
      p += 8;
      len -= 8;
    }
    if (len > 0) {
      const uint64_t v = Next();
      for (uint64_t i = 0; i < len; ++i) {
        p[i] = static_cast<uint8_t>(v >> (8 * i));
      }
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace sim
}  // namespace coyote

#endif  // SRC_SIM_RNG_H_
