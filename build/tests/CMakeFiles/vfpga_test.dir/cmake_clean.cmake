file(REMOVE_RECURSE
  "CMakeFiles/vfpga_test.dir/vfpga_test.cc.o"
  "CMakeFiles/vfpga_test.dir/vfpga_test.cc.o.d"
  "vfpga_test"
  "vfpga_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfpga_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
