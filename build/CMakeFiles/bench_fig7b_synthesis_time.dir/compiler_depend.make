# Empty compiler generated dependencies file for bench_fig7b_synthesis_time.
# This may be replaced when dependencies are built.
