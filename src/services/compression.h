// Compression codecs + kernels.
//
// Requirement 1 of the paper names compression cores among the reusable
// services and "changing the compression algorithm" as a canonical service
// reconfiguration. Two real codecs are provided so that swap actually
// changes behaviour:
//
//   * RLE  — byte run-length encoding; tiny, fast, great on runs.
//   * LZ   — LZ77 with a hash-chain match finder and LZ4-style tokens
//            (literal runs + (offset, length) matches); general purpose.
//
// Both are lossless and verified by round-trip property tests. The kernels
// process stream packets independently (each packet is a self-contained
// compressed frame with a 4-byte original-size header), so they compose
// with the packetized data path.

#ifndef SRC_SERVICES_COMPRESSION_H_
#define SRC_SERVICES_COMPRESSION_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/fabric/resources.h"
#include "src/services/stream_kernel.h"

namespace coyote {
namespace services {

enum class Codec : uint8_t {
  kRle,
  kLz,
};

std::string_view CodecName(Codec codec);

// --- Raw codecs ---------------------------------------------------------------
std::vector<uint8_t> RleCompress(const std::vector<uint8_t>& input);
std::optional<std::vector<uint8_t>> RleDecompress(const std::vector<uint8_t>& input);

std::vector<uint8_t> LzCompress(const std::vector<uint8_t>& input);
std::optional<std::vector<uint8_t>> LzDecompress(const std::vector<uint8_t>& input);

std::vector<uint8_t> Compress(Codec codec, const std::vector<uint8_t>& input);
std::optional<std::vector<uint8_t>> Decompress(Codec codec, const std::vector<uint8_t>& input);

// --- Framed packet format (kernel I/O) -----------------------------------------
// [0..3] original size (LE) | [4] codec id | [5..] codec payload.
std::vector<uint8_t> CompressFramed(Codec codec, const std::vector<uint8_t>& input);
std::optional<std::vector<uint8_t>> DecompressFramed(const std::vector<uint8_t>& frame);

// --- Kernels --------------------------------------------------------------------
class CompressKernel : public StreamKernel {
 public:
  explicit CompressKernel(Codec codec)
      : StreamKernel({.bytes_per_cycle = 32, .pipeline_depth = 16}), codec_(codec) {}

  std::string_view name() const override {
    return codec_ == Codec::kRle ? "compress_rle" : "compress_lz";
  }
  fabric::ResourceVector resources() const override {
    // LZ needs the hash-chain window in BRAM; RLE is a counter.
    return codec_ == Codec::kRle ? fabric::ResourceVector{2'000, 3'200, 4, 0, 0}
                                 : fabric::ResourceVector{9'500, 14'000, 48, 0, 0};
  }

  uint64_t bytes_in() const { return in_; }
  uint64_t bytes_out() const { return out_; }

 protected:
  axi::BufferView Process(const axi::StreamPacket& in, uint32_t) override {
    ++frames_;
    in_ += in.data.size();
    auto frame = CompressFramed(codec_, in.data.ToVector());
    out_ += frame.size();
    return frame;
  }

 private:
  Codec codec_;
  uint64_t frames_ = 0;
  uint64_t in_ = 0;
  uint64_t out_ = 0;
};

class DecompressKernel : public StreamKernel {
 public:
  DecompressKernel() : StreamKernel({.bytes_per_cycle = 32, .pipeline_depth = 16}) {}

  std::string_view name() const override { return "decompress"; }
  fabric::ResourceVector resources() const override {
    return fabric::ResourceVector{7'800, 11'500, 40, 0, 0};
  }
  uint64_t corrupt_frames() const { return corrupt_frames_; }

 protected:
  axi::BufferView Process(const axi::StreamPacket& in, uint32_t) override {
    auto out = DecompressFramed(in.data.ToVector());
    if (!out) {
      ++corrupt_frames_;
      return {};  // swallow corrupt frames; real HW would raise an interrupt
    }
    return std::move(*out);
  }

 private:
  uint64_t corrupt_frames_ = 0;
};

}  // namespace services
}  // namespace coyote

#endif  // SRC_SERVICES_COMPRESSION_H_
