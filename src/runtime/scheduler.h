// Kernel scheduler for on-demand partial reconfiguration (paper §4, §9.6).
//
// Prior shells "trigger reconfiguration of specific applications as user
// requests arrive, based on some scheduling policy"; Coyote v2 keeps that
// ability for its vFPGA regions. This scheduler owns the application layer:
// clients submit requests naming a kernel bitstream plus the work to run;
// the scheduler places each request on a free vFPGA, reconfiguring the
// region when the resident kernel differs.
//
// Policies:
//   kFcfs     — first come, first served onto the first free region.
//   kPriority — highest priority first among queued requests.
//   kAffinity — prefer a free region that already holds the requested
//               kernel, avoiding the reconfiguration entirely (the paper's
//               daemon pattern: hot kernels stay resident).

#ifndef SRC_RUNTIME_SCHEDULER_H_
#define SRC_RUNTIME_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/runtime/cthread.h"  // OpStatus: typed failure completions
#include "src/runtime/device.h"
#include "src/sim/access_guard.h"
#include "src/sim/stats.h"

namespace coyote {
namespace runtime {

class KernelScheduler {
 public:
  enum class Policy : uint8_t {
    kFcfs,
    kPriority,
    kAffinity,
  };

  struct Request {
    std::string bitstream_path;  // kernel to run (app bitstream)
    uint32_t priority = 0;       // larger = more urgent (kPriority)
    uint32_t tenant = 0;         // accounting key for depth/fairness stats
    // Placement hint from the routing tier: try this region first when it is
    // eligible. -1 leaves placement entirely to the policy.
    int32_t region_hint = -1;
    // Serving-tier contract: only dispatch onto a region where the kernel is
    // already resident. When no eligible region holds it (e.g. the only
    // resident region just got quarantined mid-batch) the request fails fast
    // with a typed error instead of waiting on a reconfiguration that the
    // sharded fabric must never run inside a callback.
    bool require_resident = false;
    // The work: receives the assigned vFPGA id and a completion callback the
    // work must invoke when finished (frees the region).
    std::function<void(uint32_t vfpga_id, std::function<void()> done)> run;
    // Typed rejection: invoked (instead of run) when the scheduler cannot
    // execute the request — reconfiguration failure or a require_resident
    // request with no eligible resident region. Unset keeps the legacy
    // silent-drop behavior.
    std::function<void(OpStatus)> failed;
  };

  KernelScheduler(SimDevice* dev, Policy policy) : dev_(dev), policy_(policy) {
    region_state_.resize(dev->num_vfpgas());
    // Submit() records a host-actor write in the same epoch as the completion
    // path's scheduler-actor write when a synchronously-finishing request
    // completes inside the submit event. That pairing is deliberately ordered:
    // dispatch itself is deferred through ScheduleAfter(0), so the queue is
    // only ever drained in a fresh epoch.
    sim::AccessLedger::Global().DeclareOrdered(sim::kActorHost, sim::kActorScheduler);
  }

  // Enqueues the request; dispatch happens from the event loop (so a batch
  // of submissions is scheduled together, respecting the policy).
  void Submit(Request request) {
    queue_guard_.Write();
    ++submitted_;
    stats_.Increment("sched.submitted");
    stats_.Increment("sched.submitted.tenant" + std::to_string(request.tenant));
    ++tenant_depth_[request.tenant];
    depth_hist_.Add(queue_.size() + 1);
    queue_.push_back(std::move(request));
    Schedule();
  }

  // True when every submitted request has completed.
  bool Idle() const { return queue_.empty() && busy_regions_ == 0; }

  // --- Quarantine (supervision hooks) ----------------------------------------
  // A quarantined region is never picked for dispatch. The supervisor
  // quarantines a region before recovery and re-admits it after probation;
  // re-admission kicks the scheduler so queued work lands on it again.
  void SetQuarantined(uint32_t vfpga_id, bool quarantined);
  bool quarantined(uint32_t vfpga_id) const {
    return region_state_[vfpga_id].quarantined;
  }
  // The region was externally reset (recovery hot-swap): reap the hung
  // request so Idle() converges, and record what is now resident (empty =
  // nothing loaded). A stale completion from the reaped request is ignored.
  void NoteRegionReset(uint32_t vfpga_id, const std::string& resident_bitstream);

  // Declares which shard's engine owns this scheduler in a sharded run. A
  // completion or Submit() arriving from another shard's callback is then a
  // reported ShardViolation — the fix is to route it through
  // ShardedEngine::Post onto the owning shard.
  void BindShard(sim::ShardId shard) { queue_guard_.BindShard(shard); }

  uint64_t submitted() const { return submitted_; }
  uint64_t completed() const { return completed_; }
  uint64_t reconfigurations() const { return reconfigurations_; }
  uint64_t affinity_hits() const { return affinity_hits_; }
  uint64_t quarantine_events() const { return quarantine_events_; }
  uint64_t reaped_requests() const { return reaped_requests_; }
  uint64_t failed_requests() const { return failed_requests_; }

  // --- Observability (serving-tier admission inputs) --------------------------
  // Live queue depth for one tenant (requests enqueued, not yet dispatched).
  uint64_t tenant_depth(uint32_t tenant) const {
    auto it = tenant_depth_.find(tenant);
    return it == tenant_depth_.end() ? 0 : it->second;
  }
  uint32_t quarantined_regions() const {
    uint32_t n = 0;
    for (const RegionState& s : region_state_) {
      n += s.quarantined ? 1u : 0u;
    }
    return n;
  }
  // Monotonic event counters (per-tenant submits/dispatches, quarantine
  // transitions, failures) — the router reads these instead of poking
  // scheduler internals, and tests fingerprint them.
  const sim::CounterSet& stats() const { return stats_; }
  // Queue depth sampled at every Submit.
  const sim::Histogram& depth_histogram() const { return depth_hist_; }
  // Snapshot of the live gauges under "sched.*" keys (queue depth per
  // tenant, quarantined/busy region counts) merged into `out`.
  void ExportStats(sim::CounterSet* out) const {
    for (const auto& [tenant, depth] : tenant_depth_) {
      if (depth > 0) {
        out->Increment("sched.queue_depth.tenant" + std::to_string(tenant), depth);
      }
    }
    out->Increment("sched.quarantined_regions", quarantined_regions());
    out->Increment("sched.busy_regions", busy_regions_);
  }

 private:
  struct RegionState {
    bool busy = false;
    bool quarantined = false;
    // Bumped by NoteRegionReset; a completion whose epoch is stale belongs to
    // a reaped request and must not double-free the region.
    uint64_t epoch = 0;
    std::string resident_bitstream;  // empty: nothing loaded
  };

  void Schedule();
  void DoSchedule();
  size_t PickRequest();
  int PickRegion(const Request& request);
  void Dispatch(size_t request_index, uint32_t vfpga_id);
  // True when some non-quarantined region (busy or not) holds the kernel.
  bool ResidentAnywhereEligible(const std::string& bitstream) const;
  // Removes queue_[index] with a typed rejection (see Request::failed).
  void FailRequest(size_t index, OpStatus status, const char* why);
  void NoteDequeued(const Request& request);

  SimDevice* dev_;
  Policy policy_;
  std::vector<RegionState> region_state_;
  std::deque<Request> queue_;
  uint32_t busy_regions_ = 0;
  bool schedule_pending_ = false;
  bool dispatching_ = false;
  bool rerun_needed_ = false;

  sim::AccessGuard queue_guard_{"runtime.sched_queue"};
  uint64_t submitted_ = 0;
  uint64_t completed_ = 0;
  uint64_t reconfigurations_ = 0;
  uint64_t affinity_hits_ = 0;
  uint64_t quarantine_events_ = 0;
  uint64_t reaped_requests_ = 0;
  uint64_t failed_requests_ = 0;

  sim::CounterSet stats_;
  sim::Histogram depth_hist_;
  std::map<uint32_t, uint64_t> tenant_depth_;
};

}  // namespace runtime
}  // namespace coyote

#endif  // SRC_RUNTIME_SCHEDULER_H_
