
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig12_nn_inference.cc" "CMakeFiles/bench_fig12_nn_inference.dir/bench/bench_fig12_nn_inference.cc.o" "gcc" "CMakeFiles/bench_fig12_nn_inference.dir/bench/bench_fig12_nn_inference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hlscompat/CMakeFiles/coyote_hlscompat.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/coyote_services.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/coyote_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/vfpga/CMakeFiles/coyote_vfpga.dir/DependInfo.cmake"
  "/root/repo/build/src/dyn/CMakeFiles/coyote_dyn.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/coyote_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/coyote_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/memsys/CMakeFiles/coyote_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/coyote_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/coyote_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/coyote_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
