// Switched 100G network fabric.
//
// Connects simulated endpoints (Coyote FPGAs, commodity RDMA NICs) through a
// single switch: per-port TX and RX links at line rate plus a fixed
// store-and-forward/propagation latency. A drop filter supports fault
// injection for retransmission tests.

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <map>
#include <vector>

#include "src/axi/buffer.h"
#include "src/sim/access_guard.h"
#include "src/sim/engine.h"
#include "src/sim/fault.h"
#include "src/sim/link.h"
#include "src/sim/time.h"

namespace coyote {
namespace net {

class Network {
 public:
  struct Config {
    uint64_t link_bps = 12'500'000'000ull;  // 100 Gbit/s
    sim::TimePs switch_latency = sim::Nanoseconds(600);
  };

  // Frames travel as ref-counted views: a fan-out to N ports delivers the
  // same storage N times instead of copying it N times.
  using RxHandler = std::function<void(axi::BufferView frame)>;

  Network(sim::Engine* engine, const Config& config) : engine_(engine), config_(config) {}

  // Attaches an endpoint with address `ip`; frames destined to `ip` are
  // handed to `rx`. Returns the port id. Multiple ports may bind the same
  // IP (e.g., a device running both the RoCE and TCP stacks); each receives
  // a copy and filters by protocol.
  uint32_t AttachPort(uint32_t ip, RxHandler rx);

  // Transmits a frame from `src_port` to the port bound to `dst_ip`.
  // Unroutable frames are counted and dropped (like a real switch).
  void Transmit(uint32_t src_port, uint32_t dst_ip, axi::BufferView frame);

  // Fault injection: return true to drop this frame (called per frame with a
  // running index). Cleared by passing nullptr.
  void SetDropFilter(std::function<bool(uint64_t frame_index)> filter) {
    drop_filter_ = std::move(filter);
  }

  // Schedulable fault injection: the injector decides per frame whether to
  // drop, corrupt, duplicate or delay it, and whether either endpoint is
  // inside a node-outage window. Not owned; may be nullptr.
  void SetFaultInjector(sim::FaultInjector* injector) { injector_ = injector; }

  // Fastest possible node-to-node traversal of this fabric: a minimum-size
  // (64 B) frame serialized on the sender's TX link, the fixed switch
  // latency, then serialization on the receiver's RX link. No frame can
  // arrive sooner, so a node-partitioned sharded simulation may use this as
  // its conservative lookahead (ShardedEngine::Config::lookahead) without
  // changing any observable ordering. Fault-injected *extra* delay only
  // lengthens traversals, so it never invalidates the bound.
  sim::TimePs MinCrossNodeLatencyPs() const {
    return config_.switch_latency + 2 * sim::TransferTime(64, config_.link_bps);
  }

  // Declares which shard's engine drives this network. All ports of one
  // Network must live on one shard (a fabric spanning shards would need its
  // traffic routed through the sharded engine's mailboxes instead); with the
  // guard bound, a foreign shard calling Transmit() is reported
  // deterministically rather than corrupting switch counters silently.
  void BindShard(sim::ShardId shard) { switch_guard_.BindShard(shard); }

  uint64_t frames_delivered() const { return frames_delivered_; }
  uint64_t frames_dropped() const { return frames_dropped_; }
  uint64_t frames_corrupted() const { return frames_corrupted_; }
  uint64_t frames_duplicated() const { return frames_duplicated_; }
  uint64_t frames_delayed() const { return frames_delayed_; }
  uint64_t bytes_delivered() const { return bytes_delivered_; }
  const Config& config() const { return config_; }

 private:
  struct Port {
    uint32_t ip = 0;
    RxHandler rx;
    std::unique_ptr<sim::Link> tx_link;
    std::unique_ptr<sim::Link> rx_link;
  };

  sim::Engine* engine_;
  Config config_;
  std::vector<Port> ports_;
  // Ordered multimap: Transmit() fans a frame out to every port bound to the
  // destination IP by iterating equal_range, and delivery order must be the
  // stable attach order for bit-exact replay (multimap preserves insertion
  // order among equal keys; unordered_multimap does not).
  std::multimap<uint32_t, uint32_t> ip_to_port_;
  std::function<bool(uint64_t)> drop_filter_;
  // Shard-ownership probe only: the switch's same-shard reentrancy (tx link
  // -> switch hop -> rx link all bump shared counters) is ordered by the
  // single engine driving it, so full actor tracking would be noise.
  sim::AccessGuard switch_guard_{"net.switch"};
  sim::FaultInjector* injector_ = nullptr;
  uint64_t frame_counter_ = 0;
  uint64_t frames_delivered_ = 0;
  uint64_t frames_dropped_ = 0;
  uint64_t frames_corrupted_ = 0;
  uint64_t frames_duplicated_ = 0;
  uint64_t frames_delayed_ = 0;
  uint64_t bytes_delivered_ = 0;
};

}  // namespace net
}  // namespace coyote

#endif  // SRC_NET_NETWORK_H_
