// Simulated Coyote v2 device: the card plus its driver.
//
// Owns the full substrate stack — event engine, host/card/GPU memory, shared
// virtual memory, XDMA, the dynamic-layer data mover, writeback engine,
// reconfiguration controller, vFPGAs, and optional services (RoCE stack,
// traffic sniffer) — and wires them together exactly like the shell does:
//
//   static layer    = XdmaCore + ReconfigController + MSI-X dispatch
//   dynamic layer   = DataMover (packetizer/interleaver/crediter) + MMUs +
//                     CardMemory + RoceStack + TrafficSniffer
//   app layer       = N Vfpga regions
//
// The host-facing API (cThread, cRcnfg) lives on top of this class the same
// way Coyote v2's user library sits on the character device.

#ifndef SRC_RUNTIME_DEVICE_H_
#define SRC_RUNTIME_DEVICE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/dyn/data_mover.h"
#include "src/dyn/writeback.h"
#include "src/dyn/xdma.h"
#include "src/fabric/bitstream.h"
#include "src/fabric/floorplan.h"
#include "src/fabric/part.h"
#include "src/fabric/reconfig_port.h"
#include "src/fabric/shell_config.h"
#include "src/memsys/card_memory.h"
#include "src/memsys/gpu_memory.h"
#include "src/memsys/host_memory.h"
#include "src/memsys/nvme.h"
#include "src/mmu/mmu.h"
#include "src/mmu/svm.h"
#include "src/mmu/tiering.h"
#include "src/net/network.h"
#include "src/net/roce.h"
#include "src/net/sniffer.h"
#include "src/net/tcp.h"
#include "src/sim/engine.h"
#include "src/sim/timer_wheel.h"
#include "src/vfpga/vfpga.h"

namespace coyote {
namespace runtime {

class Supervisor;

class SimDevice {
 public:
  struct Config {
    fabric::FpgaPart part = fabric::kAlveoU55C;
    fabric::ShellConfigDesc shell;  // initial shell configuration
    vfpga::Vfpga::Config vfpga;
    dyn::DataMover::Config data_mover;
    dyn::XdmaCore::Config xdma;
    // num_channels == 0 (the default here) means "use the part's geometry";
    // set it explicitly to sweep channel counts (Fig. 7(a)).
    memsys::CardMemory::Config card{.num_channels = 0};

    // Software/driver path latencies.
    sim::TimePs invoke_latency = sim::Microseconds(5);  // doorbell -> DMA start
    sim::TimePs ioctl_latency = sim::Microseconds(10);  // reconfig etc.
    // Bitstream staging (Table 3 total-vs-kernel split).
    uint64_t disk_read_bps = 90'000'000ull;
    uint64_t kernel_copy_bps = 6'000'000'000ull;

    // ICAP programming attempts before a reconfiguration is reported failed
    // (a fault injector can abort individual attempts).
    uint32_t reconfig_max_retries = 3;

    // Default per-operation deadline for cThread invokes. 0 disables the
    // deadline (legacy behavior: a lost completion stalls Wait() forever).
    // When set, an op that has not retired by Invoke-time + deadline is
    // force-completed with OpStatus::kDeadlineExceeded and the supervisor
    // (if attached) is notified.
    sim::TimePs default_op_deadline = 0;

    // Coyote v1 compatibility mode (baseline for Fig. 11): single host
    // stream, no service reconfiguration.
    bool v1_compat = false;

    // External network: IP of this device's 100G port.
    uint32_t ip = 0x0A000001;  // 10.0.0.1
  };

  // `network` may be nullptr when the shell has no networking service.
  // `shared_engine` lets multiple devices (and the network) share one event
  // engine for distributed experiments; by default the device owns one.
  SimDevice(const Config& config, net::Network* network = nullptr,
            sim::Engine* shared_engine = nullptr);
  ~SimDevice();

  SimDevice(const SimDevice&) = delete;
  SimDevice& operator=(const SimDevice&) = delete;

  // --- Component access ------------------------------------------------------
  sim::Engine& engine() { return *engine_; }
  memsys::HostMemory& host_memory() { return host_; }
  memsys::CardMemory& card_memory() { return *card_; }
  memsys::GpuMemory& gpu_memory() { return gpu_; }
  mmu::Svm& svm() { return svm_; }
  dyn::XdmaCore& xdma() { return *xdma_; }
  dyn::DataMover& data_mover() { return *mover_; }
  dyn::WritebackEngine& writeback() { return *writeback_; }
  vfpga::Vfpga& vfpga(uint32_t id) { return *vfpgas_.at(id); }
  mmu::Mmu& vfpga_mmu(uint32_t id) { return *mmus_.at(id); }
  uint32_t num_vfpgas() const { return static_cast<uint32_t>(vfpgas_.size()); }
  net::RoceStack* roce() { return roce_.get(); }
  net::TcpStack* tcp() { return tcp_.get(); }
  net::TrafficSniffer* sniffer() { return sniffer_.get(); }
  // The NVMe drive is an external device: its contents persist across shell
  // reconfigurations, but the FPGA can only reach it while the active shell
  // provides the storage service (nullptr otherwise).
  memsys::NvmeDrive* nvme() {
    return active_shell_.HasService(fabric::Service::kStorage) ? &nvme_drive_ : nullptr;
  }
  memsys::NvmeDrive& nvme_drive() { return nvme_drive_; }

  // --- Memory tiering service (ROADMAP item 4) -------------------------------
  // Creates the profiling + policy layer over the device's SVM, attaches its
  // profiler to the Svm and every vFPGA MMU, and starts epoch sampling.
  // Calling again replaces the previous service (fresh heat state). The tick
  // reschedules itself, so drain-style callers must Stop() it first; WaitFor
  // (condition-based) is unaffected.
  mmu::Tiering& EnableTiering(const mmu::Tiering::Config& tiering_config);
  // nullptr until EnableTiering.
  mmu::Tiering* tiering() { return tiering_.get(); }
  const fabric::Floorplan& floorplan() const { return floorplan_; }
  fabric::ReconfigController& reconfig_controller() { return *reconfig_; }
  const fabric::ShellConfigDesc& active_shell() const { return active_shell_; }
  const Config& config() const { return config_; }

  // --- Kernel registry ---------------------------------------------------------
  // Bitstream names ("app:<kernel>") resolve to kernel instances through this
  // registry when a region is reconfigured.
  using KernelFactory = std::function<std::unique_ptr<vfpga::HwKernel>()>;
  void RegisterKernelFactory(const std::string& name, KernelFactory factory);

  // --- Bitstream "filesystem" ----------------------------------------------------
  void WriteBitstreamFile(const std::string& path, const fabric::PartialBitstream& bs);
  const fabric::PartialBitstream* FindBitstreamFile(const std::string& path) const;

  // --- Reconfiguration (driver side; cRcnfg calls these) --------------------------
  struct ReconfigResult {
    bool ok = false;
    std::string error;
    sim::TimePs kernel_latency = 0;  // pure ICAP programming
    sim::TimePs total_latency = 0;   // + disk read + copy + driver overhead
    uint32_t attempts = 0;           // ICAP programming attempts consumed
    bool used_fallback = false;      // cRcnfg fell back to a secondary bitstream
  };
  // Synchronous from the caller's perspective: advances the engine.
  ReconfigResult ReconfigureShell(const std::string& bitstream_path);
  ReconfigResult ReconfigureApp(const std::string& bitstream_path, uint32_t vfpga_id);

  // --- Interrupt dispatch (driver -> user space eventfd) ---------------------------
  using UserInterruptCallback = std::function<void(uint32_t vfpga_id, uint64_t value)>;
  void SetUserInterruptCallback(UserInterruptCallback cb) { user_irq_cb_ = std::move(cb); }
  uint64_t page_fault_interrupts() const { return page_faults_seen_; }
  uint64_t reconfig_interrupts() const { return reconfigs_seen_; }

  // Runs the engine until `done` returns true (host-side blocking wait).
  bool WaitFor(const std::function<bool()>& done) { return engine_->RunUntilCondition(done); }

  // Wires a fault injector into every fault-capable component of the device
  // (ICAP controller, XDMA links, per-vFPGA MMUs, vFPGA kernels, the RoCE
  // stack). Not owned; call with nullptr to detach. The injector is
  // remembered so services recreated by a shell reconfiguration are rewired.
  void AttachFaultInjector(sim::FaultInjector* injector);

  // Cancellable timers shared by the runtime layer (cThread op deadlines,
  // supervisor watchdogs).
  sim::TimerWheel& timers() { return timers_; }

  // Supervision hook: when a supervisor is attached, cThread deadline misses
  // are reported to it so the watchdog can treat them as early hang evidence.
  void SetSupervisor(Supervisor* supervisor) { supervisor_ = supervisor; }
  Supervisor* supervisor() { return supervisor_; }
  void NotifyOpDeadline(uint32_t vfpga_id);

  // Driver-side cThread id allocation (one id space per vFPGA).
  uint32_t AllocateCtid(uint32_t vfpga_id) { return next_ctid_[vfpga_id]++; }

  // --- Shell status registers (BAR-mapped monitoring, §5.1) -------------------
  // The shell exposes live counters through the control BAR, the way the real
  // shell memory-maps TLB/network/interrupt registers. Offsets below; per-
  // vFPGA registers are at base + vfpga_id * kStatusStride.
  static constexpr uint32_t kStatusH2cBytes = 0x100;
  static constexpr uint32_t kStatusC2hBytes = 0x101;
  static constexpr uint32_t kStatusPacketsMoved = 0x102;
  static constexpr uint32_t kStatusPageFaults = 0x103;
  static constexpr uint32_t kStatusWritebacks = 0x104;
  static constexpr uint32_t kStatusMsixRaised = 0x105;
  static constexpr uint32_t kStatusMigrations = 0x106;
  static constexpr uint32_t kStatusVfpgaBase = 0x200;  // + id * stride
  static constexpr uint32_t kStatusStride = 0x10;
  static constexpr uint32_t kStatusTlbHits = 0;      // per-vFPGA offsets
  static constexpr uint32_t kStatusTlbMisses = 1;
  static constexpr uint32_t kStatusUserIrqs = 2;
  static constexpr uint32_t kStatusSendsPosted = 3;

 private:
  void BuildShellServices();
  void TearDownShellServices();
  ReconfigResult StageAndProgram(const fabric::PartialBitstream& bs);
  std::unique_ptr<vfpga::HwKernel> MakeKernelFor(const std::string& bitstream_name);

  Config config_;
  std::unique_ptr<sim::Engine> owned_engine_;
  sim::Engine* engine_;  // == owned_engine_.get() unless shared
  sim::TimerWheel timers_{engine_};
  fabric::Floorplan floorplan_;

  memsys::HostMemory host_;
  std::unique_ptr<memsys::CardMemory> card_;
  memsys::GpuMemory gpu_;
  mmu::Svm svm_;
  memsys::NvmeDrive nvme_drive_;

  std::unique_ptr<dyn::XdmaCore> xdma_;
  std::unique_ptr<dyn::DataMover> mover_;
  std::unique_ptr<dyn::WritebackEngine> writeback_;
  std::unique_ptr<fabric::ReconfigController> reconfig_;

  std::vector<std::unique_ptr<vfpga::Vfpga>> vfpgas_;
  std::vector<std::unique_ptr<mmu::Mmu>> mmus_;
  std::unique_ptr<mmu::Tiering> tiering_;

  net::Network* network_ = nullptr;
  std::unique_ptr<net::RoceStack> roce_;
  std::unique_ptr<net::TcpStack> tcp_;
  std::unique_ptr<net::TrafficSniffer> sniffer_;

  fabric::ShellConfigDesc active_shell_;
  std::map<std::string, KernelFactory> kernel_factories_;
  std::map<std::string, fabric::PartialBitstream> bitstream_files_;

  UserInterruptCallback user_irq_cb_;
  uint64_t page_faults_seen_ = 0;
  uint64_t reconfigs_seen_ = 0;
  std::map<uint32_t, uint32_t> next_ctid_;

  sim::FaultInjector* injector_ = nullptr;  // not owned
  Supervisor* supervisor_ = nullptr;        // not owned
};

}  // namespace runtime
}  // namespace coyote

#endif  // SRC_RUNTIME_DEVICE_H_
