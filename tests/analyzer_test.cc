// Tests for the coyote-verify interprocedural analyzer (tools/coyote_analyze).
//
// Three layers: seeded fixture files (tests/analyzer_fixtures/, excluded from
// the repo-wide walk) prove each rule class fires *through* helper frames and
// reports the correct call-chain trace; a golden clean-repo test pins the
// repo-wide report the analyze_repo gate and CI artifact rely on; in-memory
// sources exercise the index cache (round-trip, stale-entry invalidation) and
// primitive-site suppressions.

#include "tools/coyote_analyze/analyze.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/coyote_frontend/frontend.h"

namespace coyote {
namespace analyze {
namespace {

#ifndef ANALYZER_FIXTURE_DIR
#error "ANALYZER_FIXTURE_DIR must be defined by the build"
#endif
#ifndef PROJECT_SOURCE_DIR
#error "PROJECT_SOURCE_DIR must be defined by the build"
#endif

std::vector<Finding> AnalyzeFixture(const std::string& name) {
  const Index index = IndexPaths(ANALYZER_FIXTURE_DIR, {name}, "");
  return Analyze(index, Options{});
}

const Finding* FindAtLine(const std::vector<Finding>& findings, const std::string& rule,
                          uint32_t line) {
  for (const Finding& f : findings) {
    if (f.rule == rule && f.line == line) {
      return &f;
    }
  }
  return nullptr;
}

bool AnyAtLine(const std::vector<Finding>& findings, uint32_t line) {
  return std::any_of(findings.begin(), findings.end(),
                     [line](const Finding& f) { return f.line == line; });
}

bool ChainContains(const Finding& f, const std::string& needle) {
  return f.ChainString().find(needle) != std::string::npos;
}

// --- Rule fixtures: detection with correct interprocedural traces -----------

TEST(AnalyzerFixtures, BlockingViaHelperIsTracedThreeFramesDeep) {
  const auto findings = AnalyzeFixture("blocking_via_helper.cc");
  const Finding* f = FindAtLine(findings, "callback-blocking", 15);
  ASSERT_NE(f, nullptr) << FormatReport(findings);
  EXPECT_NE(f->message.find("'sleep_for()' blocks"), std::string::npos) << f->message;
  // callback root lambda -> Commit -> FlushToDisk -> sleep_for: four links.
  ASSERT_EQ(f->chain.size(), 4u) << f->ChainString();
  EXPECT_NE(f->chain[0].find("callback root"), std::string::npos) << f->chain[0];
  EXPECT_NE(f->chain[0].find("lambda@25"), std::string::npos) << f->chain[0];
  EXPECT_NE(f->chain[1].find("Commit"), std::string::npos) << f->chain[1];
  EXPECT_NE(f->chain[2].find("FlushToDisk"), std::string::npos) << f->chain[2];
  EXPECT_NE(f->chain[3].find("sleep_for"), std::string::npos) << f->chain[3];
}

TEST(AnalyzerFixtures, NondetIsFoundThreeCallsDeep) {
  const auto findings = AnalyzeFixture("nondet_two_deep.cc");
  const Finding* rand_f = FindAtLine(findings, "sim-nondet", 22);
  ASSERT_NE(rand_f, nullptr) << FormatReport(findings);
  EXPECT_NE(rand_f->message.find("'rand()' nondeterministic call"), std::string::npos)
      << rand_f->message;
  // lambda -> Draw -> Reseed -> rand(): the primitive is three calls from the
  // root, which is exactly what a line-at-a-time lint cannot see.
  EXPECT_TRUE(ChainContains(*rand_f, "Draw")) << rand_f->ChainString();
  EXPECT_TRUE(ChainContains(*rand_f, "Reseed")) << rand_f->ChainString();

  const Finding* iter_f = FindAtLine(findings, "sim-nondet", 15);
  ASSERT_NE(iter_f, nullptr) << FormatReport(findings);
  EXPECT_NE(iter_f->message.find("unordered container 'table_'"), std::string::npos)
      << iter_f->message;
  EXPECT_TRUE(ChainContains(*iter_f, "Sum")) << iter_f->ChainString();
}

TEST(AnalyzerFixtures, UnguardedStateInventoryChecksGuardsAndReasons) {
  const auto findings = AnalyzeFixture("unguarded_state.cc");
  // FlowTable registers no guard: flagged.
  const Finding* unguarded = FindAtLine(findings, "guard-state", 12);
  ASSERT_NE(unguarded, nullptr) << FormatReport(findings);
  EXPECT_NE(unguarded->message.find("FlowTable::rows_"), std::string::npos)
      << unguarded->message;
  EXPECT_NE(unguarded->message.find("registers no sim::AccessGuard"), std::string::npos)
      << unguarded->message;
  EXPECT_TRUE(ChainContains(*unguarded, "Record")) << unguarded->ChainString();
  // ScratchPad suppresses without a reason: still flagged, asking for one.
  const Finding* no_reason = FindAtLine(findings, "guard-state", 20);
  ASSERT_NE(no_reason, nullptr) << FormatReport(findings);
  EXPECT_NE(no_reason->message.find("requires a reason"), std::string::npos)
      << no_reason->message;
  // AuditLog suppresses with a written reason: clean.
  EXPECT_FALSE(AnyAtLine(findings, 29)) << FormatReport(findings);
}

TEST(AnalyzerFixtures, CrossShardDirectAccessFlaggedMailboxAllowed) {
  const auto findings = AnalyzeFixture("cross_shard.cc");
  const Finding* shard_f = FindAtLine(findings, "cross-shard", 18);
  ASSERT_NE(shard_f, nullptr) << FormatReport(findings);
  EXPECT_NE(shard_f->message.find("'.shard()'"), std::string::npos) << shard_f->message;
  EXPECT_TRUE(ChainContains(*shard_f, "StealWork")) << shard_f->ChainString();
  const Finding* schedule_on_f = FindAtLine(findings, "cross-shard", 22);
  ASSERT_NE(schedule_on_f, nullptr) << FormatReport(findings);
  EXPECT_TRUE(ChainContains(*schedule_on_f, "MirrorEvent")) << schedule_on_f->ChainString();
  // ForwardEvent goes through Post — the sanctioned mailbox path stays clean.
  EXPECT_FALSE(AnyAtLine(findings, 26)) << FormatReport(findings);
}

TEST(AnalyzerFixtures, OrchestratorContextGuardsStateMapsAndMailboxOnly) {
  const auto findings = AnalyzeFixture("orchestrator_ctx.cc");
  // The bolt-on ledger mutates from the heartbeat callback with no guard.
  const Finding* ledger = FindAtLine(findings, "guard-state", 54);
  ASSERT_NE(ledger, nullptr) << FormatReport(findings);
  EXPECT_NE(ledger->message.find("EvacLedger::pending_"), std::string::npos)
      << ledger->message;
  EXPECT_TRUE(ChainContains(*ledger, "ArmControlPlane")) << ledger->ChainString();
  EXPECT_TRUE(ChainContains(*ledger, "Record")) << ledger->ChainString();
  // The rebalance helper bypasses the mailbox with .shard().
  const Finding* drain = FindAtLine(findings, "cross-shard", 63);
  ASSERT_NE(drain, nullptr) << FormatReport(findings);
  EXPECT_TRUE(ChainContains(*drain, "Drain")) << drain->ChainString();
  // The control plane's own state maps register an AccessGuard member: both
  // handler mutations are clean, as is the sanctioned Post forward.
  EXPECT_FALSE(AnyAtLine(findings, 37)) << FormatReport(findings);
  EXPECT_FALSE(AnyAtLine(findings, 41)) << FormatReport(findings);
  EXPECT_FALSE(AnyAtLine(findings, 67)) << FormatReport(findings);
  EXPECT_EQ(findings.size(), 2u) << FormatReport(findings);
}

TEST(AnalyzerFixtures, TieringContextFlagsUnguardedHeatSamplerOnly) {
  const auto findings = AnalyzeFixture("tiering_ctx.cc");
  // The bolt-on sampler mutates from the epoch-tick callback with no guard.
  const Finding* sampler = FindAtLine(findings, "guard-state", 47);
  ASSERT_NE(sampler, nullptr) << FormatReport(findings);
  EXPECT_NE(sampler->message.find("HeatSampler::samples_"), std::string::npos)
      << sampler->message;
  EXPECT_TRUE(ChainContains(*sampler, "ArmTiering")) << sampler->ChainString();
  EXPECT_TRUE(ChainContains(*sampler, "Sample")) << sampler->ChainString();
  // The tiering service's own heat-table mutations are covered by its
  // registered AccessGuard: both the access-stream and decay writes are clean.
  EXPECT_FALSE(AnyAtLine(findings, 29)) << FormatReport(findings);
  EXPECT_FALSE(AnyAtLine(findings, 34)) << FormatReport(findings);
  EXPECT_EQ(findings.size(), 1u) << FormatReport(findings);
}

// --- Golden clean reports ---------------------------------------------------

TEST(AnalyzerFixtures, CleanFixtureProducesTheGoldenEmptyReport) {
  const auto findings = AnalyzeFixture("clean.cc");
  EXPECT_EQ(FormatReport(findings), "coyote_analyze: 0 findings\n");
}

TEST(AnalyzerRepo, WholeRepoSrcIsCleanAndReportIsStable) {
  // The same walk the analyze_repo ctest gate and the CI artifact use. Every
  // real violation in src/ is either fixed or carries a reasoned suppression,
  // so the repo-wide report is byte-stable: the golden empty report.
  const auto files = frontend::CollectFiles(PROJECT_SOURCE_DIR, {"src"});
  ASSERT_FALSE(files.empty());
  const Index index = IndexPaths(PROJECT_SOURCE_DIR, files, "");
  const auto findings = Analyze(index, Options{});
  EXPECT_EQ(FormatReport(findings), "coyote_analyze: 0 findings\n") << FormatReport(findings);
}

// --- Index cache ------------------------------------------------------------

const char kSinkDecl[] =
    "class E {\n public:\n  void ScheduleAt(long when, void (*fn)());\n};\n";

TEST(AnalyzerIndexCache, RoundTripPreservesFindings) {
  const std::vector<SourceFile> files = {
      {"alpha.cc", std::string(kSinkDecl) + "void Arm(E& e) { e.ScheduleAt(1, [] { usleep(5); }); }\n"}};
  const Index built = BuildIndex(files);
  const auto before = Analyze(built, Options{});
  ASSERT_EQ(before.size(), 1u) << FormatReport(before);
  EXPECT_EQ(before[0].rule, "callback-blocking");

  const std::string path = ::testing::TempDir() + "coyote_analyze_cache_test.index";
  ASSERT_TRUE(SaveIndex(built, path));
  Index loaded;
  ASSERT_TRUE(LoadIndex(path, &loaded));
  const auto after = Analyze(loaded, Options{});
  EXPECT_EQ(FormatReport(after), FormatReport(before));
}

TEST(AnalyzerIndexCache, StaleEntriesAreReindexedUnchangedOnesReused) {
  const std::vector<SourceFile> files = {
      {"alpha.cc", std::string(kSinkDecl) + "void Arm(E& e) { e.ScheduleAt(1, [] { usleep(5); }); }\n"}};
  const Index built = BuildIndex(files);

  // Unchanged content: the cached FileIndex is reused verbatim.
  const Index reused = BuildIndexCached(files, built);
  EXPECT_EQ(FormatReport(Analyze(reused, Options{})),
            FormatReport(Analyze(built, Options{})));

  // Changed content (the blocking call is gone): the stale entry must be
  // re-indexed, not served from the cache.
  const std::vector<SourceFile> edited = {
      {"alpha.cc", std::string(kSinkDecl) + "void Arm(E& e) { e.ScheduleAt(1, [] { Step(); }); }\nvoid Step();\n"}};
  const Index refreshed = BuildIndexCached(edited, built);
  EXPECT_EQ(FormatReport(Analyze(refreshed, Options{})), "coyote_analyze: 0 findings\n");
}

TEST(AnalyzerIndexCache, LoadRejectsMissingAndMalformedCaches) {
  Index out;
  EXPECT_FALSE(LoadIndex(::testing::TempDir() + "does_not_exist.index", &out));
  const std::string path = ::testing::TempDir() + "coyote_analyze_malformed.index";
  {
    FILE* fp = fopen(path.c_str(), "w");
    ASSERT_NE(fp, nullptr);
    fputs("not-an-index v999\n", fp);
    fclose(fp);
  }
  EXPECT_FALSE(LoadIndex(path, &out));
}

// --- Suppressions at the primitive site -------------------------------------

TEST(AnalyzerSuppression, PrimitiveSiteTagSilencesTheWholeChain) {
  const std::vector<SourceFile> files = {
      {"alpha.cc", std::string(kSinkDecl) +
                       "void Helper() {\n"
                       "  usleep(5);  // lint: callback-blocking-ok boot-time settle\n"
                       "}\n"
                       "void Arm(E& e) { e.ScheduleAt(1, [] { Helper(); }); }\n"}};
  const auto findings = Analyze(BuildIndex(files), Options{});
  EXPECT_TRUE(findings.empty()) << FormatReport(findings);
}

TEST(AnalyzerSuppression, RuleFilterRunsOnlySelectedRules) {
  const std::vector<SourceFile> files = {
      {"alpha.cc", std::string(kSinkDecl) +
                       "void Arm(E& e) { e.ScheduleAt(1, [] { usleep(5); rand(); }); }\n"}};
  const Index index = BuildIndex(files);
  Options only_nondet;
  only_nondet.rules = {"sim-nondet"};
  const auto findings = Analyze(index, only_nondet);
  ASSERT_EQ(findings.size(), 1u) << FormatReport(findings);
  EXPECT_EQ(findings[0].rule, "sim-nondet");
}

TEST(AnalyzerRules, AllFourRulesAreRegisteredWithSuppressions) {
  std::vector<std::string> ids;
  for (const RuleInfo& r : Rules()) {
    ids.push_back(r.id);
    EXPECT_FALSE(r.suppression.empty()) << r.id;
  }
  const std::vector<std::string> expected = {"callback-blocking", "sim-nondet", "cross-shard",
                                             "guard-state"};
  for (const std::string& id : expected) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), id), ids.end()) << id;
  }
}

}  // namespace
}  // namespace analyze
}  // namespace coyote
