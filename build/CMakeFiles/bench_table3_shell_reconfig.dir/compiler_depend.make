# Empty compiler generated dependencies file for bench_table3_shell_reconfig.
# This may be replaced when dependencies are built.
