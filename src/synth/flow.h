// Nested build flows (paper §4, §9.2).
//
// Two ways to produce bitstreams:
//
//  * SHELL FLOW — synthesize, place and route the dynamic layer (services)
//    and all user applications together against the locked static-layer
//    checkpoint. Produces the shell bitstream plus per-vFPGA app bitstreams.
//
//  * APP FLOW — synthesize, place and route only one user application and
//    link it against a previously routed-and-locked shell. The router still
//    loads and legalizes the full shell context, so the saving is the service
//    synthesis plus part of P&R — the paper measures 15–20%.
//
// The time model charges per-module synthesis cost and congestion- and
// utilization-dependent place & route cost. Constants are calibrated so the
// three configurations of Fig. 7(b) land at realistic absolute times and the
// app-flow saving falls in the measured band.

#ifndef SRC_SYNTH_FLOW_H_
#define SRC_SYNTH_FLOW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fabric/bitstream.h"
#include "src/fabric/floorplan.h"
#include "src/fabric/shell_config.h"
#include "src/synth/netlist.h"

namespace coyote {
namespace synth {

struct FlowTimeModel {
  // All constants in seconds (per kLUT where noted).
  double synth_base_s = 25.0;        // per-module tool overhead
  double synth_per_klut_s = 1.4;     // logic synthesis rate
  double pr_base_s = 140.0;          // place & route fixed cost
  double pr_per_klut_s = 2.4;        // P&R rate, scaled by congestion
  double util_penalty = 2.0;         // quadratic penalty as a region fills
  double load_base_s = 35.0;         // open a routed checkpoint
  double load_per_klut_s = 0.9;      // checkpoint parse/legalize per kLUT
  double check_base_s = 90.0;        // DRC + timing signoff fixed cost
  double check_per_klut_s = 0.55;    // signoff rate over the whole design
  // Share of the full-shell P&R cost the app flow repays: the router loads
  // the locked shell and re-times the whole device around it, so most of the
  // P&R cost recurs; only service synthesis and a slice of P&R are saved.
  double in_context_factor = 0.85;
  double write_bitstream_s = 45.0;   // bitgen

  // Vivado Hardware Manager full-device programming (Table 3 baseline):
  // JTAG-rate programming of the full bitstream + PCIe hot-plug + driver
  // re-insertion.
  double jtag_bytes_per_s = 1.1e6;
  double full_program_overhead_s = 14.0;
};

struct BuildOutput {
  bool ok = false;
  std::string error;

  // Phase timings (seconds of tool time).
  double synth_seconds = 0;
  double load_seconds = 0;
  double pr_seconds = 0;
  double check_seconds = 0;
  double bitgen_seconds = 0;
  double total_seconds = 0;

  // Artifacts.
  fabric::ShellConfigDesc shell_config;
  fabric::PartialBitstream shell_bitstream;
  std::vector<fabric::PartialBitstream> app_bitstreams;
  double shell_congestion = 1.0;  // resolved routing difficulty of the shell
};

class BuildFlow {
 public:
  explicit BuildFlow(const fabric::Floorplan& floorplan, FlowTimeModel model = {})
      : floorplan_(floorplan), model_(model) {}

  // Shell flow. `apps[i]` is placed into vFPGA region i; missing entries are
  // left as empty (pass-through placeholder) regions. Validates the shell
  // configuration provides every region and that all netlists fit.
  BuildOutput RunShellFlow(const fabric::ShellConfigDesc& config,
                           const std::vector<Netlist>& apps) const;

  // App flow: link `app` into region `region_index` of `locked_shell`
  // (a successful RunShellFlow output). The produced app bitstream records
  // the shell's ConfigId for load-time verification.
  BuildOutput RunAppFlow(const Netlist& app, uint32_t region_index,
                         const BuildOutput& locked_shell) const;

  // Full-device programming time via Vivado Hardware Manager, in seconds.
  double VivadoFullProgramSeconds(const fabric::ResourceVector& device_occupied) const;

  const FlowTimeModel& model() const { return model_; }

 private:
  double SynthSeconds(const std::vector<Netlist>& netlists) const;
  double PrSeconds(const fabric::ResourceVector& contents, double congestion,
                   const fabric::ResourceVector& region_budget) const;

  fabric::Floorplan floorplan_;
  FlowTimeModel model_;
};

}  // namespace synth
}  // namespace coyote

#endif  // SRC_SYNTH_FLOW_H_
