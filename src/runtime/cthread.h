// cThread: the Coyote v2 user-facing execution abstraction (paper §7.3).
//
// A cThread is a software thread bound to one vFPGA pipeline. Multiple
// cThreads share the same vFPGA (hardware multi-threading): each carries a
// distinct thread id that rides the AXI TID field and, by default, a
// distinct subset of the parallel data streams, giving data isolation
// without software interleaving (§9.5).
//
// API surface follows the paper's Code 1: GetMem/SetCsr/Invoke plus
// completion checking and user-interrupt callbacks (eventfd-style).
//
// Naming note: the class is CThread per style; `cThread` is provided as an
// alias so examples read like the paper.

#ifndef SRC_RUNTIME_CTHREAD_H_
#define SRC_RUNTIME_CTHREAD_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/mmu/types.h"
#include "src/runtime/device.h"

namespace coyote {
namespace runtime {

// Allocation kinds, after the paper's Alloc::{REG, THP, HPF} spellings.
enum class Alloc : uint8_t {
  kReg,     // regular 4 KB pages
  kHpf,     // 2 MB hugepages
  kHuge1G,  // 1 GB hugepages
};

struct AllocSpec {
  Alloc kind = Alloc::kHpf;
  uint64_t bytes = 0;
};

// Scatter-gather entry (the paper's sgEntry). `local` drives LOCAL_*
// operations, `rdma` the REMOTE_* ones.
struct SgEntry {
  struct Local {
    uint64_t src_addr = 0;
    uint64_t src_len = 0;
    uint64_t dst_addr = 0;
    uint64_t dst_len = 0;
    // Stream selection; kAutoStream picks the cThread's default lane.
    uint32_t src_stream = kAutoStream;
    uint32_t dst_stream = kAutoStream;
    mmu::MemKind src_target = mmu::MemKind::kHost;
    mmu::MemKind dst_target = mmu::MemKind::kHost;
  } local;

  struct Rdma {
    uint32_t qpn = 0;
    uint64_t local_addr = 0;
    uint64_t remote_addr = 0;
    uint64_t len = 0;
  } rdma;

  struct Storage {
    uint64_t lba = 0;    // logical block address on the NVMe drive
    uint64_t vaddr = 0;  // memory side (shared virtual address)
    uint64_t len = 0;    // bytes; rounded up to whole blocks on the drive
  } storage;

  static constexpr uint32_t kAutoStream = 0xFFFF'FFFF;
};

// Typed completion status of a cThread task. Anything other than kOk is an
// error completion; the distinction tells the caller (and the supervisor)
// *why* the op did not succeed.
enum class OpStatus : uint8_t {
  kPending,           // sub-operations still in flight
  kOk,                // all sub-operations retired successfully
  kError,             // a sub-operation reported failure (DMA abort, QP error)
  kDeadlineExceeded,  // the per-op deadline fired before the op retired
  kAborted,           // host-side cancel (AbortPending after region recovery)
  kShed,              // tenant shed by the orchestrator (fleet capacity drop)
};

enum class Oper : uint8_t {
  kNoop,
  kLocalTransfer,  // src -> kernel -> dst (the paper's LOCAL_TRANSFER)
  kLocalRead,      // src -> kernel only
  kLocalWrite,     // kernel -> dst only
  kMigrateToCard,  // move buffer pages to HBM/DDR (migration channel)
  kMigrateToHost,
  kRemoteWrite,    // RDMA write through the network service
  kRemoteRead,
  kStorageRead,    // NVMe -> memory through the storage service (§10)
  kStorageWrite,   // memory -> NVMe
};

class CThread {
 public:
  // `ctid` < 0 allocates the next id for this vFPGA (the paper passes
  // getpid(); any stable integer works).
  CThread(SimDevice* dev, uint32_t vfpga_id, int64_t ctid = -1);

  uint32_t vfpga_id() const { return vfpga_id_; }
  uint32_t ctid() const { return ctid_; }
  SimDevice& device() { return *dev_; }

  // --- Memory ------------------------------------------------------------------
  // Allocates host memory, maps it into the shared virtual address space and
  // pre-warms this vFPGA's TLB (paper: "getMem adds src and dst to the TLB").
  uint64_t GetMem(const AllocSpec& spec);
  bool FreeMem(uint64_t vaddr);

  // Host-side access to allocated buffers (the simulated equivalent of
  // dereferencing the returned pointer).
  void WriteBuffer(uint64_t vaddr, const void* src, uint64_t len);
  void ReadBuffer(uint64_t vaddr, void* dst, uint64_t len);

  // --- Control registers (BAR-mapped AXI4-Lite, §7.1) ----------------------------
  void SetCsr(uint64_t value, uint32_t index);
  uint64_t GetCsr(uint32_t index);

  // --- Kernel invocation -----------------------------------------------------------
  struct Task {
    uint64_t id = 0;
  };
  Task Invoke(Oper oper, const SgEntry& sg);
  bool CheckCompleted(Task task) const;
  // Blocks (advances simulated time) until the task completes. Returns
  // whether the task succeeded.
  bool Wait(Task task);
  bool InvokeSync(Oper oper, const SgEntry& sg) { return Wait(Invoke(oper, sg)); }
  // Typed completion status (kPending while sub-operations are in flight).
  OpStatus Status(Task task) const;

  // --- Deadlines -------------------------------------------------------------------
  // Per-op deadline override for this cThread; 0 falls back to the device's
  // Config::default_op_deadline (0 there too = no deadline). When a deadline
  // fires before the op retires, the task force-completes with
  // kDeadlineExceeded — Wait() unblocks with ok=false instead of spinning on
  // a completion that will never arrive — and the supervisor is notified.
  void SetOpDeadline(sim::TimePs deadline) { op_deadline_ = deadline; }
  sim::TimePs op_deadline() const { return op_deadline_; }

  // Host-side cancel: force-completes every in-flight task with the given
  // typed status (kAborted after region recovery, kShed when the
  // orchestrator drops the tenant). Returns the number of tasks terminated.
  size_t AbortPending(OpStatus status = OpStatus::kAborted);

  // Event-driven completion: fires exactly once per task when it reaches a
  // terminal status (kOk or a typed error), after the writeback slot has been
  // completed. The callback may Invoke new work. This is the shard-safe
  // alternative to Wait(): Wait nests an engine run and must never be called
  // from inside a ShardedEngine callback.
  void SetCompletionCallback(std::function<void(Task, OpStatus)> cb) {
    completion_cb_ = std::move(cb);
  }

  // --- Checkpoint support ----------------------------------------------------
  // In-flight op descriptors, ascending task id. A migration checkpoint
  // captures these after AbortPending so the restored tenant can re-issue
  // exactly the work that was cut short.
  struct PendingOp {
    uint64_t id = 0;
    Oper oper = Oper::kNoop;
    SgEntry sg;
  };
  std::vector<PendingOp> SnapshotPending() const;

  uint64_t deadline_misses() const { return deadline_misses_; }

  // --- Interrupts -----------------------------------------------------------------
  // Registers the eventfd-style callback for user interrupts raised by this
  // vFPGA's kernel.
  void SetInterruptCallback(std::function<void(uint64_t value)> cb);

  // --- RDMA ------------------------------------------------------------------------
  // Creates and connects a QP through the shell's network service.
  uint32_t CreateQp();
  void ConnectQp(uint32_t local_qpn, uint32_t remote_ip, uint32_t remote_qpn);

  uint64_t tasks_issued() const { return next_task_id_; }

 private:
  uint32_t StreamFor(uint32_t requested) const;
  void FinishTask(uint64_t task_id, bool ok, bool write_direction);
  // Forces a pending task terminal with the given status (deadline expiry or
  // host-side abort); late FinishTask calls for it become no-ops.
  void ForceTerminal(uint64_t task_id, OpStatus status);

  SimDevice* dev_;
  uint32_t vfpga_id_;
  uint32_t ctid_;

  struct TaskState {
    int remaining = 0;
    bool ok = true;
    OpStatus status = OpStatus::kPending;
    sim::TimerWheel::TimerId deadline_timer = sim::TimerWheel::kInvalidTimer;
    // Original descriptor, kept while pending so SnapshotPending can hand a
    // migration checkpoint the exact ops to re-issue.
    Oper oper = Oper::kNoop;
    SgEntry sg;
  };
  std::map<uint64_t, TaskState> tasks_;
  uint64_t next_task_id_ = 0;
  std::function<void(Task, OpStatus)> completion_cb_;

  sim::TimePs op_deadline_ = 0;  // 0 = device default
  uint64_t deadline_misses_ = 0;

  uint64_t rd_writeback_addr_ = 0;
  uint64_t wr_writeback_addr_ = 0;
};

// Paper-style spelling.
using cThread = CThread;

}  // namespace runtime
}  // namespace coyote

#endif  // SRC_RUNTIME_CTHREAD_H_
