// Card memory (HBM/DDR) with striping and a shared virtualization crossbar.
//
// Coyote v2 abstracts memory-controller creation and stripes buffers across
// HBM pseudo-channels to maximize throughput (paper §6.1). Application
// requests use virtual addresses; the translation + striping crossbar is a
// shared resource, which is what makes Fig. 7(a) taper: per-burst translation
// work serializes in the crossbar, capping aggregate bandwidth below the sum
// of channel bandwidths. Shells that need the full raw bandwidth can bypass
// the MMU and bind channels directly (mmu_bypass), trading away the shared
// virtual memory model.

#ifndef SRC_MEMSYS_CARD_MEMORY_H_
#define SRC_MEMSYS_CARD_MEMORY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/memsys/sparse_memory.h"
#include "src/sim/callback.h"
#include "src/sim/engine.h"
#include "src/sim/link.h"
#include "src/sim/time.h"

namespace coyote {
namespace memsys {

class CardMemory {
 public:
  struct Config {
    uint32_t num_channels = 32;
    uint64_t channel_raw_bps = 14'400'000'000ull;  // 256-bit @ 450 MHz
    double controller_efficiency = 0.60;           // achievable share of raw
    uint64_t stripe_bytes = 4096;                  // striping granularity
    sim::TimePs translation_overhead = sim::Nanoseconds(50);  // per burst
    bool mmu_bypass = false;
    uint64_t capacity_bytes = 32ull << 30;
  };

  CardMemory(sim::Engine* engine, const Config& config);

  // Bump-allocates card memory. Returns the card-physical base address.
  uint64_t Allocate(uint64_t bytes);

  // Timing model: moves `len` bytes at `addr` for `source_id`, invoking
  // `on_done` when the last stripe completes. Reads and writes share channel
  // bandwidth symmetrically in this model, so one entry point serves both.
  void Access(uint64_t addr, uint64_t len, uint32_t source_id, sim::InlineCallback on_done);

  // Functional storage (real bytes).
  SparseMemory& store() { return store_; }
  const SparseMemory& store() const { return store_; }

  const Config& config() const { return config_; }
  uint64_t allocated_bytes() const { return next_; }
  uint64_t total_bytes_accessed() const { return total_bytes_; }

  // Channel a card-physical address stripes to.
  uint32_t ChannelFor(uint64_t addr) const {
    return static_cast<uint32_t>((addr / config_.stripe_bytes) % config_.num_channels);
  }

 private:
  sim::Engine* engine_;
  Config config_;
  SparseMemory store_;
  uint64_t next_ = 0;
  uint64_t total_bytes_ = 0;

  // One bandwidth server per channel + the shared translation crossbar.
  std::vector<std::unique_ptr<sim::Link>> channels_;
  std::unique_ptr<sim::Link> crossbar_;
};

}  // namespace memsys
}  // namespace coyote

#endif  // SRC_MEMSYS_CARD_MEMORY_H_
