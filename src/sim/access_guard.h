// Deterministic race detector for shared simulator state.
//
// The simulator is single-threaded, so classic data races cannot happen — but
// *logical* races can: two actors (a cThread driver call, the engine's event
// callback, the DMA completion path, the RoCE rx path) touching the same
// shared structure within one event epoch, with the outcome depending on
// reentrancy order rather than simulated time. Those bugs are seed-dependent
// heisenbugs under chaos testing. The AccessGuard layer turns them into hard,
// reproducible failures:
//
//   - sim::Engine advances a global *epoch* once per executed event.
//   - Call sites annotate who is running via ActorScope (RAII).
//   - Shared structures (TLB, page tables, credit counters, RoCE QP state,
//     scheduler queues) hold an AccessGuard and record Read()/Write() touches.
//   - A same-epoch write/write or read/write pair by *different* actors with
//     no declared happens-before edge is reported as an AccessConflict.
//
// The layer is runtime-toggled (a single predictable branch when disabled).
// Builds with COYOTE_ACCESS_GUARDS defined (COYOTE_SANITIZE=ON or Debug, see
// the top-level CMakeLists) arm the global ledger automatically when the
// first Engine is constructed, so every chaos/determinism test runs guarded.

#ifndef SRC_SIM_ACCESS_GUARD_H_
#define SRC_SIM_ACCESS_GUARD_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace coyote {
namespace sim {

using ActorId = uint32_t;

// Well-known actor identities. Tests may mint their own from kActorUserBase.
inline constexpr ActorId kActorHost = 0;       // driver/cThread API, default
inline constexpr ActorId kActorEngine = 1;     // generic engine callback
inline constexpr ActorId kActorDma = 2;        // data mover / XDMA paths
inline constexpr ActorId kActorNet = 3;        // RoCE/TCP rx processing
inline constexpr ActorId kActorScheduler = 4;  // kernel scheduler dispatch
inline constexpr ActorId kActorSupervisor = 5;  // watchdog / recovery engine
inline constexpr ActorId kActorUserBase = 16;

struct AccessConflict {
  std::string resource;
  uint64_t epoch = 0;
  ActorId first_actor = 0;
  ActorId second_actor = 0;
  bool write_write = false;  // false: read/write
  std::string ToString() const;
};

// Process-wide conflict ledger. Owns the epoch counter, the current actor,
// declared happens-before edges, and the conflict log. All containers are
// append-ordered so two identical runs report identical conflict sequences.
class AccessLedger {
 public:
  static AccessLedger& Global();

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Clears epoch, actor, edges, and conflicts; keeps the enabled flag.
  void Reset();

  void AdvanceEpoch() { ++epoch_; }
  uint64_t epoch() const { return epoch_; }

  ActorId current_actor() const { return current_actor_; }

  // Declares that same-epoch accesses by `a` and `b` are deliberately ordered
  // (symmetric). Guards skip conflict reports for declared pairs.
  void DeclareOrdered(ActorId a, ActorId b);
  bool Ordered(ActorId a, ActorId b) const;

  void Report(AccessConflict conflict);
  const std::vector<AccessConflict>& conflicts() const { return conflicts_; }

  // When set, Report() prints the conflict to stderr and aborts. Off by
  // default so tests can assert on the conflict log.
  void set_abort_on_conflict(bool abort_on_conflict) { abort_on_conflict_ = abort_on_conflict; }

 private:
  friend class ActorScope;

  bool enabled_ = false;
  bool abort_on_conflict_ = false;
  uint64_t epoch_ = 0;
  ActorId current_actor_ = kActorHost;
  std::vector<std::pair<ActorId, ActorId>> ordered_;
  std::vector<AccessConflict> conflicts_;
};

// RAII: sets the global ledger's current actor for the enclosing dynamic
// scope. Nesting is expected (engine callback -> rx path -> user completion).
class ActorScope {
 public:
  explicit ActorScope(ActorId actor)
      : ledger_(AccessLedger::Global()), saved_(ledger_.current_actor_) {
    ledger_.current_actor_ = actor;
  }
  ~ActorScope() { ledger_.current_actor_ = saved_; }

  ActorScope(const ActorScope&) = delete;
  ActorScope& operator=(const ActorScope&) = delete;

 private:
  AccessLedger& ledger_;
  ActorId saved_;
};

// Per-structure guard. Records (actor, kind) touches for the current epoch
// and reports a conflict when a new touch collides with an earlier same-epoch
// touch by a different, unordered actor where at least one side is a write.
class AccessGuard {
 public:
  explicit AccessGuard(std::string name) : name_(std::move(name)) {}

  void Read() const {
    AccessLedger& ledger = AccessLedger::Global();
    if (ledger.enabled()) {
      Record(ledger, /*is_write=*/false);
    }
  }

  void Write() const {
    AccessLedger& ledger = AccessLedger::Global();
    if (ledger.enabled()) {
      Record(ledger, /*is_write=*/true);
    }
  }

  const std::string& name() const { return name_; }

 private:
  struct Touch {
    ActorId actor;
    bool write;
  };

  void Record(AccessLedger& ledger, bool is_write) const;

  std::string name_;
  // Mutable: guards live inside logically-const containers and recording a
  // read must not force the owning structure's API non-const.
  mutable uint64_t epoch_ = ~0ull;
  mutable std::vector<Touch> touches_;
};

}  // namespace sim
}  // namespace coyote

#endif  // SRC_SIM_ACCESS_GUARD_H_
