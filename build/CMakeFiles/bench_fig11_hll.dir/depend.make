# Empty dependencies file for bench_fig11_hll.
# This may be replaced when dependencies are built.
