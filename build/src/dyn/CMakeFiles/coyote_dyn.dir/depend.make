# Empty dependencies file for coyote_dyn.
# This may be replaced when dependencies are built.
