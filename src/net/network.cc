#include "src/net/network.h"

#include <string>
#include <utility>

namespace coyote {
namespace net {

uint32_t Network::AttachPort(uint32_t ip, RxHandler rx) {
  const uint32_t id = static_cast<uint32_t>(ports_.size());
  Port port;
  port.ip = ip;
  port.rx = std::move(rx);
  port.tx_link = std::make_unique<sim::Link>(
      engine_, sim::Link::Config{config_.link_bps, 0, 0, "net_tx" + std::to_string(id)});
  port.rx_link = std::make_unique<sim::Link>(
      engine_, sim::Link::Config{config_.link_bps, 0, 0, "net_rx" + std::to_string(id)});
  ports_.push_back(std::move(port));
  ip_to_port_.emplace(ip, id);
  return id;
}

void Network::Transmit(uint32_t src_port, uint32_t dst_ip, std::vector<uint8_t> frame) {
  const uint64_t index = frame_counter_++;
  auto [first, last] = ip_to_port_.equal_range(dst_ip);
  if (first == last || src_port >= ports_.size()) {
    ++frames_dropped_;
    return;
  }
  if (drop_filter_ && drop_filter_(index)) {
    ++frames_dropped_;
    return;
  }

  int copies = 1;
  sim::TimePs extra_latency = 0;
  if (injector_ != nullptr) {
    const uint32_t src_ip = ports_[src_port].ip;
    if (injector_->DropForOutage(src_ip, dst_ip)) {
      ++frames_dropped_;
      return;
    }
    const auto decision = injector_->OnFrame(src_ip, dst_ip, frame.size());
    switch (decision.action) {
      case sim::FaultInjector::FrameAction::kDeliver:
        break;
      case sim::FaultInjector::FrameAction::kDrop:
        ++frames_dropped_;
        return;
      case sim::FaultInjector::FrameAction::kCorrupt: {
        // Flip one byte with a non-zero mask; the receiver's ICRC check turns
        // this into a drop at the RoCE/TCP layer.
        const uint64_t e = decision.corrupt_entropy;
        frame[e % frame.size()] ^= static_cast<uint8_t>(1 + ((e >> 32) % 255));
        ++frames_corrupted_;
        break;
      }
      case sim::FaultInjector::FrameAction::kDuplicate:
        copies = 2;
        ++frames_duplicated_;
        break;
      case sim::FaultInjector::FrameAction::kDelay:
        extra_latency = decision.delay;
        ++frames_delayed_;
        break;
    }
  }

  const uint64_t bytes = frame.size();
  auto shared = std::make_shared<std::vector<uint8_t>>(std::move(frame));
  const sim::TimePs hop_latency = config_.switch_latency + extra_latency;

  // Serialize on the sender's TX link, cross the switch, then serialize on
  // each destination port's RX link before the handler sees the frame (a
  // device binding multiple stacks to one IP gets a copy per stack).
  for (auto it = first; it != last; ++it) {
    const uint32_t dst_port = it->second;
    for (int c = 0; c < copies; ++c) {
      ports_[src_port].tx_link->Submit(
          dst_port, bytes, [this, dst_port, bytes, shared, hop_latency]() {
            engine_->ScheduleAfter(hop_latency, [this, dst_port, bytes, shared]() {
              ports_[dst_port].rx_link->Submit(0, bytes, [this, dst_port, bytes, shared]() {
                ++frames_delivered_;
                bytes_delivered_ += bytes;
                if (ports_[dst_port].rx) {
                  ports_[dst_port].rx(*shared);
                }
              });
            });
          });
    }
  }
}

}  // namespace net
}  // namespace coyote
