#include "src/memsys/card_memory.h"

#include <algorithm>
#include <utility>

namespace coyote {
namespace memsys {

CardMemory::CardMemory(sim::Engine* engine, const Config& config)
    : engine_(engine), config_(config) {
  const uint64_t eff_bps = static_cast<uint64_t>(static_cast<double>(config_.channel_raw_bps) *
                                                 config_.controller_efficiency);
  channels_.reserve(config_.num_channels);
  for (uint32_t i = 0; i < config_.num_channels; ++i) {
    channels_.push_back(std::make_unique<sim::Link>(
        engine_, sim::Link::Config{eff_bps, 0, 0, "hbm_ch" + std::to_string(i)}));
  }
  // The crossbar charges only the fixed per-burst translation/arbitration
  // cost (bytes_per_second = 0 disables the byte-proportional part).
  crossbar_ = std::make_unique<sim::Link>(
      engine_, sim::Link::Config{0, config_.translation_overhead, 0, "mem_crossbar"});
}

uint64_t CardMemory::Allocate(uint64_t bytes) {
  // 4 KB alignment: enough for burst addressing; allocations must stay
  // contiguous so that striping (not the allocator) decides channel spread.
  constexpr uint64_t kAlign = 4096;
  const uint64_t aligned = ((bytes + kAlign - 1) / kAlign) * kAlign;
  const uint64_t addr = next_;
  next_ += aligned;
  return addr;
}

void CardMemory::Access(uint64_t addr, uint64_t len, uint32_t source_id,
                        sim::InlineCallback on_done) {
  if (len == 0) {
    engine_->ScheduleAfter(0, std::move(on_done));
    return;
  }
  total_bytes_ += len;

  // Split into stripe-aligned bursts; count completions across all of them.
  struct Tracker {
    uint64_t remaining = 0;
    sim::InlineCallback on_done;
  };
  auto tracker = std::make_shared<Tracker>();
  tracker->on_done = std::move(on_done);

  uint64_t cursor = addr;
  uint64_t left = len;
  while (left > 0) {
    const uint64_t in_stripe = config_.stripe_bytes - (cursor % config_.stripe_bytes);
    const uint64_t n = std::min(left, in_stripe);
    ++tracker->remaining;

    const uint32_t ch = ChannelFor(cursor);
    auto burst_done = [this, tracker]() {
      if (--tracker->remaining == 0 && tracker->on_done) {
        tracker->on_done();
      }
    };
    if (config_.mmu_bypass) {
      channels_[ch]->Submit(source_id, n, burst_done);
    } else {
      // Burst first traverses the shared translation crossbar, then its
      // channel — the serialization that produces the Fig. 7(a) taper.
      crossbar_->Submit(source_id, n,
                        [this, ch, source_id, n, burst_done = std::move(burst_done)]() {
                          channels_[ch]->Submit(source_id, n, burst_done);
                        });
    }
    cursor += n;
    left -= n;
  }
}

}  // namespace memsys
}  // namespace coyote
