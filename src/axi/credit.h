// Credit counters for destination-queue flow control.
//
// Coyote v2 guards every vFPGA data path with per-stream credits built on top
// of destination queues (paper §7.2): a request only propagates into the
// dynamic layer when the destination queue has space, otherwise backpressure
// is exerted onto the requesting vFPGA instead of the shared shell. Credits
// are replenished when the corresponding transfer completes.

#ifndef SRC_AXI_CREDIT_H_
#define SRC_AXI_CREDIT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "src/sim/access_guard.h"

namespace coyote {
namespace axi {

class CreditCounter {
 public:
  using Callback = std::function<void()>;

  explicit CreditCounter(uint32_t initial_credits) : available_(initial_credits) {}

  uint32_t available() const { return available_; }

  // Consumes `n` credits if available. Returns false (no partial acquisition)
  // otherwise.
  bool TryAcquire(uint32_t n = 1) {
    guard_.Write();
    if (available_ < n) {
      ++stalls_;
      return false;
    }
    available_ -= n;
    return true;
  }

  // Returns `n` credits and wakes waiters registered via WaitForCredit, in
  // FIFO order, as long as credits remain.
  void Release(uint32_t n = 1) {
    guard_.Write();
    available_ += n;
    while (available_ > 0 && !waiters_.empty()) {
      Callback cb = std::move(waiters_.front());
      waiters_.pop_front();
      // The waiter re-attempts its acquisition; it may consume credits.
      cb();
    }
  }

  // Registers a callback to run when credits are released. Used by stalled
  // requesters to retry; models the request sitting in the vFPGA-side queue.
  void WaitForCredit(Callback cb) { waiters_.push_back(std::move(cb)); }

  // Recovery reset: restores the credit level and discards all waiters (their
  // operations have been aborted; waking them would re-issue dead work).
  void Reset(uint32_t credits) {
    guard_.Write();
    available_ = credits;
    waiters_.clear();
  }

  uint64_t stalls() const { return stalls_; }
  size_t waiters() const { return waiters_.size(); }

 private:
  uint32_t available_;
  uint64_t stalls_ = 0;
  std::deque<Callback> waiters_;
  sim::AccessGuard guard_{"axi.credit"};
};

}  // namespace axi
}  // namespace coyote

#endif  // SRC_AXI_CREDIT_H_
