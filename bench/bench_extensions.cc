// Extension benchmarks: the paper's §10 future-work directions, built here.
//
//  E1  Collective communication (after ACCL [22]): broadcast and allreduce
//      scaling across a cluster of Coyote nodes on the 100G fabric.
//  E2  On-demand kernel scheduling policies: FCFS vs affinity — how much
//      reconfiguration traffic a placement policy saves under a mixed
//      kernel workload (the §9.6 daemon pattern, generalized).
//  E3  TCP/IP vs RDMA service throughput on the same wire (the Requirement-1
//      "switch the networking service" scenario).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/memsys/card_memory.h"
#include "src/memsys/gpu_memory.h"
#include "src/memsys/host_memory.h"
#include "src/mmu/svm.h"
#include "src/net/collectives.h"
#include "src/net/network.h"
#include "src/net/roce.h"
#include "src/net/tcp.h"
#include "src/runtime/scheduler.h"
#include "src/services/aes_kernels.h"
#include "src/services/hll.h"
#include "src/services/vector_kernels.h"
#include "src/sim/rng.h"
#include "src/synth/flow.h"
#include "src/synth/netlist.h"

namespace coyote {
namespace {

constexpr uint64_t kPage = 2ull << 20;

struct ClusterNode {
  memsys::HostMemory host;
  std::unique_ptr<memsys::CardMemory> card;
  memsys::GpuMemory gpu;
  std::unique_ptr<mmu::Svm> svm;
  std::unique_ptr<net::RoceStack> stack;
  uint64_t data = 0, scratch = 0;
};

void RunCollectives() {
  bench::Row("E1. Collectives over the 100G fabric (4 MiB payload)");
  bench::Row("%-8s %18s %20s %22s", "Nodes", "Broadcast [ms]", "AllReduce [ms]",
             "AllReduce alg-bw [GB/s]");
  bench::PrintRule();
  constexpr uint64_t kBytes = 4 << 20;
  for (uint32_t n : {2u, 4u, 8u, 16u}) {
    sim::Engine engine;
    net::Network network(&engine, {});
    std::vector<std::unique_ptr<ClusterNode>> nodes;
    std::vector<net::CollectiveGroup::Member> members;
    for (uint32_t i = 0; i < n; ++i) {
      auto node = std::make_unique<ClusterNode>();
      node->card = std::make_unique<memsys::CardMemory>(&engine, memsys::CardMemory::Config{});
      node->svm = std::make_unique<mmu::Svm>(&engine, &node->host, node->card.get(),
                                             &node->gpu, kPage);
      node->stack = std::make_unique<net::RoceStack>(&engine, &network, 0x0A000001 + i,
                                                     node->svm.get());
      node->data = node->host.Allocate(2 * kBytes, memsys::AllocKind::kHuge2M);
      node->svm->RegisterHostBuffer(node->data, 2 * kBytes);
      node->scratch = node->host.Allocate(2 * kBytes, memsys::AllocKind::kHuge2M);
      node->svm->RegisterHostBuffer(node->scratch, 2 * kBytes);
      nodes.push_back(std::move(node));
    }
    for (auto& node : nodes) {
      members.push_back({node->stack.get(), node->svm.get(), node->scratch});
    }
    net::CollectiveGroup group(&engine, std::move(members));

    sim::TimePs t0 = engine.Now();
    bool done = false;
    group.Broadcast(0, nodes[0]->data, kBytes, [&](bool) { done = true; });
    engine.RunUntilCondition([&] { return done; });
    const double bcast_ms = sim::ToMilliseconds(engine.Now() - t0);

    done = false;
    t0 = engine.Now();
    group.AllReduceInt32(nodes[0]->data, kBytes / 4, [&](bool) { done = true; });
    engine.RunUntilCondition([&] { return done; });
    const double ar_ms = sim::ToMilliseconds(engine.Now() - t0);
    const double alg_bw = static_cast<double>(kBytes) / (ar_ms * 1e-3) / 1e9;

    bench::Row("%-8u %18.3f %20.3f %22.2f", n, bcast_ms, ar_ms, alg_bw);
  }
  bench::Note("Broadcast grows ~log2(N) (binomial tree); ring allreduce keeps algorithmic");
  bench::Note("bandwidth roughly flat with node count (bandwidth-optimal 2(N-1)/N factor).");
}

void RunScheduler() {
  bench::Row("");
  bench::Row("E2. Kernel scheduling policy under a mixed workload (2 regions, 3 kernels)");
  bench::Row("%-12s %12s %16s %18s", "Policy", "jobs", "reconfigs", "makespan [ms]");
  bench::PrintRule();
  for (auto policy : {runtime::KernelScheduler::Policy::kFcfs,
                      runtime::KernelScheduler::Policy::kAffinity}) {
    runtime::SimDevice::Config cfg;
    cfg.shell.name = "sched-bench";
    cfg.shell.services = {fabric::Service::kHostStream, fabric::Service::kCardMemory};
    cfg.shell.num_vfpgas = 2;
    runtime::SimDevice dev(cfg);
    dev.RegisterKernelFactory("hyperloglog",
                              []() { return std::make_unique<services::HllKernel>(); });
    dev.RegisterKernelFactory("aes_ecb",
                              []() { return std::make_unique<services::AesEcbKernel>(); });
    synth::BuildFlow flow(dev.floorplan());
    synth::Netlist hll{"hyperloglog", {synth::LibraryModule("hll_core")}};
    synth::Netlist aes{"aes_ecb", {synth::LibraryModule("aes_core")}};
    auto out = flow.RunShellFlow(cfg.shell, {hll, aes});
    dev.WriteBitstreamFile("/bit/hll.bin", out.app_bitstreams[0]);
    dev.WriteBitstreamFile("/bit/aes.bin", out.app_bitstreams[1]);

    runtime::KernelScheduler sched(&dev, policy);
    sim::Rng rng(5);
    constexpr int kJobs = 24;
    const sim::TimePs start = dev.engine().Now();
    for (int i = 0; i < kJobs; ++i) {
      runtime::KernelScheduler::Request r;
      r.bitstream_path = rng.NextBounded(2) == 0 ? "/bit/hll.bin" : "/bit/aes.bin";
      r.run = [&dev](uint32_t, std::function<void()> done) {
        dev.engine().ScheduleAfter(sim::Milliseconds(2), std::move(done));
      };
      sched.Submit(std::move(r));
    }
    dev.WaitFor([&] { return sched.Idle(); });
    bench::Row("%-12s %12d %16llu %18.1f",
               policy == runtime::KernelScheduler::Policy::kFcfs ? "FCFS" : "affinity", kJobs,
               static_cast<unsigned long long>(sched.reconfigurations()),
               sim::ToMilliseconds(dev.engine().Now() - start));
  }
  bench::Note("Affinity prefers regions that already hold the requested kernel: under a");
  bench::Note("random mix it cuts reconfigurations ~2x, and the makespan with them");
  bench::Note("(each load costs ~60+ ms of ICAP + staging time).");
}

void RunTcpVsRdma() {
  bench::Row("");
  bench::Row("E3. Networking service comparison on the same 100G wire (8 MiB transfer)");
  bench::Row("%-10s %20s %18s", "Service", "Throughput [GB/s]", "frames/segments");
  bench::PrintRule();
  constexpr uint64_t kBytes = 8 << 20;
  // RDMA.
  {
    sim::Engine engine;
    net::Network network(&engine, {});
    ClusterNode a, b;
    for (ClusterNode* node : {&a, &b}) {
      node->card = std::make_unique<memsys::CardMemory>(&engine, memsys::CardMemory::Config{});
      node->svm = std::make_unique<mmu::Svm>(&engine, &node->host, node->card.get(),
                                             &node->gpu, kPage);
      node->data = node->host.Allocate(kBytes, memsys::AllocKind::kHuge2M);
      node->svm->RegisterHostBuffer(node->data, kBytes);
    }
    net::RoceStack sa(&engine, &network, 1, a.svm.get());
    net::RoceStack sb(&engine, &network, 2, b.svm.get());
    const uint32_t qa = sa.CreateQp(), qb = sb.CreateQp();
    sa.Connect(qa, 2, qb);
    sb.Connect(qb, 1, qa);
    bool done = false;
    const sim::TimePs t0 = engine.Now();
    sa.PostWrite(qa, a.data, b.data, kBytes, [&](bool) { done = true; });
    engine.RunUntilCondition([&] { return done; });
    bench::Row("%-10s %20.2f %18llu", "RDMA", sim::BandwidthGBps(kBytes, engine.Now() - t0),
               static_cast<unsigned long long>(sa.tx_frames()));
  }
  // TCP.
  {
    sim::Engine engine;
    net::Network network(&engine, {});
    ClusterNode a, b;
    for (ClusterNode* node : {&a, &b}) {
      node->card = std::make_unique<memsys::CardMemory>(&engine, memsys::CardMemory::Config{});
      node->svm = std::make_unique<mmu::Svm>(&engine, &node->host, node->card.get(),
                                             &node->gpu, kPage);
      node->data = node->host.Allocate(kBytes, memsys::AllocKind::kHuge2M);
      node->svm->RegisterHostBuffer(node->data, kBytes);
    }
    net::TcpStack sa(&engine, &network, 1, a.svm.get());
    net::TcpStack sb(&engine, &network, 2, b.svm.get());
    net::TcpStack::ConnId client = 0, server = 0;
    sb.Listen(5001, [&](net::TcpStack::ConnId c) { server = c; });
    sa.Connect(2, 5001, [&](net::TcpStack::ConnId c, bool) { client = c; });
    engine.RunUntilCondition([&] { return client != 0 && server != 0; });
    sb.SetRecvHandler(server, [](std::vector<uint8_t>) {});
    bool done = false;
    const sim::TimePs t0 = engine.Now();
    sa.Send(client, a.data, kBytes, [&](bool) { done = true; });
    engine.RunUntilCondition([&] { return done; });
    bench::Row("%-10s %20.2f %18llu", "TCP/IP", sim::BandwidthGBps(kBytes, engine.Now() - t0),
               static_cast<unsigned long long>(sa.segments_sent()));
  }
  bench::Note("Both offload stacks sustain ~line rate for bulk transfers (that is the point");
  bench::Note("of offloading); they differ in semantics — one-sided virtual-address RDMA vs");
  bench::Note("byte streams — which is why shells switch services at run time (Table 3 #2).");
}

}  // namespace
}  // namespace coyote

int main() {
  coyote::bench::PrintHeader("Extension benchmarks: collectives, scheduling, TCP vs RDMA",
                             "Coyote v2 paper §10 (future work) + §4 scheduling");
  coyote::RunCollectives();
  coyote::RunScheduler();
  coyote::RunTcpVsRdma();
  return 0;
}
