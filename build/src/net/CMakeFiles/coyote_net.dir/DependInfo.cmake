
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/collectives.cc" "src/net/CMakeFiles/coyote_net.dir/collectives.cc.o" "gcc" "src/net/CMakeFiles/coyote_net.dir/collectives.cc.o.d"
  "/root/repo/src/net/network.cc" "src/net/CMakeFiles/coyote_net.dir/network.cc.o" "gcc" "src/net/CMakeFiles/coyote_net.dir/network.cc.o.d"
  "/root/repo/src/net/packets.cc" "src/net/CMakeFiles/coyote_net.dir/packets.cc.o" "gcc" "src/net/CMakeFiles/coyote_net.dir/packets.cc.o.d"
  "/root/repo/src/net/roce.cc" "src/net/CMakeFiles/coyote_net.dir/roce.cc.o" "gcc" "src/net/CMakeFiles/coyote_net.dir/roce.cc.o.d"
  "/root/repo/src/net/sniffer.cc" "src/net/CMakeFiles/coyote_net.dir/sniffer.cc.o" "gcc" "src/net/CMakeFiles/coyote_net.dir/sniffer.cc.o.d"
  "/root/repo/src/net/tcp.cc" "src/net/CMakeFiles/coyote_net.dir/tcp.cc.o" "gcc" "src/net/CMakeFiles/coyote_net.dir/tcp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/coyote_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/coyote_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/memsys/CMakeFiles/coyote_memsys.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
