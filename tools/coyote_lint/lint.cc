#include "tools/coyote_lint/lint.h"

#include <algorithm>

#include "tools/coyote_frontend/frontend.h"

namespace coyote {
namespace lint {
namespace {

using frontend::LexedFile;
using frontend::LooksLikeCall;
using frontend::Next;
using frontend::Prev;
using frontend::PrevIsMemberAccess;
using frontend::TokKind;
using frontend::Token;

// ---------------------------------------------------------------------------
// Rule machinery. The lexical layer (tokenizer, comment map, suppression
// lookup, project walk) lives in tools/coyote_frontend so the linter and the
// interprocedural analyzer can never disagree about what a suppression
// covers — in particular, a suppression above a multi-line statement covers
// findings on the statement's continuation lines via the statement-start map.
// ---------------------------------------------------------------------------

struct FileCtx {
  const std::string& path;
  const LexedFile& lexed;
  const std::set<std::string>& unordered_names;
  std::vector<Finding>* out;
};

void Report(const FileCtx& ctx, uint32_t line, const std::string& rule, const std::string& tag,
            const std::string& message) {
  if (!frontend::Suppressed(ctx.lexed, line, tag)) {
    ctx.out->push_back(Finding{ctx.path, line, rule, message});
  }
}

// ---------------------------------------------------------------------------
// Rule: nondet — no ambient randomness or wall-clock reads. All randomness
// must flow through sim::Rng streams; all time through sim::Engine::Now().
// ---------------------------------------------------------------------------

void RuleNondet(const FileCtx& ctx) {
  static const std::set<std::string> kBannedCalls = {
      "rand",      "srand",        "random",      "drand48",   "lrand48",  "mrand48",
      "time",      "clock",        "gettimeofday", "clock_gettime", "localtime", "gmtime",
      "getenv",    "setenv",       "putenv"};
  static const std::set<std::string> kBannedTypes = {
      "random_device",   "mt19937",         "mt19937_64",       "minstd_rand",
      "minstd_rand0",    "default_random_engine", "knuth_b",    "ranlux24",
      "ranlux48",        "ranlux24_base",   "ranlux48_base",    "uniform_int_distribution",
      "uniform_real_distribution", "normal_distribution", "bernoulli_distribution",
      "poisson_distribution", "exponential_distribution", "discrete_distribution",
      "system_clock",    "steady_clock",    "high_resolution_clock"};
  static const std::set<std::string> kBannedIncludes = {"random", "ctime", "sys/time.h",
                                                        "chrono"};
  const auto& toks = ctx.lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct && t.text == "#" && i + 2 < toks.size() &&
        toks[i + 1].text == "include" && toks[i + 2].text == "<") {
      size_t end = i + 2;
      const std::string name = frontend::JoinIncludeName(toks, i + 2, &end);
      if (kBannedIncludes.count(name) != 0) {
        Report(ctx, t.line, "nondet", "nondet-ok",
               "#include <" + name + "> is banned in simulation code: randomness must flow "
               "through sim::Rng and time through sim::Engine::Now()");
      }
      i = end;
      continue;
    }
    if (t.kind != TokKind::kIdent) {
      continue;
    }
    if (kBannedTypes.count(t.text) != 0 && !PrevIsMemberAccess(toks, i)) {
      Report(ctx, t.line, "nondet", "nondet-ok",
             "'" + t.text + "' is nondeterministic (platform-dependent or ambient state); " +
                 "use sim::Rng / sim::Engine::Now() instead");
      continue;
    }
    if (kBannedCalls.count(t.text) != 0 && LooksLikeCall(toks, i)) {
      Report(ctx, t.line, "nondet", "nondet-ok",
             "call to '" + t.text + "()' breaks seed-replay determinism; use sim::Rng / " +
                 "sim::Engine::Now() instead");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: unordered-iter — no iteration over unordered containers. Hash-map
// iteration order is implementation-defined and changes with rehashing, so
// any iteration result that feeds event ordering, stats fingerprints, or
// packet emission silently breaks replay. Point lookups are fine.
// ---------------------------------------------------------------------------

const std::set<std::string>& UnorderedTypeNames() {
  static const std::set<std::string> kUnordered = {"unordered_map", "unordered_set",
                                                   "unordered_multimap", "unordered_multiset"};
  return kUnordered;
}

void CollectUnorderedNames(const LexedFile& lexed, std::set<std::string>* names) {
  const auto& toks = lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || UnorderedTypeNames().count(toks[i].text) == 0) {
      continue;
    }
    // `using Alias = std::unordered_map<...>`: scan back a few tokens.
    for (size_t back = 1; back <= 6 && back <= i; ++back) {
      if (toks[i - back].kind == TokKind::kIdent && toks[i - back].text == "using" &&
          back >= 2 && toks[i - back + 1].kind == TokKind::kIdent) {
        names->insert(toks[i - back + 1].text);
        break;
      }
    }
    // Skip the template argument list, then take the declared identifier —
    // a variable/member name or a function returning the unordered type
    // (`for (auto& x : MakeUnorderedSet())` iterates a nondeterministic
    // temporary just the same). `const`, `&` and `*` between the closing
    // angle bracket and the name (reference-returning getters) are skipped.
    size_t j = i + 1;
    if (j >= toks.size() || toks[j].text != "<") {
      continue;
    }
    int depth = 0;
    for (; j < toks.size(); ++j) {
      if (toks[j].text == "<") {
        ++depth;
      } else if (toks[j].text == ">") {
        if (--depth == 0) {
          break;
        }
      }
    }
    ++j;
    while (j < toks.size() &&
           ((toks[j].kind == TokKind::kPunct && (toks[j].text == "&" || toks[j].text == "*")) ||
            (toks[j].kind == TokKind::kIdent && toks[j].text == "const"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokKind::kIdent) {
      names->insert(toks[j].text);
    }
  }
}

void RuleUnorderedIter(const FileCtx& ctx) {
  static const std::set<std::string> kIterCalls = {"begin", "cbegin", "rbegin", "equal_range"};
  const auto& toks = ctx.lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) {
      continue;
    }
    // Range-for over a known unordered container name, a helper returning
    // one, or an unordered temporary constructed in the range expression.
    if (t.text == "for" && i + 1 < toks.size() && toks[i + 1].text == "(") {
      int depth = 0;
      size_t colon = 0;
      size_t close = 0;
      for (size_t j = i + 1; j < toks.size(); ++j) {
        if (toks[j].text == "(") {
          ++depth;
        } else if (toks[j].text == ")") {
          if (--depth == 0) {
            close = j;
            break;
          }
        } else if (toks[j].text == ":" && depth == 1 && colon == 0) {
          colon = j;
        }
      }
      if (colon != 0 && close != 0) {
        for (size_t j = colon + 1; j < close; ++j) {
          if (toks[j].kind != TokKind::kIdent) {
            continue;
          }
          const bool named = ctx.unordered_names.count(toks[j].text) != 0;
          const bool temporary = UnorderedTypeNames().count(toks[j].text) != 0;
          if (named || temporary) {
            Report(ctx, t.line, "unordered-iter", "ordered-ok",
                   "range-for over unordered container '" + toks[j].text +
                       "': iteration order is implementation-defined and breaks seed replay; "
                       "use an ordered container or sort first");
            break;
          }
        }
      }
      continue;
    }
    // x.begin() / x.equal_range() on a known unordered container name.
    if (ctx.unordered_names.count(t.text) != 0 && i + 3 < toks.size() &&
        (toks[i + 1].text == "." || toks[i + 1].text == "->") &&
        toks[i + 2].kind == TokKind::kIdent && kIterCalls.count(toks[i + 2].text) != 0 &&
        toks[i + 3].text == "(") {
      Report(ctx, t.line, "unordered-iter", "ordered-ok",
             "'" + t.text + "." + toks[i + 2].text +
                 "()' iterates an unordered container; order is implementation-defined");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: raw-alloc — no raw new/delete outside allocator shims. Everything in
// the simulator owns memory via containers or smart pointers; raw allocation
// is where the sanitizer jobs find their leaks and double-frees.
// ---------------------------------------------------------------------------

void RuleRawAlloc(const FileCtx& ctx) {
  const auto& toks = ctx.lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) {
      continue;
    }
    const Token* p = Prev(toks, i);
    if (t.text == "new") {
      if (p != nullptr && p->kind == TokKind::kIdent && p->text == "operator") {
        continue;  // allocator shim definition
      }
      Report(ctx, t.line, "raw-alloc", "raw-alloc-ok",
             "raw 'new': own memory via containers or std::make_unique/make_shared");
    } else if (t.text == "delete") {
      if (p != nullptr &&
          ((p->kind == TokKind::kPunct && p->text == "=") ||   // deleted function
           (p->kind == TokKind::kIdent && p->text == "operator"))) {
        continue;
      }
      Report(ctx, t.line, "raw-alloc", "raw-alloc-ok",
             "raw 'delete': own memory via containers or smart pointers");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: blocking — no blocking syscalls or thread primitives. Engine
// callbacks must complete without yielding to the OS: a sleep or wait inside
// an event callback stalls simulated time against wall time and makes run
// duration (and any timeout-adjacent behavior) machine-dependent.
// ---------------------------------------------------------------------------

void RuleBlocking(const FileCtx& ctx) {
  static const std::set<std::string> kBannedCalls = {
      "sleep",     "usleep",    "nanosleep", "sleep_for", "sleep_until", "system",
      "popen",     "fork",      "vfork",     "waitpid",   "pause",       "flock",
      "fsync",     "fdatasync", "epoll_wait"};
  static const std::set<std::string> kBannedIncludes = {"thread", "mutex",
                                                        "condition_variable", "future",
                                                        "semaphore"};
  const auto& toks = ctx.lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct && t.text == "#" && i + 2 < toks.size() &&
        toks[i + 1].text == "include" && toks[i + 2].text == "<") {
      size_t end = i + 2;
      const std::string name = frontend::JoinIncludeName(toks, i + 2, &end);
      if (kBannedIncludes.count(name) != 0) {
        Report(ctx, t.line, "blocking", "blocking-ok",
               "#include <" + name + ">: the simulator is single-threaded by design; "
               "threads and blocking waits have no place in engine callbacks");
      }
      i = end;
      continue;
    }
    if (t.kind == TokKind::kIdent && kBannedCalls.count(t.text) != 0 && LooksLikeCall(toks, i)) {
      Report(ctx, t.line, "blocking", "blocking-ok",
             "call to '" + t.text + "()' blocks; engine callbacks must not yield to the OS");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: wall-clock — simulation code keeps time with the engine's virtual
// clock, never the host's. std::chrono clock reads and thread sleeps in
// src/ make behavior depend on machine speed and wall time; only files
// explicitly annotated `// lint: host-boundary <why>` (benchmark harness
// timers, the shard-worker coordination layer) may touch the host clock.
// The nondet/blocking rules ban the underlying types and includes project
// wide; this rule pins the specific ::now()/sleep_for call sites in src/ so
// a host-boundary file is still told exactly where it reads host time.
// ---------------------------------------------------------------------------

void RuleWallClock(const FileCtx& ctx) {
  if (ctx.path.rfind("src/", 0) != 0) {
    return;  // bench/tests own their wall-clock policy (wall_-prefixed stats)
  }
  if (frontend::HasFileAnnotation(ctx.lexed, "host-boundary")) {
    return;
  }
  static const std::set<std::string> kClocks = {"system_clock", "steady_clock",
                                                "high_resolution_clock"};
  static const std::set<std::string> kSleeps = {"sleep_for", "sleep_until"};
  const auto& toks = ctx.lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) {
      continue;
    }
    // system_clock::now() / steady_clock::now(...)
    if (kClocks.count(t.text) != 0 && i + 3 < toks.size() && toks[i + 1].text == "::" &&
        toks[i + 2].text == "now" && toks[i + 3].text == "(") {
      Report(ctx, t.line, "wall-clock", "wall-clock-ok",
             "'" + t.text + "::now()' reads the host clock; simulation code must use "
             "sim::Engine::Now() (annotate the file '// lint: host-boundary <why>' if it "
             "really sits on the host side)");
      continue;
    }
    if (kSleeps.count(t.text) != 0 &&
        (LooksLikeCall(toks, i) || PrevIsMemberAccess(toks, i) ||
         (Prev(toks, i) != nullptr && Prev(toks, i)->text == "::"))) {
      Report(ctx, t.line, "wall-clock", "wall-clock-ok",
             "'" + t.text + "' stalls simulated time against wall time; schedule a future "
             "event on the engine instead");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: header-guard — headers carry a canonical include guard derived from
// their project-relative path (SRC_SIM_ENGINE_H_ style).
// ---------------------------------------------------------------------------

std::string ExpectedGuard(const std::string& path) {
  std::string guard;
  for (char c : path) {
    guard += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  guard += '_';
  return guard;
}

void RuleHeaderGuard(const FileCtx& ctx) {
  if (!frontend::IsHeaderPath(ctx.path)) {
    return;
  }
  const auto& toks = ctx.lexed.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text != "#") {
      continue;
    }
    if (toks[i + 1].text == "pragma" && i + 2 < toks.size() && toks[i + 2].text == "once") {
      return;  // accepted (though the codebase convention is #ifndef guards)
    }
    if (toks[i + 1].text == "ifndef" && i + 2 < toks.size()) {
      const std::string macro = toks[i + 2].text;
      const std::string expected = ExpectedGuard(ctx.path);
      if (macro != expected) {
        Report(ctx, toks[i + 2].line, "header-guard", "header-ok",
               "include guard '" + macro + "' should be '" + expected + "'");
      }
      if (!(i + 5 < toks.size() && toks[i + 3].text == "#" && toks[i + 4].text == "define" &&
            toks[i + 5].text == macro)) {
        Report(ctx, toks[i + 2].line, "header-guard", "header-ok",
               "#ifndef " + macro + " is not followed by a matching #define");
      }
      return;
    }
    // Any other directive (or code) before the guard means there is no guard.
    break;
  }
  Report(ctx, 1, "header-guard", "header-ok",
         "missing include guard (expected '" + ExpectedGuard(ctx.path) + "')");
}

// ---------------------------------------------------------------------------
// Rule: using-ns-header — no `using namespace` at any scope in headers.
// ---------------------------------------------------------------------------

void RuleUsingNamespaceHeader(const FileCtx& ctx) {
  if (!frontend::IsHeaderPath(ctx.path)) {
    return;
  }
  const auto& toks = ctx.lexed.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind == TokKind::kIdent && toks[i].text == "using" &&
        toks[i + 1].kind == TokKind::kIdent && toks[i + 1].text == "namespace") {
      Report(ctx, toks[i].line, "using-ns-header", "using-ok",
             "'using namespace' in a header leaks into every includer");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: hot-copy — no by-value payload parameters on the packet hot paths.
// StreamPacket and std::vector<uint8_t> travel through every per-packet call
// in src/axi, src/dyn, src/net and src/memsys; accepting them by value costs
// a copy (and before BufferView, an allocation) per hop per packet, which is
// exactly the regression class the calendar-engine/zero-copy work removed.
// Take `const T&` for borrowed payloads or `T&&`/BufferView for transfers;
// sites that copy deliberately (e.g. a sink that must own the packet)
// annotate with "// lint: hot-copy-ok".
// ---------------------------------------------------------------------------

void RuleHotCopy(const FileCtx& ctx) {
  static const std::vector<std::string> kHotDirs = {"src/axi/", "src/dyn/", "src/net/",
                                                    "src/memsys/"};
  const auto on_hot_path = [&] {
    for (const std::string& dir : kHotDirs) {
      if (ctx.path.rfind(dir, 0) == 0) {
        return true;
      }
    }
    return false;
  };
  if (!on_hot_path()) {
    return;
  }
  const auto& toks = ctx.lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) {
      continue;
    }
    // Match the payload type and remember where its spelling ends.
    size_t type_end;
    std::string pretty;
    if (toks[i].text == "StreamPacket") {
      type_end = i;
      pretty = "StreamPacket";
    } else if (toks[i].text == "vector" && i + 3 < toks.size() && toks[i + 1].text == "<" &&
               toks[i + 2].kind == TokKind::kIdent && toks[i + 2].text == "uint8_t" &&
               toks[i + 3].text == ">") {
      type_end = i + 3;
      pretty = "std::vector<uint8_t>";
    } else {
      continue;
    }
    // Walk back over namespace qualifiers and `const` to the token that opens
    // the parameter slot; only `(` and `,` put us in a parameter list. This
    // rejects return types, member declarations, locals and template args.
    size_t b = i;
    while (b >= 2 && toks[b - 1].kind == TokKind::kPunct && toks[b - 1].text == "::" &&
           toks[b - 2].kind == TokKind::kIdent) {
      b -= 2;
    }
    if (b >= 1 && toks[b - 1].kind == TokKind::kIdent && toks[b - 1].text == "const") {
      b -= 1;
    }
    const Token* opener = Prev(toks, b);
    if (opener == nullptr || opener->kind != TokKind::kPunct ||
        (opener->text != "(" && opener->text != ",")) {
      continue;
    }
    // `StreamPacket(...)` / `StreamPacket{...}` right after the type is a
    // constructor call inside an argument list, not a parameter.
    if (type_end + 1 < toks.size() &&
        (toks[type_end + 1].text == "(" || toks[type_end + 1].text == "{")) {
      continue;
    }
    // Scan forward to the end of the parameter: `&` or `*` anywhere before it
    // means the payload is borrowed or moved, not copied.
    bool by_value = false;
    for (size_t j = type_end + 1; j < toks.size(); ++j) {
      if (toks[j].kind != TokKind::kPunct) {
        continue;
      }
      const std::string& tx = toks[j].text;
      if (tx == "&" || tx == "*") {
        break;  // reference, rvalue-reference or pointer parameter
      }
      if (tx == "," || tx == ")" || tx == "=") {
        by_value = true;  // parameter ended with no indirection in sight
        break;
      }
      break;  // any other punctuation: not a plain parameter declaration
    }
    if (by_value) {
      Report(ctx, toks[i].line, "hot-copy", "hot-copy-ok",
             "by-value '" + pretty + "' parameter copies the payload on a per-packet path; "
             "take 'const " + pretty + "&' (borrow) or '" + pretty + "&&'/BufferView (transfer)");
    }
  }
}

using RuleFn = void (*)(const FileCtx&);

struct RuleEntry {
  RuleInfo info;
  RuleFn fn;
};

const std::vector<RuleEntry>& RuleTable() {
  static const std::vector<RuleEntry> table = {
      {{"nondet", "nondet-ok",
        "no ambient randomness or wall-clock reads; use sim::Rng / Engine::Now()"},
       RuleNondet},
      {{"unordered-iter", "ordered-ok",
        "no iteration over unordered containers (order is implementation-defined)"},
       RuleUnorderedIter},
      {{"raw-alloc", "raw-alloc-ok", "no raw new/delete outside allocator shims"},
       RuleRawAlloc},
      {{"blocking", "blocking-ok", "no blocking syscalls or thread primitives"},
       RuleBlocking},
      {{"wall-clock", "wall-clock-ok",
        "src/ keeps time with sim::Engine::Now(); host clock reads/sleeps only in "
        "'// lint: host-boundary' files"},
       RuleWallClock},
      {{"header-guard", "header-ok", "headers carry a canonical path-derived include guard"},
       RuleHeaderGuard},
      {{"using-ns-header", "using-ok", "no 'using namespace' in headers"},
       RuleUsingNamespaceHeader},
      {{"hot-copy", "hot-copy-ok",
        "no by-value StreamPacket / std::vector<uint8_t> parameters on packet hot paths"},
       RuleHotCopy},
  };
  return table;
}

}  // namespace

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> infos = [] {
    std::vector<RuleInfo> v;
    for (const RuleEntry& e : RuleTable()) {
      v.push_back(e.info);
    }
    return v;
  }();
  return infos;
}

std::vector<Finding> LintProject(const std::vector<SourceFile>& files, const Options& options) {
  std::vector<LexedFile> lexed;
  lexed.reserve(files.size());
  std::set<std::string> unordered_names;
  for (const SourceFile& f : files) {
    lexed.push_back(frontend::Lex(f.second));
    CollectUnorderedNames(lexed.back(), &unordered_names);
  }

  const auto enabled = [&options](const std::string& id) {
    return options.rules.empty() ||
           std::find(options.rules.begin(), options.rules.end(), id) != options.rules.end();
  };

  std::vector<Finding> findings;
  for (size_t i = 0; i < files.size(); ++i) {
    FileCtx ctx{files[i].first, lexed[i], unordered_names, &findings};
    for (const RuleEntry& rule : RuleTable()) {
      if (enabled(rule.info.id)) {
        rule.fn(ctx);
      }
    }
  }
  std::stable_sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) {
      return a.file < b.file;
    }
    return a.line < b.line;
  });
  return findings;
}

std::vector<std::string> CollectFiles(const std::string& root_dir,
                                      const std::vector<std::string>& roots) {
  return frontend::CollectFiles(root_dir, roots);
}

std::vector<Finding> LintPaths(const std::string& root_dir,
                               const std::vector<std::string>& relative_paths,
                               const Options& options) {
  return LintProject(frontend::ReadFiles(root_dir, relative_paths), options);
}

}  // namespace lint
}  // namespace coyote
