// End-to-end tests of the device runtime: cThread API, data movement through
// kernels, shared virtual memory, reconfiguration, writeback and interrupts.

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "src/runtime/crcnfg.h"
#include "src/runtime/cthread.h"
#include "src/runtime/device.h"
#include "src/runtime/serving.h"
#include "src/services/aes.h"
#include "src/services/aes_kernels.h"
#include "src/services/hll.h"
#include "src/services/pointer_chase.h"
#include "src/services/vector_kernels.h"
#include "src/sim/rng.h"
#include "src/synth/flow.h"
#include "src/synth/netlist.h"

namespace coyote {
namespace runtime {
namespace {

fabric::ShellConfigDesc DefaultShell(uint32_t num_vfpgas = 2) {
  fabric::ShellConfigDesc shell;
  shell.name = "test-shell";
  shell.services = {fabric::Service::kHostStream, fabric::Service::kCardMemory};
  shell.num_vfpgas = num_vfpgas;
  return shell;
}

SimDevice::Config DefaultConfig(uint32_t num_vfpgas = 2) {
  SimDevice::Config cfg;
  cfg.shell = DefaultShell(num_vfpgas);
  return cfg;
}

std::vector<uint8_t> RandomBytes(uint64_t n, uint64_t seed) {
  std::vector<uint8_t> v(n);
  sim::Rng rng(seed);
  rng.FillBytes(v.data(), n);
  return v;
}

TEST(CThreadTest, GetMemRegistersPagesAndWarmsTlb) {
  SimDevice dev(DefaultConfig());
  CThread t(&dev, 0);
  const uint64_t addr = t.GetMem({Alloc::kHpf, 4096});
  EXPECT_NE(addr, 0u);
  // Page mapped host-resident.
  auto entry = dev.svm().page_table().Find(addr);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->kind, mmu::MemKind::kHost);
  // TLB warm: a lookup hits.
  EXPECT_TRUE(dev.vfpga_mmu(0).tlb().Lookup(addr).has_value());
  EXPECT_TRUE(t.FreeMem(addr));
  EXPECT_FALSE(t.FreeMem(addr));
}

TEST(CThreadTest, BufferReadWriteRoundTrip) {
  SimDevice dev(DefaultConfig());
  CThread t(&dev, 0);
  const uint64_t addr = t.GetMem({Alloc::kReg, 10000});
  const auto data = RandomBytes(10000, 1);
  t.WriteBuffer(addr, data.data(), data.size());
  std::vector<uint8_t> back(10000);
  t.ReadBuffer(addr, back.data(), back.size());
  EXPECT_EQ(data, back);
}

TEST(CThreadTest, CsrAccessReachesKernelRegisters) {
  SimDevice dev(DefaultConfig());
  CThread t(&dev, 0);
  t.SetCsr(0xDEADBEEFCAFEF00Dull, 7);
  EXPECT_EQ(dev.vfpga(0).csr().Peek(7), 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(t.GetCsr(7), 0xDEADBEEFCAFEF00Dull);
  // CSR access costs simulated time (BAR round trips).
  EXPECT_GT(dev.engine().Now(), 0u);
}

TEST(CThreadTest, LocalTransferThroughPassthroughPreservesData) {
  SimDevice dev(DefaultConfig());
  dev.vfpga(0).LoadKernel(std::make_unique<services::PassthroughKernel>());
  CThread t(&dev, 0);

  constexpr uint64_t kBytes = 64 * 1024;
  const auto data = RandomBytes(kBytes, 2);

  // The typed serving envelope replaces the hand-rolled
  // GetMem/WriteBuffer/SgEntry/InvokeSync/ReadBuffer sequence.
  serving::ServingRequest req;
  req.kernel = "passthrough";
  req.payload = axi::BufferView(data);
  std::vector<uint8_t> out;
  const serving::ServingCompletion done = serving::ExecuteSync(&t, req, &out);
  EXPECT_EQ(done.status, OpStatus::kOk);
  EXPECT_EQ(data, out);
  EXPECT_EQ(done.response_hash, serving::HashBytes(data.data(), data.size()));
  EXPECT_GT(done.completed_at, 0u);

  // Timing sanity: 64 KB both directions over a 12 GB/s link plus kernel
  // time; must be more than the pure link time and less than 1 ms.
  EXPECT_GT(dev.engine().Now(), sim::TransferTime(kBytes, 12'000'000'000ull));
  EXPECT_LT(dev.engine().Now(), sim::Milliseconds(1));
}

TEST(CThreadTest, ZeroLengthTransferCompletes) {
  SimDevice dev(DefaultConfig());
  dev.vfpga(0).LoadKernel(std::make_unique<services::PassthroughKernel>());
  CThread t(&dev, 0);
  SgEntry sg;
  EXPECT_TRUE(t.InvokeSync(Oper::kNoop, sg));
  EXPECT_TRUE(t.InvokeSync(Oper::kLocalTransfer, sg));
}

TEST(CThreadTest, UnmappedAddressFailsTaskAndRaisesPageFault) {
  SimDevice dev(DefaultConfig());
  dev.vfpga(0).LoadKernel(std::make_unique<services::PassthroughKernel>());
  CThread t(&dev, 0);
  SgEntry sg;
  sg.local = {.src_addr = 0x100000, .src_len = 4096, .dst_addr = 0, .dst_len = 0};
  EXPECT_FALSE(t.InvokeSync(Oper::kLocalRead, sg));
  EXPECT_GE(dev.data_mover().page_fault_irqs(), 1u);
  dev.engine().RunUntilIdle();
  EXPECT_GE(dev.page_fault_interrupts(), 1u);
}

TEST(CThreadTest, WritebackCountersAdvanceOnCompletion) {
  SimDevice dev(DefaultConfig());
  dev.vfpga(0).LoadKernel(std::make_unique<services::PassthroughKernel>());
  CThread t(&dev, 0);
  const uint64_t src = t.GetMem({Alloc::kHpf, 4096});
  const uint64_t dst = t.GetMem({Alloc::kHpf, 4096});
  SgEntry sg;
  sg.local = {.src_addr = src, .src_len = 4096, .dst_addr = dst, .dst_len = 4096};
  ASSERT_TRUE(t.InvokeSync(Oper::kLocalTransfer, sg));
  dev.engine().RunUntilIdle();
  EXPECT_EQ(dev.writeback().ReadCounter({0, t.ctid(), true}), 1u);
  ASSERT_TRUE(t.InvokeSync(Oper::kLocalTransfer, sg));
  dev.engine().RunUntilIdle();
  EXPECT_EQ(dev.writeback().ReadCounter({0, t.ctid(), true}), 2u);
}

TEST(CThreadTest, MigrationMovesPagesAndDataSurvives) {
  SimDevice dev(DefaultConfig());
  CThread t(&dev, 0);
  constexpr uint64_t kBytes = 1 << 20;
  const uint64_t addr = t.GetMem({Alloc::kHpf, kBytes});
  const auto data = RandomBytes(kBytes, 3);
  t.WriteBuffer(addr, data.data(), kBytes);

  SgEntry sg;
  sg.local.src_addr = addr;
  sg.local.src_len = kBytes;
  ASSERT_TRUE(t.InvokeSync(Oper::kMigrateToCard, sg));
  EXPECT_EQ(dev.svm().page_table().Find(addr)->kind, mmu::MemKind::kCard);
  EXPECT_GE(dev.svm().migrations(), 1u);

  // Data readable through the virtual address space from card residence.
  std::vector<uint8_t> back(kBytes);
  t.ReadBuffer(addr, back.data(), kBytes);
  EXPECT_EQ(data, back);

  ASSERT_TRUE(t.InvokeSync(Oper::kMigrateToHost, sg));
  EXPECT_EQ(dev.svm().page_table().Find(addr)->kind, mmu::MemKind::kHost);
  t.ReadBuffer(addr, back.data(), kBytes);
  EXPECT_EQ(data, back);
}

TEST(CThreadTest, CardTargetTransferFaultsPagesToCard) {
  SimDevice dev(DefaultConfig());
  dev.vfpga(0).LoadKernel(std::make_unique<services::CardPassthroughKernel>());
  CThread t(&dev, 0);
  constexpr uint64_t kBytes = 256 * 1024;
  const uint64_t src = t.GetMem({Alloc::kHpf, kBytes});
  const uint64_t dst = t.GetMem({Alloc::kHpf, kBytes});
  const auto data = RandomBytes(kBytes, 4);
  t.WriteBuffer(src, data.data(), kBytes);

  SgEntry sg;
  sg.local = {.src_addr = src,
              .src_len = kBytes,
              .dst_addr = dst,
              .dst_len = kBytes,
              .src_stream = 0,
              .dst_stream = 0,
              .src_target = mmu::MemKind::kCard,
              .dst_target = mmu::MemKind::kCard};
  ASSERT_TRUE(t.InvokeSync(Oper::kLocalTransfer, sg));

  // Pages were pulled to the card by the access (GPU-style page fault).
  EXPECT_EQ(dev.svm().page_table().Find(src)->kind, mmu::MemKind::kCard);
  std::vector<uint8_t> out(kBytes);
  t.ReadBuffer(dst, out.data(), kBytes);
  EXPECT_EQ(data, out);
}

TEST(CThreadTest, UserInterruptReachesCallback) {
  SimDevice dev(DefaultConfig());
  CThread t(&dev, 0);
  uint64_t seen = 0;
  t.SetInterruptCallback([&seen](uint64_t value) { seen = value; });
  dev.vfpga(0).RaiseUserInterrupt(0x42);
  dev.engine().RunUntilIdle();
  EXPECT_EQ(seen, 0x42u);
}

// --- AES end-to-end ---------------------------------------------------------

TEST(AesEndToEnd, EcbMatchesSoftwareAes) {
  SimDevice dev(DefaultConfig());
  dev.vfpga(0).LoadKernel(std::make_unique<services::AesEcbKernel>());
  CThread t(&dev, 0);

  const uint64_t kKeyLo = 0x6167717a7a767668ull;
  const uint64_t kKeyHi = 0x1122334455667788ull;
  t.SetCsr(kKeyLo, services::kAesCsrKeyLo);
  t.SetCsr(kKeyHi, services::kAesCsrKeyHi);

  constexpr uint64_t kBytes = 32 * 1024;
  const auto plain = RandomBytes(kBytes, 5);

  serving::ServingRequest req;
  req.kernel = "aes-ecb";
  req.payload = axi::BufferView(plain);
  std::vector<uint8_t> cipher;
  ASSERT_EQ(serving::ExecuteSync(&t, req, &cipher).status, OpStatus::kOk);

  services::Aes128 sw(kKeyLo, kKeyHi);
  EXPECT_EQ(cipher, sw.EncryptEcb(plain));
}

TEST(AesEndToEnd, CbcMatchesSoftwareAesWithIv) {
  SimDevice dev(DefaultConfig());
  dev.vfpga(0).LoadKernel(std::make_unique<services::AesCbcKernel>());
  CThread t(&dev, 0);

  const uint64_t kKeyLo = 0x0123456789abcdefull;
  const uint64_t kKeyHi = 0xfedcba9876543210ull;
  const uint64_t kIvLo = 0x0807060504030201ull;
  const uint64_t kIvHi = 0x100f0e0d0c0b0a09ull;
  t.SetCsr(kKeyLo, services::kAesCsrKeyLo);
  t.SetCsr(kKeyHi, services::kAesCsrKeyHi);
  t.SetCsr(kIvLo, services::kAesCsrIvLo);
  t.SetCsr(kIvHi, services::kAesCsrIvHi);

  constexpr uint64_t kBytes = 16 * 1024;
  const auto plain = RandomBytes(kBytes, 6);

  serving::ServingRequest req;
  req.kernel = "aes-cbc";
  req.payload = axi::BufferView(plain);
  std::vector<uint8_t> cipher;
  ASSERT_EQ(serving::ExecuteSync(&t, req, &cipher).status, OpStatus::kOk);

  std::array<uint8_t, 16> iv;
  for (int i = 0; i < 8; ++i) {
    iv[i] = static_cast<uint8_t>(kIvLo >> (8 * i));
    iv[8 + i] = static_cast<uint8_t>(kIvHi >> (8 * i));
  }
  services::Aes128 sw(kKeyLo, kKeyHi);
  EXPECT_EQ(cipher, sw.EncryptCbc(plain, iv));
}

TEST(AesEndToEnd, CbcMultiThreadedLanesAreIndependentAndCorrect) {
  SimDevice::Config cfg = DefaultConfig();
  cfg.vfpga.num_host_streams = 8;
  SimDevice dev(cfg);
  dev.vfpga(0).LoadKernel(std::make_unique<services::AesCbcKernel>());

  const uint64_t kKeyLo = 0x1111111122222222ull;
  const uint64_t kKeyHi = 0x3333333344444444ull;

  constexpr int kThreads = 4;
  constexpr uint64_t kBytes = 8 * 1024;
  std::vector<std::unique_ptr<CThread>> threads;
  std::vector<uint64_t> srcs, dsts;
  std::vector<std::vector<uint8_t>> plains;
  std::vector<CThread::Task> tasks;

  for (int i = 0; i < kThreads; ++i) {
    threads.push_back(std::make_unique<CThread>(&dev, 0));
  }
  threads[0]->SetCsr(kKeyLo, services::kAesCsrKeyLo);
  threads[0]->SetCsr(kKeyHi, services::kAesCsrKeyHi);

  for (int i = 0; i < kThreads; ++i) {
    srcs.push_back(threads[i]->GetMem({Alloc::kHpf, kBytes}));
    dsts.push_back(threads[i]->GetMem({Alloc::kHpf, kBytes}));
    plains.push_back(RandomBytes(kBytes, 100 + i));
    threads[i]->WriteBuffer(srcs[i], plains[i].data(), kBytes);
  }
  for (int i = 0; i < kThreads; ++i) {
    SgEntry sg;
    sg.local = {.src_addr = srcs[i], .src_len = kBytes, .dst_addr = dsts[i],
                .dst_len = kBytes};
    tasks.push_back(threads[i]->Invoke(Oper::kLocalTransfer, sg));
  }
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_TRUE(threads[i]->Wait(tasks[i]));
  }

  services::Aes128 sw(kKeyLo, kKeyHi);
  const std::array<uint8_t, 16> iv{};  // CSR IV regs are zero
  for (int i = 0; i < kThreads; ++i) {
    std::vector<uint8_t> cipher(kBytes);
    threads[i]->ReadBuffer(dsts[i], cipher.data(), kBytes);
    EXPECT_EQ(cipher, sw.EncryptCbc(plains[i], iv)) << "thread " << i;
  }
}

TEST(AesEndToEnd, CbcMultiThreadingImprovesThroughput) {
  // The Fig. 10(b) effect in miniature: 4 threads on one vFPGA finish 4
  // messages in much less than 4x the single-thread time.
  auto run = [](int threads_n) -> sim::TimePs {
    SimDevice::Config cfg = DefaultConfig();
    cfg.vfpga.num_host_streams = 8;
    SimDevice dev(cfg);
    dev.vfpga(0).LoadKernel(std::make_unique<services::AesCbcKernel>());
    constexpr uint64_t kBytes = 32 * 1024;
    std::vector<std::unique_ptr<CThread>> threads;
    std::vector<CThread::Task> tasks;
    for (int i = 0; i < threads_n; ++i) {
      threads.push_back(std::make_unique<CThread>(&dev, 0));
      const uint64_t src = threads[i]->GetMem({Alloc::kHpf, kBytes});
      const uint64_t dst = threads[i]->GetMem({Alloc::kHpf, kBytes});
      SgEntry sg;
      sg.local = {.src_addr = src, .src_len = kBytes, .dst_addr = dst, .dst_len = kBytes};
      tasks.push_back(threads[i]->Invoke(Oper::kLocalTransfer, sg));
    }
    for (int i = 0; i < threads_n; ++i) {
      threads[i]->Wait(tasks[i]);
    }
    return dev.engine().Now();
  };
  const sim::TimePs t1 = run(1);
  const sim::TimePs t4 = run(4);
  // 4x the work in < 1.5x the time (pipeline slots were idle before).
  EXPECT_LT(t4, t1 * 3 / 2);
}

// --- HLL end-to-end ----------------------------------------------------------

TEST(HllEndToEnd, EstimateWithinFivePercent) {
  SimDevice dev(DefaultConfig());
  dev.vfpga(0).LoadKernel(std::make_unique<services::HllKernel>());
  CThread t(&dev, 0);

  constexpr uint64_t kItems = 100'000;
  constexpr uint64_t kDistinct = 20'000;
  std::vector<uint64_t> items(kItems);
  sim::Rng rng(7);
  for (auto& x : items) {
    x = rng.NextBounded(kDistinct);
  }
  std::vector<uint8_t> bytes(kItems * 8);
  std::memcpy(bytes.data(), items.data(), bytes.size());

  serving::ServingRequest req;
  req.kernel = "hll";
  req.payload = axi::BufferView(std::move(bytes));
  req.response_bytes = 8;  // the envelope supports asymmetric responses
  std::vector<uint8_t> out;
  ASSERT_EQ(serving::ExecuteSync(&t, req, &out).status, OpStatus::kOk);

  double estimate = 0;
  std::memcpy(&estimate, out.data(), 8);
  EXPECT_NEAR(estimate, static_cast<double>(kDistinct), 0.05 * kDistinct);
}

TEST(CThreadTest, ShellStatusRegistersReflectLiveCounters) {
  SimDevice dev(DefaultConfig());
  dev.vfpga(0).LoadKernel(std::make_unique<services::PassthroughKernel>());
  CThread t(&dev, 0);
  auto& bar = dev.xdma().bar();
  EXPECT_EQ(bar.Read(SimDevice::kStatusH2cBytes), 0u);

  const uint64_t src = t.GetMem({Alloc::kHpf, 64 << 10});
  const uint64_t dst = t.GetMem({Alloc::kHpf, 64 << 10});
  SgEntry sg;
  sg.local = {.src_addr = src, .src_len = 64 << 10, .dst_addr = dst, .dst_len = 64 << 10};
  ASSERT_TRUE(t.InvokeSync(Oper::kLocalTransfer, sg));
  dev.engine().RunUntilIdle();

  EXPECT_GE(bar.Read(SimDevice::kStatusH2cBytes), 64u << 10);
  EXPECT_GE(bar.Read(SimDevice::kStatusC2hBytes), 64u << 10);
  EXPECT_GE(bar.Read(SimDevice::kStatusPacketsMoved), 32u);  // 16 + 16 packets
  EXPECT_GE(bar.Read(SimDevice::kStatusWritebacks), 1u);
  const uint32_t v0 = SimDevice::kStatusVfpgaBase;
  EXPECT_GT(bar.Read(v0 + SimDevice::kStatusTlbHits), 0u);
  EXPECT_EQ(bar.Read(SimDevice::kStatusPageFaults), 0u);
  // Counters are live: an interrupt shows up immediately.
  dev.vfpga(0).RaiseUserInterrupt(1);
  EXPECT_EQ(bar.Read(v0 + SimDevice::kStatusUserIrqs), 1u);
}

// --- Storage service (paper §10 future work) ----------------------------------

TEST(StorageTest, RoundTripThroughTheNvmeService) {
  SimDevice::Config cfg = DefaultConfig();
  cfg.shell.services.push_back(fabric::Service::kStorage);
  SimDevice dev(cfg);
  ASSERT_NE(dev.nvme(), nullptr);
  CThread t(&dev, 0);

  constexpr uint64_t kBytes = 256 << 10;
  const uint64_t buf = t.GetMem({Alloc::kHpf, kBytes});
  const auto data = RandomBytes(kBytes, 55);
  t.WriteBuffer(buf, data.data(), kBytes);

  // Persist to the drive, scribble over memory, read back from the drive.
  SgEntry sg;
  sg.storage = {.lba = 128, .vaddr = buf, .len = kBytes};
  ASSERT_TRUE(t.InvokeSync(Oper::kStorageWrite, sg));
  std::vector<uint8_t> zero(kBytes, 0);
  t.WriteBuffer(buf, zero.data(), kBytes);
  const sim::TimePs read_start = dev.engine().Now();
  ASSERT_TRUE(t.InvokeSync(Oper::kStorageRead, sg));
  const sim::TimePs read_time = dev.engine().Now() - read_start;

  std::vector<uint8_t> back(kBytes);
  t.ReadBuffer(buf, back.data(), kBytes);
  EXPECT_EQ(back, data);
  // Timing: at least the command latency (75 us) + transfer at 7 GB/s.
  EXPECT_GT(read_time, sim::Microseconds(75));
  EXPECT_LT(read_time, sim::Milliseconds(1));
  EXPECT_EQ(dev.nvme()->reads(), 1u);
  EXPECT_EQ(dev.nvme()->writes(), 1u);
}

TEST(StorageTest, DriveContentsSurviveShellReconfiguration) {
  SimDevice::Config cfg = DefaultConfig();
  cfg.shell.services.push_back(fabric::Service::kStorage);
  SimDevice dev(cfg);
  CThread t(&dev, 0);
  const uint64_t buf = t.GetMem({Alloc::kHpf, 4096});
  const auto data = RandomBytes(4096, 56);
  t.WriteBuffer(buf, data.data(), 4096);
  SgEntry sg;
  sg.storage = {.lba = 0, .vaddr = buf, .len = 4096};
  ASSERT_TRUE(t.InvokeSync(Oper::kStorageWrite, sg));

  // Reconfigure to a shell WITHOUT storage: the drive is unreachable...
  synth::BuildFlow flow(dev.floorplan());
  fabric::ShellConfigDesc no_storage = cfg.shell;
  no_storage.name = "no-storage";
  no_storage.services = {fabric::Service::kHostStream, fabric::Service::kCardMemory};
  auto out = flow.RunShellFlow(no_storage, {});
  dev.WriteBitstreamFile("/bit/nostore.bin", out.shell_bitstream);
  ASSERT_TRUE(dev.ReconfigureShell("/bit/nostore.bin").ok);
  EXPECT_EQ(dev.nvme(), nullptr);
  CThread t2(&dev, 0);
  const uint64_t buf2 = t2.GetMem({Alloc::kHpf, 4096});
  SgEntry sg2;
  sg2.storage = {.lba = 0, .vaddr = buf2, .len = 4096};
  EXPECT_FALSE(t2.InvokeSync(Oper::kStorageRead, sg2));

  // ...but its contents persist: reconfigure storage back and read.
  auto with = flow.RunShellFlow(cfg.shell, {});
  dev.WriteBitstreamFile("/bit/store.bin", with.shell_bitstream);
  ASSERT_TRUE(dev.ReconfigureShell("/bit/store.bin").ok);
  CThread t3(&dev, 0);
  const uint64_t buf3 = t3.GetMem({Alloc::kHpf, 4096});
  SgEntry sg3;
  sg3.storage = {.lba = 0, .vaddr = buf3, .len = 4096};
  ASSERT_TRUE(t3.InvokeSync(Oper::kStorageRead, sg3));
  std::vector<uint8_t> back(4096);
  t3.ReadBuffer(buf3, back.data(), 4096);
  EXPECT_EQ(back, data);
}

// --- Portability across parts (paper §3: U55C, U250, U280) -------------------

class PartSweep : public ::testing::TestWithParam<fabric::FpgaPart> {};

TEST_P(PartSweep, SameApplicationRunsOnEveryCard) {
  // The thin static layer makes designs portable: the identical application
  // code runs unchanged on HBM (U55C/U280) and DDR (U250) cards.
  SimDevice::Config cfg = DefaultConfig();
  cfg.part = GetParam();
  SimDevice dev(cfg);
  dev.vfpga(0).LoadKernel(std::make_unique<services::PassthroughKernel>());
  CThread t(&dev, 0);
  constexpr uint64_t kBytes = 128 << 10;
  const uint64_t src = t.GetMem({Alloc::kHpf, kBytes});
  const uint64_t dst = t.GetMem({Alloc::kHpf, kBytes});
  const auto data = RandomBytes(kBytes, 77);
  t.WriteBuffer(src, data.data(), kBytes);
  SgEntry sg;
  sg.local = {.src_addr = src, .src_len = kBytes, .dst_addr = dst, .dst_len = kBytes};
  ASSERT_TRUE(t.InvokeSync(Oper::kLocalTransfer, sg));
  // Card migration also works against the part's own memory geometry.
  SgEntry mig;
  mig.local.src_addr = src;
  mig.local.src_len = kBytes;
  ASSERT_TRUE(t.InvokeSync(Oper::kMigrateToCard, mig));
  std::vector<uint8_t> out(kBytes);
  t.ReadBuffer(dst, out.data(), kBytes);
  EXPECT_EQ(out, data);
  EXPECT_EQ(dev.card_memory().config().num_channels, GetParam().memory_channels);
}

INSTANTIATE_TEST_SUITE_P(Parts, PartSweep,
                         ::testing::Values(fabric::kAlveoU55C, fabric::kAlveoU250,
                                           fabric::kAlveoU280));

// --- Pointer chasing via hardware send queues (paper §7.1) -------------------

class PointerChaseTest : public ::testing::Test {
 protected:
  // Builds a linked list of `n` nodes at random-ish spots inside a buffer;
  // returns {head_vaddr, expected_sum}.
  std::pair<uint64_t, int64_t> BuildList(CThread& t, int n, uint64_t seed) {
    const uint64_t buf = t.GetMem({Alloc::kHpf, static_cast<uint64_t>(n) * 64});
    sim::Rng rng(seed);
    std::vector<uint64_t> order(n);
    for (int i = 0; i < n; ++i) {
      order[i] = buf + static_cast<uint64_t>(i) * 64;  // spaced nodes
    }
    // Shuffle traversal order so hops are not sequential.
    for (int i = n - 1; i > 0; --i) {
      std::swap(order[i], order[rng.NextBounded(static_cast<uint64_t>(i) + 1)]);
    }
    int64_t sum = 0;
    for (int i = 0; i < n; ++i) {
      const uint64_t next = (i + 1 < n) ? order[i + 1] : 0;
      const int64_t value = static_cast<int64_t>(rng.NextBounded(1000)) - 500;
      sum += value;
      uint8_t node[16];
      std::memcpy(node, &next, 8);
      std::memcpy(node + 8, &value, 8);
      t.WriteBuffer(order[i], node, 16);
    }
    return {order[0], sum};
  }
};

TEST_F(PointerChaseTest, TraversesAndSumsWithoutHostInvolvement) {
  SimDevice dev(DefaultConfig());
  dev.vfpga(0).LoadKernel(std::make_unique<services::PointerChaseKernel>());
  CThread t(&dev, 0);
  auto [head, expected_sum] = BuildList(t, 200, 42);

  uint64_t irq_value = 0;
  bool irq_seen = false;
  t.SetInterruptCallback([&](uint64_t v) {
    irq_value = v;
    irq_seen = true;
  });

  t.SetCsr(head, services::kChaseCsrHead);
  t.SetCsr(0, services::kChaseCsrMaxNodes);
  const uint64_t sends_before = dev.vfpga(0).sends_posted();
  t.SetCsr(1, services::kChaseCsrStart);  // doorbell
  dev.WaitFor([&] { return t.GetCsr(services::kChaseCsrDone) == 1; });
  dev.engine().RunUntilIdle();

  EXPECT_EQ(t.GetCsr(services::kChaseCsrVisited), 200u);
  EXPECT_EQ(static_cast<int64_t>(t.GetCsr(services::kChaseCsrSum)), expected_sum);
  // Every hop was a hardware-issued descriptor.
  EXPECT_EQ(dev.vfpga(0).sends_posted() - sends_before, 200u);
  EXPECT_TRUE(irq_seen);
  EXPECT_EQ(static_cast<int64_t>(irq_value), expected_sum);
}

TEST_F(PointerChaseTest, CycleGuardStopsAtMaxNodes) {
  SimDevice dev(DefaultConfig());
  dev.vfpga(0).LoadKernel(std::make_unique<services::PointerChaseKernel>());
  CThread t(&dev, 0);
  // Two nodes pointing at each other: an infinite cycle.
  const uint64_t buf = t.GetMem({Alloc::kHpf, 4096});
  uint8_t node[16];
  const uint64_t a = buf, b = buf + 64;
  int64_t one = 1;
  std::memcpy(node, &b, 8);
  std::memcpy(node + 8, &one, 8);
  t.WriteBuffer(a, node, 16);
  std::memcpy(node, &a, 8);
  t.WriteBuffer(b, node, 16);

  t.SetCsr(a, services::kChaseCsrHead);
  t.SetCsr(50, services::kChaseCsrMaxNodes);
  t.SetCsr(1, services::kChaseCsrStart);
  dev.WaitFor([&] { return t.GetCsr(services::kChaseCsrDone) == 1; });
  EXPECT_EQ(t.GetCsr(services::kChaseCsrVisited), 50u);
}

TEST_F(PointerChaseTest, EmptyListCompletesImmediately) {
  SimDevice dev(DefaultConfig());
  dev.vfpga(0).LoadKernel(std::make_unique<services::PointerChaseKernel>());
  CThread t(&dev, 0);
  t.SetCsr(0, services::kChaseCsrHead);
  t.SetCsr(1, services::kChaseCsrStart);
  dev.WaitFor([&] { return t.GetCsr(services::kChaseCsrDone) == 1; });
  EXPECT_EQ(t.GetCsr(services::kChaseCsrVisited), 0u);
}

// --- Reconfiguration ----------------------------------------------------------

class ReconfigTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_ = DefaultConfig(2);
    dev_ = std::make_unique<SimDevice>(cfg_);
    dev_->RegisterKernelFactory("passthrough",
                                []() { return std::make_unique<services::PassthroughKernel>(); });
    dev_->RegisterKernelFactory("aes_ecb",
                                []() { return std::make_unique<services::AesEcbKernel>(); });

    // Build bitstreams with the real flows.
    synth::BuildFlow flow(dev_->floorplan());
    synth::Netlist passthrough{"passthrough", {synth::LibraryModule("passthrough")}};
    shell_out_ = flow.RunShellFlow(cfg_.shell, {passthrough});
    ASSERT_TRUE(shell_out_.ok) << shell_out_.error;
    dev_->WriteBitstreamFile("/bit/shell.bin", shell_out_.shell_bitstream);
    dev_->WriteBitstreamFile("/bit/passthrough.bin", shell_out_.app_bitstreams[0]);

    synth::Netlist aes{"aes_ecb", {synth::LibraryModule("aes_core")}};
    synth::BuildOutput aes_out = flow.RunAppFlow(aes, 1, shell_out_);
    ASSERT_TRUE(aes_out.ok) << aes_out.error;
    dev_->WriteBitstreamFile("/bit/aes.bin", aes_out.app_bitstreams[0]);
  }

  SimDevice::Config cfg_;
  std::unique_ptr<SimDevice> dev_;
  synth::BuildOutput shell_out_;
};

TEST_F(ReconfigTest, AppReconfigLoadsKernel) {
  CRcnfg rcnfg(dev_.get());
  auto result = rcnfg.ReconfigureApp("/bit/passthrough.bin", 0);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_NE(dev_->vfpga(0).kernel(), nullptr);
  EXPECT_EQ(dev_->vfpga(0).kernel()->name(), "passthrough");
  EXPECT_GT(result.kernel_latency, 0u);
  EXPECT_GT(result.total_latency, result.kernel_latency);
}

TEST_F(ReconfigTest, AppLinkedAgainstOtherShellIsRejected) {
  // Build an app against a *different* shell config.
  fabric::ShellConfigDesc other = cfg_.shell;
  other.page_bytes = 1ull << 30;
  synth::BuildFlow flow(dev_->floorplan());
  auto other_shell = flow.RunShellFlow(other, {});
  ASSERT_TRUE(other_shell.ok) << other_shell.error;
  synth::Netlist aes{"aes_ecb", {synth::LibraryModule("aes_core")}};
  auto app = flow.RunAppFlow(aes, 0, other_shell);
  ASSERT_TRUE(app.ok);
  dev_->WriteBitstreamFile("/bit/wrong.bin", app.app_bitstreams[0]);

  CRcnfg rcnfg(dev_.get());
  auto result = rcnfg.ReconfigureApp("/bit/wrong.bin", 0);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("different shell"), std::string::npos);
}

TEST_F(ReconfigTest, ShellReconfigSwapsServicesAndResetsApps) {
  CRcnfg rcnfg(dev_.get());
  ASSERT_TRUE(rcnfg.ReconfigureApp("/bit/passthrough.bin", 0).ok);
  ASSERT_NE(dev_->vfpga(0).kernel(), nullptr);

  // New shell with 1 GB pages.
  fabric::ShellConfigDesc next = cfg_.shell;
  next.name = "hugepage-shell";
  next.page_bytes = 1ull << 30;
  synth::BuildFlow flow(dev_->floorplan());
  auto out = flow.RunShellFlow(next, {});
  ASSERT_TRUE(out.ok);
  dev_->WriteBitstreamFile("/bit/shell2.bin", out.shell_bitstream);

  auto result = rcnfg.ReconfigureShell("/bit/shell2.bin");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(dev_->active_shell().page_bytes, 1ull << 30);
  EXPECT_EQ(dev_->vfpga(0).kernel(), nullptr);  // apps reset with the shell
  // Old-shell app no longer loads.
  EXPECT_FALSE(rcnfg.ReconfigureApp("/bit/passthrough.bin", 0).ok);
}

TEST_F(ReconfigTest, ShellReconfigOrderOfMagnitudeFasterThanVivado) {
  CRcnfg rcnfg(dev_.get());
  auto result = rcnfg.ReconfigureShell("/bit/shell.bin");
  ASSERT_TRUE(result.ok) << result.error;

  synth::BuildFlow flow(dev_->floorplan());
  const double vivado_s = flow.VivadoFullProgramSeconds(
      shell_out_.shell_bitstream.occupied + synth::LibraryModule("static_layer").res);
  EXPECT_GT(vivado_s * 1000.0, 10.0 * sim::ToMilliseconds(result.total_latency));
}

TEST(V1CompatTest, SingleStreamInterfaceLikeCoyoteV1) {
  // Coyote v1's interface limitation (Table 1: "Host, card, net (single)"):
  // the compat baseline exposes one host stream regardless of configuration.
  SimDevice::Config cfg = DefaultConfig();
  cfg.vfpga.num_host_streams = 8;
  cfg.v1_compat = true;
  SimDevice dev(cfg);
  EXPECT_EQ(dev.vfpga(0).config().num_host_streams, 1u);
  EXPECT_EQ(dev.vfpga(0).config().num_card_streams, 1u);
  // All cThreads collapse onto stream 0; transfers still work.
  dev.vfpga(0).LoadKernel(std::make_unique<services::PassthroughKernel>());
  CThread a(&dev, 0), b(&dev, 0);
  EXPECT_NE(a.ctid(), b.ctid());
  const uint64_t src = a.GetMem({Alloc::kHpf, 8192});
  const uint64_t dst = a.GetMem({Alloc::kHpf, 8192});
  const auto data = RandomBytes(8192, 88);
  a.WriteBuffer(src, data.data(), data.size());
  SgEntry sg;
  sg.local = {.src_addr = src, .src_len = 8192, .dst_addr = dst, .dst_len = 8192};
  ASSERT_TRUE(a.InvokeSync(Oper::kLocalTransfer, sg));
  std::vector<uint8_t> out(8192);
  a.ReadBuffer(dst, out.data(), out.size());
  EXPECT_EQ(out, data);
}

TEST_F(ReconfigTest, V1CompatCannotReconfigureShell) {
  SimDevice::Config cfg = DefaultConfig(2);
  cfg.v1_compat = true;
  SimDevice dev(cfg);
  dev.WriteBitstreamFile("/bit/shell.bin", shell_out_.shell_bitstream);
  auto result = dev.ReconfigureShell("/bit/shell.bin");
  EXPECT_FALSE(result.ok);
}

}  // namespace
}  // namespace runtime
}  // namespace coyote
