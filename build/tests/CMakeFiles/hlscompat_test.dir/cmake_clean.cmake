file(REMOVE_RECURSE
  "CMakeFiles/hlscompat_test.dir/hlscompat_test.cc.o"
  "CMakeFiles/hlscompat_test.dir/hlscompat_test.cc.o.d"
  "hlscompat_test"
  "hlscompat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlscompat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
