#include "src/runtime/cthread.h"

#include <cassert>

namespace coyote {
namespace runtime {
namespace {

memsys::AllocKind ToAllocKind(Alloc a) {
  switch (a) {
    case Alloc::kReg:
      return memsys::AllocKind::kRegular;
    case Alloc::kHpf:
      return memsys::AllocKind::kHuge2M;
    case Alloc::kHuge1G:
      return memsys::AllocKind::kHuge1G;
  }
  return memsys::AllocKind::kRegular;
}

}  // namespace

CThread::CThread(SimDevice* dev, uint32_t vfpga_id, int64_t ctid)
    : dev_(dev), vfpga_id_(vfpga_id) {
  ctid_ = ctid < 0 ? dev_->AllocateCtid(vfpga_id)
                   : static_cast<uint32_t>(ctid) % 4096;

  // Writeback slots: the shell updates these host-memory counters when
  // transfers complete, so completion checks never cross PCIe (§5.1).
  rd_writeback_addr_ = dev_->host_memory().Allocate(64, memsys::AllocKind::kRegular);
  wr_writeback_addr_ = dev_->host_memory().Allocate(64, memsys::AllocKind::kRegular);
  dev_->writeback().RegisterSlot({vfpga_id_, ctid_, false}, rd_writeback_addr_);
  dev_->writeback().RegisterSlot({vfpga_id_, ctid_, true}, wr_writeback_addr_);
}

uint64_t CThread::GetMem(const AllocSpec& spec) {
  const uint64_t vaddr = dev_->host_memory().Allocate(spec.bytes, ToAllocKind(spec.kind));
  auto alloc = dev_->host_memory().FindAllocation(vaddr);
  dev_->svm().RegisterHostBuffer(vaddr, alloc->bytes);
  // Pre-warm this vFPGA's TLB for the buffer's pages.
  mmu::Mmu& mmu = dev_->vfpga_mmu(vfpga_id_);
  const uint64_t page = dev_->svm().page_table().page_bytes();
  for (uint64_t a = vaddr; a < vaddr + alloc->bytes; a += page) {
    if (auto entry = dev_->svm().page_table().Find(a)) {
      mmu.tlb().Insert(a, *entry);
    }
  }
  return vaddr;
}

bool CThread::FreeMem(uint64_t vaddr) {
  auto alloc = dev_->host_memory().FindAllocation(vaddr);
  if (!alloc) {
    return false;
  }
  const uint64_t page = dev_->svm().page_table().page_bytes();
  for (uint64_t a = vaddr; a < vaddr + alloc->bytes; a += page) {
    dev_->svm().page_table().Unmap(a);
    dev_->vfpga_mmu(vfpga_id_).InvalidateTlb(a);
  }
  return dev_->host_memory().Free(vaddr);
}

void CThread::WriteBuffer(uint64_t vaddr, const void* src, uint64_t len) {
  dev_->svm().WriteVirtual(vaddr, src, len);
}

void CThread::ReadBuffer(uint64_t vaddr, void* dst, uint64_t len) {
  dev_->svm().ReadVirtual(vaddr, dst, len);
}

void CThread::SetCsr(uint64_t value, uint32_t index) {
  // Posted BAR write: charge the PCIe latency, then the register updates.
  auto& region = dev_->vfpga(vfpga_id_);
  dev_->engine().ScheduleAfter(dev_->xdma().config().bar_write_latency,
                               [&region, value, index]() { region.csr().Write(index, value); });
  // The host program "blocks" for the posted write to drain so that
  // subsequent invokes observe the register (simplest coherent model).
  dev_->engine().RunUntil(dev_->engine().Now() + dev_->xdma().config().bar_write_latency);
}

uint64_t CThread::GetCsr(uint32_t index) {
  // Non-posted read: full round trip before the value is available.
  dev_->engine().RunUntil(dev_->engine().Now() + dev_->xdma().config().bar_read_latency);
  return dev_->vfpga(vfpga_id_).csr().Read(index);
}

uint32_t CThread::StreamFor(uint32_t requested) const {
  if (requested != SgEntry::kAutoStream) {
    return requested;
  }
  return ctid_ % dev_->vfpga(vfpga_id_).config().num_host_streams;
}

void CThread::FinishTask(uint64_t task_id, bool ok, bool write_direction) {
  auto it = tasks_.find(task_id);
  if (it == tasks_.end()) {
    return;
  }
  TaskState& state = it->second;
  if (state.status != OpStatus::kPending) {
    return;  // already forced terminal (deadline/abort); late completion
  }
  state.ok = state.ok && ok;
  if (--state.remaining == 0) {
    state.status = state.ok ? OpStatus::kOk : OpStatus::kError;
    if (state.deadline_timer != sim::TimerWheel::kInvalidTimer) {
      dev_->timers().Cancel(state.deadline_timer);
      state.deadline_timer = sim::TimerWheel::kInvalidTimer;
    }
    const OpStatus status = state.status;
    dev_->writeback().Complete({vfpga_id_, ctid_, write_direction});
    if (completion_cb_) {
      // After the writeback so host pollers and the callback agree; the
      // callback may Invoke, which mutates tasks_, so `state` is dead here.
      completion_cb_(Task{task_id}, status);
    }
  }
}

void CThread::ForceTerminal(uint64_t task_id, OpStatus status) {
  auto it = tasks_.find(task_id);
  if (it == tasks_.end()) {
    return;
  }
  TaskState& state = it->second;
  if (state.status != OpStatus::kPending) {
    return;
  }
  state.status = status;
  state.ok = false;
  state.remaining = 0;
  if (state.deadline_timer != sim::TimerWheel::kInvalidTimer) {
    dev_->timers().Cancel(state.deadline_timer);
    state.deadline_timer = sim::TimerWheel::kInvalidTimer;
  }
  // Complete the writeback slot so a host spinning on the counter unblocks
  // with the error status instead of hanging with the stuck hardware.
  dev_->writeback().Complete({vfpga_id_, ctid_, true});
  if (completion_cb_) {
    completion_cb_(Task{task_id}, status);
  }
}

CThread::Task CThread::Invoke(Oper oper, const SgEntry& sg) {
  const uint64_t task_id = next_task_id_++;
  TaskState& state = tasks_[task_id];
  state.remaining = 0;
  state.oper = oper;
  state.sg = sg;

  auto& region = dev_->vfpga(vfpga_id_);
  auto& mover = dev_->data_mover();
  const sim::TimePs start = dev_->engine().Now() + dev_->config().invoke_latency;

  const uint32_t src_stream = StreamFor(sg.local.src_stream);
  const uint32_t dst_stream = StreamFor(sg.local.dst_stream);

  switch (oper) {
    case Oper::kNoop:
      break;
    case Oper::kLocalTransfer:
    case Oper::kLocalRead:
    case Oper::kLocalWrite: {
      if (oper != Oper::kLocalWrite && sg.local.src_len > 0) {
        ++state.remaining;
        dyn::TransferRequest req{vfpga_id_, ctid_, src_stream, sg.local.src_addr,
                                 sg.local.src_len, sg.local.src_target};
        axi::Stream* dst = sg.local.src_target == mmu::MemKind::kCard
                               ? &region.card_in(src_stream)
                               : &region.host_in(src_stream);
        dev_->engine().ScheduleAt(start, [this, task_id, req, dst, &mover]() {
          mover.Read(req, dst, [this, task_id](bool ok) { FinishTask(task_id, ok, false); });
        });
      }
      if (oper != Oper::kLocalRead && sg.local.dst_len > 0) {
        ++state.remaining;
        dyn::TransferRequest req{vfpga_id_, ctid_, dst_stream, sg.local.dst_addr,
                                 sg.local.dst_len, sg.local.dst_target};
        axi::Stream* src = sg.local.dst_target == mmu::MemKind::kCard
                               ? &region.card_out(dst_stream)
                               : &region.host_out(dst_stream);
        dev_->engine().ScheduleAt(start, [this, task_id, req, src, &mover]() {
          mover.Write(req, src, [this, task_id](bool ok) { FinishTask(task_id, ok, true); });
        });
      }
      break;
    }
    case Oper::kMigrateToCard:
    case Oper::kMigrateToHost: {
      ++state.remaining;
      const mmu::MemKind target =
          oper == Oper::kMigrateToCard ? mmu::MemKind::kCard : mmu::MemKind::kHost;
      dev_->engine().ScheduleAt(start, [this, task_id, sg, target, &mover]() {
        mover.Migrate(vfpga_id_, sg.local.src_addr, sg.local.src_len, target,
                      [this, task_id](bool ok) { FinishTask(task_id, ok, true); });
      });
      break;
    }
    case Oper::kStorageRead:
    case Oper::kStorageWrite: {
      memsys::NvmeDrive* drive = dev_->nvme();
      ++state.remaining;
      if (drive == nullptr) {
        // Shell built without the storage service: the request faults.
        dev_->engine().ScheduleAt(start, [this, task_id]() {
          FinishTask(task_id, false, true);
        });
        break;
      }
      const uint32_t block = drive->config().block_bytes;
      const uint32_t blocks =
          static_cast<uint32_t>((sg.storage.len + block - 1) / block);
      const bool is_read = oper == Oper::kStorageRead;
      dev_->engine().ScheduleAt(start, [this, task_id, sg, drive, blocks, is_read]() {
        const uint64_t byte_addr = sg.storage.lba * drive->config().block_bytes;
        if (is_read) {
          drive->ReadCommand(sg.storage.lba, blocks, vfpga_id_,
                             [this, task_id, sg, drive, byte_addr]() {
                               std::vector<uint8_t> buf(sg.storage.len);
                               drive->store().Read(byte_addr, buf.data(), buf.size());
                               dev_->svm().WriteVirtual(sg.storage.vaddr, buf.data(),
                                                        buf.size());
                               FinishTask(task_id, true, false);
                             });
        } else {
          std::vector<uint8_t> buf(sg.storage.len);
          dev_->svm().ReadVirtual(sg.storage.vaddr, buf.data(), buf.size());
          drive->store().Write(byte_addr, buf.data(), buf.size());
          drive->WriteCommand(sg.storage.lba, blocks, vfpga_id_,
                              [this, task_id]() { FinishTask(task_id, true, true); });
        }
      });
      break;
    }
    case Oper::kRemoteWrite:
    case Oper::kRemoteRead: {
      net::RoceStack* roce = dev_->roce();
      ++state.remaining;
      if (roce == nullptr) {
        // Shell built without the RDMA service: typed error completion
        // instead of a crash or a silent stall.
        dev_->engine().ScheduleAt(start, [this, task_id]() {
          FinishTask(task_id, false, true);
        });
        break;
      }
      const bool is_write = oper == Oper::kRemoteWrite;
      dev_->engine().ScheduleAt(start, [this, task_id, sg, roce, is_write]() {
        auto done = [this, task_id](bool ok) { FinishTask(task_id, ok, true); };
        if (is_write) {
          roce->PostWrite(sg.rdma.qpn, sg.rdma.local_addr, sg.rdma.remote_addr, sg.rdma.len,
                          done);
        } else {
          roce->PostRead(sg.rdma.qpn, sg.rdma.local_addr, sg.rdma.remote_addr, sg.rdma.len,
                         done);
        }
      });
      break;
    }
  }

  if (state.remaining == 0) {
    state.remaining = 1;
    dev_->engine().ScheduleAt(start, [this, task_id]() { FinishTask(task_id, true, false); });
  }

  // Arm the per-op deadline: this cThread's override, else the device-wide
  // default; 0 means the op may wait forever (legacy behavior).
  const sim::TimePs deadline =
      op_deadline_ != 0 ? op_deadline_ : dev_->config().default_op_deadline;
  if (deadline != 0) {
    state.deadline_timer = dev_->timers().ScheduleAfter(deadline, [this, task_id]() {
      auto it = tasks_.find(task_id);
      if (it == tasks_.end() || it->second.status != OpStatus::kPending) {
        return;
      }
      ++deadline_misses_;
      ForceTerminal(task_id, OpStatus::kDeadlineExceeded);
      dev_->NotifyOpDeadline(vfpga_id_);
    });
  }
  return Task{task_id};
}

bool CThread::CheckCompleted(Task task) const {
  auto it = tasks_.find(task.id);
  return it != tasks_.end() && it->second.remaining == 0;
}

bool CThread::Wait(Task task) {
  dev_->WaitFor([this, task]() { return CheckCompleted(task); });
  auto it = tasks_.find(task.id);
  return it != tasks_.end() && it->second.ok;
}

OpStatus CThread::Status(Task task) const {
  auto it = tasks_.find(task.id);
  return it == tasks_.end() ? OpStatus::kPending : it->second.status;
}

size_t CThread::AbortPending(OpStatus status) {
  // Collect first: ForceTerminal fires the completion callback, which may
  // Invoke new work and mutate tasks_ under a live iterator.
  std::vector<uint64_t> pending;
  for (const auto& [id, state] : tasks_) {
    if (state.status == OpStatus::kPending) {
      pending.push_back(id);
    }
  }
  for (uint64_t id : pending) {
    ForceTerminal(id, status);
  }
  return pending.size();
}

std::vector<CThread::PendingOp> CThread::SnapshotPending() const {
  std::vector<PendingOp> out;
  for (const auto& [id, state] : tasks_) {
    if (state.status == OpStatus::kPending) {
      out.push_back(PendingOp{id, state.oper, state.sg});
    }
  }
  return out;
}

void CThread::SetInterruptCallback(std::function<void(uint64_t value)> cb) {
  // eventfd-style: the driver routes this vFPGA's user vector to the
  // callback. One callback per vFPGA in this model; last writer wins, as
  // with re-registering an eventfd.
  const uint32_t id = vfpga_id_;
  dev_->SetUserInterruptCallback(
      [id, cb = std::move(cb)](uint32_t vfpga_id, uint64_t value) {
        if (vfpga_id == id && cb) {
          cb(value);
        }
      });
}

uint32_t CThread::CreateQp() {
  assert(dev_->roce() != nullptr);
  return dev_->roce()->CreateQp();
}

void CThread::ConnectQp(uint32_t local_qpn, uint32_t remote_ip, uint32_t remote_qpn) {
  assert(dev_->roce() != nullptr);
  dev_->roce()->Connect(local_qpn, remote_ip, remote_qpn);
}

}  // namespace runtime
}  // namespace coyote
