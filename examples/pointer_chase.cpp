// Hardware-issued DMA: pointer chasing (paper §7.1).
//
// Traverses a linked list in host memory two ways:
//  1. host-driven: the CPU reads each node, then issues the next read —
//     paying the invoke/readback round trip per hop;
//  2. hardware send queues: the vFPGA issues every dependent read itself;
//     the CPU only rings a doorbell and receives one interrupt at the end.
// Prints per-hop latency for both. The gap is the paper's motivation for
// the read/write send queue interface.
//
// The list buffer starts host-resident; the memory-tiering service profiles
// the chase (functional accesses + vFPGA TLB misses) and promotes the hot
// page into HBM, so the run also demonstrates the profiling loop end to end.

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "src/mmu/tiering.h"
#include "src/runtime/cthread.h"
#include "src/runtime/device.h"
#include "src/services/pointer_chase.h"
#include "src/sim/rng.h"

using namespace coyote;

namespace {

// Builds an n-node list inside a fresh buffer; returns {head, sum}.
std::pair<uint64_t, int64_t> BuildList(runtime::cThread& t, int n) {
  const uint64_t buf = t.GetMem({runtime::Alloc::kHpf, static_cast<uint64_t>(n) * 64});
  sim::Rng rng(7);
  std::vector<uint64_t> order(n);
  for (int i = 0; i < n; ++i) {
    order[i] = buf + static_cast<uint64_t>(i) * 64;
  }
  for (int i = n - 1; i > 0; --i) {
    std::swap(order[i], order[rng.NextBounded(static_cast<uint64_t>(i) + 1)]);
  }
  int64_t sum = 0;
  for (int i = 0; i < n; ++i) {
    const uint64_t next = (i + 1 < n) ? order[i + 1] : 0;
    const int64_t value = static_cast<int64_t>(rng.NextBounded(100));
    sum += value;
    uint8_t node[16];
    std::memcpy(node, &next, 8);
    std::memcpy(node + 8, &value, 8);
    t.WriteBuffer(order[i], node, 16);
  }
  return {order[0], sum};
}

void PrintTieringProfile(const mmu::Tiering& tiering) {
  const sim::Histogram heat = tiering.HeatHistogram();
  std::printf("tiering: %llu tracked pages, occupancy hbm=%llu host=%llu nvme=%llu\n",
              static_cast<unsigned long long>(tiering.tracked_pages()),
              static_cast<unsigned long long>(tiering.occupancy(mmu::MemKind::kCard)),
              static_cast<unsigned long long>(tiering.occupancy(mmu::MemKind::kHost)),
              static_cast<unsigned long long>(tiering.occupancy(mmu::MemKind::kNvme)));
  std::printf("tiering: heat histogram (log2 buckets):");
  for (size_t b = 0; b < 24; ++b) {
    if (tiering.HeatHistogram().bucket(b) != 0) {
      std::printf(" [2^%zu)=%llu", b, static_cast<unsigned long long>(heat.bucket(b)));
    }
  }
  std::printf("\n");
  std::printf("tiering: accesses=%llu tlb_misses=%llu promotions=%llu migrated=%llu B\n",
              static_cast<unsigned long long>(tiering.stats().value("tiering.accesses")),
              static_cast<unsigned long long>(tiering.stats().value("tiering.tlb_misses")),
              static_cast<unsigned long long>(tiering.stats().value("tiering.promotions")),
              static_cast<unsigned long long>(tiering.stats().value("tiering.migrated_bytes")));
}

}  // namespace

int main() {
  constexpr int kNodes = 1000;

  runtime::SimDevice::Config cfg;
  cfg.shell.services = {fabric::Service::kHostStream};
  cfg.shell.num_vfpgas = 1;
  runtime::SimDevice dev(cfg);
  dev.vfpga(0).LoadKernel(std::make_unique<services::PointerChaseKernel>());
  runtime::cThread t(&dev, 0);
  auto [head, expected] = BuildList(t, kNodes);

  // Oversubscription in miniature: one HBM slot, and the profile decides the
  // chased page deserves it.
  mmu::Tiering::Config tiering_cfg;
  tiering_cfg.policy = mmu::Tiering::Policy::kProfileGuided;
  tiering_cfg.fast_capacity_pages = 1;
  mmu::Tiering& tiering = dev.EnableTiering(tiering_cfg);
  tiering.Manage(head, 64);

  // --- 1. Host-driven traversal: one blocking invoke per hop. --------------
  sim::TimePs host_elapsed = 0;
  {
    const sim::TimePs start = dev.engine().Now();
    uint64_t cursor = head;
    int64_t sum = 0;
    int hops = 0;
    while (cursor != 0 && hops < kNodes) {
      // The CPU must wait out the doorbell/DMA/completion path per node.
      runtime::SgEntry sg;
      sg.local = {.src_addr = cursor, .src_len = 16, .dst_addr = 0, .dst_len = 0};
      t.InvokeSync(runtime::Oper::kLocalRead, sg);
      // Drain the packet the kernel received on our behalf (host-side copy).
      uint8_t node[16];
      t.ReadBuffer(cursor, node, 16);
      uint64_t next = 0;
      int64_t value = 0;
      std::memcpy(&next, node, 8);
      std::memcpy(&value, node + 8, 8);
      sum += value;
      cursor = next;
      ++hops;
      // Consume the delivered packet so credits replenish.
      while (dev.vfpga(0).host_in(0).Pop()) {
      }
    }
    host_elapsed = dev.engine().Now() - start;
    std::printf("host-driven:     sum=%lld (%s), %d hops, %.2f us/hop\n",
                static_cast<long long>(sum), sum == expected ? "correct" : "WRONG", hops,
                sim::ToMicroseconds(host_elapsed) / kNodes);
    if (sum != expected) {
      return 1;
    }
  }

  // --- 2. Hardware send queues: doorbell, then interrupt. ------------------
  {
    bool irq = false;
    t.SetInterruptCallback([&](uint64_t) { irq = true; });
    const sim::TimePs start = dev.engine().Now();
    t.SetCsr(head, services::kChaseCsrHead);
    t.SetCsr(0, services::kChaseCsrMaxNodes);
    t.SetCsr(1, services::kChaseCsrStart);
    dev.WaitFor([&] { return irq; });
    const sim::TimePs hw_elapsed = dev.engine().Now() - start;
    const int64_t sum = static_cast<int64_t>(t.GetCsr(services::kChaseCsrSum));
    std::printf("hardware SQ:     sum=%lld (%s), %llu hops, %.2f us/hop\n",
                static_cast<long long>(sum), sum == expected ? "correct" : "WRONG",
                static_cast<unsigned long long>(t.GetCsr(services::kChaseCsrVisited)),
                sim::ToMicroseconds(hw_elapsed) / kNodes);
    std::printf("speedup: %.1fx — the CPU issued 3 CSR writes instead of %d invokes\n",
                static_cast<double>(host_elapsed) / static_cast<double>(hw_elapsed), kNodes);
    if (sum != expected) {
      return 1;
    }
  }

  // During the run, host-stream invokes keep dragging the page back to host
  // residency (demand placement wins the instant); once the doorbells stop,
  // the accumulated heat wins the epoch and the page settles in HBM.
  dev.engine().RunUntil(dev.engine().Now() + sim::Milliseconds(5));
  PrintTieringProfile(tiering);
  const bool promoted = tiering.occupancy(mmu::MemKind::kCard) == 1 &&
                        tiering.stats().value("tiering.promotions") >= 1;
  std::printf("tiering: hot list page %s\n",
              promoted ? "settled in HBM by the profile" : "NOT promoted (unexpected)");
  return promoted ? 0 : 1;
}
