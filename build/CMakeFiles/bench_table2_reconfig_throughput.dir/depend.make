# Empty dependencies file for bench_table2_reconfig_throughput.
# This may be replaced when dependencies are built.
