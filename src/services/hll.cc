#include "src/services/hll.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/sim/clock.h"

namespace coyote {
namespace services {

HllSketch::HllSketch(uint32_t precision) : precision_(precision) {
  num_buckets_ = 1u << precision_;
  buckets_.assign(num_buckets_, 0);
  // Standard bias-correction constants (Flajolet et al.).
  double alpha;
  switch (num_buckets_) {
    case 16:
      alpha = 0.673;
      break;
    case 32:
      alpha = 0.697;
      break;
    case 64:
      alpha = 0.709;
      break;
    default:
      alpha = 0.7213 / (1.0 + 1.079 / static_cast<double>(num_buckets_));
      break;
  }
  alpha_mm_ = alpha * static_cast<double>(num_buckets_) * static_cast<double>(num_buckets_);
}

uint64_t HllSketch::Hash(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

void HllSketch::Add(uint64_t item) {
  const uint64_t h = Hash(item);
  const uint32_t bucket = static_cast<uint32_t>(h >> (64 - precision_));
  const uint64_t rest = h << precision_;
  // Rank: position of the leftmost 1-bit in the remaining bits, 1-based;
  // all-zero remainder gets the maximum rank.
  const uint8_t rank =
      rest == 0 ? static_cast<uint8_t>(64 - precision_ + 1)
                : static_cast<uint8_t>(__builtin_clzll(rest) + 1);
  guard_.Write();
  buckets_[bucket] = std::max(buckets_[bucket], rank);
  ++items_;
}

double HllSketch::Estimate() const {
  double sum = 0.0;
  uint32_t zeros = 0;
  for (uint8_t b : buckets_) {
    sum += std::ldexp(1.0, -b);
    if (b == 0) {
      ++zeros;
    }
  }
  double estimate = alpha_mm_ / sum;
  // Small-range correction: linear counting.
  const double m = static_cast<double>(num_buckets_);
  if (estimate <= 2.5 * m && zeros != 0) {
    estimate = m * std::log(m / static_cast<double>(zeros));
  }
  return estimate;
}

void HllSketch::Clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  items_ = 0;
}

void HllKernel::Attach(vfpga::Vfpga* region) {
  region_ = region;
  pipe_free_cycle_ = 0;
  region->csr().SetWriteHook(kHllCsrCtrl, [this](uint32_t, uint64_t value) {
    if (value & 1) {
      sketch_.Clear();
    }
  });
  region->host_in(0).set_on_data([this]() { Pump(); });
  Pump();
}

void HllKernel::Detach() {
  if (region_ != nullptr) {
    region_->host_in(0).set_on_data(nullptr);
    region_ = nullptr;
  }
}

void HllKernel::Pump() {
  auto& in = region_->host_in(0);
  const sim::Clock& clk = sim::kSystemClock;
  while (!in.Empty()) {
    auto pkt = in.Pop();
    const uint64_t n = pkt->data.size();

    // Absorb 64-bit items. The dataflow design takes a full 512-bit beat of
    // 8 items per cycle.
    for (uint64_t off = 0; off + 8 <= n; off += 8) {
      uint64_t item = 0;
      std::memcpy(&item, &pkt->data[off], 8);
      sketch_.Add(item);
    }
    region_->csr().Poke(kHllCsrCount, sketch_.items_added());

    const uint64_t now_cycle = clk.PsToCycles(region_->engine()->Now());
    const uint64_t start = std::max(now_cycle, pipe_free_cycle_);
    const uint64_t busy = (n + axi::kDataBusBytes - 1) / axi::kDataBusBytes;
    pipe_free_cycle_ = start + busy;

    if (pkt->last) {
      // Emit the 8-byte estimate once the pipeline drains.
      const double estimate = sketch_.Estimate();
      axi::StreamPacket out;
      out.data.resize(8);
      std::memcpy(out.data.data(), &estimate, 8);
      out.tid = pkt->tid;
      out.last = true;
      vfpga::Vfpga* r = region_;
      const sim::TimePs when = clk.CyclesToPs(pipe_free_cycle_ + kPipelineDepth);
      region_->engine()->ScheduleAt(when, [r, out = std::move(out)]() mutable {
        r->host_out(0).Push(std::move(out));
      });
    }
  }
}

}  // namespace services
}  // namespace coyote
