#include "src/fabric/floorplan.h"

#include <algorithm>

namespace coyote {
namespace fabric {
namespace {

// Layer area fractions of the default floorplan. The static layer is thin by
// design (paper §3: "the primary purpose of the static layer is now only to
// provide a link between the host CPU and the FPGA"); the service region must
// fit the heaviest supported shell (RDMA + memory controllers + MMU); the
// remainder is split evenly across vFPGA slots.
constexpr double kStaticFraction = 0.07;
constexpr double kServiceFraction = 0.44;
constexpr double kAppFraction = 0.49;

uint64_t FramesBytes(const ResourceVector& budget) {
  return static_cast<uint64_t>(static_cast<double>(budget.luts) * kBitstreamBytesPerLut);
}

uint64_t CompressedBytes(uint64_t frame_bytes, double occupancy) {
  const double fill =
      std::min(1.0, kBitstreamBaseFill + kBitstreamFillPerUtil * std::clamp(occupancy, 0.0, 1.0));
  return static_cast<uint64_t>(static_cast<double>(frame_bytes) * fill);
}

}  // namespace

Floorplan Floorplan::ForPart(const FpgaPart& part, uint32_t num_app_regions) {
  Floorplan fp(part);
  fp.static_region_ = Region{Layer::kStatic, 0, "static", part.total.Scaled(kStaticFraction)};
  fp.service_region_ = Region{Layer::kDynamic, 0, "dynamic", part.total.Scaled(kServiceFraction)};
  const uint32_t n = std::max(1u, num_app_regions);
  const ResourceVector per_app = part.total.Scaled(kAppFraction / static_cast<double>(n));
  fp.app_regions_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    fp.app_regions_.push_back(Region{Layer::kApp, i, "vfpga" + std::to_string(i), per_app});
  }
  return fp;
}

uint64_t Floorplan::RegionBitstreamBytes(const Region& region,
                                         const ResourceVector& occupied) const {
  return CompressedBytes(FramesBytes(region.budget), occupied.LutUtilization(region.budget));
}

uint64_t Floorplan::ShellBitstreamBytes(const ResourceVector& occupied) const {
  const ResourceVector budget = ShellBudget();
  return CompressedBytes(FramesBytes(budget), occupied.LutUtilization(budget));
}

ResourceVector Floorplan::ShellBudget() const {
  ResourceVector budget = service_region_.budget;
  for (const Region& r : app_regions_) {
    budget += r.budget;
  }
  return budget;
}

}  // namespace fabric
}  // namespace coyote
