// Sharded-engine conformance suite.
//
// The claim under test: partitioning a simulation across N shards changes
// wall-clock behavior ONLY. Every observable — per-node event logs, event
// counts, payload bytes, stack statistics, fingerprints — must be
// bit-identical for N in {1, 2, 4, 8}, threaded or sequential, and identical
// to the single-shard reference. Two layers of evidence:
//
//   1. Scenario models (ping-pong pairs, seeded gossip, heartbeat monitor
//      with failure detection — the shapes of the chaos soak and supervisor
//      recovery suites) where all cross-node traffic flows through
//      ShardedEngine::Post keyed by sender node id. Per-node logs are
//      compared record-for-record across every (shard count, threading)
//      combination.
//
//   2. Real-stack replicas: full RoCE ping-pong clusters (SVM + network +
//      stacks, the determinism_test topology) pinned one-per-shard and run
//      under worker threads, each compared bit-for-bit against the same
//      cluster on a plain single Engine. This is the proof that the existing
//      stacks are safe to drive from shard workers (and that the shard
//      ownership guards stay silent when the partitioning is legal).

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/memsys/card_memory.h"
#include "src/memsys/gpu_memory.h"
#include "src/memsys/host_memory.h"
#include "src/mmu/svm.h"
#include "src/net/network.h"
#include "src/net/roce.h"
#include "src/runtime/placement.h"
#include "src/sim/access_guard.h"
#include "src/sim/engine.h"
#include "src/sim/rng.h"
#include "src/sim/sharded_engine.h"

namespace coyote {
namespace {

using sim::TimePs;

// Modeled inter-node link latency; doubles as the conservative lookahead.
constexpr TimePs kLink = sim::Nanoseconds(1000);

constexpr uint32_t kPing = 1;
constexpr uint32_t kGossip = 2;
constexpr uint32_t kTick = 3;    // a node's own heartbeat timer
constexpr uint32_t kBeat = 4;    // heartbeat arriving at the monitor
constexpr uint32_t kCheck = 5;   // monitor staleness sweep
constexpr uint32_t kDetect = 6;  // monitor declared a node down
constexpr uint32_t kRecover = 7; // monitor saw a down node come back

struct Record {
  TimePs time = 0;
  uint32_t tag = 0;
  uint64_t value = 0;
  bool operator==(const Record&) const = default;
};

uint64_t Fingerprint(const std::vector<std::vector<Record>>& logs) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a
  auto fold = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 0x100000001b3ull;
    }
  };
  for (const auto& log : logs) {
    fold(log.size());
    for (const Record& r : log) {
      fold(r.time);
      fold(r.tag);
      fold(r.value);
    }
  }
  return h;
}

// Scenario harness: `num_nodes` logical nodes placed round-robin onto
// `num_shards` shards. Cross-node messages ALWAYS go through Post() with the
// sending node id as the merge-order key — the discipline that makes the
// per-node logs placement-invariant. Each node's log is only ever appended
// by that node's own deliveries (= its shard's thread), so the harness is
// race-free without any locking.
class Cluster {
 public:
  using Handler = std::function<void(Cluster&, uint32_t node, uint32_t tag, uint64_t value)>;

  Cluster(uint32_t num_nodes, uint32_t num_shards, bool use_threads, Handler handler)
      : shard_of_(runtime::ShardPlacement::RoundRobin(num_nodes, num_shards)),
        engine_(sim::ShardedEngine::Config{num_shards, kLink, 4096, use_threads}),
        logs_(num_nodes),
        handler_(std::move(handler)) {}

  sim::ShardedEngine& engine() { return engine_; }
  uint32_t num_nodes() const { return static_cast<uint32_t>(logs_.size()); }
  TimePs NowAt(uint32_t node) { return engine_.shard(shard_of_[node]).Now(); }
  const std::vector<std::vector<Record>>& logs() const { return logs_; }

  // Host-side: seeds the scenario with a first delivery on `node`.
  void Kick(uint32_t node, TimePs t, uint32_t tag, uint64_t value) {
    engine_.ScheduleOn(shard_of_[node], t, [this, node, tag, value] { Deliver(node, tag, value); });
  }

  // Node-side: cross-node message. `delay` must be >= kLink (the model's
  // physical floor), which keeps every post clear of the lookahead clamp.
  void Send(uint32_t src, uint32_t dst, TimePs delay, uint32_t tag, uint64_t value) {
    const TimePs t = NowAt(src) + delay;
    engine_.Post(
        shard_of_[dst], t, [this, dst, tag, value] { Deliver(dst, tag, value); },
        /*order_key=*/src);
  }

  // Node-side: node-local timer (stays on the node's own engine, any delay).
  void Local(uint32_t node, TimePs delay, uint32_t tag, uint64_t value) {
    engine_.shard(shard_of_[node])
        .ScheduleAfter(delay, [this, node, tag, value] { Deliver(node, tag, value); });
  }

 private:
  void Deliver(uint32_t node, uint32_t tag, uint64_t value) {
    logs_[node].push_back(Record{NowAt(node), tag, value});
    handler_(*this, node, tag, value);
  }

  std::vector<uint32_t> shard_of_;
  sim::ShardedEngine engine_;
  std::vector<std::vector<Record>> logs_;
  Handler handler_;
};

struct ScenarioResult {
  std::vector<std::vector<Record>> logs;
  uint64_t fingerprint = 0;
  uint64_t events = 0;
  sim::ShardedEngine::Stats stats;
};

ScenarioResult Finish(Cluster& c, uint64_t events) {
  return ScenarioResult{c.logs(), Fingerprint(c.logs()), events, c.engine().stats()};
}

// --- Scenario 1: ping-pong pairs (the RDMA pingpong topology) ---------------
// Node 2i and 2i+1 bounce a counter kRounds times with a value-dependent
// jitter so different pairs interleave at different phases.

constexpr uint64_t kRounds = 64;

ScenarioResult RunPingpongPairs(uint32_t num_nodes, uint32_t num_shards, bool threads) {
  Cluster c(num_nodes, num_shards, threads,
            [](Cluster& cl, uint32_t node, uint32_t tag, uint64_t value) {
              if (tag != kPing || value >= kRounds) {
                return;
              }
              cl.Send(node, node ^ 1u, kLink + sim::Nanoseconds(static_cast<double>(value % 7)),
                      kPing, value + 1);
            });
  for (uint32_t n = 0; n + 1 < c.num_nodes(); n += 2) {
    c.Kick(n, sim::Nanoseconds(10) + sim::Nanoseconds(n), kPing, 0);
  }
  const uint64_t events = c.engine().RunUntilIdle();
  return Finish(c, events);
}

// --- Scenario 2: seeded gossip (the chaos-soak traffic shape) ---------------
// Every node injects a rumor; each hop re-derives an Rng from (seed, value,
// node) — pure data, no shared generator — and forwards to a pseudo-random
// peer with pseudo-random delay until the hop budget runs out. Heavy
// many-to-many cross-shard traffic with equal-timestamp pileups.

ScenarioResult RunGossip(uint32_t num_nodes, uint32_t num_shards, bool threads, uint64_t seed) {
  Cluster c(num_nodes, num_shards, threads,
            [num_nodes, seed](Cluster& cl, uint32_t node, uint32_t tag, uint64_t value) {
              if (tag != kGossip) {
                return;
              }
              const uint64_t hops = value >> 48;
              if (hops == 0) {
                return;
              }
              sim::Rng rng(seed ^ (value * 0x9E3779B97F4A7C15ull) ^ node);
              const uint32_t peer = static_cast<uint32_t>(
                  (node + 1 + rng.NextBounded(num_nodes - 1)) % num_nodes);
              const TimePs delay =
                  kLink + sim::Nanoseconds(static_cast<double>(rng.NextBounded(400)));
              const uint64_t payload = (value ^ rng.Next()) & 0xffff'ffff'ffffull;
              cl.Send(node, peer, delay, kGossip, ((hops - 1) << 48) | payload);
            });
  for (uint32_t n = 0; n < c.num_nodes(); ++n) {
    c.Kick(n, sim::Nanoseconds(100) + sim::Nanoseconds(13) * n, kGossip,
           (uint64_t{24} << 48) | ((seed ^ n) & 0xffff'ffffull));
  }
  const uint64_t events = c.engine().RunUntilIdle();
  return Finish(c, events);
}

// --- Scenario 3: heartbeat monitor (the supervisor recovery shape) ----------
// Node 0 is the monitor; every other node beats every 2 us. Nodes with
// node % 3 == 1 go silent for beats [12, 24) — the monitor's staleness sweep
// must log their detection and, once beats resume, their recovery, at
// identical timestamps for every shard count.

ScenarioResult RunHeartbeats(uint32_t num_nodes, uint32_t num_shards, bool threads) {
  constexpr uint64_t kBeats = 48;
  constexpr uint64_t kChecks = 64;
  constexpr TimePs kPeriod = sim::Microseconds(2);
  constexpr TimePs kStale = sim::Microseconds(5);

  struct MonitorState {
    std::vector<TimePs> last;
    std::vector<bool> down;
  };
  MonitorState mon{std::vector<TimePs>(num_nodes, sim::Microseconds(1)),
                   std::vector<bool>(num_nodes, false)};

  Cluster c(num_nodes, num_shards, threads,
            [&mon](Cluster& cl, uint32_t node, uint32_t tag, uint64_t value) {
              if (node == 0 && tag == kBeat) {
                const auto src = static_cast<uint32_t>(value);
                mon.last[src] = cl.NowAt(0);
                if (mon.down[src]) {
                  mon.down[src] = false;
                  cl.Local(0, 0, kRecover, src);
                }
                return;
              }
              if (node == 0 && tag == kCheck) {
                const TimePs now = cl.NowAt(0);
                for (uint32_t n = 1; n < cl.num_nodes(); ++n) {
                  if (!mon.down[n] && now > mon.last[n] && now - mon.last[n] > kStale) {
                    mon.down[n] = true;
                    cl.Local(0, 0, kDetect, n);
                  }
                }
                if (value + 1 < kChecks) {
                  cl.Local(0, kPeriod, kCheck, value + 1);
                }
                return;
              }
              if (node != 0 && tag == kTick) {
                const bool silent = (node % 3 == 1) && value >= 12 && value < 24;
                if (!silent) {
                  cl.Send(node, 0, kLink, kBeat, node);
                }
                if (value + 1 < kBeats) {
                  cl.Local(node, kPeriod, kTick, value + 1);
                }
              }
            });
  for (uint32_t n = 1; n < c.num_nodes(); ++n) {
    c.Kick(n, sim::Microseconds(1) + sim::Nanoseconds(10) * n, kTick, 0);
  }
  c.Kick(0, sim::Microseconds(4), kCheck, 0);
  const uint64_t events = c.engine().RunUntilIdle();
  return Finish(c, events);
}

void ExpectConformance(const char* scenario,
                       const std::function<ScenarioResult(uint32_t, bool)>& run) {
  const ScenarioResult ref = run(1, false);
  ASSERT_GT(ref.events, 0u) << scenario;
  ASSERT_EQ(ref.stats.lookahead_violations, 0u) << scenario;
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    for (bool threads : {false, true}) {
      const ScenarioResult got = run(shards, threads);
      EXPECT_EQ(got.fingerprint, ref.fingerprint)
          << scenario << " shards=" << shards << " threads=" << threads;
      EXPECT_EQ(got.logs, ref.logs) << scenario << " shards=" << shards
                                    << " threads=" << threads;
      EXPECT_EQ(got.events, ref.events) << scenario << " shards=" << shards;
      EXPECT_EQ(got.stats.lookahead_violations, 0u) << scenario;
      EXPECT_EQ(got.stats.backpressure_stalls, 0u) << scenario;
      if (shards > 1) {
        // The partitioning must actually exercise the mailbox path.
        EXPECT_GT(got.stats.cross_shard_messages, 0u) << scenario << " shards=" << shards;
      }
    }
  }
}

TEST(ShardConformanceTest, PingpongPairsBitIdenticalAcrossShardCounts) {
  ExpectConformance("pingpong", [](uint32_t shards, bool threads) {
    return RunPingpongPairs(8, shards, threads);
  });
}

TEST(ShardConformanceTest, GossipBitIdenticalAcrossShardCounts) {
  for (uint64_t seed : {3ull, 17ull}) {
    ExpectConformance("gossip", [seed](uint32_t shards, bool threads) {
      return RunGossip(12, shards, threads, seed);
    });
  }
}

TEST(ShardConformanceTest, HeartbeatRecoveryBitIdenticalAcrossShardCounts) {
  ExpectConformance("heartbeat", [](uint32_t shards, bool threads) {
    return RunHeartbeats(9, shards, threads);
  });
}

TEST(ShardConformanceTest, GossipDifferentSeedsDiverge) {
  // The fingerprint is not vacuous: different seeds must produce different
  // logs (at every shard count, since each equals its own reference).
  const ScenarioResult a = RunGossip(12, 4, true, 3);
  const ScenarioResult b = RunGossip(12, 4, true, 17);
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

// --- Real-stack replicas under worker threads -------------------------------

constexpr uint64_t kPage = 2ull << 20;
constexpr uint64_t kBufBytes = 8ull << 20;
constexpr uint32_t kIpA = 0x0A000001;
constexpr uint32_t kIpB = 0x0A000002;

// One endpoint: host-backed SVM plus a RoCE stack (determinism_test topology).
struct StackNode {
  StackNode(sim::Engine* engine, net::Network* network, uint32_t ip)
      : card(engine, memsys::CardMemory::Config{}),
        svm(engine, &host, &card, &gpu, kPage),
        stack(engine, network, ip, &svm) {
    buf = host.Allocate(kBufBytes, memsys::AllocKind::kHuge2M);
    svm.RegisterHostBuffer(buf, kBufBytes);
  }

  memsys::HostMemory host;
  memsys::CardMemory card;
  memsys::GpuMemory gpu;
  mmu::Svm svm;
  net::RoceStack stack;
  uint64_t buf = 0;
};

struct ReplicaSummary {
  std::vector<uint8_t> payload_at_b;
  std::vector<uint8_t> echo_at_a;
  uint64_t tx_frames_a = 0;
  uint64_t rx_frames_a = 0;
  uint64_t retransmits_a = 0;
  uint64_t frames_delivered = 0;
  bool operator==(const ReplicaSummary&) const = default;
};

// A fully event-driven RDMA ping-pong cluster: construction posts the first
// write; arrival handlers keep the rally going for `iters` rounds, so the
// whole run needs nothing but "run the engine to idle" — which is exactly
// what a shard worker provides.
class Replica {
 public:
  Replica(sim::Engine* engine, uint64_t seed, int iters, uint64_t bytes)
      : network_(engine, {}),
        a_(engine, &network_, kIpA),
        b_(engine, &network_, kIpB),
        bytes_(bytes) {
    qp_a_ = a_.stack.CreateQp();
    qp_b_ = b_.stack.CreateQp();
    a_.stack.Connect(qp_a_, kIpB, qp_b_);
    b_.stack.Connect(qp_b_, kIpA, qp_a_);

    std::vector<uint8_t> payload(bytes);
    sim::Rng rng(seed);
    rng.FillBytes(payload.data(), payload.size());
    a_.svm.WriteVirtual(a_.buf, payload.data(), payload.size());

    b_.stack.SetWriteArrivalHandler(qp_b_, [this](uint64_t, uint64_t got) {
      b_.stack.PostWrite(qp_b_, b_.buf, a_.buf, got, nullptr);
    });
    a_.stack.SetWriteArrivalHandler(qp_a_, [this, iters](uint64_t, uint64_t) {
      if (++pongs_ < iters) {
        a_.stack.PostWrite(qp_a_, a_.buf, b_.buf, bytes_, nullptr);
      }
    });
    a_.stack.PostWrite(qp_a_, a_.buf, b_.buf, bytes_, nullptr);
  }

  void BindShard(sim::ShardId shard) {
    network_.BindShard(shard);
    a_.stack.BindShard(shard);
    b_.stack.BindShard(shard);
  }

  ReplicaSummary Summarize() {
    ReplicaSummary s;
    s.payload_at_b.resize(bytes_);
    b_.svm.ReadVirtual(b_.buf, s.payload_at_b.data(), bytes_);
    s.echo_at_a.resize(bytes_);
    a_.svm.ReadVirtual(a_.buf, s.echo_at_a.data(), bytes_);
    s.tx_frames_a = a_.stack.tx_frames();
    s.rx_frames_a = a_.stack.rx_frames();
    s.retransmits_a = a_.stack.retransmitted_frames();
    s.frames_delivered = network_.frames_delivered();
    return s;
  }

 private:
  net::Network network_;
  StackNode a_;
  StackNode b_;
  uint64_t bytes_;
  uint32_t qp_a_ = 0;
  uint32_t qp_b_ = 0;
  int pongs_ = 0;
};

constexpr int kReplicaIters = 8;
constexpr uint64_t kReplicaBytes = 4096;

ReplicaSummary ReferenceReplica(uint64_t seed) {
  sim::Engine engine;
  Replica replica(&engine, seed, kReplicaIters, kReplicaBytes);
  engine.RunUntilIdle();
  return replica.Summarize();
}

TEST(ShardConformanceTest, RealStackReplicasMatchPlainEngineReference) {
  sim::AccessLedger& ledger = sim::AccessLedger::Global();
  for (uint32_t shards : {2u, 4u}) {
    for (bool threads : {false, true}) {
      ledger.Reset();
      ledger.set_enabled(true);
      sim::ShardedEngine eng(
          sim::ShardedEngine::Config{shards, sim::Nanoseconds(500), 4096, threads});
      std::vector<std::unique_ptr<Replica>> replicas;
      for (uint32_t s = 0; s < shards; ++s) {
        replicas.push_back(
            std::make_unique<Replica>(&eng.shard(s), 1000 + s, kReplicaIters, kReplicaBytes));
        replicas.back()->BindShard(s);
      }
      eng.RunUntilIdle();
      for (uint32_t s = 0; s < shards; ++s) {
        const ReplicaSummary got = replicas[s]->Summarize();
        const ReplicaSummary want = ReferenceReplica(1000 + s);
        EXPECT_EQ(got, want) << "shard " << s << " of " << shards << " threads=" << threads;
        EXPECT_GT(got.tx_frames_a, 0u);
        EXPECT_EQ(got.payload_at_b, got.echo_at_a);
      }
      // Legal partitioning: the shard-ownership guards must stay silent.
      EXPECT_TRUE(ledger.shard_violations().empty())
          << ledger.shard_violations().front().ToString();
      EXPECT_GT(eng.stats().windows, 0u);
      ledger.set_enabled(false);
    }
  }
}

}  // namespace
}  // namespace coyote
