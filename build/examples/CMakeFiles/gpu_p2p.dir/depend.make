# Empty dependencies file for gpu_p2p.
# This may be replaced when dependencies are built.
