// Fixture: raw allocation, which the `raw-alloc` rule flags.
int* Leaky() {
  int* buffer = new int[64];
  return buffer;
}

void Free(int* buffer) {
  delete[] buffer;
}
