// Shared-virtual-memory types.

#ifndef SRC_MMU_TYPES_H_
#define SRC_MMU_TYPES_H_

#include <cstdint>
#include <string_view>

namespace coyote {
namespace mmu {

// Physical memory a page can be resident in. The GPU kind models the
// externally contributed MMU extension for FPGA<->GPU peer DMA (paper §2.2).
enum class MemKind : uint8_t {
  kHost,
  kCard,
  kGpu,
};

inline std::string_view MemKindName(MemKind k) {
  switch (k) {
    case MemKind::kHost:
      return "host";
    case MemKind::kCard:
      return "card";
    case MemKind::kGpu:
      return "gpu";
  }
  return "unknown";
}

struct PhysPage {
  MemKind kind = MemKind::kHost;
  uint64_t addr = 0;  // physical address within that memory
};

}  // namespace mmu
}  // namespace coyote

#endif  // SRC_MMU_TYPES_H_
