file(REMOVE_RECURSE
  "CMakeFiles/axi_test.dir/axi_test.cc.o"
  "CMakeFiles/axi_test.dir/axi_test.cc.o.d"
  "axi_test"
  "axi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
