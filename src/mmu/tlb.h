// Set-associative TLB with LRU replacement.
//
// Coyote v2 implements TLBs in on-chip SRAM for fast lookups, with the rest
// of the MMU in the host-side driver (paper §6.1). The geometry — entry
// count, associativity and page size, up to 1 GB hugepages — is a shell
// compile-time parameter, which is exactly what this class parametrizes.

#ifndef SRC_MMU_TLB_H_
#define SRC_MMU_TLB_H_

#include <cstdint>
#include <list>
#include <optional>
#include <vector>

#include "src/mmu/types.h"
#include "src/sim/access_guard.h"

namespace coyote {
namespace mmu {

class Tlb {
 public:
  struct Config {
    uint32_t entries = 1024;
    uint32_t associativity = 4;
    uint64_t page_bytes = 2ull << 20;
  };

  explicit Tlb(const Config& config);

  const Config& config() const { return config_; }
  uint32_t num_sets() const { return num_sets_; }

  // Looks up the page containing `vaddr`. Hit updates LRU order.
  std::optional<PhysPage> Lookup(uint64_t vaddr);

  // Inserts (or updates) the translation for the page containing `vaddr`,
  // evicting the set's LRU entry if full.
  void Insert(uint64_t vaddr, PhysPage page);

  // Removes the entry for the page containing `vaddr` if cached.
  void Invalidate(uint64_t vaddr);
  void InvalidateAll();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  double HitRate() const {
    const uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }

 private:
  struct Way {
    uint64_t vpage = 0;
    PhysPage phys;
    uint64_t lru = 0;  // larger == more recently used
    bool valid = false;
  };

  uint64_t VPage(uint64_t vaddr) const { return vaddr / config_.page_bytes; }
  uint32_t SetIndex(uint64_t vpage) const { return static_cast<uint32_t>(vpage % num_sets_); }

  Config config_;
  uint32_t num_sets_;
  uint64_t tick_ = 0;
  std::vector<std::vector<Way>> sets_;
  sim::AccessGuard guard_{"mmu.tlb"};

  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace mmu
}  // namespace coyote

#endif  // SRC_MMU_TLB_H_
