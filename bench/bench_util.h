// Shared helpers for the benchmark harness.
//
// Each bench binary regenerates one table or figure of the paper: it builds
// the workload, sweeps the paper's parameters on the simulated substrate and
// prints the same rows/series the paper reports, alongside the paper's
// values where the paper states them. Absolute numbers come from calibrated
// models (see DESIGN.md); the claims under test are the *shapes*: orderings,
// scaling trends, crossovers and factors.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <chrono>  // wall-clock for perf benches only; lint: nondet-ok
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>
#include <type_traits>

namespace coyote {
namespace bench {

inline void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("\n==============================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================================\n");
}

inline void PrintRule() {
  std::printf("------------------------------------------------------------------------------\n");
}

inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void Note(const std::string& text) { std::printf("  %s\n", text.c_str()); }

// --- Throughput reporting (perf benches) -------------------------------------
// Simulation code never reads the wall clock; perf benches do, to report how
// fast the simulator itself runs. Anything derived from WallTimer is
// nondeterministic by nature, so JSON emitters must write such values under
// keys prefixed "wall_" — determinism checks diff the output with those lines
// filtered out.

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}  // lint: nondet-ok
  void Reset() { start_ = std::chrono::steady_clock::now(); }  // lint: nondet-ok
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)  // lint: nondet-ok
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;  // lint: nondet-ok
};

inline double EventsPerSec(uint64_t events, double seconds) {
  return seconds > 0.0 ? static_cast<double>(events) / seconds : 0.0;
}

inline void RowEventsPerSec(const char* label, uint64_t events, double seconds) {
  Row("  %-32s %12llu events  %8.4f s  %9.2f M events/s", label,
      static_cast<unsigned long long>(events), seconds, EventsPerSec(events, seconds) / 1e6);
}

// --- BENCH_*.json emission ----------------------------------------------------
// Every bench binary writes one machine-readable result file. The writer is a
// small state machine (comma/indent tracking over a FILE*) so emitters list
// fields instead of hand-balancing printf format strings, and it owns the one
// convention the CI determinism diffs rely on: every nondeterministic value
// (anything derived from WallTimer) goes through Wall(), which forces the
// key's "wall_" prefix so `grep -v '"wall_'` filters exactly those lines.
//
// Usage:
//   BenchJsonWriter json("BENCH_foo.json");
//   if (json.ok()) {
//     json.Field("bench", "foo");
//     json.BeginArray("cases");
//     for (...) { json.BeginObject(); json.Field("n", n); json.End(); }
//     json.End();
//     json.Wall("seconds", timer.Seconds());  // emits "wall_seconds"
//   }
// The root object opens at construction and closes (with any unbalanced
// scopes) in Close()/the destructor.

class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(const std::string& path) : f_(std::fopen(path.c_str(), "w")) {
    if (f_ != nullptr) {
      std::fputc('{', f_);
    }
  }
  BenchJsonWriter(const BenchJsonWriter&) = delete;
  BenchJsonWriter& operator=(const BenchJsonWriter&) = delete;
  ~BenchJsonWriter() { Close(); }

  bool ok() const { return f_ != nullptr; }

  void Close() {
    if (f_ == nullptr) {
      return;
    }
    while (depth_ > 0) {
      End();
    }
    std::fputs("\n}\n", f_);
    std::fclose(f_);
    f_ = nullptr;
  }

  // key == nullptr: an anonymous value (array element).
  void BeginObject(const char* key = nullptr) { Open(key, '{', '}'); }
  void BeginArray(const char* key = nullptr) { Open(key, '[', ']'); }
  void End() {
    if (f_ == nullptr || depth_ == 0) {
      return;
    }
    std::fputc('\n', f_);
    Pad(depth_ - 1);
    std::fputc(close_[depth_], f_);
    --depth_;
  }

  void Field(const char* key, const char* v) {
    if (f_ == nullptr) {
      return;
    }
    Prefix(key);
    std::fprintf(f_, "\"%s\"", v);
  }
  void Field(const char* key, const std::string& v) { Field(key, v.c_str()); }
  void Field(const char* key, bool v) {
    if (f_ == nullptr) {
      return;
    }
    Prefix(key);
    std::fputs(v ? "true" : "false", f_);
  }
  void Field(const char* key, double v) {
    if (f_ == nullptr) {
      return;
    }
    Prefix(key);
    std::fprintf(f_, "%.6f", v);
  }
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>>>
  void Field(const char* key, T v) {
    if (f_ == nullptr) {
      return;
    }
    Prefix(key);
    if constexpr (std::is_signed_v<T>) {
      std::fprintf(f_, "%lld", static_cast<long long>(v));
    } else {
      std::fprintf(f_, "%llu", static_cast<unsigned long long>(v));
    }
  }
  // Fingerprints: quoted zero-padded hex, the repo-wide convention.
  void Hex(const char* key, uint64_t v) {
    if (f_ == nullptr) {
      return;
    }
    Prefix(key);
    std::fprintf(f_, "\"%016llx\"", static_cast<unsigned long long>(v));
  }
  // Nondeterministic (wall-clock-derived) value: the "wall_" key prefix is
  // enforced here, not trusted at every call site.
  void Wall(const char* key, double v) {
    std::string k(key);
    if (k.rfind("wall_", 0) != 0) {
      k = "wall_" + k;
    }
    Field(k.c_str(), v);
  }

 private:
  static constexpr int kMaxDepth = 15;

  void Pad(int depth) {
    for (int i = 0; i <= depth; ++i) {
      std::fputs("  ", f_);
    }
  }
  void Prefix(const char* key) {
    if (count_[depth_]++ > 0) {
      std::fputc(',', f_);
    }
    std::fputc('\n', f_);
    Pad(depth_);
    if (key != nullptr) {
      std::fprintf(f_, "\"%s\": ", key);
    }
  }
  void Open(const char* key, char open, char close) {
    if (f_ == nullptr || depth_ + 1 > kMaxDepth) {
      return;
    }
    Prefix(key);
    std::fputc(open, f_);
    ++depth_;
    close_[depth_] = close;
    count_[depth_] = 0;
  }

  std::FILE* f_;
  int depth_ = 0;
  char close_[kMaxDepth + 1] = {'}'};
  uint32_t count_[kMaxDepth + 1] = {0};
};

}  // namespace bench
}  // namespace coyote

#endif  // BENCH_BENCH_UTIL_H_
