file(REMOVE_RECURSE
  "CMakeFiles/coyote_hlscompat.dir/hls_model.cc.o"
  "CMakeFiles/coyote_hlscompat.dir/hls_model.cc.o.d"
  "CMakeFiles/coyote_hlscompat.dir/overlay.cc.o"
  "CMakeFiles/coyote_hlscompat.dir/overlay.cc.o.d"
  "libcoyote_hlscompat.a"
  "libcoyote_hlscompat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coyote_hlscompat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
