#include "src/sim/engine.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/sim/access_guard.h"

namespace coyote {
namespace sim {

Engine::Engine() : ledger_(&AccessLedger::Global()), buckets_(kNumBuckets) {
#ifdef COYOTE_ACCESS_GUARDS
  // Sanitize/debug builds arm the race-detection ledger for every test that
  // spins up an engine; release builds leave it to tests to opt in.
  ledger_->set_enabled(true);
#endif
}

uint32_t Engine::AllocNode(Callback&& cb) {
  uint32_t idx;
  if (!free_nodes_.empty()) {
    idx = free_nodes_.back();
    free_nodes_.pop_back();
    pool_[idx] = std::move(cb);
  } else {
    idx = static_cast<uint32_t>(pool_.size());
    pool_.push_back(std::move(cb));
  }
  return idx;
}

void Engine::HeapPush(std::vector<HeapEntry>* heap, const HeapEntry& e) {
  heap->push_back(e);
  size_t i = heap->size() - 1;
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!EntryAfter((*heap)[parent], e)) {
      break;
    }
    (*heap)[i] = (*heap)[parent];
    i = parent;
  }
  (*heap)[i] = e;
}

void Engine::SiftDown(std::vector<HeapEntry>* heap, size_t i) {
  const size_t n = heap->size();
  const HeapEntry e = (*heap)[i];
  for (;;) {
    const size_t l = 2 * i + 1;
    if (l >= n) {
      break;
    }
    size_t c = l;
    const size_t r = l + 1;
    if (r < n && EntryAfter((*heap)[l], (*heap)[r])) {
      c = r;
    }
    if (!EntryAfter(e, (*heap)[c])) {
      break;
    }
    (*heap)[i] = (*heap)[c];
    i = c;
  }
  (*heap)[i] = e;
}

Engine::HeapEntry Engine::HeapPop(std::vector<HeapEntry>* heap) {
  const HeapEntry top = heap->front();
  heap->front() = heap->back();
  heap->pop_back();
  if (!heap->empty()) {
    SiftDown(heap, 0);
  }
  return top;
}

void Engine::Route(const HeapEntry& e) {
  if (e.time < ActiveEnd()) {
    // Inside (or before) the window currently being drained: the incursion
    // heap keeps the (time, seq) order exact for late arrivals.
    HeapPush(&incursion_, e);
  } else if ((e.time >> kBucketWidthLog2) <= cur_bucket_ + kNumBuckets) {
    // Within one full rotation of the cursor: ride the wheel. The horizon
    // tracks the cursor, so schedule-ahead up to kDaySpanPs never spills to
    // the overflow heap regardless of where the cursor sits.
    const uint32_t b = static_cast<uint32_t>((e.time >> kBucketWidthLog2) & (kNumBuckets - 1));
    buckets_[b].push_back(e);
    bucket_bits_[b >> 6] |= uint64_t{1} << (b & 63);
    ++wheel_count_;
  } else {
    HeapPush(&overflow_, e);
  }
}

void Engine::ScheduleImpl(TimePs t, Callback&& cb) {
  const uint32_t idx = AllocNode(std::move(cb));
  ++num_pending_;
  Route(HeapEntry{t, static_cast<uint32_t>(next_seq_++), idx});
}

void Engine::MigrateOverflow() {
  while (!overflow_.empty() &&
         (overflow_.front().time >> kBucketWidthLog2) <= cur_bucket_ + kNumBuckets) {
    Route(HeapPop(&overflow_));
  }
}

uint64_t Engine::NextOccupiedBucket() const {
  const uint32_t start = static_cast<uint32_t>((cur_bucket_ + 1) & (kNumBuckets - 1));
  uint32_t w = start >> 6;
  uint64_t word = bucket_bits_[w] & (~uint64_t{0} << (start & 63));
#ifndef NDEBUG
  uint32_t scanned = 0;
#endif
  while (word == 0) {
    ++w;
    if (w == bucket_bits_.size()) {
      w = 0;  // the ring wraps: slots below the cursor are one rotation ahead
    }
#ifndef NDEBUG
    assert(++scanned <= bucket_bits_.size() && "wheel_count_ > 0 implies an occupied slot");
#endif
    word = bucket_bits_[w];
  }
  const uint32_t slot = (w << 6) + static_cast<uint32_t>(__builtin_ctzll(word));
  // Ring distance from the slot just after the cursor, in [0, kNumBuckets).
  const uint32_t delta = (slot - start) & (kNumBuckets - 1);
  return cur_bucket_ + 1 + delta;
}

bool Engine::PrepareNext() {
  while (StackEmpty() && incursion_.empty()) {
    // Advance to the earliest pending bucket, wherever it lives. Overflow
    // events must rejoin the wheel before the cursor passes their bucket;
    // taking the minimum of the two next-bucket candidates guarantees that
    // (and doubles as the empty-span fast-forward: cur_bucket_ jumps, it
    // never rotates through empty slots).
    const uint64_t next_wheel = wheel_count_ > 0 ? NextOccupiedBucket() : ~uint64_t{0};
    const uint64_t next_over =
        !overflow_.empty() ? (overflow_.front().time >> kBucketWidthLog2) : ~uint64_t{0};
    if (next_wheel == ~uint64_t{0} && next_over == ~uint64_t{0}) {
      return false;
    }
    if (next_over <= next_wheel) {
      // Park the cursor just below the overflow head's bucket so migration
      // lands it (and any followers within the new horizon) in the wheel;
      // the next iteration then adopts that bucket with wheel and migrated
      // events merged, preserving the global (time, seq) order.
      cur_bucket_ = next_over - 1;
      MigrateOverflow();
      continue;
    }
    cur_bucket_ = next_wheel;
    const uint32_t slot = static_cast<uint32_t>(cur_bucket_ & (kNumBuckets - 1));
    bucket_bits_[slot >> 6] &= ~(uint64_t{1} << (slot & 63));
    std::vector<HeapEntry>& bucket = buckets_[slot];
    wheel_count_ -= bucket.size();
    // The window is empty here, so adopt the bucket wholesale: one
    // ascending sort now makes every subsequent pop an O(1) cursor bump.
    // Copy rather than swap so both vectors keep their grown capacity —
    // swapping rotates capacities between buckets and causes steady-state
    // reallocations.
    active_.assign(bucket.begin(), bucket.end());
    drain_pos_ = 0;
    bucket.clear();
    if (active_.size() > 1) {
      std::sort(active_.begin(), active_.end(),
                [](const HeapEntry& a, const HeapEntry& b) { return EntryAfter(b, a); });
    }
  }
  return true;
}

bool Engine::Step() {
  if (!PrepareNext()) {
    return false;
  }
  // Pop the earliest event of the window: min of the drain cursor's head and
  // the incursion heap's top, under the same (time, seq) total order.
  HeapEntry top;
  if (incursion_.empty() ||
      (!StackEmpty() && !EntryAfter(active_[drain_pos_], incursion_.front()))) {
    top = active_[drain_pos_++];
  } else {
    top = HeapPop(&incursion_);
  }
  now_ = top.time;
  // Move the callback out and recycle the slot *before* invoking, so the
  // callback can schedule new events (and reuse this very slot) freely.
  // (Move-construction nulls the pool slot's ops pointer; no extra reset.)
  Callback cb = std::move(pool_[top.idx]);
  free_nodes_.push_back(top.idx);
  --num_pending_;
  ++events_executed_;
  AccessLedger& ledger = *ledger_;
  if (ledger.enabled()) {
    // Each executed event is one race-detection epoch; the callback runs as
    // the engine actor unless a narrower ActorScope is set further down.
    ledger.AdvanceEpoch();
    ActorScope scope(kActorEngine);
    cb();
  } else {
    cb();
  }
  return true;
}

void Engine::CloseEpoch() {
  // Returning from a run loop ends the last event's race-detection epoch:
  // the caller (a cThread Wait, a CSR poll, test driver code) resumes only
  // after that event finished, so its touches are program-ordered after the
  // event's — not logically concurrent with them. Without this, host code
  // aliases into the final event's epoch and every completion-then-consume
  // sequence reads as a host/engine conflict.
  if (ledger_->enabled()) {
    ledger_->AdvanceEpoch();
  }
}

uint64_t Engine::RunUntilIdle() {
  uint64_t n = 0;
  while (Step()) {
    ++n;
  }
  CloseEpoch();
  return n;
}

uint64_t Engine::RunUntil(TimePs deadline) {
  uint64_t n = 0;
  while (PrepareNext() && NextTime() <= deadline) {
    Step();
    ++n;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  CloseEpoch();
  return n;
}

bool Engine::RunUntilCondition(const std::function<bool()>& done) {
  while (!done()) {
    if (!Step()) {
      const bool satisfied = done();
      CloseEpoch();
      return satisfied;
    }
  }
  CloseEpoch();
  return true;
}

}  // namespace sim
}  // namespace coyote
