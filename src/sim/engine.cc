#include "src/sim/engine.h"

#include <utility>

#include "src/sim/access_guard.h"

namespace coyote {
namespace sim {

Engine::Engine() {
#ifdef COYOTE_ACCESS_GUARDS
  // Sanitize/debug builds arm the race-detection ledger for every test that
  // spins up an engine; release builds leave it to tests to opt in.
  AccessLedger::Global().set_enabled(true);
#endif
}

void Engine::ScheduleAt(TimePs t, Callback cb) {
  if (t < now_) {
    t = now_;
  }
  queue_.push(Event{t, next_seq_++, std::move(cb)});
}

bool Engine::Step() {
  if (queue_.empty()) {
    return false;
  }
  // priority_queue::top() returns a const ref; move the callback out via a
  // const_cast-free copy of the handle fields, then pop before invoking so
  // that the callback can schedule new events freely.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ++events_executed_;
  AccessLedger& ledger = AccessLedger::Global();
  if (ledger.enabled()) {
    // Each executed event is one race-detection epoch; the callback runs as
    // the engine actor unless a narrower ActorScope is set further down.
    ledger.AdvanceEpoch();
    ActorScope scope(kActorEngine);
    ev.cb();
  } else {
    ev.cb();
  }
  return true;
}

uint64_t Engine::RunUntilIdle() {
  uint64_t n = 0;
  while (Step()) {
    ++n;
  }
  return n;
}

uint64_t Engine::RunUntil(TimePs deadline) {
  uint64_t n = 0;
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Step();
    ++n;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return n;
}

bool Engine::RunUntilCondition(const std::function<bool()>& done) {
  while (!done()) {
    if (!Step()) {
      return done();
    }
  }
  return true;
}

}  // namespace sim
}  // namespace coyote
