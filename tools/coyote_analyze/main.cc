// coyote_analyze CLI: interprocedural simulation-context analysis.
//
//   coyote_analyze --root <repo> src
//   coyote_analyze --root <repo> --index-cache build/analyze.index src
//   coyote_analyze --root <repo> --report build/analyze-report.txt src
//   coyote_analyze --list-rules
//
// Exit codes: 0 clean, 1 findings, 2 usage error. The report (stdout and,
// with --report, a file for the CI artifact) prints one finding as
// `path:line: [rule] message` followed by the indented interprocedural
// call-chain trace, ending with a stable summary line.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "tools/coyote_analyze/analyze.h"
#include "tools/coyote_frontend/frontend.h"

namespace {

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: coyote_analyze [--root DIR] [--index-cache FILE] [--report FILE]\n"
      "                      [--rule ID]... [--list-rules] [path...]\n"
      "  --root DIR         project root; findings are reported relative to it (default .)\n"
      "  --index-cache FILE reuse per-file index entries whose content hash is unchanged\n"
      "  --report FILE      also write the findings report to FILE\n"
      "  --rule ID          run only the named rule (repeatable)\n"
      "  --list-rules       print the rule table and exit\n"
      "  path               files or directories under --root (default: src)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string cache_path;
  std::string report_path;
  coyote::analyze::Options options;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" || arg == "--index-cache" || arg == "--report" || arg == "--rule") {
      if (i + 1 >= argc) {
        PrintUsage();
        return 2;
      }
      const std::string value = argv[++i];
      if (arg == "--root") {
        root = value;
      } else if (arg == "--index-cache") {
        cache_path = value;
      } else if (arg == "--report") {
        report_path = value;
      } else {
        options.rules.push_back(value);
      }
    } else if (arg == "--list-rules") {
      for (const auto& rule : coyote::analyze::Rules()) {
        std::printf("%-18s suppress with '// lint: %s'\n    %s\n", rule.id.c_str(),
                    rule.suppression.c_str(), rule.summary.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "coyote_analyze: unknown option '%s'\n", arg.c_str());
      PrintUsage();
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    paths = {"src"};
  }

  const auto files = coyote::frontend::CollectFiles(root, paths);
  if (files.empty()) {
    std::fprintf(stderr, "coyote_analyze: no source files found under --root %s\n",
                 root.c_str());
    return 2;
  }
  const auto index = coyote::analyze::IndexPaths(root, files, cache_path);
  const auto findings = coyote::analyze::Analyze(index, options);
  const std::string report = coyote::analyze::FormatReport(findings);
  std::fputs(report.c_str(), stdout);
  if (!report_path.empty()) {
    std::ofstream out(report_path, std::ios::binary | std::ios::trunc);
    out << report;
    if (!out) {
      std::fprintf(stderr, "coyote_analyze: cannot write report to %s\n", report_path.c_str());
      return 2;
    }
  }
  return findings.empty() ? 0 : 1;
}
