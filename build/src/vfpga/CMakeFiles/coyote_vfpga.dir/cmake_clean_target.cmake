file(REMOVE_RECURSE
  "libcoyote_vfpga.a"
)
