#include "src/net/network.h"

#include <string>
#include <utility>

namespace coyote {
namespace net {

uint32_t Network::AttachPort(uint32_t ip, RxHandler rx) {
  const uint32_t id = static_cast<uint32_t>(ports_.size());
  Port port;
  port.ip = ip;
  port.rx = std::move(rx);
  port.tx_link = std::make_unique<sim::Link>(
      engine_, sim::Link::Config{config_.link_bps, 0, 0, "net_tx" + std::to_string(id)});
  port.rx_link = std::make_unique<sim::Link>(
      engine_, sim::Link::Config{config_.link_bps, 0, 0, "net_rx" + std::to_string(id)});
  ports_.push_back(std::move(port));
  ip_to_port_.emplace(ip, id);
  return id;
}

void Network::Transmit(uint32_t src_port, uint32_t dst_ip, axi::BufferView frame) {
  switch_guard_.CheckShardOnly(/*is_write=*/true);
  const uint64_t index = frame_counter_++;
  auto [first, last] = ip_to_port_.equal_range(dst_ip);
  if (first == last || src_port >= ports_.size()) {
    ++frames_dropped_;
    return;
  }
  if (drop_filter_ && drop_filter_(index)) {
    ++frames_dropped_;
    return;
  }

  int copies = 1;
  sim::TimePs extra_latency = 0;
  if (injector_ != nullptr) {
    const uint32_t src_ip = ports_[src_port].ip;
    if (injector_->DropForOutage(src_ip, dst_ip)) {
      ++frames_dropped_;
      return;
    }
    const auto decision = injector_->OnFrame(src_ip, dst_ip, frame.size());
    switch (decision.action) {
      case sim::FaultInjector::FrameAction::kDeliver:
        break;
      case sim::FaultInjector::FrameAction::kDrop:
        ++frames_dropped_;
        return;
      case sim::FaultInjector::FrameAction::kCorrupt: {
        // Flip one byte with a non-zero mask; the receiver's ICRC check turns
        // this into a drop at the RoCE/TCP layer. Mutable access detaches the
        // view, so a sender retaining the frame (retransmit window, sniffer
        // capture) keeps the uncorrupted bytes.
        const uint64_t e = decision.corrupt_entropy;
        frame.data()[e % frame.size()] ^= static_cast<uint8_t>(1 + ((e >> 32) % 255));
        ++frames_corrupted_;
        break;
      }
      case sim::FaultInjector::FrameAction::kDuplicate:
        copies = 2;
        ++frames_duplicated_;
        break;
      case sim::FaultInjector::FrameAction::kDelay:
        extra_latency = decision.delay;
        ++frames_delayed_;
        break;
    }
  }

  const uint64_t bytes = frame.size();
  const sim::TimePs hop_latency = config_.switch_latency + extra_latency;

  // Serialize on the sender's TX link, cross the switch, then serialize on
  // each destination port's RX link before the handler sees the frame. Every
  // hop shares the frame's storage — a device binding multiple stacks to one
  // IP gets a view per stack, not a copy per stack. The tx-link capture
  // (view + port + latency) exceeds the inline-callback budget and spills to
  // the heap once per transmit; the switch and rx-link hops stay inline.
  for (auto it = first; it != last; ++it) {
    const uint32_t dst_port = it->second;
    for (int c = 0; c < copies; ++c) {
      ports_[src_port].tx_link->Submit(
          dst_port, bytes, [this, dst_port, hop_latency, frame]() {
            engine_->ScheduleAfter(hop_latency, [this, dst_port, frame]() {
              ports_[dst_port].rx_link->Submit(0, frame.size(), [this, dst_port, frame]() {
                ++frames_delivered_;
                bytes_delivered_ += frame.size();
                if (ports_[dst_port].rx) {
                  ports_[dst_port].rx(frame);
                }
              });
            });
          });
    }
  }
}

}  // namespace net
}  // namespace coyote
