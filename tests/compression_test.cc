// Unit + property tests for the compression service: RLE and LZ codecs,
// framed format, kernels, and "changing the compression algorithm" through
// partial reconfiguration (paper Requirement 1).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/runtime/crcnfg.h"
#include "src/runtime/cthread.h"
#include "src/runtime/device.h"
#include "src/services/compression.h"
#include "src/sim/rng.h"
#include "src/synth/flow.h"

namespace coyote {
namespace services {
namespace {

std::vector<uint8_t> Runs(size_t n) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<uint8_t>((i / 97) & 0xFF);  // long runs
  }
  return v;
}

std::vector<uint8_t> Text(size_t n) {
  const std::string phrase = "the quick brown fpga jumps over the lazy shell ";
  std::vector<uint8_t> v;
  while (v.size() < n) {
    v.insert(v.end(), phrase.begin(), phrase.end());
  }
  v.resize(n);
  return v;
}

std::vector<uint8_t> Random(size_t n, uint64_t seed) {
  std::vector<uint8_t> v(n);
  sim::Rng rng(seed);
  rng.FillBytes(v.data(), n);
  return v;
}

TEST(RleTest, RoundTripBasics) {
  for (const auto& input : {std::vector<uint8_t>{}, std::vector<uint8_t>{1},
                            std::vector<uint8_t>(1000, 7), Runs(5000), Random(4096, 1)}) {
    auto out = RleDecompress(RleCompress(input));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, input);
  }
}

TEST(RleTest, CompressesRunsExpandsRandom) {
  EXPECT_LT(RleCompress(std::vector<uint8_t>(10'000, 42)).size(), 200u);
  // Random data may expand slightly (literal escapes) but bounded.
  const auto random = Random(10'000, 2);
  EXPECT_LT(RleCompress(random).size(), 10'200u);
}

TEST(RleTest, RejectsTruncatedStreams) {
  auto good = RleCompress(Runs(1000));
  good.pop_back();
  // Truncation is detected (run missing its byte or literal block short).
  auto out = RleDecompress(good);
  if (out.has_value()) {
    EXPECT_NE(*out, Runs(1000));
  }
}

TEST(LzTest, RoundTripBasics) {
  for (const auto& input :
       {std::vector<uint8_t>{}, std::vector<uint8_t>{1, 2, 3}, std::vector<uint8_t>(64, 9),
        Text(10'000), Runs(10'000), Random(8192, 3)}) {
    auto out = LzDecompress(LzCompress(input));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, input);
  }
}

TEST(LzTest, CompressesRepetitiveText) {
  const auto text = Text(64 * 1024);
  const auto compressed = LzCompress(text);
  EXPECT_LT(compressed.size(), text.size() / 4);  // highly repetitive
}

TEST(LzTest, HandlesOverlappingMatches) {
  // "abcabcabc..." forces matches with offset 3 < match length.
  std::vector<uint8_t> v;
  for (int i = 0; i < 1000; ++i) {
    v.push_back(static_cast<uint8_t>('a' + i % 3));
  }
  auto out = LzDecompress(LzCompress(v));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, v);
}

TEST(LzTest, RejectsCorruptOffsets) {
  auto frame = LzCompress(Text(1000));
  // Find and corrupt the first offset to exceed the output cursor.
  // Token is at 0; flipping bytes aggressively should be caught or at least
  // not crash; run over several corruption points.
  for (size_t pos = 0; pos < std::min<size_t>(frame.size(), 20); ++pos) {
    auto bad = frame;
    bad[pos] ^= 0xFF;
    auto out = LzDecompress(bad);  // must not crash; may fail or mismatch
    if (out.has_value() && *out == Text(1000) && pos > 0) {
      // corruption in literal area may legitimately alter content only
    }
  }
  SUCCEED();
}

TEST(FramedTest, RoundTripAndCodecTag) {
  const auto input = Text(5000);
  for (Codec codec : {Codec::kRle, Codec::kLz}) {
    const auto frame = CompressFramed(codec, input);
    EXPECT_EQ(frame[4], static_cast<uint8_t>(codec));
    auto out = DecompressFramed(frame);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, input);
  }
}

TEST(FramedTest, RejectsBadFrames) {
  EXPECT_FALSE(DecompressFramed({}).has_value());
  EXPECT_FALSE(DecompressFramed({1, 2, 3}).has_value());
  auto frame = CompressFramed(Codec::kLz, Text(100));
  frame[4] = 99;  // unknown codec
  EXPECT_FALSE(DecompressFramed(frame).has_value());
  // Size mismatch detection.
  auto frame2 = CompressFramed(Codec::kRle, Text(100));
  frame2[0] ^= 0x01;
  EXPECT_FALSE(DecompressFramed(frame2).has_value());
}

// Property: round trip across codecs, sizes and data classes.
struct CodecCase {
  Codec codec;
  int data_class;  // 0 runs, 1 text, 2 random
  size_t size;
};

class CodecSweep : public ::testing::TestWithParam<CodecCase> {};

TEST_P(CodecSweep, RoundTrip) {
  const CodecCase c = GetParam();
  std::vector<uint8_t> input;
  switch (c.data_class) {
    case 0:
      input = Runs(c.size);
      break;
    case 1:
      input = Text(c.size);
      break;
    default:
      input = Random(c.size, c.size);
      break;
  }
  auto out = Decompress(c.codec, Compress(c.codec, input));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, input);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CodecSweep,
    ::testing::Values(CodecCase{Codec::kRle, 0, 1}, CodecCase{Codec::kRle, 0, 100'000},
                      CodecCase{Codec::kRle, 2, 4096}, CodecCase{Codec::kLz, 0, 100'000},
                      CodecCase{Codec::kLz, 1, 1}, CodecCase{Codec::kLz, 1, 65'536},
                      CodecCase{Codec::kLz, 2, 65'536}, CodecCase{Codec::kRle, 1, 12'345},
                      CodecCase{Codec::kLz, 1, 12'345}));

// --- End-to-end: compress on the FPGA, verify on the host ---------------------

runtime::SimDevice::Config DeviceConfig() {
  runtime::SimDevice::Config cfg;
  cfg.shell.name = "compress";
  cfg.shell.services = {fabric::Service::kHostStream, fabric::Service::kCardMemory};
  cfg.shell.num_vfpgas = 1;
  return cfg;
}

TEST(CompressionKernelTest, EndToEndCompressThenHostDecompress) {
  runtime::SimDevice dev(DeviceConfig());
  dev.vfpga(0).LoadKernel(std::make_unique<CompressKernel>(Codec::kLz));
  runtime::CThread t(&dev, 0);

  const auto input = Text(32 * 1024);
  const uint64_t src = t.GetMem({runtime::Alloc::kHpf, input.size()});
  const uint64_t dst = t.GetMem({runtime::Alloc::kHpf, 2 * input.size()});
  t.WriteBuffer(src, input.data(), input.size());

  // The kernel emits one framed packet per 4 KB input packet; sizes vary, so
  // drive the output side by draining host_out directly (a streaming
  // consumer), with only the read through the data mover.
  std::vector<uint8_t> compressed_stream;
  std::vector<std::vector<uint8_t>> frames;
  dev.vfpga(0).host_out(0).set_on_data(nullptr);
  runtime::SgEntry sg;
  sg.local = {.src_addr = src, .src_len = input.size(), .dst_addr = 0, .dst_len = 0,
              .src_stream = 0, .dst_stream = 0};
  auto task = t.Invoke(runtime::Oper::kLocalRead, sg);
  dev.WaitFor([&] {
    while (auto p = dev.vfpga(0).host_out(0).Pop()) {
      frames.push_back(p->data.ToVector());
    }
    return t.CheckCompleted(task) && frames.size() == 8;  // 32 KB / 4 KB
  });

  std::vector<uint8_t> reassembled;
  uint64_t compressed_bytes = 0;
  for (const auto& frame : frames) {
    compressed_bytes += frame.size();
    auto part = DecompressFramed(frame);
    ASSERT_TRUE(part.has_value());
    reassembled.insert(reassembled.end(), part->begin(), part->end());
  }
  EXPECT_EQ(reassembled, input);
  EXPECT_LT(compressed_bytes, input.size() / 2);  // repetitive text shrinks
  (void)dst;
}

TEST(CompressionKernelTest, ChangingTheCompressionAlgorithmViaReconfig) {
  // Paper Requirement 1: swap the compression service at run time.
  runtime::SimDevice dev(DeviceConfig());
  dev.RegisterKernelFactory("compress_rle",
                            []() { return std::make_unique<CompressKernel>(Codec::kRle); });
  dev.RegisterKernelFactory("compress_lz",
                            []() { return std::make_unique<CompressKernel>(Codec::kLz); });

  // Build bitstreams against the active shell.
  synth::BuildFlow flow(dev.floorplan());
  synth::HwModule rle_mod{"compress_rle", CompressKernel(Codec::kRle).resources(), 1.0};
  synth::HwModule lz_mod{"compress_lz", CompressKernel(Codec::kLz).resources(), 1.0};
  auto out = flow.RunShellFlow(dev.config().shell, {synth::Netlist{"compress_rle", {rle_mod}}});
  ASSERT_TRUE(out.ok);
  dev.WriteBitstreamFile("/bit/rle.bin", out.app_bitstreams[0]);
  auto lz_out = flow.RunAppFlow(synth::Netlist{"compress_lz", {lz_mod}}, 0, out);
  ASSERT_TRUE(lz_out.ok);
  dev.WriteBitstreamFile("/bit/lz.bin", lz_out.app_bitstreams[0]);

  runtime::CRcnfg rcnfg(&dev);
  ASSERT_TRUE(rcnfg.ReconfigureApp("/bit/rle.bin", 0).ok);
  EXPECT_EQ(dev.vfpga(0).kernel()->name(), "compress_rle");

  auto run_one_packet = [&](const std::vector<uint8_t>& data) {
    axi::StreamPacket p;
    p.data = data;
    p.last = true;
    dev.vfpga(0).host_in(0).Push(std::move(p));
    dev.engine().RunUntilIdle();
    auto outp = dev.vfpga(0).host_out(0).Pop();
    EXPECT_TRUE(outp.has_value());
    return outp ? outp->data.ToVector() : std::vector<uint8_t>{};
  };

  const auto input = Text(4096);
  const auto rle_frame = run_one_packet(input);
  ASSERT_GE(rle_frame.size(), 5u);
  EXPECT_EQ(rle_frame[4], static_cast<uint8_t>(Codec::kRle));

  // Swap the algorithm through partial reconfiguration.
  ASSERT_TRUE(rcnfg.ReconfigureApp("/bit/lz.bin", 0).ok);
  EXPECT_EQ(dev.vfpga(0).kernel()->name(), "compress_lz");
  const auto lz_frame = run_one_packet(input);
  ASSERT_GE(lz_frame.size(), 5u);
  EXPECT_EQ(lz_frame[4], static_cast<uint8_t>(Codec::kLz));

  // Both decode to the same input; LZ wins on text.
  EXPECT_EQ(*DecompressFramed(rle_frame), input);
  EXPECT_EQ(*DecompressFramed(lz_frame), input);
  EXPECT_LT(lz_frame.size(), rle_frame.size());
}

TEST(CompressionKernelTest, DecompressKernelInvertsCompressKernel) {
  runtime::SimDevice dev(DeviceConfig());
  dev.vfpga(0).LoadKernel(std::make_unique<DecompressKernel>());
  const auto input = Runs(8192);
  axi::StreamPacket p;
  p.data = CompressFramed(Codec::kLz, input);
  p.last = true;
  dev.vfpga(0).host_in(0).Push(std::move(p));
  dev.engine().RunUntilIdle();
  auto out = dev.vfpga(0).host_out(0).Pop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->data, input);

  // Corrupt frame: swallowed and counted.
  axi::StreamPacket bad;
  bad.data = {1, 2, 3, 4, 5, 6};
  dev.vfpga(0).host_in(0).Push(std::move(bad));
  dev.engine().RunUntilIdle();
  auto* kernel = static_cast<DecompressKernel*>(dev.vfpga(0).kernel());
  EXPECT_EQ(kernel->corrupt_frames(), 1u);
}

}  // namespace
}  // namespace services
}  // namespace coyote
