# Empty dependencies file for coyote_fabric.
# This may be replaced when dependencies are built.
