#include "src/mmu/svm.h"

#include <algorithm>
#include <cassert>

namespace coyote {
namespace mmu {

memsys::SparseMemory& Svm::StoreFor(MemKind kind) const {
  switch (kind) {
    case MemKind::kHost:
      return host_->store();
    case MemKind::kCard:
      return card_->store();
    case MemKind::kGpu:
      return gpu_->store();
  }
  return host_->store();
}

uint64_t Svm::RegisterGpuBuffer(uint64_t bytes) {
  const uint64_t page = page_table_.page_bytes();
  const uint64_t size = ((bytes + page - 1) / page) * page;
  const uint64_t vaddr = next_gpu_vaddr_;
  next_gpu_vaddr_ += size;
  const uint64_t gaddr = gpu_->Allocate(size);
  page_table_.MapRange(vaddr, size, MemKind::kGpu, gaddr);
  return vaddr;
}

void Svm::MigratePage(uint64_t vpage, MemKind target, std::function<void()> done) {
  const uint64_t page = page_table_.page_bytes();
  const uint64_t vaddr = vpage * page;
  auto entry = page_table_.Find(vaddr);
  assert(entry.has_value() && "migrating an unmapped page");
  const MemKind from = entry->kind;

  // Destination physical page. Host pages keep their identity mapping so a
  // page migrated back lands where the buffer was allocated; card/GPU pages
  // are allocated on demand.
  uint64_t dst_addr = 0;
  switch (target) {
    case MemKind::kHost:
      dst_addr = vaddr;
      break;
    case MemKind::kCard:
      dst_addr = card_->Allocate(page);
      break;
    case MemKind::kGpu:
      dst_addr = gpu_->Allocate(page);
      break;
  }

  // Functional copy now; timing charged through the hook.
  std::vector<uint8_t> bytes = StoreFor(from).ReadVector(entry->addr, page);
  StoreFor(target).Write(dst_addr, bytes.data(), page);
  page_table_.Map(vaddr, PhysPage{target, dst_addr});
  if (hooks_.invalidate) {
    hooks_.invalidate(vaddr);
  }
  ++migrations_;
  migrated_bytes_ += page;

  if (hooks_.transfer) {
    hooks_.transfer(from, target, page, std::move(done));
  } else {
    engine_->ScheduleAfter(0, std::move(done));
  }
}

void Svm::EnsureResident(uint64_t vaddr, uint64_t bytes, MemKind target,
                         std::function<void()> done) {
  if (bytes == 0) {
    engine_->ScheduleAfter(0, std::move(done));
    return;
  }
  const uint64_t first = page_table_.VPage(vaddr);
  const uint64_t last = page_table_.VPage(vaddr + bytes - 1);

  std::vector<uint64_t> to_move;
  for (uint64_t vp = first; vp <= last; ++vp) {
    auto entry = page_table_.Find(vp * page_table_.page_bytes());
    assert(entry.has_value() && "EnsureResident over an unmapped range");
    if (entry->kind != target) {
      to_move.push_back(vp);
    }
  }
  if (to_move.empty()) {
    engine_->ScheduleAfter(0, std::move(done));
    return;
  }

  auto remaining = std::make_shared<size_t>(to_move.size());
  auto shared_done = std::make_shared<std::function<void()>>(std::move(done));
  for (uint64_t vp : to_move) {
    MigratePage(vp, target, [remaining, shared_done]() {
      if (--*remaining == 0 && *shared_done) {
        (*shared_done)();
      }
    });
  }
}

void Svm::ReadVirtual(uint64_t vaddr, void* dst, uint64_t len) const {
  auto* p = static_cast<uint8_t*>(dst);
  const uint64_t page = page_table_.page_bytes();
  while (len > 0) {
    auto entry = page_table_.Find(vaddr);
    assert(entry.has_value() && "virtual read of unmapped address");
    const uint64_t off = vaddr % page;
    const uint64_t n = std::min(len, page - off);
    StoreFor(entry->kind).Read(entry->addr + off, p, n);
    vaddr += n;
    p += n;
    len -= n;
  }
}

void Svm::WriteVirtual(uint64_t vaddr, const void* src, uint64_t len) {
  const auto* p = static_cast<const uint8_t*>(src);
  const uint64_t page = page_table_.page_bytes();
  if (len > 0) {
    dirty_guard_.Write();
    ++dirty_clock_;
  }
  while (len > 0) {
    auto entry = page_table_.Find(vaddr);
    assert(entry.has_value() && "virtual write of unmapped address");
    const uint64_t off = vaddr % page;
    const uint64_t n = std::min(len, page - off);
    StoreFor(entry->kind).Write(entry->addr + off, p, n);
    dirty_gen_[page_table_.VPage(vaddr)] = dirty_clock_;
    vaddr += n;
    p += n;
    len -= n;
  }
}

std::vector<uint64_t> Svm::DirtyPagesIn(uint64_t vaddr, uint64_t bytes, uint64_t since) const {
  std::vector<uint64_t> out;
  if (bytes == 0) {
    return out;
  }
  const uint64_t first = page_table_.VPage(vaddr);
  const uint64_t last = page_table_.VPage(vaddr + bytes - 1);
  for (auto it = dirty_gen_.lower_bound(first); it != dirty_gen_.end() && it->first <= last;
       ++it) {
    if (it->second > since) {
      out.push_back(it->first);
    }
  }
  return out;
}

}  // namespace mmu
}  // namespace coyote
