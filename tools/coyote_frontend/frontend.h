// coyote-verify shared frontend: the lexical layer under coyote_lint and
// coyote_analyze.
//
// Both tools work from the same view of a C++ source file: a token stream
// with comments and literals stripped out, a per-line comment map (the
// suppression comments live there), and a statement-start map so that a
// suppression written above a statement also covers violations reported on
// the statement's continuation lines. Keeping this in one library guarantees
// the two tools agree on what is code, what is comment, and what a
// suppression covers — a `// lint: <tag>` means the same thing to the
// token-level linter and to the interprocedural analyzer.
//
// The frontend is deliberately not a compiler: it tokenizes, it does not
// build an AST. Tools layer their own structure (the linter per-line rules,
// the analyzer a function index and call graph) on top of the token stream.

#ifndef TOOLS_COYOTE_FRONTEND_FRONTEND_H_
#define TOOLS_COYOTE_FRONTEND_FRONTEND_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace coyote {
namespace frontend {

enum class TokKind : uint8_t { kIdent, kNumber, kPunct, kString, kChar };

struct Token {
  TokKind kind;
  // Identifier / number / punctuation spelling. For kString tokens this is
  // the literal's *content* (quotes stripped, escapes left as written): the
  // analyzer cross-checks AccessGuard resource names against their
  // registration strings. kChar tokens carry no text.
  std::string text;
  uint32_t line;
};

struct LexedFile {
  std::vector<Token> tokens;
  // line -> concatenated comment text on that line (suppressions live here).
  std::map<uint32_t, std::string> comments;
  // line -> line on which the enclosing statement's first token sits.
  // Statements are delimited by `;` (at parenthesis depth 0), `{`, `}` and
  // preprocessor directives; a multi-line call expression maps every
  // continuation line back to its first line, which is what lets a
  // suppression comment above the statement cover the whole statement.
  std::map<uint32_t, uint32_t> stmt_start;
};

// One source file by (project-relative) path and content.
using SourceFile = std::pair<std::string, std::string>;

// Strips comments and literals, splits the rest into identifier / number /
// punctuation tokens. "::" and "->" are combined; everything else is
// single-character punctuation. Fills the comment and statement-start maps.
LexedFile Lex(const std::string& src);

// True when a finding at `line` is suppressed by a comment containing
// "lint:" and `tag` on that line, the line above, the first line of the
// enclosing statement, or the line above that (so suppressions keep working
// when the offending token sits on a continuation line).
bool Suppressed(const LexedFile& lexed, uint32_t line, const std::string& tag);

// Like Suppressed, but also returns the free text following the tag in the
// suppression comment (trimmed). Rules that demand a *justified* suppression
// (the analyzer's guard-state inventory) require this to be non-empty.
bool SuppressedWithReason(const LexedFile& lexed, uint32_t line, const std::string& tag,
                          std::string* reason);

// True when a comment in the file's leading comment block (before the first
// code token) carries "lint:" and `tag` — file-level annotations such as
// `// lint: host-boundary`. Mentions past the first code line are prose.
bool HasFileAnnotation(const LexedFile& lexed, const std::string& tag);

// --- Token helpers shared by the tools --------------------------------------

bool IsHeaderPath(const std::string& path);

inline const Token* Prev(const std::vector<Token>& toks, size_t i) {
  return i > 0 ? &toks[i - 1] : nullptr;
}
inline const Token* Next(const std::vector<Token>& toks, size_t i) {
  return i + 1 < toks.size() ? &toks[i + 1] : nullptr;
}

bool PrevIsMemberAccess(const std::vector<Token>& toks, size_t i);

// C++ keywords that may legitimately precede a call expression (so `return
// rand()` is still a call, while `Type name(` is a declaration).
const std::set<std::string>& CallPrefixKeywords();

// Keywords that can never be function names in a call graph (control flow,
// cast-ish constructs). Shared by the linter's call heuristic and the
// analyzer's call-site collection.
const std::set<std::string>& NonCallKeywords();

// True when toks[i] looks like a call of a *free* function: followed by "(",
// not a member access, and not a declaration "Type name(".
bool LooksLikeCall(const std::vector<Token>& toks, size_t i);

// Reconstructs the header name of an `#include <...>` directive starting at
// the "<" token index; returns the joined text ("sys/time.h").
std::string JoinIncludeName(const std::vector<Token>& toks, size_t lt, size_t* end_index);

// --- Project walk ------------------------------------------------------------

// Walks `roots` (files or directories, relative to `root_dir`) collecting
// .h/.hpp/.cc/.cpp sources in sorted order. Skips build*/, CMakeFiles/,
// .git/, third_party/, and the lint_fixtures/ + analyzer_fixtures/ test-seed
// directories.
std::vector<std::string> CollectFiles(const std::string& root_dir,
                                      const std::vector<std::string>& roots);

// Reads `relative_paths` under `root_dir` into (path, content) pairs.
std::vector<SourceFile> ReadFiles(const std::string& root_dir,
                                  const std::vector<std::string>& relative_paths);

// FNV-1a over a string — the fingerprint primitive for the analyzer's index
// cache (and deterministic by construction).
uint64_t Fnv1a(const std::string& data);

}  // namespace frontend
}  // namespace coyote

#endif  // TOOLS_COYOTE_FRONTEND_FRONTEND_H_
